#![warn(missing_docs)]
//! # F4T — a fast and flexible full-stack TCP acceleration framework
//!
//! This is the facade crate of the F4T reproduction workspace. It
//! re-exports every subsystem so that examples, integration tests and
//! downstream users can depend on a single crate:
//!
//! * [`sim`] — simulation kernel (clocks, FIFOs, statistics, DES).
//! * [`tcp`] — the TCP protocol substrate (headers, TCBs, sequence
//!   arithmetic, cuckoo flow table, reassembly, congestion control).
//! * [`mem`] — hardware memory models (dual-port BRAM, CAM, location LUT,
//!   DRAM/HBM bandwidth models, TCB cache).
//! * [`core`] — **FtEngine**, the paper's contribution: flow processing
//!   cores with stall-free event accumulation, the scheduler and memory
//!   orchestration, and the TX/RX data paths.
//! * [`baseline`] — the comparison designs (a stalling w-RMW engine and a
//!   TONIC-like fixed-segment engine).
//! * [`host`] — the software stack: socket-style F4T library, userspace
//!   runtime (command queues, doorbells), PCIe model, host-CPU and Linux
//!   TCP stack cost models.
//! * [`netsim`] — an NS3-equivalent reference network simulator with
//!   independent congestion-control implementations.
//! * [`workloads`] — iperf-style bulk, round-robin, echo and HTTP (Nginx +
//!   wrk) workload generators.
//! * [`system`] — end-to-end system composition and metrics.
//!
//! # Quickstart
//!
//! ```
//! use f4t::core::{Engine, EngineConfig};
//!
//! // Build the paper's reference design: 8 FPCs x 128 flows at 250 MHz.
//! let engine = Engine::new(EngineConfig::reference());
//! assert_eq!(engine.config().num_fpcs, 8);
//! ```
//!
//! See `examples/quickstart.rs` for an end-to-end data transfer and the
//! `f4t-bench` crate for the harnesses that regenerate every figure and
//! table of the paper's evaluation.

pub use f4t_baseline as baseline;
pub use f4t_core as core;
pub use f4t_host as host;
pub use f4t_mem as mem;
pub use f4t_netsim as netsim;
pub use f4t_sim as sim;
pub use f4t_system as system;
pub use f4t_tcp as tcp;
pub use f4t_workloads as workloads;
