#!/usr/bin/env sh
# FtPulse overhead baseline (DESIGN.md section 15).
#
# The pulse recorder samples every engine window into bounded rings and
# caps fast-forward windows at sample boundaries, so its cost is the
# one thing the simulated clock cannot see: wall time. This script
# measures pulse-off vs pulse-on wall clock (best-of-$REPS, default
# 8192-cycle interval) per reference workload and commits the ratios to
# results/pulse_baseline.json. The run fails if any workload exceeds
# the $OVERHEAD_BUDGET x budget, so a regression in the sampling path
# cannot land silently.
#
# Usage: sh scripts/pulse_baseline.sh
set -eu

cd "$(dirname "$0")/.."

BULK="--workload bulk --cores 1 --size 4096 --warmup-ms 1 --duration-ms 1"
SCALE="--workload scale --flows 2048 --size 256 --duration-ms 1"
CHURNSTORM="--workload churnstorm --cores 2 --flows 32 --impair lossy --warmup-ms 1 --duration-ms 2"
WORKLOADS="bulk scale churnstorm"
OVERHEAD_BUDGET=1.10
REPS=3

cargo build --release -q -p f4t-bench
PERF=./target/release/f4tperf

args_for() {
    case "$1" in
        bulk)       echo "$BULK" ;;
        scale)      echo "$SCALE" ;;
        churnstorm) echo "$CHURNSTORM" ;;
        *)          echo "unknown workload $1" >&2; exit 2 ;;
    esac
}

now_ms() {
    echo $(( $(date +%s%N) / 1000000 ))
}

# best_ms <args...> : best-of-$REPS wall-clock ms for one f4tperf run.
best_ms() {
    best=""
    i=0
    while [ "$i" -lt "$REPS" ]; do
        t0=$(now_ms)
        $PERF "$@" >/dev/null
        t1=$(now_ms)
        dt=$(( t1 - t0 ))
        if [ -z "$best" ] || [ "$dt" -lt "$best" ]; then best=$dt; fi
        i=$(( i + 1 ))
    done
    echo "$best"
}

tmp=$(mktemp)
{
    printf '{\n'
    printf ' "_note": "FtPulse overhead baselines: wall-clock with the pulse recorder off vs on at the default 8192-cycle sample interval (best-of-%s, budget <= %sx per workload). Shape baselines live in results/pulse/<workload>.json. Regenerate with: sh scripts/pulse_baseline.sh",\n' "$REPS" "$OVERHEAD_BUDGET"
    printf ' "overhead_budget": %s' "$OVERHEAD_BUDGET"
    for w in $WORKLOADS; do
        args=$(args_for "$w")
        off=$(best_ms $args)
        on=$(best_ms $args --pulse)
        ratio=$(awk "BEGIN { printf \"%.3f\", $on / $off }")
        echo "  $w: off=${off}ms on=${on}ms ratio=${ratio}x" >&2
        printf ',\n "%s": {\n' "$w"
        printf '  "_params": "%s",\n' "$args"
        printf '  "wall_ms_pulse_off": %s,\n' "$off"
        printf '  "wall_ms_pulse_on": %s,\n' "$on"
        printf '  "overhead_ratio": %s\n' "$ratio"
        printf ' }'
    done
    printf '\n}\n'
} > "$tmp"
ratio_max=$(awk '/"overhead_ratio"/ { gsub(/[^0-9.]/, "", $2); if ($2 > m) m = $2 } END { print m }' "$tmp")
awk "BEGIN { exit !($ratio_max <= $OVERHEAD_BUDGET) }" \
    || { echo "FAIL: pulse overhead ${ratio_max}x exceeds ${OVERHEAD_BUDGET}x budget" >&2; exit 1; }
mv "$tmp" results/pulse_baseline.json
echo "wrote results/pulse_baseline.json (max pulse overhead ${ratio_max}x)"
