#!/usr/bin/env sh
# FtFlight perf-regression gate (DESIGN.md section 10).
#
# Three reference workloads run with the FtFlight recorder at the
# default 1/64 sampling and are diffed against committed latency
# baselines by `f4tperf --gate` (total simulated cycles within +/-25%,
# every stage p99 within 1.25x + 16 cycles; exit 3 on regression).
# Simulated-clock checks are exact and machine-independent; wall-clock
# is checked here instead, against results/latency_breakdown.json with
# a deliberately loose multiplier because CI machines vary.
#
# Every workload is also gated on time-series *shape* (DESIGN.md
# section 15): the run records FtPulse windows and `--pulse-gate` diffs
# them against results/pulse/<workload>.json, so a mid-run degradation
# that averages out of the whole-run percentiles still fails CI.
#
# Usage:
#   sh scripts/perf_gate.sh              gate the current build
#   sh scripts/perf_gate.sh --update     regenerate results/flight/*.json,
#                                        results/pulse/*.json and
#                                        results/latency_breakdown.json
#   sh scripts/perf_gate.sh --self-test  prove both gates trip: a
#                                        400-cycle span bias must exit 3,
#                                        and a 12-cycle bias deferred past
#                                        pulse window 4 must pass the
#                                        flight gate yet trip the shape
#                                        gate (exit 3)
set -eu

cd "$(dirname "$0")/.."

BULK="--workload bulk --cores 1 --size 4096 --warmup-ms 1 --duration-ms 1"
ECHO="--workload echo --cores 1 --flows 64 --size 128 --warmup-ms 1 --duration-ms 1"
SCALE="--workload scale --flows 2048 --size 256 --duration-ms 1"
# Hostile-network scenarios (DESIGN.md section 14): each storm workload
# is gated under a different impairment profile so the baselines pin
# loss-recovery latency, not just the clean path. Impairments are
# seeded and deterministic, so these baselines are byte-stable too.
INCAST="--workload incast --cores 2 --flows 24 --size 2048 --impair reorder --warmup-ms 1 --duration-ms 1"
CHURNSTORM="--workload churnstorm --cores 2 --flows 32 --impair lossy --warmup-ms 1 --duration-ms 2"
SLOWLORIS="--workload slowloris --cores 2 --flows 256 --impair jitter --warmup-ms 1 --duration-ms 1"
HTTPSTORM="--workload httpstorm --cores 2 --flows 256 --impair duplicate --warmup-ms 1 --duration-ms 1"
WORKLOADS="bulk echo scale incast churnstorm slowloris httpstorm"
SAMPLE=64            # keep in sync with results/latency_breakdown.json
OVERHEAD_BUDGET=1.10 # flight-on wall budget at 1/64 sampling (--update)
WALL_TOLERANCE=5     # x committed wall-clock; absolute slack below
WALL_SLACK_MS=2000
REPS=3

mode="${1:-gate}"

cargo build --release -q -p f4t-bench
PERF=./target/release/f4tperf

args_for() {
    case "$1" in
        bulk)       echo "$BULK" ;;
        echo)       echo "$ECHO" ;;
        scale)      echo "$SCALE" ;;
        incast)     echo "$INCAST" ;;
        churnstorm) echo "$CHURNSTORM" ;;
        slowloris)  echo "$SLOWLORIS" ;;
        httpstorm)  echo "$HTTPSTORM" ;;
        *)          echo "unknown workload $1" >&2; exit 2 ;;
    esac
}

now_ms() {
    # GNU date; fine on the Linux dev/CI hosts this script targets.
    echo $(( $(date +%s%N) / 1000000 ))
}

# best_ms <args...> : best-of-$REPS wall-clock ms for one f4tperf run.
best_ms() {
    best=""
    i=0
    while [ "$i" -lt "$REPS" ]; do
        t0=$(now_ms)
        $PERF "$@" >/dev/null
        t1=$(now_ms)
        dt=$(( t1 - t0 ))
        if [ -z "$best" ] || [ "$dt" -lt "$best" ]; then best=$dt; fi
        i=$(( i + 1 ))
    done
    echo "$best"
}

case "$mode" in
gate)
    # Forensic artifacts land here; CI uploads the directory when a
    # gate job fails (see .github/workflows/ci.yml).
    ARTIFACTS="${PERF_GATE_ARTIFACTS:-target/ci-artifacts}"
    mkdir -p "$ARTIFACTS"
    status=0
    for w in $WORKLOADS; do
        base="results/flight/$w.json"
        pulse_base="results/pulse/$w.json"
        [ -s "$base" ] || { echo "FAIL: $base missing (run --update)" >&2; exit 2; }
        [ -s "$pulse_base" ] || { echo "FAIL: $pulse_base missing (run --update)" >&2; exit 2; }
        t0=$(now_ms)
        if $PERF $(args_for "$w") --flight-sample "$SAMPLE" --gate "$base" \
            --pulse-gate "$pulse_base" --pulse-json "$ARTIFACTS/$w-pulse.json" \
            --breakdown-json "$ARTIFACTS/$w-breakdown.json" \
            --dump-on-failure "$ARTIFACTS/$w-dump.json" >/dev/null; then
            :
        else
            rc=$?
            echo "FAIL: $w perf gate regression (f4tperf exit $rc)" >&2
            echo "      observed breakdown: $ARTIFACTS/$w-breakdown.json, pulse: $ARTIFACTS/$w-pulse.json, dump: $ARTIFACTS/$w-dump.json" >&2
            status=$rc
            continue
        fi
        t1=$(now_ms)
        dt=$(( t1 - t0 ))
        committed=$(awk -v w="$w" '
            $0 ~ "\"" w "\":" { f = 1 }
            f && /"wall_ms_flight_on"/ { gsub(/[^0-9]/, "", $2); print $2; exit }
        ' results/latency_breakdown.json)
        [ -n "$committed" ] || { echo "FAIL: no wall baseline for $w" >&2; exit 2; }
        limit=$(( committed * WALL_TOLERANCE + WALL_SLACK_MS ))
        if [ "$dt" -gt "$limit" ]; then
            echo "FAIL: $w wall-clock ${dt}ms exceeds ${limit}ms (committed ${committed}ms x$WALL_TOLERANCE + ${WALL_SLACK_MS}ms)" >&2
            status=3
        else
            echo "  $w: gate PASS, wall ${dt}ms (limit ${limit}ms)"
        fi
    done
    [ "$status" -eq 0 ] && echo "perf gate: OK"
    exit "$status"
    ;;

--update)
    mkdir -p results/flight results/pulse
    tmp=$(mktemp)
    {
        printf '{\n'
        printf ' "_note": "FtFlight perf-gate baselines: three reference workloads with the flight recorder at 1/%s sampling. Per-stage latency baselines live in results/flight/<workload>.json (byte-stable, simulated-clock only); this file records run parameters plus measured wall-clock with the recorder off vs on (best-of-%s, budget <= %sx). Regenerate with: sh scripts/perf_gate.sh --update",\n' "$SAMPLE" "$REPS" "$OVERHEAD_BUDGET"
        printf ' "flight_sample": %s' "$SAMPLE"
        for w in $WORKLOADS; do
            args=$(args_for "$w")
            off=$(best_ms $args)
            on=$(best_ms $args --flight --flight-sample "$SAMPLE")
            # The baseline write is a separate (untimed) run so file I/O
            # never pollutes the overhead measurement. Pulse capping is
            # semantics-preserving, so recording the pulse baseline in
            # the same run leaves the flight baseline byte-identical.
            $PERF $args --flight-sample "$SAMPLE" \
                --breakdown-json "results/flight/$w.json" \
                --pulse-json "results/pulse/$w.json" >/dev/null
            ratio=$(awk "BEGIN { printf \"%.3f\", $on / $off }")
            echo "  $w: off=${off}ms on=${on}ms ratio=${ratio}x" >&2
            printf ',\n "%s": {\n' "$w"
            printf '  "_params": "%s",\n' "$args"
            printf '  "baseline": "results/flight/%s.json",\n' "$w"
            printf '  "wall_ms_flight_off": %s,\n' "$off"
            printf '  "wall_ms_flight_on": %s,\n' "$on"
            printf '  "overhead_ratio": %s\n' "$ratio"
            printf ' }'
        done
        printf '\n}\n'
    } > "$tmp"
    ratio_max=$(awk '/"overhead_ratio"/ { gsub(/[^0-9.]/, "", $2); if ($2 > m) m = $2 } END { print m }' "$tmp")
    awk "BEGIN { exit !($ratio_max <= $OVERHEAD_BUDGET) }" \
        || { echo "FAIL: flight overhead ${ratio_max}x exceeds ${OVERHEAD_BUDGET}x budget" >&2; exit 1; }
    mv "$tmp" results/latency_breakdown.json
    echo "wrote results/latency_breakdown.json (max flight overhead ${ratio_max}x)"
    ;;

--self-test)
    # The gate must actually trip: bias every recorded span by 400
    # cycles and demand the documented exit code 3, nothing else.
    base="results/flight/bulk.json"
    [ -s "$base" ] || { echo "FAIL: $base missing (run --update)" >&2; exit 2; }
    rc=0
    $PERF $BULK --flight-sample "$SAMPLE" --gate "$base" \
        --inject-slowdown 400 >/dev/null 2>&1 || rc=$?
    if [ "$rc" -ne 3 ]; then
        echo "FAIL: injected slowdown exited $rc, expected 3" >&2
        exit 1
    fi
    echo "perf gate self-test: OK (injected slowdown trips exit 3)"

    # The shape gate must catch what the flight gate cannot: a
    # 12-cycle bias armed only after pulse window 4 stays inside the
    # whole-run 1.25x+16 envelope (flight gate passes) but shifts the
    # per-window p99 series past base + base/8 + 8 (pulse gate exit 3).
    pulse_base="results/pulse/bulk.json"
    [ -s "$pulse_base" ] || { echo "FAIL: $pulse_base missing (run --update)" >&2; exit 2; }
    rc=0
    $PERF $BULK --flight-sample "$SAMPLE" --gate "$base" \
        --inject-slowdown 12 --inject-slowdown-after 4 >/dev/null 2>&1 || rc=$?
    if [ "$rc" -ne 0 ]; then
        echo "FAIL: deferred slowdown tripped the flight gate alone (exit $rc)" >&2
        exit 1
    fi
    rc=0
    $PERF $BULK --flight-sample "$SAMPLE" --gate "$base" --pulse-gate "$pulse_base" \
        --inject-slowdown 12 --inject-slowdown-after 4 >/dev/null 2>&1 || rc=$?
    if [ "$rc" -ne 3 ]; then
        echo "FAIL: deferred slowdown exited $rc, expected pulse gate exit 3" >&2
        exit 1
    fi
    echo "pulse gate self-test: OK (mid-run shift passes flight gate, trips shape gate)"
    ;;

*)
    echo "usage: sh scripts/perf_gate.sh [--update|--self-test]" >&2
    exit 2
    ;;
esac
