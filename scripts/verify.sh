#!/usr/bin/env sh
# Tier-1 verification: release build, full test suite, lint gate.
# Run from the repo root:  sh scripts/verify.sh
# Extra smoke: drive the telemetry path end-to-end (fast echo run) and
# check that the metrics/trace JSON come out non-trivial.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release (workspace)"
cargo build --release --workspace

echo "==> cargo test -q (workspace)"
cargo test -q --workspace

echo "==> fast-forward equivalence (bit-identical, FtVerify attached)"
cargo test -q --release -p f4t --test fastforward_equiv

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> f4tlint (FtProve design-rule scan, per-pass timings)"
cargo run --release -q -p f4t-lint --bin f4tlint -- --timings
cargo run --release -q -p f4t-lint --bin f4tlint -- --format json >/dev/null

echo "==> f4tperf --check smoke (FtVerify hazard checker)"
cargo run --release -q -p f4t-bench --bin f4tperf -- \
    --workload bulk --cores 2 --size 1024 --duration-ms 1 --check >/dev/null
cargo run --release -q -p f4t-bench --bin f4tperf -- \
    --workload echo --cores 2 --flows 256 --duration-ms 1 --check >/dev/null

echo "==> f4tperf --telemetry smoke"
out="$(mktemp -d)"
cargo run --release -q -p f4t-bench --bin f4tperf -- \
    --workload echo --cores 2 --flows 256 --duration-ms 1 \
    --telemetry "$out/telem.json" --trace-depth 4096 >/dev/null
for f in "$out/telem.json" "$out/telem.trace.json"; do
    [ -s "$f" ] || { echo "FAIL: $f missing or empty" >&2; exit 1; }
done
grep -q 'engine.fpc0.stall.fifo_empty' "$out/telem.json" \
    || { echo "FAIL: stall counters missing from telemetry" >&2; exit 1; }
grep -q 'traceEvents' "$out/telem.trace.json" \
    || { echo "FAIL: trace file is not Chrome-trace JSON" >&2; exit 1; }

echo "==> f4tperf FtFlight / pcap / prometheus smoke"
cargo run --release -q -p f4t-bench --bin f4tperf -- \
    --workload echo --cores 2 --flows 256 --duration-ms 1 \
    --breakdown-json "$out/breakdown.json" --pcap "$out/cap.pcap" \
    --telemetry "$out/telem.prom" --telemetry-format prometheus >/dev/null
grep -q '"p99_cycles"' "$out/breakdown.json" \
    || { echo "FAIL: breakdown JSON lacks stage p99s" >&2; exit 1; }
grep -q '# TYPE' "$out/telem.prom" \
    || { echo "FAIL: prometheus export lacks TYPE lines" >&2; exit 1; }
[ "$(od -An -tx1 -N4 "$out/cap.pcap" | tr -d ' ')" = "d4c3b2a1" ] \
    || { echo "FAIL: pcap magic wrong" >&2; exit 1; }
echo "==> FtJournal / f4tdbg forensic smoke"
# A planted LUT misdirect must produce a black-box dump (exit 1), and
# the dump must replay through f4tdbg: digest MATCH, filtered print,
# self-diff identical (DESIGN.md section 11).
rc=0
cargo run --release -q -p f4t-bench --bin f4tperf -- \
    --workload scale --flows 128 --size 256 --duration-ms 1 \
    --check --inject-fault lut-misdirect \
    --dump-on-failure "$out/fault-dump.json" >/dev/null 2>&1 || rc=$?
[ "$rc" -eq 1 ] || { echo "FAIL: planted fault exited $rc, expected 1" >&2; exit 1; }
[ -s "$out/fault-dump.json" ] || { echo "FAIL: black-box dump missing" >&2; exit 1; }
cargo run --release -q -p f4t-bench --bin f4tdbg -- \
    digest "$out/fault-dump.json" | grep -q MATCH \
    || { echo "FAIL: dump digest does not replay" >&2; exit 1; }
cargo run --release -q -p f4t-bench --bin f4tdbg -- \
    print "$out/fault-dump.json" --module scheduler >/dev/null \
    || { echo "FAIL: f4tdbg print failed" >&2; exit 1; }
cargo run --release -q -p f4t-bench --bin f4tdbg -- \
    diff "$out/fault-dump.json" "$out/fault-dump.json" >/dev/null \
    || { echo "FAIL: dump does not diff clean against itself" >&2; exit 1; }
# A healthy journal+watchdog run must stay clean (exit 0).
cargo run --release -q -p f4t-bench --bin f4tperf -- \
    --workload echo --cores 2 --flows 256 --duration-ms 1 \
    --journal --watchdog >/dev/null \
    || { echo "FAIL: healthy journal+watchdog run failed" >&2; exit 1; }
rm -rf "$out"

echo "==> FtTurbo smoke (slab + threaded scale paths)"
sh scripts/turbo_baseline.sh --smoke

echo "==> FtStorm hostile-network smoke (scenario x impairment)"
# The full matrix lives in tests/scenario_matrix.rs (runs under cargo
# test above); this re-drives one cell end-to-end through the CLI with
# the checker, journal, and watchdog armed.
cargo run --release -q -p f4t-bench --bin f4tperf -- \
    --workload incast --cores 2 --flows 24 --size 2048 --impair burst-loss \
    --warmup-ms 1 --duration-ms 1 --check --journal --watchdog >/dev/null

echo "==> FtPulse time-series smoke (threaded, checked)"
# DESIGN.md section 15: a sharded pulse run must merge per-shard series
# deterministically, and the document must render through f4tdbg pulse.
out="$(mktemp -d)"
cargo run --release -q -p f4t-bench --bin f4tperf -- \
    --workload scale --flows 256 --size 1024 --duration-ms 1 \
    --threads 2 --pulse --check \
    --pulse-json "$out/pulse.json" >/dev/null
grep -q '"merged_digest"' "$out/pulse.json" \
    || { echo "FAIL: pulse document lacks merged digest" >&2; exit 1; }
grep -q '"goodput_bytes"' "$out/pulse.json" \
    || { echo "FAIL: pulse document lacks series" >&2; exit 1; }
cargo run --release -q -p f4t-bench --bin f4tdbg -- \
    pulse "$out/pulse.json" >/dev/null \
    || { echo "FAIL: f4tdbg pulse cannot render the document" >&2; exit 1; }
rm -rf "$out"

echo "==> FtFlight perf gate + FtPulse shape gate (committed baselines + self-tests)"
sh scripts/perf_gate.sh
sh scripts/perf_gate.sh --self-test

echo "verify: OK"
