#!/usr/bin/env sh
# FtTurbo wall-clock baseline (DESIGN.md section 12).
#
# Measures the 64K-connection scale scenario in two configurations and
# records both against the committed pre-FtTurbo reference:
#
#   slab_only    --threads 1: single engine on the struct-of-arrays hot
#                state (slab scheduler/FPC/memory-manager layout). Any
#                gain over the pre-FtTurbo reference is pure data-layout.
#   slab_threads --threads <host cpus>: the flow range sharded across
#                one engine per thread with the deterministic rendezvous
#                barrier. Speedup over slab_only is the threading win and
#                scales with host cores (a 1-core host shows none).
#
# Wall-clock is machine-dependent, so the committed numbers are a
# record, not a gate — the byte-identity guarantees are gated by
# tests/determinism.rs and tests/fastforward_equiv.rs instead, and
# cycle-exact perf by scripts/perf_gate.sh.
#
# Usage:
#   sh scripts/turbo_baseline.sh             measure (best-of-3) and
#                                            rewrite results/turbo_baseline.json
#   sh scripts/turbo_baseline.sh --smoke     one small iteration of both
#                                            paths, exit status only (no
#                                            JSON rewrite, no budget) —
#                                            what scripts/verify.sh runs
set -eu

cd "$(dirname "$0")/.."

# Pre-FtTurbo reference for SCALE below on the machine that produced
# results/turbo_baseline.json: HashMap-based hot state, single engine
# (commit before the slab refactor). Re-measure when moving machines.
PRE_PR_WALL_MS=1900

SCALE="--workload scale --flows 65536 --size 256 --duration-ms 1"
SMOKE="--workload scale --flows 2048 --size 256 --duration-ms 1"
REPS=3

cargo build --release -q -p f4t-bench
PERF=./target/release/f4tperf

cpus=$( (nproc || sysctl -n hw.ncpu || echo 1) 2>/dev/null | head -n 1 )

now_ms() {
    echo $(( $(date +%s%N) / 1000000 ))
}

# best_ms <args...> : best-of-$REPS wall-clock ms for one f4tperf run.
best_ms() {
    best=""
    i=0
    while [ "$i" -lt "$REPS" ]; do
        t0=$(now_ms)
        $PERF "$@" >/dev/null
        t1=$(now_ms)
        dt=$(( t1 - t0 ))
        if [ -z "$best" ] || [ "$dt" -lt "$best" ]; then best=$dt; fi
        i=$(( i + 1 ))
    done
    echo "$best"
}

if [ "${1:-}" = "--smoke" ]; then
    # One iteration of each path; both must exit 0 with clean merged
    # output. No wall-clock budget: CI and laptops vary too much.
    t0=$(now_ms)
    $PERF $SMOKE --threads 1 --check >/dev/null
    t1=$(now_ms)
    $PERF $SMOKE --threads 4 --check --journal >/dev/null
    t2=$(now_ms)
    echo "turbo smoke: threads=1 $(( t1 - t0 ))ms, threads=4 $(( t2 - t1 ))ms: OK"
    exit 0
fi

echo "measuring slab_only ($SCALE --threads 1, best-of-$REPS)..." >&2
slab=$(best_ms $SCALE --threads 1)
echo "  slab_only: ${slab}ms" >&2
echo "measuring slab_threads (--threads $cpus, best-of-$REPS)..." >&2
threaded=$(best_ms $SCALE --threads "$cpus")
echo "  slab_threads: ${threaded}ms" >&2

slab_speedup=$(awk "BEGIN { printf \"%.2f\", $PRE_PR_WALL_MS / $slab }")
thread_speedup=$(awk "BEGIN { printf \"%.2f\", $slab / $threaded }")
total_speedup=$(awk "BEGIN { printf \"%.2f\", $PRE_PR_WALL_MS / $threaded }")

{
    printf '{\n'
    printf ' "_note": "FtTurbo wall-clock record for the 64K scale scenario: pre-FtTurbo reference (HashMap hot state, single engine) vs the slab layout on one thread vs the slab layout sharded across one engine per host cpu with the deterministic rendezvous barrier. Wall-clock is machine-dependent -- byte-identity is gated by tests/determinism.rs and tests/fastforward_equiv.rs, cycle-exact perf by scripts/perf_gate.sh. The threading row only improves on multi-core hosts. Regenerate with: sh scripts/turbo_baseline.sh",\n'
    printf ' "_params": "%s",\n' "$SCALE"
    printf ' "host_cpus": %s,\n' "$cpus"
    printf ' "reps": %s,\n' "$REPS"
    printf ' "pre_pr": { "wall_ms": %s, "hot_state": "HashMap", "engines": 1 },\n' "$PRE_PR_WALL_MS"
    printf ' "slab_only": { "wall_ms": %s, "hot_state": "slab", "engines": 1, "threads": 1, "speedup_vs_pre_pr": %s },\n' "$slab" "$slab_speedup"
    printf ' "slab_threads": { "wall_ms": %s, "hot_state": "slab", "engines": %s, "threads": %s, "speedup_vs_slab_only": %s, "speedup_vs_pre_pr": %s }\n' "$threaded" "$cpus" "$cpus" "$thread_speedup" "$total_speedup"
    printf '}\n'
} > results/turbo_baseline.json
echo "wrote results/turbo_baseline.json (slab ${slab_speedup}x, +threads ${thread_speedup}x, total ${total_speedup}x vs pre-PR ${PRE_PR_WALL_MS}ms on $cpus cpu(s))"
