#!/usr/bin/env sh
# FtJournal overhead baseline (DESIGN.md section 11.4).
#
# Measures wall-clock for the scale reference workload with the causal
# event journal off vs on at the default 1/64 sampling (best-of-$REPS)
# and records the ratio in results/journal_baseline.json. The budget is
# <= 1.10x: the journal is a bounded ring plus an FNV fold per sampled
# event, so default sampling must stay invisible next to the simulation
# itself.
#
# Usage:  sh scripts/journal_baseline.sh
set -eu

cd "$(dirname "$0")/.."

SCALE="--workload scale --flows 2048 --size 256 --duration-ms 1"
SAMPLE=64
OVERHEAD_BUDGET=1.10
REPS=3

cargo build --release -q -p f4t-bench
PERF=./target/release/f4tperf

now_ms() {
    echo $(( $(date +%s%N) / 1000000 ))
}

best_ms() {
    best=""
    i=0
    while [ "$i" -lt "$REPS" ]; do
        t0=$(now_ms)
        $PERF "$@" >/dev/null
        t1=$(now_ms)
        dt=$(( t1 - t0 ))
        if [ -z "$best" ] || [ "$dt" -lt "$best" ]; then best=$dt; fi
        i=$(( i + 1 ))
    done
    echo "$best"
}

off=$(best_ms $SCALE)
on=$(best_ms $SCALE --journal --journal-sample "$SAMPLE")
ratio=$(awk "BEGIN { printf \"%.3f\", $on / $off }")
echo "  scale: journal off=${off}ms on=${on}ms ratio=${ratio}x"
awk "BEGIN { exit !($ratio <= $OVERHEAD_BUDGET) }" \
    || { echo "FAIL: journal overhead ${ratio}x exceeds ${OVERHEAD_BUDGET}x budget" >&2; exit 1; }

cat > results/journal_baseline.json <<EOF
{
 "_note": "FtJournal overhead baseline: the scale reference workload with the causal event journal off vs on at the default 1/$SAMPLE sampling (wall-clock best-of-$REPS, budget <= ${OVERHEAD_BUDGET}x; DESIGN.md section 11.4). Regenerate with: sh scripts/journal_baseline.sh",
 "journal_sample": $SAMPLE,
 "overhead_budget": $OVERHEAD_BUDGET,
 "scale": {
  "_params": "$SCALE",
  "wall_ms_journal_off": $off,
  "wall_ms_journal_on": $on,
  "overhead_ratio": $ratio
 }
}
EOF
echo "wrote results/journal_baseline.json (journal overhead ${ratio}x)"
