#!/usr/bin/env sh
# Regenerate results/check_baseline.json: run the reference bulk and echo
# workloads with the FtVerify hazard checker off and on, record that the
# checker-on runs report zero violations, and measure the wall-clock
# overhead of enabling it (budget: <= 1.25x, DESIGN.md section 8).
#
# Usage:  sh scripts/check_baseline.sh
set -eu

cd "$(dirname "$0")/.."

BULK="--workload bulk --cores 2 --size 1024 --warmup-ms 1 --duration-ms 4"
ECHO="--workload echo --cores 2 --flows 256 --size 128 --warmup-ms 1 --duration-ms 4"
REPS=3

cargo build --release -q -p f4t-bench

now_ms() {
    # GNU date; fine on the Linux dev/CI hosts this script targets.
    echo $(( $(date +%s%N) / 1000000 ))
}

# best_ms <args...> : best-of-$REPS wall-clock ms for one f4tperf run.
best_ms() {
    best=""
    i=0
    while [ "$i" -lt "$REPS" ]; do
        t0=$(now_ms)
        ./target/release/f4tperf "$@" >/dev/null
        t1=$(now_ms)
        dt=$(( t1 - t0 ))
        if [ -z "$best" ] || [ "$dt" -lt "$best" ]; then best=$dt; fi
        i=$(( i + 1 ))
    done
    echo "$best"
}

run_workload() {
    name=$1; shift
    off=$(best_ms "$@")
    on=$(best_ms "$@" --check)   # f4tperf exits 1 on any violation
    ratio=$(awk "BEGIN { printf \"%.3f\", $on / $off }")
    echo "  $name: off=${off}ms on=${on}ms ratio=${ratio}x" >&2
    printf '  "%s": {\n' "$name"
    printf '   "_params": "%s",\n' "$*"
    printf '   "violations": 0,\n'
    printf '   "wall_ms_check_off": %s,\n' "$off"
    printf '   "wall_ms_check_on": %s,\n' "$on"
    printf '   "overhead_ratio": %s\n' "$ratio"
    printf '  }'
}

out=results/check_baseline.json
{
    printf '{\n'
    printf ' "_note": "FtVerify hazard-checker baseline: the reference bulk and echo workloads with EngineConfig::check off vs on (f4tperf --check). A --check run exits non-zero on any violation, so violations=0 is enforced, not transcribed. Wall-clock is best-of-%s; the enabled-overhead budget is <= 1.25x. Regenerate with: sh scripts/check_baseline.sh",\n' "$REPS"
    run_workload bulk $BULK
    printf ',\n'
    run_workload echo $ECHO
    printf '\n}\n'
} > "$out"

ratio_max=$(awk '/"overhead_ratio"/ { gsub(/[^0-9.]/, "", $2); if ($2 > m) m = $2 } END { print m }' "$out")
awk "BEGIN { exit !($ratio_max <= 1.25) }" \
    || { echo "FAIL: checker overhead ${ratio_max}x exceeds 1.25x budget" >&2; exit 1; }
echo "wrote $out (max overhead ${ratio_max}x)"
