//! Programmability (§4.5): bring your own congestion-control algorithm.
//!
//! The paper's users program the TCP stack by rewriting the FPU in HLS
//! C++ — "users need to modify only the FPU". Here the same extension
//! point is the [`CongestionControl`] trait: implement it, hand it to the
//! engine, and every FPC runs it, with state riding in the TCB and zero
//! throughput penalty regardless of its (modelled) pipeline latency.
//!
//! The demo algorithm is a deliberately unusual one no stock stack ships:
//! a decoupled AIMD with a *multiplicative increase* probe phase, plus a
//! hard rate cap — the kind of datacenter-specific policy the paper's
//! flexibility argument is about.
//!
//! ```sh
//! cargo run --release --example custom_cc
//! ```

use f4t::core::{Engine, EngineConfig, EventKind, HostNotification};
use f4t::tcp::{CcState, CongestionControl, FourTuple, SeqNum, Tcb, MSS};
use std::sync::Arc;

/// A custom algorithm: multiplicative-increase up to a configured rate
/// cap, multiplicative-decrease on loss — "MIMD-with-ceiling".
#[derive(Debug)]
struct MimdCapped {
    /// Hard window ceiling in bytes (a tenant rate cap).
    cap: u32,
    /// Increase factor per ACK'd window (×1.25 per RTT ≈ probing).
    num: u32,
    den: u32,
}

impl CongestionControl for MimdCapped {
    fn name(&self) -> &'static str {
        "mimd-capped"
    }

    // Pretend this costs a deep 93-cycle pipeline (heavier than Vegas):
    // with F4T's architecture that is free (Fig. 15).
    fn fpu_latency_cycles(&self) -> u32 {
        93
    }

    fn init(&self, tcb: &mut Tcb) {
        tcb.cc = CcState::None;
        tcb.cwnd = 4 * MSS;
        tcb.ssthresh = self.cap;
    }

    fn on_ack(&self, tcb: &mut Tcb, newly_acked: u32, _rtt: Option<u64>, _now: u64) {
        // Multiplicative increase: grow proportionally to what was ACKed.
        let grow = (u64::from(newly_acked) * u64::from(self.num - self.den)
            / u64::from(self.den)) as u32;
        tcb.cwnd = tcb.cwnd.saturating_add(grow.max(1)).min(self.cap);
    }

    fn on_enter_recovery(&self, tcb: &mut Tcb, _now: u64) {
        tcb.ssthresh = (tcb.flight_size() / 2).max(2 * MSS);
        tcb.cwnd = tcb.ssthresh;
    }

    fn on_timeout(&self, tcb: &mut Tcb, _now: u64) {
        tcb.ssthresh = (tcb.flight_size() / 2).max(2 * MSS);
        tcb.cwnd = MSS;
    }
}

fn main() {
    println!("custom congestion control on FtEngine: MIMD with a 64-segment cap\n");

    let cap = 64 * MSS;
    let cc = Arc::new(MimdCapped { cap, num: 5, den: 4 });
    let cfg = EngineConfig { num_fpcs: 1, lut_groups: 1, ..EngineConfig::reference() };
    let mut a = Engine::with_cc(cfg.clone(), cc);
    let mut b = Engine::new(cfg); // the peer runs stock New Reno

    let tuple = FourTuple::default();
    let isn = SeqNum(0);
    let fa = a.open_established(tuple, isn).unwrap();
    let fb = b.open_established(tuple.reversed(), isn).unwrap();

    // Bulk transfer with an ideal link; sample the window as it probes.
    let mut req = isn;
    let mut samples = Vec::new();
    for c in 0..150_000u64 {
        req = req.add(1024);
        a.push_host(fa, EventKind::SendReq { req });
        a.tick();
        b.tick();
        while let Some(n) = b.pop_notification() {
            if let HostNotification::DataReceived { flow, upto } = n {
                b.push_host(flow, EventKind::RecvConsumed { consumed: upto });
            }
        }
        while let Some(seg) = a.pop_tx() {
            b.push_rx(seg);
        }
        while let Some(seg) = b.pop_tx() {
            a.push_rx(seg);
        }
        if c % 15_000 == 0 {
            let t = a.peek_tcb(fa).unwrap();
            samples.push((c * 4 / 1000, t.cwnd / MSS));
        }
    }

    println!("  t(µs)   cwnd(segments)");
    for (t, w) in &samples {
        println!("  {t:>5}   {w:>3}  {}", "#".repeat(*w as usize / 2));
    }

    let final_cwnd = a.peek_tcb(fa).unwrap().cwnd;
    assert_eq!(final_cwnd, cap, "the ceiling held: {final_cwnd} == {cap}");
    let acked = a.peek_tcb(fa).unwrap().snd_una.since(isn);
    println!("\n  delivered {} KB; window capped at exactly {} segments", acked / 1024, cap / MSS);
    println!(
        "\nThe engine ran an algorithm it had never seen, with a 93-cycle\n\
         FPU latency, at full throughput — §4.5's versatility claim."
    );
    let _ = fb;
}
