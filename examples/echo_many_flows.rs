//! Connectivity at scale (§5.3): thousands of concurrent ping-pong flows.
//!
//! Every flow waits for its echo before sending the next message, so TCB
//! accesses have near-zero temporal locality — the worst case for the
//! memory hierarchy. With more active flows than the 1024 FPC slots, the
//! engine continuously migrates TCBs to and from on-board memory; the
//! choice of DDR4 vs HBM decides whether that costs throughput.
//!
//! ```sh
//! cargo run --release --example echo_many_flows
//! ```

use f4t::core::EngineConfig;
use f4t::mem::DramKind;
use f4t::system::F4tSystem;

fn main() {
    let cores = 4;
    let flows = 4096; // 4x the SRAM-resident capacity
    println!("echo ping-pong: {flows} flows on {cores} cores ({}x SRAM capacity)\n", flows / 1024);

    for dram in [DramKind::Ddr4, DramKind::Hbm] {
        let cfg = EngineConfig { dram, ..EngineConfig::reference() };
        let mut sys = F4tSystem::echo(cores, flows, 128, cfg);
        let m = sys.measure(4_000_000, 8_000_000);
        let stats = sys.a.engine.stats();
        println!("{dram}:");
        println!("  round trips/s:   {:.1} M", m.mrps());
        println!("  TCB migrations:  {} ({:.2} per request)", m.migrations, m.migrations as f64 / m.requests.max(1) as f64);
        println!("  TCB cache hits:  {:.0} %", stats.tcb_cache_hit_rate * 100.0);
        println!("  retransmissions: {} (loss recovery under DRAM pressure)", m.retransmissions);
        println!("  median RTT:      {:.1} µs", m.median_latency_us());
        println!();
    }
    println!(
        "The paper's Fig. 13: with DDR4 the echo rate drops once active\n\
         flows exceed the 1024 SRAM-resident TCBs; HBM's bandwidth keeps\n\
         the rate flat all the way to 64K flows."
    );
}
