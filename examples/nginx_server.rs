//! The paper's flagship application scenario (§5.2): an Nginx-model web
//! server behind F4T versus the same server on the Linux kernel stack.
//!
//! A wrk-style load generator drives keep-alive connections with HTTP
//! GETs; the server answers each with a 256 B response, paying real
//! application + VFS cycles. Prints the request rate, the CPU-utilization
//! breakdown and the latency comparison — Figs. 10–12 in one run.
//!
//! ```sh
//! cargo run --release --example nginx_server
//! ```

use f4t::core::EngineConfig;
use f4t::host::{CpuCategory, LinuxModel};
use f4t::system::{F4tSystem, LinuxSystem};

fn main() {
    let server_cores = 1;
    let connections = 64;
    println!("Nginx on F4T vs Linux — {server_cores} server core, {connections} connections\n");

    let mut sys = F4tSystem::http(2, server_cores, connections, EngineConfig::reference());
    sys.run_ns(500_000); // warm up
    let served0 = sys.server_requests();
    let t0 = sys.now_ns();
    let metrics = sys.measure(0, 4_000_000);
    let served = sys.server_requests() - served0;
    let window = sys.now_ns() - t0;

    let f4t_rps = served as f64 * 1e9 / window as f64;
    let linux_rps = LinuxModel::nginx_rps(server_cores as u32);
    println!("requests/second:");
    println!("  Linux: {:>8.0}", linux_rps);
    println!("  F4T:   {:>8.0}   ({:.2}x)", f4t_rps, f4t_rps / linux_rps);

    println!("\nserver CPU breakdown (busy cycles):");
    let linux = LinuxModel::nginx_breakdown();
    let f4t = sys.b.total_accounting();
    let busy_f4t = (f4t.app + f4t.tcp + f4t.kernel + f4t.lib).max(1);
    println!("  {:26} {:>8} {:>8}", "", "Linux", "F4T");
    println!(
        "  {:26} {:>7.0}% {:>7.0}%",
        "application",
        linux.fraction(CpuCategory::App) * 100.0,
        f4t.app as f64 * 100.0 / busy_f4t as f64
    );
    println!(
        "  {:26} {:>7.0}% {:>7.0}%",
        "kernel TCP stack",
        linux.fraction(CpuCategory::Tcp) * 100.0,
        f4t.tcp as f64 * 100.0 / busy_f4t as f64
    );
    println!(
        "  {:26} {:>7.0}% {:>7.0}%",
        "other kernel (vfs_read...)",
        linux.fraction(CpuCategory::Kernel) * 100.0,
        f4t.kernel as f64 * 100.0 / busy_f4t as f64
    );
    println!(
        "  {:26} {:>7.0}% {:>7.0}%",
        "F4T library",
        0.0,
        f4t.lib as f64 * 100.0 / busy_f4t as f64
    );

    let linux_lat = LinuxSystem::nginx_latency(server_cores as u32, connections as u32, 42);
    println!("\nlatency (µs):");
    println!(
        "  Linux: median {:>7.1}   p99 {:>8.1}",
        linux_lat.percentile(50.0) as f64 / 1e3,
        linux_lat.percentile(99.0) as f64 / 1e3
    );
    println!(
        "  F4T:   median {:>7.1}   p99 {:>8.1}",
        metrics.median_latency_us(),
        metrics.p99_latency_us()
    );

    assert!(f4t_rps > linux_rps * 2.0, "paper reports 2.6-2.8x");
    assert_eq!(f4t.tcp, 0, "F4T leaves no TCP work on the host CPU");
}
