//! Quickstart: a complete F4T round trip in ~60 lines of user code.
//!
//! Builds the paper's testbed — two hosts with FtEngines on a 100 Gbps
//! link — transfers data through the full stack (socket-style library →
//! command queues → PCIe → engine → wire → peer), and prints what
//! happened. Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use f4t::core::EngineConfig;
use f4t::system::F4tSystem;
use f4t::tcp::wire::{EthernetHeader, Ipv4Header, TcpHeader};
use f4t::tcp::{SeqNum, TcpFlags};
use std::net::Ipv4Addr;

fn main() {
    // --- 1. An end-to-end bulk transfer on the paper's reference design.
    // One sender core issuing 128 B requests (the paper's headline
    // request size) against one receiver core.
    let mut system = F4tSystem::bulk(1, 128, EngineConfig::reference());

    // Warm up 100 µs, measure 400 µs of simulated time.
    let metrics = system.measure(100_000, 400_000);

    println!("F4T quickstart — bulk transfer, 1 core, 128 B requests");
    println!("  goodput:          {:.1} Gbps", metrics.goodput_gbps());
    println!("  request rate:     {:.1} Mrps", metrics.mrps());
    println!("  retransmissions:  {}", metrics.retransmissions);
    println!(
        "  engine events:    {} (coalesced away: {})",
        system.a.engine.stats().host_events,
        system.a.engine.stats().events_coalesced
    );
    assert!(metrics.goodput_gbps() > 20.0, "the paper reports ~45 Gbps here");

    // --- 2. The same engine speaks real wire formats: here is one of its
    // segments rendered to actual TCP/IP bytes (checksummed), then parsed
    // back.
    let src = Ipv4Addr::new(10, 0, 0, 1);
    let dst = Ipv4Addr::new(10, 0, 0, 2);
    let tcp = TcpHeader {
        src_port: 40_000,
        dst_port: 80,
        seq: SeqNum(1_000),
        ack: SeqNum(2_000),
        flags: TcpFlags::ACK | TcpFlags::PSH,
        window: 0xFFFF,
    };
    let payload = b"hello from F4T";
    let mut frame = Vec::new();
    EthernetHeader {
        dst: f4t::tcp::MacAddr([0x02, 0xf4, 0x70, 0, 0, 2]),
        src: f4t::tcp::MacAddr([0x02, 0xf4, 0x70, 0, 0, 1]),
        ethertype: EthernetHeader::TYPE_IPV4,
    }
    .write(&mut frame);
    Ipv4Header {
        src,
        dst,
        protocol: Ipv4Header::PROTO_TCP,
        total_len: (Ipv4Header::LEN + TcpHeader::LEN + payload.len()) as u16,
        ident: 1,
        ttl: 64,
    }
    .write(&mut frame);
    tcp.write(src, dst, payload, &mut frame);
    println!("\nwire check: built a {}-byte Ethernet/IPv4/TCP frame", frame.len());
    let (_, rest) = EthernetHeader::parse(&frame).expect("valid ethernet");
    let (ip, rest) = Ipv4Header::parse(rest).expect("valid ipv4 + checksum");
    let (parsed, body) = TcpHeader::parse(rest, ip.src, ip.dst).expect("valid tcp + checksum");
    assert_eq!(parsed, tcp);
    assert_eq!(body, payload);
    println!("wire check: parsed back OK (checksums verified)");

    // --- 3. The engine answers pings in hardware (§4.1.2).
    let ping = f4t::tcp::wire::IcmpEcho { is_request: true, ident: 7, seq: 1, payload: vec![1, 2, 3] };
    let pong = system.a.engine.handle_ping(&ping).expect("engine answers ping");
    println!("\nping {} -> pong {} (answered in hardware)", ping.seq, pong.seq);

    // --- 4. Capture the engine's traffic for Wireshark.
    use f4t::core::{Engine, EventKind};
    use f4t::tcp::pcap::PcapWriter;
    let cfg = EngineConfig { num_fpcs: 1, lut_groups: 1, ..EngineConfig::reference() };
    let mut a = Engine::new(cfg.clone());
    let mut b = Engine::new(cfg);
    let tuple = f4t::tcp::FourTuple::new(
        Ipv4Addr::new(10, 0, 0, 1),
        40_000,
        Ipv4Addr::new(10, 0, 0, 2),
        80,
    );
    let fa = a.open_established(tuple, SeqNum(0)).unwrap();
    let _fb = b.open_established(tuple.reversed(), SeqNum(0)).unwrap();
    a.run(20);
    a.push_host(fa, EventKind::SendReq { req: SeqNum(20_000) });
    let path = std::env::temp_dir().join("f4t_quickstart.pcap");
    let file = std::fs::File::create(&path).expect("create pcap");
    let mut pcap = PcapWriter::new(std::io::BufWriter::new(file), 96).expect("pcap header");
    for _ in 0..20_000u64 {
        a.tick();
        b.tick();
        while let Some(seg) = a.pop_tx() {
            pcap.record(a.now_ns(), &seg, a.mac, b.mac).expect("record");
            b.push_rx(seg);
        }
        while let Some(seg) = b.pop_tx() {
            pcap.record(b.now_ns(), &seg, b.mac, a.mac).expect("record");
            a.push_rx(seg);
        }
    }
    println!(
        "\ncaptured {} packets of a 20 KB transfer to {} (open it in Wireshark)",
        pcap.packets(),
        path.display()
    );
    pcap.finish().expect("flush");
}
