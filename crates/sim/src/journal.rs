//! FtJournal — a bounded, per-flow-sampled causal event journal.
//!
//! FtScope answers *how busy* each module is and FtFlight answers *where
//! a flow's time goes*; FtJournal answers *what actually happened to flow
//! N, in order*. Every core module (RX parser, scheduler, FPCs, memory
//! manager, packet generator, timers) plus the host doorbell path emits
//! typed events stamped with the absolute simulated engine clock, and the
//! journal keeps a bounded ring of the most recent ones — the black-box
//! flight recorder a post-mortem dump serializes when an invariant
//! violation, watchdog alarm or perf-gate failure fires.
//!
//! Design constraints (DESIGN.md §11):
//!
//! * **Deterministic under fast-forward.** Events are only emitted at
//!   executed ticks and stamped with the simulated clock; fast-forward
//!   skips only provably idle windows, so a fast-forwarded run journals
//!   exactly what a tick-by-tick run journals, byte for byte
//!   (`tests/fastforward_equiv.rs`).
//! * **Cheap.** Sampling is flow-id based (`flow % sample == 0`), the
//!   same policy FtFlight uses, so both execution modes agree on the
//!   sampled set without shared state; an unsampled flow costs one
//!   branch per emission.
//! * **Bounded.** The ring overwrites its oldest entry once full; a
//!   running FNV-1a digest over *every* recorded event (including
//!   overwritten ones) still fingerprints the complete stream.
//!
//! # Examples
//!
//! ```
//! use f4t_sim::journal::{Journal, JournalKind, JournalModule};
//! let mut j = Journal::new(1);
//! j.record(40, JournalModule::RxParser, JournalKind::SegAccepted, 7, 1448, 0);
//! assert_eq!(j.events_recorded(), 1);
//! assert!(j.lines().next().unwrap().contains("seg_accepted"));
//! ```

use crate::stats::Counter;
use crate::telemetry::MetricsRegistry;

/// Default ring capacity: at 48 B/event this bounds the journal at 3 MB.
pub const JOURNAL_DEFAULT_CAP: usize = 65_536;

/// Number of event kinds in the catalog.
pub const KIND_COUNT: usize = 19;

/// The module an event is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum JournalModule {
    /// RX parser: MAC ingest, cuckoo flow lookup, segment admission.
    RxParser,
    /// Scheduler: coalesce FIFOs, location LUT, migration control.
    Scheduler,
    /// An FPC: event-table accumulation, TCB dispatch, FPU writeback.
    Fpc,
    /// The FPU pipeline proper (decision outcomes).
    Fpu,
    /// Memory manager: DRAM store, TCB cache, swap-in check logic.
    MemoryManager,
    /// Packet generator: TX segmentation.
    PacketGen,
    /// Timer wheel: RTO / zero-window-probe deadlines.
    Timers,
    /// Host doorbell / completion path.
    Host,
}

impl JournalModule {
    /// Every module, in pipeline order.
    pub const ALL: [JournalModule; 8] = [
        JournalModule::RxParser,
        JournalModule::Scheduler,
        JournalModule::Fpc,
        JournalModule::Fpu,
        JournalModule::MemoryManager,
        JournalModule::PacketGen,
        JournalModule::Timers,
        JournalModule::Host,
    ];

    /// Stable module name (used in dump lines and `f4tdbg` filters).
    pub fn name(self) -> &'static str {
        match self {
            JournalModule::RxParser => "rx_parser",
            JournalModule::Scheduler => "scheduler",
            JournalModule::Fpc => "fpc",
            JournalModule::Fpu => "fpu",
            JournalModule::MemoryManager => "memory_manager",
            JournalModule::PacketGen => "packet_gen",
            JournalModule::Timers => "timers",
            JournalModule::Host => "host",
        }
    }
}

/// Identity helper for journal event-name literals. Exists so `f4tlint`'s
/// `metric_name` rule can lint event names exactly like FtScope metric
/// names and FtFlight stage names (snake_case, unique per file) — the
/// event catalog stays consistent with METRICS.md.
const fn event_name(name: &'static str) -> &'static str {
    name
}

/// A typed journal event kind. `a`/`b` payload semantics per kind are
/// documented on each variant (0 when unused).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum JournalKind {
    /// RX parser admitted a segment (`a` = payload bytes, `b` = 1 if the
    /// segment advanced the in-order pointer).
    SegAccepted,
    /// Flow-table cuckoo lookup hit (`a` = probes).
    CuckooHit,
    /// Flow-table cuckoo lookup miss — no such flow; the flow field is
    /// the `u32::MAX` sentinel (`a` = probes, `b` = 1 for a SYN).
    CuckooMiss,
    /// Host doorbell accepted an event (`a` = kind discriminant).
    HostEvent,
    /// A timer deadline fired (`a` = 0 RTO, 1 zero-window probe; `b` = 1
    /// if the resulting event was accepted at the scheduler intake).
    TimerFired,
    /// Scheduler intake accepted an event into a coalesce FIFO
    /// (`a` = FIFO index).
    EventEnqueued,
    /// Scheduler intake merged an event into one already queued
    /// (`a` = FIFO index).
    EventMerged,
    /// Scheduler routed an event (`a` = [`Journal::ROUTE_FPC`] → FPC `b`,
    /// [`Journal::ROUTE_DRAM`], or [`Journal::ROUTE_PARKED`] with `b` the
    /// park cause: 0 mid-migration, 1 DRAM backpressure, 2 FPC
    /// backpressure).
    EventRouted,
    /// Scheduler dropped an event for an unallocated flow.
    EventDropped,
    /// Memory manager bounced an event for a flow that left DRAM.
    EventBounced,
    /// A TCB was installed in an FPC slot (`a` = FPC id).
    TcbInstall,
    /// An FPC evicted a TCB toward DRAM (`a` = FPC id).
    TcbEvict,
    /// Scheduler flipped the location LUT to Moving (`a` = source,
    /// `b` = destination; FPC id or [`Journal::DRAM_SLOT`]).
    TcbMigrateStart,
    /// A migration completed (`a` = 0 DRAM write-back done, 1 installed
    /// in FPC `b`).
    TcbMigrateDone,
    /// Memory-manager check logic requested a swap-in.
    TcbSwapInReq,
    /// Memory manager handled an event in place on a DRAM TCB.
    DramEventHandled,
    /// FPU pass completed (`a` = new `snd_una`, `b` = new `snd_nxt`).
    FpuDecision,
    /// FPU requested a retransmission (`a` = sequence number, `b` =
    /// bytes).
    Retransmit,
    /// Packet generator emitted a segment (`a` = payload bytes, `b` = 1
    /// if a retransmission).
    TxEmit,
}

impl JournalKind {
    /// Every kind, in catalog order (also the metrics emission order).
    pub const ALL: [JournalKind; KIND_COUNT] = [
        JournalKind::SegAccepted,
        JournalKind::CuckooHit,
        JournalKind::CuckooMiss,
        JournalKind::HostEvent,
        JournalKind::TimerFired,
        JournalKind::EventEnqueued,
        JournalKind::EventMerged,
        JournalKind::EventRouted,
        JournalKind::EventDropped,
        JournalKind::EventBounced,
        JournalKind::TcbInstall,
        JournalKind::TcbEvict,
        JournalKind::TcbMigrateStart,
        JournalKind::TcbMigrateDone,
        JournalKind::TcbSwapInReq,
        JournalKind::DramEventHandled,
        JournalKind::FpuDecision,
        JournalKind::Retransmit,
        JournalKind::TxEmit,
    ];

    /// Stable event name (used in dump lines, telemetry and METRICS.md).
    pub fn name(self) -> &'static str {
        match self {
            JournalKind::SegAccepted => event_name("seg_accepted"),
            JournalKind::CuckooHit => event_name("cuckoo_hit"),
            JournalKind::CuckooMiss => event_name("cuckoo_miss"),
            JournalKind::HostEvent => event_name("host_event"),
            JournalKind::TimerFired => event_name("timer_fired"),
            JournalKind::EventEnqueued => event_name("event_enqueued"),
            JournalKind::EventMerged => event_name("event_merged"),
            JournalKind::EventRouted => event_name("event_routed"),
            JournalKind::EventDropped => event_name("event_dropped"),
            JournalKind::EventBounced => event_name("event_bounced"),
            JournalKind::TcbInstall => event_name("tcb_install"),
            JournalKind::TcbEvict => event_name("tcb_evict"),
            JournalKind::TcbMigrateStart => event_name("tcb_migrate_start"),
            JournalKind::TcbMigrateDone => event_name("tcb_migrate_done"),
            JournalKind::TcbSwapInReq => event_name("tcb_swap_in_req"),
            JournalKind::DramEventHandled => event_name("dram_event_handled"),
            JournalKind::FpuDecision => event_name("fpu_decision"),
            JournalKind::Retransmit => event_name("retransmit"),
            JournalKind::TxEmit => event_name("tx_emit"),
        }
    }

    fn index(self) -> usize {
        match self {
            JournalKind::SegAccepted => 0,
            JournalKind::CuckooHit => 1,
            JournalKind::CuckooMiss => 2,
            JournalKind::HostEvent => 3,
            JournalKind::TimerFired => 4,
            JournalKind::EventEnqueued => 5,
            JournalKind::EventMerged => 6,
            JournalKind::EventRouted => 7,
            JournalKind::EventDropped => 8,
            JournalKind::EventBounced => 9,
            JournalKind::TcbInstall => 10,
            JournalKind::TcbEvict => 11,
            JournalKind::TcbMigrateStart => 12,
            JournalKind::TcbMigrateDone => 13,
            JournalKind::TcbSwapInReq => 14,
            JournalKind::DramEventHandled => 15,
            JournalKind::FpuDecision => 16,
            JournalKind::Retransmit => 17,
            JournalKind::TxEmit => 18,
        }
    }
}

/// One journal entry: the absolute engine cycle, the emitting module,
/// the typed kind, the flow, and two kind-specific payload words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalEvent {
    /// Absolute simulated engine cycle of emission.
    pub cycle: u64,
    /// Emitting module.
    pub module: JournalModule,
    /// Typed event kind.
    pub kind: JournalKind,
    /// The flow the event concerns.
    pub flow: u32,
    /// Kind-specific payload (see [`JournalKind`]).
    pub a: u64,
    /// Kind-specific payload (see [`JournalKind`]).
    pub b: u64,
}

impl JournalEvent {
    /// The canonical single-line rendering: the format dump files store
    /// and `f4tdbg` parses (`cycle module kind flow a b`, space-joined).
    pub fn line(&self) -> String {
        format!(
            "{} {} {} {} {} {}",
            self.cycle,
            self.module.name(),
            self.kind.name(),
            self.flow,
            self.a,
            self.b
        )
    }
}

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into an FNV-1a accumulator.
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// The journal: a bounded event ring plus a running digest and per-kind
/// counters, fed by sampled emissions.
#[derive(Debug)]
pub struct Journal {
    /// Track flows whose id is `0 (mod sample)`; 1 tracks everything.
    sample: u32,
    cap: usize,
    /// The ring; `next` is the overwrite cursor once `buf` reaches `cap`.
    buf: Vec<JournalEvent>,
    next: usize,
    /// Running FNV-1a digest over the line rendering of every recorded
    /// event, including ones the ring has since overwritten.
    digest: u64,
    per_kind: [u64; KIND_COUNT],
    recorded: Counter,
    suppressed: Counter,
    overwritten: Counter,
}

impl Journal {
    /// [`JournalKind::EventRouted`] payload: delivered to FPC `b`.
    pub const ROUTE_FPC: u64 = 0;
    /// [`JournalKind::EventRouted`] payload: delivered to the memory
    /// manager (DRAM).
    pub const ROUTE_DRAM: u64 = 1;
    /// [`JournalKind::EventRouted`] payload: parked in the pending queue
    /// (`b` = cause: 0 mid-migration, 1 DRAM backpressure, 2 FPC
    /// backpressure).
    pub const ROUTE_PARKED: u64 = 2;
    /// [`JournalKind::TcbMigrateStart`] endpoint code for DRAM (FPC ids
    /// are 0..=254).
    pub const DRAM_SLOT: u64 = 255;

    /// Creates a journal sampling one in `sample` flows (0 clamps to 1 =
    /// every flow) with the default ring capacity.
    pub fn new(sample: u32) -> Journal {
        Journal::with_capacity(sample, JOURNAL_DEFAULT_CAP)
    }

    /// [`new`](Self::new) with an explicit ring capacity (min 1).
    pub fn with_capacity(sample: u32, cap: usize) -> Journal {
        Journal {
            sample: sample.max(1),
            cap: cap.max(1),
            buf: Vec::new(),
            next: 0,
            digest: FNV_OFFSET,
            per_kind: [0; KIND_COUNT],
            recorded: Counter::new(),
            suppressed: Counter::new(),
            overwritten: Counter::new(),
        }
    }

    /// The sampling divisor.
    pub fn sample_n(&self) -> u32 {
        self.sample
    }

    /// Whether events for `flow` are journaled under the sampling policy.
    /// Flow-id based so fast-forwarded and tick-by-tick runs agree.
    #[inline]
    pub fn sampled(&self, flow: u32) -> bool {
        flow.is_multiple_of(self.sample)
    }

    /// Emits one event. Unsampled flows cost one branch.
    #[inline]
    pub fn record(
        &mut self,
        cycle: u64,
        module: JournalModule,
        kind: JournalKind,
        flow: u32,
        a: u64,
        b: u64,
    ) {
        if !self.sampled(flow) {
            self.suppressed.incr();
            return;
        }
        let ev = JournalEvent { cycle, module, kind, flow, a, b };
        self.digest = fnv1a(self.digest, ev.line().as_bytes());
        self.per_kind[kind.index()] += 1;
        self.recorded.incr();
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
            self.next = (self.next + 1) % self.cap;
            self.overwritten.incr();
        }
    }

    /// Events recorded (sampled flows only), including overwritten ones.
    pub fn events_recorded(&self) -> u64 {
        self.recorded.get()
    }

    /// Emissions skipped by sampling.
    pub fn events_suppressed(&self) -> u64 {
        self.suppressed.get()
    }

    /// Recorded events the bounded ring has since overwritten.
    pub fn events_overwritten(&self) -> u64 {
        self.overwritten.get()
    }

    /// Events currently retained in the ring.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Running FNV-1a digest over every recorded event's line rendering —
    /// a fingerprint of the complete stream, not just the retained tail.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &JournalEvent> {
        let (older, newer) = self.buf.split_at(if self.buf.len() < self.cap {
            0
        } else {
            self.next
        });
        newer.iter().chain(older.iter())
    }

    /// Retained events rendered as canonical lines, oldest first.
    pub fn lines(&self) -> impl Iterator<Item = String> + '_ {
        self.events().map(JournalEvent::line)
    }

    /// Reports journal telemetry into `reg` under `prefix`: stream
    /// counters plus one counter per event kind.
    pub fn collect(&self, prefix: &str, reg: &mut MetricsRegistry) {
        reg.counter(&format!("{prefix}.events_recorded"), self.recorded.get());
        reg.counter(&format!("{prefix}.events_suppressed"), self.suppressed.get());
        reg.counter(&format!("{prefix}.events_overwritten"), self.overwritten.get());
        reg.gauge(&format!("{prefix}.retained"), self.buf.len() as f64);
        for kind in JournalKind::ALL {
            reg.counter(
                &format!("{prefix}.kind.{}", kind.name()),
                self.per_kind[kind.index()],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(j: &mut Journal, cycle: u64, flow: u32) {
        j.record(cycle, JournalModule::RxParser, JournalKind::SegAccepted, flow, 9, 0);
    }

    #[test]
    fn kind_names_unique_snake_case_and_indexed() {
        let mut seen = std::collections::HashSet::new();
        for kind in JournalKind::ALL {
            let n = kind.name();
            assert!(seen.insert(n), "duplicate event name {n}");
            assert!(
                n.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "event name {n} is not snake_case"
            );
            assert_eq!(JournalKind::ALL[kind.index()], kind, "index round-trip");
        }
        assert_eq!(seen.len(), KIND_COUNT);
        let mut seen = std::collections::HashSet::new();
        for m in JournalModule::ALL {
            assert!(seen.insert(m.name()), "duplicate module name {}", m.name());
        }
    }

    #[test]
    fn sampling_is_flow_id_based() {
        let mut j = Journal::new(64);
        for flow in [0u32, 64, 63, 1] {
            ev(&mut j, 10, flow);
        }
        assert_eq!(j.events_recorded(), 2, "flows 0 and 64 sampled");
        assert_eq!(j.events_suppressed(), 2);
        assert!(j.sampled(128) && !j.sampled(129));
    }

    #[test]
    fn ring_overwrites_oldest_and_keeps_order() {
        let mut j = Journal::with_capacity(1, 4);
        for c in 0..6u64 {
            ev(&mut j, c, 1);
        }
        assert_eq!(j.len(), 4);
        assert_eq!(j.events_overwritten(), 2);
        let cycles: Vec<u64> = j.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4, 5], "oldest first, earliest two gone");
    }

    #[test]
    fn digest_covers_overwritten_events() {
        let mut full = Journal::with_capacity(1, 2);
        let mut tail = Journal::with_capacity(1, 2);
        for c in 0..8u64 {
            ev(&mut full, c, 1);
        }
        for c in 6..8u64 {
            ev(&mut tail, c, 1);
        }
        assert_eq!(
            full.lines().collect::<Vec<_>>(),
            tail.lines().collect::<Vec<_>>(),
            "retained tails match"
        );
        assert_ne!(full.digest(), tail.digest(), "digest sees the whole stream");
    }

    #[test]
    fn digest_and_lines_are_deterministic() {
        let build = || {
            let mut j = Journal::new(1);
            j.record(4, JournalModule::Scheduler, JournalKind::EventRouted, 3, 0, 1);
            j.record(8, JournalModule::Fpu, JournalKind::FpuDecision, 3, 2, 4096);
            (j.digest(), j.lines().collect::<Vec<_>>())
        };
        assert_eq!(build(), build());
        let (_, lines) = build();
        assert_eq!(lines[0], "4 scheduler event_routed 3 0 1");
        assert_eq!(lines[1], "8 fpu fpu_decision 3 2 4096");
    }

    #[test]
    fn sample_zero_clamps_to_every_flow() {
        let mut j = Journal::new(0);
        assert_eq!(j.sample_n(), 1);
        ev(&mut j, 1, 12345);
        assert_eq!(j.events_recorded(), 1);
    }

    #[test]
    fn collect_reports_registry_metrics() {
        let mut j = Journal::new(1);
        ev(&mut j, 7, 2);
        let mut reg = MetricsRegistry::new();
        j.collect("journal", &mut reg);
        assert_eq!(reg.counter_value("journal.events_recorded"), 1);
        assert_eq!(reg.counter_value("journal.kind.seg_accepted"), 1);
        assert_eq!(reg.counter_value("journal.kind.tx_emit"), 0);
    }
}
