//! FtVerify — the cycle-level hazard checker.
//!
//! Hardware design-rule checking for the simulated datapath: simulated
//! memories and queues register their per-cycle accesses against a
//! [`PortTracker`]/[`InvariantChecker`] pair, which flags the classes of
//! bug the paper's design rules out by construction:
//!
//! * **dual-port overuse** — more accesses to a BRAM in one cycle than it
//!   has ports (the two-cycle event/dispatch schedule exists precisely to
//!   stay within the dual-port budget, paper §4.2);
//! * **schedule-parity violations** — event accumulation on an odd cycle
//!   or TCB dispatch on an even one;
//! * **same-cycle RMW hazards** — a TCB slot dispatched while its FPU
//!   result is still in flight (the stall-free claim, checked structurally
//!   instead of only counted);
//! * **migration races** — a TCB simultaneously valid in FPC SRAM and
//!   DRAM, a location-LUT entry pointing at a place that no longer holds
//!   the flow, or an illegal LUT state transition (§3.2, §4.4.2);
//! * **valid-bit leaks** — an event accumulated against a resident TCB but
//!   never dispatched within a bound;
//! * **FIFO conservation** — for every [`Fifo`], `pushed == popped +
//!   occupancy` (rejected pushes never enter the queue).
//!
//! The checker is *optional at runtime*: modules take
//! `Option<&mut InvariantChecker>` and the disabled path is a single
//! null-check per call site, so production runs pay nothing. It is enabled
//! via `EngineConfig::check` / `f4tperf --check` and in integration tests.

use crate::fifo::Fifo;
use std::fmt;

/// Default bound (in cycles) after which a pending-but-never-dispatched
/// event on a resident TCB is reported as a valid-bit leak. 2M cycles is
/// 8 ms at 250 MHz — three orders of magnitude above the worst legitimate
/// dispatch latency observed under full backpressure.
pub const DEFAULT_LEAK_BOUND: u64 = 2_000_000;

/// How many violations are retained verbatim; past this only the total
/// count grows (a broken invariant tends to fire every audit).
const VIOLATION_LOG_CAP: usize = 256;

/// The class of design-rule violation detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// A simulated memory saw more accesses in one cycle than it has ports.
    PortOveruse,
    /// An operation ran on the wrong phase of the two-cycle schedule.
    ScheduleParity,
    /// A same-cycle read-modify-write hazard on a TCB slot.
    RmwHazard,
    /// A TCB valid in two places at once, or a stale location-LUT entry,
    /// or an illegal LUT state transition.
    MigrationRace,
    /// An event-table entry stayed valid past the dispatch bound.
    ValidBitLeak,
    /// A FIFO's push/pop/occupancy accounting stopped balancing.
    FifoConservation,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::PortOveruse => "port_overuse",
            ViolationKind::ScheduleParity => "schedule_parity",
            ViolationKind::RmwHazard => "rmw_hazard",
            ViolationKind::MigrationRace => "migration_race",
            ViolationKind::ValidBitLeak => "valid_bit_leak",
            ViolationKind::FifoConservation => "fifo_conservation",
        };
        f.write_str(s)
    }
}

/// One detected violation: where, when, what.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Engine cycle at which the violation was observed.
    pub cycle: u64,
    /// The rule that fired.
    pub kind: ViolationKind,
    /// The module that reported it (e.g. `fpc0.tcb_table`).
    pub module: String,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}: {} [{}]: {}", self.cycle, self.kind, self.module, self.detail)
    }
}

/// Per-cycle access accounting for one simulated memory.
///
/// Lives inside the module that owns the memory (so state persists across
/// cycles) and is only consulted when a checker is attached. Each call to
/// [`PortTracker::access`] charges ports for the given cycle; exceeding
/// the budget reports a [`ViolationKind::PortOveruse`].
///
/// # Examples
///
/// ```
/// use f4t_sim::check::{InvariantChecker, PortTracker};
/// let mut chk = InvariantChecker::new();
/// let mut ports = PortTracker::new("tcb_table", 2);
/// ports.access(7, 1, &mut chk); // read
/// ports.access(7, 1, &mut chk); // write — at budget
/// ports.access(7, 1, &mut chk); // third access in cycle 7 — violation
/// assert_eq!(chk.total_violations(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct PortTracker {
    name: String,
    ports: u32,
    cycle: u64,
    used: u32,
}

impl PortTracker {
    /// Creates a tracker for a memory called `name` with `ports` ports per
    /// cycle.
    pub fn new(name: impl Into<String>, ports: u32) -> PortTracker {
        PortTracker { name: name.into(), ports, cycle: u64::MAX, used: 0 }
    }

    /// Charges `n` port accesses in `cycle`, reporting overuse to `chk`.
    pub fn access(&mut self, cycle: u64, n: u32, chk: &mut InvariantChecker) {
        if cycle != self.cycle {
            self.cycle = cycle;
            self.used = 0;
        }
        self.used += n;
        if self.used > self.ports {
            chk.report(
                cycle,
                ViolationKind::PortOveruse,
                self.name.clone(),
                format!("{} accesses in one cycle ({} ports)", self.used, self.ports),
            );
        }
    }
}

/// Collects violations reported by the simulated modules.
///
/// Owned by the engine when `EngineConfig::check` is set; modules receive
/// it as `Option<&mut InvariantChecker>` so the disabled configuration
/// costs one branch per call site.
#[derive(Debug, Default)]
pub struct InvariantChecker {
    violations: Vec<Violation>,
    total: u64,
    leak_bound: u64,
}

impl InvariantChecker {
    /// Creates a checker with the default valid-bit leak bound.
    pub fn new() -> InvariantChecker {
        InvariantChecker {
            violations: Vec::new(),
            total: 0,
            leak_bound: DEFAULT_LEAK_BOUND,
        }
    }

    /// Overrides the valid-bit leak bound (cycles); used by tests to trip
    /// the leak rule without simulating millions of cycles.
    pub fn set_leak_bound(&mut self, cycles: u64) {
        self.leak_bound = cycles.max(1);
    }

    /// The current valid-bit leak bound in cycles.
    pub fn leak_bound(&self) -> u64 {
        self.leak_bound
    }

    /// Records a violation. The first [`VIOLATION_LOG_CAP`] are retained
    /// verbatim; after that only the total count grows.
    pub fn report(
        &mut self,
        cycle: u64,
        kind: ViolationKind,
        module: impl Into<String>,
        detail: String,
    ) {
        self.total += 1;
        if self.violations.len() < VIOLATION_LOG_CAP {
            self.violations.push(Violation { cycle, kind, module: module.into(), detail });
        }
    }

    /// Audits one FIFO's conservation invariant:
    /// `pushed == popped + occupancy`.
    pub fn check_fifo<T>(&mut self, cycle: u64, name: &str, fifo: &Fifo<T>) {
        let pushed = fifo.total_pushed();
        let popped = fifo.total_popped();
        let len = fifo.len() as u64;
        if pushed != popped + len || fifo.len() > fifo.capacity() {
            self.report(
                cycle,
                ViolationKind::FifoConservation,
                name,
                format!(
                    "pushed {pushed} != popped {popped} + occupancy {len} (capacity {}, rejected {})",
                    fifo.capacity(),
                    fifo.rejected()
                ),
            );
        }
    }

    /// Total violations seen (including any past the retention cap).
    pub fn total_violations(&self) -> u64 {
        self.total
    }

    /// Whether no violation has been reported.
    pub fn is_clean(&self) -> bool {
        self.total == 0
    }

    /// The retained violation log, oldest first.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// A short multi-line report: total count plus the first few entries.
    pub fn summary(&self) -> String {
        use fmt::Write;
        let mut s = format!("check: {} violation(s)", self.total);
        for v in self.violations.iter().take(16) {
            let _ = write!(s, "\n  {v}");
        }
        if self.total > 16 {
            let _ = write!(s, "\n  … {} more", self.total - 16);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_tracker_flags_overuse_per_cycle() {
        let mut chk = InvariantChecker::new();
        let mut p = PortTracker::new("ev_table", 2);
        p.access(0, 1, &mut chk);
        p.access(0, 1, &mut chk);
        assert!(chk.is_clean(), "at budget is legal");
        p.access(0, 1, &mut chk);
        assert_eq!(chk.total_violations(), 1);
        assert_eq!(chk.violations()[0].kind, ViolationKind::PortOveruse);
        // New cycle resets the budget.
        p.access(1, 2, &mut chk);
        assert_eq!(chk.total_violations(), 1);
    }

    #[test]
    fn fifo_conservation_holds_for_honest_queue() {
        let mut chk = InvariantChecker::new();
        let mut f = Fifo::new(4);
        f.push(1).unwrap();
        f.push(2).unwrap();
        f.pop();
        let _ = f.push(3);
        chk.check_fifo(0, "q", &f);
        assert!(chk.is_clean());
    }

    #[test]
    fn violation_log_caps_but_total_keeps_counting() {
        let mut chk = InvariantChecker::new();
        for i in 0..600u64 {
            chk.report(i, ViolationKind::RmwHazard, "fpc0", "test".into());
        }
        assert_eq!(chk.total_violations(), 600);
        assert_eq!(chk.violations().len(), 256);
        assert!(chk.summary().contains("600 violation(s)"));
        assert!(chk.summary().contains("more"));
    }

    #[test]
    fn display_formats_are_stable() {
        let v = Violation {
            cycle: 42,
            kind: ViolationKind::MigrationRace,
            module: "scheduler".into(),
            detail: "flow 7 in SRAM and DRAM".into(),
        };
        assert_eq!(v.to_string(), "cycle 42: migration_race [scheduler]: flow 7 in SRAM and DRAM");
    }

    #[test]
    fn leak_bound_adjustable() {
        let mut chk = InvariantChecker::new();
        assert_eq!(chk.leak_bound(), DEFAULT_LEAK_BOUND);
        chk.set_leak_bound(0);
        assert_eq!(chk.leak_bound(), 1, "bound is clamped to at least one cycle");
    }
}
