//! FtJournal's online health watchdog.
//!
//! The 64K-flow operating point cannot be eyeballed: the system itself
//! must detect anomalies online. The watchdog consumes periodic
//! observations (the engine feeds it at FtVerify audit boundaries) and
//! raises typed alarms for:
//!
//! * **stuck flows** — outstanding work but no forward progress of the
//!   cumulative ACK pointer for a configurable horizon (generalizing the
//!   ad-hoc stuck-flow scan `tests/scale_64k.rs` used to hard-code);
//! * **retransmit storms** — more retransmissions inside one observation
//!   window than the configured threshold;
//! * **queue-depth SLO breaches** — a queue observed at capacity for N
//!   consecutive observations;
//! * **starved LUT entries** — a flow stuck in the location LUT's
//!   `Moving` state past a horizon (a migration that never completed).
//!
//! The watchdog is engine-agnostic: it sees plain observation structs,
//! never engine types, so `f4t-sim` stays dependency-free. Each
//! (kind, subject) pair alarms at most once — an alarm is a forensic
//! trigger (dump + journal), not a per-interval metric.
//!
//! # Examples
//!
//! ```
//! use f4t_sim::watchdog::{FlowObservation, Watchdog, WatchdogConfig};
//! let cfg = WatchdogConfig { stall_horizon_cycles: 100, ..WatchdogConfig::default() };
//! let mut w = Watchdog::new(cfg);
//! let stuck = [FlowObservation { flow: 7, progress: 42, outstanding: true, moving: false }];
//! w.observe(0, &stuck, &[], 0);
//! w.observe(200, &stuck, &[], 0);
//! assert_eq!(w.alarms().len(), 1);
//! ```

use crate::telemetry::MetricsRegistry;
use std::collections::{BTreeMap, BTreeSet};

/// Number of alarm kinds.
pub const ALARM_KIND_COUNT: usize = 4;

/// Watchdog thresholds. Defaults are conservative (no false positives on
/// the healthy reference workloads); tests shrink them to trip fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// A flow with outstanding work whose progress marker is unchanged
    /// for this many cycles is stuck. The default (2.5M cycles = 10 ms
    /// at 250 MHz) sits beyond any healthy RTO backoff round.
    pub stall_horizon_cycles: u64,
    /// Retransmissions within one observation window at or above this
    /// count are a storm.
    pub retx_storm_threshold: u64,
    /// A queue observed at capacity this many consecutive observations
    /// breaches its SLO.
    pub queue_slo_consecutive: u32,
    /// A flow observed in the location LUT's `Moving` state for this
    /// many cycles is starved (its migration never completed).
    pub moving_horizon_cycles: u64,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig {
            stall_horizon_cycles: 2_500_000,
            retx_storm_threshold: 4_096,
            queue_slo_consecutive: 8,
            moving_horizon_cycles: 250_000,
        }
    }
}

/// One flow's health snapshot at an observation boundary.
#[derive(Debug, Clone, Copy)]
pub struct FlowObservation {
    /// The flow id.
    pub flow: u32,
    /// A monotone forward-progress marker (the engine uses the raw
    /// cumulative-ACK pointer `snd_una`).
    pub progress: u64,
    /// Whether the flow has outstanding work (request pointer ahead of
    /// the progress marker). Stall detection only applies while true.
    pub outstanding: bool,
    /// Whether the location LUT currently says `Moving` for this flow.
    pub moving: bool,
}

/// One queue's occupancy snapshot at an observation boundary.
#[derive(Debug, Clone, Copy)]
pub struct QueueObservation {
    /// Stable queue name (e.g. `scheduler.input_fifo`).
    pub name: &'static str,
    /// Entries currently queued.
    pub depth: usize,
    /// Queue capacity.
    pub cap: usize,
}

/// The class of anomaly an alarm reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlarmKind {
    /// No forward progress with work outstanding past the horizon.
    StuckFlow,
    /// Retransmissions above threshold within one observation window.
    RetxStorm,
    /// A queue at capacity for too many consecutive observations.
    QueueSlo,
    /// A location-LUT entry stuck in `Moving` past the horizon.
    StarvedLut,
}

impl AlarmKind {
    /// Every kind, in catalog order.
    pub const ALL: [AlarmKind; ALARM_KIND_COUNT] = [
        AlarmKind::StuckFlow,
        AlarmKind::RetxStorm,
        AlarmKind::QueueSlo,
        AlarmKind::StarvedLut,
    ];

    /// Stable kind name (used in telemetry, dumps and METRICS.md).
    pub fn name(self) -> &'static str {
        match self {
            AlarmKind::StuckFlow => "stuck_flow",
            AlarmKind::RetxStorm => "retx_storm",
            AlarmKind::QueueSlo => "queue_slo",
            AlarmKind::StarvedLut => "starved_lut",
        }
    }

    fn index(self) -> usize {
        match self {
            AlarmKind::StuckFlow => 0,
            AlarmKind::RetxStorm => 1,
            AlarmKind::QueueSlo => 2,
            AlarmKind::StarvedLut => 3,
        }
    }
}

/// A raised alarm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alarm {
    /// Observation cycle at which the alarm fired.
    pub cycle: u64,
    /// Anomaly class.
    pub kind: AlarmKind,
    /// The implicated flow, when the anomaly is per-flow.
    pub flow: Option<u32>,
    /// Human-readable evidence (horizon, counts, queue name).
    pub detail: String,
}

impl Alarm {
    /// Single-line rendering for dumps and test output.
    pub fn line(&self) -> String {
        match self.flow {
            Some(f) => format!("{} {} flow={} {}", self.cycle, self.kind.name(), f, self.detail),
            None => format!("{} {} {}", self.cycle, self.kind.name(), self.detail),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct FlowState {
    progress: u64,
    /// Cycle the progress marker last changed (or tracking began).
    progress_since: u64,
    /// Cycle the flow was first seen in `Moving` (`None` when not moving).
    moving_since: Option<u64>,
}

/// The watchdog: periodic-observation anomaly detector.
#[derive(Debug)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    flows: BTreeMap<u32, FlowState>,
    /// Consecutive at-capacity observations per queue.
    queue_full_streak: BTreeMap<&'static str, u32>,
    /// (kind, subject) pairs already alarmed — alarms fire once.
    alerted: BTreeSet<(usize, String)>,
    alarms: Vec<Alarm>,
    per_kind: [u64; ALARM_KIND_COUNT],
    observations: u64,
    last_retx_total: u64,
}

impl Watchdog {
    /// Creates a watchdog with the given thresholds.
    pub fn new(cfg: WatchdogConfig) -> Watchdog {
        Watchdog {
            cfg,
            flows: BTreeMap::new(),
            queue_full_streak: BTreeMap::new(),
            alerted: BTreeSet::new(),
            alarms: Vec::new(),
            per_kind: [0; ALARM_KIND_COUNT],
            observations: 0,
            last_retx_total: 0,
        }
    }

    /// The configured thresholds.
    pub fn config(&self) -> WatchdogConfig {
        self.cfg
    }

    /// Ingests one observation boundary: per-flow snapshots (the full
    /// live-flow scan, any order — state is keyed by flow id), queue
    /// occupancies and the engine's cumulative retransmission counter.
    /// Returns the number of alarms raised by this observation.
    pub fn observe(
        &mut self,
        cycle: u64,
        flows: &[FlowObservation],
        queues: &[QueueObservation],
        retx_total: u64,
    ) -> usize {
        self.observations += 1;
        let before = self.alarms.len();

        // Flow health: carry state across scans, drop closed flows.
        let mut next = BTreeMap::new();
        for ob in flows {
            let prev = self.flows.get(&ob.flow).copied();
            let mut st = match prev {
                Some(p) if p.progress == ob.progress => p,
                _ => FlowState {
                    progress: ob.progress,
                    progress_since: cycle,
                    moving_since: prev.and_then(|p| p.moving_since),
                },
            };
            st.moving_since = if ob.moving { st.moving_since.or(Some(cycle)) } else { None };
            if ob.outstanding && cycle.saturating_sub(st.progress_since) >= self.cfg.stall_horizon_cycles
            {
                self.raise(
                    cycle,
                    AlarmKind::StuckFlow,
                    Some(ob.flow),
                    format!(
                        "no progress past {} for {} cycles (horizon {})",
                        st.progress,
                        cycle - st.progress_since,
                        self.cfg.stall_horizon_cycles
                    ),
                );
            }
            if let Some(since) = st.moving_since {
                if cycle.saturating_sub(since) >= self.cfg.moving_horizon_cycles {
                    self.raise(
                        cycle,
                        AlarmKind::StarvedLut,
                        Some(ob.flow),
                        format!(
                            "LUT entry Moving for {} cycles (horizon {})",
                            cycle - since,
                            self.cfg.moving_horizon_cycles
                        ),
                    );
                }
            }
            next.insert(ob.flow, st);
        }
        self.flows = next;

        // Queue SLO: at-capacity streaks.
        for q in queues {
            let streak = self.queue_full_streak.entry(q.name).or_insert(0);
            if q.cap > 0 && q.depth >= q.cap {
                *streak += 1;
            } else {
                *streak = 0;
            }
            if *streak >= self.cfg.queue_slo_consecutive {
                let streak = *streak;
                self.raise(
                    cycle,
                    AlarmKind::QueueSlo,
                    None,
                    format!(
                        "queue {} at capacity {} for {} consecutive observations",
                        q.name, q.cap, streak
                    ),
                );
            }
        }

        // Retransmit storm: per-window delta of the cumulative counter.
        let delta = retx_total.saturating_sub(self.last_retx_total);
        self.last_retx_total = retx_total;
        if delta >= self.cfg.retx_storm_threshold {
            self.raise(
                cycle,
                AlarmKind::RetxStorm,
                None,
                format!(
                    "{delta} retransmissions in one observation window (threshold {})",
                    self.cfg.retx_storm_threshold
                ),
            );
        }

        self.alarms.len() - before
    }

    fn raise(&mut self, cycle: u64, kind: AlarmKind, flow: Option<u32>, detail: String) {
        let subject = match (kind, flow) {
            (AlarmKind::QueueSlo | AlarmKind::RetxStorm, _) => {
                // Queue alarms key on the queue name inside the detail;
                // storm alarms are global.
                detail.split_whitespace().nth(1).unwrap_or("").to_string()
            }
            (_, Some(f)) => f.to_string(),
            (_, None) => String::new(),
        };
        if !self.alerted.insert((kind.index(), subject)) {
            return;
        }
        self.per_kind[kind.index()] += 1;
        self.alarms.push(Alarm { cycle, kind, flow, detail });
    }

    /// Alarms raised so far, in firing order.
    pub fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }

    /// Total alarms raised.
    pub fn alarm_count(&self) -> u64 {
        self.alarms.len() as u64
    }

    /// Observation boundaries ingested.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// Reports watchdog telemetry into `reg` under `prefix`.
    pub fn collect(&self, prefix: &str, reg: &mut MetricsRegistry) {
        reg.counter(&format!("{prefix}.observations"), self.observations);
        reg.counter(&format!("{prefix}.alarms_total"), self.alarms.len() as u64);
        reg.gauge(&format!("{prefix}.flows_tracked"), self.flows.len() as f64);
        for kind in AlarmKind::ALL {
            reg.counter(
                &format!("{prefix}.alarm.{}", kind.name()),
                self.per_kind[kind.index()],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(flow: u32, progress: u64, outstanding: bool) -> FlowObservation {
        FlowObservation { flow, progress, outstanding, moving: false }
    }

    fn tight() -> WatchdogConfig {
        WatchdogConfig {
            stall_horizon_cycles: 100,
            retx_storm_threshold: 10,
            queue_slo_consecutive: 3,
            moving_horizon_cycles: 100,
        }
    }

    #[test]
    fn stuck_flow_fires_once_past_horizon() {
        let mut w = Watchdog::new(tight());
        assert_eq!(w.observe(0, &[flow(7, 42, true)], &[], 0), 0);
        assert_eq!(w.observe(50, &[flow(7, 42, true)], &[], 0), 0, "inside horizon");
        assert_eq!(w.observe(150, &[flow(7, 42, true)], &[], 0), 1);
        assert_eq!(w.observe(300, &[flow(7, 42, true)], &[], 0), 0, "alarms once");
        let a = &w.alarms()[0];
        assert_eq!(a.kind, AlarmKind::StuckFlow);
        assert_eq!(a.flow, Some(7));
        assert!(a.line().contains("stuck_flow flow=7"));
    }

    #[test]
    fn progress_resets_the_stall_clock() {
        let mut w = Watchdog::new(tight());
        w.observe(0, &[flow(7, 42, true)], &[], 0);
        w.observe(90, &[flow(7, 43, true)], &[], 0);
        assert_eq!(w.observe(150, &[flow(7, 43, true)], &[], 0), 0, "clock restarted at 90");
        assert_eq!(w.observe(200, &[flow(7, 43, true)], &[], 0), 1);
    }

    #[test]
    fn idle_flows_never_stall() {
        let mut w = Watchdog::new(tight());
        w.observe(0, &[flow(7, 42, false)], &[], 0);
        w.observe(10_000, &[flow(7, 42, false)], &[], 0);
        assert!(w.alarms().is_empty());
    }

    #[test]
    fn closed_flows_are_pruned() {
        let mut w = Watchdog::new(tight());
        w.observe(0, &[flow(7, 42, true)], &[], 0);
        w.observe(50, &[], &[], 0); // flow closed
        w.observe(500, &[flow(7, 42, true)], &[], 0); // reopened id: fresh clock
        assert!(w.alarms().is_empty());
    }

    #[test]
    fn starved_lut_entry_detected() {
        let mut w = Watchdog::new(tight());
        let moving = FlowObservation { flow: 3, progress: 0, outstanding: false, moving: true };
        w.observe(0, &[moving], &[], 0);
        assert_eq!(w.observe(150, &[moving], &[], 0), 1);
        assert_eq!(w.alarms()[0].kind, AlarmKind::StarvedLut);
        // Movement completing clears the clock.
        let mut w = Watchdog::new(tight());
        w.observe(0, &[moving], &[], 0);
        w.observe(50, &[flow(3, 0, false)], &[], 0);
        assert_eq!(w.observe(500, &[moving], &[], 0), 0, "fresh Moving episode");
    }

    #[test]
    fn queue_slo_needs_consecutive_full_observations() {
        let mut w = Watchdog::new(tight());
        let full = QueueObservation { name: "scheduler.input_fifo", depth: 8, cap: 8 };
        let ok = QueueObservation { name: "scheduler.input_fifo", depth: 2, cap: 8 };
        w.observe(0, &[], &[full], 0);
        w.observe(1, &[], &[ok], 0); // streak broken
        w.observe(2, &[], &[full], 0);
        w.observe(3, &[], &[full], 0);
        assert!(w.alarms().is_empty());
        assert_eq!(w.observe(4, &[], &[full], 0), 1);
        assert_eq!(w.alarms()[0].kind, AlarmKind::QueueSlo);
        assert!(w.alarms()[0].detail.contains("scheduler.input_fifo"));
    }

    #[test]
    fn retx_storm_uses_window_delta() {
        let mut w = Watchdog::new(tight());
        w.observe(0, &[], &[], 5);
        assert!(w.alarms().is_empty(), "5 in the first window is below threshold");
        w.observe(1, &[], &[], 9);
        assert!(w.alarms().is_empty(), "delta 4");
        assert_eq!(w.observe(2, &[], &[], 30), 1, "delta 21 >= 10");
        assert_eq!(w.alarms()[0].kind, AlarmKind::RetxStorm);
    }

    #[test]
    fn collect_reports_registry_metrics() {
        let mut w = Watchdog::new(tight());
        w.observe(0, &[flow(1, 0, true)], &[], 0);
        w.observe(200, &[flow(1, 0, true)], &[], 0);
        let mut reg = MetricsRegistry::new();
        w.collect("watchdog", &mut reg);
        assert_eq!(reg.counter_value("watchdog.observations"), 2);
        assert_eq!(reg.counter_value("watchdog.alarms_total"), 1);
        assert_eq!(reg.counter_value("watchdog.alarm.stuck_flow"), 1);
        assert_eq!(reg.counter_value("watchdog.alarm.retx_storm"), 0);
    }
}
