//! A minimal discrete-event scheduler.
//!
//! The NS3-equivalent reference simulator (`f4t-netsim`, used for the
//! paper's Fig. 14 congestion-window comparison) is event-driven rather
//! than cycle-driven. [`EventQueue`] provides the classic time-ordered
//! priority queue with a monotonic sequence number to break ties in
//! insertion order, which keeps simulations deterministic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered event queue. `E` is the event payload; times are in
/// nanoseconds (or any monotonically increasing `u64` unit).
///
/// # Examples
///
/// ```
/// use f4t_sim::EventQueue;
/// let mut q = EventQueue::new();
/// q.schedule(20, "later");
/// q.schedule(10, "sooner");
/// assert_eq!(q.pop(), Some((10, "sooner")));
/// assert_eq!(q.pop(), Some((20, "later")));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(u64, u64, EventSlot<E>)>>,
    seq: u64,
    now: u64,
}

/// Wrapper that gives the payload vacuous ordering so only (time, seq)
/// determine heap order.
#[derive(Debug, Clone)]
struct EventSlot<E>(E);

impl<E> PartialEq for EventSlot<E> {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}
impl<E> Eq for EventSlot<E> {}
impl<E> PartialOrd for EventSlot<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for EventSlot<E> {
    fn cmp(&self, _other: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> EventQueue<E> {
        EventQueue { heap: BinaryHeap::new(), seq: 0, now: 0 }
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to the current time; the event
    /// fires next, after events already due now (FIFO among equal times).
    pub fn schedule(&mut self, at: u64, event: E) {
        let at = at.max(self.now);
        self.heap.push(Reverse((at, self.seq, EventSlot(event))));
        self.seq += 1;
    }

    /// Schedules `event` `delay` units after the current time.
    pub fn schedule_in(&mut self, delay: u64, event: E) {
        self.schedule(self.now.saturating_add(delay), event);
    }

    /// Removes and returns the earliest event, advancing the clock to its
    /// timestamp.
    pub fn pop(&mut self) -> Option<(u64, E)> {
        let Reverse((t, _, EventSlot(e))) = self.heap.pop()?;
        self.now = t;
        Some((t, e))
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((t, _, _))| *t)
    }

    /// The queue's activity horizon: the earliest time at which popping
    /// can yield an event, i.e. the time a driver may fast-forward to.
    /// `None` means the queue is drained. Synonym for
    /// [`peek_time`](Self::peek_time), named for the cross-layer horizon
    /// contract (see [`crate::clock::merge_horizon`]).
    pub fn next_activity(&self) -> Option<u64> {
        self.peek_time()
    }

    /// The current simulation time (timestamp of the last popped event).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, 'c');
        q.schedule(10, 'a');
        q.schedule(20, 'b');
        assert_eq!(q.pop(), Some((10, 'a')));
        assert_eq!(q.pop(), Some((20, 'b')));
        assert_eq!(q.pop(), Some((30, 'c')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_fifo() {
        let mut q = EventQueue::new();
        q.schedule(5, 1);
        q.schedule(5, 2);
        q.schedule(5, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn clock_advances_and_clamps() {
        let mut q = EventQueue::new();
        q.schedule(100, "x");
        assert_eq!(q.now(), 0);
        q.pop();
        assert_eq!(q.now(), 100);
        // Scheduling in the past clamps to now.
        q.schedule(50, "past");
        assert_eq!(q.peek_time(), Some(100));
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(100, ());
        q.pop();
        q.schedule_in(5, ());
        assert_eq!(q.peek_time(), Some(105));
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1, 0);
        assert_eq!(q.len(), 1);
    }
}
