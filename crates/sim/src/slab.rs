//! FtTurbo struct-of-arrays slab allocators (DESIGN.md §12).
//!
//! Hot per-flow state used to live in `HashMap`/`VecDeque`s: every event
//! paid a SipHash plus a pointer chase, and iteration order depended on
//! the hasher seed — poison for the determinism contract. This module
//! provides the dense replacements every tick-path structure now builds
//! on:
//!
//! * [`Slab`] — a generation-checked slot arena: O(1) insert/remove/get,
//!   stable [`SlabHandle`]s, LIFO free-list reuse, and deterministic
//!   slot-order iteration (a function of the operation history only,
//!   never of a hasher seed or allocation addresses).
//! * [`FlowSlab`] — a `FlowId -> slot` dense indirection over a [`Slab`]:
//!   per-flow lookups are two array indexes, and iteration is ascending
//!   flow id, which is what the audit/watchdog/telemetry paths need.
//! * [`SlabQueue`] — a growable ring deque with batch drain, replacing
//!   the writeback / pending / swap-in `VecDeque`s.
//! * [`FlowSet`] — a dense flow-id bitset with ascending iteration,
//!   replacing `HashSet<FlowId>` membership tests.
//! * [`SlabCursor`] — an index-based iteration cursor that stays valid
//!   across insert/remove/grow, for scans that mutate as they walk.
//!
//! Everything here is index-based: no handle ever dangles (generation
//! checks turn use-after-free into `None`), and no structure allocates
//! per-entry.

/// A generation-checked reference to a [`Slab`] slot.
///
/// Handles are `Copy` and remain cheap to store in queues or secondary
/// tables. A handle whose slot has since been freed (and possibly
/// reused) no longer resolves: the generation check fails and accessors
/// return `None` instead of aliasing the new occupant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlabHandle {
    index: u32,
    gen: u32,
}

impl SlabHandle {
    /// The slot index this handle points at (stable for the handle's
    /// lifetime; meaningful for dense secondary arrays).
    pub fn index(&self) -> usize {
        self.index as usize
    }

    /// The generation the slot had when this handle was issued.
    pub fn generation(&self) -> u32 {
        self.gen
    }
}

/// One slab slot: the payload plus the slot's current generation. Even
/// generations are vacant, odd are occupied, so a stale handle can never
/// match a vacant slot.
#[derive(Debug, Clone)]
struct Slot<T> {
    gen: u32,
    value: Option<T>,
}

/// A dense, generation-checked slot arena with deterministic iteration.
///
/// # Examples
///
/// ```
/// use f4t_sim::slab::Slab;
///
/// let mut slab: Slab<&str> = Slab::with_capacity(0); // 0-capacity grows
/// let a = slab.insert("a");
/// let b = slab.insert("b");
/// assert_eq!(slab.get(a), Some(&"a"));
/// assert_eq!(slab.remove(a), Some("a"));
/// assert_eq!(slab.get(a), None, "stale handle no longer resolves");
/// let c = slab.insert("c"); // reuses a's slot with a new generation
/// assert_eq!(c.index(), a.index());
/// assert_eq!(slab.get(a), None, "generation check still trips");
/// assert_eq!(slab.len(), 2);
/// let order: Vec<&str> = slab.iter().map(|(_, v)| *v).collect();
/// assert_eq!(order, ["c", "b"], "slot order: deterministic, reuse-first");
/// # let _ = b;
/// ```
#[derive(Debug, Clone)]
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Slab<T> {
        Slab::with_capacity(0)
    }
}

impl<T> Slab<T> {
    /// A slab pre-sized for `capacity` entries. `0` is valid: the slab
    /// starts empty and grows on first insert.
    pub fn with_capacity(capacity: usize) -> Slab<T> {
        Slab { slots: Vec::with_capacity(capacity), free: Vec::new(), len: 0 }
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the slab holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slots ever allocated (the dense-array extent secondary SoA
    /// columns must match).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Inserts a value, reusing the most recently freed slot if any
    /// (LIFO keeps the hot end of the arena dense and cache-warm).
    pub fn insert(&mut self, value: T) -> SlabHandle {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            slot.gen = slot.gen.wrapping_add(1); // even -> odd: occupied
            slot.value = Some(value);
            return SlabHandle { index, gen: slot.gen };
        }
        let index = self.slots.len() as u32;
        self.slots.push(Slot { gen: 1, value: Some(value) });
        SlabHandle { index, gen: 1 }
    }

    fn live(&self, h: SlabHandle) -> bool {
        self.slots.get(h.index()).is_some_and(|s| s.gen == h.gen && s.value.is_some())
    }

    /// Whether `h` still refers to a live entry.
    pub fn contains(&self, h: SlabHandle) -> bool {
        self.live(h)
    }

    /// The entry behind `h`, or `None` if it was freed (generation
    /// mismatch) — a use-after-free reads as absence, never as aliasing.
    pub fn get(&self, h: SlabHandle) -> Option<&T> {
        if self.live(h) { self.slots[h.index()].value.as_ref() } else { None }
    }

    /// Mutable access behind `h` under the same generation check.
    pub fn get_mut(&mut self, h: SlabHandle) -> Option<&mut T> {
        if self.live(h) { self.slots[h.index()].value.as_mut() } else { None }
    }

    /// Frees the entry behind `h`, returning it. A stale handle is a
    /// no-op `None`.
    pub fn remove(&mut self, h: SlabHandle) -> Option<T> {
        if !self.live(h) {
            return None;
        }
        let slot = &mut self.slots[h.index()];
        slot.gen = slot.gen.wrapping_add(1); // odd -> even: vacant
        self.len -= 1;
        self.free.push(h.index);
        slot.value.take()
    }

    /// Iterates live entries in ascending slot order. The order is a
    /// pure function of the insert/remove history — two runs replaying
    /// the same operations iterate identically.
    pub fn iter(&self) -> impl Iterator<Item = (SlabHandle, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.value.as_ref().map(|v| (SlabHandle { index: i as u32, gen: s.gen }, v))
        })
    }

    /// Mutable slot-order iteration.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (SlabHandle, &mut T)> {
        self.slots.iter_mut().enumerate().filter_map(|(i, s)| {
            let gen = s.gen;
            s.value.as_mut().map(move |v| (SlabHandle { index: i as u32, gen }, v))
        })
    }

    /// An index-based cursor for scans that insert/remove/grow while
    /// walking (see [`SlabCursor`]).
    pub fn cursor(&self) -> SlabCursor {
        SlabCursor { next: 0 }
    }
}

/// An iteration cursor over a [`Slab`] that stays valid across
/// mutation: it remembers only the next slot index, so growth during
/// the walk extends the walk, and removal behind the cursor is skipped
/// naturally. Entries inserted into freed slots *before* the cursor are
/// not revisited.
#[derive(Debug, Clone, Copy)]
pub struct SlabCursor {
    next: u32,
}

impl SlabCursor {
    /// Advances to the next live entry at or past the cursor position.
    pub fn next<T>(&mut self, slab: &Slab<T>) -> Option<SlabHandle> {
        while (self.next as usize) < slab.slots.len() {
            let i = self.next as usize;
            self.next += 1;
            if slab.slots[i].value.is_some() {
                return Some(SlabHandle { index: i as u32, gen: slab.slots[i].gen });
            }
        }
        None
    }
}

/// Dense `FlowId -> slot` indirection over a [`Slab`].
///
/// The index side is a flat `Vec` keyed by the raw flow id, so a lookup
/// is two bounds-checked array reads and zero hashing. Iteration is
/// ascending flow id — the deterministic order the audit, watchdog and
/// telemetry paths require.
///
/// # Examples
///
/// ```
/// use f4t_sim::slab::FlowSlab;
///
/// let mut m: FlowSlab<u64> = FlowSlab::with_capacity(8);
/// m.insert(5, 500);
/// m.insert(2, 200);
/// assert_eq!(m.get(5), Some(&500));
/// let ids: Vec<u32> = m.iter().map(|(id, _)| id).collect();
/// assert_eq!(ids, [2, 5], "ascending flow id, not insertion order");
/// assert_eq!(m.remove(5), Some(500));
/// assert_eq!(m.get(5), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlowSlab<T> {
    index: Vec<Option<SlabHandle>>,
    slab: Slab<T>,
}

impl<T> FlowSlab<T> {
    /// A map pre-sized for flow ids below `capacity` (grows on demand;
    /// `0` is valid).
    pub fn with_capacity(capacity: usize) -> FlowSlab<T> {
        FlowSlab { index: Vec::with_capacity(capacity), slab: Slab::with_capacity(capacity) }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.slab.len()
    }

    /// Whether no flow has an entry.
    pub fn is_empty(&self) -> bool {
        self.slab.is_empty()
    }

    fn handle(&self, id: u32) -> Option<SlabHandle> {
        self.index.get(id as usize).copied().flatten()
    }

    /// Whether `id` has an entry.
    pub fn contains(&self, id: u32) -> bool {
        self.handle(id).is_some_and(|h| self.slab.contains(h))
    }

    /// The entry for `id`.
    pub fn get(&self, id: u32) -> Option<&T> {
        self.handle(id).and_then(|h| self.slab.get(h))
    }

    /// Mutable entry for `id`.
    pub fn get_mut(&mut self, id: u32) -> Option<&mut T> {
        let h = self.handle(id)?;
        self.slab.get_mut(h)
    }

    /// Inserts or replaces the entry for `id`, returning the previous
    /// value if any (the `HashMap::insert` contract).
    pub fn insert(&mut self, id: u32, value: T) -> Option<T> {
        if let Some(h) = self.handle(id) {
            if let Some(v) = self.slab.get_mut(h) {
                return Some(std::mem::replace(v, value));
            }
        }
        if self.index.len() <= id as usize {
            self.index.resize(id as usize + 1, None);
        }
        let h = self.slab.insert(value);
        self.index[id as usize] = Some(h);
        None
    }

    /// Removes and returns the entry for `id`.
    pub fn remove(&mut self, id: u32) -> Option<T> {
        let h = self.handle(id)?;
        let v = self.slab.remove(h);
        if v.is_some() {
            self.index[id as usize] = None;
        }
        v
    }

    /// Iterates `(flow id, entry)` in ascending flow id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.index.iter().enumerate().filter_map(|(id, h)| {
            h.and_then(|h| self.slab.get(h)).map(|v| (id as u32, v))
        })
    }

    /// Ascending flow ids with live entries.
    pub fn ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.iter().map(|(id, _)| id)
    }

    /// Iterates entries in slab slot order (insertion/reuse order) —
    /// the cache-friendly walk for hot loops where flow-id order is not
    /// part of the observable contract.
    pub fn iter_dense(&self) -> impl Iterator<Item = &T> {
        self.slab.iter().map(|(_, v)| v)
    }
}

/// A growable ring deque with batch drain: the slab-backed replacement
/// for tick-path `VecDeque`s (memory-manager writeback, scheduler
/// pending / swap-in). Contiguous storage, power-of-two capacity,
/// amortized O(1) at both ends.
///
/// # Examples
///
/// ```
/// use f4t_sim::slab::SlabQueue;
///
/// let mut q: SlabQueue<u32> = SlabQueue::with_capacity(0);
/// q.push_back(1);
/// q.push_back(2);
/// q.push_front(0); // re-park at the head (scheduler retry semantics)
/// assert_eq!(q.len(), 3);
/// assert_eq!(q.front(), Some(&0));
/// let drained: Vec<u32> = q.drain_front(2).collect();
/// assert_eq!(drained, [0, 1]);
/// assert_eq!(q.pop_front(), Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct SlabQueue<T> {
    buf: Vec<Option<T>>,
    head: usize,
    len: usize,
}

impl<T> Default for SlabQueue<T> {
    fn default() -> SlabQueue<T> {
        SlabQueue::with_capacity(0)
    }
}

impl<T> SlabQueue<T> {
    /// A queue pre-sized for `capacity` entries (rounded up to a power
    /// of two; `0` starts empty and grows on first push).
    pub fn with_capacity(capacity: usize) -> SlabQueue<T> {
        let cap = capacity.next_power_of_two().max(if capacity == 0 { 0 } else { 4 });
        let mut buf = Vec::new();
        buf.resize_with(cap, || None);
        SlabQueue { buf, head: 0, len: 0 }
    }

    /// Entries queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn mask(&self) -> usize {
        self.buf.len() - 1
    }

    fn grow(&mut self) {
        let old_cap = self.buf.len();
        let new_cap = (old_cap * 2).max(4);
        let mut buf = Vec::new();
        buf.resize_with(new_cap, || None);
        for (i, slot) in buf.iter_mut().enumerate().take(self.len) {
            *slot = self.buf[(self.head + i) & (old_cap.max(1) - 1)].take();
        }
        self.buf = buf;
        self.head = 0;
    }

    /// Appends at the tail.
    pub fn push_back(&mut self, value: T) {
        if self.len == self.buf.len() {
            self.grow();
        }
        let at = (self.head + self.len) & self.mask();
        self.buf[at] = Some(value);
        self.len += 1;
    }

    /// Prepends at the head (the scheduler's "re-park for retry" path).
    pub fn push_front(&mut self, value: T) {
        if self.len == self.buf.len() {
            self.grow();
        }
        self.head = (self.head.wrapping_sub(1)) & self.mask();
        self.buf[self.head] = Some(value);
        self.len += 1;
    }

    /// Removes and returns the head entry.
    pub fn pop_front(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let v = self.buf[self.head].take();
        self.head = (self.head + 1) & self.mask();
        self.len -= 1;
        v
    }

    /// The head entry without removing it.
    pub fn front(&self) -> Option<&T> {
        if self.len == 0 { None } else { self.buf[self.head].as_ref() }
    }

    /// Mutable head entry.
    pub fn front_mut(&mut self) -> Option<&mut T> {
        if self.len == 0 { None } else { self.buf[self.head].as_mut() }
    }

    /// Drains up to `n` entries from the head as one batch — the
    /// per-tick drain primitive (one bounds computation per batch
    /// instead of per entry).
    pub fn drain_front(&mut self, n: usize) -> impl Iterator<Item = T> + '_ {
        let take = n.min(self.len);
        let head = self.head;
        let mask = if self.buf.is_empty() { 0 } else { self.mask() };
        self.head = if self.buf.is_empty() { 0 } else { (self.head + take) & mask };
        self.len -= take;
        let buf = &mut self.buf;
        (0..take).filter_map(move |i| buf[(head + i) & mask].take())
    }

    /// In-order iteration, head first (no removal).
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let mask = if self.buf.is_empty() { 0 } else { self.mask() };
        (0..self.len).filter_map(move |i| self.buf[(self.head + i) & mask].as_ref())
    }
}

/// A dense flow-id bitset with deterministic ascending iteration: the
/// replacement for `HashSet<FlowId>` membership state.
///
/// # Examples
///
/// ```
/// use f4t_sim::slab::FlowSet;
///
/// let mut s = FlowSet::with_capacity(0);
/// assert!(s.insert(130));
/// assert!(s.insert(7));
/// assert!(!s.insert(7), "already present");
/// assert!(s.contains(130));
/// assert!(s.remove(130));
/// assert!(!s.remove(130));
/// assert_eq!(s.iter().collect::<Vec<_>>(), [7]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlowSet {
    words: Vec<u64>,
    len: usize,
}

impl FlowSet {
    /// A set pre-sized for flow ids below `capacity` (grows on demand).
    pub fn with_capacity(capacity: usize) -> FlowSet {
        FlowSet { words: vec![0; capacity.div_ceil(64)], len: 0 }
    }

    /// Members present.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds `id`; `true` if it was newly inserted (the `HashSet`
    /// contract).
    pub fn insert(&mut self, id: u32) -> bool {
        let (w, b) = (id as usize / 64, id as usize % 64);
        if self.words.len() <= w {
            self.words.resize(w + 1, 0);
        }
        let was = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        if !was {
            self.len += 1;
        }
        !was
    }

    /// Removes `id`; `true` if it was present.
    pub fn remove(&mut self, id: u32) -> bool {
        let (w, b) = (id as usize / 64, id as usize % 64);
        let Some(word) = self.words.get_mut(w) else { return false };
        let was = *word & (1 << b) != 0;
        *word &= !(1 << b);
        if was {
            self.len -= 1;
        }
        was
    }

    /// Membership test.
    pub fn contains(&self, id: u32) -> bool {
        self.words.get(id as usize / 64).is_some_and(|w| w & (1 << (id as usize % 64)) != 0)
    }

    /// Ascending member iteration.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter(move |b| w & (1 << b) != 0).map(move |b| (wi * 64 + b) as u32)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;
    use std::collections::HashMap;

    #[test]
    fn slot_reuse_after_free_trips_generation_check() {
        let mut slab = Slab::with_capacity(2);
        let a = slab.insert("a");
        assert_eq!(slab.remove(a), Some("a"));
        // Reuse: same slot index, new generation.
        let b = slab.insert("b");
        assert_eq!(b.index(), a.index());
        assert_ne!(b.generation(), a.generation());
        // The stale handle must not alias the new occupant.
        assert!(!slab.contains(a));
        assert_eq!(slab.get(a), None);
        assert_eq!(slab.get_mut(a), None);
        assert_eq!(slab.remove(a), None, "stale remove is a no-op");
        assert_eq!(slab.get(b), Some(&"b"), "stale remove did not free the reused slot");
        // Double free of the fresh handle is also inert.
        assert_eq!(slab.remove(b), Some("b"));
        assert_eq!(slab.remove(b), None);
        assert!(slab.is_empty());
    }

    #[test]
    fn grow_under_iteration_keeps_cursor_and_handles_valid() {
        let mut slab = Slab::with_capacity(2);
        let first: Vec<_> = (0..4).map(|i| slab.insert(i)).collect();
        let mut cursor = slab.cursor();
        let mut seen = Vec::new();
        // Walk two entries, then grow the slab mid-iteration.
        for _ in 0..2 {
            let h = cursor.next(&slab).unwrap();
            seen.push(*slab.get(h).unwrap());
        }
        let late: Vec<_> = (100..140).map(|i| slab.insert(i)).collect();
        // Old handles survive the growth reallocation.
        for (i, h) in first.iter().enumerate() {
            assert_eq!(slab.get(*h), Some(&(i as i32)));
        }
        // The cursor keeps walking: remaining originals, then the
        // entries appended during iteration, in slot order.
        while let Some(h) = cursor.next(&slab) {
            seen.push(*slab.get(h).unwrap());
        }
        let expected: Vec<i32> = (0..4).chain(100..140).collect();
        assert_eq!(seen, expected);
        // Removal mid-walk is also safe: a fresh cursor skips the hole.
        slab.remove(first[1]);
        let mut cursor = slab.cursor();
        let mut ids = Vec::new();
        while let Some(h) = cursor.next(&slab) {
            ids.push(*slab.get(h).unwrap());
        }
        assert!(!ids.contains(&1));
        assert_eq!(ids.len(), first.len() + late.len() - 1);
    }

    #[test]
    fn zero_capacity_structures_grow_on_demand() {
        let mut slab: Slab<u32> = Slab::with_capacity(0);
        assert!(slab.is_empty());
        assert_eq!(slab.slot_count(), 0);
        let h = slab.insert(9);
        assert_eq!(slab.get(h), Some(&9));

        let mut q: SlabQueue<u32> = SlabQueue::with_capacity(0);
        assert_eq!(q.pop_front(), None);
        assert_eq!(q.drain_front(8).count(), 0);
        q.push_front(1);
        q.push_back(2);
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), [1, 2]);

        let mut m: FlowSlab<u32> = FlowSlab::with_capacity(0);
        assert_eq!(m.get(1000), None);
        m.insert(1000, 1);
        assert_eq!(m.get(1000), Some(&1));

        let mut s = FlowSet::with_capacity(0);
        assert!(!s.contains(70));
        s.insert(70);
        assert!(s.contains(70));
    }

    #[test]
    fn flow_slab_iterates_ascending_and_replaces_like_hashmap() {
        let mut m = FlowSlab::with_capacity(4);
        for id in [9u32, 3, 7, 1] {
            assert_eq!(m.insert(id, id * 10), None);
        }
        assert_eq!(m.insert(7, 700), Some(70), "replace returns the old value");
        assert_eq!(m.iter().collect::<Vec<_>>(), [(1, &10), (3, &30), (7, &700), (9, &90)]);
        assert_eq!(m.ids().collect::<Vec<_>>(), [1, 3, 7, 9]);
        assert_eq!(m.remove(3), Some(30));
        assert_eq!(m.remove(3), None);
        assert_eq!(m.len(), 3);
        // Dense iteration touches every live entry exactly once.
        let mut dense: Vec<u32> = m.iter_dense().copied().collect();
        dense.sort_unstable();
        assert_eq!(dense, [10, 90, 700]);
    }

    #[test]
    fn slab_queue_wraps_and_batch_drains() {
        let mut q = SlabQueue::with_capacity(4);
        for round in 0..10u32 {
            q.push_back(round * 2);
            q.push_back(round * 2 + 1);
            assert_eq!(q.drain_front(2).collect::<Vec<_>>(), [round * 2, round * 2 + 1]);
        }
        assert!(q.is_empty());
        // Forced growth with a wrapped head preserves order.
        for i in 0..3u32 {
            q.push_back(i);
        }
        q.pop_front();
        for i in 3..20u32 {
            q.push_back(i);
        }
        q.push_front(99);
        let all: Vec<u32> = q.drain_front(usize::MAX).collect();
        assert_eq!(all[0], 99);
        assert_eq!(&all[1..], (1..20).collect::<Vec<_>>().as_slice());
    }

    /// Randomized model equivalence: a [`FlowSlab`] driven by an
    /// arbitrary insert/remove/get schedule behaves exactly like
    /// `HashMap`, and its iteration equals the model's sorted items.
    #[test]
    fn flow_slab_matches_hashmap_model_under_random_ops() {
        for seed in 0..4u64 {
            let mut rng = SimRng::new(0x51AB_0000 + seed);
            let mut slab: FlowSlab<u64> = FlowSlab::with_capacity(0);
            let mut model: HashMap<u32, u64> = HashMap::new();
            for op in 0..4_000u64 {
                let id = rng.next_below(96) as u32;
                match rng.next_below(4) {
                    0 | 1 => {
                        let v = op;
                        assert_eq!(slab.insert(id, v), model.insert(id, v), "seed {seed} op {op}");
                    }
                    2 => {
                        assert_eq!(slab.remove(id), model.remove(&id), "seed {seed} op {op}");
                    }
                    _ => {
                        assert_eq!(slab.get(id), model.get(&id), "seed {seed} op {op}");
                        assert_eq!(slab.contains(id), model.contains_key(&id));
                    }
                }
                assert_eq!(slab.len(), model.len());
            }
            let mut expected: Vec<(u32, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
            expected.sort_unstable();
            let got: Vec<(u32, u64)> = slab.iter().map(|(k, &v)| (k, v)).collect();
            assert_eq!(got, expected, "seed {seed}: iteration must be ascending flow id");
        }
    }

    /// Same property for [`SlabQueue`] vs `VecDeque` and [`FlowSet`] vs
    /// `HashSet`.
    #[test]
    fn queue_and_set_match_std_models_under_random_ops() {
        use std::collections::{HashSet, VecDeque};
        let mut rng = SimRng::new(0x51AB_CAFE);
        let mut q: SlabQueue<u64> = SlabQueue::with_capacity(0);
        let mut qm: VecDeque<u64> = VecDeque::new();
        let mut s = FlowSet::with_capacity(0);
        let mut sm: HashSet<u32> = HashSet::new();
        for op in 0..6_000u64 {
            match rng.next_below(8) {
                0..=2 => {
                    q.push_back(op);
                    qm.push_back(op);
                }
                3 => {
                    q.push_front(op);
                    qm.push_front(op);
                }
                4 => assert_eq!(q.pop_front(), qm.pop_front(), "op {op}"),
                5 => {
                    let n = rng.next_below(5) as usize;
                    let got: Vec<u64> = q.drain_front(n).collect();
                    let want: Vec<u64> = qm.drain(..n.min(qm.len())).collect();
                    assert_eq!(got, want, "op {op}");
                }
                _ => {
                    let id = rng.next_below(200) as u32;
                    if rng.next_below(2) == 0 {
                        assert_eq!(s.insert(id), sm.insert(id), "op {op}");
                    } else {
                        assert_eq!(s.remove(id), sm.remove(&id), "op {op}");
                    }
                }
            }
            assert_eq!(q.len(), qm.len());
            assert_eq!(q.front(), qm.front());
            assert_eq!(s.len(), sm.len());
        }
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), qm.iter().copied().collect::<Vec<_>>());
        let mut want: Vec<u32> = sm.into_iter().collect();
        want.sort_unstable();
        assert_eq!(s.iter().collect::<Vec<_>>(), want);
    }
}
