//! FtPulse — deterministic time-series telemetry (DESIGN.md §15).
//!
//! Every observability layer before this one (FtScope snapshots, FtFlight
//! percentiles, FtJournal events) reports end-of-run aggregates. FtPulse
//! adds the time axis: a [`PulseRecorder`] samples a curated set of rates
//! and gauges at a fixed simulated-cycle interval into bounded per-series
//! rings, so throughput ramps, cwnd trajectories, stall storms, and
//! occupancy waves are visible as *windowed series*, not just sums.
//!
//! Determinism contract (the whole point):
//!
//! * Samples are taken only at cycles that are exact multiples of the
//!   configured interval. The engine caps fast-forward windows at the next
//!   sample boundary (the FtVerify-audit / watchdog-sweep precedent), so
//!   fast-forward, tick-by-tick, and every worker-pool size produce
//!   **byte-identical** series and an identical running digest.
//! * Everything recorded is an integer. Rates are deltas of cumulative
//!   counters between consecutive windows; gauges are instantaneous
//!   values at the boundary. No floats ever enter the digest.
//! * A running FNV-1a digest folds every sample *as it is recorded*, so
//!   the digest covers windows later overwritten by the bounded ring —
//!   same scheme as the FtJournal event digest.
//! * Under sharded runs each shard records its own series; aggregation
//!   ([`PulseRecorder::aggregate_json`]) walks shards in fixed order and
//!   is integer-only (sums for rates/gauges, maxima for stage p99s).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::flight::{FlightStage, STAGE_COUNT};
use crate::telemetry::MetricsRegistry;

/// Default sampling interval in engine cycles (32.768 µs at 250 MHz) —
/// coarse enough that fast-forward keeps its big skips, fine enough to
/// resolve slow-start ramps and retransmit storms.
pub const PULSE_DEFAULT_INTERVAL: u64 = 8_192;

/// Default per-flow sampling rate: flows whose id is a multiple of this
/// get cwnd/ssthresh/srtt/flightsize series (flow-id based, like FtFlight
/// and FtJournal sampling, so execution modes agree without shared state).
pub const PULSE_DEFAULT_FLOW_SAMPLE: u32 = 64;

/// Default ring capacity: windows retained per series.
pub const PULSE_DEFAULT_CAP: usize = 1_024;

/// Maximum number of distinct flows tracked with per-flow series.
pub const PULSE_FLOW_CAP: usize = 8;

/// Number of per-flow series tracked for each sampled flow.
pub const FLOW_SERIES_COUNT: usize = 4;

/// Names of the per-flow series, in recording order.
pub const FLOW_SERIES_NAMES: [&str; FLOW_SERIES_COUNT] =
    ["cwnd", "ssthresh", "srtt_ns", "flightsize"];

/// Number of fixed scalar series every recorder samples.
pub const SERIES_COUNT: usize = 16;

/// Identity helper so f4tlint's `metric_name` / `metrics_catalog` rules
/// can find and validate pulse series names as literals (the same trick
/// as `stage_name` in FtFlight and `event_name` in FtJournal).
const fn series_name(name: &'static str) -> &'static str {
    name
}

/// The fixed scalar series a [`PulseRecorder`] samples every window.
///
/// Rates are deltas of cumulative engine counters over the window; gauges
/// are instantaneous values at the window boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PulseSeries {
    /// Wire bytes emitted during the window (rate).
    GoodputBytes,
    /// Segments emitted to the network during the window (rate).
    SegmentsTx,
    /// Segments received from the network during the window (rate).
    SegmentsRx,
    /// Retransmitted segments during the window (rate).
    Retransmits,
    /// Host-interface events accepted during the window (rate).
    HostEvents,
    /// FPC dispatch cycles idle with no pending work (rate).
    StallFifoEmpty,
    /// FPC dispatch cycles blocked on TCBs in flight (rate).
    StallTcbWait,
    /// FPC dispatch cycles gated by TX backpressure (rate).
    StallBackpressure,
    /// Valid event-table entries summed over FPCs (gauge).
    EventTableValid,
    /// FPU pipeline slots in use summed over FPCs (gauge).
    FpuOccupancy,
    /// Location-LUT entries pointing at FPC SRAM (gauge).
    LutInFpc,
    /// Location-LUT entries pointing at DRAM (gauge).
    LutInDram,
    /// Location-LUT entries mid-migration (gauge).
    LutMoving,
    /// Memory-manager TCB-cache hits during the window (rate).
    TcbCacheHits,
    /// Memory-manager TCB-cache lookups during the window (rate).
    TcbCacheLookups,
    /// Flows currently allocated (gauge).
    FlowsOpen,
}

impl PulseSeries {
    /// Every series, in recording (and JSON) order.
    pub const ALL: [PulseSeries; SERIES_COUNT] = [
        PulseSeries::GoodputBytes,
        PulseSeries::SegmentsTx,
        PulseSeries::SegmentsRx,
        PulseSeries::Retransmits,
        PulseSeries::HostEvents,
        PulseSeries::StallFifoEmpty,
        PulseSeries::StallTcbWait,
        PulseSeries::StallBackpressure,
        PulseSeries::EventTableValid,
        PulseSeries::FpuOccupancy,
        PulseSeries::LutInFpc,
        PulseSeries::LutInDram,
        PulseSeries::LutMoving,
        PulseSeries::TcbCacheHits,
        PulseSeries::TcbCacheLookups,
        PulseSeries::FlowsOpen,
    ];

    /// The subset exported as Chrome-trace counter events (kept small so
    /// trace files stay loadable; the JSON export has everything).
    pub const CHROME: [PulseSeries; 7] = [
        PulseSeries::GoodputBytes,
        PulseSeries::SegmentsTx,
        PulseSeries::SegmentsRx,
        PulseSeries::Retransmits,
        PulseSeries::EventTableValid,
        PulseSeries::FpuOccupancy,
        PulseSeries::FlowsOpen,
    ];

    /// Stable snake-case series name (telemetry key suffix).
    pub fn name(self) -> &'static str {
        match self {
            PulseSeries::GoodputBytes => series_name("goodput_bytes"),
            PulseSeries::SegmentsTx => series_name("segments_tx"),
            PulseSeries::SegmentsRx => series_name("segments_rx"),
            PulseSeries::Retransmits => series_name("retransmits"),
            PulseSeries::HostEvents => series_name("host_events"),
            PulseSeries::StallFifoEmpty => series_name("stall_fifo_empty"),
            PulseSeries::StallTcbWait => series_name("stall_tcb_wait"),
            PulseSeries::StallBackpressure => series_name("stall_backpressure"),
            PulseSeries::EventTableValid => series_name("event_table_valid"),
            PulseSeries::FpuOccupancy => series_name("fpu_occupancy"),
            PulseSeries::LutInFpc => series_name("lut_in_fpc"),
            PulseSeries::LutInDram => series_name("lut_in_dram"),
            PulseSeries::LutMoving => series_name("lut_moving"),
            PulseSeries::TcbCacheHits => series_name("tcb_cache_hits"),
            PulseSeries::TcbCacheLookups => series_name("tcb_cache_lookups"),
            PulseSeries::FlowsOpen => series_name("flows_open"),
        }
    }

    /// Dense index into per-series arrays (recording order).
    pub fn index(self) -> usize {
        Self::ALL.iter().position(|s| *s == self).unwrap_or(0)
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a over raw bytes — integer-only by construction (f4tlint's
/// `float_in_digest` rule watches everything reachable from here).
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv1a_u64(h: u64, v: u64) -> u64 {
    fnv1a(h, &v.to_le_bytes())
}

/// Folds per-shard pulse digests into one merged digest in fixed shard
/// order — byte-compatible with `f4t_core::parallel::fold_digests` so the
/// merged value is the same whichever layer computes it.
pub fn fold_shard_digests(parts: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = FNV_OFFSET;
    for part in parts {
        h = fnv1a_u64(h, part);
    }
    h
}

/// A bounded ring of window samples with overwrite accounting.
#[derive(Clone, Debug)]
struct Ring {
    buf: Vec<u64>,
    next: usize,
    cap: usize,
    total: u64,
}

impl Ring {
    fn new(cap: usize) -> Ring {
        Ring { buf: Vec::new(), next: 0, cap: cap.max(1), total: 0 }
    }

    fn push(&mut self, v: u64) {
        if self.buf.len() < self.cap {
            self.buf.push(v);
        } else {
            self.buf[self.next] = v;
            self.next = (self.next + 1) % self.cap;
        }
        self.total += 1;
    }

    fn len(&self) -> usize {
        self.buf.len()
    }

    /// Retained samples, oldest first.
    fn values(&self) -> Vec<u64> {
        let (tail, head) = self.buf.split_at(self.next);
        head.iter().chain(tail.iter()).copied().collect()
    }

    fn last(&self) -> u64 {
        if self.buf.is_empty() {
            0
        } else if self.next == 0 {
            self.buf[self.buf.len() - 1]
        } else {
            self.buf[self.next - 1]
        }
    }
}

/// Per-flow series for one sampled flow.
#[derive(Clone, Debug)]
struct FlowTrack {
    first_window: u64,
    series: [Ring; FLOW_SERIES_COUNT],
}

/// Windowed time-series recorder (see module docs for the contract).
///
/// The engine calls [`PulseRecorder::record_window`] at every cycle that
/// is a multiple of the interval; the recorder owns the rings, the
/// running digest, the per-flow tracks, and all serialization.
#[derive(Clone, Debug)]
pub struct PulseRecorder {
    interval: u64,
    flow_sample: u32,
    cap: usize,
    windows: u64,
    digest: u64,
    scalars: [Ring; SERIES_COUNT],
    stages: [Ring; STAGE_COUNT],
    flows: BTreeMap<u32, FlowTrack>,
    flow_samples_omitted: u64,
}

impl PulseRecorder {
    /// Creates a recorder with the default ring capacity. A zero interval
    /// or flow-sample clamps to 1 (sample every cycle / every flow).
    pub fn new(interval: u64, flow_sample: u32) -> PulseRecorder {
        PulseRecorder::with_capacity(interval, flow_sample, PULSE_DEFAULT_CAP)
    }

    /// Creates a recorder retaining at most `cap` windows per series.
    pub fn with_capacity(interval: u64, flow_sample: u32, cap: usize) -> PulseRecorder {
        let cap = cap.max(1);
        PulseRecorder {
            interval: interval.max(1),
            flow_sample: flow_sample.max(1),
            cap,
            windows: 0,
            digest: FNV_OFFSET,
            scalars: std::array::from_fn(|_| Ring::new(cap)),
            stages: std::array::from_fn(|_| Ring::new(cap)),
            flows: BTreeMap::new(),
            flow_samples_omitted: 0,
        }
    }

    /// Sampling interval in engine cycles.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Per-flow sampling rate (1/N by flow id).
    pub fn flow_sample(&self) -> u32 {
        self.flow_sample
    }

    /// Ring capacity (windows retained per series).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total windows recorded (including overwritten ones).
    pub fn windows_recorded(&self) -> u64 {
        self.windows
    }

    /// Windows currently retained in the rings.
    pub fn windows_retained(&self) -> usize {
        self.scalars[0].len()
    }

    /// Running FNV-1a digest over every sample ever recorded.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Distinct flows with per-flow series.
    pub fn flows_tracked(&self) -> usize {
        self.flows.len()
    }

    /// Sampled flow observations dropped because the flow cap was full.
    pub fn flow_samples_omitted(&self) -> u64 {
        self.flow_samples_omitted
    }

    /// Whether per-flow series apply to this flow id (flow-id based, so
    /// every execution mode agrees without shared state).
    pub fn sampled(&self, flow: u32) -> bool {
        flow.is_multiple_of(self.flow_sample)
    }

    /// Whether this flow already has a per-flow track.
    pub fn tracks(&self, flow: u32) -> bool {
        self.flows.contains_key(&flow)
    }

    /// How many more flows the recorder will accept per-flow series for —
    /// lets the engine bound its TCB-peeking walk per window.
    pub fn track_budget(&self) -> usize {
        PULSE_FLOW_CAP.saturating_sub(self.flows.len())
    }

    /// Records one window. `scalars` and `stage_p99` are in
    /// [`PulseSeries::ALL`] / [`FlightStage::ALL`] order; `flow_samples`
    /// holds `(flow, [cwnd, ssthresh, srtt_ns, flightsize])` in ascending
    /// flow-id order. Every value is folded into the digest before the
    /// ring insert, so the digest covers overwritten windows.
    pub fn record_window(
        &mut self,
        cycle: u64,
        scalars: &[u64; SERIES_COUNT],
        stage_p99: &[u64; STAGE_COUNT],
        flow_samples: &[(u32, [u64; FLOW_SERIES_COUNT])],
    ) {
        let w = self.windows;
        let mut h = self.digest;
        h = fnv1a_u64(h, cycle);
        for &v in scalars {
            h = fnv1a_u64(h, v);
        }
        for &v in stage_p99 {
            h = fnv1a_u64(h, v);
        }
        for &(flow, vals) in flow_samples {
            h = fnv1a_u64(h, u64::from(flow));
            for &v in &vals {
                h = fnv1a_u64(h, v);
            }
        }
        self.digest = h;

        for (ring, &v) in self.scalars.iter_mut().zip(scalars.iter()) {
            ring.push(v);
        }
        for (ring, &v) in self.stages.iter_mut().zip(stage_p99.iter()) {
            ring.push(v);
        }
        for &(flow, vals) in flow_samples {
            if let Some(track) = self.flows.get_mut(&flow) {
                for (ring, &v) in track.series.iter_mut().zip(vals.iter()) {
                    ring.push(v);
                }
            } else if self.flows.len() < PULSE_FLOW_CAP {
                let mut track = FlowTrack {
                    first_window: w,
                    series: std::array::from_fn(|_| Ring::new(self.cap)),
                };
                for (ring, &v) in track.series.iter_mut().zip(vals.iter()) {
                    ring.push(v);
                }
                self.flows.insert(flow, track);
            } else {
                self.flow_samples_omitted += 1;
            }
        }
        self.windows = w + 1;
    }

    /// Retained samples for one scalar series, oldest first.
    pub fn series(&self, s: PulseSeries) -> Vec<u64> {
        self.scalars[s.index()].values()
    }

    /// Retained samples for one stage-p99 series, oldest first.
    pub fn stage_series(&self, stage: FlightStage) -> Vec<u64> {
        self.stages[stage.index()].values()
    }

    /// Most recent sample of a scalar series (0 before the first window).
    pub fn last(&self, s: PulseSeries) -> u64 {
        self.scalars[s.index()].last()
    }

    /// Registers pulse telemetry under `prefix` (e.g. `engine.pulse`):
    /// window accounting plus a `last.*` gauge per series so plain
    /// FtScope snapshots carry the newest window.
    pub fn collect(&self, prefix: &str, reg: &mut MetricsRegistry) {
        reg.counter(&format!("{prefix}.windows_recorded"), self.windows);
        reg.gauge(&format!("{prefix}.windows_retained"), self.windows_retained() as f64);
        reg.gauge(&format!("{prefix}.flows_tracked"), self.flows.len() as f64);
        reg.counter(&format!("{prefix}.flow_samples_omitted"), self.flow_samples_omitted);
        for s in PulseSeries::ALL {
            reg.gauge(&format!("{prefix}.last.{}", s.name()), self.last(s) as f64);
        }
        // `tail_cycles`, not `p99_cycles`: METRICS.md normalizes digit
        // runs to `<i>`, so a digit-bearing suffix could never match its
        // own catalog entry. The JSON export keeps the precise name.
        for stage in FlightStage::ALL {
            reg.gauge(
                &format!("{prefix}.last.stage.{}.tail_cycles", stage.name()),
                self.stages[stage.index()].last() as f64,
            );
        }
    }

    /// Byte-stable JSON export of every retained series. Integer-only;
    /// building it twice from the same recorder yields identical bytes.
    pub fn to_json(&self, cycle_ns: u64) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, " \"interval_cycles\": {},", self.interval);
        let _ = writeln!(out, " \"cycle_ns\": {cycle_ns},");
        let _ = writeln!(out, " \"flow_sample\": {},", self.flow_sample);
        let _ = writeln!(out, " \"ring_capacity\": {},", self.cap);
        let _ = writeln!(out, " \"windows_recorded\": {},", self.windows);
        let _ = writeln!(out, " \"windows_retained\": {},", self.windows_retained());
        let _ = writeln!(out, " \"digest\": {},", self.digest);
        out.push_str(" \"series\": {\n");
        for s in PulseSeries::ALL {
            let _ = writeln!(out, "  \"{}\": {},", s.name(), json_u64_array(&self.series(s)));
        }
        for (i, stage) in FlightStage::ALL.iter().enumerate() {
            let _ = write!(
                out,
                "  \"stage.{}.p99_cycles\": {}",
                stage.name(),
                json_u64_array(&self.stages[stage.index()].values())
            );
            out.push_str(if i + 1 == STAGE_COUNT { "\n" } else { ",\n" });
        }
        out.push_str(" },\n");
        out.push_str(" \"flows\": [");
        let mut first = true;
        for (flow, track) in &self.flows {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            let _ = write!(
                out,
                "  {{\"flow\": {flow}, \"first_window\": {}",
                track.first_window
            );
            for (name, ring) in FLOW_SERIES_NAMES.iter().zip(track.series.iter()) {
                let _ = write!(out, ", \"{name}\": {}", json_u64_array(&ring.values()));
            }
            out.push('}');
        }
        out.push_str(if first { "],\n" } else { "\n ],\n" });
        let _ = writeln!(out, " \"flow_samples_omitted\": {}", self.flow_samples_omitted);
        out.push_str("}\n");
        out
    }

    /// Chrome-trace counter events (`"ph": "C"`) for the curated
    /// [`PulseSeries::CHROME`] subset, comma-joined, ready to splice into
    /// the engine's trace export. Timestamps are exact integer-µs
    /// renderings of `window_cycle * cycle_ns`, so the output is
    /// byte-stable. Empty string when no windows were recorded.
    pub fn chrome_counter_events(&self, cycle_ns: u64) -> String {
        let retained = self.windows_retained() as u64;
        if retained == 0 {
            return String::new();
        }
        let first_window = self.windows - retained;
        let mut out = String::new();
        let mut first = true;
        for s in PulseSeries::CHROME {
            for (k, v) in self.series(s).iter().enumerate() {
                let cycle = (first_window + k as u64) * self.interval;
                let ns = cycle.saturating_mul(cycle_ns);
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                let _ = write!(
                    out,
                    "{{\"name\": \"pulse.{}\", \"cat\": \"pulse\", \"ph\": \"C\", \
                     \"ts\": {}.{:03}, \"pid\": 0, \"tid\": 0, \"args\": {{\"value\": {v}}}}}",
                    s.name(),
                    ns / 1000,
                    ns % 1000
                );
            }
        }
        out
    }

    /// Fleet-aggregate view over shard recorders, walked in the given
    /// (fixed) order. Scalar series are summed element-wise, stage-p99
    /// series take the element-wise maximum, and the merged digest folds
    /// the per-shard digests in order ([`fold_shard_digests`]). Shards
    /// are aligned on their most recent common windows (rings may have
    /// overwritten different amounts). Integer-only and byte-stable.
    pub fn aggregate_json(shards: &[&PulseRecorder]) -> String {
        let n = shards.iter().map(|p| p.windows_retained()).min().unwrap_or(0);
        let merged = fold_shard_digests(shards.iter().map(|p| p.digest));
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, " \"shards\": {},", shards.len());
        let _ = writeln!(out, " \"merged_digest\": {merged},");
        let _ = writeln!(out, " \"windows\": {n},");
        out.push_str(" \"series\": {\n");
        let combine = |per_shard: Vec<Vec<u64>>, max: bool| -> Vec<u64> {
            let mut acc = vec![0u64; n];
            for vals in &per_shard {
                let skip = vals.len() - n.min(vals.len());
                for (a, &v) in acc.iter_mut().zip(vals[skip..].iter()) {
                    *a = if max { (*a).max(v) } else { a.saturating_add(v) };
                }
            }
            acc
        };
        for s in PulseSeries::ALL {
            let acc = combine(shards.iter().map(|p| p.series(s)).collect(), false);
            let _ = writeln!(out, "  \"{}\": {},", s.name(), json_u64_array(&acc));
        }
        for (i, stage) in FlightStage::ALL.iter().enumerate() {
            let acc = combine(shards.iter().map(|p| p.stage_series(*stage)).collect(), true);
            let _ = write!(out, "  \"stage.{}.p99_cycles\": {}", stage.name(), json_u64_array(&acc));
            out.push_str(if i + 1 == STAGE_COUNT { "\n" } else { ",\n" });
        }
        out.push_str(" }\n}\n");
        out
    }
}

fn json_u64_array(vals: &[u64]) -> String {
    let mut out = String::with_capacity(vals.len() * 4 + 2);
    out.push('[');
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalars(base: u64) -> [u64; SERIES_COUNT] {
        std::array::from_fn(|i| base + i as u64)
    }

    fn stages(base: u64) -> [u64; STAGE_COUNT] {
        std::array::from_fn(|i| base * 10 + i as u64)
    }

    #[test]
    fn series_names_unique_and_snake_case() {
        let names: Vec<_> = PulseSeries::ALL.iter().map(|s| s.name()).collect();
        for (i, n) in names.iter().enumerate() {
            assert!(
                n.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "series name {n:?} not snake_case"
            );
            assert!(!names[i + 1..].contains(n), "duplicate series name {n:?}");
            assert_eq!(PulseSeries::ALL[i].index(), i, "index order mismatch for {n:?}");
        }
        for n in FLOW_SERIES_NAMES {
            assert!(n.chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_keeps_order() {
        let mut p = PulseRecorder::with_capacity(64, 1, 3);
        for w in 0..5u64 {
            p.record_window(w * 64, &scalars(w), &stages(w), &[]);
        }
        assert_eq!(p.windows_recorded(), 5);
        assert_eq!(p.windows_retained(), 3);
        // Oldest retained window is w=2; series[0] is GoodputBytes = base.
        assert_eq!(p.series(PulseSeries::GoodputBytes), vec![2, 3, 4]);
        assert_eq!(p.last(PulseSeries::GoodputBytes), 4);
    }

    #[test]
    fn digest_covers_overwritten_windows() {
        let mut a = PulseRecorder::with_capacity(64, 1, 2);
        let mut b = PulseRecorder::with_capacity(64, 1, 2);
        for w in 0..4u64 {
            a.record_window(w * 64, &scalars(w), &stages(w), &[]);
            // b diverges only in the first (overwritten) window.
            let base = if w == 0 { 99 } else { w };
            b.record_window(w * 64, &scalars(base), &stages(w), &[]);
        }
        assert_eq!(a.series(PulseSeries::GoodputBytes), b.series(PulseSeries::GoodputBytes));
        assert_ne!(a.digest(), b.digest(), "digest must cover overwritten windows");
    }

    #[test]
    fn flow_tracking_caps_and_counts_omissions() {
        let mut p = PulseRecorder::new(64, 1);
        let samples: Vec<_> =
            (0..(PULSE_FLOW_CAP as u32 + 3)).map(|f| (f, [1, 2, 3, 4])).collect();
        p.record_window(0, &scalars(0), &stages(0), &samples);
        assert_eq!(p.flows_tracked(), PULSE_FLOW_CAP);
        assert_eq!(p.flow_samples_omitted(), 3);
        assert_eq!(p.track_budget(), 0);
        assert!(p.tracks(0));
        assert!(!p.tracks(PULSE_FLOW_CAP as u32 + 1));
    }

    #[test]
    fn sampling_is_flow_id_based_and_zero_clamps() {
        let p = PulseRecorder::new(64, 4);
        assert!(p.sampled(0) && p.sampled(8));
        assert!(!p.sampled(3));
        let every = PulseRecorder::new(0, 0);
        assert_eq!(every.interval(), 1);
        assert!(every.sampled(7), "flow_sample 0 clamps to every flow");
    }

    #[test]
    fn json_shape_and_determinism() {
        let build = || {
            let mut p = PulseRecorder::new(64, 2);
            for w in 0..3u64 {
                p.record_window(w * 64, &scalars(w), &stages(w), &[(2, [10, 20, 30, 40])]);
            }
            p.to_json(4)
        };
        let j = build();
        assert_eq!(j, build(), "JSON must be byte-stable");
        for needle in [
            "\"interval_cycles\": 64",
            "\"goodput_bytes\": [0, 1, 2]",
            "\"stage.rx_ingest.p99_cycles\"",
            "\"flow\": 2",
            "\"srtt_ns\": [30, 30, 30]",
            "\"digest\":",
        ] {
            assert!(j.contains(needle), "missing {needle} in:\n{j}");
        }
    }

    #[test]
    fn json_is_byte_stable_when_empty() {
        let p = PulseRecorder::new(64, 2);
        let j = p.to_json(4);
        assert_eq!(j, p.to_json(4));
        assert!(j.contains("\"windows_recorded\": 0"));
        assert!(j.contains("\"flows\": []"));
    }

    #[test]
    fn chrome_counter_events_are_counter_phase() {
        let mut p = PulseRecorder::new(64, 1);
        assert!(p.chrome_counter_events(4).is_empty());
        p.record_window(0, &scalars(5), &stages(1), &[]);
        p.record_window(64, &scalars(6), &stages(1), &[]);
        let ev = p.chrome_counter_events(4);
        assert!(ev.contains("\"ph\": \"C\""));
        assert!(ev.contains("\"name\": \"pulse.goodput_bytes\""));
        // Window 1 is cycle 64 -> 256 ns -> 0.256 us.
        assert!(ev.contains("\"ts\": 0.256"), "integer-us timestamps:\n{ev}");
        assert!(!ev.ends_with(",\n"));
    }

    #[test]
    fn collect_reports_registry_metrics() {
        let mut p = PulseRecorder::new(64, 1);
        p.record_window(0, &scalars(7), &stages(2), &[]);
        let mut reg = MetricsRegistry::new();
        p.collect("engine.pulse", &mut reg);
        assert_eq!(reg.counter_value("engine.pulse.windows_recorded"), 1);
        assert_eq!(reg.gauge_value("engine.pulse.last.goodput_bytes") as u64, 7);
        assert_eq!(reg.gauge_value("engine.pulse.last.stage.rx_ingest.tail_cycles") as u64, 20);
    }

    #[test]
    fn aggregate_sums_scalars_and_maxes_stages() {
        let mut a = PulseRecorder::new(64, 1);
        let mut b = PulseRecorder::new(64, 1);
        for w in 0..2u64 {
            a.record_window(w * 64, &scalars(w), &stages(1), &[]);
            b.record_window(w * 64, &scalars(w + 10), &stages(3), &[]);
        }
        let j = PulseRecorder::aggregate_json(&[&a, &b]);
        assert_eq!(j, PulseRecorder::aggregate_json(&[&a, &b]), "byte-stable");
        // goodput: (0+10), (1+11); stage p99 takes the max (30..).
        assert!(j.contains("\"goodput_bytes\": [10, 12]"), "{j}");
        assert!(j.contains("\"stage.rx_ingest.p99_cycles\": [30, 30]"), "{j}");
        let swapped = PulseRecorder::aggregate_json(&[&b, &a]);
        assert_ne!(
            extract(&j, "merged_digest"),
            extract(&swapped, "merged_digest"),
            "merge order is fixed, not commutative"
        );
    }

    #[test]
    fn fold_matches_core_fold_digests_shape() {
        assert_eq!(fold_shard_digests([]), FNV_OFFSET);
        assert_ne!(fold_shard_digests([1, 2]), fold_shard_digests([2, 1]));
        assert_eq!(fold_shard_digests([7, 9]), fold_shard_digests([7, 9]));
    }

    fn extract(json: &str, key: &str) -> String {
        let pat = format!("\"{key}\": ");
        let start = json.find(&pat).map(|i| i + pat.len()).unwrap_or(0);
        json[start..].chars().take_while(|c| c.is_ascii_digit()).collect()
    }
}
