//! FtScope — the observability substrate: a metrics registry with
//! snapshot/delta semantics, a bounded structured trace ring, and
//! Chrome-trace-viewer JSON export.
//!
//! The hot path stays plain `u64` fields inside each module (incremented
//! with `#[inline]` adds, zero allocation); this module only defines the
//! *collection* side: modules report their counters into a
//! [`MetricsRegistry`] on demand (`Engine::telemetry` walks every
//! submodule), and two registries taken at different times can be
//! subtracted with [`MetricsRegistry::delta`] for windowed sampling.
//!
//! Tracing is separate and off by default: a [`TraceRing`] of capacity
//! zero makes every [`TraceRing::record`] a single branch, so leaving the
//! call sites compiled in costs nothing measurable. With a capacity, the
//! newest events win (ring wraparound) and the buffer exports as the
//! Chrome trace event format, loadable in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev).

use crate::stats::Histogram;
use std::collections::BTreeMap;

/// Point-in-time value of one named metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonically increasing count (deltas are meaningful).
    Counter(u64),
    /// Instantaneous level (deltas keep the later value).
    Gauge(f64),
    /// Distribution summary captured from a [`Histogram`].
    Histogram(HistogramSummary),
}

/// The fixed-size summary a [`Histogram`] exports into a registry.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Smallest sample (zero when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (~3 % bucket error).
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl HistogramSummary {
    /// Summarizes `h`.
    pub fn of(h: &Histogram) -> HistogramSummary {
        HistogramSummary {
            count: h.count(),
            min: h.min(),
            max: h.max(),
            mean: h.mean(),
            p50: h.percentile(50.0),
            p99: h.percentile(99.0),
        }
    }
}

/// A named snapshot of every metric a component tree reported.
///
/// Names are dot-separated paths (`engine.fpc0.stall.fifo_empty`); the
/// `BTreeMap` keeps JSON output and iteration deterministic.
///
/// # Examples
///
/// ```
/// use f4t_sim::telemetry::MetricsRegistry;
/// let mut a = MetricsRegistry::new();
/// a.counter("engine.events", 10);
/// let mut b = MetricsRegistry::new();
/// b.counter("engine.events", 25);
/// assert_eq!(b.delta(&a).counter_value("engine.events"), 15);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, MetricValue>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Reports a counter (monotonic) value.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.metrics.insert(name.to_string(), MetricValue::Counter(value));
    }

    /// Reports a gauge (instantaneous) value.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.metrics.insert(name.to_string(), MetricValue::Gauge(value));
    }

    /// Reports a histogram's summary.
    pub fn histogram(&mut self, name: &str, h: &Histogram) {
        self.metrics.insert(name.to_string(), MetricValue::Histogram(HistogramSummary::of(h)));
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.get(name)
    }

    /// Convenience: a counter's value, zero when absent or non-counter.
    pub fn counter_value(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Convenience: a gauge's value, zero when absent or non-gauge.
    pub fn gauge_value(&self, name: &str) -> f64 {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0.0,
        }
    }

    /// Number of metrics in the registry.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Iterates metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Sums every counter whose name contains `needle` (e.g. all
    /// per-FPC instances of one stall cause).
    pub fn counter_sum(&self, needle: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|(k, _)| k.contains(needle))
            .filter_map(|(_, v)| match v {
                MetricValue::Counter(c) => Some(*c),
                _ => None,
            })
            .sum()
    }

    /// Windowed view: counters become `self - earlier` (saturating, so a
    /// component reset never underflows); gauges and histogram summaries
    /// keep this (the later) snapshot's value. Metrics absent from
    /// `earlier` are treated as starting at zero.
    pub fn delta(&self, earlier: &MetricsRegistry) -> MetricsRegistry {
        let mut out = MetricsRegistry::new();
        for (name, value) in &self.metrics {
            let v = match (value, earlier.metrics.get(name)) {
                (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                    MetricValue::Counter(now.saturating_sub(*then))
                }
                (v, _) => v.clone(),
            };
            out.metrics.insert(name.clone(), v);
        }
        out
    }

    /// Serializes the registry in the Prometheus text exposition format
    /// (version 0.0.4). Dots in metric names become underscores
    /// (`engine.fpc0.stall` → `engine_fpc0_stall`); counters and gauges
    /// emit one sample each, histograms emit as summaries with
    /// `quantile` labels plus `_sum`/`_count`/`_min`/`_max` series.
    /// Deterministic: names are BTreeMap-ordered and numbers use the
    /// same formatter as [`MetricsRegistry::to_json`].
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.metrics {
            let pname = prometheus_name(name);
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {pname} counter\n{pname} {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {pname} gauge\n{pname} {}\n", json_f64(*v)));
                }
                MetricValue::Histogram(h) => {
                    // Approximate sum from the stored mean (the registry
                    // keeps a fixed-size summary, not raw samples).
                    let sum = (h.mean * h.count as f64).round() as u64;
                    out.push_str(&format!(
                        "# TYPE {pname} summary\n\
                         {pname}{{quantile=\"0.5\"}} {}\n\
                         {pname}{{quantile=\"0.99\"}} {}\n\
                         {pname}_sum {sum}\n\
                         {pname}_count {}\n\
                         {pname}_min {}\n\
                         {pname}_max {}\n",
                        h.p50, h.p99, h.count, h.min, h.max
                    ));
                }
            }
        }
        out
    }

    /// Serializes the registry as a JSON object (hand-rolled — the build
    /// has no serde). Counters emit as integers, gauges as floats,
    /// histograms as nested objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (name, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str("  ");
            json_string(name, &mut out);
            out.push_str(": ");
            match value {
                MetricValue::Counter(v) => out.push_str(&v.to_string()),
                MetricValue::Gauge(v) => out.push_str(&json_f64(*v)),
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{{\"count\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \"p50\": {}, \"p99\": {}}}",
                        h.count, h.min, h.max, json_f64(h.mean), h.p50, h.p99
                    ));
                }
            }
        }
        out.push_str("\n}\n");
        out
    }
}

/// Maps a dotted metric path onto a Prometheus-legal metric name:
/// `[a-zA-Z0-9_:]` pass through, everything else (dots included) becomes
/// an underscore, and a leading digit gains a `_` prefix.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Writes `s` as a JSON string literal into `out`.
fn json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats a float as JSON (finite; NaN/inf degrade to 0).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{:.1}", v)
        } else {
            format!("{}", v)
        }
    } else {
        "0.0".into()
    }
}

/// The kind of a pipeline trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Host command entered the engine (scheduler intake).
    HostEnqueue,
    /// Parsed network segment became a flow event.
    RxEnqueue,
    /// Scheduler routed an event into an FPC input FIFO.
    Route,
    /// Event merged into an already-queued event (coalescing).
    Coalesce,
    /// FPC dispatched an accumulated event into the FPU pipeline.
    Dispatch,
    /// TCB migration started (FPC -> DRAM or DRAM -> FPC).
    MigrateStart,
    /// TCB migration completed; `arg` is the latency in cycles.
    MigrateDone,
    /// A segment was retransmitted.
    Retransmit,
    /// Evict checker pushed a TCB out of an FPC.
    Evict,
    /// A TCB swapped into an FPC slot.
    SwapIn,
    /// A TX segment left the engine; `arg` is the payload length.
    TxSegment,
    /// An event was dropped (overload).
    Drop,
}

impl TraceKind {
    /// Short event name for the trace viewer.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::HostEnqueue => "host_enqueue",
            TraceKind::RxEnqueue => "rx_enqueue",
            TraceKind::Route => "route",
            TraceKind::Coalesce => "coalesce",
            TraceKind::Dispatch => "dispatch",
            TraceKind::MigrateStart => "migrate_start",
            TraceKind::MigrateDone => "migrate_done",
            TraceKind::Retransmit => "retransmit",
            TraceKind::Evict => "evict",
            TraceKind::SwapIn => "swap_in",
            TraceKind::TxSegment => "tx_segment",
            TraceKind::Drop => "drop",
        }
    }

    /// Pipeline stage the event belongs to (trace-viewer track).
    pub fn category(self) -> &'static str {
        match self {
            TraceKind::HostEnqueue | TraceKind::RxEnqueue => "intake",
            TraceKind::Route | TraceKind::Coalesce => "scheduler",
            TraceKind::Dispatch => "fpc",
            TraceKind::MigrateStart | TraceKind::MigrateDone | TraceKind::Evict
            | TraceKind::SwapIn => "memory",
            TraceKind::Retransmit | TraceKind::TxSegment => "tx",
            TraceKind::Drop => "overload",
        }
    }

    /// Stable per-category track id for the trace viewer.
    fn tid(self) -> u32 {
        match self.category() {
            "intake" => 1,
            "scheduler" => 2,
            "fpc" => 3,
            "memory" => 4,
            "tx" => 5,
            _ => 6,
        }
    }
}

/// One structured pipeline event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Engine cycle at which the event occurred.
    pub cycle: u64,
    /// What happened.
    pub kind: TraceKind,
    /// Flow the event belongs to (`u32::MAX` when not flow-specific).
    pub flow: u32,
    /// Kind-specific argument (bytes, cycles, FPC id…).
    pub arg: u64,
}

/// A bounded ring buffer of [`TraceEvent`]s.
///
/// Capacity zero (the default) disables recording entirely — `record`
/// is one predictable branch. When full, the oldest events are
/// overwritten so the buffer always holds the newest window.
///
/// # Examples
///
/// ```
/// use f4t_sim::telemetry::{TraceKind, TraceRing};
/// let mut ring = TraceRing::new(2);
/// ring.record(1, TraceKind::Dispatch, 7, 0);
/// ring.record(2, TraceKind::Dispatch, 7, 0);
/// ring.record(3, TraceKind::Dispatch, 7, 0); // overwrites cycle 1
/// let cycles: Vec<u64> = ring.iter().map(|e| e.cycle).collect();
/// assert_eq!(cycles, [2, 3]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceRing {
    buf: Vec<TraceEvent>,
    /// Next write position.
    head: usize,
    capacity: usize,
    /// Lifetime number of record() calls that stored an event.
    total: u64,
}

impl TraceRing {
    /// Creates a ring holding up to `capacity` events (zero disables).
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing { buf: Vec::with_capacity(capacity.min(1 << 20)), head: 0, capacity, total: 0 }
    }

    /// A disabled ring (capacity zero); `record` is a no-op branch.
    pub fn disabled() -> TraceRing {
        TraceRing::default()
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Records one event (no-op when disabled).
    #[inline]
    pub fn record(&mut self, cycle: u64, kind: TraceKind, flow: u32, arg: u64) {
        if self.capacity == 0 {
            return;
        }
        let ev = TraceEvent { cycle, kind, flow, arg };
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
        }
        self.head = (self.head + 1) % self.capacity;
        self.total += 1;
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime events recorded (including since-overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Events lost to wraparound.
    pub fn overwritten(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// Iterates events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let split = if self.buf.len() < self.capacity { 0 } else { self.head };
        self.buf[split..].iter().chain(self.buf[..split].iter())
    }

    /// Exports the ring as Chrome trace event format JSON (open in
    /// `chrome://tracing` or <https://ui.perfetto.dev>). `cycle_ns` is
    /// the engine cycle period in nanoseconds (4 at 250 MHz); timestamps
    /// are microseconds as the format requires.
    pub fn to_chrome_json(&self, cycle_ns: u64) -> String {
        let mut out = String::from("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n");
        let mut first = true;
        // Name the tracks once via metadata events.
        for (tid, name) in
            [(1, "intake"), (2, "scheduler"), (3, "fpc"), (4, "memory"), (5, "tx"), (6, "overload")]
        {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": {tid}, \
                 \"args\": {{\"name\": \"{name}\"}}}}"
            ));
        }
        for ev in self.iter() {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let ts_us = ev.cycle as f64 * cycle_ns as f64 / 1000.0;
            out.push_str(&format!(
                "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \
                 \"ts\": {}, \"pid\": 0, \"tid\": {}, \
                 \"args\": {{\"flow\": {}, \"arg\": {}, \"cycle\": {}}}}}",
                ev.kind.name(),
                ev.kind.category(),
                ts_us,
                ev.kind.tid(),
                ev.flow,
                ev.arg,
                ev.cycle
            ));
        }
        out.push_str("\n]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trip() {
        let mut r = MetricsRegistry::new();
        r.counter("a.count", 5);
        r.gauge("a.depth", 2.5);
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        r.histogram("a.lat", &h);
        assert_eq!(r.counter_value("a.count"), 5);
        assert_eq!(r.gauge_value("a.depth"), 2.5);
        assert_eq!(r.len(), 3);
        match r.get("a.lat") {
            Some(MetricValue::Histogram(s)) => {
                assert_eq!(s.count, 2);
                assert_eq!(s.min, 10);
                assert_eq!(s.max, 20);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn snapshot_delta_round_trip() {
        let mut earlier = MetricsRegistry::new();
        earlier.counter("x.events", 100);
        earlier.gauge("x.depth", 7.0);
        let mut later = MetricsRegistry::new();
        later.counter("x.events", 150);
        later.counter("x.new", 3);
        later.gauge("x.depth", 2.0);
        let d = later.delta(&earlier);
        assert_eq!(d.counter_value("x.events"), 50, "counters subtract");
        assert_eq!(d.counter_value("x.new"), 3, "missing-in-earlier counts from zero");
        assert_eq!(d.gauge_value("x.depth"), 2.0, "gauges keep the later value");
        // Underflow (component reset) saturates instead of wrapping.
        let d2 = earlier.delta(&later);
        assert_eq!(d2.counter_value("x.events"), 0);
    }

    #[test]
    fn counter_sum_over_instances() {
        let mut r = MetricsRegistry::new();
        r.counter("fpc0.stall.fifo_empty", 3);
        r.counter("fpc1.stall.fifo_empty", 4);
        r.counter("fpc1.stall.other", 100);
        assert_eq!(r.counter_sum("stall.fifo_empty"), 7);
    }

    #[test]
    fn json_is_well_formed() {
        let mut r = MetricsRegistry::new();
        r.counter("c", 1);
        r.gauge("g", 1.5);
        let mut h = Histogram::new();
        h.record(42);
        r.histogram("h", &h);
        let j = r.to_json();
        assert!(j.starts_with('{') && j.trim_end().ends_with('}'));
        assert!(j.contains("\"c\": 1"));
        assert!(j.contains("\"g\": 1.5"));
        assert!(j.contains("\"p99\": 42"));
        // Balanced braces (proxy for structural validity without a parser).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
    }

    #[test]
    fn prometheus_round_trip() {
        let mut r = MetricsRegistry::new();
        r.counter("engine.fpc0.events", 42);
        r.gauge("engine.tx_out.depth", 3.5);
        let mut h = Histogram::new();
        h.record(10);
        h.record(30);
        r.histogram("engine.flight.fpu_process.cycles", &h);
        let text = r.to_prometheus();

        // Parse the exposition text back into (name, value) samples and
        // check every registry entry survived the trip.
        let mut samples = std::collections::BTreeMap::new();
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (name, value) = line.rsplit_once(' ').expect("sample line");
            samples.insert(name.to_string(), value.to_string());
        }
        assert_eq!(samples.get("engine_fpc0_events").unwrap(), "42");
        assert_eq!(samples.get("engine_tx_out_depth").unwrap(), "3.5");
        let p = "engine_flight_fpu_process_cycles";
        assert_eq!(samples.get(&format!("{p}{{quantile=\"0.5\"}}")).unwrap(), "10");
        assert_eq!(samples.get(&format!("{p}_count")).unwrap(), "2");
        assert_eq!(samples.get(&format!("{p}_min")).unwrap(), "10");
        assert_eq!(samples.get(&format!("{p}_max")).unwrap(), "30");
        assert_eq!(samples.get(&format!("{p}_sum")).unwrap(), "40");
        // Every non-comment line is `name[{labels}] value`, values numeric.
        for v in samples.values() {
            v.parse::<f64>().expect("numeric sample value");
        }
        // Each registry metric has exactly one # TYPE line.
        assert_eq!(text.matches("# TYPE ").count(), r.len());
    }

    #[test]
    fn prometheus_name_sanitization() {
        assert_eq!(prometheus_name("a.b-c.d"), "a_b_c_d");
        assert_eq!(prometheus_name("9lives"), "_9lives");
        assert_eq!(prometheus_name("ok_name:x"), "ok_name:x");
    }

    #[test]
    fn trace_ring_wraparound() {
        let mut ring = TraceRing::new(4);
        for c in 0..10u64 {
            ring.record(c, TraceKind::Dispatch, c as u32, 0);
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.total_recorded(), 10);
        assert_eq!(ring.overwritten(), 6);
        let cycles: Vec<u64> = ring.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, [6, 7, 8, 9], "newest window survives, oldest-first order");
    }

    #[test]
    fn disabled_ring_records_nothing() {
        let mut ring = TraceRing::disabled();
        assert!(!ring.enabled());
        ring.record(1, TraceKind::Drop, 0, 0);
        assert!(ring.is_empty());
        assert_eq!(ring.total_recorded(), 0);
    }

    #[test]
    fn chrome_json_shape() {
        let mut ring = TraceRing::new(8);
        ring.record(100, TraceKind::MigrateDone, 5, 12);
        ring.record(101, TraceKind::TxSegment, 5, 1460);
        let j = ring.to_chrome_json(4);
        assert!(j.contains("\"traceEvents\""));
        assert!(j.contains("\"migrate_done\""));
        // cycle 100 at 4 ns/cycle = 400 ns = 0.4 µs.
        assert!(j.contains("\"ts\": 0.4"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn json_escaping() {
        let mut s = String::new();
        json_string("a\"b\\c\nd", &mut s);
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn capacity_zero_ring_is_inert() {
        let mut ring = TraceRing::new(0);
        assert!(!ring.enabled());
        assert_eq!(ring.capacity(), 0);
        for c in 0..100u64 {
            ring.record(c, TraceKind::Route, 1, 2);
        }
        assert!(ring.is_empty());
        assert_eq!(ring.len(), 0);
        assert_eq!(ring.total_recorded(), 0);
        assert_eq!(ring.overwritten(), 0, "no events were ever stored, none lost");
        assert_eq!(ring.iter().count(), 0);
        // Export still produces structurally valid JSON (metadata only).
        let j = ring.to_chrome_json(4);
        assert!(j.contains("\"traceEvents\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(!j.contains("\"cat\""), "no data events in an empty export");
    }

    #[test]
    fn overwrite_accounting_at_capacity_boundary() {
        let mut ring = TraceRing::new(3);
        ring.record(0, TraceKind::Route, 0, 0);
        ring.record(1, TraceKind::Route, 0, 0);
        assert_eq!((ring.total_recorded(), ring.overwritten()), (2, 0), "under capacity");
        ring.record(2, TraceKind::Route, 0, 0);
        assert_eq!((ring.total_recorded(), ring.overwritten()), (3, 0), "exactly full");
        ring.record(3, TraceKind::Route, 0, 0);
        assert_eq!((ring.total_recorded(), ring.overwritten()), (4, 1), "first wrap");
        for c in 4..10u64 {
            ring.record(c, TraceKind::Route, 0, 0);
        }
        assert_eq!(ring.total_recorded(), 10);
        assert_eq!(ring.overwritten(), 7);
        assert_eq!(ring.len(), 3, "len is pinned at capacity after wrap");
        assert_eq!(
            ring.overwritten(),
            ring.total_recorded() - ring.len() as u64,
            "conservation: stored = total - overwritten"
        );
    }

    #[test]
    fn chrome_json_on_wrapped_ring_orders_and_balances() {
        let mut ring = TraceRing::new(4);
        // Fill, then wrap past the boundary so head sits mid-buffer.
        for c in 0..7u64 {
            ring.record(c, TraceKind::TxSegment, c as u32, c * 10);
        }
        let j = ring.to_chrome_json(4);
        // Events must export oldest-first even though the backing buffer
        // is physically rotated: cycles 3,4,5,6 in that order.
        let positions: Vec<usize> = (3..7u64)
            .map(|c| j.find(&format!("\"cycle\": {c}}}")).expect("event present"))
            .collect();
        assert!(positions.windows(2).all(|w| w[0] < w[1]), "oldest-first export order");
        assert!(!j.contains("\"cycle\": 2}"), "overwritten event absent");
        // Structural validity: balanced delimiters, every event line
        // comma-separated (valid JSON array), quotes escaped nowhere
        // (all names are static snake_case).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        let events = j.matches("\"ph\": \"i\"").count();
        assert_eq!(events, 4, "exactly capacity data events");
    }
}
