//! Hardware clock domains and discrete cycle time.
//!
//! FtEngine runs most modules at 250 MHz, the Ethernet-facing modules at
//! 322 MHz, and the host CPU at 2.3 GHz (the paper's Xeon Gold 5118).
//! [`ClockDomain`] converts between cycle counts, wall-clock nanoseconds
//! and throughput figures without accumulating floating-point drift in the
//! hot loop: conversions are only performed when reporting.

use std::fmt;

/// A count of clock cycles in some [`ClockDomain`].
///
/// This is a plain newtype over `u64`; arithmetic that makes sense on cycle
/// counts (addition of durations, saturating subtraction) is provided
/// explicitly rather than via blanket operator overloads so mixed-domain
/// bugs stay visible at call sites.
///
/// # Examples
///
/// ```
/// use f4t_sim::Cycle;
/// let start = Cycle(100);
/// let end = start.add(28);
/// assert_eq!(end.since(start), 28);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(pub u64);

impl Cycle {
    /// The zero cycle (reset time).
    pub const ZERO: Cycle = Cycle(0);

    /// Returns this cycle advanced by `n` cycles.
    ///
    /// Cycle counts in multi-billion-cycle runs must never silently wrap:
    /// overflow is a debug assertion, and release builds saturate at
    /// `u64::MAX` (≈2339 years at 250 MHz) instead of wrapping to zero,
    /// which would corrupt every `since`-based latency measurement.
    #[inline]
    #[allow(clippy::should_implement_trait)] // `Cycle + u64`, not `Cycle + Cycle`
    pub fn add(self, n: u64) -> Cycle {
        debug_assert!(
            self.0.checked_add(n).is_some(),
            "Cycle overflow: {} + {n} exceeds u64",
            self.0
        );
        Cycle(self.0.saturating_add(n))
    }

    /// Returns the number of cycles elapsed since `earlier`.
    ///
    /// Saturates to zero when `earlier` is in the future, which keeps
    /// latency accounting robust against re-ordered completions.
    #[inline]
    pub fn since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

/// A fixed-frequency clock domain.
///
/// # Examples
///
/// ```
/// use f4t_sim::ClockDomain;
/// let engine = ClockDomain::new_mhz(250);
/// assert_eq!(engine.period_ps(), 4000); // 4 ns per cycle
/// assert_eq!(engine.ns_to_cycles(1_000), 250);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClockDomain {
    freq_hz: u64,
}

impl ClockDomain {
    /// FtEngine's core processing domain (scheduler, FPCs, memory manager).
    pub const ENGINE_CORE: ClockDomain = ClockDomain { freq_hz: 250_000_000 };
    /// FtEngine's network-facing domain (packet generator, RX parser, MAC).
    pub const ENGINE_NET: ClockDomain = ClockDomain { freq_hz: 322_000_000 };
    /// The evaluation host CPU (Intel Xeon Gold 5118, 2.3 GHz).
    pub const HOST_CPU: ClockDomain = ClockDomain { freq_hz: 2_300_000_000 };
    /// TONIC's target domain from the paper (100 MHz, one 128 B segment/cycle).
    pub const TONIC: ClockDomain = ClockDomain { freq_hz: 100_000_000 };

    /// Creates a clock domain with the given frequency in hertz.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz` is zero.
    pub fn new(freq_hz: u64) -> ClockDomain {
        assert!(freq_hz > 0, "clock frequency must be non-zero");
        ClockDomain { freq_hz }
    }

    /// Creates a clock domain with the given frequency in megahertz.
    pub fn new_mhz(freq_mhz: u64) -> ClockDomain {
        ClockDomain::new(freq_mhz * 1_000_000)
    }

    /// Returns the frequency of this domain in hertz.
    pub fn freq_hz(self) -> u64 {
        self.freq_hz
    }

    /// Returns the clock period in picoseconds (rounded to nearest).
    pub fn period_ps(self) -> u64 {
        (1_000_000_000_000 + self.freq_hz / 2) / self.freq_hz
    }

    /// Converts a cycle count in this domain to nanoseconds (rounded down).
    pub fn cycles_to_ns(self, cycles: u64) -> u64 {
        // cycles / freq * 1e9, computed as u128 to avoid overflow.
        ((cycles as u128 * 1_000_000_000) / self.freq_hz as u128) as u64
    }

    /// Converts nanoseconds to a cycle count in this domain (rounded down).
    pub fn ns_to_cycles(self, ns: u64) -> u64 {
        ((ns as u128 * self.freq_hz as u128) / 1_000_000_000) as u64
    }

    /// Converts a cycle count in this domain to the equivalent count in
    /// `other`, rounding down. Used when crossing the 250 MHz / 322 MHz /
    /// 2.3 GHz boundaries of the system model.
    pub fn convert_cycles(self, cycles: u64, other: ClockDomain) -> u64 {
        ((cycles as u128 * other.freq_hz as u128) / self.freq_hz as u128) as u64
    }

    /// Bytes transferred per cycle of this domain on a link of
    /// `gbps` gigabits/second, as an exact rational (numerator, denominator)
    /// in bytes. E.g. a 100 Gbps link delivers 50 bytes per 250 MHz cycle.
    pub fn link_bytes_per_cycle(self, link_gbps: u64) -> (u64, u64) {
        // link_gbps * 1e9 / 8 bytes per second, divided by freq.
        let num = link_gbps * 1_000_000_000 / 8;
        (num, self.freq_hz)
    }
}

impl fmt::Display for ClockDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.freq_hz.is_multiple_of(1_000_000) {
            write!(f, "{} MHz", self.freq_hz / 1_000_000)
        } else {
            write!(f, "{} Hz", self.freq_hz)
        }
    }
}

/// A byte budget that accrues fractionally per cycle, used to model fixed
/// bandwidth resources (Ethernet link serialization, DRAM, PCIe) without
/// floating point in the per-cycle hot loop.
///
/// Each call to [`BytePacer::tick`] accrues `rate_num / rate_den` bytes of
/// credit (saturating at `burst` bytes); [`BytePacer::try_consume`] spends
/// credit.
///
/// # Examples
///
/// ```
/// use f4t_sim::clock::BytePacer;
/// // 50 bytes/cycle (100 Gbps at 250 MHz), up to one MTU of burst.
/// let mut pacer = BytePacer::new(50, 1, 1600);
/// pacer.tick();
/// assert!(pacer.try_consume(50));
/// assert!(!pacer.try_consume(1));
/// ```
#[derive(Debug, Clone)]
pub struct BytePacer {
    rate_num: u64,
    rate_den: u64,
    /// Credit in units of 1/rate_den bytes.
    credit: u64,
    burst_units: u64,
}

impl BytePacer {
    /// Creates a pacer accruing `rate_num / rate_den` bytes per tick with a
    /// maximum accumulated burst of `burst` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `rate_den` or `burst` is zero.
    pub fn new(rate_num: u64, rate_den: u64, burst: u64) -> BytePacer {
        assert!(rate_den > 0, "rate denominator must be non-zero");
        assert!(burst > 0, "burst must be non-zero");
        BytePacer { rate_num, rate_den, credit: 0, burst_units: burst * rate_den }
    }

    /// Creates a pacer for a link of `gbps` gigabits/second observed from
    /// clock domain `domain`, with a burst of `burst` bytes.
    pub fn for_link(gbps: u64, domain: ClockDomain, burst: u64) -> BytePacer {
        let (num, den) = domain.link_bytes_per_cycle(gbps);
        BytePacer::new(num, den, burst)
    }

    /// Accrues one tick's worth of byte credit.
    #[inline]
    pub fn tick(&mut self) {
        self.credit = (self.credit + self.rate_num).min(self.burst_units);
    }

    /// Accrues `n` ticks' worth of byte credit at once.
    #[inline]
    pub fn tick_n(&mut self, n: u64) {
        self.credit = self
            .credit
            .saturating_add(self.rate_num.saturating_mul(n))
            .min(self.burst_units);
    }

    /// Attempts to consume `bytes` of credit; returns whether it succeeded.
    #[inline]
    pub fn try_consume(&mut self, bytes: u64) -> bool {
        let units = bytes * self.rate_den;
        if self.credit >= units {
            self.credit -= units;
            true
        } else {
            false
        }
    }

    /// Consumes `bytes` of credit, allowing the balance to go negative by
    /// borrowing against future ticks. Returns the number of whole ticks of
    /// debt incurred (zero when enough credit was available).
    ///
    /// This models store-and-forward serialization: a packet that is larger
    /// than the per-cycle budget occupies the resource for several cycles.
    #[inline]
    pub fn consume_borrowing(&mut self, bytes: u64) -> u64 {
        let units = bytes * self.rate_den;
        if self.credit >= units {
            self.credit -= units;
            0
        } else {
            let deficit = units - self.credit;
            self.credit = 0;
            // Ticks needed to repay the deficit, rounded up.
            deficit.div_ceil(self.rate_num.max(1))
        }
    }

    /// Returns the currently available credit in whole bytes.
    pub fn available(&self) -> u64 {
        self.credit / self.rate_den
    }
}

/// Combines two activity horizons, keeping the earlier one.
///
/// A horizon is the earliest cycle at which a module's observable state
/// can next change; `None` means "never, absent new input". Modules
/// report horizons through their `next_activity()` methods and the
/// engine folds them with this combinator to find the first cycle worth
/// executing — everything before it can be fast-forwarded.
///
/// # Examples
///
/// ```
/// use f4t_sim::clock::merge_horizon;
/// assert_eq!(merge_horizon(None, None), None);
/// assert_eq!(merge_horizon(Some(8), None), Some(8));
/// assert_eq!(merge_horizon(Some(8), Some(3)), Some(3));
/// ```
#[inline]
pub fn merge_horizon(a: Option<u64>, b: Option<u64>) -> Option<u64> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (h, None) | (None, h) => h,
    }
}

/// Number of odd cycles in the half-open window `[start, start + n)`.
///
/// Fast-forward catch-up needs this because the FPC's two-phase schedule
/// only touches its dispatch-stall counters on odd cycles; skipping a
/// window must account for exactly the odd cycles the window contained.
///
/// # Examples
///
/// ```
/// use f4t_sim::clock::odd_cycles_in;
/// assert_eq!(odd_cycles_in(0, 4), 2); // 1, 3
/// assert_eq!(odd_cycles_in(1, 3), 2); // 1, 3
/// assert_eq!(odd_cycles_in(2, 0), 0);
/// ```
#[inline]
pub fn odd_cycles_in(start: u64, n: u64) -> u64 {
    if start.is_multiple_of(2) {
        n / 2
    } else {
        n.div_ceil(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_arithmetic() {
        let c = Cycle(10);
        assert_eq!(c.add(5), Cycle(15));
        assert_eq!(Cycle(15).since(c), 5);
        assert_eq!(c.since(Cycle(15)), 0, "saturating");
        assert_eq!(Cycle::ZERO.0, 0);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "Cycle overflow"))]
    fn cycle_add_never_wraps() {
        // Debug builds assert on overflow; release builds saturate rather
        // than wrapping back past zero.
        let c = Cycle(u64::MAX - 1).add(10);
        assert_eq!(c, Cycle(u64::MAX));
    }

    #[test]
    fn domain_conversions_round_trip() {
        let d = ClockDomain::ENGINE_CORE;
        assert_eq!(d.cycles_to_ns(250), 1000);
        assert_eq!(d.ns_to_cycles(1000), 250);
        assert_eq!(d.period_ps(), 4000);
        let net = ClockDomain::ENGINE_NET;
        // 250 MHz cycles -> 322 MHz cycles.
        assert_eq!(d.convert_cycles(250_000_000, net), 322_000_000);
    }

    #[test]
    fn domain_display() {
        assert_eq!(ClockDomain::ENGINE_CORE.to_string(), "250 MHz");
        assert_eq!(ClockDomain::new(1234).to_string(), "1234 Hz");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_frequency_panics() {
        let _ = ClockDomain::new(0);
    }

    #[test]
    fn link_budget_100g_at_250mhz() {
        let (num, den) = ClockDomain::ENGINE_CORE.link_bytes_per_cycle(100);
        // 12.5 GB/s over 250 MHz = 50 bytes/cycle.
        assert_eq!(num as f64 / den as f64, 50.0);
    }

    #[test]
    fn pacer_accrues_and_consumes() {
        let mut p = BytePacer::new(50, 1, 200);
        p.tick();
        p.tick();
        assert_eq!(p.available(), 100);
        assert!(p.try_consume(100));
        assert!(!p.try_consume(1));
        // Burst cap.
        p.tick_n(100);
        assert_eq!(p.available(), 200);
    }

    #[test]
    fn pacer_borrowing_reports_occupancy() {
        let mut p = BytePacer::new(50, 1, 100);
        // No credit yet: a 1518 B frame needs ceil(1518/50) = 31 ticks.
        assert_eq!(p.consume_borrowing(1518), 31);
        // With partial credit the debt shrinks.
        let mut p = BytePacer::new(50, 1, 100);
        p.tick(); // 50 B credit
        assert_eq!(p.consume_borrowing(100), 1);
    }

    #[test]
    fn pacer_fractional_rate() {
        // 1/3 byte per tick.
        let mut p = BytePacer::new(1, 3, 10);
        p.tick();
        p.tick();
        assert!(!p.try_consume(1));
        p.tick();
        assert!(p.try_consume(1));
    }
}
