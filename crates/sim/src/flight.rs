//! FtFlight — span-based per-flow latency attribution.
//!
//! FtScope (`telemetry`) answers *how busy* each module is; FtFlight
//! answers *where a flow's time goes*. Every tracked segment/event is
//! stamped with the simulated cycle at each pipeline-stage boundary —
//! RX-parser ingest, cuckoo lookup, coalesce-FIFO residency, event-table
//! accumulation, pending-queue wait, TCB fetch (SRAM hit vs DRAM/HBM
//! migration), FPU processing and TX emission — and the stage durations
//! feed per-stage [`Histogram`]s plus a bounded per-flow aggregate table.
//!
//! Design constraints (DESIGN.md §10):
//!
//! * **Deterministic under fast-forward.** All stamps are differences of
//!   simulated-clock cycles taken at executed ticks; fast-forward skips
//!   only provably idle windows, so a fast-forwarded run records exactly
//!   the spans a tick-by-tick run records and [`FlightRecorder::to_json`]
//!   is byte-identical between the two (`tests/fastforward_equiv.rs`).
//! * **Cheap.** Sampling is flow-id based (`flow % sample == 0`) so both
//!   execution modes agree on which flows are tracked without any shared
//!   state; an unsampled flow costs one branch per boundary.
//! * **Integer-only output.** The JSON uses integer cycle counts and
//!   integer nanosecond conversions so output is bit-stable across
//!   platforms.
//!
//! # Examples
//!
//! ```
//! use f4t_sim::flight::{FlightRecorder, FlightStage};
//! let mut fr = FlightRecorder::new(1);
//! fr.record(FlightStage::FpuProcess, 7, 12);
//! assert_eq!(fr.spans_recorded(), 1);
//! let json = fr.to_json(4);
//! assert!(json.contains("\"fpu_process\""));
//! ```

use crate::stats::Histogram;
use crate::telemetry::MetricsRegistry;
use std::collections::BTreeMap;

/// Number of pipeline stages a flight record can attribute time to.
pub const STAGE_COUNT: usize = 9;

/// Nominal network-domain clock period in picoseconds (322 MHz ≈ 3106 ps);
/// used for the secondary ns conversion in the breakdown JSON.
pub const NET_PERIOD_PS: u64 = 3106;

/// Maximum per-flow entries serialized into the breakdown JSON (the
/// in-memory table is unbounded up to the sampled-flow population; the
/// JSON keeps the lowest flow ids so output stays reviewable).
const JSON_FLOW_CAP: usize = 64;

/// A pipeline stage boundary a span is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FlightStage {
    /// NIC buffer → RX parser parse slot (input-FIFO residency).
    RxIngest,
    /// Flow-table cuckoo lookup; the span length is the probe count.
    CuckooLookup,
    /// Scheduler intake + coalesce-FIFO residency (entry → first route).
    CoalesceFifo,
    /// Pending-queue park time (migration or backpressure retry wait).
    PendingWait,
    /// Event-table accumulation: first valid bit set → FPU dispatch
    /// (FPC SRAM slots), or memory-manager service wait (DRAM flows).
    EventAccum,
    /// SRAM-resident TCB path: scheduler route → FPC event handler.
    TcbFetchSram,
    /// DRAM/HBM-resident TCB path: swap-in request → TCB installed
    /// (includes evict-checker and writeback cost on the far side).
    TcbFetchDram,
    /// FPU pipeline residency (issue → result).
    FpuProcess,
    /// TX request accepted → final segment on the wire.
    TxEmit,
}

/// Identity helper for stage-name literals. Exists so `f4tlint`'s
/// `metric_name` rule can lint flight stage names exactly like FtScope
/// metric names (dotted snake_case, unique per file).
const fn stage_name(name: &'static str) -> &'static str {
    name
}

impl FlightStage {
    /// Every stage, in pipeline order (also the JSON emission order).
    pub const ALL: [FlightStage; STAGE_COUNT] = [
        FlightStage::RxIngest,
        FlightStage::CuckooLookup,
        FlightStage::CoalesceFifo,
        FlightStage::PendingWait,
        FlightStage::EventAccum,
        FlightStage::TcbFetchSram,
        FlightStage::TcbFetchDram,
        FlightStage::FpuProcess,
        FlightStage::TxEmit,
    ];

    /// Stable stage name (used in JSON, telemetry and METRICS.md).
    pub fn name(self) -> &'static str {
        match self {
            FlightStage::RxIngest => stage_name("rx_ingest"),
            FlightStage::CuckooLookup => stage_name("cuckoo_lookup"),
            FlightStage::CoalesceFifo => stage_name("coalesce_fifo"),
            FlightStage::PendingWait => stage_name("pending_wait"),
            FlightStage::EventAccum => stage_name("event_accum"),
            FlightStage::TcbFetchSram => stage_name("tcb_fetch_sram"),
            FlightStage::TcbFetchDram => stage_name("tcb_fetch_dram"),
            FlightStage::FpuProcess => stage_name("fpu_process"),
            FlightStage::TxEmit => stage_name("tx_emit"),
        }
    }

    /// Dense index into per-stage arrays ([`FlightStage::ALL`] order).
    pub fn index(self) -> usize {
        match self {
            FlightStage::RxIngest => 0,
            FlightStage::CuckooLookup => 1,
            FlightStage::CoalesceFifo => 2,
            FlightStage::PendingWait => 3,
            FlightStage::EventAccum => 4,
            FlightStage::TcbFetchSram => 5,
            FlightStage::TcbFetchDram => 6,
            FlightStage::FpuProcess => 7,
            FlightStage::TxEmit => 8,
        }
    }
}

/// Per-flow, per-stage aggregate (full histograms per flow would cost
/// ~150 KB each; count/total/max is enough to attribute a flow's time).
#[derive(Debug, Clone, Copy, Default)]
struct StageAgg {
    count: u64,
    total_cycles: u64,
    max_cycles: u64,
}

/// The flight recorder: aggregate per-stage histograms plus a per-flow
/// breakdown table, fed by sampled span completions.
#[derive(Debug)]
pub struct FlightRecorder {
    /// Track flows whose id is `0 (mod sample)`; 1 tracks everything.
    sample: u32,
    /// Cycles added to every recorded span — a fault-injection hook for
    /// perf-gate self-tests (`f4tperf --inject-slowdown`), never set in
    /// normal operation.
    bias: u64,
    stages: Vec<Histogram>,
    per_flow: BTreeMap<u32, [StageAgg; STAGE_COUNT]>,
    recorded: u64,
    unsampled: u64,
}

impl FlightRecorder {
    /// Creates a recorder sampling one in `sample` flows (0 is clamped
    /// to 1 = every flow).
    pub fn new(sample: u32) -> FlightRecorder {
        FlightRecorder {
            sample: sample.max(1),
            bias: 0,
            stages: (0..STAGE_COUNT).map(|_| Histogram::new()).collect(),
            per_flow: BTreeMap::new(),
            recorded: 0,
            unsampled: 0,
        }
    }

    /// The sampling divisor.
    pub fn sample_n(&self) -> u32 {
        self.sample
    }

    /// Whether spans for `flow` are tracked under the sampling policy.
    /// Flow-id based so fast-forwarded and tick-by-tick runs agree.
    #[inline]
    pub fn sampled(&self, flow: u32) -> bool {
        flow.is_multiple_of(self.sample)
    }

    /// Adds `cycles` to every subsequently recorded span (perf-gate
    /// self-test hook; see [`FlightRecorder::bias`]).
    pub fn set_bias(&mut self, cycles: u64) {
        self.bias = cycles;
    }

    /// The configured span bias (0 in normal operation).
    pub fn bias(&self) -> u64 {
        self.bias
    }

    /// Records a completed span of `cycles` for `flow` at `stage`.
    /// Unsampled flows cost one branch.
    #[inline]
    pub fn record(&mut self, stage: FlightStage, flow: u32, cycles: u64) {
        if !self.sampled(flow) {
            self.unsampled += 1;
            return;
        }
        let cycles = cycles + self.bias;
        self.stages[stage.index()].record(cycles);
        let agg = &mut self.per_flow.entry(flow).or_default()[stage.index()];
        agg.count += 1;
        agg.total_cycles += cycles;
        agg.max_cycles = agg.max_cycles.max(cycles);
        self.recorded += 1;
    }

    /// Spans recorded (sampled flows only).
    pub fn spans_recorded(&self) -> u64 {
        self.recorded
    }

    /// Span completions skipped by sampling.
    pub fn spans_unsampled(&self) -> u64 {
        self.unsampled
    }

    /// Number of distinct flows with at least one recorded span.
    pub fn flows_tracked(&self) -> usize {
        self.per_flow.len()
    }

    /// The aggregate histogram for one stage.
    pub fn stage_histogram(&self, stage: FlightStage) -> &Histogram {
        &self.stages[stage.index()]
    }

    /// Reports per-stage histograms into a telemetry registry as
    /// `<prefix>.<stage>.cycles`.
    pub fn collect(&self, prefix: &str, reg: &mut MetricsRegistry) {
        reg.counter(&format!("{prefix}.spans_recorded"), self.recorded);
        reg.counter(&format!("{prefix}.spans_unsampled"), self.unsampled);
        reg.gauge(&format!("{prefix}.flows_tracked"), self.per_flow.len() as f64);
        for stage in FlightStage::ALL {
            reg.histogram(
                &format!("{prefix}.{}.cycles", stage.name()),
                &self.stages[stage.index()],
            );
        }
    }

    /// Serializes the latency breakdown as JSON. `cycle_ns` is the engine
    /// cycle period (4 ns at 250 MHz); a secondary conversion at the
    /// 322 MHz network clock is included per the paper's two clock
    /// domains. Integer-only arithmetic: the output is byte-stable, and
    /// fast-forwarded vs tick-by-tick runs of the same workload produce
    /// identical text.
    pub fn to_json(&self, cycle_ns: u64) -> String {
        let ns = |c: u64| c.saturating_mul(cycle_ns);
        let ns_net = |c: u64| c.saturating_mul(NET_PERIOD_PS) / 1000;
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"sample\": {},\n", self.sample));
        out.push_str(&format!("  \"cycle_ns\": {cycle_ns},\n"));
        out.push_str(&format!("  \"spans_recorded\": {},\n", self.recorded));
        out.push_str(&format!("  \"spans_unsampled\": {},\n", self.unsampled));
        out.push_str(&format!("  \"flows_tracked\": {},\n", self.per_flow.len()));
        out.push_str("  \"stages\": {\n");
        for (i, stage) in FlightStage::ALL.iter().enumerate() {
            let h = &self.stages[stage.index()];
            let (p50, p99, p999) =
                (h.percentile(50.0), h.percentile(99.0), h.percentile(99.9));
            out.push_str(&format!(
                "    \"{}\": {{\"count\": {}, \"min_cycles\": {}, \"max_cycles\": {}, \
                 \"p50_cycles\": {}, \"p99_cycles\": {}, \"p999_cycles\": {}, \
                 \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \
                 \"p50_ns_net\": {}, \"p99_ns_net\": {}, \"p999_ns_net\": {}}}{}\n",
                stage.name(),
                h.count(),
                h.min(),
                h.max(),
                p50,
                p99,
                p999,
                ns(p50),
                ns(p99),
                ns(p999),
                ns_net(p50),
                ns_net(p99),
                ns_net(p999),
                if i + 1 < STAGE_COUNT { "," } else { "" }
            ));
        }
        out.push_str("  },\n");
        let omitted = self.per_flow.len().saturating_sub(JSON_FLOW_CAP);
        out.push_str(&format!("  \"flows_omitted\": {omitted},\n"));
        out.push_str("  \"flows\": {\n");
        let shown: Vec<_> = self.per_flow.iter().take(JSON_FLOW_CAP).collect();
        for (fi, (flow, aggs)) in shown.iter().enumerate() {
            out.push_str(&format!("    \"{flow}\": {{"));
            let mut first = true;
            for stage in FlightStage::ALL {
                let a = &aggs[stage.index()];
                if a.count == 0 {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push_str(&format!(
                    "\"{}\": {{\"count\": {}, \"total_cycles\": {}, \"max_cycles\": {}}}",
                    stage.name(),
                    a.count,
                    a.total_cycles,
                    a.max_cycles
                ));
            }
            out.push_str(&format!("}}{}\n", if fi + 1 < shown.len() { "," } else { "" }));
        }
        out.push_str("  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_unique_and_snake_case() {
        let mut seen = std::collections::HashSet::new();
        for stage in FlightStage::ALL {
            let n = stage.name();
            assert!(seen.insert(n), "duplicate stage name {n}");
            assert!(
                n.chars().all(|c| c.is_ascii_lowercase() || c == '_'),
                "stage name {n} is not snake_case"
            );
            assert_eq!(FlightStage::ALL[stage.index()], stage, "index round-trip");
        }
        assert_eq!(seen.len(), STAGE_COUNT);
    }

    #[test]
    fn sampling_is_flow_id_based() {
        let mut fr = FlightRecorder::new(64);
        fr.record(FlightStage::RxIngest, 0, 5);
        fr.record(FlightStage::RxIngest, 64, 5);
        fr.record(FlightStage::RxIngest, 63, 5);
        fr.record(FlightStage::RxIngest, 1, 5);
        assert_eq!(fr.spans_recorded(), 2, "flows 0 and 64 sampled");
        assert_eq!(fr.spans_unsampled(), 2, "flows 63 and 1 skipped");
        assert_eq!(fr.flows_tracked(), 2);
        assert!(fr.sampled(128) && !fr.sampled(129));
    }

    #[test]
    fn sample_zero_clamps_to_every_flow() {
        let mut fr = FlightRecorder::new(0);
        assert_eq!(fr.sample_n(), 1);
        fr.record(FlightStage::TxEmit, 12345, 1);
        assert_eq!(fr.spans_recorded(), 1);
    }

    #[test]
    fn bias_inflates_recorded_spans() {
        let mut fr = FlightRecorder::new(1);
        fr.record(FlightStage::FpuProcess, 1, 10);
        fr.set_bias(100);
        fr.record(FlightStage::FpuProcess, 1, 10);
        let h = fr.stage_histogram(FlightStage::FpuProcess);
        assert_eq!(h.min(), 10);
        assert!(h.max() >= 110);
    }

    #[test]
    fn json_shape_and_determinism() {
        let build = || {
            let mut fr = FlightRecorder::new(1);
            for f in 0..3u32 {
                fr.record(FlightStage::RxIngest, f, 4);
                fr.record(FlightStage::FpuProcess, f, 17);
                fr.record(FlightStage::TxEmit, f, u64::from(f) * 7);
            }
            fr.to_json(4)
        };
        let a = build();
        assert_eq!(a, build(), "breakdown JSON must be byte-stable");
        assert!(a.contains("\"fpu_process\""));
        assert!(a.contains("\"p999_cycles\""));
        // 17 cycles at 4 ns.
        assert!(a.contains("\"p50_ns\": 68"));
        // 17 cycles at the 322 MHz clock: 17 * 3106 / 1000 = 52 ns.
        assert!(a.contains("\"p50_ns_net\": 52"));
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        // Every stage appears exactly once in the stages object.
        for stage in FlightStage::ALL {
            assert_eq!(a.matches(&format!("    \"{}\":", stage.name())).count(), 1);
        }
    }

    /// A histogram holding exactly one span must report that span's value
    /// at every percentile — tail percentiles must never interpolate
    /// toward zero or overshoot past the only sample.
    #[test]
    fn single_sample_percentiles_are_stable() {
        let mut fr = FlightRecorder::new(1);
        fr.record(FlightStage::EventAccum, 7, 42);
        let h = fr.stage_histogram(FlightStage::EventAccum);
        assert_eq!(h.count(), 1);
        let (p50, p99, p999) = (h.percentile(50.0), h.percentile(99.0), h.percentile(99.9));
        assert_eq!(p50, p99, "one sample: p50 and p99 must agree");
        assert_eq!(p99, p999, "one sample: p99 and p999 must agree");
        assert!(
            (h.min()..=h.max()).contains(&p999),
            "p999 {p999} outside the observed range [{}, {}]",
            h.min(),
            h.max()
        );
    }

    /// A recorder that never saw a span still serializes: every stage
    /// appears with zeroed statistics, the flow table is empty, and the
    /// bytes are identical across calls (the empty breakdown is a valid
    /// gate baseline).
    #[test]
    fn json_is_byte_stable_with_empty_stages() {
        let fr = FlightRecorder::new(64);
        let a = fr.to_json(4);
        assert_eq!(a, fr.to_json(4), "empty breakdown must be byte-stable");
        for stage in FlightStage::ALL {
            assert_eq!(a.matches(&format!("    \"{}\":", stage.name())).count(), 1);
        }
        assert!(a.contains("\"spans_recorded\": 0"), "{a}");
        assert!(a.contains("\"flows_tracked\": 0"), "{a}");
        assert!(a.contains("\"count\": 0"), "{a}");
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert!(a.ends_with("}\n"), "serialization must stay well-terminated");
    }

    #[test]
    fn json_caps_per_flow_entries() {
        let mut fr = FlightRecorder::new(1);
        for f in 0..200u32 {
            fr.record(FlightStage::TxEmit, f, 1);
        }
        let j = fr.to_json(4);
        assert!(j.contains("\"flows_omitted\": 136"));
        assert!(j.contains("\"63\""));
        assert!(!j.contains("\"64\": {"), "flow 64 beyond the JSON cap");
        assert_eq!(fr.flows_tracked(), 200, "in-memory table keeps everything");
    }

    #[test]
    fn collect_reports_registry_metrics() {
        let mut fr = FlightRecorder::new(1);
        fr.record(FlightStage::PendingWait, 3, 12);
        let mut reg = MetricsRegistry::new();
        fr.collect("flight", &mut reg);
        assert_eq!(reg.counter_value("flight.spans_recorded"), 1);
        match reg.get("flight.pending_wait.cycles") {
            Some(crate::telemetry::MetricValue::Histogram(s)) => assert_eq!(s.count, 1),
            other => panic!("unexpected {other:?}"),
        }
    }
}
