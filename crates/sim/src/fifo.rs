//! Bounded FIFOs with backpressure.
//!
//! On-chip queues in FtEngine (coalesce FIFOs, pending queue, inter-module
//! channels) are fixed-depth; a full queue exerts backpressure on its
//! producer. [`Fifo`] models exactly that: `push` fails when full and the
//! caller decides whether to stall, retry or drop — matching how the paper's
//! scheduler detects FPC congestion via backpressure (§4.4.2).

use std::collections::VecDeque;
use std::fmt;

/// Error returned by [`Fifo::push`] when the queue is full; carries the
/// rejected element back to the caller so nothing is lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoFull<T>(pub T);

impl<T> fmt::Display for FifoFull<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fifo is full")
    }
}

impl<T: fmt::Debug> std::error::Error for FifoFull<T> {}

/// A bounded FIFO queue with explicit backpressure.
///
/// # Examples
///
/// ```
/// use f4t_sim::Fifo;
/// let mut f = Fifo::new(1);
/// f.push("a").unwrap();
/// assert_eq!(f.push("b").unwrap_err().0, "b");
/// assert_eq!(f.pop(), Some("a"));
/// ```
#[derive(Debug, Clone)]
pub struct Fifo<T> {
    items: VecDeque<T>,
    capacity: usize,
    /// High-water mark, for occupancy statistics.
    max_occupancy: usize,
    total_pushed: u64,
    total_popped: u64,
    /// Pushes rejected because the queue was full (producer stalls).
    rejected: u64,
}

impl<T> Fifo<T> {
    /// Creates a FIFO holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Fifo<T> {
        assert!(capacity > 0, "fifo capacity must be non-zero");
        Fifo {
            items: VecDeque::with_capacity(capacity),
            capacity,
            max_occupancy: 0,
            total_pushed: 0,
            total_popped: 0,
            rejected: 0,
        }
    }

    /// Attempts to enqueue `item`.
    ///
    /// # Errors
    ///
    /// Returns [`FifoFull`] carrying the item back when the queue is at
    /// capacity.
    pub fn push(&mut self, item: T) -> Result<(), FifoFull<T>> {
        if self.items.len() >= self.capacity {
            self.rejected += 1;
            return Err(FifoFull(item));
        }
        self.items.push_back(item);
        self.total_pushed += 1;
        self.max_occupancy = self.max_occupancy.max(self.items.len());
        Ok(())
    }

    /// Dequeues the oldest element, if any.
    pub fn pop(&mut self) -> Option<T> {
        let item = self.items.pop_front();
        if item.is_some() {
            self.total_popped += 1;
        }
        item
    }

    /// Returns a reference to the oldest element without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Returns a mutable reference to the oldest element.
    pub fn front_mut(&mut self) -> Option<&mut T> {
        self.items.front_mut()
    }

    /// Returns the number of queued elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Returns whether the queue is at capacity (producer must stall).
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Returns the configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Remaining free slots.
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Highest occupancy observed since construction.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Total number of successful pushes since construction.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Total number of successful pops since construction. Together with
    /// [`Fifo::total_pushed`] and [`Fifo::len`] this gives the conservation
    /// invariant `pushed == popped + occupancy` that the hazard checker
    /// audits (rejected pushes never enter the queue, so push *attempts*
    /// equal `popped + occupancy + rejected`).
    pub fn total_popped(&self) -> u64 {
        self.total_popped
    }

    /// Pushes rejected because the queue was full — each one is a
    /// producer-side stall (backpressure event).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Reports this queue's occupancy statistics into a telemetry
    /// registry under `<prefix>.depth/.high_watermark/.pushed/.rejected`.
    /// The high-watermark is a gauge so windowed deltas keep the
    /// end-of-window value instead of subtracting it away.
    pub fn collect(&self, prefix: &str, reg: &mut crate::telemetry::MetricsRegistry) {
        reg.gauge(&format!("{prefix}.depth"), self.items.len() as f64);
        reg.gauge(&format!("{prefix}.high_watermark"), self.max_occupancy as f64);
        reg.counter(&format!("{prefix}.pushed"), self.total_pushed);
        reg.counter(&format!("{prefix}.rejected"), self.rejected);
    }

    /// Iterates over queued elements from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Iterates mutably over queued elements from oldest to newest.
    /// Used by the coalesce FIFOs, which merge a new event into an
    /// already-queued event of the same flow (paper §4.4.1).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.items.iter_mut()
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_order() {
        let mut f = Fifo::new(3);
        f.push(1).unwrap();
        f.push(2).unwrap();
        f.push(3).unwrap();
        assert!(f.is_full());
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), Some(3));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn full_returns_item() {
        let mut f = Fifo::new(1);
        f.push(7).unwrap();
        let err = f.push(8).unwrap_err();
        assert_eq!(err.0, 8);
        assert_eq!(err.to_string(), "fifo is full");
    }

    #[test]
    fn occupancy_stats() {
        let mut f = Fifo::new(4);
        f.push(1).unwrap();
        f.push(2).unwrap();
        f.pop();
        f.push(3).unwrap();
        assert_eq!(f.max_occupancy(), 2);
        assert_eq!(f.total_pushed(), 3);
        assert_eq!(f.total_popped(), 1);
        assert_eq!(f.free(), 2);
        // Conservation: pushed == popped + occupancy.
        assert_eq!(f.total_pushed(), f.total_popped() + f.len() as u64);
    }

    #[test]
    fn pop_on_empty_not_counted() {
        let mut f: Fifo<u8> = Fifo::new(2);
        assert_eq!(f.pop(), None);
        assert_eq!(f.total_popped(), 0);
    }

    #[test]
    fn rejected_pushes_counted() {
        let mut f = Fifo::new(1);
        f.push(1).unwrap();
        assert!(f.push(2).is_err());
        assert!(f.push(3).is_err());
        assert_eq!(f.rejected(), 2);
        assert_eq!(f.total_pushed(), 1);
    }

    #[test]
    fn collect_reports_registry_metrics() {
        let mut f = Fifo::new(2);
        f.push(1).unwrap();
        f.push(2).unwrap();
        let _ = f.push(3);
        let mut reg = crate::telemetry::MetricsRegistry::new();
        f.collect("q", &mut reg);
        assert_eq!(reg.gauge_value("q.high_watermark"), 2.0);
        assert_eq!(reg.counter_value("q.pushed"), 2);
        assert_eq!(reg.counter_value("q.rejected"), 1);
    }

    #[test]
    fn iter_mut_allows_in_place_merge() {
        let mut f = Fifo::new(4);
        f.push((1u32, 10u32)).unwrap();
        f.push((2, 20)).unwrap();
        for (id, v) in f.iter_mut() {
            if *id == 2 {
                *v += 5;
            }
        }
        assert_eq!(f.pop(), Some((1, 10)));
        assert_eq!(f.pop(), Some((2, 25)));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _: Fifo<u8> = Fifo::new(0);
    }
}
