#![warn(missing_docs)]
//! # f4t-sim — simulation kernel for the F4T reproduction
//!
//! This crate provides the small, dependency-free substrate every other
//! crate in the workspace builds on:
//!
//! * [`Cycle`] and [`ClockDomain`] — discrete hardware time and conversion
//!   between cycles, nanoseconds and rates.
//! * [`Fifo`] — a bounded FIFO with backpressure, modelling on-chip queues.
//! * [`SimRng`] — a tiny deterministic PRNG (SplitMix64/xorshift) so every
//!   experiment is reproducible from a seed without external crates in the
//!   hot path.
//! * [`Counter`], [`Histogram`], [`MeanVar`] — statistics used by the
//!   benchmark harnesses (throughput counters, latency percentiles).
//! * [`EventQueue`] — a discrete-event scheduler used by the NS3-equivalent
//!   reference simulator in `f4t-netsim`.
//! * [`telemetry`] — FtScope: the metrics registry (snapshot/delta), the
//!   bounded pipeline trace ring, and Chrome-trace JSON export.
//! * [`flight`] — FtFlight: span-based per-flow latency attribution
//!   ([`FlightRecorder`], [`FlightStage`]) with per-stage histograms and
//!   deterministic breakdown JSON.
//! * [`check`] — FtVerify: the optional cycle-level hazard checker
//!   ([`InvariantChecker`], [`PortTracker`]) that simulated memories and
//!   queues register accesses against.
//! * [`pulse`] — FtPulse: windowed time-series telemetry
//!   ([`PulseRecorder`], [`PulseSeries`]) — bounded per-series rings
//!   sampled at fixed cycle intervals, byte-identical across execution
//!   modes, with per-shard aggregation and Chrome counter export.
//! * [`journal`] — FtJournal: the bounded per-flow causal event journal
//!   ([`Journal`], [`JournalEvent`]) behind post-mortem black-box dumps.
//! * [`watchdog`] — FtJournal's online health watchdog ([`Watchdog`]):
//!   stuck flows, retransmit storms, queue SLOs, starved LUT entries.
//! * [`slab`] — FtTurbo struct-of-arrays slab allocators ([`Slab`],
//!   [`FlowSlab`], [`SlabQueue`], [`FlowSet`]): the dense, hash-free,
//!   deterministically-iterable stores behind every tick-path per-flow
//!   structure.
//!
//! # Examples
//!
//! ```
//! use f4t_sim::{ClockDomain, Fifo};
//!
//! let core = ClockDomain::new_mhz(250);
//! assert_eq!(core.cycles_to_ns(250_000_000), 1_000_000_000);
//!
//! let mut q: Fifo<u32> = Fifo::new(2);
//! assert!(q.push(1).is_ok());
//! assert!(q.push(2).is_ok());
//! assert!(q.push(3).is_err()); // backpressure
//! assert_eq!(q.pop(), Some(1));
//! ```

pub mod check;
pub mod clock;
pub mod des;
pub mod fifo;
pub mod flight;
pub mod journal;
pub mod pulse;
pub mod rng;
pub mod slab;
pub mod stats;
pub mod telemetry;
pub mod watchdog;

pub use check::{InvariantChecker, PortTracker, Violation, ViolationKind};
pub use clock::{Cycle, ClockDomain};
pub use des::EventQueue;
pub use fifo::Fifo;
pub use flight::{FlightRecorder, FlightStage};
pub use journal::{Journal, JournalEvent, JournalKind, JournalModule};
pub use pulse::{PulseRecorder, PulseSeries};
pub use rng::SimRng;
pub use slab::{FlowSet, FlowSlab, Slab, SlabCursor, SlabHandle, SlabQueue};
pub use stats::{Counter, Histogram, MeanVar};
pub use watchdog::{
    Alarm, AlarmKind, FlowObservation, QueueObservation, Watchdog, WatchdogConfig,
};
pub use telemetry::{MetricsRegistry, MetricValue, TraceEvent, TraceKind, TraceRing};

/// Converts a byte count over a duration in nanoseconds to gigabits/second.
///
/// # Examples
///
/// ```
/// // 12.5 GB over one second is 100 Gbps.
/// assert!((f4t_sim::gbps(12_500_000_000, 1_000_000_000) - 100.0).abs() < 1e-9);
/// ```
pub fn gbps(bytes: u64, ns: u64) -> f64 {
    if ns == 0 {
        return 0.0;
    }
    (bytes as f64 * 8.0) / ns as f64
}

/// Converts an operation count over a duration in nanoseconds to
/// millions of operations per second.
///
/// # Examples
///
/// ```
/// assert!((f4t_sim::mops(44_000_000, 1_000_000_000) - 44.0).abs() < 1e-9);
/// ```
pub fn mops(ops: u64, ns: u64) -> f64 {
    if ns == 0 {
        return 0.0;
    }
    ops as f64 * 1e3 / ns as f64
}
