//! Deterministic pseudo-random number generation.
//!
//! Experiments must be reproducible from a seed. [`SimRng`] is a
//! SplitMix64-seeded xoshiro256++ generator — small, fast, and good enough
//! for workload inter-arrival jitter, drop injection and hash seeding. The
//! heavier `rand` crate is only used at the workload layer where
//! distributions are needed.

/// A deterministic PRNG (xoshiro256++ seeded via SplitMix64).
///
/// # Examples
///
/// ```
/// use f4t_sim::SimRng;
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> SimRng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        // Lemire's multiply-shift rejection method.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Derives an independent child generator; useful for giving each
    /// simulated component its own stream.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn bounded_values_in_range() {
        let mut r = SimRng::new(99);
        for _ in 0..10_000 {
            let v = r.next_below(13);
            assert!(v < 13);
        }
    }

    #[test]
    fn bounded_covers_all_residues() {
        let mut r = SimRng::new(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.next_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(5);
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn fork_is_independent_stream() {
        let mut a = SimRng::new(11);
        let mut child = a.fork();
        // Parent and child produce different streams.
        assert_ne!(a.next_u64(), child.next_u64());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bound_panics() {
        SimRng::new(0).next_below(0);
    }
}
