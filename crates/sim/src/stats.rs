//! Statistics primitives: counters, running mean/variance and a log-linear
//! histogram for latency percentiles (Fig. 12's median/99th-tail numbers).

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use f4t_sim::Counter;
/// let mut c = Counter::default();
/// c.incr();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter(0)
    }

    /// Increments by one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Returns the current value.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Running mean and variance (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use f4t_sim::MeanVar;
/// let mut m = MeanVar::new();
/// for x in [2.0, 4.0, 6.0] {
///     m.record(x);
/// }
/// assert!((m.mean() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct MeanVar {
    n: u64,
    mean: f64,
    m2: f64,
}

impl MeanVar {
    /// Creates an empty accumulator.
    pub fn new() -> MeanVar {
        MeanVar::default()
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (zero when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (zero with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

const HIST_SUB_BUCKETS: usize = 32;

/// A log-linear histogram over `u64` values (e.g. latency in nanoseconds).
///
/// Values are bucketed by power-of-two magnitude with 32
/// linear sub-buckets per octave, giving ~3 % relative error — the same
/// scheme HdrHistogram uses. Suitable for the paper's median / 99th-tail
/// latency reporting.
///
/// # Examples
///
/// ```
/// use f4t_sim::Histogram;
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let med = h.percentile(50.0);
/// assert!((450..=550).contains(&med));
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: vec![0; 64 * HIST_SUB_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value < HIST_SUB_BUCKETS as u64 {
            return value as usize;
        }
        let magnitude = 63 - value.leading_zeros() as usize; // >= 5
        let shift = magnitude - HIST_SUB_BUCKETS.trailing_zeros() as usize;
        let sub = ((value >> shift) as usize) - HIST_SUB_BUCKETS;
        (magnitude - 4) * HIST_SUB_BUCKETS + sub
    }

    fn bucket_low(index: usize) -> u64 {
        if index < HIST_SUB_BUCKETS {
            return index as u64;
        }
        let magnitude = index / HIST_SUB_BUCKETS + 4;
        let sub = index % HIST_SUB_BUCKETS;
        let shift = magnitude - HIST_SUB_BUCKETS.trailing_zeros() as usize;
        ((HIST_SUB_BUCKETS + sub) as u64) << shift
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded value (zero when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Returns the value at percentile `p` (0–100). For an empty histogram
    /// returns zero. The result is the lower bound of the containing
    /// bucket, i.e. accurate to ~3 %.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return Self::bucket_low(i).max(self.min).min(self.max);
            }
        }
        self.max
    }

    /// Median (50th percentile).
    pub fn median(&self) -> u64 {
        self.percentile(50.0)
    }

    /// Merges another histogram into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn meanvar_known_values() {
        let mut m = MeanVar::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            m.record(x);
        }
        assert_eq!(m.count(), 4);
        assert!((m.mean() - 2.5).abs() < 1e-12);
        assert!((m.variance() - 1.25).abs() < 1e-12);
        assert!((m.std_dev() - 1.25f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn meanvar_empty_and_single() {
        let mut m = MeanVar::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
        m.record(5.0);
        assert_eq!(m.variance(), 0.0);
    }

    #[test]
    fn histogram_small_values_exact() {
        let mut h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.percentile(100.0), 31);
        assert_eq!(h.percentile(0.0), 0);
    }

    #[test]
    fn histogram_percentiles_within_error() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for (p, expect) in [(50.0, 50_000u64), (90.0, 90_000), (99.0, 99_000)] {
            let got = h.percentile(p);
            let err = (got as f64 - expect as f64).abs() / expect as f64;
            assert!(err < 0.05, "p{p}: got {got}, expected ~{expect}");
        }
    }

    #[test]
    fn histogram_large_values() {
        let mut h = Histogram::new();
        h.record(u64::MAX / 2);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.percentile(100.0) >= u64::MAX / 2);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn histogram_single_sample() {
        let mut h = Histogram::new();
        h.record(777);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 777);
        assert_eq!(h.max(), 777);
        // Every percentile of a one-sample distribution is that sample.
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 777, "p{p}");
        }
        assert!((h.mean() - 777.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_percentile_clamps_out_of_range() {
        let mut h = Histogram::new();
        for v in 1..=10u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(-5.0), h.percentile(0.0));
        assert_eq!(h.percentile(250.0), h.percentile(100.0));
        assert_eq!(h.percentile(100.0), 10);
    }

    #[test]
    fn histogram_zero_only() {
        let mut h = Histogram::new();
        for _ in 0..5 {
            h.record(0);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.median(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        for v in [3u64, 5, 9] {
            a.record(v);
        }
        let before = (a.count(), a.min(), a.max(), a.median());
        a.merge(&Histogram::new());
        assert_eq!((a.count(), a.min(), a.max(), a.median()), before);

        let mut empty = Histogram::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 3);
        assert_eq!(empty.min(), 3);
        assert_eq!(empty.max(), 9);
    }

    #[test]
    fn merge_combines_distributions() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=100u64 {
            a.record(v);
        }
        for v in 1000..=1100u64 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 201);
        assert_eq!(a.min(), 1);
        assert!(a.max() >= 1100);
        assert!(a.percentile(25.0) <= 100);
        assert!(a.percentile(75.0) >= 950);
    }

    #[test]
    fn bucket_index_monotone() {
        let mut last = 0;
        for v in (0..10_000u64).chain((1..50).map(|i| i * 1_000_000)) {
            let idx = Histogram::bucket_index(v);
            assert!(idx >= last || v == 0);
            last = last.max(idx);
            // Lower bound never exceeds the value.
            assert!(Histogram::bucket_low(idx) <= v);
        }
    }
}
