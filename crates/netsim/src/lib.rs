#![warn(missing_docs)]
//! # f4t-netsim — the NS3-equivalent reference network simulator
//!
//! Fig. 14 validates F4T's congestion-control behaviour against "a
//! well-known network simulator, NS3". We cannot ship NS3, so this crate
//! is its stand-in: a discrete-event, packet-level network simulator with
//! its **own, independent** implementations of New Reno, CUBIC and Vegas
//! ([`refcc`]). Independence is the point — the Fig. 14 harness compares
//! the congestion-window trace of FtEngine's FPU (integer arithmetic over
//! TCB state in `f4t-tcp`) against this crate's NS3-style floating-point
//! MSS-unit implementations, two codebases that share nothing but the
//! RFCs.
//!
//! The simulator is deliberately classic: a sender node, a receiver node,
//! and a full-duplex link with serialization delay, propagation delay, a
//! drop-tail queue and scripted or random loss ([`link`]).

pub mod endpoint;
pub mod impair;
pub mod link;
pub mod multiflow;
pub mod refcc;
pub mod sim;

pub use impair::{GeParams, ImpairDecision, ImpairState, Impairments};
pub use link::{DropPolicy, LinkConfig, Offer};
pub use refcc::{RefAlgo, RefCc};
pub use multiflow::{run_multiflow, MultiFlowResult};
pub use sim::{CwndSample, Simulation, SimulationConfig, TraceResult};
