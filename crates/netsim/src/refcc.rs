//! Reference congestion-control implementations, NS3-style.
//!
//! These are written the way NS3's `TcpNewReno` / `TcpCubic` /
//! `TcpVegas` are: floating-point windows in MSS units, per-ACK update
//! functions on a plain state struct. They deliberately share **no code**
//! with `f4t_tcp::cc` (the engine-side integer implementations) so the
//! Fig. 14 comparison is between independent derivations of the RFCs.

/// Which reference algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RefAlgo {
    /// RFC 6582 New Reno.
    NewReno,
    /// RFC 8312 CUBIC.
    Cubic,
    /// Brakmo & Peterson's Vegas.
    Vegas,
}

impl std::fmt::Display for RefAlgo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefAlgo::NewReno => write!(f, "ns-newreno"),
            RefAlgo::Cubic => write!(f, "ns-cubic"),
            RefAlgo::Vegas => write!(f, "ns-vegas"),
        }
    }
}

/// Reference congestion-control state (windows in MSS units, time in
/// seconds — NS3 conventions).
#[derive(Debug, Clone)]
pub struct RefCc {
    algo: RefAlgo,
    /// Congestion window in segments.
    pub cwnd: f64,
    /// Slow-start threshold in segments.
    pub ssthresh: f64,
    // CUBIC state.
    w_max: f64,
    epoch_start: f64,
    k: f64,
    /// TCP-friendly region estimate (RFC 8312 §4.2).
    w_est: f64,
    // Vegas state.
    base_rtt: f64,
    cnt_rtt: u32,
    min_rtt: f64,
    vegas_started: bool,
}

/// CUBIC C constant.
const C: f64 = 0.4;
/// CUBIC beta.
const BETA: f64 = 0.7;
/// Vegas thresholds (segments of queueing).
const ALPHA: f64 = 2.0;
const BETA_V: f64 = 4.0;

impl RefCc {
    /// Initial window: 10 segments (matching the engine side and modern
    /// Linux defaults).
    pub fn new(algo: RefAlgo) -> RefCc {
        RefCc {
            algo,
            cwnd: 10.0,
            ssthresh: f64::MAX,
            w_max: 0.0,
            epoch_start: -1.0,
            k: 0.0,
            w_est: 0.0,
            base_rtt: f64::MAX,
            cnt_rtt: 0,
            min_rtt: f64::MAX,
            vegas_started: false,
        }
    }

    /// The algorithm.
    pub fn algo(&self) -> RefAlgo {
        self.algo
    }

    /// Per-ACK update. `acked_segments` is how many segments the ACK
    /// covered, `rtt` the sample in seconds (if taken), `now` the
    /// simulation clock in seconds.
    pub fn on_ack(&mut self, acked_segments: f64, rtt: Option<f64>, now: f64) {
        if let Some(r) = rtt {
            self.base_rtt = self.base_rtt.min(r);
            self.min_rtt = self.min_rtt.min(r);
            self.cnt_rtt += 1;
        }
        if self.cwnd < self.ssthresh {
            // Slow start (all three algorithms).
            self.cwnd += acked_segments.min(1.0);
            if self.algo == RefAlgo::Vegas && !self.vegas_started {
                // Vegas gamma test: leave slow start once queueing shows.
                if let Some(r) = rtt {
                    if self.base_rtt.is_finite() && r > self.base_rtt * 1.1 {
                        self.vegas_started = true;
                        self.ssthresh = self.cwnd;
                    }
                }
            }
            return;
        }
        match self.algo {
            RefAlgo::NewReno => {
                self.cwnd += 1.0 / self.cwnd;
            }
            RefAlgo::Cubic => {
                if self.epoch_start < 0.0 {
                    self.epoch_start = now;
                    if self.w_max < self.cwnd {
                        self.w_max = self.cwnd;
                    }
                    self.k = ((self.w_max * (1.0 - BETA)) / C).cbrt();
                    self.w_est = self.cwnd;
                }
                let rtt_s = if self.min_rtt.is_finite() { self.min_rtt } else { 0.0 };
                let t = now - self.epoch_start + rtt_s;
                let target = C * (t - self.k).powi(3) + self.w_max;
                // TCP-friendly region (RFC 8312 §4.2): CUBIC must grow at
                // least as fast as standard TCP, which dominates early in
                // an epoch when K is large.
                self.w_est += 3.0 * (1.0 - BETA) / (1.0 + BETA) * acked_segments / self.cwnd;
                let floor = self.w_est.min(self.w_max.max(self.cwnd) * 4.0);
                if target > self.cwnd {
                    self.cwnd += (target - self.cwnd) / self.cwnd;
                }
                if floor > self.cwnd {
                    self.cwnd = floor;
                }
            }
            RefAlgo::Vegas => {
                // Once per RTT (approximated by cnt_rtt resets).
                if self.cnt_rtt >= self.cwnd as u32 / 2 && self.min_rtt.is_finite() {
                    let expected = self.cwnd / self.base_rtt;
                    let actual = self.cwnd / self.min_rtt;
                    let diff = (expected - actual) * self.base_rtt;
                    if diff < ALPHA {
                        self.cwnd += 1.0;
                    } else if diff > BETA_V {
                        self.cwnd = (self.cwnd - 1.0).max(2.0);
                    }
                    self.min_rtt = f64::MAX;
                    self.cnt_rtt = 0;
                }
            }
        }
    }

    /// Fast-retransmit loss reaction (3 duplicate ACKs).
    pub fn on_loss(&mut self, now: f64) {
        let _ = now;
        match self.algo {
            RefAlgo::NewReno | RefAlgo::Vegas => {
                self.ssthresh = (self.cwnd / 2.0).max(2.0);
                self.cwnd = self.ssthresh + 3.0;
            }
            RefAlgo::Cubic => {
                // Fast convergence.
                if self.cwnd < self.w_max {
                    self.w_max = self.cwnd * (2.0 - BETA) / 2.0;
                } else {
                    self.w_max = self.cwnd;
                }
                self.ssthresh = (self.cwnd * BETA).max(2.0);
                self.cwnd = self.ssthresh;
                self.epoch_start = -1.0;
                self.w_est = self.cwnd;
            }
        }
    }

    /// Exit from fast recovery (full ACK): deflate to ssthresh.
    pub fn on_recovery_exit(&mut self) {
        self.cwnd = self.ssthresh.max(2.0);
    }

    /// Retransmission-timeout reaction.
    pub fn on_timeout(&mut self) {
        match self.algo {
            RefAlgo::Cubic => {
                self.w_max = self.w_max.max(self.cwnd);
                self.ssthresh = (self.cwnd * BETA).max(2.0);
                self.epoch_start = -1.0;
            }
            _ => {
                self.ssthresh = (self.cwnd / 2.0).max(2.0);
            }
        }
        self.cwnd = 1.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_start_doubles() {
        let mut cc = RefCc::new(RefAlgo::NewReno);
        let start = cc.cwnd;
        for _ in 0..start as usize {
            cc.on_ack(1.0, Some(0.001), 0.0);
        }
        assert!((cc.cwnd - 2.0 * start).abs() < 1e-9);
    }

    #[test]
    fn newreno_ca_adds_one_per_rtt() {
        let mut cc = RefCc::new(RefAlgo::NewReno);
        cc.ssthresh = cc.cwnd;
        let start = cc.cwnd;
        for _ in 0..start as usize {
            cc.on_ack(1.0, None, 0.0);
        }
        assert!((cc.cwnd - start - 1.0).abs() < 0.1);
    }

    #[test]
    fn newreno_halves_on_loss() {
        let mut cc = RefCc::new(RefAlgo::NewReno);
        cc.cwnd = 100.0;
        cc.on_loss(0.0);
        assert!((cc.ssthresh - 50.0).abs() < 1e-9);
        cc.on_recovery_exit();
        assert!((cc.cwnd - 50.0).abs() < 1e-9);
    }

    #[test]
    fn cubic_reduces_by_beta_and_regrows() {
        let mut cc = RefCc::new(RefAlgo::Cubic);
        cc.ssthresh = 1.0; // force CA
        cc.cwnd = 100.0;
        cc.on_loss(1.0);
        assert!((cc.cwnd - 70.0).abs() < 1e-9, "beta = 0.7");
        let low = cc.cwnd;
        let mut now = 1.0;
        for _ in 0..5_000 {
            now += 0.0005;
            cc.on_ack(1.0, Some(0.01), now);
        }
        assert!(cc.cwnd > low, "cubic regrows toward w_max");
        // It should plateau near w_max = 100 before probing beyond.
        assert!(cc.cwnd > 90.0, "reached {:.1}", cc.cwnd);
    }

    #[test]
    fn vegas_holds_window_steady_at_target_queueing() {
        let mut cc = RefCc::new(RefAlgo::Vegas);
        cc.ssthresh = 1.0;
        cc.cwnd = 20.0;
        cc.base_rtt = 0.010;
        // RTT implying ~3 segments queued (between alpha and beta):
        // diff = cwnd * (1 - base/rtt) = 3  =>  rtt = base*cwnd/(cwnd-3).
        let rtt = 0.010 * 20.0 / 17.0;
        for i in 0..100 {
            cc.on_ack(1.0, Some(rtt), i as f64 * 0.01);
        }
        assert!((cc.cwnd - 20.0).abs() < 1.5, "stable at {:.1}", cc.cwnd);
    }

    #[test]
    fn vegas_backs_off_when_queue_grows() {
        let mut cc = RefCc::new(RefAlgo::Vegas);
        cc.ssthresh = 1.0;
        cc.cwnd = 20.0;
        cc.base_rtt = 0.010;
        for i in 0..200 {
            cc.on_ack(1.0, Some(0.020), i as f64 * 0.01); // heavy queueing
        }
        assert!(cc.cwnd < 20.0);
    }

    #[test]
    fn timeout_collapses_all() {
        for algo in [RefAlgo::NewReno, RefAlgo::Cubic, RefAlgo::Vegas] {
            let mut cc = RefCc::new(algo);
            cc.cwnd = 64.0;
            cc.on_timeout();
            assert_eq!(cc.cwnd, 1.0, "{algo}");
            assert!(cc.ssthresh >= 2.0);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(RefAlgo::NewReno.to_string(), "ns-newreno");
        assert_eq!(RefAlgo::Cubic.to_string(), "ns-cubic");
        assert_eq!(RefAlgo::Vegas.to_string(), "ns-vegas");
    }
}
