//! Deterministic link impairments (FtStorm, DESIGN.md §14).
//!
//! Hostile-network scenarios need more than Bernoulli loss: real links
//! reorder (parallel paths, LAG hashing), duplicate (retransmitting
//! middleboxes), lose in bursts (interference, buffer overruns) and
//! jitter. [`Impairments`] describes those mechanisms; [`ImpairState`]
//! turns the description into a per-packet decision stream that is a
//! pure function of `(seed, packet index)` — each mechanism draws from
//! its own forked [`SimRng`] on **every** data packet, so enabling or
//! triggering one mechanism never shifts another's draw sequence. That
//! property is what keeps the golden determinism digest and the
//! fast-forward/tick-by-tick equivalence byte-identical under every
//! impairment profile.

use f4t_sim::SimRng;

/// Gilbert–Elliott two-state burst-loss parameters. The chain moves
/// between a `good` and a `bad` state once per data packet; each state
/// has its own loss probability, so losses cluster into bursts whose
/// mean length is `1 / p_exit_bad` packets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeParams {
    /// P(good → bad) per data packet.
    pub p_enter_bad: f64,
    /// P(bad → good) per data packet.
    pub p_exit_bad: f64,
    /// Loss probability while in the good state.
    pub loss_good: f64,
    /// Loss probability while in the bad state.
    pub loss_bad: f64,
}

impl GeParams {
    /// Mild bursty loss: a bad spell starts roughly every 500 packets,
    /// lasts ~8 packets and loses half of them — short enough that
    /// dup-ACK fast retransmit repairs most bursts without an RTO.
    pub fn mild() -> GeParams {
        GeParams { p_enter_bad: 0.002, p_exit_bad: 0.125, loss_good: 0.0, loss_bad: 0.5 }
    }
}

/// Impairment configuration for one link direction. All mechanisms
/// apply to data packets only — ACKs are never impaired, matching the
/// existing `DropPolicy` contract.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Impairments {
    /// Independent (memoryless) Bernoulli loss probability.
    pub loss_p: f64,
    /// Burst loss (Gilbert–Elliott); `None` disables the chain.
    pub ge: Option<GeParams>,
    /// Probability a data packet is reordered (held back behind
    /// later-sent packets).
    pub reorder_p: f64,
    /// Maximum displacement, in packets, of a reordered packet. The
    /// drawn displacement is uniform in `[1, reorder_depth]`.
    pub reorder_depth: u64,
    /// Probability a data packet is delivered twice.
    pub dup_p: f64,
    /// Uniform extra one-way delay in `[0, jitter_ns)` per data packet
    /// (order-preserving: jitter alone never reorders).
    pub jitter_ns: u64,
    /// Seed for the per-mechanism decision streams.
    pub seed: u64,
}

impl Impairments {
    /// A clean link: every mechanism disabled.
    pub fn none() -> Impairments {
        Impairments {
            loss_p: 0.0,
            ge: None,
            reorder_p: 0.0,
            reorder_depth: 0,
            dup_p: 0.0,
            jitter_ns: 0,
            seed: 0,
        }
    }

    /// Whether any mechanism is enabled.
    pub fn is_active(&self) -> bool {
        self.loss_p > 0.0
            || self.ge.is_some()
            || self.reorder_p > 0.0
            || self.dup_p > 0.0
            || self.jitter_ns > 0
    }

    /// The named profiles accepted by `f4tperf --impair` and the
    /// scenario-matrix grid. `None` for an unknown name.
    pub fn profile(name: &str) -> Option<Impairments> {
        let base = Impairments::none();
        match name {
            "clean" => Some(base),
            "reorder" => Some(Impairments {
                reorder_p: 0.05,
                reorder_depth: 3,
                seed: 0xF47_0001,
                ..base
            }),
            "burst-loss" => {
                Some(Impairments { ge: Some(GeParams::mild()), seed: 0xF47_0002, ..base })
            }
            "duplicate" => Some(Impairments { dup_p: 0.02, seed: 0xF47_0003, ..base }),
            "jitter" => Some(Impairments { jitter_ns: 2_000, seed: 0xF47_0004, ..base }),
            "lossy" => Some(Impairments { loss_p: 0.005, seed: 0xF47_0005, ..base }),
            _ => None,
        }
    }

    /// Every profile name `profile` accepts, in documentation order.
    pub fn profile_names() -> &'static [&'static str] {
        &["clean", "reorder", "burst-loss", "duplicate", "jitter", "lossy"]
    }

    /// The same impairments with an independent decision stream — used
    /// to give each link direction its own draws.
    pub fn reseeded(&self, salt: u64) -> Impairments {
        Impairments { seed: self.seed.wrapping_add(salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)), ..*self }
    }
}

impl Default for Impairments {
    fn default() -> Impairments {
        Impairments::none()
    }
}

/// The per-packet verdict drawn from the decision streams.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImpairDecision {
    /// Drop the packet (Bernoulli or burst loss fired).
    pub drop: bool,
    /// Deliver the packet twice.
    pub duplicate: bool,
    /// Displacement in packets (0 = in order).
    pub reorder: u64,
    /// Extra one-way delay.
    pub jitter_ns: u64,
}

/// The decision machine: one forked [`SimRng`] stream per mechanism
/// plus the Gilbert–Elliott channel state.
#[derive(Debug, Clone)]
pub struct ImpairState {
    cfg: Impairments,
    loss: SimRng,
    ge: SimRng,
    reorder: SimRng,
    dup: SimRng,
    jitter: SimRng,
    /// Gilbert–Elliott channel state (`true` = bad).
    in_bad: bool,
    decisions: u64,
}

impl ImpairState {
    /// Creates the decision machine for `cfg`.
    pub fn new(cfg: Impairments) -> ImpairState {
        let mut root = SimRng::new(cfg.seed);
        ImpairState {
            cfg,
            loss: root.fork(),
            ge: root.fork(),
            reorder: root.fork(),
            dup: root.fork(),
            jitter: root.fork(),
            in_bad: false,
            decisions: 0,
        }
    }

    /// The configuration this machine draws for.
    pub fn config(&self) -> &Impairments {
        &self.cfg
    }

    /// Data packets judged so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Draws the verdict for the next data packet. Every enabled
    /// mechanism draws exactly once per call (the GE chain draws its
    /// transition plus, in a lossy state, its loss), so decision `i` of
    /// mechanism `m` depends only on `(seed, i)`.
    pub fn decide(&mut self) -> ImpairDecision {
        self.decisions += 1;
        let mut d = ImpairDecision::default();
        if self.cfg.loss_p > 0.0 && self.loss.chance(self.cfg.loss_p) {
            d.drop = true;
        }
        if let Some(ge) = self.cfg.ge {
            self.in_bad = if self.in_bad {
                !self.ge.chance(ge.p_exit_bad)
            } else {
                self.ge.chance(ge.p_enter_bad)
            };
            let p = if self.in_bad { ge.loss_bad } else { ge.loss_good };
            if p > 0.0 && self.ge.chance(p) {
                d.drop = true;
            }
        }
        if self.cfg.reorder_p > 0.0 && self.reorder.chance(self.cfg.reorder_p) {
            d.reorder = 1 + self.reorder.next_below(self.cfg.reorder_depth.max(1));
        }
        if self.cfg.dup_p > 0.0 && self.dup.chance(self.cfg.dup_p) {
            d.duplicate = true;
        }
        if self.cfg.jitter_ns > 0 {
            d.jitter_ns = self.jitter.next_below(self.cfg.jitter_ns);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_stream_is_deterministic() {
        let cfg = Impairments {
            loss_p: 0.1,
            ge: Some(GeParams::mild()),
            reorder_p: 0.2,
            reorder_depth: 4,
            dup_p: 0.1,
            jitter_ns: 500,
            seed: 7,
        };
        let mut a = ImpairState::new(cfg);
        let mut b = ImpairState::new(cfg);
        for _ in 0..10_000 {
            assert_eq!(a.decide(), b.decide());
        }
    }

    #[test]
    fn mechanisms_use_independent_streams() {
        // Enabling duplication must not change the loss decisions.
        let plain = Impairments { loss_p: 0.1, seed: 11, ..Impairments::none() };
        let with_dup = Impairments { dup_p: 0.5, ..plain };
        let mut a = ImpairState::new(plain);
        let mut b = ImpairState::new(with_dup);
        for _ in 0..5_000 {
            assert_eq!(a.decide().drop, b.decide().drop);
        }
    }

    #[test]
    fn ge_losses_cluster_into_bursts() {
        let cfg = Impairments { ge: Some(GeParams::mild()), seed: 3, ..Impairments::none() };
        let mut st = ImpairState::new(cfg);
        let verdicts: Vec<bool> = (0..200_000).map(|_| st.decide().drop).collect();
        let losses = verdicts.iter().filter(|&&d| d).count();
        // Stationary bad-state share 0.002/(0.002+0.125) ≈ 1.6%; half lost.
        assert!((500..4_000).contains(&losses), "losses {losses}");
        // Burstiness: a loss is followed by another loss far more often
        // than the marginal rate (memoryless loss would give ~0.8%).
        let pairs = verdicts.windows(2).filter(|w| w[0] && w[1]).count();
        assert!(
            pairs as f64 > losses as f64 * 0.1,
            "losses do not cluster: {pairs} pairs / {losses} losses"
        );
    }

    #[test]
    fn reorder_depth_bounded() {
        let cfg = Impairments {
            reorder_p: 1.0,
            reorder_depth: 3,
            seed: 5,
            ..Impairments::none()
        };
        let mut st = ImpairState::new(cfg);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            let d = st.decide().reorder;
            assert!((1..=3).contains(&d), "displacement {d}");
            seen[d as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3], "all displacements drawn");
    }

    #[test]
    fn profiles_resolve_and_unknown_rejected() {
        for name in Impairments::profile_names() {
            let p = Impairments::profile(name).expect("known profile");
            assert_eq!(p.is_active(), *name != "clean", "{name}");
        }
        assert!(Impairments::profile("carrier-pigeon").is_none());
    }

    #[test]
    fn reseeded_direction_streams_differ() {
        let cfg = Impairments::profile("burst-loss").unwrap();
        let mut a = ImpairState::new(cfg);
        let mut b = ImpairState::new(cfg.reseeded(1));
        let same = (0..10_000).filter(|_| a.decide().drop == b.decide().drop).count();
        assert!(same < 10_000, "direction streams identical");
    }
}
