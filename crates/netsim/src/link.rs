//! The simulated link: serialization, propagation, queueing, loss — and,
//! via [`Impairments`], reordering, duplication, burst loss and jitter.

use crate::impair::{ImpairDecision, ImpairState, Impairments};
use f4t_sim::SimRng;

/// How the link loses packets (applied to data packets only, matching the
/// paper's "inject occasional packet drops").
#[derive(Debug, Clone, Copy)]
pub enum DropPolicy {
    /// Lossless.
    None,
    /// Drop every `n`-th data packet, starting with packet `start`
    /// (deterministic — good for trace comparison).
    EveryNth {
        /// Period in packets.
        n: u64,
        /// Index (1-based) of the first dropped packet.
        start: u64,
    },
    /// Bernoulli loss with probability `p` (seeded).
    Random {
        /// Per-packet drop probability.
        p: f64,
        /// RNG seed.
        seed: u64,
    },
}

/// Link parameters.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// Bottleneck bandwidth in Gbps.
    pub bandwidth_gbps: f64,
    /// One-way propagation delay in nanoseconds.
    pub delay_ns: u64,
    /// Drop-tail queue capacity in packets.
    pub queue_pkts: usize,
    /// Loss injection.
    pub drops: DropPolicy,
    /// Full impairment model (reorder/duplicate/burst-loss/jitter);
    /// composes with `drops` (either mechanism can drop a packet).
    pub impair: Impairments,
}

impl Default for LinkConfig {
    fn default() -> LinkConfig {
        LinkConfig {
            bandwidth_gbps: 10.0,
            delay_ns: 50_000, // 50 µs one way
            queue_pkts: 100,
            drops: DropPolicy::None,
            impair: Impairments::none(),
        }
    }
}

/// What the link did with an offered packet: where (and whether) the
/// primary copy arrives, and the arrival of a duplicate if the
/// duplication impairment fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Offer {
    /// Arrival time of the packet at the far end; `None` when dropped.
    pub arrival: Option<u64>,
    /// Arrival time of a duplicate delivery, when one was injected.
    pub dup_arrival: Option<u64>,
}

/// One direction of the link.
#[derive(Debug)]
pub struct Link {
    config: LinkConfig,
    /// Time the transmitter becomes free.
    busy_until_ns: u64,
    data_pkts: u64,
    dropped_loss: u64,
    dropped_queue: u64,
    duplicated: u64,
    reordered: u64,
    rng: Option<SimRng>,
    impair: Option<ImpairState>,
}

impl Link {
    /// Creates a link direction.
    pub fn new(config: LinkConfig) -> Link {
        let rng = match config.drops {
            DropPolicy::Random { seed, .. } => Some(SimRng::new(seed)),
            _ => None,
        };
        let impair = config.impair.is_active().then(|| ImpairState::new(config.impair));
        Link {
            config,
            busy_until_ns: 0,
            data_pkts: 0,
            dropped_loss: 0,
            dropped_queue: 0,
            duplicated: 0,
            reordered: 0,
            rng,
            impair,
        }
    }

    fn serialize_ns(&self, wire_bytes: u64) -> u64 {
        ((wire_bytes * 8) as f64 / self.config.bandwidth_gbps) as u64
    }

    /// Offers a packet at `now`; returns its arrival time at the far end,
    /// or `None` if it was dropped (queue overflow or injected loss).
    /// `is_data` selects whether the drop policy applies. Duplicates
    /// injected by the impairment model are not visible through this
    /// legacy entry point — callers that honour duplication use
    /// [`Link::offer`].
    pub fn transmit(&mut self, now_ns: u64, wire_bytes: u64, is_data: bool) -> Option<u64> {
        self.offer(now_ns, wire_bytes, is_data).arrival
    }

    /// Offers a packet through the full impairment pipeline. Reordering
    /// is expressed as extra delay (the caller's event queue delivers in
    /// timestamp order, so a held-back packet lands behind later ones);
    /// the displacement is bounded by `reorder_depth` MTU serialization
    /// times. A duplicate trails the primary by one serialization time.
    pub fn offer(&mut self, now_ns: u64, wire_bytes: u64, is_data: bool) -> Offer {
        const NO: Offer = Offer { arrival: None, dup_arrival: None };
        let mut decision = ImpairDecision::default();
        if is_data {
            self.data_pkts += 1;
            let injected = match self.config.drops {
                DropPolicy::None => false,
                DropPolicy::EveryNth { n, start } => {
                    self.data_pkts >= start && (self.data_pkts - start).is_multiple_of(n)
                }
                DropPolicy::Random { p, .. } => {
                    self.rng.as_mut().map(|r| r.chance(p)).unwrap_or(false)
                }
            };
            // The decision is drawn for every offered data packet, even
            // one the legacy policy already doomed, so the streams stay
            // indexed by the offer sequence alone.
            if let Some(st) = self.impair.as_mut() {
                decision = st.decide();
            }
            if injected || decision.drop {
                self.dropped_loss += 1;
                return NO;
            }
        }
        // Drop-tail queue: bound the backlog in serialization time.
        let queue_cap_ns = self.serialize_ns(1538) * self.config.queue_pkts as u64;
        if self.busy_until_ns.saturating_sub(now_ns) > queue_cap_ns {
            self.dropped_queue += 1;
            return NO;
        }
        let start = self.busy_until_ns.max(now_ns);
        self.busy_until_ns = start + self.serialize_ns(wire_bytes);
        let mut arrival = self.busy_until_ns + self.config.delay_ns;
        if decision.reorder > 0 {
            arrival += decision.reorder * self.serialize_ns(1538);
            self.reordered += 1;
        }
        arrival += decision.jitter_ns;
        let dup_arrival = decision.duplicate.then(|| {
            self.duplicated += 1;
            arrival + self.serialize_ns(wire_bytes)
        });
        Offer { arrival: Some(arrival), dup_arrival }
    }

    /// Packets dropped so far (all causes).
    pub fn dropped(&self) -> u64 {
        self.dropped_loss + self.dropped_queue
    }

    /// Packets dropped by injected loss (`DropPolicy` or the impairment
    /// model's Bernoulli/burst mechanisms).
    pub fn dropped_loss(&self) -> u64 {
        self.dropped_loss
    }

    /// Packets dropped by drop-tail queue overflow.
    pub fn dropped_queue(&self) -> u64 {
        self.dropped_queue
    }

    /// Duplicate deliveries injected so far.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }

    /// Packets held back (reordered) so far.
    pub fn reordered(&self) -> u64 {
        self.reordered
    }

    /// Data packets offered so far.
    pub fn data_pkts(&self) -> u64 {
        self.data_pkts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_and_delay() {
        let mut l = Link::new(LinkConfig {
            bandwidth_gbps: 10.0,
            delay_ns: 1_000,
            queue_pkts: 10,
            ..LinkConfig::default()
        });
        // 1250 bytes at 10 Gbps = 1 µs serialization.
        let arrival = l.transmit(0, 1250, true).unwrap();
        assert_eq!(arrival, 1_000 + 1_000);
        // Second packet queues behind the first.
        let arrival2 = l.transmit(0, 1250, true).unwrap();
        assert_eq!(arrival2, 2_000 + 1_000);
    }

    #[test]
    fn every_nth_drop_deterministic() {
        let cfg = LinkConfig { drops: DropPolicy::EveryNth { n: 3, start: 2 }, ..Default::default() };
        let mut l = Link::new(cfg);
        let results: Vec<bool> =
            (0..7).map(|_| l.transmit(0, 100, true).is_some()).collect();
        // Packets 2 and 5 dropped (1-based).
        assert_eq!(results, vec![true, false, true, true, false, true, true]);
        assert_eq!(l.dropped(), 2);
        assert_eq!(l.dropped_loss(), 2, "all drops were injected");
        assert_eq!(l.dropped_queue(), 0);
    }

    #[test]
    fn random_drop_rate_close_to_p() {
        let cfg = LinkConfig {
            drops: DropPolicy::Random { p: 0.1, seed: 42 },
            queue_pkts: 1_000_000,
            ..Default::default()
        };
        let mut l = Link::new(cfg);
        for _ in 0..10_000 {
            let _ = l.transmit(u64::MAX / 2, 100, true);
        }
        let rate = l.dropped() as f64 / 10_000.0;
        assert!((0.08..0.12).contains(&rate), "rate {rate}");
    }

    #[test]
    fn queue_overflow_drops_counted_separately() {
        let cfg = LinkConfig {
            bandwidth_gbps: 1.0,
            delay_ns: 0,
            queue_pkts: 2,
            ..LinkConfig::default()
        };
        let mut l = Link::new(cfg);
        let mut ok = 0;
        for _ in 0..10 {
            if l.transmit(0, 1538, true).is_some() {
                ok += 1;
            }
        }
        assert!(ok <= 4, "queue bounded, accepted {ok}");
        assert!(l.dropped() > 0);
        assert_eq!(l.dropped(), l.dropped_queue(), "overflow, not loss");
        assert_eq!(l.dropped_loss(), 0);
    }

    #[test]
    fn acks_bypass_drop_policy() {
        let cfg = LinkConfig { drops: DropPolicy::EveryNth { n: 1, start: 1 }, ..Default::default() };
        let mut l = Link::new(cfg);
        assert!(l.transmit(0, 78, false).is_some(), "ACK survives 100% data loss");
        assert!(l.transmit(0, 100, true).is_none());
    }

    #[test]
    fn acks_bypass_impairments() {
        let cfg = LinkConfig {
            impair: Impairments { loss_p: 1.0, seed: 1, ..Impairments::none() },
            ..LinkConfig::default()
        };
        let mut l = Link::new(cfg);
        assert!(l.transmit(0, 78, false).is_some(), "ACK survives 100% impair loss");
        assert!(l.transmit(0, 100, true).is_none());
        assert_eq!(l.dropped_loss(), 1);
    }

    #[test]
    fn duplication_yields_trailing_copy() {
        let cfg = LinkConfig {
            delay_ns: 1_000,
            impair: Impairments { dup_p: 1.0, seed: 2, ..Impairments::none() },
            ..LinkConfig::default()
        };
        let mut l = Link::new(cfg);
        let o = l.offer(0, 1250, true);
        let first = o.arrival.unwrap();
        let dup = o.dup_arrival.unwrap();
        assert!(dup > first, "duplicate trails the original");
        assert_eq!(l.duplicated(), 1);
        // The legacy entry point still reports the primary arrival.
        assert!(l.transmit(0, 1250, true).is_some());
    }

    #[test]
    fn reordering_displaces_within_bound() {
        let cfg = LinkConfig {
            bandwidth_gbps: 10.0,
            delay_ns: 1_000,
            queue_pkts: 1_000,
            impair: Impairments {
                reorder_p: 1.0,
                reorder_depth: 3,
                seed: 3,
                ..Impairments::none()
            },
            ..LinkConfig::default()
        };
        let mut l = Link::new(cfg);
        let base = Link::new(LinkConfig {
            bandwidth_gbps: 10.0,
            delay_ns: 1_000,
            queue_pkts: 1_000,
            ..LinkConfig::default()
        });
        let mtu_ns = base.serialize_ns(1538);
        for i in 0..100u64 {
            let now = i * 10_000;
            let held = l.offer(now, 100, true).arrival.unwrap();
            let clean = now + l.serialize_ns(100) + 1_000;
            let extra = held - clean;
            assert!(extra >= mtu_ns && extra <= 3 * mtu_ns, "displacement {extra}");
        }
        assert_eq!(l.reordered(), 100);
    }

    #[test]
    fn jitter_bounded_and_deterministic() {
        let cfg = LinkConfig {
            delay_ns: 1_000,
            impair: Impairments { jitter_ns: 500, seed: 4, ..Impairments::none() },
            ..LinkConfig::default()
        };
        let mut a = Link::new(cfg);
        let mut b = Link::new(cfg);
        for i in 0..1_000u64 {
            let now = i * 100_000;
            let aa = a.offer(now, 100, true).arrival.unwrap();
            let bb = b.offer(now, 100, true).arrival.unwrap();
            assert_eq!(aa, bb, "same seed, same arrivals");
            let clean = now + a.serialize_ns(100) + 1_000;
            assert!((0..500).contains(&(aa - clean)), "jitter {}", aa - clean);
        }
    }
}
