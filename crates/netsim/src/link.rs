//! The simulated link: serialization, propagation, queueing, loss.

use f4t_sim::SimRng;

/// How the link loses packets (applied to data packets only, matching the
/// paper's "inject occasional packet drops").
#[derive(Debug, Clone, Copy)]
pub enum DropPolicy {
    /// Lossless.
    None,
    /// Drop every `n`-th data packet, starting with packet `start`
    /// (deterministic — good for trace comparison).
    EveryNth {
        /// Period in packets.
        n: u64,
        /// Index (1-based) of the first dropped packet.
        start: u64,
    },
    /// Bernoulli loss with probability `p` (seeded).
    Random {
        /// Per-packet drop probability.
        p: f64,
        /// RNG seed.
        seed: u64,
    },
}

/// Link parameters.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// Bottleneck bandwidth in Gbps.
    pub bandwidth_gbps: f64,
    /// One-way propagation delay in nanoseconds.
    pub delay_ns: u64,
    /// Drop-tail queue capacity in packets.
    pub queue_pkts: usize,
    /// Loss injection.
    pub drops: DropPolicy,
}

impl Default for LinkConfig {
    fn default() -> LinkConfig {
        LinkConfig {
            bandwidth_gbps: 10.0,
            delay_ns: 50_000, // 50 µs one way
            queue_pkts: 100,
            drops: DropPolicy::None,
        }
    }
}

/// One direction of the link.
#[derive(Debug)]
pub struct Link {
    config: LinkConfig,
    /// Time the transmitter becomes free.
    busy_until_ns: u64,
    data_pkts: u64,
    dropped: u64,
    rng: Option<SimRng>,
}

impl Link {
    /// Creates a link direction.
    pub fn new(config: LinkConfig) -> Link {
        let rng = match config.drops {
            DropPolicy::Random { seed, .. } => Some(SimRng::new(seed)),
            _ => None,
        };
        Link { config, busy_until_ns: 0, data_pkts: 0, dropped: 0, rng }
    }

    fn serialize_ns(&self, wire_bytes: u64) -> u64 {
        ((wire_bytes * 8) as f64 / self.config.bandwidth_gbps) as u64
    }

    /// Offers a packet at `now`; returns its arrival time at the far end,
    /// or `None` if it was dropped (queue overflow or injected loss).
    /// `is_data` selects whether the drop policy applies.
    pub fn transmit(&mut self, now_ns: u64, wire_bytes: u64, is_data: bool) -> Option<u64> {
        if is_data {
            self.data_pkts += 1;
            let injected = match self.config.drops {
                DropPolicy::None => false,
                DropPolicy::EveryNth { n, start } => {
                    self.data_pkts >= start && (self.data_pkts - start).is_multiple_of(n)
                }
                DropPolicy::Random { p, .. } => {
                    self.rng.as_mut().map(|r| r.chance(p)).unwrap_or(false)
                }
            };
            if injected {
                self.dropped += 1;
                return None;
            }
        }
        // Drop-tail queue: bound the backlog in serialization time.
        let queue_cap_ns =
            self.serialize_ns(1538) * self.config.queue_pkts as u64;
        if self.busy_until_ns.saturating_sub(now_ns) > queue_cap_ns {
            self.dropped += 1;
            return None;
        }
        let start = self.busy_until_ns.max(now_ns);
        self.busy_until_ns = start + self.serialize_ns(wire_bytes);
        Some(self.busy_until_ns + self.config.delay_ns)
    }

    /// Packets dropped so far (all causes).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Data packets offered so far.
    pub fn data_pkts(&self) -> u64 {
        self.data_pkts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_and_delay() {
        let mut l = Link::new(LinkConfig {
            bandwidth_gbps: 10.0,
            delay_ns: 1_000,
            queue_pkts: 10,
            drops: DropPolicy::None,
        });
        // 1250 bytes at 10 Gbps = 1 µs serialization.
        let arrival = l.transmit(0, 1250, true).unwrap();
        assert_eq!(arrival, 1_000 + 1_000);
        // Second packet queues behind the first.
        let arrival2 = l.transmit(0, 1250, true).unwrap();
        assert_eq!(arrival2, 2_000 + 1_000);
    }

    #[test]
    fn every_nth_drop_deterministic() {
        let cfg = LinkConfig { drops: DropPolicy::EveryNth { n: 3, start: 2 }, ..Default::default() };
        let mut l = Link::new(cfg);
        let results: Vec<bool> =
            (0..7).map(|_| l.transmit(0, 100, true).is_some()).collect();
        // Packets 2 and 5 dropped (1-based).
        assert_eq!(results, vec![true, false, true, true, false, true, true]);
        assert_eq!(l.dropped(), 2);
    }

    #[test]
    fn random_drop_rate_close_to_p() {
        let cfg = LinkConfig {
            drops: DropPolicy::Random { p: 0.1, seed: 42 },
            queue_pkts: 1_000_000,
            ..Default::default()
        };
        let mut l = Link::new(cfg);
        for _ in 0..10_000 {
            let _ = l.transmit(u64::MAX / 2, 100, true);
        }
        let rate = l.dropped() as f64 / 10_000.0;
        assert!((0.08..0.12).contains(&rate), "rate {rate}");
    }

    #[test]
    fn queue_overflow_drops() {
        let cfg = LinkConfig {
            bandwidth_gbps: 1.0,
            delay_ns: 0,
            queue_pkts: 2,
            drops: DropPolicy::None,
        };
        let mut l = Link::new(cfg);
        let mut ok = 0;
        for _ in 0..10 {
            if l.transmit(0, 1538, true).is_some() {
                ok += 1;
            }
        }
        assert!(ok <= 4, "queue bounded, accepted {ok}");
        assert!(l.dropped() > 0);
    }

    #[test]
    fn acks_bypass_drop_policy() {
        let cfg = LinkConfig { drops: DropPolicy::EveryNth { n: 1, start: 1 }, ..Default::default() };
        let mut l = Link::new(cfg);
        assert!(l.transmit(0, 78, false).is_some(), "ACK survives 100% data loss");
        assert!(l.transmit(0, 100, true).is_none());
    }
}
