//! Multi-flow reference simulation: N senders sharing one bottleneck.
//!
//! Extends the single-flow Fig. 14 simulator to competing flows so the
//! reference side can also answer fairness questions (AIMD convergence,
//! Jain index) independently of the engine implementation.

use crate::endpoint::{RefReceiver, RefSender, SendOrder};
use crate::link::{Link, LinkConfig};
use crate::refcc::RefAlgo;
use f4t_sim::EventQueue;

/// Results of a multi-flow run.
#[derive(Debug, Clone)]
pub struct MultiFlowResult {
    /// Bytes delivered in order, per flow.
    pub delivered: Vec<u64>,
    /// Retransmissions, per flow.
    pub retransmissions: Vec<u64>,
    /// Packets dropped at the bottleneck.
    pub drops: u64,
}

impl MultiFlowResult {
    /// Jain's fairness index over per-flow delivered bytes (1.0 = equal).
    pub fn jain_index(&self) -> f64 {
        let n = self.delivered.len() as f64;
        let sum: f64 = self.delivered.iter().map(|&d| d as f64).sum();
        let sum_sq: f64 = self.delivered.iter().map(|&d| (d as f64).powi(2)).sum();
        if sum_sq == 0.0 {
            return 0.0;
        }
        sum * sum / (n * sum_sq)
    }

    /// Aggregate goodput in Gbps over `duration_ns`.
    pub fn total_goodput_gbps(&self, duration_ns: u64) -> f64 {
        f4t_sim::gbps(self.delivered.iter().sum(), duration_ns)
    }
}

#[derive(Debug)]
enum Event {
    Data { flow: usize, seq: u64, len: u32, sent_ns: u64 },
    Ack { flow: usize, ack: u64, echo_ns: u64 },
    Rto { flow: usize, armed_una: u64 },
}

/// Runs `flows` bulk senders of `algo` over a shared bottleneck for
/// `duration_ns`, with per-flow receivers and a common drop-tail queue.
pub fn run_multiflow(
    algo: RefAlgo,
    flows: usize,
    link: LinkConfig,
    duration_ns: u64,
) -> MultiFlowResult {
    assert!(flows > 0, "need at least one flow");
    let mss = 1460u32;
    let mut senders: Vec<RefSender> =
        (0..flows).map(|_| RefSender::new(algo, mss, u64::MAX)).collect();
    let mut receivers: Vec<RefReceiver> = (0..flows).map(|_| RefReceiver::new()).collect();
    let mut data_link = Link::new(link);
    let mut ack_link = Link::new(LinkConfig { drops: crate::DropPolicy::None, ..link });
    let mut q: EventQueue<Event> = EventQueue::new();

    let wire = |len: u32| u64::from(len) + 78;
    // Stagger starts slightly so flows do not move in lockstep.
    for f in 0..flows {
        q.schedule((f as u64) * 10_000 + 1, Event::Rto { flow: f, armed_una: u64::MAX });
    }

    // Helper closure pattern is awkward with borrows; use a macro-ish fn.
    fn pump(
        f: usize,
        now: u64,
        sender: &mut RefSender,
        link: &mut Link,
        q: &mut EventQueue<Event>,
    ) {
        while let Some(SendOrder { seq, len, .. }) = sender.next_send() {
            if let Some(at) = link.transmit(now, u64::from(len) + 78, true) {
                q.schedule(at, Event::Data { flow: f, seq, len, sent_ns: now });
            }
        }
        let rto = (sender.rto() * 1e9) as u64;
        q.schedule(now + rto, Event::Rto { flow: f, armed_una: sender.snd_una() });
    }

    while let Some((now, ev)) = q.pop() {
        if now > duration_ns {
            break;
        }
        match ev {
            Event::Data { flow, seq, len, sent_ns } => {
                let ack = receivers[flow].on_data(seq, len);
                if let Some(at) = ack_link.transmit(now, wire(0), false) {
                    q.schedule(at, Event::Ack { flow, ack, echo_ns: sent_ns });
                }
            }
            Event::Ack { flow, ack, echo_ns } => {
                let rtt = (now > echo_ns && echo_ns > 0).then(|| (now - echo_ns) as f64 / 1e9);
                let now_s = now as f64 / 1e9;
                if let Some(rtx) = senders[flow].on_ack(ack, rtt, now_s) {
                    if let Some(at) = data_link.transmit(now, wire(rtx.len), true) {
                        q.schedule(
                            at,
                            Event::Data { flow, seq: rtx.seq, len: rtx.len, sent_ns: 0 },
                        );
                    }
                }
                pump(flow, now, &mut senders[flow], &mut data_link, &mut q);
            }
            Event::Rto { flow, armed_una } => {
                let first_kick = armed_una == u64::MAX;
                if first_kick {
                    pump(flow, now, &mut senders[flow], &mut data_link, &mut q);
                } else if senders[flow].snd_una() == armed_una && senders[flow].flight() > 0 {
                    if let Some(rtx) = senders[flow].on_timeout() {
                        if let Some(at) = data_link.transmit(now, wire(rtx.len), true) {
                            q.schedule(
                                at,
                                Event::Data { flow, seq: rtx.seq, len: rtx.len, sent_ns: 0 },
                            );
                        }
                    }
                    let rto = (senders[flow].rto() * 1e9) as u64;
                    q.schedule(now + rto, Event::Rto { flow, armed_una: senders[flow].snd_una() });
                }
            }
        }
    }

    MultiFlowResult {
        delivered: receivers.iter().map(|r| r.rcv_nxt()).collect(),
        retransmissions: senders.iter().map(|s| s.retransmissions()).collect(),
        drops: data_link.dropped(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DropPolicy;

    fn bottleneck() -> LinkConfig {
        LinkConfig {
            bandwidth_gbps: 5.0,
            delay_ns: 50_000,
            queue_pkts: 60,
            drops: DropPolicy::None,
            ..LinkConfig::default()
        }
    }

    #[test]
    fn two_flows_split_fairly() {
        let r = run_multiflow(RefAlgo::NewReno, 2, bottleneck(), 500_000_000);
        assert!(r.jain_index() > 0.85, "jain {:.3} over {:?}", r.jain_index(), r.delivered);
        let gbps = r.total_goodput_gbps(500_000_000);
        assert!(gbps > 2.5, "utilization {gbps:.2} Gbps");
        assert!(r.drops > 0, "queue overflow provided the loss signal");
    }

    #[test]
    fn eight_flows_split_fairly() {
        let r = run_multiflow(RefAlgo::NewReno, 8, bottleneck(), 500_000_000);
        assert!(r.jain_index() > 0.8, "jain {:.3} over {:?}", r.jain_index(), r.delivered);
    }

    #[test]
    fn cubic_flows_share_too() {
        let r = run_multiflow(RefAlgo::Cubic, 4, bottleneck(), 500_000_000);
        assert!(r.jain_index() > 0.75, "jain {:.3} over {:?}", r.jain_index(), r.delivered);
        assert!(r.total_goodput_gbps(500_000_000) > 2.5);
    }

    #[test]
    fn single_flow_degenerate_case() {
        let r = run_multiflow(RefAlgo::NewReno, 1, bottleneck(), 200_000_000);
        assert!((r.jain_index() - 1.0).abs() < 1e-9);
        assert!(r.delivered[0] > 0);
    }
}
