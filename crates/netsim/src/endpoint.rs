//! Reference TCP endpoints (NS3-style sender and receiver).
//!
//! The sender runs [`crate::RefCc`] with textbook loss detection (three
//! duplicate ACKs → fast retransmit; RTO → go-back-N); the receiver
//! delivers cumulative ACKs over a simple out-of-order range buffer.
//! Sequence numbers are unwrapped `u64` byte offsets — another deliberate
//! structural difference from the engine's 32-bit wrapping arithmetic.

use crate::refcc::{RefAlgo, RefCc};
use std::collections::BTreeMap;

/// What the sender wants transmitted after an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendOrder {
    /// First byte offset.
    pub seq: u64,
    /// Payload length.
    pub len: u32,
    /// True when this is a retransmission.
    pub retransmit: bool,
}

/// The reference sender.
#[derive(Debug)]
pub struct RefSender {
    /// Congestion control state (public so traces can sample `cwnd`).
    pub cc: RefCc,
    mss: u32,
    snd_una: u64,
    snd_nxt: u64,
    total: u64,
    dup_acks: u32,
    in_recovery: bool,
    recover: u64,
    /// Smoothed RTT (s); seeded at 100 ms like NS3's initial RTO.
    srtt: f64,
    retransmissions: u64,
}

impl RefSender {
    /// Creates a sender with `total` bytes to transfer (`u64::MAX` for an
    /// unbounded bulk flow).
    pub fn new(algo: RefAlgo, mss: u32, total: u64) -> RefSender {
        let mut cc = RefCc::new(algo);
        // Initial ssthresh bounded by the 512 KB receive buffer, mirroring
        // the engine-side TCB initialization (slow start cannot usefully
        // overshoot the flow-control cap).
        cc.ssthresh = (512.0 * 1024.0) / f64::from(mss);
        RefSender {
            cc,
            mss,
            snd_una: 0,
            snd_nxt: 0,
            total,
            dup_acks: 0,
            in_recovery: false,
            recover: 0,
            srtt: 0.1,
            retransmissions: 0,
        }
    }

    /// Bytes in flight.
    pub fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Cumulative ACK pointer.
    pub fn snd_una(&self) -> u64 {
        self.snd_una
    }

    /// Effective window in bytes: congestion window capped by the peer's
    /// 512 KB receive buffer (the evaluation's flow-control limit, §5).
    pub fn window_bytes(&self) -> u64 {
        ((self.cc.cwnd * f64::from(self.mss)) as u64).min(512 * 1024)
    }

    /// Current RTO in seconds.
    pub fn rto(&self) -> f64 {
        (2.0 * self.srtt).max(0.2)
    }

    /// Retransmissions performed.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Whether the transfer is complete.
    pub fn done(&self) -> bool {
        self.snd_una >= self.total
    }

    /// Next new-data segment allowed by the window, if any.
    pub fn next_send(&mut self) -> Option<SendOrder> {
        if self.snd_nxt >= self.total || self.flight() >= self.window_bytes() {
            return None;
        }
        let len = (self.total - self.snd_nxt).min(u64::from(self.mss)) as u32;
        let order = SendOrder { seq: self.snd_nxt, len, retransmit: false };
        self.snd_nxt += u64::from(len);
        Some(order)
    }

    /// Processes a cumulative ACK; returns a retransmission order when
    /// loss recovery demands one.
    pub fn on_ack(&mut self, ack: u64, rtt: Option<f64>, now: f64) -> Option<SendOrder> {
        if ack > self.snd_una {
            let acked = ack - self.snd_una;
            if let Some(r) = rtt {
                self.srtt = 0.875 * self.srtt + 0.125 * r;
            }
            self.snd_una = ack;
            // A late ACK can cover data sent before a go-back-N rewind.
            self.snd_nxt = self.snd_nxt.max(ack);
            if self.in_recovery {
                if ack >= self.recover {
                    self.in_recovery = false;
                    self.dup_acks = 0;
                    self.cc.on_recovery_exit();
                } else {
                    // Partial ACK: retransmit the next hole.
                    self.retransmissions += 1;
                    return Some(SendOrder {
                        seq: self.snd_una,
                        len: self.mss,
                        retransmit: true,
                    });
                }
            } else {
                self.dup_acks = 0;
                self.cc.on_ack(acked as f64 / f64::from(self.mss), rtt, now);
            }
            None
        } else if self.flight() > 0 {
            self.dup_acks += 1;
            if self.dup_acks == 3 && !self.in_recovery {
                self.in_recovery = true;
                self.recover = self.snd_nxt;
                self.cc.on_loss(now);
                self.retransmissions += 1;
                return Some(SendOrder { seq: self.snd_una, len: self.mss, retransmit: true });
            }
            if self.in_recovery && self.dup_acks > 3 {
                self.cc.cwnd += 1.0; // window inflation
            }
            None
        } else {
            None
        }
    }

    /// Retransmission timeout: collapse and go back N.
    pub fn on_timeout(&mut self) -> Option<SendOrder> {
        if self.flight() == 0 {
            return None;
        }
        self.cc.on_timeout();
        self.in_recovery = false;
        self.dup_acks = 0;
        self.snd_nxt = self.snd_una + u64::from(self.mss.min((self.total - self.snd_una) as u32));
        self.retransmissions += 1;
        Some(SendOrder {
            seq: self.snd_una,
            len: self.mss.min((self.total - self.snd_una) as u32),
            retransmit: true,
        })
    }
}

/// The reference receiver: cumulative ACK over an out-of-order buffer.
#[derive(Debug, Default)]
pub struct RefReceiver {
    rcv_nxt: u64,
    /// Out-of-order ranges: start → end.
    ooo: BTreeMap<u64, u64>,
}

impl RefReceiver {
    /// Creates a receiver expecting byte 0.
    pub fn new() -> RefReceiver {
        RefReceiver::default()
    }

    /// The in-order pointer.
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Accepts a data segment and returns the cumulative ACK to send.
    pub fn on_data(&mut self, seq: u64, len: u32) -> u64 {
        let end = seq + u64::from(len);
        if end <= self.rcv_nxt {
            return self.rcv_nxt; // duplicate
        }
        if seq <= self.rcv_nxt {
            self.rcv_nxt = end;
        } else {
            // Merge into the OOO map.
            let e = self.ooo.entry(seq).or_insert(end);
            if *e < end {
                *e = end;
            }
        }
        // Absorb newly contiguous ranges.
        while let Some((&s, &e)) = self.ooo.first_key_value() {
            if s <= self.rcv_nxt {
                self.ooo.pop_first();
                self.rcv_nxt = self.rcv_nxt.max(e);
            } else {
                break;
            }
        }
        self.rcv_nxt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sender_respects_window() {
        let mut s = RefSender::new(RefAlgo::NewReno, 1000, u64::MAX);
        let mut sent = 0;
        while s.next_send().is_some() {
            sent += 1;
        }
        assert_eq!(sent, 10, "initial window = 10 segments");
        // An ACK opens the window again.
        s.on_ack(1000, Some(0.01), 0.0);
        assert!(s.next_send().is_some());
    }

    #[test]
    fn three_dup_acks_fast_retransmit() {
        let mut s = RefSender::new(RefAlgo::NewReno, 1000, u64::MAX);
        while s.next_send().is_some() {}
        assert!(s.on_ack(0, None, 0.0).is_none());
        assert!(s.on_ack(0, None, 0.0).is_none());
        let rtx = s.on_ack(0, None, 0.0).expect("3rd dup triggers");
        assert_eq!(rtx.seq, 0);
        assert!(rtx.retransmit);
        assert_eq!(s.retransmissions(), 1);
    }

    #[test]
    fn full_ack_exits_recovery() {
        let mut s = RefSender::new(RefAlgo::NewReno, 1000, u64::MAX);
        while s.next_send().is_some() {}
        for _ in 0..3 {
            s.on_ack(0, None, 0.0);
        }
        let recover_at = s.snd_nxt;
        assert!(s.on_ack(recover_at, None, 0.1).is_none(), "full ACK, no retransmit");
        assert_eq!(s.snd_una(), recover_at);
        assert!((s.cc.cwnd - s.cc.ssthresh).abs() < 1e-9, "deflated");
    }

    #[test]
    fn timeout_goes_back_n() {
        let mut s = RefSender::new(RefAlgo::NewReno, 1000, u64::MAX);
        while s.next_send().is_some() {}
        let rtx = s.on_timeout().expect("flight > 0");
        assert_eq!(rtx.seq, 0);
        assert_eq!(s.cc.cwnd, 1.0);
        assert_eq!(s.flight(), 1000);
    }

    #[test]
    fn finite_transfer_completes() {
        let mut s = RefSender::new(RefAlgo::NewReno, 1000, 2_500);
        let mut orders = Vec::new();
        while let Some(o) = s.next_send() {
            orders.push(o);
        }
        assert_eq!(orders.len(), 3);
        assert_eq!(orders[2].len, 500, "tail segment is short");
        s.on_ack(2_500, Some(0.01), 0.0);
        assert!(s.done());
    }

    #[test]
    fn receiver_cumulative_and_ooo() {
        let mut r = RefReceiver::new();
        assert_eq!(r.on_data(0, 100), 100);
        assert_eq!(r.on_data(200, 100), 100, "gap: pointer held");
        assert_eq!(r.on_data(100, 100), 300, "gap filled: both delivered");
        assert_eq!(r.on_data(0, 100), 300, "duplicate re-ACKed");
    }

    #[test]
    fn receiver_overlapping_ranges() {
        let mut r = RefReceiver::new();
        r.on_data(100, 100);
        r.on_data(150, 200); // overlaps and extends
        assert_eq!(r.on_data(0, 100), 350);
    }
}
