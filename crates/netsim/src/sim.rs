//! The end-to-end reference simulation (sender → link → receiver → link
//! → sender), producing the Fig. 14 congestion-window traces.

use crate::endpoint::{RefReceiver, RefSender, SendOrder};
use crate::link::{Link, LinkConfig};
use crate::refcc::RefAlgo;
use f4t_sim::EventQueue;

/// One point of a congestion-window trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CwndSample {
    /// Simulation time in nanoseconds.
    pub t_ns: u64,
    /// Congestion window in segments.
    pub cwnd_segments: f64,
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimulationConfig {
    /// Congestion-control algorithm.
    pub algo: RefAlgo,
    /// Link in the data direction (ACK direction is lossless, same
    /// bandwidth/delay).
    pub link: LinkConfig,
    /// Segment size.
    pub mss: u32,
    /// Duration in nanoseconds.
    pub duration_ns: u64,
    /// Sampling interval for the cwnd trace.
    pub sample_ns: u64,
}

impl Default for SimulationConfig {
    fn default() -> SimulationConfig {
        SimulationConfig {
            algo: RefAlgo::NewReno,
            link: LinkConfig::default(),
            mss: 1460,
            duration_ns: 2_000_000_000,
            sample_ns: 10_000_000,
        }
    }
}

/// Results of a run.
#[derive(Debug, Clone)]
pub struct TraceResult {
    /// Sampled congestion window over time.
    pub samples: Vec<CwndSample>,
    /// Bytes delivered in order at the receiver.
    pub delivered: u64,
    /// Retransmissions performed.
    pub retransmissions: u64,
    /// Data packets dropped by the link.
    pub drops: u64,
}

impl TraceResult {
    /// Mean cwnd in segments over the trace.
    pub fn mean_cwnd(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.cwnd_segments).sum::<f64>() / self.samples.len() as f64
    }

    /// Goodput in Gbps over the run duration.
    pub fn goodput_gbps(&self, duration_ns: u64) -> f64 {
        f4t_sim::gbps(self.delivered, duration_ns)
    }
}

#[derive(Debug)]
enum Event {
    /// A data segment arrives at the receiver.
    Data { seq: u64, len: u32, sent_ns: u64 },
    /// An ACK arrives at the sender.
    Ack { ack: u64, echo_ns: u64 },
    /// Retransmission-timeout check.
    Rto { armed_una: u64 },
    /// Trace sampling tick.
    Sample,
}

/// The simulation driver.
#[derive(Debug)]
pub struct Simulation {
    config: SimulationConfig,
}

impl Simulation {
    /// Creates a simulation.
    pub fn new(config: SimulationConfig) -> Simulation {
        Simulation { config }
    }

    /// Runs a single bulk flow for the configured duration and returns
    /// the congestion-window trace.
    pub fn run(&self) -> TraceResult {
        let cfg = self.config;
        let mut sender = RefSender::new(cfg.algo, cfg.mss, u64::MAX);
        let mut receiver = RefReceiver::new();
        let mut data_link = Link::new(cfg.link);
        let mut ack_link = Link::new(LinkConfig { drops: crate::DropPolicy::None, ..cfg.link });
        let mut q: EventQueue<Event> = EventQueue::new();
        let mut samples = Vec::new();

        let wire = |len: u32| u64::from(len) + 78;

        // A data send through the impairment-aware entry point: the
        // primary and any injected duplicate both become arrival events.
        let send_data =
            |link: &mut Link, q: &mut EventQueue<Event>, now: u64, seq: u64, len: u32, sent: u64| {
                let o = link.offer(now, wire(len), true);
                if let Some(at) = o.arrival {
                    q.schedule(at, Event::Data { seq, len, sent_ns: sent });
                }
                if let Some(at) = o.dup_arrival {
                    q.schedule(at, Event::Data { seq, len, sent_ns: sent });
                }
            };

        // Prime: fill the initial window and start sampling.
        let pump =
            |sender: &mut RefSender, link: &mut Link, q: &mut EventQueue<Event>, now: u64| {
                while let Some(SendOrder { seq, len, .. }) = sender.next_send() {
                    send_data(link, q, now, seq, len, now);
                }
                let rto_ns = (sender.rto() * 1e9) as u64;
                q.schedule(now + rto_ns, Event::Rto { armed_una: sender.snd_una() });
            };
        pump(&mut sender, &mut data_link, &mut q, 0);
        q.schedule(cfg.sample_ns, Event::Sample);

        while let Some((now, ev)) = q.pop() {
            if now > cfg.duration_ns {
                break;
            }
            match ev {
                Event::Data { seq, len, sent_ns } => {
                    let ack = receiver.on_data(seq, len);
                    if let Some(at) = ack_link.transmit(now, 78, false) {
                        q.schedule(at, Event::Ack { ack, echo_ns: sent_ns });
                    }
                }
                Event::Ack { ack, echo_ns } => {
                    let rtt = (now > echo_ns).then(|| (now - echo_ns) as f64 / 1e9);
                    let now_s = now as f64 / 1e9;
                    if let Some(rtx) = sender.on_ack(ack, rtt, now_s) {
                        send_data(&mut data_link, &mut q, now, rtx.seq, rtx.len, 0);
                    }
                    pump(&mut sender, &mut data_link, &mut q, now);
                }
                Event::Rto { armed_una } => {
                    // Lazy validation: fire only if no progress since armed.
                    if sender.snd_una() == armed_una && sender.flight() > 0 {
                        if let Some(rtx) = sender.on_timeout() {
                            send_data(&mut data_link, &mut q, now, rtx.seq, rtx.len, 0);
                        }
                        let rto_ns = (sender.rto() * 1e9) as u64;
                        q.schedule(now + rto_ns, Event::Rto { armed_una: sender.snd_una() });
                    }
                }
                Event::Sample => {
                    samples.push(CwndSample { t_ns: now, cwnd_segments: sender.cc.cwnd });
                    q.schedule(now + cfg.sample_ns, Event::Sample);
                }
            }
        }

        TraceResult {
            samples,
            delivered: receiver.rcv_nxt(),
            retransmissions: sender.retransmissions(),
            drops: data_link.dropped(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::DropPolicy;

    fn run(algo: RefAlgo, drops: DropPolicy, duration_ms: u64) -> TraceResult {
        Simulation::new(SimulationConfig {
            algo,
            link: LinkConfig { drops, ..LinkConfig::default() },
            duration_ns: duration_ms * 1_000_000,
            sample_ns: 1_000_000,
            ..SimulationConfig::default()
        })
        .run()
    }

    #[test]
    fn lossless_run_delivers_at_line_rate() {
        // Over-buffered link: no policy drops AND no queue overflow.
        let r = Simulation::new(SimulationConfig {
            algo: RefAlgo::NewReno,
            link: LinkConfig { queue_pkts: 10_000, ..LinkConfig::default() },
            duration_ns: 500_000_000,
            sample_ns: 1_000_000,
            ..SimulationConfig::default()
        })
        .run();
        assert_eq!(r.retransmissions, 0);
        assert_eq!(r.drops, 0);
        // 10 Gbps link, 100 µs RTT: should reach multi-Gbps goodput.
        assert!(r.goodput_gbps(500_000_000) > 5.0, "got {:.2}", r.goodput_gbps(500_000_000));
    }

    #[test]
    fn newreno_sawtooth_under_periodic_loss() {
        let r = run(RefAlgo::NewReno, DropPolicy::EveryNth { n: 2000, start: 1500 }, 1000);
        assert!(r.retransmissions > 0, "losses were repaired");
        // A sawtooth: the max cwnd is well above the mean, and the window
        // repeatedly dips (count descents).
        let mut descents = 0;
        for w in r.samples.windows(2) {
            if w[1].cwnd_segments < w[0].cwnd_segments * 0.8 {
                descents += 1;
            }
        }
        assert!(descents >= 2, "saw {descents} multiplicative decreases");
    }

    #[test]
    fn cubic_recovers_faster_than_newreno() {
        let drops = DropPolicy::EveryNth { n: 3000, start: 2000 };
        let reno = run(RefAlgo::NewReno, drops, 1500);
        let cubic = run(RefAlgo::Cubic, drops, 1500);
        assert!(cubic.retransmissions > 0 && reno.retransmissions > 0);
        // CUBIC's concave catch-up yields a higher mean window under the
        // same loss pattern (the classic motivation for CUBIC).
        assert!(
            cubic.mean_cwnd() > reno.mean_cwnd() * 0.9,
            "cubic {:.1} vs reno {:.1}",
            cubic.mean_cwnd(),
            reno.mean_cwnd()
        );
    }

    #[test]
    fn vegas_avoids_losses_on_small_queue() {
        // Delay-based Vegas should stabilize below the queue cliff and
        // suffer far fewer drops than loss-based Reno.
        let link = LinkConfig { queue_pkts: 30, ..LinkConfig::default() };
        let reno = Simulation::new(SimulationConfig {
            algo: RefAlgo::NewReno,
            link,
            duration_ns: 1_000_000_000,
            sample_ns: 1_000_000,
            ..Default::default()
        })
        .run();
        let vegas = Simulation::new(SimulationConfig {
            algo: RefAlgo::Vegas,
            link,
            duration_ns: 1_000_000_000,
            sample_ns: 1_000_000,
            ..Default::default()
        })
        .run();
        assert!(
            vegas.drops < reno.drops / 2 + 1,
            "vegas {} drops vs reno {}",
            vegas.drops,
            reno.drops
        );
    }

    #[test]
    fn burst_loss_profile_recovers_end_to_end() {
        let r = Simulation::new(SimulationConfig {
            algo: RefAlgo::NewReno,
            link: LinkConfig {
                queue_pkts: 10_000,
                impair: crate::Impairments::profile("burst-loss").unwrap(),
                ..LinkConfig::default()
            },
            duration_ns: 500_000_000,
            sample_ns: 1_000_000,
            ..SimulationConfig::default()
        })
        .run();
        assert!(r.drops > 0, "burst loss fired");
        assert!(r.retransmissions > 0, "losses were repaired");
        assert!(r.delivered > 10_000_000, "delivered {}", r.delivered);
    }

    #[test]
    fn duplication_does_not_inflate_delivery() {
        let base = SimulationConfig {
            algo: RefAlgo::NewReno,
            link: LinkConfig { queue_pkts: 10_000, ..LinkConfig::default() },
            duration_ns: 200_000_000,
            sample_ns: 1_000_000,
            ..SimulationConfig::default()
        };
        let clean = Simulation::new(base).run();
        let duped = Simulation::new(SimulationConfig {
            link: LinkConfig {
                impair: crate::Impairments::profile("duplicate").unwrap(),
                ..base.link
            },
            ..base
        })
        .run();
        assert_eq!(duped.drops, 0, "duplication never drops");
        // The receiver's cumulative pointer counts each byte once, so
        // duplicates must not push goodput above the clean run's.
        assert!(
            duped.delivered <= clean.delivered,
            "dup {} vs clean {}",
            duped.delivered,
            clean.delivered
        );
        assert!(duped.delivered > clean.delivered / 2, "duplicates stalled the flow");
    }

    #[test]
    fn reorder_profile_bounded_retransmissions() {
        // Bounded displacement (≤3) sits at the dup-ACK threshold; the
        // retransmit count must stay a tiny fraction of delivered
        // segments (no spurious-retransmit storm).
        let r = Simulation::new(SimulationConfig {
            algo: RefAlgo::NewReno,
            link: LinkConfig {
                queue_pkts: 10_000,
                impair: crate::Impairments::profile("reorder").unwrap(),
                ..LinkConfig::default()
            },
            duration_ns: 500_000_000,
            sample_ns: 1_000_000,
            ..SimulationConfig::default()
        })
        .run();
        assert_eq!(r.drops, 0, "reordering never drops");
        assert!(r.delivered > 10_000_000, "delivered {}", r.delivered);
        let segments = r.delivered / 1460;
        assert!(
            r.retransmissions < segments / 20,
            "retransmit storm: {} rtx for {segments} segments",
            r.retransmissions
        );
    }

    #[test]
    fn trace_sampling_covers_duration() {
        let r = run(RefAlgo::NewReno, DropPolicy::None, 100);
        assert!(r.samples.len() >= 95, "got {} samples", r.samples.len());
        assert!(r.samples.windows(2).all(|w| w[1].t_ns > w[0].t_ns));
    }
}
