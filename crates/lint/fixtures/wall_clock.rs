//! Fixture: wall-clock uses in simulated code (not compiled; scanned by
// use std::time::Instant; -- commented out, must not be flagged
fn flagged() {
    let s = "Instant inside a string literal is fine";
    let t = std::time::Instant::now();
    let _ = s;
    let _ = t;
    let w = std::time::SystemTime::now();
    let _ = w;
}

// f4tlint: allow(wall_clock): fixture demonstrates allow-listing
fn exempt() { let _ = std::time::Instant::now(); }
