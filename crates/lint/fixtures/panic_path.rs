//! Fixture: panics reachable from tick paths (not compiled).

fn hot(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn also_hot(x: Option<u32>) -> u32 {
    x.expect("boom")
}

fn cold() {
    // f4tlint: allow(panic_path): init-time contract, not a tick path (fixture)
    panic!("config error");
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_in_tests_are_fine() {
        None::<u32>.unwrap();
    }
}
