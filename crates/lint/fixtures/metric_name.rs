//! Fixture: FtScope metric-name conventions (not compiled).

fn collect(reg: &mut Registry, prefix: &str) {
    reg.counter(&format!("{prefix}.events_handled"), 1);
    reg.counter(&format!("{prefix}.BadName"), 2);
    reg.gauge(&format!("{prefix}.depth"), 3.0);
    reg.gauge(&format!("{prefix}.depth"), 4.0);
}

fn stages() -> [&'static str; 2] {
    [
        stage_name("rx_ingest"),
        stage_name("Rx-Ingest"),
    ]
}

fn journal_kinds() -> [&'static str; 3] {
    [
        event_name("tcb_migrate_start"),
        event_name("TcbMigrateStart"),
        journal_event("event_routed"),
    ]
}

fn pulse_series() -> [&'static str; 2] {
    [
        series_name("goodput_bytes"),
        series_name("GoodputBytes"),
    ]
}
