// Fixture for the `metrics_catalog` rule: registration literals checked
// against METRICS.md. With the self-test catalog (engine.rx.segments,
// engine.<i>.drops, engine.flight.rx_ingest.cycles,
// engine.journal.kind.tcb_migrate_start,
// engine.pulse.last.goodput_bytes), expected findings: the uncatalogued
// counter "engine.rx.bytes_total", the uncatalogued stage "tx_emit" and
// the uncatalogued pulse series "bogus_series"; the other four
// registrations match.
pub fn register(scope: &mut Scope, i: usize) {
    scope.counter("engine.rx.segments");
    scope.counter("engine.rx.bytes_total");
    scope.gauge(&format!("engine.{i}.drops"));
}

pub fn stages() -> (&'static str, &'static str, &'static str) {
    (
        stage_name("rx_ingest"),
        stage_name("tx_emit"),
        event_name("tcb_migrate_start"),
    )
}

pub fn pulse() -> (&'static str, &'static str) {
    (
        series_name("goodput_bytes"),
        series_name("bogus_series"),
    )
}
