// Fixture for the `panic_reachable` rule: panic-family expressions in
// functions the call graph reaches from a tick entry point. Expected
// findings: the unwrap in pump() and the expect in drain_one(); the
// panic in cold_init() (never called from tick) and the test-module
// unwrap are exempt.
struct Pump {
    q: Vec<u32>,
}

impl Pump {
    fn tick(&mut self) {
        self.pump();
    }

    fn pump(&mut self) {
        let head = self.q.pop().unwrap();
        drain_one(head);
    }
}

fn drain_one(v: u32) {
    let w = checked(v).expect("fixture: always Some");
    let _ = w;
}

fn checked(v: u32) -> Option<u32> {
    v.checked_add(1)
}

fn cold_init() {
    panic!("init-time only; not on the tick path");
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let x: Option<u32> = Some(1);
        x.unwrap();
    }
}
