//! Fixture: raw VecDeque where a Fifo belongs (not compiled).
use std::collections::VecDeque;

struct Queues {
    // f4tlint: allow(raw_queue): bounded by construction (fixture)
    ok: VecDeque<u32>,
    /// An unjustified software queue modelling an on-chip FIFO.
    bad: VecDeque<u64>,
}
