// Fixture for the `shared_mut_across_shards` rule: shared mutable state
// visible to shard workers. Expected findings: the module-level
// `static mut`, the Rc binding in step() and the unsafe block in step()
// (drive() hosts a worker closure — it calls run_rounds — so everything
// it reaches is worker code); the Rc in cold_setup() is unreachable from
// any worker and exempt.
static mut POOL_HITS: u64 = 0;

pub fn drive(runner: &mut Shards) {
    runner.run_rounds(4, |s| step(s));
}

fn step(s: &mut u64) {
    let shared: Rc<u64> = Rc::new(*s);
    *s += *shared;
    unsafe {
        POOL_HITS += 1;
    }
}

fn cold_setup() -> u64 {
    let seed: Rc<u64> = Rc::new(7);
    *seed
}
