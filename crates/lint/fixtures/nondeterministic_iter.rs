// Fixture for the `nondeterministic_iter` rule: hash-order iteration
// in non-test workspace code. Expected findings: lines 12, 15, 19, 22.
use std::collections::{HashMap, HashSet};

struct Lut {
    entries: HashMap<u32, u64>,
    members: HashSet<u32>,
}

impl Lut {
    fn bad_iter(&self) {
        for (k, v) in self.entries.iter() {
            let _ = (k, v);
        }
        for k in self.members.iter() {
            let _ = k;
        }
        let mut local: HashMap<u32, u64> = HashMap::new();
        for v in local.values_mut() {
            *v += 1;
        }
        for k in &self.members {
            let _ = k;
        }
    }

    fn fine(&self) {
        // Order-insensitive folds are not for-loops and stay legal.
        let _sum: u64 = self.entries.values().sum();
        // Non-hash containers iterate freely.
        let v = vec![1, 2, 3];
        for x in &v {
            let _ = x;
        }
        for x in v.iter() {
            let _ = x;
        }
    }

    fn allowed(&self) -> u64 {
        let mut acc = 0;
        // f4tlint: allow(nondeterministic_iter): keys fold into an order-insensitive sum.
        for k in self.members.iter() {
            acc += u64::from(*k);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tests_may_iterate() {
        let mut m = HashMap::new();
        m.insert(1u32, 2u64);
        for (k, v) in m.iter() {
            let _ = (k, v);
        }
    }
}
