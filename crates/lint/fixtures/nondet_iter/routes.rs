// Cross-file fixture (pair with state.rs): this file never mentions
// HashMap — the field type flows through the workspace symbol index.
impl FlowDir {
    pub fn broadcast(&self) {
        for (flow, port) in self.routes.iter() {
            let _ = (flow, port);
        }
    }

    pub fn fine(&self) {
        // Vec fields iterate freely.
        for name in self.names.iter() {
            let _ = name;
        }
    }
}
