// Cross-file fixture (pair with routes.rs): the unordered field type is
// declared here; the offending loop lives in the other file.
use std::collections::HashMap;

pub struct FlowDir {
    pub routes: HashMap<u32, u16>,
    pub names: Vec<String>,
}
