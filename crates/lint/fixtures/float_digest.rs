// Fixture for the `float_in_digest` rule: f32/f64 arithmetic reachable
// from a digest/merge entry point. Expected findings: the f64 cast in
// weight() and the float literal in mix() (both reachable from
// fold_digests); the floats in rate() are unreachable from any digest
// entry and exempt.
pub fn fold_digests(parts: &[u64]) -> u64 {
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for p in parts {
        acc = mix(acc, *p);
    }
    acc
}

fn mix(a: u64, b: u64) -> u64 {
    let bias = 0.5;
    let _ = bias;
    a ^ weight(b)
}

fn weight(x: u64) -> u64 {
    let scaled = x as f64;
    scaled as u64
}

pub fn rate(hits: u64, total: u64) -> u64 {
    let r = hits as f64 / total.max(1) as f64;
    (r * 100.0) as u64
}
