// Fixture for the `stale_allow` rule: allow directives that suppress
// nothing. Expected findings: the allow(panic_path) in fine() (the code
// it excused no longer panics) and the allow(hashmap_iter) (a rule name
// that no longer exists); the load-bearing allow(raw_queue) suppresses a
// real VecDeque finding and is exempt.
use std::collections::VecDeque;

pub struct Q {
    // f4tlint: allow(raw_queue): bounded by the dispatch gate upstream.
    pub depth: VecDeque<u32>,
}

pub fn fine() -> u32 {
    // f4tlint: allow(panic_path): nothing here panics anymore.
    42
}

// f4tlint: allow(hashmap_iter): rule was renamed to nondeterministic_iter.
pub fn also_fine() {}
