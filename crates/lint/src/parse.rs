//! Pass 2 — item-level parsing over the stripped token stream.
//!
//! A deliberately approximate, brace-matching parser that recovers the
//! item structure rustfmt'd Rust exposes line by line: functions (with
//! their enclosing `impl`/`trait` type and body line range), struct
//! fields (with their declared type text), `use` paths, and
//! module-level `static` items. It is not a Rust parser — it is exactly
//! strong enough for a workspace symbol index and an approximate call
//! graph, and it must never panic on weird-but-valid input (unmatched
//! braces in macros, one-line bodies, multi-line `impl` headers).

use crate::lexer::{word_match, SourceFile};

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type name (last path segment), if any.
    pub impl_type: Option<String>,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// 0-based inclusive body line range (opening to closing brace);
    /// `None` for signature-only trait declarations.
    pub body: Option<(usize, usize)>,
}

/// One struct field with its declared type text.
#[derive(Debug, Clone)]
pub struct FieldItem {
    /// Name of the struct declaring the field.
    pub owner: String,
    /// Field name.
    pub name: String,
    /// Declared type, as written (e.g. `HashMap<FlowId, usize>`).
    pub ty: String,
    /// 0-based declaration line.
    pub line: usize,
}

/// One `use` path (first line only for multi-line groups).
#[derive(Debug, Clone)]
pub struct UseItem {
    /// The path text after `use`, up to `;` or end of line.
    pub path: String,
    /// 0-based line.
    pub line: usize,
}

/// One module-level `static` item (the cross-shard escape channel the
/// `shared_mut_across_shards` rule hunts).
#[derive(Debug, Clone)]
pub struct StaticItem {
    /// Whole declaration line, trimmed.
    pub decl: String,
    /// 0-based line.
    pub line: usize,
}

/// Parsed item structure of one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// All functions (including trait default methods and test fns).
    pub fns: Vec<FnItem>,
    /// All struct fields.
    pub fields: Vec<FieldItem>,
    /// All `use` paths.
    pub uses: Vec<UseItem>,
    /// All module-level statics.
    pub statics: Vec<StaticItem>,
}

enum Scope {
    Module,
    Impl(String),
    Struct(String),
    Fn(usize),
    Opaque,
}

enum Pending {
    None,
    Fn { name: String, line: usize },
    Struct(String),
    Impl(String),
    Opaque,
}

/// Last path segment of an `impl` header's subject type:
/// `impl<S: Send> ParallelRunner<S>` → `ParallelRunner`,
/// `impl fmt::Display for Finding` → `Finding`.
fn impl_subject(header: &str) -> String {
    let mut rest = header.trim_start();
    // Strip leading generics `<...>` (balanced).
    if rest.starts_with('<') {
        let mut depth = 0i32;
        let mut cut = rest.len();
        for (i, c) in rest.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = rest[cut..].trim_start();
    }
    // `impl Trait for Type` — the subject is the `for` side.
    if let Some(pos) = rest.find(" for ") {
        rest = rest[pos + 5..].trim_start();
    }
    let rest = rest.trim_start_matches('&').trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let rest = rest.strip_prefix("dyn ").unwrap_or(rest);
    // Cut at generics / whitespace / where clause, keep last `::` segment.
    let end = rest.find(['<', ' ', '\t', '{']).unwrap_or(rest.len());
    let path = &rest[..end];
    path.rsplit("::").next().unwrap_or(path).trim().to_string()
}

/// Identifier starting at `s` (empty if the first char is not an
/// identifier start).
fn leading_ident(s: &str) -> &str {
    let end = s.find(|c: char| !c.is_alphanumeric() && c != '_').unwrap_or(s.len());
    &s[..end]
}

/// Parses the stripped code of `file` into items.
pub fn parse_file(file: &SourceFile) -> ParsedFile {
    let mut out = ParsedFile::default();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut pending = Pending::None;
    // Paren depth inside a pending fn signature (a `;` at depth 0 means
    // a body-less trait declaration).
    let mut sig_parens = 0i32;

    for (i, line) in file.code.iter().enumerate() {
        let item_position = !matches!(scopes.last(), Some(Scope::Fn(_)) | Some(Scope::Opaque));
        if matches!(pending, Pending::None) && item_position {
            let t = line.trim_start();
            if t.starts_with("use ") || t.starts_with("pub use ") {
                let after = &t[t.find("use ").map(|p| p + 4).unwrap_or(0)..];
                let path = after.split(';').next().unwrap_or(after).trim().to_string();
                out.uses.push(UseItem { path, line: i });
            } else if word_match(t, "fn") {
                if let Some(pos) = t.find("fn ") {
                    let name = leading_ident(t[pos + 3..].trim_start()).to_string();
                    if !name.is_empty() {
                        pending = Pending::Fn { name, line: i };
                        sig_parens = 0;
                    }
                }
            } else if word_match(t, "struct")
                && (t.starts_with("struct") || t.starts_with("pub"))
            {
                if let Some(pos) = t.find("struct ") {
                    let name = leading_ident(t[pos + 7..].trim_start()).to_string();
                    // Unit / tuple structs carry no brace-delimited fields.
                    let tuple_or_unit = t.contains(';') && !t.contains('{');
                    if !name.is_empty() && !tuple_or_unit {
                        pending = Pending::Struct(name);
                    }
                }
            } else if word_match(t, "impl") && (t.starts_with("impl") || t.starts_with("pub")) {
                if let Some(pos) = t.find("impl") {
                    pending = Pending::Impl(t[pos + 4..].to_string());
                }
            } else if word_match(t, "trait") && (t.starts_with("trait") || t.starts_with("pub")) {
                if let Some(pos) = t.find("trait ") {
                    let name = leading_ident(t[pos + 6..].trim_start()).to_string();
                    pending = Pending::Impl(name); // trait default methods index like impls
                }
            } else if (word_match(t, "enum") || word_match(t, "union"))
                && (t.starts_with("enum") || t.starts_with("union") || t.starts_with("pub"))
            {
                pending = Pending::Opaque;
            } else if t.starts_with("static ")
                || t.starts_with("pub static ")
                || t.starts_with("pub(crate) static ")
                || t.starts_with("static mut ")
                || t.contains("thread_local!")
            {
                out.statics.push(StaticItem { decl: t.trim_end().to_string(), line: i });
            }
        } else if let Pending::Impl(header) = &mut pending {
            // Multi-line impl header: accumulate until the brace.
            if !line.contains('{') {
                header.push(' ');
                header.push_str(line.trim());
            }
        }

        // Field lines: directly inside a struct body.
        if matches!(pending, Pending::None) {
            if let Some(Scope::Struct(owner)) = scopes.last() {
                let t = line.trim();
                if let Some(colon) = t.find(':') {
                    let head = t[..colon].trim();
                    let name = head
                        .strip_prefix("pub(crate)")
                        .or_else(|| head.strip_prefix("pub(super)"))
                        .or_else(|| head.strip_prefix("pub"))
                        .unwrap_or(head)
                        .trim();
                    if !name.is_empty()
                        && name.chars().all(|c| c.is_alphanumeric() || c == '_')
                        && !name.chars().next().is_some_and(|c| c.is_ascii_digit())
                    {
                        let ty = t[colon + 1..].trim().trim_end_matches(',').trim().to_string();
                        out.fields.push(FieldItem {
                            owner: owner.clone(),
                            name: name.to_string(),
                            ty,
                            line: i,
                        });
                    }
                }
            }
        }

        // Brace/paren tracking; a pending item binds to the next `{` at
        // paren depth 0.
        for c in line.chars() {
            match c {
                '(' => {
                    if matches!(pending, Pending::Fn { .. }) {
                        sig_parens += 1;
                    }
                }
                ')' => {
                    if matches!(pending, Pending::Fn { .. }) {
                        sig_parens -= 1;
                    }
                }
                // A `;` at paren depth 0 ends a body-less fn declaration
                // (trait method). Other pending kinds (struct/impl headers
                // spanning lines) are left pending — only `{` binds them.
                ';' if sig_parens <= 0 && matches!(pending, Pending::Fn { .. }) => {
                    if let Pending::Fn { name, line } =
                        std::mem::replace(&mut pending, Pending::None)
                    {
                        let impl_type = scopes.iter().rev().find_map(|s| match s {
                            Scope::Impl(t) => Some(t.clone()),
                            _ => None,
                        });
                        out.fns.push(FnItem { name, impl_type, line, body: None });
                    }
                }
                '{' => {
                    match std::mem::replace(&mut pending, Pending::None) {
                        Pending::Fn { name, line } => {
                            if sig_parens > 0 {
                                // `{` inside the signature (const generics);
                                // keep waiting.
                                pending = Pending::Fn { name, line };
                                scopes.push(Scope::Opaque);
                            } else {
                                let impl_type = scopes.iter().rev().find_map(|s| match s {
                                    Scope::Impl(t) => Some(t.clone()),
                                    _ => None,
                                });
                                let id = out.fns.len();
                                out.fns.push(FnItem {
                                    name,
                                    impl_type,
                                    line,
                                    body: Some((i, i)), // end patched on pop
                                });
                                scopes.push(Scope::Fn(id));
                            }
                        }
                        Pending::Struct(name) => scopes.push(Scope::Struct(name)),
                        Pending::Impl(header) => scopes.push(Scope::Impl(impl_subject(&header))),
                        Pending::Opaque => scopes.push(Scope::Opaque),
                        Pending::None => {
                            // `mod x {`, blocks, match arms, struct literals …
                            let t = line.trim_start();
                            if item_position && (t.starts_with("mod ") || t.starts_with("pub mod "))
                            {
                                scopes.push(Scope::Module);
                            } else {
                                scopes.push(Scope::Opaque);
                            }
                        }
                    }
                }
                '}' => {
                    if let Some(Scope::Fn(id)) = scopes.pop() {
                        if let Some((start, _)) = out.fns[id].body {
                            out.fns[id].body = Some((start, i));
                        }
                    }
                }
                _ => {}
            }
        }
    }
    out
}
