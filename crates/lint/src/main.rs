//! `f4tlint` — scan the workspace for design-rule violations.
//!
//! ```text
//! f4tlint [--root <dir>] [--rule <name>]... [--format text|json] [--timings] [--rules]
//! ```
//!
//! `--rule` filters the *output* to the named rule(s); every pass still
//! runs (staleness tracking needs the full picture). `--format json`
//! emits one machine-readable object (findings, per-pass timings, file
//! count) for the CI artifact. `--timings` prints the per-pass table.
//!
//! Exit status: 0 when clean, 1 when violations were found, 2 on usage or
//! I/O errors. Run from anywhere inside the workspace; the root is found
//! by walking up to the first `Cargo.toml` declaring `[workspace]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn find_workspace_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(src) = std::fs::read_to_string(&manifest) {
            if src.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn print_json(report: &f4t_lint::Report) {
    let findings: Vec<String> = report
        .findings
        .iter()
        .map(|f| {
            format!(
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
                json_escape(&f.file),
                f.line,
                f.rule,
                json_escape(&f.message)
            )
        })
        .collect();
    let timings: Vec<String> = report
        .timings
        .iter()
        .map(|(pass, ms)| format!("{{\"pass\":\"{pass}\",\"ms\":{ms:.3}}}"))
        .collect();
    println!(
        "{{\"findings\":[{}],\"files_scanned\":{},\"timings\":[{}]}}",
        findings.join(","),
        report.files_scanned,
        timings.join(",")
    );
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut timings = false;
    let mut rule_filter: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("f4tlint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!("f4tlint: --format takes text or json, got {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--rule" => match args.next() {
                Some(name) => {
                    if !f4t_lint::RULES.iter().any(|(n, _)| *n == name) {
                        eprintln!(
                            "f4tlint: unknown rule {name:?}; known: {}",
                            f4t_lint::RULES
                                .iter()
                                .map(|(n, _)| *n)
                                .collect::<Vec<_>>()
                                .join(", ")
                        );
                        return ExitCode::from(2);
                    }
                    rule_filter.push(name);
                }
                None => {
                    eprintln!("f4tlint: --rule needs a rule name");
                    return ExitCode::from(2);
                }
            },
            "--timings" => timings = true,
            "--rules" => {
                for (name, desc) in f4t_lint::RULES {
                    println!("{name:24} {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: f4tlint [--root <dir>] [--rule <name>]... [--format text|json] \
                     [--timings] [--rules]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("f4tlint: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(cwd) {
                Some(r) => r,
                None => {
                    eprintln!("f4tlint: no workspace Cargo.toml found above the current directory");
                    return ExitCode::from(2);
                }
            }
        }
    };
    let mut report = f4t_lint::scan_workspace_report(&root);
    if !rule_filter.is_empty() {
        report.findings.retain(|f| rule_filter.iter().any(|r| r == f.rule));
    }
    if json {
        print_json(&report);
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        if timings {
            let total: f64 = report.timings.iter().map(|(_, ms)| ms).sum();
            println!("f4tlint: pass timings ({} files):", report.files_scanned);
            for (pass, ms) in &report.timings {
                println!("  {pass:24} {ms:9.2} ms");
            }
            println!("  {:24} {total:9.2} ms", "total");
        }
        if report.findings.is_empty() {
            println!("f4tlint: clean ({} rules)", f4t_lint::RULES.len());
        } else {
            println!("f4tlint: {} violation(s)", report.findings.len());
        }
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
