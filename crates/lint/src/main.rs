//! `f4tlint` — scan the workspace for design-rule violations.
//!
//! ```text
//! f4tlint [--root <dir>] [--rules]
//! ```
//!
//! Exit status: 0 when clean, 1 when violations were found, 2 on usage or
//! I/O errors. Run from anywhere inside the workspace; the root is found
//! by walking up to the first `Cargo.toml` declaring `[workspace]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn find_workspace_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(src) = std::fs::read_to_string(&manifest) {
            if src.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("f4tlint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--rules" => {
                for (name, desc) in f4t_lint::RULES {
                    println!("{name:12} {desc}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: f4tlint [--root <dir>] [--rules]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("f4tlint: unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_workspace_root(cwd) {
                Some(r) => r,
                None => {
                    eprintln!("f4tlint: no workspace Cargo.toml found above the current directory");
                    return ExitCode::from(2);
                }
            }
        }
    };
    let findings = f4t_lint::scan_workspace(&root);
    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("f4tlint: clean ({} rules)", f4t_lint::RULES.len());
        ExitCode::SUCCESS
    } else {
        println!("f4tlint: {} violation(s)", findings.len());
        ExitCode::FAILURE
    }
}
