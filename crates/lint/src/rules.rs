//! Pass 5 — the rules.
//!
//! Per-line rules (`wall_clock`, `raw_queue`, `panic_path`,
//! `metric_name`, `nondeterministic_iter`) consume the shared lexed
//! files directly; the reachability rules (`panic_reachable`,
//! `float_in_digest`, `shared_mut_across_shards`) walk the call graph
//! from semantic entry points; `metrics_catalog` cross-checks
//! registration literals against METRICS.md; `stale_allow` runs last
//! over the directive use-tracking the other rules populated.

use crate::callgraph::CallGraph;
use crate::index::{FnId, SymbolIndex};
use crate::lexer::{trailing_ident, word_match, SourceFile};
use crate::{Finding, Workspace};
use std::collections::{HashMap, HashSet};

/// Whether `rule` is in force for a crate directory named `crate_name`
/// (`"core"`, `"sim"`, …; the facade crate and root tests scan as `"f4t"`).
pub fn rule_applies(rule: &str, crate_name: &str) -> bool {
    match rule {
        // bench measures real elapsed time on purpose (simulated-vs-wall
        // throughput); everything else runs on the cycle counter.
        "wall_clock" => crate_name != "bench",
        "raw_queue" => matches!(crate_name, "core" | "mem"),
        // panic_path is the cheap per-line guard over the whole of
        // crates/core; panic_reachable extends it workspace-wide along
        // the call graph (and therefore skips core to avoid doubling).
        "panic_path" => crate_name == "core",
        _ => true,
    }
}

/// Panic-family expressions that must not execute on a tick path.
pub const PANIC_PATTERNS: &[&str] =
    &[".unwrap()", ".expect(", "panic!(", "unreachable!(", "todo!(", "unimplemented!("];

/// Iterator-producing methods whose order is the hash order.
const HASH_ITER_METHODS: &[&str] =
    &[".iter()", ".iter_mut()", ".keys()", ".values()", ".values_mut()", ".drain()", ".into_iter()"];

fn finding(file: &SourceFile, line: usize, rule: &'static str, message: String) -> Finding {
    Finding { file: file.label.clone(), line: line + 1, rule, message }
}

/// Emits unless an allow directive covers (rule, line); marks the
/// directive used either way it fires.
fn emit(
    file: &mut SourceFile,
    line: usize,
    rule: &'static str,
    message: String,
    out: &mut Vec<Finding>,
) {
    if !file.directives.check(rule, line) {
        let f = finding(file, line, rule, message);
        out.push(f);
    }
}

// ---------------------------------------------------------------------------
// Per-line rules.
// ---------------------------------------------------------------------------

/// `wall_clock`: no `std::time::Instant`/`SystemTime` in simulated code.
pub fn wall_clock(ws: &mut Workspace, out: &mut Vec<Finding>) {
    for file in &mut ws.files {
        if !rule_applies("wall_clock", &file.crate_name) {
            continue;
        }
        for i in 0..file.code.len() {
            let code = &file.code[i];
            if word_match(code, "Instant") || word_match(code, "SystemTime") {
                emit(
                    file,
                    i,
                    "wall_clock",
                    "wall-clock time in simulated code; use the cycle counter / now_ns()".into(),
                    out,
                );
            }
        }
    }
}

/// `raw_queue`: no `VecDeque` fields/locals in the hardware-model crates.
pub fn raw_queue(ws: &mut Workspace, out: &mut Vec<Finding>) {
    for file in &mut ws.files {
        if !rule_applies("raw_queue", &file.crate_name) {
            continue;
        }
        for i in 0..file.code.len() {
            if file.code[i].contains("VecDeque<") {
                emit(
                    file,
                    i,
                    "raw_queue",
                    "unbounded VecDeque models an on-chip queue; use f4t_sim::Fifo or \
                     justify with // f4tlint: allow(raw_queue): <why bounded>"
                        .into(),
                    out,
                );
            }
        }
    }
}

/// `panic_path`: no panic-family expressions in non-test `crates/core`.
pub fn panic_path(ws: &mut Workspace, out: &mut Vec<Finding>) {
    for file in &mut ws.files {
        if !rule_applies("panic_path", &file.crate_name) {
            continue;
        }
        for i in 0..file.code.len() {
            if file.tests[i] {
                continue;
            }
            for pat in PANIC_PATTERNS {
                if file.code[i].contains(pat) {
                    emit(
                        file,
                        i,
                        "panic_path",
                        format!(
                            "`{}` is reachable from Engine::tick; return/skip instead (or \
                             debug_assert! for dispatch-gate contracts)",
                            pat.trim_start_matches('.')
                        ),
                        out,
                    );
                    break;
                }
            }
        }
    }
}

/// Identifiers this file declares with a `HashMap`/`HashSet` type or
/// constructor: `name: HashMap<..>` fields/params and
/// `let [mut] name = HashMap::new()`-style bindings.
fn hash_container_idents(code: &[String]) -> HashSet<String> {
    let mut names = HashSet::new();
    for line in code {
        for pat in ["HashMap<", "HashSet<", "HashMap::", "HashSet::"] {
            let mut start = 0;
            while let Some(pos) = line[start..].find(pat) {
                let at = start + pos;
                let before = line[..at].trim_end();
                let binding =
                    before.strip_suffix(':').or_else(|| before.strip_suffix('=')).map(str::trim_end);
                if let Some(b) = binding {
                    let ident = trailing_ident(b);
                    if !ident.is_empty() && !ident.starts_with(|c: char| c.is_ascii_digit()) {
                        names.insert(ident);
                    }
                }
                start = at + pat.len();
            }
        }
    }
    names
}

/// How a loop expression was matched to an unordered container.
enum IterSource {
    /// A binding/field declared in the same file.
    Local,
    /// A struct field resolved through the workspace index.
    Field { owner: String, decl_file: String, decl_line: usize },
}

/// Whether the loop expression after `for … in` iterates an unordered
/// container. `locals` are this file's hash-typed idents; `self_fields`
/// maps field names of the enclosing impl type (resolved workspace-wide)
/// to their declaration site.
fn unordered_iter_source(
    expr: &str,
    locals: &HashSet<String>,
    self_fields: &HashMap<String, (String, String, usize)>,
) -> Option<IterSource> {
    let classify = |before: &str, ident: &str| -> Option<IterSource> {
        if locals.contains(ident) {
            return Some(IterSource::Local);
        }
        if before.ends_with("self.") {
            if let Some((owner, decl_file, decl_line)) = self_fields.get(ident) {
                return Some(IterSource::Field {
                    owner: owner.clone(),
                    decl_file: decl_file.clone(),
                    decl_line: *decl_line,
                });
            }
        }
        None
    };
    for method in HASH_ITER_METHODS {
        let mut start = 0;
        while let Some(pos) = expr[start..].find(method) {
            let at = start + pos;
            let ident = trailing_ident(&expr[..at]);
            if !ident.is_empty() {
                let before = &expr[..at - ident.len()];
                if let Some(src) = classify(before, &ident) {
                    return Some(src);
                }
            }
            start = at + method.len();
        }
    }
    let t = expr.trim_start();
    if let Some(r) = t.strip_prefix('&') {
        let r = r.trim_start();
        let r = r.strip_prefix("mut ").unwrap_or(r).trim_start();
        let (before, r) = match r.strip_prefix("self.") {
            Some(rest) => ("self.", rest),
            None => ("", r),
        };
        let ident: String = r.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
        let rest = r[ident.len()..].trim_start();
        if rest.is_empty() || rest.starts_with('{') {
            return classify(before, &ident);
        }
    }
    None
}

/// `nondeterministic_iter`: no for-loops over unordered-container
/// iteration anywhere in the workspace. Declared types flow from struct
/// fields (workspace index) and same-file bindings to their use sites.
pub fn nondeterministic_iter(ws: &mut Workspace, idx: &SymbolIndex, out: &mut Vec<Finding>) {
    // (field name → (owner, decl file, decl line)) per (crate, impl type).
    for fi in 0..ws.files.len() {
        if ws.files[fi].test_file {
            continue;
        }
        let locals = hash_container_idents(&ws.files[fi].code);
        for i in 0..ws.files[fi].code.len() {
            if ws.files[fi].tests[i] || !word_match(&ws.files[fi].code[i], "for") {
                continue;
            }
            // Line-based: the loop expression is everything after the
            // last ` in ` on the `for` line (good enough for rustfmt'd
            // single-line headers; multi-line headers are rare).
            let Some(pos) = ws.files[fi].code[i].rfind(" in ") else { continue };
            // Fields of the enclosing impl type, resolved cross-file
            // within the same crate.
            let impl_type = idx
                .enclosing_fn(fi, i)
                .and_then(|f| idx.fns[f].impl_type.clone());
            let mut self_fields: HashMap<String, (String, String, usize)> = HashMap::new();
            if let Some(ty) = &impl_type {
                for uf in &idx.unordered_fields {
                    if uf.owner == *ty && uf.crate_name == ws.files[fi].crate_name {
                        self_fields.insert(
                            uf.name.clone(),
                            (uf.owner.clone(), ws.files[uf.file].label.clone(), uf.line + 1),
                        );
                    }
                }
            }
            let expr = ws.files[fi].code[i][pos + 4..].to_string();
            if let Some(src) = unordered_iter_source(&expr, &locals, &self_fields) {
                let message = match src {
                    IterSource::Local => "for-loop over HashMap/HashSet iteration order is \
                                          nondeterministic and breaks the golden-digest \
                                          contract; iterate a FlowSlab/FlowSet or \
                                          collect-and-sort (or justify with // f4tlint: \
                                          allow(nondeterministic_iter): <why order-insensitive>)"
                        .to_string(),
                    IterSource::Field { owner, decl_file, decl_line } => format!(
                        "for-loop over `{owner}` field declared HashMap/HashSet at \
                         {decl_file}:{decl_line}; hash order is nondeterministic and breaks \
                         the golden-digest contract — iterate a FlowSlab/FlowSet or \
                         collect-and-sort"
                    ),
                };
                emit(&mut ws.files[fi], i, "nondeterministic_iter", message, out);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Call-graph reachability rules.
// ---------------------------------------------------------------------------

/// Whether the body of `f` mentions `word` (stripped code).
fn body_mentions(files: &[SourceFile], idx: &SymbolIndex, f: FnId, word: &str) -> bool {
    let r = &idx.fns[f];
    let Some((start, end)) = r.body else { return false };
    files[r.file].code[start..=end].iter().any(|l| word_match(l, word))
}

/// Entry points for the tick-path rules: every `tick`/`tick_checked`,
/// every `ParallelRunner` method, and every function that lexically
/// hosts a worker closure (calls `run_rounds`).
fn tick_entries(files: &[SourceFile], idx: &SymbolIndex) -> Vec<FnId> {
    let mut entries = Vec::new();
    for (id, f) in idx.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        if f.name == "tick"
            || f.name == "tick_checked"
            || f.impl_type.as_deref() == Some("ParallelRunner")
            || body_mentions(files, idx, id, "run_rounds")
        {
            entries.push(id);
        }
    }
    entries
}

/// `panic_reachable`: no panic-family expression in any function
/// reachable from a tick/ParallelRunner entry point, workspace-wide.
pub fn panic_reachable(
    ws: &mut Workspace,
    idx: &SymbolIndex,
    graph: &CallGraph,
    out: &mut Vec<Finding>,
) {
    let entries = tick_entries(&ws.files, idx);
    let pred = graph.reachable_from(&entries);
    for (id, f) in idx.fns.iter().enumerate() {
        if pred[id].is_none() || f.is_test {
            continue;
        }
        // crates/core is already guarded line-by-line by panic_path.
        if ws.files[f.file].crate_name == "core" {
            continue;
        }
        let Some((start, end)) = f.body else { continue };
        let path = graph.path_to_entry(idx, &pred, id);
        for i in start..=end.min(ws.files[f.file].code.len() - 1) {
            if ws.files[f.file].tests[i] {
                continue;
            }
            for pat in PANIC_PATTERNS {
                if ws.files[f.file].code[i].contains(pat) {
                    let fi = f.file;
                    emit(
                        &mut ws.files[fi],
                        i,
                        "panic_reachable",
                        format!(
                            "`{}` on a tick-reachable path ({path}); a model that panics \
                             mid-tick cannot report what went wrong — return/skip instead",
                            pat.trim_start_matches('.')
                        ),
                        out,
                    );
                    break;
                }
            }
        }
    }
}

/// Whether a stripped code line performs f32/f64 work: the type names
/// as words, or a float literal (`1.5`, `2.0e9` — not tuple indexing,
/// not ranges).
fn has_float_use(code: &str) -> bool {
    if word_match(code, "f32") || word_match(code, "f64") {
        return true;
    }
    let b = code.as_bytes();
    for (i, &c) in b.iter().enumerate() {
        if c != b'.' {
            continue;
        }
        // digits on both sides of the dot …
        if i == 0 || !b[i - 1].is_ascii_digit() || !b.get(i + 1).is_some_and(u8::is_ascii_digit) {
            continue;
        }
        // … and the integer part is a standalone number, not `x.0.1`
        // tuple chains or an identifier tail like `base64`.
        let mut j = i - 1;
        while j > 0 && (b[j - 1].is_ascii_digit() || b[j - 1] == b'_') {
            j -= 1;
        }
        let before = if j == 0 { None } else { Some(b[j - 1]) };
        let ident_before =
            before.is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b'.');
        if !ident_before {
            return true;
        }
    }
    false
}

/// `float_in_digest`: no f32/f64 arithmetic reachable from digest or
/// artifact-merge entry points (`fold_digests`, FNV helpers, `merge`,
/// `*digest*`). Float rounding is order-sensitive; anything feeding the
/// byte-identical merge contract must stay in integers.
pub fn float_in_digest(
    ws: &mut Workspace,
    idx: &SymbolIndex,
    graph: &CallGraph,
    out: &mut Vec<Finding>,
) {
    let mut entries = Vec::new();
    for (id, f) in idx.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        if f.name == "fold_digests"
            || f.name == "merge"
            || f.name.contains("digest")
            || f.name.contains("fnv")
        {
            entries.push(id);
        }
    }
    let pred = graph.reachable_from(&entries);
    for (id, f) in idx.fns.iter().enumerate() {
        if pred[id].is_none() || f.is_test {
            continue;
        }
        let Some((start, end)) = f.body else { continue };
        let path = graph.path_to_entry(idx, &pred, id);
        for i in start..=end.min(ws.files[f.file].code.len() - 1) {
            if ws.files[f.file].tests[i] {
                continue;
            }
            if has_float_use(&ws.files[f.file].code[i]) {
                let fi = f.file;
                emit(
                    &mut ws.files[fi],
                    i,
                    "float_in_digest",
                    format!(
                        "f32/f64 on a digest/merge path ({path}); float rounding is \
                         order-sensitive and breaks the byte-identical merge contract — \
                         keep digests and merged artifacts in integers"
                    ),
                    out,
                );
            }
        }
    }
}

/// Shared-mutable-state patterns hunted inside worker-reachable code.
const SHARED_MUT_PATTERNS: &[(&str, &str)] = &[
    ("static mut ", "a `static mut` is unsynchronized shared state across shard workers"),
    ("thread_local!", "thread-locals diverge between pool sizes (shard-to-thread mapping varies)"),
    ("Rc<", "`Rc` is not Sync; a clone smuggled across the rendezvous is a data race"),
    ("RefCell<", "`RefCell` has non-Sync interior mutability; workers sharing one race"),
    ("UnsafeCell<", "raw interior mutability shared across workers is unchecked"),
];

/// `shared_mut_across_shards`: statics, `Rc`, non-`Sync` interior
/// mutability or `unsafe` referenced from `parallel.rs` worker closures
/// or anything they reach. The determinism contract (pool-size
/// invariance, byte-identical digests) holds only if shards never share
/// mutable state outside the rendezvous barrier.
pub fn shared_mut_across_shards(
    ws: &mut Workspace,
    idx: &SymbolIndex,
    graph: &CallGraph,
    out: &mut Vec<Finding>,
) {
    let mut entries = Vec::new();
    for (id, f) in idx.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let in_parallel_file = ws.files[f.file].label.ends_with("parallel.rs");
        if in_parallel_file || body_mentions(&ws.files, idx, id, "run_rounds") {
            entries.push(id);
        }
    }
    let pred = graph.reachable_from(&entries);

    // (a) module-level statics in any file holding worker-reachable code.
    let mut reached_files: Vec<bool> = vec![false; ws.files.len()];
    for (id, f) in idx.fns.iter().enumerate() {
        if pred[id].is_some() && !f.is_test {
            reached_files[f.file] = true;
        }
    }
    for (fi, reached) in reached_files.iter().enumerate() {
        if !reached {
            continue;
        }
        let statics: Vec<(usize, String)> =
            idx.parsed[fi].statics.iter().map(|s| (s.line, s.decl.clone())).collect();
        for (line, decl) in statics {
            if ws.files[fi].tests.get(line).copied().unwrap_or(false) {
                continue;
            }
            emit(
                &mut ws.files[fi],
                line,
                "shared_mut_across_shards",
                format!(
                    "module-level `{decl}` is visible to shard workers; cross-shard state \
                     must flow through the rendezvous barrier (ParallelRunner), not globals"
                ),
                out,
            );
        }
    }

    // (b) non-Sync/unsafe patterns inside worker-reachable bodies.
    for (id, f) in idx.fns.iter().enumerate() {
        if pred[id].is_none() || f.is_test {
            continue;
        }
        let Some((start, end)) = f.body else { continue };
        let path = graph.path_to_entry(idx, &pred, id);
        for i in start..=end.min(ws.files[f.file].code.len() - 1) {
            if ws.files[f.file].tests[i] {
                continue;
            }
            let code = ws.files[f.file].code[i].clone();
            let hit = SHARED_MUT_PATTERNS
                .iter()
                .find(|(pat, _)| code.contains(pat))
                .map(|&(pat, why)| (pat, why))
                .or_else(|| {
                    word_match(&code, "unsafe")
                        .then_some(("unsafe", "unsafe code on a worker path is unaudited by the determinism contract"))
                });
            if let Some((pat, why)) = hit {
                let fi = f.file;
                emit(
                    &mut ws.files[fi],
                    i,
                    "shared_mut_across_shards",
                    format!("`{}` on a shard-worker path ({path}): {why}", pat.trim_end()),
                    out,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Metric-name rules.
// ---------------------------------------------------------------------------

/// Removes `{...}` format placeholders from a metric-name literal.
pub fn strip_placeholders(lit: &str) -> String {
    let mut out = String::new();
    let mut depth = 0u32;
    for c in lit.chars() {
        match c {
            '{' => depth += 1,
            '}' => depth = depth.saturating_sub(1),
            _ if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

/// Replaces `{...}` placeholders with `*` wildcards (for catalog
/// matching).
fn placeholder_glob(lit: &str) -> String {
    let mut out = String::new();
    let mut depth = 0u32;
    for c in lit.chars() {
        match c {
            '{' => {
                if depth == 0 {
                    out.push('*');
                }
                depth += 1;
            }
            '}' => depth = depth.saturating_sub(1),
            _ if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

/// `metric_name`: FtScope/FtFlight/FtJournal names are dotted
/// snake_case and unique per file.
pub fn metric_name(ws: &mut Workspace, idx: &SymbolIndex, out: &mut Vec<Finding>) {
    let mut seen: HashMap<(usize, String), usize> = HashMap::new();
    for m in &idx.metrics {
        let fi = m.file;
        let name = strip_placeholders(&m.literal);
        if name.is_empty() {
            continue; // fully dynamic name
        }
        if !name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.')
        {
            emit(
                &mut ws.files[fi],
                m.line,
                "metric_name",
                format!("metric name {:?} is not dotted snake_case ([a-z0-9_.])", m.literal),
                out,
            );
        }
        if let Some(first) = seen.insert((fi, format!("{}{}", m.method, m.literal)), m.line + 1) {
            emit(
                &mut ws.files[fi],
                m.line,
                "metric_name",
                format!(
                    "metric {:?} already registered at line {first}; duplicate registration \
                     under one prefix silently overwrites",
                    m.literal
                ),
                out,
            );
        }
    }
}

/// Glob match where `pat` may contain `*` (matching any run, dots
/// included) and `name` is literal.
fn glob_match(pat: &str, name: &str) -> bool {
    let parts: Vec<&str> = pat.split('*').collect();
    if parts.len() == 1 {
        return pat == name;
    }
    let mut rest = name;
    if !rest.starts_with(parts[0]) {
        return false;
    }
    rest = &rest[parts[0].len()..];
    let last = parts[parts.len() - 1];
    if rest.len() < last.len() || !rest.ends_with(last) {
        return false;
    }
    rest = &rest[..rest.len() - last.len()];
    for mid in &parts[1..parts.len() - 1] {
        if mid.is_empty() {
            continue;
        }
        match rest.find(mid) {
            Some(p) => rest = &rest[p + mid.len()..],
            None => return false,
        }
    }
    true
}

/// `metrics_catalog`: every registration literal must match an entry of
/// METRICS.md (instance indices there appear as `<i>`; placeholders in
/// code match any run). Stage and event names check their catalog
/// families (`engine.flight.<stage>.cycles`, `engine.journal.kind.<kind>`).
pub fn metrics_catalog(ws: &mut Workspace, idx: &SymbolIndex, out: &mut Vec<Finding>) {
    let Some(catalog) = ws.catalog.clone() else { return };
    for m in &idx.metrics {
        let fi = m.file;
        if ws.files[fi].test_file {
            continue;
        }
        let full = match m.method {
            "stage_name(" => format!("engine.flight.{}.cycles", m.literal),
            "event_name(" | "journal_event(" => format!("engine.journal.kind.{}", m.literal),
            "series_name(" => format!("engine.pulse.last.{}", m.literal),
            _ => m.literal.clone(),
        };
        let pat = placeholder_glob(&full);
        // A fully dynamic name carries nothing to check.
        if !pat.chars().any(|c| c.is_ascii_alphanumeric()) {
            continue;
        }
        // Malformed names are metric_name's findings, not ours.
        let static_part = strip_placeholders(&full);
        if !static_part
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.')
        {
            continue;
        }
        if !catalog.iter().any(|entry| glob_match(&pat, entry)) {
            emit(
                &mut ws.files[fi],
                m.line,
                "metrics_catalog",
                format!(
                    "metric {:?} (family `{pat}`) is not in METRICS.md; regenerate the \
                     catalog with UPDATE_METRICS=1 cargo test --test metrics_catalog, or fix \
                     the name",
                    m.literal
                ),
                out,
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Manifest + staleness rules.
// ---------------------------------------------------------------------------

/// `cargo_deps`: every dependency entry is `path =`/`workspace = true`.
pub fn cargo_deps(ws: &Workspace, out: &mut Vec<Finding>) {
    for (label, src) in &ws.manifests {
        out.extend(crate::scan_manifest(label, src));
    }
}

/// `stale_allow`: an allow directive that suppressed nothing is dead
/// weight — it either outlived the violation it excused or names a rule
/// that never fires there. Delete it or fix the rule name.
pub fn stale_allow(ws: &mut Workspace, out: &mut Vec<Finding>) {
    let known: Vec<&str> = crate::RULES.iter().map(|(name, _)| *name).collect();
    for file in &mut ws.files {
        let mut findings = Vec::new();
        for (i, d) in file.directives.list.iter().enumerate() {
            if file.directives.used[i] {
                continue;
            }
            let kind = if d.file_level { "allow-file" } else { "allow" };
            let message = if known.contains(&d.rule.as_str()) {
                format!(
                    "`{kind}({})` suppresses no findings; the violation it excused is gone — \
                     delete the directive",
                    d.rule
                )
            } else {
                format!(
                    "`{kind}({})` names an unknown rule (known: {}); it can never suppress \
                     anything",
                    d.rule,
                    known.join(", ")
                )
            };
            findings.push(finding(file, d.line, "stale_allow", message));
        }
        out.extend(findings);
    }
}
