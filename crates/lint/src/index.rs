//! Pass 3 — the workspace symbol index.
//!
//! Flattens every file's parsed items into workspace-wide lookup
//! tables: functions by bare name, by `(impl type, name)`, free
//! functions by name, struct fields declared with unordered-container
//! types, and every metric/stage/event name literal. The call-graph
//! pass and the semantic rules resolve against these tables instead of
//! re-walking the tree.

use crate::lexer::SourceFile;
use crate::parse::{parse_file, ParsedFile};
use std::collections::BTreeMap;

/// Index of one function across the workspace.
pub type FnId = usize;

/// One function with its owning file.
#[derive(Debug, Clone)]
pub struct FnRef {
    /// Index into the workspace file list.
    pub file: usize,
    /// Bare function name.
    pub name: String,
    /// Enclosing `impl`/`trait` type, if any.
    pub impl_type: Option<String>,
    /// 0-based signature line.
    pub line: usize,
    /// 0-based inclusive body range (`None` for signature-only).
    pub body: Option<(usize, usize)>,
    /// Whether the signature sits in a `#[cfg(test)]` region or a
    /// `tests/`/`examples/` file.
    pub is_test: bool,
}

/// One struct field declared with an unordered container type.
#[derive(Debug, Clone)]
pub struct UnorderedField {
    /// Index into the workspace file list.
    pub file: usize,
    /// Crate the declaring struct lives in.
    pub crate_name: String,
    /// Declaring struct.
    pub owner: String,
    /// Field name.
    pub name: String,
    /// 0-based declaration line.
    pub line: usize,
}

/// One metric/stage/event name registration site.
#[derive(Debug, Clone)]
pub struct MetricLit {
    /// Index into the workspace file list.
    pub file: usize,
    /// The registration method (`.counter(`, `stage_name(`, …).
    pub method: &'static str,
    /// Literal contents, placeholders intact.
    pub literal: String,
    /// 0-based line of the literal.
    pub line: usize,
}

/// Registration calls whose string argument names a metric family.
///
/// `stage_name(` is the FtFlight identity wrapper around stage-name
/// literals (crates/sim/src/flight.rs); `event_name(` / `journal_event(`
/// are the FtJournal equivalents (crates/sim/src/journal.rs);
/// `series_name(` is the FtPulse equivalent (crates/sim/src/pulse.rs).
/// All feed telemetry, dump lines and METRICS.md, so they obey the same
/// naming and cataloguing contract as FtScope registrations.
pub const METRIC_METHODS: &[&str] = &[
    ".counter(",
    ".gauge(",
    ".histogram(",
    "stage_name(",
    "event_name(",
    "journal_event(",
    "series_name(",
];

/// The symbol index over a whole workspace.
pub struct SymbolIndex {
    /// Every function, densely numbered (`FnId` indexes this).
    pub fns: Vec<FnRef>,
    /// Parsed item structure per file (same order as the file list).
    pub parsed: Vec<ParsedFile>,
    /// All metric-name registration sites.
    pub metrics: Vec<MetricLit>,
    /// Struct fields with `HashMap`/`HashSet` declared types.
    pub unordered_fields: Vec<UnorderedField>,
    by_name: BTreeMap<String, Vec<FnId>>,
    methods_by_name: BTreeMap<String, Vec<FnId>>,
    by_type_and_name: BTreeMap<(String, String), Vec<FnId>>,
    free_by_name: BTreeMap<String, Vec<FnId>>,
}

impl SymbolIndex {
    /// Builds the index over `files` (parses each file exactly once).
    pub fn build(files: &[SourceFile]) -> SymbolIndex {
        let mut idx = SymbolIndex {
            fns: Vec::new(),
            parsed: Vec::new(),
            metrics: Vec::new(),
            unordered_fields: Vec::new(),
            by_name: BTreeMap::new(),
            methods_by_name: BTreeMap::new(),
            by_type_and_name: BTreeMap::new(),
            free_by_name: BTreeMap::new(),
        };
        for (fi, file) in files.iter().enumerate() {
            let parsed = parse_file(file);
            for f in &parsed.fns {
                let id = idx.fns.len();
                let is_test =
                    file.test_file || file.tests.get(f.line).copied().unwrap_or(false);
                idx.by_name.entry(f.name.clone()).or_default().push(id);
                match &f.impl_type {
                    Some(t) => {
                        idx.methods_by_name.entry(f.name.clone()).or_default().push(id);
                        idx.by_type_and_name
                            .entry((t.clone(), f.name.clone()))
                            .or_default()
                            .push(id);
                    }
                    None => idx.free_by_name.entry(f.name.clone()).or_default().push(id),
                }
                idx.fns.push(FnRef {
                    file: fi,
                    name: f.name.clone(),
                    impl_type: f.impl_type.clone(),
                    line: f.line,
                    body: f.body,
                    is_test,
                });
            }
            for field in &parsed.fields {
                if field.ty.contains("HashMap") || field.ty.contains("HashSet") {
                    idx.unordered_fields.push(UnorderedField {
                        file: fi,
                        crate_name: file.crate_name.clone(),
                        owner: field.owner.clone(),
                        name: field.name.clone(),
                        line: field.line,
                    });
                }
            }
            extract_metric_lits(fi, file, &mut idx.metrics);
            idx.parsed.push(parsed);
        }
        idx
    }

    /// Functions (anywhere) with this bare name.
    pub fn fns_named(&self, name: &str) -> &[FnId] {
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// Methods (fns inside any impl/trait) with this name.
    pub fn methods_named(&self, name: &str) -> &[FnId] {
        self.methods_by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// Methods of one specific impl type.
    pub fn methods_of(&self, ty: &str, name: &str) -> &[FnId] {
        self.by_type_and_name.get(&(ty.to_string(), name.to_string())).map_or(&[], Vec::as_slice)
    }

    /// Free functions with this name.
    pub fn free_fns_named(&self, name: &str) -> &[FnId] {
        self.free_by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// The innermost function whose body contains 0-based `line` of
    /// file `fi`.
    pub fn enclosing_fn(&self, fi: usize, line: usize) -> Option<FnId> {
        let mut best: Option<(usize, FnId)> = None;
        for (id, f) in self.fns.iter().enumerate() {
            if f.file != fi {
                continue;
            }
            if let Some((start, end)) = f.body {
                if start <= line && line <= end {
                    let span = end - start;
                    if best.is_none_or(|(s, _)| span < s) {
                        best = Some((span, id));
                    }
                }
            }
        }
        best.map(|(_, id)| id)
    }
}

/// Extracts the first string literal at or after column `col` of raw
/// line `idx`, looking ahead a few lines for multi-line calls. Returns
/// the literal contents (without quotes) and its 0-based line index.
pub fn extract_literal(raw: &[String], idx: usize, col: usize) -> Option<(String, usize)> {
    for (k, line) in raw.iter().enumerate().skip(idx).take(4) {
        let from = if k == idx { col.min(line.len()) } else { 0 };
        let tail = &line[from..];
        if let Some(q) = tail.find('"') {
            let mut lit = String::new();
            let mut esc = false;
            for c in tail[q + 1..].chars() {
                if esc {
                    lit.push(c);
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    return Some((lit, k));
                } else {
                    lit.push(c);
                }
            }
            return None; // unterminated on this line: dynamic, skip
        }
    }
    None
}

fn extract_metric_lits(fi: usize, file: &SourceFile, out: &mut Vec<MetricLit>) {
    for (i, code) in file.code.iter().enumerate() {
        if file.tests.get(i).copied().unwrap_or(false) {
            continue;
        }
        for method in METRIC_METHODS {
            let Some(col) = code.find(method) else { continue };
            let Some((lit, at)) = extract_literal(&file.raw, i, col) else { continue };
            out.push(MetricLit { file: fi, method, literal: lit, line: at });
        }
    }
}
