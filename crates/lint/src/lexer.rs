//! Pass 1 — lexing: comment/string stripping, test-region marking and
//! `f4tlint:` directive parsing.
//!
//! Every source file is lexed exactly **once** into a [`SourceFile`];
//! all later passes (item parsing, the symbol index, the call graph and
//! every rule) share that one token stream. Stripping preserves column
//! positions: `code[i]` is line `i` with comments and string/char
//! literal contents blanked to spaces, `comments[i]` is the comment
//! text seen on line `i`.

use std::collections::BTreeSet;

/// Per-file lexer output.
pub struct Stripped {
    /// Source lines with comments and literal contents blanked.
    pub code: Vec<String>,
    /// Comment text per line (directives are parsed out of this).
    pub comments: Vec<String>,
}

/// Strips comments and string/char-literal contents from `src`.
pub fn strip(src: &str) -> Stripped {
    enum St {
        Code,
        Line,
        Block(u32),
        Str,
        RawStr(u32),
    }
    let chars: Vec<char> = src.chars().collect();
    let mut st = St::Code;
    let mut code_lines = Vec::new();
    let mut comment_lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            code_lines.push(std::mem::take(&mut code));
            comment_lines.push(std::mem::take(&mut comment));
            if matches!(st, St::Line) {
                st = St::Code;
            }
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                let next = chars.get(i + 1).copied();
                let prev_ident = i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
                if c == '/' && next == Some('/') {
                    st = St::Line;
                    comment.push_str("//");
                    code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::Block(1);
                    code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    st = St::Str;
                    code.push(' ');
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_ident {
                    // Raw / byte string prefixes: r", r#", br", b".
                    let mut j = i;
                    if chars[j] == 'b' && chars.get(j + 1) == Some(&'r') {
                        j += 1;
                    }
                    if chars[j] == 'r' || chars[j] == 'b' {
                        let raw = chars[j] == 'r';
                        let mut k = j + 1;
                        let mut hashes = 0u32;
                        if raw {
                            while chars.get(k) == Some(&'#') {
                                hashes += 1;
                                k += 1;
                            }
                        }
                        if chars.get(k) == Some(&'"') && (raw || k == i + 1) {
                            for _ in i..=k {
                                code.push(' ');
                            }
                            st = if raw { St::RawStr(hashes) } else { St::Str };
                            i = k + 1;
                            continue;
                        }
                    }
                    code.push(c);
                    i += 1;
                } else if c == '\'' && !prev_ident {
                    // Char literal vs lifetime.
                    if next == Some('\\') {
                        // Escaped char literal: blank until the closing quote.
                        code.push(' ');
                        i += 1;
                        while i < chars.len() && chars[i] != '\n' {
                            let ch = chars[i];
                            code.push(' ');
                            i += 1;
                            if ch == '\\' && i < chars.len() && chars[i] != '\n' {
                                code.push(' ');
                                i += 1;
                            } else if ch == '\'' {
                                break;
                            }
                        }
                    } else if next.is_some() && chars.get(i + 2) == Some(&'\'') {
                        code.push_str("   ");
                        i += 3;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            St::Line => {
                comment.push(c);
                code.push(' ');
                i += 1;
            }
            St::Block(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    st = if depth == 1 { St::Code } else { St::Block(depth - 1) };
                    code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::Block(depth + 1);
                    code.push_str("  ");
                    i += 2;
                } else {
                    comment.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    code.push(' ');
                    i += 1;
                    if i < chars.len() && chars[i] != '\n' {
                        code.push(' ');
                        i += 1;
                    }
                } else {
                    if c == '"' {
                        st = St::Code;
                    }
                    code.push(' ');
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let closed = (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'));
                    if closed {
                        for _ in 0..=hashes as usize {
                            code.push(' ');
                        }
                        i += 1 + hashes as usize;
                        st = St::Code;
                        continue;
                    }
                }
                code.push(' ');
                i += 1;
            }
        }
    }
    code_lines.push(code);
    comment_lines.push(comment);
    Stripped { code: code_lines, comments: comment_lines }
}

/// Marks lines inside `#[cfg(test)]`-gated items (brace-matched on the
/// stripped code).
pub fn test_region_flags(code: &[String]) -> Vec<bool> {
    let mut flags = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if code[i].contains("#[cfg(test)]") {
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < code.len() {
                flags[j] = true;
                for ch in code[j].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    flags
}

/// Whole-word search: `word` in `haystack` not flanked by `[A-Za-z0-9_]`.
pub fn word_match(haystack: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !haystack[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = haystack[at + word.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

/// Trailing `[a-zA-Z0-9_]+` identifier of `s` (empty if none).
pub fn trailing_ident(s: &str) -> String {
    let tail: Vec<char> = s.chars().rev().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    tail.into_iter().rev().collect()
}

/// One `// f4tlint: allow(rule): reason` / `allow-file(rule)` directive.
#[derive(Debug, Clone)]
pub struct Directive {
    /// 0-based line the directive comment sits on.
    pub line: usize,
    /// Rule name the directive suppresses.
    pub rule: String,
    /// Whether it is an `allow-file` (whole-file) directive.
    pub file_level: bool,
}

/// All directives of one file, with use-tracking for `stale_allow`.
///
/// A line directive covers its own line; when it sits on a comment-only
/// line it extends over following comment/blank lines through the first
/// code line. `allow-file` covers the whole file. [`Directives::check`]
/// marks a directive *used* only when it actually suppresses a finding
/// — an allow that suppresses nothing is stale.
pub struct Directives {
    /// Every directive, in file order.
    pub list: Vec<Directive>,
    /// Per-line map: directive indices in force on that line.
    per_line: Vec<Vec<usize>>,
    /// Indices of `allow-file` directives.
    file_wide: Vec<usize>,
    /// `used[i]` — directive `i` suppressed at least one finding.
    pub used: Vec<bool>,
}

impl Directives {
    /// Parses directives out of the per-line comment text. Doc comments
    /// (`///`, `//!`) never carry directives — they are documentation
    /// *about* the escape hatch, not uses of it.
    pub fn parse(stripped: &Stripped) -> Directives {
        let mut list: Vec<Directive> = Vec::new();
        let mut per_line: Vec<Vec<usize>> = vec![Vec::new(); stripped.comments.len()];
        let mut file_wide = Vec::new();
        for (i, comment) in stripped.comments.iter().enumerate() {
            if comment.starts_with("///") || comment.starts_with("//!") {
                continue;
            }
            let Some(pos) = comment.find("f4tlint:") else { continue };
            let rest = comment[pos + "f4tlint:".len()..].trim_start();
            let (file_level, args) = if let Some(r) = rest.strip_prefix("allow-file(") {
                (true, r)
            } else if let Some(r) = rest.strip_prefix("allow(") {
                (false, r)
            } else {
                continue;
            };
            let Some(close) = args.find(')') else { continue };
            for rule in args[..close].split(',').map(str::trim).filter(|s| !s.is_empty()) {
                let id = list.len();
                list.push(Directive { line: i, rule: rule.to_string(), file_level });
                if file_level {
                    file_wide.push(id);
                } else {
                    per_line[i].push(id);
                    if stripped.code[i].trim().is_empty() {
                        // Comment-only line: extend through the first code line.
                        let mut j = i + 1;
                        while j < stripped.code.len() {
                            per_line[j].push(id);
                            if !stripped.code[j].trim().is_empty() {
                                break;
                            }
                            j += 1;
                        }
                    }
                }
            }
        }
        let used = vec![false; list.len()];
        Directives { list, per_line, file_wide, used }
    }

    /// Whether a finding for `rule` on 0-based `line` is suppressed;
    /// marks the suppressing directive used. Call this only when a
    /// violation was actually detected.
    pub fn check(&mut self, rule: &str, line: usize) -> bool {
        if let Some(ids) = self.per_line.get(line) {
            // Collect first: a line can carry several directives and we
            // want exactly the matching one marked used.
            if let Some(&id) = ids.iter().find(|&&id| self.list[id].rule == rule) {
                self.used[id] = true;
                return true;
            }
        }
        if let Some(&id) = self.file_wide.iter().find(|&&id| self.list[id].rule == rule) {
            self.used[id] = true;
            return true;
        }
        false
    }

    /// Rules with a file-wide allow (peek only; does not mark used).
    pub fn file_wide_rules(&self) -> BTreeSet<&str> {
        self.file_wide.iter().map(|&id| self.list[id].rule.as_str()).collect()
    }
}

/// One lexed source file, shared by every later pass.
pub struct SourceFile {
    /// Repo-relative path label used in findings.
    pub label: String,
    /// Crate directory name (`"core"`, `"sim"`, …; facade/tests scan as `"f4t"`).
    pub crate_name: String,
    /// Raw source lines (string literals intact — metric-name extraction).
    pub raw: Vec<String>,
    /// Stripped code lines (comments/literals blanked).
    pub code: Vec<String>,
    /// Per-line `#[cfg(test)]` region flags.
    pub tests: Vec<bool>,
    /// `f4tlint:` directives with use-tracking.
    pub directives: Directives,
    /// Whether the whole file is test/demo code (under `tests/` or
    /// `examples/`): exempt from the determinism-contract rules.
    pub test_file: bool,
}

impl SourceFile {
    /// Lexes `src` once into the shared representation.
    pub fn new(label: &str, crate_name: &str, src: &str) -> SourceFile {
        let stripped = strip(src);
        let tests = test_region_flags(&stripped.code);
        let directives = Directives::parse(&stripped);
        let test_file = label.starts_with("tests/")
            || label.starts_with("examples/")
            || label.contains("/tests/")
            || label.contains("/examples/")
            || label.contains("/benches/");
        SourceFile {
            label: label.to_string(),
            crate_name: crate_name.to_string(),
            raw: src.lines().map(str::to_string).collect(),
            code: stripped.code,
            tests,
            directives,
            test_file,
        }
    }
}
