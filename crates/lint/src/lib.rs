#![warn(missing_docs)]
//! # f4tlint — in-tree design-rule scanner for the F4T workspace
//!
//! A dependency-free source linter enforcing the repo-specific rules that
//! `rustc`/`clippy` cannot know about. It is the static half of FtVerify
//! (the dynamic half is `f4t_sim::check`, the cycle-level hazard checker).
//!
//! ## Rules
//!
//! | rule | scope | meaning |
//! |------|-------|---------|
//! | `wall_clock` | every crate except `bench` | no `std::time::Instant` / `SystemTime`: simulated time must come from the cycle counter, or determinism and reproducibility die silently |
//! | `raw_queue` | `core`, `mem` | no `VecDeque<...>` fields/locals — on-chip queues must be `f4t_sim::Fifo` (bounded, with backpressure and conservation counters) |
//! | `panic_path` | `core` | no `unwrap()`/`expect()`/`panic!`-family in non-test code: everything in `core` is reachable from `Engine::tick`, and a model that panics mid-tick cannot report what went wrong |
//! | `hashmap_iter` | `core`, `mem` | no `for … in` loops over `HashMap`/`HashSet` iterators in non-test code — std hash iteration order is unspecified, which silently breaks the determinism contract; iterate a `FlowSlab`/`FlowSet` or collect-and-sort |
//! | `metric_name` | every crate | FtScope metric / FtFlight stage / FtJournal event names are dotted `snake_case` and unique per file (duplicate registration silently overwrites) |
//! | `cargo_deps` | every manifest | every dependency is `path =` / `workspace = true` — the workspace builds fully offline |
//!
//! ## Allow-listing
//!
//! A justified exception is granted in place:
//!
//! ```text
//! // f4tlint: allow(raw_queue): bounded by the dispatch gate.
//! tx_overflow: VecDeque<TxRequest>,
//! ```
//!
//! The directive covers its own line, any immediately following comment
//! lines, and the first code line after it. `// f4tlint: allow-file(rule)`
//! anywhere in a file disables the rule for that whole file.
//!
//! The `workspace_is_clean` test in this crate scans the real workspace,
//! so `cargo test` fails on any new violation; `scripts/verify.sh` and CI
//! also run the `f4tlint` binary directly.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::path::{Path, PathBuf};

/// The rules f4tlint knows, with one-line descriptions (`f4tlint --rules`).
pub const RULES: &[(&str, &str)] = &[
    ("wall_clock", "no std::time::Instant/SystemTime outside crates/bench"),
    ("raw_queue", "no VecDeque in crates/core|mem; on-chip queues use f4t_sim::Fifo"),
    ("panic_path", "no unwrap/expect/panic!-family in non-test crates/core code"),
    (
        "hashmap_iter",
        "no for-loops over HashMap/HashSet iterators in crates/core|mem; order is nondeterministic",
    ),
    (
        "metric_name",
        "FtScope metric / FtFlight stage / FtJournal event names are dotted snake_case, unique per file",
    ),
    ("cargo_deps", "every Cargo.toml dependency is path/workspace (offline build)"),
];

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path of the offending file (as given to the scanner).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule name (one of [`RULES`]).
    pub rule: &'static str,
    /// What went wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

// ---------------------------------------------------------------------------
// Lexer: comment/string stripping with column positions preserved.
// ---------------------------------------------------------------------------

/// Per-file lexer output: `code[i]` is line `i` with comments and
/// string/char-literal contents blanked to spaces (so column positions
/// survive), `comments[i]` is the comment text seen on line `i`.
struct Stripped {
    code: Vec<String>,
    comments: Vec<String>,
}

fn strip(src: &str) -> Stripped {
    enum St {
        Code,
        Line,
        Block(u32),
        Str,
        RawStr(u32),
    }
    let chars: Vec<char> = src.chars().collect();
    let mut st = St::Code;
    let mut code_lines = Vec::new();
    let mut comment_lines = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            code_lines.push(std::mem::take(&mut code));
            comment_lines.push(std::mem::take(&mut comment));
            if matches!(st, St::Line) {
                st = St::Code;
            }
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                let next = chars.get(i + 1).copied();
                let prev_ident = i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
                if c == '/' && next == Some('/') {
                    st = St::Line;
                    comment.push_str("//");
                    code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::Block(1);
                    code.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    st = St::Str;
                    code.push(' ');
                    i += 1;
                } else if (c == 'r' || c == 'b') && !prev_ident {
                    // Raw / byte string prefixes: r", r#", br", b".
                    let mut j = i;
                    if chars[j] == 'b' && chars.get(j + 1) == Some(&'r') {
                        j += 1;
                    }
                    if chars[j] == 'r' || chars[j] == 'b' {
                        let raw = chars[j] == 'r';
                        let mut k = j + 1;
                        let mut hashes = 0u32;
                        if raw {
                            while chars.get(k) == Some(&'#') {
                                hashes += 1;
                                k += 1;
                            }
                        }
                        if chars.get(k) == Some(&'"') && (raw || k == i + 1) {
                            for _ in i..=k {
                                code.push(' ');
                            }
                            st = if raw { St::RawStr(hashes) } else { St::Str };
                            i = k + 1;
                            continue;
                        }
                    }
                    code.push(c);
                    i += 1;
                } else if c == '\'' && !prev_ident {
                    // Char literal vs lifetime.
                    if next == Some('\\') {
                        // Escaped char literal: blank until the closing quote.
                        code.push(' ');
                        i += 1;
                        while i < chars.len() && chars[i] != '\n' {
                            let ch = chars[i];
                            code.push(' ');
                            i += 1;
                            if ch == '\\' && i < chars.len() && chars[i] != '\n' {
                                code.push(' ');
                                i += 1;
                            } else if ch == '\'' {
                                break;
                            }
                        }
                    } else if next.is_some() && chars.get(i + 2) == Some(&'\'') {
                        code.push_str("   ");
                        i += 3;
                    } else {
                        code.push('\'');
                        i += 1;
                    }
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            St::Line => {
                comment.push(c);
                code.push(' ');
                i += 1;
            }
            St::Block(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '*' && next == Some('/') {
                    st = if depth == 1 { St::Code } else { St::Block(depth - 1) };
                    code.push_str("  ");
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::Block(depth + 1);
                    code.push_str("  ");
                    i += 2;
                } else {
                    comment.push(c);
                    code.push(' ');
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    code.push(' ');
                    i += 1;
                    if i < chars.len() && chars[i] != '\n' {
                        code.push(' ');
                        i += 1;
                    }
                } else {
                    if c == '"' {
                        st = St::Code;
                    }
                    code.push(' ');
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let closed = (1..=hashes as usize)
                        .all(|k| chars.get(i + k) == Some(&'#'));
                    if closed {
                        for _ in 0..=hashes as usize {
                            code.push(' ');
                        }
                        i += 1 + hashes as usize;
                        st = St::Code;
                        continue;
                    }
                }
                code.push(' ');
                i += 1;
            }
        }
    }
    code_lines.push(code);
    comment_lines.push(comment);
    Stripped { code: code_lines, comments: comment_lines }
}

/// Marks lines inside `#[cfg(test)]`-gated items (brace-matched on the
/// stripped code).
fn test_region_flags(code: &[String]) -> Vec<bool> {
    let mut flags = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if code[i].contains("#[cfg(test)]") {
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < code.len() {
                flags[j] = true;
                for ch in code[j].chars() {
                    match ch {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                }
                if opened && depth <= 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    flags
}

/// Parses `f4tlint: allow(...)` / `allow-file(...)` directives out of the
/// per-line comment text. Returns (per-line allowed rule names, file-wide
/// allowed rule names). A line directive covers its own line; when it sits
/// on a comment-only line it extends over following comment/blank lines
/// through the first code line.
fn parse_directives(stripped: &Stripped) -> (Vec<HashSet<String>>, HashSet<String>) {
    let mut per_line: Vec<HashSet<String>> = vec![HashSet::new(); stripped.comments.len()];
    let mut file_wide = HashSet::new();
    for (i, comment) in stripped.comments.iter().enumerate() {
        let Some(pos) = comment.find("f4tlint:") else { continue };
        let rest = comment[pos + "f4tlint:".len()..].trim_start();
        let (file_level, args) = if let Some(r) = rest.strip_prefix("allow-file(") {
            (true, r)
        } else if let Some(r) = rest.strip_prefix("allow(") {
            (false, r)
        } else {
            continue;
        };
        let Some(close) = args.find(')') else { continue };
        let rules: Vec<String> =
            args[..close].split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect();
        if file_level {
            file_wide.extend(rules);
        } else {
            per_line[i].extend(rules.iter().cloned());
            if stripped.code[i].trim().is_empty() {
                // Comment-only line: extend through the first code line.
                let mut j = i + 1;
                while j < stripped.code.len() {
                    per_line[j].extend(rules.iter().cloned());
                    if !stripped.code[j].trim().is_empty() {
                        break;
                    }
                    j += 1;
                }
            }
        }
    }
    (per_line, file_wide)
}

// ---------------------------------------------------------------------------
// Rules.
// ---------------------------------------------------------------------------

/// Whether `rule` is in force for a crate directory named `crate_name`
/// (`"core"`, `"sim"`, …; the facade crate and root tests scan as `"f4t"`).
fn rule_applies(rule: &str, crate_name: &str) -> bool {
    match rule {
        // bench measures real elapsed time on purpose (simulated-vs-wall
        // throughput); everything else runs on the cycle counter.
        "wall_clock" => crate_name != "bench",
        "raw_queue" => matches!(crate_name, "core" | "mem"),
        "panic_path" => crate_name == "core",
        // Hash iteration order feeds straight into tick ordering in the
        // hardware-model crates; elsewhere determinism-sensitive loops
        // are covered by the golden-digest tests.
        "hashmap_iter" => matches!(crate_name, "core" | "mem"),
        "metric_name" => true,
        _ => false,
    }
}

fn word_match(haystack: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !haystack[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = haystack[at + word.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

const PANIC_PATTERNS: &[&str] =
    &[".unwrap()", ".expect(", "panic!(", "unreachable!(", "todo!(", "unimplemented!("];

/// Iterator-producing methods whose order is the hash order.
const HASH_ITER_METHODS: &[&str] =
    &[".iter()", ".iter_mut()", ".keys()", ".values()", ".values_mut()", ".drain()", ".into_iter()"];

/// Trailing `[a-zA-Z0-9_]+` identifier of `s` (empty if none).
fn trailing_ident(s: &str) -> String {
    let tail: Vec<char> =
        s.chars().rev().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    tail.into_iter().rev().collect()
}

/// Identifiers this file declares with a `HashMap`/`HashSet` type or
/// constructor: `name: HashMap<..>` fields/params and
/// `let [mut] name = HashMap::new()`-style bindings.
fn hash_container_idents(code: &[String]) -> HashSet<String> {
    let mut names = HashSet::new();
    for line in code {
        for pat in ["HashMap<", "HashSet<", "HashMap::", "HashSet::"] {
            let mut start = 0;
            while let Some(pos) = line[start..].find(pat) {
                let at = start + pos;
                let before = line[..at].trim_end();
                let binding = before
                    .strip_suffix(':')
                    .or_else(|| before.strip_suffix('='))
                    .map(str::trim_end);
                if let Some(b) = binding {
                    let ident = trailing_ident(b);
                    if !ident.is_empty() && !ident.starts_with(|c: char| c.is_ascii_digit()) {
                        names.insert(ident);
                    }
                }
                start = at + pat.len();
            }
        }
    }
    names
}

/// Whether the loop expression after `for … in` iterates one of the
/// file's hash containers: `name.iter()` / `.keys()` / … (including
/// `self.name.iter()`), or by-reference `&name` / `&mut name`.
fn iterates_hash_container(expr: &str, names: &HashSet<String>) -> bool {
    for method in HASH_ITER_METHODS {
        let mut start = 0;
        while let Some(pos) = expr[start..].find(method) {
            let at = start + pos;
            if names.contains(&trailing_ident(&expr[..at])) {
                return true;
            }
            start = at + method.len();
        }
    }
    let t = expr.trim_start();
    if let Some(r) = t.strip_prefix('&') {
        let r = r.trim_start();
        let r = r.strip_prefix("mut ").unwrap_or(r).trim_start();
        let r = r.strip_prefix("self.").unwrap_or(r);
        let ident: String =
            r.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
        let rest = r[ident.len()..].trim_start();
        if names.contains(&ident) && (rest.is_empty() || rest.starts_with('{')) {
            return true;
        }
    }
    false
}

// `stage_name(` is the FtFlight identity wrapper around stage-name
// literals (crates/sim/src/flight.rs): flight stages feed telemetry and
// the breakdown JSON, so they obey the same naming contract.
// `event_name(` / `journal_event(` are the FtJournal equivalents
// (crates/sim/src/journal.rs): event kinds appear in dump lines,
// `f4tdbg` filters and METRICS.md, so a misnamed or duplicated literal
// would silently desynchronize the forensic catalog.
const METRIC_METHODS: &[&str] =
    &[".counter(", ".gauge(", ".histogram(", "stage_name(", "event_name(", "journal_event("];

/// Extracts the first string literal at or after column `col` of raw line
/// `idx`, looking ahead a few lines for multi-line calls. Returns the
/// literal contents (without quotes) and its 0-based line index.
fn extract_literal(raw: &[&str], idx: usize, col: usize) -> Option<(String, usize)> {
    for (k, line) in raw.iter().enumerate().skip(idx).take(4) {
        let from = if k == idx { col.min(line.len()) } else { 0 };
        let tail = &line[from..];
        if let Some(q) = tail.find('"') {
            let mut lit = String::new();
            let mut esc = false;
            for c in tail[q + 1..].chars() {
                if esc {
                    lit.push(c);
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    return Some((lit, k));
                } else {
                    lit.push(c);
                }
            }
            return None; // unterminated on this line: dynamic, skip
        }
    }
    None
}

/// Removes `{...}` format placeholders from a metric-name literal.
fn strip_placeholders(lit: &str) -> String {
    let mut out = String::new();
    let mut depth = 0u32;
    for c in lit.chars() {
        match c {
            '{' => depth += 1,
            '}' => depth = depth.saturating_sub(1),
            _ if depth == 0 => out.push(c),
            _ => {}
        }
    }
    out
}

/// Scans one Rust source file. `file` is the label used in findings,
/// `crate_name` selects which rules are in force.
pub fn scan_source(file: &str, crate_name: &str, src: &str) -> Vec<Finding> {
    let stripped = strip(src);
    let raw: Vec<&str> = src.lines().collect();
    let tests = test_region_flags(&stripped.code);
    let (allowed, file_allowed) = parse_directives(&stripped);
    let mut findings = Vec::new();
    let mut seen_metrics: HashMap<String, usize> = HashMap::new();
    let hash_idents = hash_container_idents(&stripped.code);

    let active = |rule: &'static str, line: usize| {
        rule_applies(rule, crate_name)
            && !file_allowed.contains(rule)
            && !allowed[line].contains(rule)
    };

    for (i, code) in stripped.code.iter().enumerate() {
        let lineno = i + 1;
        if active("wall_clock", i)
            && (word_match(code, "Instant") || word_match(code, "SystemTime"))
        {
            findings.push(Finding {
                file: file.into(),
                line: lineno,
                rule: "wall_clock",
                message: "wall-clock time in simulated code; use the cycle counter / now_ns()"
                    .into(),
            });
        }
        if active("raw_queue", i) && code.contains("VecDeque<") {
            findings.push(Finding {
                file: file.into(),
                line: lineno,
                rule: "raw_queue",
                message: "unbounded VecDeque models an on-chip queue; use f4t_sim::Fifo or \
                          justify with // f4tlint: allow(raw_queue): <why bounded>"
                    .into(),
            });
        }
        if active("hashmap_iter", i) && !tests[i] && word_match(code, "for") {
            // Line-based: the loop expression is everything after the
            // last ` in ` on the `for` line (good enough for rustfmt'd
            // single-line headers; multi-line headers are rare).
            if let Some(pos) = code.rfind(" in ") {
                if iterates_hash_container(&code[pos + 4..], &hash_idents) {
                    findings.push(Finding {
                        file: file.into(),
                        line: lineno,
                        rule: "hashmap_iter",
                        message: "for-loop over HashMap/HashSet iteration order is \
                                  nondeterministic and breaks the golden-digest contract; \
                                  iterate a FlowSlab/FlowSet or collect-and-sort (or justify \
                                  with // f4tlint: allow(hashmap_iter): <why order-insensitive>)"
                            .into(),
                    });
                }
            }
        }
        if active("panic_path", i) && !tests[i] {
            for pat in PANIC_PATTERNS {
                if code.contains(pat) {
                    findings.push(Finding {
                        file: file.into(),
                        line: lineno,
                        rule: "panic_path",
                        message: format!(
                            "`{}` is reachable from Engine::tick; return/skip instead (or \
                             debug_assert! for dispatch-gate contracts)",
                            pat.trim_start_matches('.')
                        ),
                    });
                    break;
                }
            }
        }
        if !tests[i] {
            for method in METRIC_METHODS {
                let Some(col) = code.find(method) else { continue };
                let Some((lit, at)) = extract_literal(&raw, i, col) else { continue };
                if !active("metric_name", at) {
                    continue;
                }
                let name = strip_placeholders(&lit);
                if name.is_empty() {
                    continue; // fully dynamic name
                }
                if !name.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '.')
                {
                    findings.push(Finding {
                        file: file.into(),
                        line: at + 1,
                        rule: "metric_name",
                        message: format!(
                            "metric name {lit:?} is not dotted snake_case ([a-z0-9_.])"
                        ),
                    });
                }
                if let Some(first) = seen_metrics.insert(format!("{method}{lit}"), at + 1) {
                    findings.push(Finding {
                        file: file.into(),
                        line: at + 1,
                        rule: "metric_name",
                        message: format!(
                            "metric {lit:?} already registered at line {first}; duplicate \
                             registration under one prefix silently overwrites"
                        ),
                    });
                }
            }
        }
    }
    findings
}

/// Scans one `Cargo.toml`: every entry in a dependencies section must be a
/// `path =` or `workspace = true` dependency (the workspace builds with no
/// network access; see ROADMAP.md).
pub fn scan_manifest(file: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut in_deps = false;
    for (i, line) in src.lines().enumerate() {
        let t = line.trim();
        if t.starts_with('[') {
            let section = t.trim_start_matches('[').trim_end_matches(']');
            in_deps = section == "dependencies"
                || section.ends_with(".dependencies")
                || section == "dev-dependencies"
                || section == "build-dependencies";
            continue;
        }
        if !in_deps || t.is_empty() || t.starts_with('#') {
            continue;
        }
        if t.contains("workspace = true") || t.contains("path =") {
            continue;
        }
        findings.push(Finding {
            file: file.into(),
            line: i + 1,
            rule: "cargo_deps",
            message: format!(
                "dependency entry `{t}` is not path/workspace; external crates are not \
                 available in this build environment"
            ),
        });
    }
    findings
}

// ---------------------------------------------------------------------------
// Workspace walker.
// ---------------------------------------------------------------------------

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut entries: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            // `fixtures` holds intentionally-violating inputs for the
            // lint self-tests; `target` is build output.
            if name != "fixtures" && name != "target" {
                walk_rs(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn scan_tree(root: &Path, dir: &Path, crate_name: &str, findings: &mut Vec<Finding>) {
    let mut files = Vec::new();
    walk_rs(dir, &mut files);
    for path in files {
        let Ok(src) = std::fs::read_to_string(&path) else { continue };
        let label = path.strip_prefix(root).unwrap_or(&path).display().to_string();
        findings.extend(scan_source(&label, crate_name, &src));
    }
}

/// Scans the whole workspace rooted at `root` (the directory holding the
/// top-level `Cargo.toml`): all crates under `crates/`, the facade crate's
/// `src/` and `tests/`, and every manifest.
pub fn scan_workspace(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    for manifest in [root.join("Cargo.toml")] {
        if let Ok(src) = std::fs::read_to_string(&manifest) {
            let label = manifest.strip_prefix(root).unwrap_or(&manifest).display().to_string();
            findings.extend(scan_manifest(&label, &src));
        }
    }
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut dirs: Vec<PathBuf> =
            entries.flatten().map(|e| e.path()).filter(|p| p.is_dir()).collect();
        dirs.sort();
        for dir in dirs {
            let crate_name =
                dir.file_name().and_then(|n| n.to_str()).unwrap_or_default().to_string();
            let manifest = dir.join("Cargo.toml");
            if let Ok(src) = std::fs::read_to_string(&manifest) {
                let label =
                    manifest.strip_prefix(root).unwrap_or(&manifest).display().to_string();
                findings.extend(scan_manifest(&label, &src));
            }
            scan_tree(root, &dir, &crate_name, &mut findings);
        }
    }
    // Facade crate sources and the workspace-level integration tests.
    scan_tree(root, &root.join("src"), "f4t", &mut findings);
    scan_tree(root, &root.join("tests"), "f4t", &mut findings);
    scan_tree(root, &root.join("examples"), "f4t", &mut findings);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(name: &str) -> String {
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
        std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn fixture_wall_clock_detected() {
        let f = scan_source("wall_clock.rs", "core", &fixture("wall_clock.rs"));
        assert_eq!(rules_of(&f), ["wall_clock", "wall_clock"], "{f:#?}");
        // The commented-out Instant and the one in a string do not count,
        // and the allow-listed one is exempt.
        assert_eq!(f[0].line, 5);
        assert_eq!(f[1].line, 8);
    }

    #[test]
    fn fixture_raw_queue_detected_and_allow_listed() {
        let f = scan_source("raw_queue.rs", "core", &fixture("raw_queue.rs"));
        assert_eq!(rules_of(&f), ["raw_queue"], "{f:#?}");
        assert_eq!(f[0].line, 8);
        // Out of scope for non-hardware crates.
        assert!(scan_source("raw_queue.rs", "host", &fixture("raw_queue.rs")).is_empty());
    }

    #[test]
    fn fixture_panic_path_detected_outside_tests_only() {
        let f = scan_source("panic_path.rs", "core", &fixture("panic_path.rs"));
        assert_eq!(rules_of(&f), ["panic_path", "panic_path"], "{f:#?}");
        assert!(f.iter().all(|x| x.line < 20), "test-module panics exempt: {f:#?}");
    }

    #[test]
    fn fixture_hashmap_iter_detected() {
        let f = scan_source("hashmap_iter.rs", "core", &fixture("hashmap_iter.rs"));
        assert_eq!(
            rules_of(&f),
            ["hashmap_iter", "hashmap_iter", "hashmap_iter", "hashmap_iter"],
            "{f:#?}"
        );
        // Field iter, method-chain iter, local binding, by-reference loop;
        // the allow-listed loop, the order-insensitive fold, the Vec loops
        // and the #[cfg(test)] loop are all exempt.
        assert_eq!(
            f.iter().map(|x| x.line).collect::<Vec<_>>(),
            [12, 15, 19, 22],
            "{f:#?}"
        );
        assert!(f[0].message.contains("nondeterministic"), "{f:#?}");
        // mem is in scope too; other crates are not.
        assert_eq!(scan_source("hashmap_iter.rs", "mem", &fixture("hashmap_iter.rs")).len(), 4);
        assert!(scan_source("hashmap_iter.rs", "host", &fixture("hashmap_iter.rs")).is_empty());
        assert!(scan_source("hashmap_iter.rs", "bench", &fixture("hashmap_iter.rs")).is_empty());
    }

    #[test]
    fn fixture_metric_name_detected() {
        let f = scan_source("metric_name.rs", "sim", &fixture("metric_name.rs"));
        assert_eq!(
            rules_of(&f),
            ["metric_name", "metric_name", "metric_name", "metric_name"],
            "{f:#?}"
        );
        assert!(f[0].message.contains("snake_case"), "{f:#?}");
        assert!(f[1].message.contains("already registered"), "{f:#?}");
        // FtFlight stage names go through the same rule via stage_name().
        assert!(f[2].message.contains("Rx-Ingest"), "{f:#?}");
        // FtJournal event names go through it via event_name() /
        // journal_event(); the well-formed literals around the bad one
        // must stay clean.
        assert!(f[3].message.contains("TcbMigrateStart"), "{f:#?}");
    }

    #[test]
    fn fixture_bad_manifest_detected() {
        let f = scan_manifest("bad_manifest.toml", &fixture("bad_manifest.toml"));
        assert_eq!(rules_of(&f), ["cargo_deps", "cargo_deps"], "{f:#?}");
    }

    #[test]
    fn allow_file_disables_rule() {
        let src = "// f4tlint: allow-file(raw_queue)\nstruct S { q: VecDeque<u32> }\n";
        assert!(scan_source("x.rs", "core", src).is_empty());
    }

    #[test]
    fn lexer_strips_strings_comments_and_lifetimes() {
        let src = r#"
let s = "panic!( inside a string";
// .unwrap() in a comment
/* .expect( in a block comment */
fn f<'a>(x: &'a str) -> char { 'x' }
"#;
        assert!(scan_source("x.rs", "core", src).is_empty());
    }

    #[test]
    fn workspace_is_clean() {
        // The lint enforces itself: any new violation in the real tree
        // fails `cargo test -p f4t-lint`.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap();
        let findings = scan_workspace(root);
        assert!(
            findings.is_empty(),
            "f4tlint found {} violation(s):\n{}",
            findings.len(),
            findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
        );
    }
}
