#![warn(missing_docs)]
//! # f4tlint / FtProve — cross-file semantic lint engine for the F4T workspace
//!
//! A dependency-free workspace analyzer enforcing the repo-specific
//! determinism and concurrency contracts that `rustc`/`clippy` cannot
//! know about. It is the static half of FtVerify (the dynamic half is
//! `f4t_sim::check`, the cycle-level hazard checker).
//!
//! ## Passes
//!
//! Every file is lexed exactly once; all rules share the result:
//!
//! 1. **lex** ([`lexer`]) — comment/string stripping with columns
//!    preserved, `#[cfg(test)]` region marking, `f4tlint:` directives;
//! 2. **parse** ([`parse`]) — approximate item structure: functions with
//!    body ranges and enclosing impl types, struct fields with declared
//!    types, `use` paths, module-level statics;
//! 3. **index** ([`index`]) — workspace symbol tables (functions by
//!    name / impl type, unordered-container fields, metric literals);
//! 4. **callgraph** ([`callgraph`]) — name-resolved approximate call
//!    graph with BFS reachability (over-approximating, the safe
//!    direction for "is a panic reachable from tick?");
//! 5. **rules** ([`rules`]) — the per-line, dataflow, reachability and
//!    cross-artifact rules below.
//!
//! ## Rules
//!
//! | rule | scope | meaning |
//! |------|-------|---------|
//! | `wall_clock` | every crate except `bench` | no `std::time::Instant` / `SystemTime`: simulated time must come from the cycle counter, or determinism and reproducibility die silently |
//! | `raw_queue` | `core`, `mem` | no `VecDeque<...>` fields/locals — on-chip queues must be `f4t_sim::Fifo` (bounded, with backpressure and conservation counters) |
//! | `panic_path` | `core` | no `unwrap()`/`expect()`/`panic!`-family in non-test code: everything in `core` is reachable from `Engine::tick` |
//! | `nondeterministic_iter` | every crate | no `for … in` loops over `HashMap`/`HashSet` iterators — declared types flow from struct fields (workspace-wide) and same-file bindings to the loop site; hash order silently breaks the golden-digest contract |
//! | `panic_reachable` | every crate except `core` | no panic-family expression in any function the call graph reaches from `tick`/`tick_checked`/`ParallelRunner` entry points |
//! | `float_in_digest` | every crate | no f32/f64 arithmetic reachable from `fold_digests`/FNV/digest/merge entry points — float rounding is order-sensitive and breaks byte-identical artifact merging |
//! | `shared_mut_across_shards` | every crate | no statics, `Rc`, non-`Sync` interior mutability or `unsafe` referenced from `parallel.rs` worker closures or anything they reach |
//! | `metric_name` | every crate | FtScope metric / FtFlight stage / FtJournal event names are dotted `snake_case` and unique per file |
//! | `metrics_catalog` | every crate | every metric/stage/event literal must match an entry of the generated METRICS.md catalog (placeholders match any run) |
//! | `cargo_deps` | every manifest | every dependency is `path =` / `workspace = true` — the workspace builds fully offline |
//! | `stale_allow` | every file | an allow directive that suppresses zero findings is dead weight — delete it (also fires on unknown rule names) |
//!
//! ## Allow-listing
//!
//! A justified exception is granted in place:
//!
//! ```text
//! // f4tlint: allow(raw_queue): bounded by the dispatch gate.
//! tx_overflow: VecDeque<TxRequest>,
//! ```
//!
//! The directive covers its own line, any immediately following comment
//! lines, and the first code line after it. `// f4tlint: allow-file(rule)`
//! anywhere in a file disables the rule for that whole file. Doc comments
//! (`///`, `//!`) never carry directives. `stale_allow` keeps the escape
//! hatch honest: an allow that stops suppressing anything is itself a
//! finding.
//!
//! The `workspace_is_clean` test in this crate scans the real workspace,
//! so `cargo test` fails on any new violation; `scripts/verify.sh` and the
//! CI `lint` job also run the `f4tlint` binary directly.

// f4tlint: allow-file(wall_clock): the linter times its own passes for
// `--timings`; nothing in this crate executes inside the simulation.

pub mod callgraph;
pub mod index;
pub mod lexer;
pub mod parse;
pub mod rules;

use crate::callgraph::CallGraph;
use crate::index::SymbolIndex;
use crate::lexer::SourceFile;
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The rules f4tlint knows, with one-line descriptions (`f4tlint --rules`).
pub const RULES: &[(&str, &str)] = &[
    ("wall_clock", "no std::time::Instant/SystemTime outside crates/bench"),
    ("raw_queue", "no VecDeque in crates/core|mem; on-chip queues use f4t_sim::Fifo"),
    ("panic_path", "no unwrap/expect/panic!-family in non-test crates/core code"),
    (
        "nondeterministic_iter",
        "no for-loops over HashMap/HashSet iterators anywhere; declared types tracked \
         workspace-wide from struct fields to use sites",
    ),
    (
        "panic_reachable",
        "no panic-family expression reachable from tick/tick_checked/ParallelRunner entry \
         points (call-graph BFS; crates/core is covered line-by-line by panic_path)",
    ),
    (
        "float_in_digest",
        "no f32/f64 arithmetic reachable from fold_digests/FNV/digest/merge entry points",
    ),
    (
        "shared_mut_across_shards",
        "no statics, Rc, non-Sync interior mutability or unsafe referenced from shard-worker \
         code (parallel.rs closures and everything they reach)",
    ),
    (
        "metric_name",
        "FtScope metric / FtFlight stage / FtJournal event names are dotted snake_case, unique per file",
    ),
    (
        "metrics_catalog",
        "every metric/stage/event literal matches an entry of METRICS.md (regenerate with \
         UPDATE_METRICS=1 cargo test --test metrics_catalog)",
    ),
    ("cargo_deps", "every Cargo.toml dependency is path/workspace (offline build)"),
    ("stale_allow", "allow directives that suppress zero findings are dead weight"),
];

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Path of the offending file (as given to the scanner).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule name (one of [`RULES`]).
    pub rule: &'static str,
    /// What went wrong and what to do instead.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// Everything the rule passes see: the lexed files, the manifests and
/// the METRICS.md catalog (when present).
pub struct Workspace {
    /// Every lexed source file.
    pub files: Vec<SourceFile>,
    /// `(label, contents)` of every Cargo.toml.
    pub manifests: Vec<(String, String)>,
    /// Metric names from METRICS.md (`None` when no catalog exists —
    /// the `metrics_catalog` rule then stays silent).
    pub catalog: Option<Vec<String>>,
}

/// A full scan result: findings plus per-pass timing.
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// `(pass, milliseconds)` per pass, in execution order.
    pub timings: Vec<(&'static str, f64)>,
    /// Number of `.rs` files lexed.
    pub files_scanned: usize,
}

fn timed<T>(
    timings: &mut Vec<(&'static str, f64)>,
    name: &'static str,
    f: impl FnOnce() -> T,
) -> T {
    let t0 = Instant::now();
    let v = f();
    timings.push((name, t0.elapsed().as_secs_f64() * 1000.0));
    v
}

/// Runs every pass over an already-loaded workspace.
pub fn run_passes(ws: &mut Workspace, timings: &mut Vec<(&'static str, f64)>) -> Vec<Finding> {
    let idx = timed(timings, "index", || SymbolIndex::build(&ws.files));
    let graph = timed(timings, "callgraph", || CallGraph::build(&ws.files, &idx));
    let mut findings = Vec::new();
    timed(timings, "wall_clock", || rules::wall_clock(ws, &mut findings));
    timed(timings, "raw_queue", || rules::raw_queue(ws, &mut findings));
    timed(timings, "panic_path", || rules::panic_path(ws, &mut findings));
    timed(timings, "nondeterministic_iter", || {
        rules::nondeterministic_iter(ws, &idx, &mut findings)
    });
    timed(timings, "panic_reachable", || {
        rules::panic_reachable(ws, &idx, &graph, &mut findings)
    });
    timed(timings, "float_in_digest", || {
        rules::float_in_digest(ws, &idx, &graph, &mut findings)
    });
    timed(timings, "shared_mut_across_shards", || {
        rules::shared_mut_across_shards(ws, &idx, &graph, &mut findings)
    });
    timed(timings, "metric_name", || rules::metric_name(ws, &idx, &mut findings));
    timed(timings, "metrics_catalog", || rules::metrics_catalog(ws, &idx, &mut findings));
    timed(timings, "cargo_deps", || rules::cargo_deps(ws, &mut findings));
    // Last: every suppressible rule has run, so use-tracking is final.
    timed(timings, "stale_allow", || rules::stale_allow(ws, &mut findings));
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
    findings
}

/// Scans a set of in-memory sources `(label, crate_name, src)` as one
/// workspace, with an optional metric catalog. Used by the fixture
/// self-tests; the cross-file rules see all files together.
pub fn scan_files(inputs: &[(&str, &str, &str)], catalog: Option<Vec<String>>) -> Vec<Finding> {
    let files = inputs
        .iter()
        .map(|(label, crate_name, src)| SourceFile::new(label, crate_name, src))
        .collect();
    let mut ws = Workspace { files, manifests: Vec::new(), catalog };
    let mut timings = Vec::new();
    run_passes(&mut ws, &mut timings)
}

/// Scans one Rust source file. `file` is the label used in findings,
/// `crate_name` selects which rules are in force. Cross-file resolution
/// sees only this file.
pub fn scan_source(file: &str, crate_name: &str, src: &str) -> Vec<Finding> {
    scan_files(&[(file, crate_name, src)], None)
}

/// Scans one `Cargo.toml`: every entry in a dependencies section must be a
/// `path =` or `workspace = true` dependency (the workspace builds with no
/// network access; see ROADMAP.md).
pub fn scan_manifest(file: &str, src: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut in_deps = false;
    for (i, line) in src.lines().enumerate() {
        let t = line.trim();
        if t.starts_with('[') {
            let section = t.trim_start_matches('[').trim_end_matches(']');
            in_deps = section == "dependencies"
                || section.ends_with(".dependencies")
                || section == "dev-dependencies"
                || section == "build-dependencies";
            continue;
        }
        if !in_deps || t.is_empty() || t.starts_with('#') {
            continue;
        }
        if t.contains("workspace = true") || t.contains("path =") {
            continue;
        }
        findings.push(Finding {
            file: file.into(),
            line: i + 1,
            rule: "cargo_deps",
            message: format!(
                "dependency entry `{t}` is not path/workspace; external crates are not \
                 available in this build environment"
            ),
        });
    }
    findings
}

// ---------------------------------------------------------------------------
// Workspace loader.
// ---------------------------------------------------------------------------

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut entries: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            // `fixtures` holds intentionally-violating inputs for the
            // lint self-tests; `target` is build output.
            if name != "fixtures" && name != "target" {
                walk_rs(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

fn load_tree(root: &Path, dir: &Path, crate_name: &str, files: &mut Vec<SourceFile>) {
    let mut paths = Vec::new();
    walk_rs(dir, &mut paths);
    for path in paths {
        let Ok(src) = std::fs::read_to_string(&path) else { continue };
        let label = path.strip_prefix(root).unwrap_or(&path).display().to_string();
        files.push(SourceFile::new(&label, crate_name, &src));
    }
}

/// Extracts metric names from METRICS.md table rows: the first
/// backtick-quoted cell of each `|`-row. Instance indices appear as the
/// literal `<i>` and are matched by code-side placeholders.
pub fn parse_catalog(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    for line in src.lines() {
        let t = line.trim();
        if !t.starts_with('|') {
            continue;
        }
        let Some(a) = t.find('`') else { continue };
        let Some(b) = t[a + 1..].find('`') else { continue };
        let name = &t[a + 1..a + 1 + b];
        if !name.is_empty() {
            out.push(name.to_string());
        }
    }
    out
}

/// Loads the whole workspace rooted at `root` (the directory holding the
/// top-level `Cargo.toml`): all crates under `crates/`, the facade
/// crate's `src/` / `tests/` / `examples/`, every manifest and the
/// METRICS.md catalog.
pub fn load_workspace(root: &Path) -> Workspace {
    let mut files = Vec::new();
    let mut manifests = Vec::new();
    let manifest = root.join("Cargo.toml");
    if let Ok(src) = std::fs::read_to_string(&manifest) {
        let label = manifest.strip_prefix(root).unwrap_or(&manifest).display().to_string();
        manifests.push((label, src));
    }
    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut dirs: Vec<PathBuf> =
            entries.flatten().map(|e| e.path()).filter(|p| p.is_dir()).collect();
        dirs.sort();
        for dir in dirs {
            let crate_name =
                dir.file_name().and_then(|n| n.to_str()).unwrap_or_default().to_string();
            let manifest = dir.join("Cargo.toml");
            if let Ok(src) = std::fs::read_to_string(&manifest) {
                let label =
                    manifest.strip_prefix(root).unwrap_or(&manifest).display().to_string();
                manifests.push((label, src));
            }
            load_tree(root, &dir, &crate_name, &mut files);
        }
    }
    // Facade crate sources and the workspace-level integration tests.
    load_tree(root, &root.join("src"), "f4t", &mut files);
    load_tree(root, &root.join("tests"), "f4t", &mut files);
    load_tree(root, &root.join("examples"), "f4t", &mut files);
    let catalog = std::fs::read_to_string(root.join("METRICS.md")).ok().map(|s| parse_catalog(&s));
    Workspace { files, manifests, catalog }
}

/// Scans the whole workspace rooted at `root`, with per-pass timing.
pub fn scan_workspace_report(root: &Path) -> Report {
    let mut timings = Vec::new();
    let mut ws = timed(&mut timings, "load", || load_workspace(root));
    let files_scanned = ws.files.len();
    let findings = run_passes(&mut ws, &mut timings);
    Report { findings, timings, files_scanned }
}

/// Scans the whole workspace rooted at `root` (findings only).
pub fn scan_workspace(root: &Path) -> Vec<Finding> {
    scan_workspace_report(root).findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(name: &str) -> String {
        let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures").join(name);
        std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
    }

    /// Findings of one rule, as (line, message) pairs.
    fn of<'a>(findings: &'a [Finding], rule: &str) -> Vec<&'a Finding> {
        findings.iter().filter(|f| f.rule == rule).collect()
    }

    fn lines(findings: &[&Finding]) -> Vec<usize> {
        findings.iter().map(|f| f.line).collect()
    }

    #[test]
    fn fixture_wall_clock_detected() {
        let all = scan_source("wall_clock.rs", "core", &fixture("wall_clock.rs"));
        let f = of(&all, "wall_clock");
        // The commented-out Instant and the one in a string do not count,
        // and the allow-listed one is exempt.
        assert_eq!(lines(&f), [5, 8], "{all:#?}");
        assert!(of(&all, "stale_allow").is_empty(), "{all:#?}");
    }

    #[test]
    fn fixture_raw_queue_detected_and_allow_listed() {
        let all = scan_source("raw_queue.rs", "core", &fixture("raw_queue.rs"));
        assert_eq!(lines(&of(&all, "raw_queue")), [8], "{all:#?}");
        // Out of scope for non-hardware crates (the unused allow then
        // surfaces as stale — which is correct: it suppresses nothing).
        let host = scan_source("raw_queue.rs", "host", &fixture("raw_queue.rs"));
        assert!(of(&host, "raw_queue").is_empty(), "{host:#?}");
    }

    #[test]
    fn fixture_panic_path_detected_outside_tests_only() {
        let all = scan_source("panic_path.rs", "core", &fixture("panic_path.rs"));
        let f = of(&all, "panic_path");
        assert_eq!(f.len(), 2, "{all:#?}");
        assert!(f.iter().all(|x| x.line < 20), "test-module panics exempt: {all:#?}");
    }

    #[test]
    fn fixture_nondeterministic_iter_detected() {
        let src = fixture("nondeterministic_iter.rs");
        let all = scan_source("nondeterministic_iter.rs", "core", &src);
        let f = of(&all, "nondeterministic_iter");
        // Field iter, method-chain iter, local binding, by-reference loop;
        // the allow-listed loop, the order-insensitive fold, the Vec loops
        // and the #[cfg(test)] loop are all exempt.
        assert_eq!(lines(&f), [12, 15, 19, 22], "{all:#?}");
        assert!(f[0].message.contains("nondeterministic"), "{all:#?}");
        assert!(of(&all, "stale_allow").is_empty(), "{all:#?}");
        // The rule is workspace-wide now: other crates are in scope too.
        let host = scan_source("nondeterministic_iter.rs", "host", &src);
        assert_eq!(of(&host, "nondeterministic_iter").len(), 4, "{host:#?}");
    }

    #[test]
    fn cross_file_field_type_flows_to_use_site() {
        let state = fixture("nondet_iter/state.rs");
        let routes = fixture("nondet_iter/routes.rs");
        let all = scan_files(
            &[
                ("crates/tcp/src/state.rs", "tcp", &state),
                ("crates/tcp/src/routes.rs", "tcp", &routes),
            ],
            None,
        );
        let f = of(&all, "nondeterministic_iter");
        // routes.rs never mentions HashMap; the field type flows from
        // state.rs through the symbol index to the loop in routes.rs.
        assert_eq!(f.len(), 1, "{all:#?}");
        assert_eq!(f[0].file, "crates/tcp/src/routes.rs", "{all:#?}");
        assert!(f[0].message.contains("state.rs"), "decl site named: {all:#?}");
        // A different crate with the same type name must NOT resolve.
        let other = scan_files(
            &[
                ("crates/tcp/src/state.rs", "tcp", &state),
                ("crates/host/src/routes.rs", "host", &routes),
            ],
            None,
        );
        assert!(of(&other, "nondeterministic_iter").is_empty(), "{other:#?}");
    }

    #[test]
    fn fixture_panic_reachable_detected() {
        let all = scan_source("panic_reachable.rs", "system", &fixture("panic_reachable.rs"));
        let f = of(&all, "panic_reachable");
        // The expect in drain_one (tick -> pump -> drain_one) and the
        // unwrap in pump; the panic in cold_init (unreachable from tick)
        // and the test-module unwrap are exempt.
        assert_eq!(f.len(), 2, "{all:#?}");
        assert!(
            f.iter().any(|x| x.message.contains("drain_one") && x.message.contains("tick")),
            "path rendered: {all:#?}"
        );
        assert!(of(&all, "stale_allow").is_empty(), "{all:#?}");
    }

    #[test]
    fn fixture_float_in_digest_detected() {
        let all = scan_source("float_digest.rs", "sim", &fixture("float_digest.rs"));
        let f = of(&all, "float_in_digest");
        // The f64 cast in weight() (fold_digests -> mix -> weight) and the
        // float literal in mix(); rate() floats are unreachable from any
        // digest entry point.
        assert_eq!(f.len(), 2, "{all:#?}");
        assert!(f.iter().any(|x| x.message.contains("fold_digests")), "{all:#?}");
    }

    #[test]
    fn fixture_shared_mut_detected() {
        let all = scan_source("shared_mut.rs", "system", &fixture("shared_mut.rs"));
        let f = of(&all, "shared_mut_across_shards");
        // The module-level static mut, the Rc inside the worker helper and
        // the unsafe block; the Rc in cold_setup (unreachable from any
        // worker) is exempt.
        assert_eq!(f.len(), 3, "{all:#?}");
        assert!(f.iter().any(|x| x.message.contains("static mut")), "{all:#?}");
        assert!(f.iter().any(|x| x.message.contains("Rc")), "{all:#?}");
    }

    #[test]
    fn fixture_metrics_catalog_detected() {
        let src = fixture("metrics_catalog.rs");
        let catalog = vec![
            "engine.rx.segments".to_string(),
            "engine.<i>.drops".to_string(),
            "engine.flight.rx_ingest.cycles".to_string(),
            "engine.journal.kind.tcb_migrate_start".to_string(),
            "engine.pulse.last.goodput_bytes".to_string(),
        ];
        let all = scan_files(&[("metrics_catalog.rs", "sim", &src)], Some(catalog));
        let f = of(&all, "metrics_catalog");
        // Exactly the three planted strays: the uncatalogued counter, the
        // uncatalogued stage name and the uncatalogued pulse series. The
        // catalogued counter, the placeholder-bearing gauge (matches
        // engine.<i>.drops), the catalogued event kind and the catalogued
        // pulse series are clean.
        assert_eq!(f.len(), 3, "{all:#?}");
        assert!(f.iter().any(|x| x.message.contains("engine.rx.bytes_total")), "{all:#?}");
        assert!(f.iter().any(|x| x.message.contains("tx_emit")), "{all:#?}");
        assert!(f.iter().any(|x| x.message.contains("bogus_series")), "{all:#?}");
        assert!(f[0].message.contains("UPDATE_METRICS=1"), "{all:#?}");
        // No catalog loaded -> rule stays silent.
        let silent = scan_files(&[("metrics_catalog.rs", "sim", &src)], None);
        assert!(of(&silent, "metrics_catalog").is_empty(), "{silent:#?}");
    }

    #[test]
    fn fixture_stale_allow_detected() {
        let all = scan_source("stale_allow.rs", "core", &fixture("stale_allow.rs"));
        let f = of(&all, "stale_allow");
        // The allow suppressing nothing and the allow naming an unknown
        // rule; the load-bearing allow (which suppresses a real VecDeque)
        // is exempt — and the VecDeque itself stays suppressed.
        assert_eq!(f.len(), 2, "{all:#?}");
        assert!(f.iter().any(|x| x.message.contains("suppresses no findings")), "{all:#?}");
        assert!(f.iter().any(|x| x.message.contains("unknown rule")), "{all:#?}");
        assert!(of(&all, "raw_queue").is_empty(), "{all:#?}");
    }

    #[test]
    fn fixture_metric_name_detected() {
        let all = scan_source("metric_name.rs", "sim", &fixture("metric_name.rs"));
        let f = of(&all, "metric_name");
        assert_eq!(f.len(), 5, "{all:#?}");
        assert!(f[0].message.contains("snake_case"), "{all:#?}");
        assert!(f[1].message.contains("already registered"), "{all:#?}");
        // FtFlight stage names go through the same rule via stage_name().
        assert!(f[2].message.contains("Rx-Ingest"), "{all:#?}");
        // FtJournal event names go through it via event_name() /
        // journal_event(); the well-formed literals around the bad one
        // must stay clean.
        assert!(f[3].message.contains("TcbMigrateStart"), "{all:#?}");
        // FtPulse series names go through it via series_name().
        assert!(f[4].message.contains("GoodputBytes"), "{all:#?}");
    }

    #[test]
    fn fixture_bad_manifest_detected() {
        let f = scan_manifest("bad_manifest.toml", &fixture("bad_manifest.toml"));
        assert!(f.iter().all(|x| x.rule == "cargo_deps"), "{f:#?}");
        assert_eq!(f.len(), 2, "{f:#?}");
    }

    #[test]
    fn allow_file_disables_rule() {
        let src = "// f4tlint: allow-file(raw_queue)\nstruct S { q: VecDeque<u32> }\n";
        assert!(scan_source("x.rs", "core", src).is_empty());
    }

    #[test]
    fn lexer_strips_strings_comments_and_lifetimes() {
        let src = r#"
let s = "panic!( inside a string";
// .unwrap() in a comment
/* .expect( in a block comment */
fn f<'a>(x: &'a str) -> char { 'x' }
"#;
        assert!(scan_source("x.rs", "core", src).is_empty());
    }

    #[test]
    fn callgraph_reachability_pinned() {
        // Pin the approximate call graph over a known shape: tick calls
        // pump (self method) and helper::assist (qualified free path);
        // pump calls drain (free); cold is never called.
        let src = "\
struct Node;
impl Node {
    fn tick(&mut self) {
        self.pump();
        helper::assist();
    }
    fn pump(&mut self) {
        drain();
    }
}
fn drain() {}
fn assist() {}
fn cold() {
    drain();
}
";
        let file = SourceFile::new("g.rs", "system", src);
        let files = vec![file];
        let idx = SymbolIndex::build(&files);
        let graph = CallGraph::build(&files, &idx);
        let by_name = |n: &str| {
            *idx.fns_named(n).first().unwrap_or_else(|| panic!("fn {n} not indexed"))
        };
        let (tick, pump, drain, assist, cold) =
            (by_name("tick"), by_name("pump"), by_name("drain"), by_name("assist"), by_name("cold"));
        let pred = graph.reachable_from(&[tick]);
        assert!(pred[tick].is_some() && pred[pump].is_some(), "direct + self-method edges");
        assert!(pred[drain].is_some(), "transitive through pump");
        assert!(pred[assist].is_some(), "lowercase-qualified path resolves to free fn");
        assert!(pred[cold].is_none(), "cold is not reachable from tick");
        let path = graph.path_to_entry(&idx, &pred, drain);
        assert_eq!(path, "drain <- Node::pump <- Node::tick", "{path}");
    }

    #[test]
    fn catalog_parses_table_rows() {
        let md = "# Catalog\n\n| name | kind |\n|---|---|\n| `engine.cycles` | counter |\n| `engine.<i>.drops` | counter |\n";
        assert_eq!(parse_catalog(md), ["engine.cycles", "engine.<i>.drops"]);
    }

    #[test]
    fn workspace_is_clean() {
        // The lint enforces itself: any new violation in the real tree
        // fails `cargo test -p f4t-lint`.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap();
        let findings = scan_workspace(root);
        assert!(
            findings.is_empty(),
            "f4tlint found {} violation(s):\n{}",
            findings.len(),
            findings.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
        );
    }

    #[test]
    fn full_scan_fits_ci_budget() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap();
        let report = scan_workspace_report(root);
        assert!(report.files_scanned > 20, "walker found the tree: {}", report.files_scanned);
        let total_ms: f64 = report.timings.iter().map(|(_, ms)| ms).sum();
        // CI budget is 10s for the whole binary; the library passes must
        // stay an order of magnitude under that even on debug builds.
        assert!(total_ms < 10_000.0, "lint passes took {total_ms:.0} ms: {:?}", report.timings);
    }
}
