//! Pass 4 — the approximate call graph.
//!
//! Edges come from syntactic call sites in each function body, resolved
//! against the symbol index:
//!
//! * `self.name(…)` — methods of the enclosing impl type;
//! * `Type::name(…)` — methods of that impl type (no edge for foreign
//!   types such as `Vec`), lowercase qualifiers (`module::name(…)`)
//!   fall back to free functions by name;
//! * `recv.name(…)` — **every** workspace method with that name (the
//!   receiver's type is unknown, so reachability over-approximates —
//!   the safe direction for `panic_reachable`-style rules);
//! * `name(…)` — free functions by name.
//!
//! Macros (`name!(…)`) and keywords never produce edges; closure bodies
//! belong to their lexically enclosing function.

use crate::index::{FnId, SymbolIndex};
use crate::lexer::{trailing_ident, SourceFile};
use std::collections::VecDeque;

const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "in", "fn", "loop", "as", "let", "mut", "impl",
    "ref", "move", "dyn", "where", "else", "break", "continue", "unsafe", "pub", "use", "mod",
    "crate", "super", "Some", "None", "Ok", "Err",
];

/// One syntactic call site.
enum Call {
    SelfMethod(String),
    Method(String),
    Qualified(String, String),
    Free(String),
}

/// Extracts call sites from one stripped code line.
fn calls_on_line(line: &str, out: &mut Vec<Call>) {
    for (pos, _) in line.match_indices('(') {
        let before = &line[..pos];
        let name = trailing_ident(before);
        if name.is_empty() || KEYWORDS.contains(&name.as_str()) {
            continue;
        }
        if name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            continue;
        }
        let prefix = &before[..before.len() - name.len()];
        if let Some(p) = prefix.strip_suffix('.') {
            if trailing_ident(p) == "self" && p.ends_with("self") {
                out.push(Call::SelfMethod(name));
            } else {
                out.push(Call::Method(name));
            }
        } else if let Some(p) = prefix.strip_suffix("::") {
            let qual = trailing_ident(p);
            out.push(Call::Qualified(qual, name));
        } else if prefix.ends_with("fn ") || prefix.ends_with("fn") {
            // Definition site, not a call.
        } else {
            out.push(Call::Free(name));
        }
    }
}

/// The workspace call graph: `edges[f]` are the functions `f` may call.
pub struct CallGraph {
    /// Outgoing edges per function (deduplicated, sorted).
    pub edges: Vec<Vec<FnId>>,
}

impl CallGraph {
    /// Builds edges for every function body.
    pub fn build(files: &[SourceFile], idx: &SymbolIndex) -> CallGraph {
        let mut edges: Vec<Vec<FnId>> = vec![Vec::new(); idx.fns.len()];
        let mut sites = Vec::new();
        for (id, f) in idx.fns.iter().enumerate() {
            let Some((start, end)) = f.body else { continue };
            let file = &files[f.file];
            sites.clear();
            for line in file.code.iter().take(end + 1).skip(start) {
                calls_on_line(line, &mut sites);
            }
            let out = &mut edges[id];
            for call in sites.drain(..) {
                match call {
                    Call::SelfMethod(name) => {
                        if let Some(ty) = &f.impl_type {
                            out.extend_from_slice(idx.methods_of(ty, &name));
                        } else {
                            out.extend_from_slice(idx.methods_named(&name));
                        }
                    }
                    Call::Method(name) => out.extend_from_slice(idx.methods_named(&name)),
                    Call::Qualified(qual, name) => {
                        if qual.chars().next().is_some_and(char::is_uppercase) {
                            out.extend_from_slice(idx.methods_of(&qual, &name));
                        } else {
                            out.extend_from_slice(idx.free_fns_named(&name));
                        }
                    }
                    Call::Free(name) => out.extend_from_slice(idx.free_fns_named(&name)),
                }
            }
            out.sort_unstable();
            out.dedup();
        }
        CallGraph { edges }
    }

    /// BFS from `entries`; returns `pred[f] = Some(parent)` for every
    /// reached function (an entry is its own parent). Unreached
    /// functions stay `None`.
    pub fn reachable_from(&self, entries: &[FnId]) -> Vec<Option<FnId>> {
        let mut pred: Vec<Option<FnId>> = vec![None; self.edges.len()];
        let mut queue = VecDeque::new();
        for &e in entries {
            if e < pred.len() && pred[e].is_none() {
                pred[e] = Some(e);
                queue.push_back(e);
            }
        }
        while let Some(f) = queue.pop_front() {
            for &g in &self.edges[f] {
                if pred[g].is_none() {
                    pred[g] = Some(f);
                    queue.push_back(g);
                }
            }
        }
        pred
    }

    /// Renders a short `callee ← … ← entry` chain for finding messages.
    pub fn path_to_entry(
        &self,
        idx: &SymbolIndex,
        pred: &[Option<FnId>],
        mut f: FnId,
    ) -> String {
        let mut parts = Vec::new();
        for _ in 0..6 {
            parts.push(qualified_name(idx, f));
            match pred[f] {
                Some(p) if p != f => f = p,
                _ => break,
            }
        }
        if pred[f] != Some(f) && parts.len() == 6 {
            parts.push("…".to_string());
        }
        parts.join(" <- ")
    }
}

/// `Type::name` or `name` for messages.
pub fn qualified_name(idx: &SymbolIndex, f: FnId) -> String {
    let r = &idx.fns[f];
    match &r.impl_type {
        Some(t) => format!("{t}::{}", r.name),
        None => r.name.clone(),
    }
}
