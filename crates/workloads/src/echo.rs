//! The echo (ping-pong) connectivity benchmark (§5.3, Fig. 13).
//!
//! "An echoing benchmark that sends a 128 B payload when it receives a
//! message from the other... each flow has to wait for a response to send
//! the next message. Thus, the TCB access pattern has a very low temporal
//! locality and results in the worst-case performance when utilizing
//! DRAM."

use f4t_host::{F4tLib, SendError};
use f4t_sim::Histogram;
use f4t_tcp::{FlowId, SeqNum};
use std::collections::HashMap;

/// Per-flow client state.
#[derive(Debug, Clone, Copy)]
struct PingState {
    /// Response pointer we are waiting for.
    expect: SeqNum,
    /// When the outstanding ping was sent (ns); 0 = none outstanding.
    sent_ns: u64,
    /// Earliest time the next ping may be sent (open-loop pacing).
    next_send_ns: u64,
}

/// The echo client: keeps exactly one message outstanding per flow.
#[derive(Debug)]
pub struct EchoClient {
    msg_bytes: u32,
    states: HashMap<FlowId, PingState>,
    /// Minimum gap between a flow's consecutive pings (0 = closed loop).
    pace_ns: u64,
    /// Round-trip latency per message, in nanoseconds.
    pub latency: Histogram,
    completed: u64,
}

impl EchoClient {
    /// Creates a closed-loop client over `flows`, each registered in
    /// `lib` already.
    pub fn new(flows: &[FlowId], msg_bytes: u32, lib: &F4tLib) -> EchoClient {
        EchoClient::with_pace(flows, msg_bytes, lib, 0)
    }

    /// Creates a client that paces each flow to at most one ping per
    /// `pace_ns` (an open-loop offered load; 0 = closed loop).
    pub fn with_pace(
        flows: &[FlowId],
        msg_bytes: u32,
        lib: &F4tLib,
        pace_ns: u64,
    ) -> EchoClient {
        let states = flows
            .iter()
            .map(|&f| {
                let isn = lib.socket(f).map(|s| s.consumed).unwrap_or(SeqNum::ZERO);
                (f, PingState { expect: isn, sent_ns: 0, next_send_ns: 0 })
            })
            .collect();
        EchoClient { msg_bytes, states, pace_ns, latency: Histogram::new(), completed: 0 }
    }

    /// Drives one flow: if its response arrived, consume it, record
    /// latency and send the next ping; if idle, send the first ping.
    /// Returns `true` when a send was issued (library-call cost).
    pub fn step_flow(&mut self, flow: FlowId, lib: &mut F4tLib, now_ns: u64) -> bool {
        let Some(st) = self.states.get_mut(&flow) else { return false };
        if st.sent_ns != 0 {
            // Waiting: has the echo come back?
            let Some(sock) = lib.socket(flow) else { return false };
            if sock.received.ge(st.expect) {
                lib.recv(flow, self.msg_bytes);
                self.latency.record(now_ns.saturating_sub(st.sent_ns));
                self.completed += 1;
                st.sent_ns = 0;
            } else {
                return false;
            }
        }
        // Pacing gate (open-loop mode).
        if self.states.get(&flow).is_some_and(|st| now_ns < st.next_send_ns) {
            return false;
        }
        // Send the next ping.
        match lib.send(flow, self.msg_bytes) {
            Ok(_) => {
                if let Some(st) = self.states.get_mut(&flow) {
                    st.expect = st.expect.add(self.msg_bytes);
                    st.sent_ns = now_ns.max(1);
                    st.next_send_ns = now_ns + self.pace_ns;
                }
                true
            }
            Err(SendError::BufferFull | SendError::QueueFull) => false,
            Err(_) => false,
        }
    }

    /// Completed round trips.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Earliest future send deadline across idle flows (the timer a
    /// sleeping thread must arm before blocking), if any.
    pub fn earliest_deadline(&self) -> Option<u64> {
        self.states
            .values()
            .filter(|st| st.sent_ns == 0 && st.next_send_ns > 0)
            .map(|st| st.next_send_ns)
            .min()
    }
}

/// The echo server: answers every complete message with a same-sized
/// reply.
#[derive(Debug)]
pub struct EchoServer {
    msg_bytes: u32,
    replies: u64,
}

impl EchoServer {
    /// Creates a server echoing `msg_bytes`-sized messages.
    pub fn new(msg_bytes: u32) -> EchoServer {
        EchoServer { msg_bytes, replies: 0 }
    }

    /// Serves one flow: consume a complete message and reply. Returns
    /// `true` when a reply was sent.
    pub fn step_flow(&mut self, flow: FlowId, lib: &mut F4tLib) -> bool {
        let Some(sock) = lib.socket(flow) else { return false };
        if sock.readable() < self.msg_bytes {
            return false;
        }
        lib.recv(flow, self.msg_bytes);
        if lib.send(flow, self.msg_bytes).is_ok() {
            self.replies += 1;
            true
        } else {
            false
        }
    }

    /// Replies sent.
    pub fn replies(&self) -> u64 {
        self.replies
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f4t_host::Completion;

    fn lib_with(flows: &[u32]) -> F4tLib {
        let mut lib = F4tLib::new();
        for &f in flows {
            lib.register(FlowId(f), SeqNum(0), true);
        }
        lib
    }

    #[test]
    fn client_one_outstanding_per_flow() {
        let mut lib = lib_with(&[1]);
        let mut c = EchoClient::new(&[FlowId(1)], 128, &lib);
        assert!(c.step_flow(FlowId(1), &mut lib, 1000), "first ping sent");
        assert!(!c.step_flow(FlowId(1), &mut lib, 2000), "waits for the echo");
        assert_eq!(lib.socket(FlowId(1)).unwrap().req, SeqNum(128), "exactly one message out");
    }

    #[test]
    fn round_trip_records_latency() {
        let mut lib = lib_with(&[1]);
        let mut c = EchoClient::new(&[FlowId(1)], 128, &lib);
        c.step_flow(FlowId(1), &mut lib, 1_000);
        // Echo arrives 5 µs later.
        lib.on_completion(Completion::Received { flow: FlowId(1), upto: SeqNum(128) });
        assert!(c.step_flow(FlowId(1), &mut lib, 6_000), "next ping sent");
        assert_eq!(c.completed(), 1);
        assert_eq!(c.latency.count(), 1);
        assert!((4_000..=5_100).contains(&c.latency.percentile(50.0)));
        assert_eq!(lib.socket(FlowId(1)).unwrap().req, SeqNum(256));
    }

    #[test]
    fn server_echoes_complete_messages_only() {
        let mut lib = lib_with(&[7]);
        let mut s = EchoServer::new(128);
        assert!(!s.step_flow(FlowId(7), &mut lib), "nothing readable");
        lib.on_completion(Completion::Received { flow: FlowId(7), upto: SeqNum(100) });
        assert!(!s.step_flow(FlowId(7), &mut lib), "partial message");
        lib.on_completion(Completion::Received { flow: FlowId(7), upto: SeqNum(128) });
        assert!(s.step_flow(FlowId(7), &mut lib));
        assert_eq!(s.replies(), 1);
        assert_eq!(lib.socket(FlowId(7)).unwrap().req, SeqNum(128), "reply queued");
    }

    #[test]
    fn pacing_gates_next_ping() {
        let mut lib = lib_with(&[1]);
        let mut c = EchoClient::with_pace(&[FlowId(1)], 128, &lib, 10_000);
        assert!(c.step_flow(FlowId(1), &mut lib, 1_000), "first ping immediate");
        lib.on_completion(Completion::Received { flow: FlowId(1), upto: SeqNum(128) });
        // Response consumed, but the pacing gate holds the next ping.
        assert!(!c.step_flow(FlowId(1), &mut lib, 5_000));
        assert_eq!(c.completed(), 1, "round trip still recorded");
        assert_eq!(c.earliest_deadline(), Some(11_000), "sleep timer target");
        assert!(c.step_flow(FlowId(1), &mut lib, 11_000), "gate opens on time");
        assert_eq!(c.earliest_deadline(), None, "ping outstanding again");
    }

    #[test]
    fn many_flows_independent() {
        let ids: Vec<u32> = (0..100).collect();
        let mut lib = lib_with(&ids);
        let flows: Vec<FlowId> = ids.iter().map(|&i| FlowId(i)).collect();
        let mut c = EchoClient::new(&flows, 128, &lib);
        for &f in &flows {
            assert!(c.step_flow(f, &mut lib, 10));
        }
        // Echo half of them.
        for i in 0..50 {
            lib.on_completion(Completion::Received { flow: FlowId(i), upto: SeqNum(128) });
        }
        let mut progressed = 0;
        for &f in &flows {
            if c.step_flow(f, &mut lib, 20_000) {
                progressed += 1;
            }
        }
        assert_eq!(progressed, 50);
        assert_eq!(c.completed(), 50);
    }
}
