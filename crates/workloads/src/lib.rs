#![warn(missing_docs)]
//! # f4t-workloads — the evaluation's application workloads
//!
//! Drivers reproducing the paper's workload suite, written against the
//! F4T library's socket API (`f4t-host::F4tLib`) so the system simulator
//! can run them unchanged on any core:
//!
//! * [`BulkSender`] / [`BulkReceiver`] — iperf-style bulk data transfer,
//!   one flow per core issuing fixed-size send requests (§5.1, Figs. 2,
//!   8a, 9, 16).
//! * [`RoundRobinSender`] — "each CPU core generates send requests in a
//!   round-robin manner for 16 flows. Each CPU core uses a distinct set
//!   of 16 flows" (§5.1, Fig. 8b).
//! * [`EchoClient`] / [`EchoServer`] — the 128 B ping-pong connectivity
//!   benchmark where "each flow has to wait for a response to send the
//!   next message", giving the worst-case TCB locality (§5.3, Fig. 13).
//! * [`HttpClient`] / [`HttpServer`] — the wrk + Nginx pair: closed-loop
//!   HTTP requests answered with 256 B responses, the server paying
//!   application + VFS cycles per request (§5.2, Figs. 1, 10–12).
//! * [`storm`] — the FtStorm hostile-scenario drivers: synchronized
//!   incast fan-in, sustained connect/close churn, and slowloris-style
//!   near-idle residency (DESIGN.md §14).
//!
//! Every driver is pure bookkeeping over library pointers; CPU cycle
//! costs are returned to the caller (the per-core loop in `f4t-system`)
//! so utilization accounting stays in one place.

pub mod bulk;
pub mod echo;
pub mod http;
pub mod round_robin;
pub mod storm;

pub use bulk::{BulkReceiver, BulkSender};
pub use echo::{EchoClient, EchoServer};
pub use http::{HttpClient, HttpServer, NGINX_RESPONSE_BYTES, WRK_REQUEST_BYTES};
pub use round_robin::RoundRobinSender;
pub use storm::{
    ChurnClient, ChurnServer, IncastSender, SinkServer, SlowlorisClient, CHURN_REQUEST_BYTES,
    INCAST_BURST_BYTES, INCAST_EPOCH_NS, SLOWLORIS_DRIP_BYTES,
};

/// The default echo/ping-pong message size (§5.3).
pub const ECHO_MSG_BYTES: u32 = 128;
