//! FtStorm hostile-scenario drivers (DESIGN.md §14).
//!
//! Four traffic shapes that stress exactly the control paths bulk/echo
//! workloads never touch:
//!
//! * [`IncastSender`] — N-to-1 fan-in with synchronized request release:
//!   every epoch boundary all senders fire one burst at the same
//!   receiver, recreating the classic partition-aggregate incast that
//!   fills the bottleneck queue in one RTT.
//! * [`SinkServer`] — the fan-in receiver: drains whatever is readable,
//!   opening the window as fast as the core allows.
//! * [`ChurnClient`] / [`ChurnServer`] — sustained connect/close
//!   cycling: each client connection sends one small request and
//!   actively closes; the server drains and passively closes on FIN.
//!   Exercises handshake, teardown, flow-id reuse and LUT recycling at
//!   steady state.
//! * [`SlowlorisClient`] — thousands of near-idle connections dripping
//!   a few bytes at a long interval, holding TCB and LUT residency with
//!   almost no data-path load.
//!
//! Like every other driver, these are pure bookkeeping over F4T library
//! pointers; cycle costs stay with the per-core loop in `f4t-system`.

use f4t_host::{F4tLib, SendError};
use f4t_tcp::FlowId;
use std::collections::HashMap;

/// Default incast burst payload per sender per epoch.
pub const INCAST_BURST_BYTES: u32 = 2_048;
/// Default incast epoch (synchronized release period).
pub const INCAST_EPOCH_NS: u64 = 100_000;
/// Request each churn connection sends before closing.
pub const CHURN_REQUEST_BYTES: u32 = 256;
/// Bytes a slowloris connection drips per interval.
pub const SLOWLORIS_DRIP_BYTES: u32 = 8;

/// N-to-1 fan-in sender: all flows release one burst at every epoch
/// boundary (partition-aggregate style synchronized incast).
#[derive(Debug)]
pub struct IncastSender {
    flows: Vec<FlowId>,
    /// Which flows still owe this epoch's burst.
    pending: Vec<bool>,
    cursor: usize,
    burst_bytes: u32,
    epoch_ns: u64,
    epoch: u64,
    sent: u64,
}

impl IncastSender {
    /// Creates a sender over established `flows` releasing `burst_bytes`
    /// per flow every `epoch_ns`.
    pub fn new(flows: Vec<FlowId>, burst_bytes: u32, epoch_ns: u64) -> IncastSender {
        let n = flows.len();
        IncastSender {
            flows,
            pending: vec![false; n],
            cursor: 0,
            burst_bytes,
            epoch_ns: epoch_ns.max(1),
            epoch: u64::MAX,
            sent: 0,
        }
    }

    /// Issues at most one burst send. Returns `true` when a send was
    /// issued (the caller charges one command's worth of cycles).
    pub fn step(&mut self, lib: &mut F4tLib, now_ns: u64) -> bool {
        let epoch = now_ns / self.epoch_ns;
        if epoch != self.epoch {
            // Epoch boundary: every flow re-arms, releases synchronize.
            self.epoch = epoch;
            self.pending.fill(true);
            self.cursor = 0;
        }
        while self.cursor < self.flows.len() {
            let i = self.cursor;
            if !self.pending[i] {
                self.cursor += 1;
                continue;
            }
            match lib.send(self.flows[i], self.burst_bytes) {
                Ok(_) => {
                    self.pending[i] = false;
                    self.cursor += 1;
                    self.sent += 1;
                    return true;
                }
                // Backpressured: retry the same flow on the next step so
                // the release order stays deterministic.
                Err(SendError::BufferFull | SendError::QueueFull) => return false,
                Err(_) => {
                    self.pending[i] = false;
                    self.cursor += 1;
                }
            }
        }
        false
    }

    /// Burst sends issued.
    pub fn requests(&self) -> u64 {
        self.sent
    }
}

/// The fan-in receiver: drains readable bytes, opening the window.
#[derive(Debug, Default)]
pub struct SinkServer {
    consumed: u64,
}

impl SinkServer {
    /// Creates a sink.
    pub fn new() -> SinkServer {
        SinkServer::default()
    }

    /// Drains one flow's readable bytes; `true` when bytes were taken.
    pub fn step_flow(&mut self, flow: FlowId, lib: &mut F4tLib) -> bool {
        let Some(sock) = lib.socket(flow) else { return false };
        let readable = sock.readable();
        if readable == 0 {
            return false;
        }
        let took = lib.recv(flow, readable);
        self.consumed += u64::from(took);
        took > 0
    }

    /// Total bytes consumed.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }
}

/// Lifecycle of one churning client connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ChurnPhase {
    /// Waiting for the handshake to complete.
    AwaitConnect,
    /// Connected; the request send is still owed (backpressure retry).
    NeedSend,
    /// Request sent; the close command is still owed.
    NeedClose,
    /// Close issued; waiting for the engine's Closed notification.
    Closing,
}

/// Connect → one request → close, forever. Flow membership is dynamic:
/// the system-level churn manager announces opens via [`Self::on_open`]
/// and the node reports engine teardown via [`Self::on_closed`].
#[derive(Debug)]
pub struct ChurnClient {
    req_bytes: u32,
    states: HashMap<FlowId, ChurnPhase>,
    opened: u64,
    completed: u64,
}

impl ChurnClient {
    /// Creates a client whose connections each send `req_bytes`.
    pub fn new(req_bytes: u32) -> ChurnClient {
        ChurnClient { req_bytes, states: HashMap::new(), opened: 0, completed: 0 }
    }

    /// A new connection attempt was issued for `flow`.
    pub fn on_open(&mut self, flow: FlowId) {
        self.states.insert(flow, ChurnPhase::AwaitConnect);
        self.opened += 1;
    }

    /// The engine tore `flow` down; its lifecycle is complete.
    pub fn on_closed(&mut self, flow: FlowId) {
        if self.states.remove(&flow).is_some() {
            self.completed += 1;
        }
    }

    /// Advances one connection. Returns `true` when a command was issued.
    pub fn step_flow(&mut self, flow: FlowId, lib: &mut F4tLib) -> bool {
        let Some(phase) = self.states.get_mut(&flow) else { return false };
        if *phase == ChurnPhase::AwaitConnect {
            if !lib.socket(flow).is_some_and(|s| s.connected) {
                return false;
            }
            *phase = ChurnPhase::NeedSend;
        }
        if *phase == ChurnPhase::NeedSend {
            match lib.send(flow, self.req_bytes) {
                Ok(_) => *phase = ChurnPhase::NeedClose,
                Err(SendError::BufferFull | SendError::QueueFull) => return false,
                Err(_) => return false,
            }
        }
        if *phase == ChurnPhase::NeedClose {
            if lib.close(flow).is_err() {
                // Queue full: the send above may still have gone out;
                // report work done and retry the close on a later step.
                return true;
            }
            *phase = ChurnPhase::Closing;
            return true;
        }
        false
    }

    /// Connections opened so far.
    pub fn opened(&self) -> u64 {
        self.opened
    }

    /// Connections that completed the full open→request→close cycle.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Connections currently somewhere in their lifecycle.
    pub fn live(&self) -> usize {
        self.states.len()
    }
}

/// Per-connection server bookkeeping.
#[derive(Debug, Clone, Copy)]
struct ChurnServerConn {
    close_sent: bool,
}

/// Accept → drain → passive-close on FIN. Membership is dynamic, driven
/// by [`Self::on_accept`] / [`Self::on_closed`] from the node.
#[derive(Debug, Default)]
pub struct ChurnServer {
    conns: HashMap<FlowId, ChurnServerConn>,
    consumed: u64,
    served: u64,
}

impl ChurnServer {
    /// Creates a server.
    pub fn new() -> ChurnServer {
        ChurnServer::default()
    }

    /// The engine accepted a new connection on this core.
    pub fn on_accept(&mut self, flow: FlowId) {
        self.conns.insert(flow, ChurnServerConn { close_sent: false });
    }

    /// The engine tore `flow` down.
    pub fn on_closed(&mut self, flow: FlowId) {
        if self.conns.remove(&flow).is_some() {
            self.served += 1;
        }
    }

    /// Drains readable data and answers the peer's FIN with a close.
    pub fn step_flow(&mut self, flow: FlowId, lib: &mut F4tLib) -> bool {
        let Some(conn) = self.conns.get_mut(&flow) else { return false };
        let Some(sock) = lib.socket(flow).copied() else { return false };
        let mut did_work = false;
        if sock.readable() > 0 {
            let took = lib.recv(flow, sock.readable());
            self.consumed += u64::from(took);
            did_work = took > 0;
        }
        if sock.eof && !conn.close_sent && lib.close(flow).is_ok() {
            conn.close_sent = true;
            did_work = true;
        }
        did_work
    }

    /// Connections fully served (accepted through closed).
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Bytes drained from churning connections.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Connections currently open.
    pub fn live(&self) -> usize {
        self.conns.len()
    }
}

/// Thousands of near-idle connections each dripping a few bytes at a
/// long interval — the residency stressor: every flow stays established
/// (TCB + LUT entries pinned) while the data path is almost unloaded.
#[derive(Debug)]
pub struct SlowlorisClient {
    flows: Vec<FlowId>,
    cursor: usize,
    drip_bytes: u32,
    interval_ns: u64,
    next_drip_ns: u64,
    drips: u64,
}

impl SlowlorisClient {
    /// Creates a dripper over established `flows`: one flow sends
    /// `drip_bytes` every `interval_ns` (cursor rotation, so each flow
    /// transmits every `flows.len() * interval_ns`).
    pub fn new(flows: Vec<FlowId>, drip_bytes: u32, interval_ns: u64) -> SlowlorisClient {
        SlowlorisClient {
            flows,
            cursor: 0,
            drip_bytes,
            interval_ns: interval_ns.max(1),
            next_drip_ns: 0,
            drips: 0,
        }
    }

    /// Issues at most one drip. Returns `true` when a send was issued.
    pub fn step(&mut self, lib: &mut F4tLib, now_ns: u64) -> bool {
        if self.flows.is_empty() || now_ns < self.next_drip_ns {
            return false;
        }
        let flow = self.flows[self.cursor % self.flows.len()];
        self.cursor += 1;
        match lib.send(flow, self.drip_bytes) {
            Ok(_) => {
                self.next_drip_ns = now_ns + self.interval_ns;
                self.drips += 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Drip sends issued.
    pub fn requests(&self) -> u64 {
        self.drips
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f4t_host::Completion;
    use f4t_tcp::SeqNum;

    fn lib_with_flows(n: u32) -> (F4tLib, Vec<FlowId>) {
        let mut lib = F4tLib::new();
        let flows: Vec<FlowId> = (0..n).map(FlowId).collect();
        for &f in &flows {
            lib.register(f, SeqNum(0), true);
        }
        (lib, flows)
    }

    #[test]
    fn incast_releases_one_burst_per_flow_per_epoch() {
        let (mut lib, flows) = lib_with_flows(4);
        let mut inc = IncastSender::new(flows.clone(), 512, 10_000);
        // Epoch 0: four sends then quiescent.
        for _ in 0..4 {
            assert!(inc.step(&mut lib, 100));
        }
        assert!(!inc.step(&mut lib, 5_000), "epoch burst exhausted");
        assert_eq!(inc.requests(), 4);
        // Next epoch re-arms every flow: the release restarts at flow 0.
        assert!(inc.step(&mut lib, 10_001));
        assert_eq!(lib.socket(flows[0]).unwrap().req, SeqNum(1_024));
        for &f in &flows[1..] {
            assert_eq!(lib.socket(f).unwrap().req, SeqNum(512));
        }
    }

    #[test]
    fn incast_retries_backpressured_flow_in_order() {
        let (mut lib, flows) = lib_with_flows(2);
        let mut inc = IncastSender::new(flows.clone(), f4t_tcp::TCP_BUFFER, 10_000);
        assert!(inc.step(&mut lib, 0), "first flow's buffer has room");
        assert!(inc.step(&mut lib, 0), "second flow too");
        assert!(!inc.step(&mut lib, 10_500), "both buffers now full");
        // ACK flow 0's data: the retry targets it first (deterministic).
        lib.on_completion(Completion::Acked { flow: flows[0], upto: SeqNum(f4t_tcp::TCP_BUFFER) });
        assert!(inc.step(&mut lib, 10_600));
        assert_eq!(lib.socket(flows[0]).unwrap().req.since(SeqNum(0)), 2 * f4t_tcp::TCP_BUFFER);
    }

    #[test]
    fn sink_drains_readable() {
        let (mut lib, flows) = lib_with_flows(1);
        let mut sink = SinkServer::new();
        assert!(!sink.step_flow(flows[0], &mut lib), "nothing readable");
        lib.on_completion(Completion::Received { flow: flows[0], upto: SeqNum(900) });
        assert!(sink.step_flow(flows[0], &mut lib));
        assert_eq!(sink.consumed(), 900);
        assert_eq!(lib.socket(flows[0]).unwrap().readable(), 0);
    }

    #[test]
    fn churn_client_lifecycle() {
        let mut lib = F4tLib::new();
        let flow = FlowId(3);
        let mut client = ChurnClient::new(CHURN_REQUEST_BYTES);
        lib.register(flow, SeqNum(0), false);
        client.on_open(flow);
        assert_eq!(client.live(), 1);
        assert!(!client.step_flow(flow, &mut lib), "handshake not done");
        lib.on_completion(Completion::Connected { flow });
        assert!(client.step_flow(flow, &mut lib), "request + close issued");
        assert_eq!(lib.socket(flow).unwrap().req, SeqNum(CHURN_REQUEST_BYTES));
        assert!(!client.step_flow(flow, &mut lib), "closing: nothing left");
        client.on_closed(flow);
        assert_eq!(client.completed(), 1);
        assert_eq!(client.live(), 0);
        assert!(!client.step_flow(flow, &mut lib), "forgotten flow is inert");
    }

    #[test]
    fn churn_server_drains_and_closes_on_fin() {
        let mut lib = F4tLib::new();
        let flow = FlowId(9);
        let mut server = ChurnServer::new();
        lib.register_accepted(flow, SeqNum(7_000), SeqNum(2_000));
        server.on_accept(flow);
        lib.on_completion(Completion::Received { flow, upto: SeqNum(2_000 + 256) });
        assert!(server.step_flow(flow, &mut lib));
        assert_eq!(server.consumed(), 256);
        lib.on_completion(Completion::Eof { flow });
        assert!(server.step_flow(flow, &mut lib), "close answers the FIN");
        assert!(!server.step_flow(flow, &mut lib), "close sent only once");
        server.on_closed(flow);
        assert_eq!(server.served(), 1);
        assert_eq!(server.live(), 0);
    }

    #[test]
    fn slowloris_paces_drips_across_flows() {
        let (mut lib, flows) = lib_with_flows(3);
        let mut slow = SlowlorisClient::new(flows.clone(), SLOWLORIS_DRIP_BYTES, 1_000);
        assert!(slow.step(&mut lib, 0));
        assert!(!slow.step(&mut lib, 500), "interval not elapsed");
        assert!(slow.step(&mut lib, 1_000));
        assert!(slow.step(&mut lib, 2_000));
        assert_eq!(slow.requests(), 3);
        // Cursor rotated: each flow got exactly one drip.
        for &f in &flows {
            assert_eq!(lib.socket(f).unwrap().req, SeqNum(SLOWLORIS_DRIP_BYTES));
        }
    }
}
