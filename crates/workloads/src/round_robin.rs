//! The round-robin multi-flow request pattern (§5.1, Fig. 8b).

use f4t_host::{F4tLib, SendError};
use f4t_tcp::FlowId;

/// A sender that rotates fixed-size requests across its flow set, so
/// "adjacent requests in each queue are from different flows" — the
/// pattern that defeats both the scheduler's coalescing and the FPC's
/// same-flow accumulation, exercising multi-flow throughput.
#[derive(Debug)]
pub struct RoundRobinSender {
    flows: Vec<FlowId>,
    next: usize,
    request_bytes: u32,
    requests: u64,
    blocked: u64,
}

impl RoundRobinSender {
    /// Creates a sender over `flows` (the paper uses 16 per core).
    ///
    /// # Panics
    ///
    /// Panics if `flows` is empty or `request_bytes` is zero.
    pub fn new(flows: Vec<FlowId>, request_bytes: u32) -> RoundRobinSender {
        assert!(!flows.is_empty(), "need at least one flow");
        assert!(request_bytes > 0, "request size must be non-zero");
        RoundRobinSender { flows, next: 0, request_bytes, requests: 0, blocked: 0 }
    }

    /// Attempts one `send()` on the next flow in rotation; a blocked flow
    /// is skipped (the next call tries the following flow).
    pub fn step(&mut self, lib: &mut F4tLib) -> bool {
        let flow = self.flows[self.next];
        self.next = (self.next + 1) % self.flows.len();
        match lib.send(flow, self.request_bytes) {
            Ok(_) => {
                self.requests += 1;
                true
            }
            Err(SendError::BufferFull | SendError::QueueFull) => {
                self.blocked += 1;
                false
            }
            Err(_) => false,
        }
    }

    /// Requests issued.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Blocked attempts.
    pub fn blocked(&self) -> u64 {
        self.blocked
    }

    /// The flow set.
    pub fn flows(&self) -> &[FlowId] {
        &self.flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f4t_tcp::SeqNum;

    #[test]
    fn rotates_across_flows() {
        let mut lib = F4tLib::new();
        for i in 0..4 {
            lib.register(FlowId(i), SeqNum(0), true);
        }
        let mut rr = RoundRobinSender::new((0..4).map(FlowId).collect(), 128);
        for _ in 0..8 {
            assert!(rr.step(&mut lib));
        }
        // Each flow got exactly 2 requests of 128 B.
        for i in 0..4 {
            let s = lib.socket(FlowId(i)).unwrap();
            assert_eq!(s.req, SeqNum(256), "flow {i}");
        }
        assert_eq!(rr.requests(), 8);
    }

    #[test]
    fn blocked_flow_skipped_not_stuck() {
        let mut lib = F4tLib::new();
        lib.register(FlowId(0), SeqNum(0), true);
        lib.register(FlowId(1), SeqNum(0), true);
        // Fill flow 0's buffer entirely.
        lib.send(FlowId(0), f4t_tcp::TCP_BUFFER).unwrap();
        let mut rr = RoundRobinSender::new(vec![FlowId(0), FlowId(1)], 128);
        let ok_first = rr.step(&mut lib); // flow 0: blocked
        let ok_second = rr.step(&mut lib); // flow 1: fine
        assert!(!ok_first);
        assert!(ok_second);
        assert_eq!(rr.blocked(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one flow")]
    fn empty_flow_set_panics() {
        let _ = RoundRobinSender::new(vec![], 128);
    }
}
