//! The Nginx + wrk HTTP workload (§5.2, Figs. 1, 10, 11, 12).
//!
//! wrk issues closed-loop HTTP GETs; Nginx answers each with a 256 B
//! response "including the HTTP header and the HTML payload" (the paper
//! uses 256 B rather than 128 B because Nginx's header alone exceeds
//! 128 B). The server pays per-request application cycles plus a VFS read
//! for the HTML file — the kernel cost the paper observes remaining even
//! under F4T (Fig. 11's `vfs_read` note).

use f4t_host::{F4tLib, SendError};
use f4t_sim::Histogram;
use f4t_tcp::{FlowId, SeqNum};
use std::collections::HashMap;

/// wrk's request size (a minimal GET).
pub const WRK_REQUEST_BYTES: u32 = 128;
/// Nginx's response size (HTTP header + HTML payload).
pub const NGINX_RESPONSE_BYTES: u32 = 256;

/// Per-connection client state.
#[derive(Debug, Clone, Copy)]
struct ConnState {
    expect: SeqNum,
    sent_ns: u64,
}

/// The wrk-style load generator: one outstanding request per connection.
#[derive(Debug)]
pub struct HttpClient {
    states: HashMap<FlowId, ConnState>,
    /// End-to-end request latency in nanoseconds.
    pub latency: Histogram,
    completed: u64,
}

impl HttpClient {
    /// Creates a client over established connections.
    pub fn new(flows: &[FlowId], lib: &F4tLib) -> HttpClient {
        let states = flows
            .iter()
            .map(|&f| {
                let isn = lib.socket(f).map(|s| s.consumed).unwrap_or(SeqNum::ZERO);
                (f, ConnState { expect: isn, sent_ns: 0 })
            })
            .collect();
        HttpClient { states, latency: Histogram::new(), completed: 0 }
    }

    /// Drives one connection. Returns `true` when a request was issued.
    pub fn step_flow(&mut self, flow: FlowId, lib: &mut F4tLib, now_ns: u64) -> bool {
        let Some(st) = self.states.get_mut(&flow) else { return false };
        if st.sent_ns != 0 {
            let Some(sock) = lib.socket(flow) else { return false };
            if sock.received.ge(st.expect) {
                lib.recv(flow, NGINX_RESPONSE_BYTES);
                self.latency.record(now_ns.saturating_sub(st.sent_ns));
                self.completed += 1;
                st.sent_ns = 0;
            } else {
                return false;
            }
        }
        match lib.send(flow, WRK_REQUEST_BYTES) {
            Ok(_) => {
                if let Some(st) = self.states.get_mut(&flow) {
                    st.expect = st.expect.add(NGINX_RESPONSE_BYTES);
                    st.sent_ns = now_ns.max(1);
                }
                true
            }
            Err(SendError::BufferFull | SendError::QueueFull) => false,
            Err(_) => false,
        }
    }

    /// Completed requests.
    pub fn completed(&self) -> u64 {
        self.completed
    }
}

/// The Nginx-style server.
#[derive(Debug)]
pub struct HttpServer {
    served: u64,
}

/// Per-request server CPU costs in cycles: `(application, vfs_read)`.
/// These are the calibrated Fig. 11 budget (see `f4t_host::linux_model`).
pub const NGINX_APP_CYCLES: u64 = 5_000;
/// VFS cost of fetching the HTML file (remains under F4T, Fig. 11).
pub const NGINX_VFS_CYCLES: u64 = 2_000;

impl HttpServer {
    /// Creates a server.
    pub fn new() -> HttpServer {
        HttpServer { served: 0 }
    }

    /// Serves one connection if a complete request is readable; returns
    /// `true` when a response was sent. The caller charges
    /// [`NGINX_APP_CYCLES`] + [`NGINX_VFS_CYCLES`] per served request.
    pub fn step_flow(&mut self, flow: FlowId, lib: &mut F4tLib) -> bool {
        let Some(sock) = lib.socket(flow) else { return false };
        if sock.readable() < WRK_REQUEST_BYTES {
            return false;
        }
        lib.recv(flow, WRK_REQUEST_BYTES);
        if lib.send(flow, NGINX_RESPONSE_BYTES).is_ok() {
            self.served += 1;
            true
        } else {
            false
        }
    }

    /// Requests served.
    pub fn served(&self) -> u64 {
        self.served
    }
}

impl Default for HttpServer {
    fn default() -> HttpServer {
        HttpServer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f4t_host::Completion;

    #[test]
    fn request_response_cycle() {
        let mut lib = F4tLib::new();
        lib.register(FlowId(1), SeqNum(0), true);
        let mut client = HttpClient::new(&[FlowId(1)], &lib);
        assert!(client.step_flow(FlowId(1), &mut lib, 1_000));
        assert_eq!(lib.socket(FlowId(1)).unwrap().req, SeqNum(128));
        // The 256 B response arrives.
        lib.on_completion(Completion::Received { flow: FlowId(1), upto: SeqNum(256) });
        assert!(client.step_flow(FlowId(1), &mut lib, 51_000), "next request issued");
        assert_eq!(client.completed(), 1);
        assert!((45_000..=50_100).contains(&client.latency.percentile(50.0)));
    }

    #[test]
    fn server_answers_complete_requests() {
        let mut lib = F4tLib::new();
        lib.register(FlowId(2), SeqNum(0), true);
        let mut server = HttpServer::new();
        assert!(!server.step_flow(FlowId(2), &mut lib));
        lib.on_completion(Completion::Received { flow: FlowId(2), upto: SeqNum(128) });
        assert!(server.step_flow(FlowId(2), &mut lib));
        assert_eq!(server.served(), 1);
        assert_eq!(
            lib.socket(FlowId(2)).unwrap().req,
            SeqNum(256),
            "256 B response queued"
        );
    }

    #[test]
    fn pipelined_requests_served_in_order() {
        let mut lib = F4tLib::new();
        lib.register(FlowId(3), SeqNum(0), true);
        let mut server = HttpServer::new();
        // Two back-to-back requests arrive.
        lib.on_completion(Completion::Received { flow: FlowId(3), upto: SeqNum(256) });
        assert!(server.step_flow(FlowId(3), &mut lib));
        assert!(server.step_flow(FlowId(3), &mut lib));
        assert!(!server.step_flow(FlowId(3), &mut lib));
        assert_eq!(server.served(), 2);
    }
}
