//! Bulk data transfer (iperf).

use f4t_host::{F4tLib, SendError};
use f4t_tcp::FlowId;

/// An iperf-style bulk sender: one flow, fixed-size requests, as fast as
/// the send buffer allows.
#[derive(Debug)]
pub struct BulkSender {
    flow: FlowId,
    request_bytes: u32,
    requests: u64,
    blocked: u64,
}

impl BulkSender {
    /// Creates a sender issuing `request_bytes`-sized requests on `flow`.
    ///
    /// # Panics
    ///
    /// Panics if `request_bytes` is zero.
    pub fn new(flow: FlowId, request_bytes: u32) -> BulkSender {
        assert!(request_bytes > 0, "request size must be non-zero");
        BulkSender { flow, request_bytes, requests: 0, blocked: 0 }
    }

    /// The driven flow.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Attempts one `send()`; returns `true` if a request was issued
    /// (costing the caller one library-call budget), `false` if blocked
    /// on buffer/queue space (costing a poll).
    pub fn step(&mut self, lib: &mut F4tLib) -> bool {
        match lib.send(self.flow, self.request_bytes) {
            Ok(_) => {
                self.requests += 1;
                true
            }
            Err(SendError::BufferFull | SendError::QueueFull) => {
                self.blocked += 1;
                false
            }
            Err(_) => false,
        }
    }

    /// Requests issued.
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Payload bytes requested.
    pub fn bytes_requested(&self) -> u64 {
        self.requests * u64::from(self.request_bytes)
    }

    /// Times the sender was blocked (EAGAIN).
    pub fn blocked(&self) -> u64 {
        self.blocked
    }
}

/// The receiving side of a bulk transfer: consume everything that
/// arrives, keeping the advertised window open.
#[derive(Debug)]
pub struct BulkReceiver {
    flows: Vec<FlowId>,
    consumed: u64,
}

impl BulkReceiver {
    /// Creates a receiver draining `flows`.
    pub fn new(flows: Vec<FlowId>) -> BulkReceiver {
        BulkReceiver { flows, consumed: 0 }
    }

    /// Consumes available data on one flow per call (round-robining
    /// through the set); returns bytes consumed (0 = nothing readable,
    /// costing the caller only a poll).
    pub fn step(&mut self, lib: &mut F4tLib) -> u32 {
        for _ in 0..self.flows.len() {
            let flow = self.flows[0];
            self.flows.rotate_left(1);
            let got = lib.recv(flow, u32::MAX);
            if got > 0 {
                self.consumed += u64::from(got);
                return got;
            }
        }
        0
    }

    /// Total bytes consumed.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f4t_host::Completion;
    use f4t_tcp::{SeqNum, TCP_BUFFER};

    #[test]
    fn sender_issues_until_buffer_full() {
        let mut lib = F4tLib::new();
        lib.register(FlowId(1), SeqNum(0), true);
        let mut s = BulkSender::new(FlowId(1), 128);
        let mut issued = 0;
        while s.step(&mut lib) {
            issued += 1;
        }
        assert_eq!(issued, u64::from(TCP_BUFFER / 128).min(1024), "buffer or queue bound");
        assert!(s.blocked() >= 1);
        assert_eq!(s.bytes_requested(), s.requests() * 128);
    }

    #[test]
    fn sender_resumes_after_ack() {
        let mut lib = F4tLib::new();
        lib.register(FlowId(1), SeqNum(0), true);
        let mut s = BulkSender::new(FlowId(1), TCP_BUFFER / 2);
        assert!(s.step(&mut lib));
        assert!(s.step(&mut lib));
        assert!(!s.step(&mut lib), "buffer full");
        lib.on_completion(Completion::Acked { flow: FlowId(1), upto: SeqNum(TCP_BUFFER / 2) });
        assert!(s.step(&mut lib));
    }

    #[test]
    fn receiver_consumes_and_rotates() {
        let mut lib = F4tLib::new();
        lib.register(FlowId(1), SeqNum(0), true);
        lib.register(FlowId(2), SeqNum(0), true);
        let mut r = BulkReceiver::new(vec![FlowId(1), FlowId(2)]);
        assert_eq!(r.step(&mut lib), 0, "nothing yet");
        lib.on_completion(Completion::Received { flow: FlowId(2), upto: SeqNum(300) });
        assert_eq!(r.step(&mut lib), 300, "found the readable flow");
        assert_eq!(r.consumed(), 300);
    }
}
