//! The TX data path: the packet generator.
//!
//! "The packet generator passively generates packets when FPC requests a
//! data transfer... If the requested data transfer size exceeds the
//! maximum segment size, the packet generator splits the request into
//! multiple requests" (§4.1.2). It runs in the 322 MHz network domain and
//! "can be easily parallelized as its operation is stateless" (§4.4.2).
//!
//! The model produces at most `parallelism` segments per **network-domain
//! cycle**; the engine ticks it at 250 MHz and the 322/250 ratio is
//! accumulated fractionally.

use crate::event::TxRequest;
use f4t_sim::{Fifo, FlightRecorder, FlightStage, Journal, JournalKind, JournalModule};
use f4t_tcp::{Segment, TcpFlags};

/// The packet generator.
#[derive(Debug)]
pub struct PacketGenerator {
    /// Pending FPC requests (the FPU-facing FIFO whose occupancy gates
    /// TCB-manager dispatch).
    requests: Fifo<TxRequest>,
    /// FtFlight stamp mirror of `requests`: the engine cycle each request
    /// left its FPC (`None` until [`enable_flight`](Self::enable_flight)).
    request_stamps: Option<Fifo<u64>>,
    /// Payload bytes of the head request already segmented.
    head_offset: u32,
    mss: u32,
    /// Segments producible per network cycle.
    parallelism: u32,
    /// Fractional network cycles accumulated per engine tick (×1000).
    net_cycle_credit: u64,
    segments_out: u64,
    bytes_out: u64,
    retransmissions: u64,
}

/// 322 MHz network cycles per 1000 engine (250 MHz) cycles.
const NET_PER_ENGINE_MILLI: u64 = 1288;

impl PacketGenerator {
    /// Depth of the request FIFO; `is_full` backpressures FPC dispatch.
    pub const REQUEST_FIFO_DEPTH: usize = 64;

    /// Creates a generator with the given MSS and per-cycle parallelism.
    pub fn new(mss: u32, parallelism: u32) -> PacketGenerator {
        assert!(mss > 0, "mss must be non-zero");
        assert!(parallelism > 0, "parallelism must be non-zero");
        PacketGenerator {
            requests: Fifo::new(Self::REQUEST_FIFO_DEPTH),
            request_stamps: None,
            head_offset: 0,
            mss,
            parallelism,
            net_cycle_credit: 0,
            segments_out: 0,
            bytes_out: 0,
            retransmissions: 0,
        }
    }

    /// Whether the request FIFO has room (FPC dispatch gate).
    pub fn can_accept(&self) -> bool {
        !self.requests.is_full()
    }

    /// Room left in the request FIFO.
    pub fn free(&self) -> usize {
        self.requests.free()
    }

    /// Queues a transmit request from an FPU pass. The FPC dispatch gate
    /// must check [`can_accept`](Self::can_accept) first; a request offered
    /// past a full FIFO is dropped (debug builds assert instead) and the
    /// retransmission path recovers, as it would for any lost segment.
    pub fn push(&mut self, req: TxRequest) {
        self.push_at(req, 0);
    }

    /// [`push`](Self::push) carrying the engine cycle the request left its
    /// FPC, recorded as the FtFlight `tx_emit` span start.
    pub fn push_at(&mut self, req: TxRequest, stamp: u64) {
        let accepted = self.requests.push(req).is_ok();
        debug_assert!(accepted, "packet generator FIFO overrun: dispatch gate violated");
        if accepted {
            if let Some(stamps) = &mut self.request_stamps {
                let ok = stamps.push(stamp).is_ok();
                debug_assert!(ok, "flight stamp FIFO out of sync with requests");
            }
        }
    }

    /// Turns on FtFlight span stamping. Call before the first
    /// [`push_at`](Self::push_at); stamps then mirror the request FIFO 1:1.
    pub fn enable_flight(&mut self) {
        debug_assert!(self.requests.is_empty(), "enable_flight on a non-empty generator");
        self.request_stamps = Some(Fifo::new(Self::REQUEST_FIFO_DEPTH));
    }

    /// Advances one engine (250 MHz) cycle, emitting segments into `out`.
    /// `now_ns` stamps the TSval of data segments.
    pub fn tick(&mut self, now_ns: u64, out: &mut Vec<Segment>) {
        self.tick_flight(now_ns, 0, out, None, None);
    }

    /// [`tick`](Self::tick) with FtFlight attribution: when the head
    /// request finishes segmenting, the span from its FPC-exit stamp to
    /// `cycle` is recorded as `tx_emit`. With an FtJournal attached, each
    /// emitted segment records a `tx_emit` journal event.
    pub fn tick_flight(
        &mut self,
        now_ns: u64,
        cycle: u64,
        out: &mut Vec<Segment>,
        mut flight: Option<&mut FlightRecorder>,
        mut journal: Option<&mut Journal>,
    ) {
        self.net_cycle_credit += NET_PER_ENGINE_MILLI;
        let mut budget = (self.net_cycle_credit / 1000) * u64::from(self.parallelism);
        self.net_cycle_credit %= 1000;
        while budget > 0 {
            let Some(req) = self.requests.front() else { break };
            let req = *req;
            let remaining = req.len - self.head_offset;
            let seg_len = remaining.min(self.mss);
            let seg = Segment {
                tuple: req.tuple,
                seq: req.seq.add(self.head_offset),
                ack: req.ack,
                flags: req.flags | TcpFlags::ACK,
                window: req.wnd,
                payload_len: seg_len,
                is_retransmit: req.retransmit,
                ts_val: now_ns,
                ts_ecr: req.ts_ecr,
                tag: 0,
            };
            // Control-only segments (SYN/FIN/pure ACK) keep their flags
            // exactly; data segments always carry ACK.
            let seg = if req.len == 0 {
                Segment { flags: req.flags, payload_len: 0, ..seg }
            } else {
                seg
            };
            out.push(seg);
            self.segments_out += 1;
            self.bytes_out += u64::from(seg.wire_len());
            if req.retransmit {
                self.retransmissions += 1;
            }
            if let Some(j) = journal.as_deref_mut() {
                j.record(
                    cycle,
                    JournalModule::PacketGen,
                    JournalKind::TxEmit,
                    req.flow.0,
                    u64::from(seg.payload_len),
                    u64::from(req.retransmit),
                );
            }
            budget -= 1;
            if self.head_offset + seg_len >= req.len {
                self.requests.pop();
                let stamp = self.request_stamps.as_mut().and_then(|s| s.pop());
                if let (Some(f), Some(stamp)) = (flight.as_deref_mut(), stamp) {
                    f.record(FlightStage::TxEmit, req.flow.0, cycle.saturating_sub(stamp));
                }
                self.head_offset = 0;
            } else {
                self.head_offset += seg_len;
            }
        }
    }

    /// Activity horizon: `Some(cycle)` while transmit requests are
    /// queued, `None` when ticking would only run the 322/250 credit
    /// arithmetic — which [`skip_idle_cycles`](Self::skip_idle_cycles)
    /// replays in closed form.
    pub fn next_activity(&self, cycle: u64) -> Option<u64> {
        if !self.requests.is_empty() {
            return Some(cycle);
        }
        None
    }

    /// Fast-forward catch-up for `n` idle cycles. With an empty request
    /// FIFO each tick is `credit += 1288; credit %= 1000` (the extracted
    /// budget finds nothing to segment), so `n` ticks fold to one modular
    /// step. The engine only calls this when the MAC buffer is below its
    /// cap — when it is full the tick-by-tick path skips the generator
    /// entirely and the credit must stay frozen.
    pub fn skip_idle_cycles(&mut self, n: u64) {
        debug_assert!(self.requests.is_empty(), "packet-gen fast-forward with queued requests");
        debug_assert!(
            self.request_stamps.as_ref().is_none_or(|s| s.is_empty()),
            "flight stamps queued across a fast-forward window"
        );
        self.net_cycle_credit = ((u128::from(self.net_cycle_credit)
            + u128::from(NET_PER_ENGINE_MILLI) * u128::from(n))
            % 1000) as u64;
    }

    /// Total segments emitted.
    pub fn segments_out(&self) -> u64 {
        self.segments_out
    }

    /// Total wire bytes emitted (payload + per-packet overhead).
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out
    }

    /// Retransmitted segments emitted.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f4t_tcp::{FlowId, FourTuple, SeqNum, MSS};

    fn req(len: u32) -> TxRequest {
        TxRequest {
            flow: FlowId(1),
            tuple: FourTuple::default(),
            seq: SeqNum(1000),
            len,
            ack: SeqNum(500),
            wnd: 4096,
            flags: TcpFlags::ACK,
            retransmit: false,
            ts_ecr: 7,
        }
    }

    fn drain(pg: &mut PacketGenerator, ticks: u64) -> Vec<Segment> {
        let mut out = Vec::new();
        for t in 0..ticks {
            pg.tick(t * 4, &mut out);
        }
        out
    }

    #[test]
    fn splits_large_request_at_mss() {
        let mut pg = PacketGenerator::new(MSS, 1);
        pg.push(req(3 * MSS + 100));
        let segs = drain(&mut pg, 10);
        assert_eq!(segs.len(), 4);
        assert_eq!(segs[0].payload_len, MSS);
        assert_eq!(segs[0].seq, SeqNum(1000));
        assert_eq!(segs[1].seq, SeqNum(1000).add(MSS));
        assert_eq!(segs[3].payload_len, 100);
        // All segments carry the request's ACK/window/TSecr.
        assert!(segs.iter().all(|s| s.ack == SeqNum(500) && s.window == 4096 && s.ts_ecr == 7));
    }

    #[test]
    fn small_request_single_segment() {
        let mut pg = PacketGenerator::new(MSS, 1);
        pg.push(req(128));
        let segs = drain(&mut pg, 4);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].payload_len, 128);
    }

    #[test]
    fn pure_ack_passthrough() {
        let mut pg = PacketGenerator::new(MSS, 1);
        let mut r = req(0);
        r.flags = TcpFlags::SYN;
        pg.push(r);
        let segs = drain(&mut pg, 4);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].payload_len, 0);
        assert_eq!(segs[0].flags, TcpFlags::SYN, "control flags not mangled");
    }

    #[test]
    fn rate_tracks_network_domain() {
        // One segment per 322 MHz cycle = 1.288 per engine cycle.
        let mut pg = PacketGenerator::new(MSS, 1);
        for _ in 0..60 {
            pg.push(req(MSS));
        }
        let segs = drain(&mut pg, 40);
        // 40 engine cycles → ~51 network cycles.
        assert!((50..=52).contains(&segs.len()), "emitted {}", segs.len());
    }

    #[test]
    fn parallelism_multiplies_rate() {
        let mut pg = PacketGenerator::new(MSS, 4);
        for _ in 0..64 {
            pg.push(req(MSS));
        }
        let segs = drain(&mut pg, 13);
        // 13 engine cycles → 16 net cycles → 64 segments with 4-way.
        assert!(segs.len() >= 60, "emitted {}", segs.len());
    }

    #[test]
    fn counters_and_backpressure() {
        let mut pg = PacketGenerator::new(MSS, 1);
        let mut r = req(MSS);
        r.retransmit = true;
        pg.push(r);
        let segs = drain(&mut pg, 4);
        assert!(segs[0].is_retransmit);
        assert_eq!(pg.retransmissions(), 1);
        assert_eq!(pg.segments_out(), 1);
        assert_eq!(pg.bytes_out(), u64::from(MSS + 78));
        assert!(pg.can_accept());
        for _ in 0..PacketGenerator::REQUEST_FIFO_DEPTH {
            pg.push(req(1));
        }
        assert!(!pg.can_accept());
    }

    #[test]
    #[should_panic(expected = "dispatch gate violated")]
    fn overrun_panics() {
        let mut pg = PacketGenerator::new(MSS, 1);
        for _ in 0..=PacketGenerator::REQUEST_FIFO_DEPTH {
            pg.push(req(1));
        }
    }
}
