//! FPGA resource model (Fig. 7).
//!
//! The paper reports Vivado 2020.2 synthesis results on a Xilinx U280:
//! FtEngine with one FPC uses 16 % LUTs / 11 % FFs / 27 % BRAMs, and with
//! eight FPCs 23 % / 15 % / 32 %. We obviously cannot synthesize RTL here,
//! so Fig. 7 is reproduced by a component-level model: fixed costs for the
//! shared data path plus per-FPC marginal costs, calibrated so the 1-FPC
//! and 8-FPC totals match the paper. The interesting check the harness
//! makes is the *scaling shape*: FPCs are cheap relative to the data path
//! ("we only have to scale up the glue logic"), so going 1 → 8 FPCs adds
//! only ~7 % of the FPGA's LUTs.

/// Available resources on the Alveo U280 (XCU280 device).
pub const U280_LUTS: u64 = 1_303_680;
/// U280 flip-flops.
pub const U280_FFS: u64 = 2_607_360;
/// U280 BRAM tiles (36 Kb each).
pub const U280_BRAMS: u64 = 2_016;

/// One row of the Fig. 7b table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceRow {
    /// Component name.
    pub component: &'static str,
    /// LUTs used.
    pub luts: u64,
    /// Flip-flops used.
    pub ffs: u64,
    /// BRAM tiles used.
    pub brams: u64,
}

impl ResourceRow {
    /// Percent of the U280's LUTs.
    pub fn lut_pct(&self) -> f64 {
        self.luts as f64 * 100.0 / U280_LUTS as f64
    }

    /// Percent of the U280's FFs.
    pub fn ff_pct(&self) -> f64 {
        self.ffs as f64 * 100.0 / U280_FFS as f64
    }

    /// Percent of the U280's BRAMs.
    pub fn bram_pct(&self) -> f64 {
        self.brams as f64 * 100.0 / U280_BRAMS as f64
    }
}

/// Per-component cost model. Constants are calibrated so the 1-FPC and
/// 8-FPC totals reproduce the paper's percentages (16/11/27 and
/// 23/15/32).
fn component_costs(num_fpcs: u64) -> Vec<ResourceRow> {
    // Marginal per-FPC cost: event handler + dual memory + FPU + CAM.
    let fpc = ResourceRow {
        component: "FPCs",
        luts: 13_000 * num_fpcs,
        ffs: 14_900 * num_fpcs,
        brams: 14 * num_fpcs,
    };
    // Scheduler glue grows with the FPC count (switches, LUT partitions).
    let scheduler = ResourceRow {
        component: "Scheduler",
        luts: 9_000 + 500 * num_fpcs,
        ffs: 7_000 + 400 * num_fpcs,
        brams: 8,
    };
    let memory_manager = ResourceRow {
        component: "Memory manager (incl. TCB cache + HBM i/f)",
        luts: 38_000,
        ffs: 42_000,
        brams: 96,
    };
    let data_path = ResourceRow {
        component: "Data path (packet gen + RX parser + reassembly)",
        luts: 72_000,
        ffs: 85_000,
        brams: 230,
    };
    let host_interface = ResourceRow {
        component: "Host interface (PCIe/DMA + queues)",
        luts: 55_000,
        ffs: 95_000,
        brams: 140,
    };
    let net = ResourceRow {
        component: "Network (100G MAC + ARP + ICMP)",
        luts: 21_500,
        ffs: 32_000,
        brams: 56,
    };
    vec![fpc, scheduler, memory_manager, data_path, host_interface, net]
}

/// Produces the Fig. 7b table for an FtEngine with `num_fpcs` FPCs:
/// component rows plus a total row at the end.
pub fn resource_report(num_fpcs: u64) -> Vec<ResourceRow> {
    let mut rows = component_costs(num_fpcs);
    let total = ResourceRow {
        component: "FtEngine total",
        luts: rows.iter().map(|r| r.luts).sum(),
        ffs: rows.iter().map(|r| r.ffs).sum(),
        brams: rows.iter().map(|r| r.brams).sum(),
    };
    rows.push(total);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(n: u64) -> ResourceRow {
        resource_report(n).pop().expect("total row")
    }

    #[test]
    fn one_fpc_matches_paper_percentages() {
        let t = total(1);
        assert!((t.lut_pct() - 16.0).abs() < 1.0, "LUT {:.1}%", t.lut_pct());
        assert!((t.ff_pct() - 11.0).abs() < 1.0, "FF {:.1}%", t.ff_pct());
        assert!((t.bram_pct() - 27.0).abs() < 1.5, "BRAM {:.1}%", t.bram_pct());
    }

    #[test]
    fn eight_fpcs_match_paper_percentages() {
        let t = total(8);
        assert!((t.lut_pct() - 23.0).abs() < 1.0, "LUT {:.1}%", t.lut_pct());
        assert!((t.ff_pct() - 15.0).abs() < 1.0, "FF {:.1}%", t.ff_pct());
        assert!((t.bram_pct() - 32.0).abs() < 1.5, "BRAM {:.1}%", t.bram_pct());
    }

    #[test]
    fn fpcs_scale_linearly_data_path_fixed() {
        let r1 = resource_report(1);
        let r8 = resource_report(8);
        let fpc1 = &r1[0];
        let fpc8 = &r8[0];
        assert_eq!(fpc8.luts, 8 * fpc1.luts);
        // The data path row is identical in both configurations.
        let dp1 = r1.iter().find(|r| r.component.starts_with("Data path")).unwrap();
        let dp8 = r8.iter().find(|r| r.component.starts_with("Data path")).unwrap();
        assert_eq!(dp1.luts, dp8.luts);
    }

    #[test]
    fn leaves_majority_of_fpga_free() {
        // The paper's point: even 8 FPCs leave ~3/4 of the device for
        // user logic.
        let t = total(8);
        assert!(t.lut_pct() < 30.0);
        assert!(t.ff_pct() < 30.0);
        assert!(t.bram_pct() < 40.0);
    }
}
