//! The RX data path: the RX parser.
//!
//! "The RX parser first retrieves the received packet's flow ID by looking
//! up a cuckoo hash table with the 4-tuple... Next, the RX parser DMAs the
//! payload to the TCP data buffer if it fits in the receive window
//! (regardless of whether it is in order) and drops if not. Applications,
//! however, are notified about the received data only when the data is
//! reassembled in order. This allows the hardware to reassemble data
//! logically without actually manipulating the data" (§4.1.2).
//!
//! The parser turns each segment into one [`FlowEvent`] carrying the
//! *post-reassembly* in-order pointer, so the FPU never touches payload.

use crate::event::{EventKind, FlowEvent};
use f4t_sim::{Fifo, FlightRecorder, FlightStage, Journal, JournalKind, JournalModule};
use f4t_tcp::reassembly::ReassemblyResult;
use f4t_tcp::{FlowId, FlowTable, ReassemblyTracker, Segment, SeqNum, TcpFlags, TCP_BUFFER};
use std::collections::HashMap;

/// Per-flow receive-side bookkeeping beyond reassembly: the highest ACK
/// seen, used to tag potential duplicate ACKs as non-mergeable so the
/// scheduler's coalescing never destroys loss evidence (§4.4.1).
#[derive(Debug, Clone, Copy, Default)]
struct AckWatch {
    high: SeqNum,
    seen: bool,
}

/// 322 MHz network cycles per 1000 engine (250 MHz) cycles.
const NET_PER_ENGINE_MILLI: u64 = 1288;

/// Per-cycle output of the parser.
#[derive(Debug, Default)]
pub struct RxOutput {
    /// Events bound for the scheduler.
    pub events: Vec<FlowEvent>,
    /// SYN segments for unknown tuples on listening ports: the engine
    /// allocates a flow, registers it, and re-offers the segment.
    pub new_connections: Vec<Segment>,
}

/// The RX parser.
#[derive(Debug)]
pub struct RxParser {
    flow_table: FlowTable,
    trackers: HashMap<FlowId, ReassemblyTracker>,
    ack_watch: HashMap<FlowId, AckWatch>,
    /// Sequence end of a FIN whose flag was withheld because the segment
    /// arrived out of order. The flag is re-delivered on the first event
    /// after reassembly passes this point — without this, a gap filled by
    /// a retransmission that does not itself carry FIN would silently
    /// absorb the phantom byte and the FPU would never see the close.
    pending_fins: HashMap<FlowId, SeqNum>,
    listening: std::collections::HashSet<u16>,
    input: Fifo<Segment>,
    /// FtFlight stamp mirror of `input`: the engine cycle each segment was
    /// offered (`None` until [`enable_flight`](Self::enable_flight)).
    ingest_stamps: Option<Fifo<u64>>,
    parallelism: u32,
    net_cycle_credit: u64,
    segments_in: u64,
    payload_dma_bytes: u64,
    dropped_unknown: u64,
    cuckoo_lookups: u64,
    cuckoo_probes: u64,
    ooo_segments: u64,
    dup_segments: u64,
    window_drops: u64,
    ooo_depth_max: usize,
}

impl RxParser {
    /// Depth of the input segment FIFO (the MAC-side buffer).
    pub const INPUT_FIFO_DEPTH: usize = 256;

    /// Creates a parser sized for `max_flows` with `parallelism` lookups
    /// per network cycle (§4.4.2: "the RX parser can parallelize packet
    /// parsing and flow ID lookup by partitioning the memory").
    pub fn new(max_flows: usize, parallelism: u32) -> RxParser {
        assert!(parallelism > 0, "parallelism must be non-zero");
        RxParser {
            flow_table: FlowTable::with_capacity(max_flows),
            trackers: HashMap::new(),
            ack_watch: HashMap::new(),
            pending_fins: HashMap::new(),
            listening: std::collections::HashSet::new(),
            input: Fifo::new(Self::INPUT_FIFO_DEPTH),
            ingest_stamps: None,
            parallelism,
            net_cycle_credit: 0,
            segments_in: 0,
            payload_dma_bytes: 0,
            dropped_unknown: 0,
            cuckoo_lookups: 0,
            cuckoo_probes: 0,
            ooo_segments: 0,
            dup_segments: 0,
            window_drops: 0,
            ooo_depth_max: 0,
        }
    }

    /// Opens a listening port (SO_REUSEPORT-style: all SYNs to this port
    /// become new connections).
    pub fn listen(&mut self, port: u16) {
        self.listening.insert(port);
    }

    /// Stops listening on `port`.
    pub fn unlisten(&mut self, port: u16) {
        self.listening.remove(&port);
    }

    /// Registers a flow: `tuple` is OUR 4-tuple (src = this host).
    /// `init_rcv` seeds the reassembly tracker (peer ISN + 1 when known,
    /// or a placeholder replaced at the first SYN).
    ///
    /// # Errors
    ///
    /// Propagates the cuckoo table's insertion errors.
    pub fn register_flow(
        &mut self,
        tuple: f4t_tcp::FourTuple,
        flow: FlowId,
        init_rcv: SeqNum,
    ) -> Result<(), f4t_tcp::flow_table::InsertError> {
        self.flow_table.insert(tuple, flow)?;
        self.trackers.insert(flow, ReassemblyTracker::new(init_rcv, TCP_BUFFER));
        Ok(())
    }

    /// Removes a flow (connection teardown).
    pub fn remove_flow(&mut self, tuple: &f4t_tcp::FourTuple, flow: FlowId) {
        self.flow_table.remove(tuple);
        self.trackers.remove(&flow);
        self.ack_watch.remove(&flow);
        self.pending_fins.remove(&flow);
    }

    /// Offers a segment from the network; returns `false` when the input
    /// buffer overflows (the segment is lost, as on a real NIC).
    pub fn push_segment(&mut self, seg: Segment) -> bool {
        self.push_segment_at(seg, 0)
    }

    /// [`push_segment`](Self::push_segment) carrying the engine cycle of
    /// arrival, recorded as the FtFlight `rx_ingest` span start.
    pub fn push_segment_at(&mut self, seg: Segment, cycle: u64) -> bool {
        let accepted = self.input.push(seg).is_ok();
        if accepted {
            if let Some(stamps) = &mut self.ingest_stamps {
                let ok = stamps.push(cycle).is_ok();
                debug_assert!(ok, "flight stamp FIFO out of sync with rx input");
            }
        }
        accepted
    }

    /// Turns on FtFlight span stamping. Call before the first
    /// [`push_segment_at`](Self::push_segment_at); stamps then mirror the
    /// input FIFO 1:1.
    pub fn enable_flight(&mut self) {
        debug_assert!(self.input.is_empty(), "enable_flight on a non-empty parser");
        self.ingest_stamps = Some(Fifo::new(Self::INPUT_FIFO_DEPTH));
    }

    /// Room in the input FIFO.
    pub fn input_free(&self) -> usize {
        self.input.free()
    }

    /// FtVerify periodic audit: conservation on the segment input FIFO.
    pub fn audit(&self, cycle: u64, chk: &mut f4t_sim::check::InvariantChecker) {
        chk.check_fifo(cycle, "rx.input_fifo", &self.input);
    }

    /// Activity horizon: `Some(cycle)` while parse work is queued, `None`
    /// when ticking would only run the 322/250 credit arithmetic — which
    /// [`skip_idle_cycles`](Self::skip_idle_cycles) replays in closed
    /// form.
    pub fn next_activity(&self, cycle: u64) -> Option<u64> {
        if !self.input.is_empty() {
            return Some(cycle);
        }
        None
    }

    /// Fast-forward catch-up for `n` idle cycles. With an empty input
    /// each tick is `credit += 1288; credit %= 1000` (the extracted
    /// budget goes unused), so `n` ticks fold to one modular step.
    pub fn skip_idle_cycles(&mut self, n: u64) {
        debug_assert!(self.input.is_empty(), "rx-parser fast-forward with queued segments");
        debug_assert!(
            self.ingest_stamps.as_ref().is_none_or(|s| s.is_empty()),
            "flight stamps queued across a fast-forward window"
        );
        self.net_cycle_credit = ((u128::from(self.net_cycle_credit)
            + u128::from(NET_PER_ENGINE_MILLI) * u128::from(n))
            % 1000) as u64;
    }

    /// Parses one segment into an event (the per-packet work). `span` is
    /// the FtFlight context: the ingest stamp popped alongside the segment
    /// plus the current engine cycle.
    fn parse_one(
        &mut self,
        seg: Segment,
        now_ns: u64,
        cycle: u64,
        out: &mut RxOutput,
        span: Option<(&mut FlightRecorder, u64, u64)>,
        mut journal: Option<&mut Journal>,
    ) {
        self.segments_in += 1;
        // Lookup by OUR tuple: the segment's source is the peer.
        let our_tuple = seg.tuple.reversed();
        let (looked_up, probes) = self.flow_table.lookup_probed(&our_tuple);
        self.cuckoo_lookups += 1;
        self.cuckoo_probes += u64::from(probes);
        if let (Some((f, stamp, cycle)), Some(flow)) = (span, looked_up) {
            f.record(FlightStage::RxIngest, flow.0, cycle.saturating_sub(stamp));
            f.record(FlightStage::CuckooLookup, flow.0, u64::from(probes));
        }
        if let Some(j) = journal.as_deref_mut() {
            match looked_up {
                Some(flow) => j.record(
                    cycle,
                    JournalModule::RxParser,
                    JournalKind::CuckooHit,
                    flow.0,
                    u64::from(probes),
                    0,
                ),
                // Unknown tuple: no flow id exists; the sentinel u32::MAX
                // marks table misses (SYNs to listening ports included).
                None => j.record(
                    cycle,
                    JournalModule::RxParser,
                    JournalKind::CuckooMiss,
                    u32::MAX,
                    u64::from(probes),
                    u64::from(seg.flags.contains(TcpFlags::SYN)),
                ),
            }
        }
        let Some(flow) = looked_up else {
            if seg.flags.contains(TcpFlags::SYN) && self.listening.contains(&seg.tuple.dst_port) {
                out.new_connections.push(seg);
            } else {
                self.dropped_unknown += 1;
            }
            return;
        };
        let tracker = self.trackers.entry(flow).or_insert_with(|| {
            ReassemblyTracker::new(seg.seq, TCP_BUFFER)
        });
        if seg.flags.contains(TcpFlags::SYN) {
            // (Re)anchor reassembly at the peer's ISN + 1.
            *tracker = ReassemblyTracker::new(seg.seq.add(1), TCP_BUFFER);
            self.pending_fins.remove(&flow);
        }

        // FIN occupies one phantom byte of sequence space so it is only
        // delivered in order.
        let fin_phantom = u32::from(seg.flags.contains(TcpFlags::FIN));
        let body = seg.payload_len + fin_phantom;
        let (in_order, needs_ack, accepted_payload) = if body > 0 {
            let r = tracker.on_segment(seg.seq, body);
            self.ooo_depth_max = self.ooo_depth_max.max(tracker.chunk_count());
            match r {
                ReassemblyResult::Advanced(_) => (true, true, seg.payload_len),
                ReassemblyResult::OutOfOrder => {
                    self.ooo_segments += 1;
                    (false, true, seg.payload_len)
                }
                // Unacceptable segments still elicit an ACK (RFC 793) —
                // this also answers zero-window probes and duplicates
                // (which become dup-ACK evidence at the peer).
                ReassemblyResult::Duplicate => {
                    self.dup_segments += 1;
                    (false, true, 0)
                }
                ReassemblyResult::Dropped => {
                    self.window_drops += 1;
                    (false, true, 0)
                }
            }
        } else {
            // Pure ACK. It is mergeable only if the ACK advances — a
            // non-advancing pure ACK is a potential duplicate ACK whose
            // count must survive coalescing.
            let watch = self.ack_watch.entry(flow).or_default();
            let advances = !watch.seen || seg.ack.gt(watch.high);
            (advances, false, 0)
        };
        {
            let watch = self.ack_watch.entry(flow).or_default();
            if !watch.seen || seg.ack.gt(watch.high) {
                watch.high = seg.ack;
                watch.seen = true;
            }
        }
        self.payload_dma_bytes += u64::from(accepted_payload);

        // The FIN flag is reported only once its phantom byte has been
        // sequenced (rcv_nxt passed it), so the FPU sees an in-order FIN.
        // A withheld flag is parked and re-attached to the first event
        // after the gap fills — the filling segment need not carry FIN.
        let mut flags = seg.flags;
        if fin_phantom == 1 && tracker.rcv_nxt().lt(seg.seq_end()) {
            flags.remove(TcpFlags::FIN);
            self.pending_fins.insert(flow, seg.seq_end());
        } else if let Some(&fin_end) = self.pending_fins.get(&flow) {
            if tracker.rcv_nxt().ge(fin_end) {
                flags.insert(TcpFlags::FIN);
                self.pending_fins.remove(&flow);
            }
        }

        if let Some(j) = journal {
            j.record(
                cycle,
                JournalModule::RxParser,
                JournalKind::SegAccepted,
                flow.0,
                u64::from(seg.payload_len),
                u64::from(in_order),
            );
        }
        out.events.push(FlowEvent::new(
            flow,
            EventKind::RxPacket {
                ack: seg.ack,
                rcv_nxt: tracker.rcv_nxt(),
                wnd: seg.window,
                flags,
                had_payload: seg.payload_len > 0,
                needs_ack,
                in_order,
                ts_val: seg.ts_val,
                ts_ecr: seg.ts_ecr,
            },
            now_ns,
        ));
    }

    /// Advances one engine (250 MHz) cycle, parsing up to the network-rate
    /// budget of segments.
    pub fn tick(&mut self, now_ns: u64, out: &mut RxOutput) {
        self.tick_flight(now_ns, 0, out, None, None);
    }

    /// [`tick`](Self::tick) with FtFlight attribution: each parsed segment
    /// records its input-FIFO residency (`rx_ingest`, arrival stamp to
    /// `cycle`) and its cuckoo probe count (`cuckoo_lookup`). With an
    /// FtJournal attached, each segment also emits `cuckoo_hit` /
    /// `cuckoo_miss` and `seg_accepted` journal events.
    pub fn tick_flight(
        &mut self,
        now_ns: u64,
        cycle: u64,
        out: &mut RxOutput,
        mut flight: Option<&mut FlightRecorder>,
        mut journal: Option<&mut Journal>,
    ) {
        self.net_cycle_credit += NET_PER_ENGINE_MILLI;
        let mut budget = (self.net_cycle_credit / 1000) * u64::from(self.parallelism);
        self.net_cycle_credit %= 1000;
        while budget > 0 {
            let Some(seg) = self.input.pop() else { break };
            let stamp = self.ingest_stamps.as_mut().and_then(|s| s.pop());
            let span = match (flight.as_deref_mut(), stamp) {
                (Some(f), Some(stamp)) => Some((f, stamp, cycle)),
                _ => None,
            };
            self.parse_one(seg, now_ns, cycle, out, span, journal.as_deref_mut());
            budget -= 1;
        }
    }

    /// Total segments parsed.
    pub fn segments_in(&self) -> u64 {
        self.segments_in
    }

    /// Total payload bytes DMAed to the host buffer.
    pub fn payload_dma_bytes(&self) -> u64 {
        self.payload_dma_bytes
    }

    /// Segments dropped for unknown tuples.
    pub fn dropped_unknown(&self) -> u64 {
        self.dropped_unknown
    }

    /// The reassembly tracker of `flow` (diagnostics).
    pub fn tracker(&self, flow: FlowId) -> Option<&ReassemblyTracker> {
        self.trackers.get(&flow)
    }

    /// Reports RX-parser telemetry into `reg` under `prefix`: cuckoo
    /// lookup/probe counts, out-of-order reassembly pressure, and input
    /// FIFO occupancy.
    pub fn collect(&self, prefix: &str, reg: &mut f4t_sim::telemetry::MetricsRegistry) {
        reg.counter(&format!("{prefix}.segments_in"), self.segments_in);
        reg.counter(&format!("{prefix}.payload_dma_bytes"), self.payload_dma_bytes);
        reg.counter(&format!("{prefix}.dropped_unknown"), self.dropped_unknown);
        reg.counter(&format!("{prefix}.cuckoo.lookups"), self.cuckoo_lookups);
        reg.counter(&format!("{prefix}.cuckoo.probes"), self.cuckoo_probes);
        let avg = if self.cuckoo_lookups == 0 {
            0.0
        } else {
            self.cuckoo_probes as f64 / self.cuckoo_lookups as f64
        };
        reg.gauge(&format!("{prefix}.cuckoo.probes_per_lookup"), avg);
        reg.gauge(&format!("{prefix}.flow_table.occupancy"), self.flow_table.len() as f64);
        reg.counter(&format!("{prefix}.reassembly.ooo_segments"), self.ooo_segments);
        reg.counter(&format!("{prefix}.reassembly.dup_segments"), self.dup_segments);
        reg.counter(&format!("{prefix}.reassembly.window_drops"), self.window_drops);
        reg.counter(&format!("{prefix}.reassembly.ooo_depth_max"), self.ooo_depth_max as u64);
        let cur_depth: usize = self.trackers.values().map(ReassemblyTracker::chunk_count).sum();
        reg.gauge(&format!("{prefix}.reassembly.ooo_chunks"), cur_depth as f64);
        self.input.collect(&format!("{prefix}.input_fifo"), reg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f4t_tcp::FourTuple;
    use std::net::Ipv4Addr;

    fn our_tuple() -> FourTuple {
        FourTuple::new(Ipv4Addr::new(10, 0, 0, 1), 5000, Ipv4Addr::new(10, 0, 0, 2), 80)
    }

    fn peer_data(seq: u32, len: u32) -> Segment {
        Segment::data(our_tuple().reversed(), SeqNum(seq), SeqNum(100), len)
    }

    fn parser_with_flow() -> RxParser {
        let mut p = RxParser::new(1024, 1);
        p.register_flow(our_tuple(), FlowId(1), SeqNum(0)).unwrap();
        p
    }

    fn drain(p: &mut RxParser, ticks: u64) -> RxOutput {
        let mut out = RxOutput::default();
        for t in 0..ticks {
            p.tick(t * 4, &mut out);
        }
        out
    }

    #[test]
    fn in_order_data_event() {
        let mut p = parser_with_flow();
        assert!(p.push_segment(peer_data(0, 500)));
        let out = drain(&mut p, 4);
        assert_eq!(out.events.len(), 1);
        let EventKind::RxPacket { rcv_nxt, had_payload, needs_ack, in_order, ack, .. } =
            out.events[0].kind
        else {
            panic!()
        };
        assert_eq!(rcv_nxt, SeqNum(500), "post-reassembly pointer");
        assert!(had_payload && needs_ack && in_order);
        assert_eq!(ack, SeqNum(100));
        assert_eq!(p.payload_dma_bytes(), 500, "payload DMAed at its offset");
    }

    #[test]
    fn out_of_order_then_fill() {
        let mut p = parser_with_flow();
        p.push_segment(peer_data(500, 500)); // gap
        p.push_segment(peer_data(0, 500)); // fill
        let out = drain(&mut p, 6);
        assert_eq!(out.events.len(), 2);
        let EventKind::RxPacket { rcv_nxt, in_order, .. } = out.events[0].kind else { panic!() };
        assert_eq!(rcv_nxt, SeqNum(0), "pointer unchanged by the gap");
        assert!(!in_order, "marked out-of-order: blocks coalescing");
        let EventKind::RxPacket { rcv_nxt, .. } = out.events[1].kind else { panic!() };
        assert_eq!(rcv_nxt, SeqNum(1000), "both chunks delivered");
        assert_eq!(p.payload_dma_bytes(), 1000, "OOO payload DMAed immediately");
    }

    #[test]
    fn duplicate_elicits_ack_without_dma() {
        let mut p = parser_with_flow();
        p.push_segment(peer_data(0, 100));
        p.push_segment(peer_data(0, 100)); // dup
        let out = drain(&mut p, 6);
        let EventKind::RxPacket { needs_ack, had_payload, in_order, .. } = out.events[1].kind
        else {
            panic!()
        };
        assert!(needs_ack, "RFC 793: unacceptable segment gets an ACK");
        assert!(had_payload);
        assert!(!in_order);
        assert_eq!(p.payload_dma_bytes(), 100, "duplicate not re-DMAed");
    }

    #[test]
    fn pure_ack_event_has_no_ack_due() {
        let mut p = parser_with_flow();
        p.push_segment(Segment::pure_ack(our_tuple().reversed(), SeqNum(0), SeqNum(700), 2048));
        let out = drain(&mut p, 4);
        let EventKind::RxPacket { ack, wnd, needs_ack, had_payload, .. } = out.events[0].kind
        else {
            panic!()
        };
        assert_eq!(ack, SeqNum(700));
        assert_eq!(wnd, 2048);
        assert!(!needs_ack && !had_payload, "pure ACKs are not themselves ACKed");
    }

    #[test]
    fn fin_reported_only_in_order() {
        let mut p = parser_with_flow();
        // FIN at seq 500 while 0..500 is missing: flag withheld.
        let mut fin = peer_data(500, 0);
        fin.flags = TcpFlags::FIN | TcpFlags::ACK;
        p.push_segment(fin);
        let out = drain(&mut p, 4);
        let EventKind::RxPacket { flags, .. } = out.events[0].kind else { panic!() };
        assert!(!flags.contains(TcpFlags::FIN), "out-of-order FIN withheld");
        // The missing data arrives (a plain retransmission, no FIN flag of
        // its own); the phantom completes and the parked flag rides out on
        // this event — losing it here would leave the FPU half-closed
        // forever, since the peer sees everything ACKed and stops resending.
        p.push_segment(peer_data(0, 500));
        let out = drain(&mut p, 4);
        let EventKind::RxPacket { rcv_nxt, flags, .. } = out.events[0].kind else { panic!() };
        assert_eq!(rcv_nxt, SeqNum(501), "data + FIN phantom sequenced");
        assert!(flags.contains(TcpFlags::FIN), "withheld FIN re-delivered after gap fill");
    }

    #[test]
    fn withheld_fin_not_leaked_across_reuse() {
        let mut p = parser_with_flow();
        let mut fin = peer_data(500, 0);
        fin.flags = TcpFlags::FIN | TcpFlags::ACK;
        p.push_segment(fin);
        drain(&mut p, 4);
        // The flow is torn down with the FIN still parked, and the id is
        // reissued to a fresh connection on the same tuple.
        p.remove_flow(&our_tuple(), FlowId(1));
        p.register_flow(our_tuple(), FlowId(1), SeqNum(0)).unwrap();
        p.push_segment(peer_data(0, 600));
        let out = drain(&mut p, 4);
        let EventKind::RxPacket { flags, .. } = out.events[0].kind else { panic!() };
        assert!(!flags.contains(TcpFlags::FIN), "stale pending FIN must not resurface");
    }

    #[test]
    fn syn_anchors_reassembly() {
        let mut p = RxParser::new(64, 1);
        p.register_flow(our_tuple(), FlowId(3), SeqNum(0)).unwrap();
        let mut syn_ack = peer_data(77_000, 0);
        syn_ack.flags = TcpFlags::SYN | TcpFlags::ACK;
        p.push_segment(syn_ack);
        let out = drain(&mut p, 4);
        let EventKind::RxPacket { rcv_nxt, flags, .. } = out.events[0].kind else { panic!() };
        assert_eq!(rcv_nxt, SeqNum(77_001), "anchored at peer ISN + 1");
        assert!(flags.contains(TcpFlags::SYN));
    }

    #[test]
    fn unknown_tuple_syn_on_listening_port() {
        let mut p = RxParser::new(64, 1);
        // The arriving SYN targets OUR port 5000 (the reversed tuple's
        // destination).
        p.listen(5000);
        let mut syn = peer_data(5_000, 0);
        syn.flags = TcpFlags::SYN;
        p.push_segment(syn);
        let out = drain(&mut p, 4);
        assert_eq!(out.new_connections.len(), 1, "handed to the engine for allocation");
        assert!(out.events.is_empty());
        // Same SYN to a non-listening port is dropped.
        let mut p = RxParser::new(64, 1);
        let mut syn = peer_data(5_000, 0);
        syn.flags = TcpFlags::SYN;
        p.push_segment(syn);
        let out = drain(&mut p, 4);
        assert!(out.new_connections.is_empty());
        assert_eq!(p.dropped_unknown(), 1);
    }

    #[test]
    fn parse_rate_tracks_network_domain() {
        let mut p = parser_with_flow();
        for i in 0..60u32 {
            p.push_segment(peer_data(i * 10, 10));
        }
        let out = drain(&mut p, 40);
        // ~1.288 segments per engine cycle.
        assert!((50..=52).contains(&out.events.len()), "parsed {}", out.events.len());
    }

    #[test]
    fn remove_flow_stops_events() {
        let mut p = parser_with_flow();
        p.remove_flow(&our_tuple(), FlowId(1));
        p.push_segment(peer_data(0, 100));
        let out = drain(&mut p, 4);
        assert!(out.events.is_empty());
        assert_eq!(p.dropped_unknown(), 1);
    }
}
