//! The memory manager: TCP-state handling for DRAM-resident flows.
//!
//! "We implement the memory manager that handles the events routed to
//! DRAM. The memory manager does not process TCP algorithms but handles
//! them like the event handler in FPC, and the handled events are later
//! processed in FPC. It also includes a direct-mapped TCB cache to handle
//! the frequently accessed TCBs more efficiently. To swap flows back into
//! FPC, the memory manager checks whether each flow can send packets and
//! swaps only the necessary flows to FPC" (§4.3.1).
//!
//! DRAM contents are the functional source of truth (a map of
//! `(Tcb, EventView)` pairs — the same dual-memory halves an FPC slot
//! holds); the [`f4t_mem::TcbCache`] in front is the *performance* model:
//! a hit serves the event-handling RMW from SRAM, a miss charges the
//! [`f4t_mem::DramModel`]'s byte budget — which is exactly the bottleneck
//! behind Fig. 13's DDR4 knee.

use crate::event::{EventKind, FlowEvent, TimeoutKind};
use crate::fpu::EventView;
use f4t_mem::{CacheAccess, DramKind, DramModel, TcbCache, TCB_BYTES};
use f4t_sim::check::InvariantChecker;
use f4t_sim::{
    Fifo, FlightRecorder, FlightStage, FlowSet, FlowSlab, Histogram, Journal, JournalKind,
    JournalModule, SlabQueue,
};
use f4t_tcp::{FlowId, Tcb, TcpFlags};

/// Per-cycle outputs of the memory manager.
#[derive(Debug, Default)]
pub struct MmOutput {
    /// Flows the check logic wants swapped into an FPC (they can send).
    pub swap_in_requests: Vec<FlowId>,
    /// Evictions whose DRAM write completed (the scheduler flips the
    /// location LUT from Moving to Dram — Fig. 6's evict-complete signal).
    pub evict_done: Vec<FlowId>,
    /// Events that arrived for a flow that had already left DRAM (the
    /// §3.2 in-flight-during-migration race): the scheduler re-routes
    /// them to the flow's new location.
    pub bounced: Vec<FlowEvent>,
}

/// The memory manager.
#[derive(Debug)]
pub struct MemoryManager {
    /// DRAM-resident flows: a dense `FlowId -> slot` slab (FtTurbo), so
    /// every event-handling lookup is two array indexes instead of a
    /// hash, and iteration order is ascending flow id by construction.
    store: FlowSlab<(Tcb, EventView)>,
    cache: TcbCache,
    dram: DramModel,
    input: Fifo<FlowEvent>,
    /// FtFlight stamp mirror of `input`: the engine cycle each event was
    /// routed here (`None` until [`enable_flight`](Self::enable_flight)).
    input_stamps: Option<Fifo<u64>>,
    /// Evicted TCBs from FPCs awaiting their DRAM write (bandwidth),
    /// tagged with the cycle they entered the queue. Bounded by the
    /// migration-control window (at most one eviction in flight per FPC
    /// plus new placements).
    writeback_queue: SlabQueue<(Tcb, u64)>,
    /// Flows with an outstanding swap-in request (dedup).
    swap_requested: FlowSet,
    events_handled: u64,
    /// Local cycle count (incremented per tick) for latency measurement.
    cycle: u64,
    /// Cycles each eviction waited in the write-back queue for DRAM
    /// bandwidth — the tail of this histogram is the migration cost the
    /// scheduler's 12-cycle retry bound absorbs.
    writeback_latency: Histogram,
    writeback_high: usize,
}

impl MemoryManager {
    /// Depth of the event input FIFO.
    pub const INPUT_FIFO_DEPTH: usize = 64;

    /// Creates a memory manager backed by `dram` with a TCB cache of
    /// `cache_sets` direct-mapped entries.
    pub fn new(dram: DramKind, cache_sets: usize) -> MemoryManager {
        MemoryManager {
            store: FlowSlab::with_capacity(0),
            cache: TcbCache::new(cache_sets),
            dram: DramModel::new(dram),
            input: Fifo::new(Self::INPUT_FIFO_DEPTH),
            input_stamps: None,
            writeback_queue: SlabQueue::with_capacity(16),
            swap_requested: FlowSet::with_capacity(0),
            events_handled: 0,
            cycle: 0,
            writeback_latency: Histogram::new(),
            writeback_high: 0,
        }
    }

    /// Number of DRAM-resident flows.
    pub fn flow_count(&self) -> usize {
        self.store.len()
    }

    /// Whether the event input FIFO has room.
    pub fn can_accept_event(&self) -> bool {
        !self.input.is_full()
    }

    /// Offers an event routed to DRAM; `false` under backpressure.
    pub fn push_event(&mut self, ev: FlowEvent) -> bool {
        self.push_event_at(ev, 0)
    }

    /// [`push_event`](Self::push_event) carrying the engine cycle of
    /// routing, recorded as the DRAM-side FtFlight `event_accum` start.
    pub fn push_event_at(&mut self, ev: FlowEvent, cycle: u64) -> bool {
        let accepted = self.input.push(ev).is_ok();
        if accepted {
            if let Some(stamps) = &mut self.input_stamps {
                let ok = stamps.push(cycle).is_ok();
                debug_assert!(ok, "flight stamp FIFO out of sync with mm input");
            }
        }
        accepted
    }

    /// Turns on FtFlight span stamping. Call before the first
    /// [`push_event_at`](Self::push_event_at); stamps then mirror the
    /// event input FIFO 1:1.
    pub fn enable_flight(&mut self) {
        debug_assert!(self.input.is_empty(), "enable_flight on a non-empty memory manager");
        self.input_stamps = Some(Fifo::new(Self::INPUT_FIFO_DEPTH));
    }

    /// Stores a brand-new flow directly in DRAM (initial placement when
    /// every FPC is full). Deferred through the writeback queue so it
    /// costs DRAM bandwidth like any other fill.
    pub fn insert_new(&mut self, tcb: Tcb) {
        self.writeback_queue.push_back((tcb, self.cycle));
        self.writeback_high = self.writeback_high.max(self.writeback_queue.len());
    }

    /// Accepts an evicted TCB arriving from an FPC (Fig. 6 step ⑤).
    /// The DRAM write completes asynchronously; `evict_done` reports it.
    pub fn accept_eviction(&mut self, tcb: Tcb) {
        self.writeback_queue.push_back((tcb, self.cycle));
        self.writeback_high = self.writeback_high.max(self.writeback_queue.len());
    }

    /// Hands a flow's TCB + accumulated events to the scheduler for
    /// swap-in. Charges a DRAM read unless the TCB cache holds the flow.
    /// Returns `None` when the flow is unknown or this cycle's DRAM
    /// budget is exhausted (the scheduler retries).
    pub fn take_for_swap_in(&mut self, flow: FlowId) -> Option<(Tcb, EventView)> {
        if !self.store.contains(flow.0) {
            return None;
        }
        // Migration always reads the authoritative DRAM copy (the cache
        // accelerates in-place event handling, not TCB movement).
        if !self.dram.try_access(TCB_BYTES) {
            return None;
        }
        self.cache.invalidate(flow);
        self.swap_requested.remove(flow.0);
        self.store.remove(flow.0)
    }

    /// Read-only view of a DRAM-resident TCB, including TCBs still in
    /// the write-back queue (diagnostics).
    pub fn peek_tcb(&self, flow: FlowId) -> Option<&Tcb> {
        self.store
            .get(flow.0)
            .map(|(t, _)| t)
            .or_else(|| self.writeback_queue.iter().map(|(t, _)| t).find(|t| t.flow == flow))
    }

    /// Events handled in place (the FPC-event-handler-equivalent work).
    pub fn events_handled(&self) -> u64 {
        self.events_handled
    }

    /// The DRAM channel (diagnostics: bytes served, refusals).
    pub fn dram(&self) -> &DramModel {
        &self.dram
    }

    /// TCB-cache hit rate (diagnostics).
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Cumulative TCB-cache hits (integer form of the hit rate, used by
    /// the FtPulse rate series so no floats enter digested state).
    pub fn cache_hits(&self) -> u64 {
        self.cache.hits()
    }

    /// Cumulative TCB-cache misses.
    pub fn cache_misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Reports memory-manager telemetry into `reg` under `prefix`:
    /// TCB-cache hit/miss, DRAM channel traffic and refusals, write-back
    /// queue occupancy, and the migration (write-back) latency histogram.
    pub fn collect(&self, prefix: &str, reg: &mut f4t_sim::telemetry::MetricsRegistry) {
        reg.gauge(&format!("{prefix}.flows_resident"), self.store.len() as f64);
        reg.counter(&format!("{prefix}.events_handled"), self.events_handled);
        reg.counter(&format!("{prefix}.tcb_cache.hits"), self.cache.hits());
        reg.counter(&format!("{prefix}.tcb_cache.misses"), self.cache.misses());
        reg.gauge(&format!("{prefix}.tcb_cache.hit_rate"), self.cache.hit_rate());
        reg.counter(&format!("{prefix}.dram.bytes_served"), self.dram.bytes_served());
        reg.counter(&format!("{prefix}.dram.accesses"), self.dram.accesses());
        reg.counter(&format!("{prefix}.dram.refusals"), self.dram.refusals());
        reg.gauge(&format!("{prefix}.writeback.depth"), self.writeback_queue.len() as f64);
        reg.gauge(&format!("{prefix}.writeback.high_watermark"), self.writeback_high as f64);
        reg.histogram(&format!("{prefix}.migration_latency_cycles"), &self.writeback_latency);
        self.input.collect(&format!("{prefix}.input_fifo"), reg);
    }

    /// Event-handler-style accumulation into the stored event half; the
    /// same merge rules as `Fpc::handle_event`.
    fn accumulate(tcb: &Tcb, ev: &mut EventView, event: &FlowEvent) {
        match event.kind {
            EventKind::Connect => ev.connect = true,
            EventKind::Close => ev.close = true,
            EventKind::SendReq { req } => {
                let merged = ev.req.unwrap_or(tcb.req).max_seq(req);
                ev.req = Some(merged);
            }
            EventKind::RecvConsumed { consumed } => {
                let merged = ev.consumed.unwrap_or(tcb.rcv_consumed).max_seq(consumed);
                ev.consumed = Some(merged);
            }
            EventKind::Timeout { kind } => match kind {
                TimeoutKind::Rto => ev.rto_fired = true,
                TimeoutKind::Probe => ev.probe_fired = true,
            },
            EventKind::RxPacket {
                ack,
                rcv_nxt,
                wnd,
                flags,
                had_payload,
                needs_ack,
                in_order,
                ts_val,
                ts_ecr,
            } => {
                let cur_ack = ev.ack.unwrap_or(tcb.snd_una);
                let cur_wnd = ev.wnd.unwrap_or(tcb.snd_wnd);
                let in_flight = tcb.snd_nxt.gt(cur_ack);
                if ack.gt(cur_ack) {
                    ev.ack = Some(ack);
                    ev.dup_acks = Some(0);
                } else if ack == cur_ack && !had_payload && wnd == cur_wnd && in_flight {
                    let cur_dup = ev.dup_acks.unwrap_or(tcb.dup_acks);
                    ev.dup_acks = Some(cur_dup.saturating_add(1));
                }
                if flags.contains(TcpFlags::SYN) {
                    // A SYN (re)anchors the receive sequence space at the
                    // peer's ISN; circular max-merging against the
                    // pre-handshake placeholder would pick the wrong side
                    // when the ISN is more than 2^31 away.
                    ev.rcv_nxt = Some(rcv_nxt);
                } else {
                    let merged_rcv =
                        ev.rcv_nxt.unwrap_or(tcb.rcv_nxt).max_seq(rcv_nxt);
                    ev.rcv_nxt = Some(merged_rcv);
                }
                ev.wnd = Some(wnd);
                ev.flags.insert(flags);
                ev.needs_ack |= needs_ack;
                if needs_ack && !in_order {
                    ev.dup_ack_gen = ev.dup_ack_gen.saturating_add(1);
                }
                if ts_val != 0 {
                    ev.ts_val = ts_val;
                }
                if ts_ecr != 0 {
                    ev.ts_ecr = ts_ecr;
                }
            }
        }
    }

    /// The check logic: would this flow transmit if it were in an FPC?
    /// Evaluated on the merged view "directly to TCBs in the memory"
    /// without writing back (§4.3.1).
    fn check_can_send(tcb: &Tcb, ev: &EventView) -> bool {
        // Apply the cumulative pointers to a scratch copy (TCBs are Copy).
        let mut t = *tcb;
        if let Some(req) = ev.req {
            t.req = t.req.max_seq(req);
        }
        if let Some(c) = ev.consumed {
            t.rcv_consumed = t.rcv_consumed.max_seq(c);
        }
        if let Some(w) = ev.wnd {
            t.snd_wnd = w;
        }
        if let Some(a) = ev.ack {
            if a.gt(t.snd_una) && a.le(t.snd_nxt) {
                t.snd_una = a;
            }
        }
        if let Some(d) = ev.dup_acks {
            t.dup_acks = d;
        }
        t.ack_pending = ev.needs_ack;
        t.can_send()
            || ev.connect
            || ev.close
            || ev.rto_fired
            || ev.probe_fired
            || !ev.flags.is_empty()
            || ev.ack.is_some_and(|a| a.gt(tcb.snd_una))
    }

    /// Advances one engine cycle.
    pub fn tick(&mut self, out: &mut MmOutput) {
        self.tick_flight(out, 0, None, None);
    }

    /// [`tick`](Self::tick) with FtFlight attribution: when a queued event
    /// is handled in place, the span from its routing stamp to `now_cycle`
    /// (the engine clock) is recorded as DRAM-side `event_accum`, and an
    /// FtJournal `dram_event_handled` entry is emitted when a journal is
    /// attached.
    pub fn tick_flight(
        &mut self,
        out: &mut MmOutput,
        now_cycle: u64,
        flight: Option<&mut FlightRecorder>,
        journal: Option<&mut Journal>,
    ) {
        self.cycle += 1;
        self.dram.tick();

        // 1. Evictions / new placements: one DRAM TCB write each.
        if !self.writeback_queue.is_empty() && self.dram.try_access(TCB_BYTES) {
            if let Some((tcb, enqueued)) = self.writeback_queue.pop_front() {
                let flow = tcb.flow;
                self.writeback_latency.record(self.cycle - enqueued);
                self.store.insert(flow.0, (tcb, EventView::default()));
                self.cache.fill(tcb);
                // Fresh DRAM residency: any previous swap-in request is
                // void (it may have been dropped while we were in
                // transit), so the check logic may fire again.
                self.swap_requested.remove(flow.0);
                // The freshly stored TCB may already be sendable (events
                // can accumulate on it immediately); let the check logic
                // evaluate it now rather than waiting for the next event.
                if Self::check_can_send(&tcb, &EventView::default())
                    && self.swap_requested.insert(flow.0)
                {
                    out.swap_in_requests.push(flow);
                }
                out.evict_done.push(flow);
            }
        }

        // 2. Event handling: one event per cycle when bandwidth allows.
        if let Some(&event) = self.input.front() {
            let flow = event.flow;
            if let Some(entry) = self.store.get(flow.0) {
                // Charge the memory system: cache hit = SRAM (free);
                // miss = TCB read + write-back of the RMW (2×128 B), plus
                // a dirty victim write.
                let charge = match self.cache.probe(flow) {
                    CacheAccess::Hit => 0,
                    CacheAccess::Miss { victim_dirty } => {
                        2 * TCB_BYTES + if victim_dirty { TCB_BYTES } else { 0 }
                    }
                };
                if charge == 0 || self.dram.try_access(charge) {
                    self.input.pop();
                    let stamp = self.input_stamps.as_mut().and_then(|s| s.pop());
                    if let (Some(f), Some(stamp)) = (flight, stamp) {
                        f.record(
                            FlightStage::EventAccum,
                            flow.0,
                            now_cycle.saturating_sub(stamp),
                        );
                    }
                    let (tcb, mut ev) = *entry;
                    Self::accumulate(&tcb, &mut ev, &event);
                    self.events_handled += 1;
                    let can_send = Self::check_can_send(&tcb, &ev);
                    if let Some(j) = journal {
                        j.record(
                            now_cycle,
                            JournalModule::MemoryManager,
                            JournalKind::DramEventHandled,
                            flow.0,
                            charge,
                            u64::from(can_send),
                        );
                    }
                    self.store.insert(flow.0, (tcb, ev));
                    if charge > 0 {
                        self.cache.fill(tcb);
                    }
                    if let Some(e) = self.cache.get_mut(flow) {
                        // Keep the cached copy coherent (dirty).
                        *e = tcb;
                    }
                    if can_send && self.swap_requested.insert(flow.0) {
                        out.swap_in_requests.push(flow);
                    }
                }
                // else: head-of-line wait for bandwidth — the Fig. 13 knee.
            } else if let Some(ev) = self.input.pop() {
                // The flow left DRAM while this event was in our input
                // FIFO (an event routed just before the swap-in began):
                // bounce it back to the scheduler for re-routing, exactly
                // the in-flight case §3.2 warns about. Its flight span
                // restarts when the scheduler re-stamps it at intake.
                self.input_stamps.as_mut().and_then(|s| s.pop());
                out.bounced.push(ev);
            }
        }
    }

    /// Activity horizon: `Some(cycle)` while queued events or pending
    /// write-backs exist (both retry for DRAM bandwidth every cycle),
    /// `None` when ticking would only accrue pacer credit — which
    /// [`skip_idle_cycles`](Self::skip_idle_cycles) replays exactly.
    pub fn next_activity(&self, cycle: u64) -> Option<u64> {
        if !self.input.is_empty() || !self.writeback_queue.is_empty() {
            return Some(cycle);
        }
        None
    }

    /// Fast-forward catch-up for `n` quiescent cycles: the local cycle
    /// counter advances and the DRAM pacer accrues `n` ticks of credit
    /// (batched accrual equals per-tick accrual when nothing consumes
    /// mid-window — the burst clamp is monotone).
    pub fn skip_idle_cycles(&mut self, n: u64) {
        debug_assert!(
            self.input.is_empty() && self.writeback_queue.is_empty(),
            "memory-manager fast-forward with queued work"
        );
        debug_assert!(
            self.input_stamps.as_ref().is_none_or(|s| s.is_empty()),
            "flight stamps queued across a fast-forward window"
        );
        self.cycle += n;
        self.dram.tick_n(n);
    }

    /// Flows currently resident in the DRAM store, in ascending flow-id
    /// order (FtVerify audit support). Excludes TCBs still waiting in
    /// the write-back queue — those are mid-migration and their LUT
    /// entries say `Moving`.
    pub fn resident_flows(&self) -> impl Iterator<Item = FlowId> + '_ {
        self.store.ids().map(FlowId)
    }

    /// TCBs this module holds, including write-back-queue entries still
    /// mid-migration (watchdog progress scan — same coverage as
    /// [`peek_tcb`](Self::peek_tcb), one pass instead of per-flow
    /// lookups). Deterministic order: store ascending by flow id, then
    /// the write-back queue head-first.
    pub fn resident_tcbs(&self) -> impl Iterator<Item = &Tcb> {
        self.store.iter().map(|(_, (t, _))| t).chain(self.writeback_queue.iter().map(|(t, _)| t))
    }

    /// FtVerify fault injection: plants `tcb` directly in the DRAM store,
    /// bypassing the write-back path and the Moving protocol. Exists so
    /// the negative tests can seed a dual-residency migration race the
    /// audit must detect; never called from protocol paths.
    pub fn fault_inject_store(&mut self, tcb: Tcb) {
        self.store.insert(tcb.flow.0, (tcb, EventView::default()));
    }

    /// FtVerify periodic audit: conservation on the event input FIFO.
    pub fn audit(&self, cycle: u64, chk: &mut InvariantChecker) {
        chk.check_fifo(cycle, "mm.input_fifo", &self.input);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f4t_tcp::{FourTuple, SeqNum};

    fn established(id: u32) -> Tcb {
        Tcb::established(FlowId(id), FourTuple::default(), SeqNum(1000))
    }

    fn send_event(id: u32, upto: u32) -> FlowEvent {
        FlowEvent::new(FlowId(id), EventKind::SendReq { req: SeqNum(1000).add(upto) }, 0)
    }

    fn run(mm: &mut MemoryManager, cycles: u64) -> MmOutput {
        let mut out = MmOutput::default();
        for _ in 0..cycles {
            mm.tick(&mut out);
        }
        out
    }

    #[test]
    fn eviction_completes_and_signals() {
        let mut mm = MemoryManager::new(DramKind::Hbm, 64);
        mm.accept_eviction(established(5));
        let out = run(&mut mm, 4);
        assert_eq!(out.evict_done, vec![FlowId(5)]);
        assert_eq!(mm.flow_count(), 1);
        assert!(mm.peek_tcb(FlowId(5)).is_some());
    }

    #[test]
    fn event_accumulates_and_check_logic_requests_swap_in() {
        let mut mm = MemoryManager::new(DramKind::Hbm, 64);
        mm.accept_eviction(established(5));
        run(&mut mm, 4);
        assert!(mm.push_event(send_event(5, 300)));
        let out = run(&mut mm, 4);
        assert_eq!(out.swap_in_requests, vec![FlowId(5)], "flow can send: swap it in");
        assert_eq!(mm.events_handled(), 1);
        // A second event does not duplicate the request.
        mm.push_event(send_event(5, 600));
        let out = run(&mut mm, 4);
        assert!(out.swap_in_requests.is_empty(), "request already outstanding");
    }

    #[test]
    fn idle_flow_stays_in_dram() {
        let mut mm = MemoryManager::new(DramKind::Hbm, 64);
        mm.accept_eviction(established(1));
        run(&mut mm, 4);
        // A pure window update does not make the idle flow sendable.
        let ev = FlowEvent::new(
            FlowId(1),
            EventKind::RecvConsumed { consumed: SeqNum(1000) },
            0,
        );
        mm.push_event(ev);
        let out = run(&mut mm, 4);
        assert!(out.swap_in_requests.is_empty(), "nothing to send: no swap-in");
    }

    #[test]
    fn swap_in_returns_tcb_with_accumulated_events() {
        let mut mm = MemoryManager::new(DramKind::Hbm, 64);
        mm.accept_eviction(established(5));
        run(&mut mm, 4);
        mm.push_event(send_event(5, 300));
        run(&mut mm, 4);
        let (tcb, ev) = mm.take_for_swap_in(FlowId(5)).expect("resident + bandwidth");
        assert_eq!(tcb.flow, FlowId(5));
        assert_eq!(ev.req, Some(SeqNum(1300)), "DRAM-accumulated event rides along");
        assert_eq!(mm.flow_count(), 0);
        assert!(mm.take_for_swap_in(FlowId(5)).is_none(), "gone after take");
    }

    #[test]
    fn ddr4_bandwidth_throttles_event_handling() {
        let mut mm = MemoryManager::new(DramKind::Ddr4, 4);
        // 64 flows spread across cache sets → constant conflict misses.
        for i in 0..64 {
            mm.accept_eviction(established(i));
        }
        run(&mut mm, 256);
        let mut pushed = 0u64;
        let mut cycles = 0u64;
        let mut out = MmOutput::default();
        // Feed round-robin events for 10k cycles.
        for c in 0..10_000u64 {
            let id = (c % 64) as u32;
            if mm.can_accept_event()
                && mm.push_event(send_event(id, (c / 64 + 1) as u32 * 10)) {
                    pushed += 1;
                }
            mm.tick(&mut out);
            cycles += 1;
        }
        let handled = mm.events_handled();
        // DDR4 effective ≈ 45.6 B/cycle; each miss costs ≥256 B → ≤ ~0.18
        // events/cycle. Far below the 1/cycle SRAM rate.
        assert!(handled < cycles / 4, "handled {handled} in {cycles} cycles");
        assert!(mm.dram().refusals() > 0, "bandwidth was the limiter");
        let _ = pushed;
    }

    #[test]
    fn hbm_keeps_event_rate_high() {
        let mut mm = MemoryManager::new(DramKind::Hbm, 4);
        for i in 0..64 {
            mm.accept_eviction(established(i));
        }
        run(&mut mm, 256);
        let mut out = MmOutput::default();
        let mut offered = 0u64;
        for c in 0..10_000u64 {
            let id = (c % 64) as u32;
            if mm.can_accept_event() && mm.push_event(send_event(id, (c / 64 + 1) as u32 * 10)) {
                offered += 1;
            }
            mm.tick(&mut out);
        }
        // HBM sustains ~1 event/cycle even with 100% cache misses.
        assert!(
            mm.events_handled() + 64 >= offered,
            "handled {} of {offered}",
            mm.events_handled()
        );
    }

    #[test]
    fn cache_hits_avoid_dram_traffic() {
        let mut mm = MemoryManager::new(DramKind::Ddr4, 64);
        mm.accept_eviction(established(3));
        run(&mut mm, 8);
        let served_before = mm.dram().bytes_served();
        // Repeated events to the same (cached) flow.
        let mut out = MmOutput::default();
        for i in 0..32u32 {
            mm.push_event(send_event(3, (i + 1) * 10));
            mm.tick(&mut out);
        }
        assert_eq!(mm.events_handled(), 32);
        assert_eq!(mm.dram().bytes_served(), served_before, "all hits: no DRAM bytes");
        assert!(mm.cache_hit_rate() > 0.9);
    }
}
