//! The timer module.
//!
//! "Timers create timeout events" (§4.1.2 ③). The FPU arms deadlines by
//! writing them into the TCB; the engine registers them here after
//! writeback. Expiry produces a [`FlowEvent`]-shaped timeout that is
//! routed through the scheduler like any other event; the FPU validates
//! the deadline against the TCB on arrival, so stale firings (deadline
//! re-armed or cancelled since registration) are harmless no-ops.
//!
//! [`FlowEvent`]: crate::event::FlowEvent

use crate::event::TimeoutKind;
use f4t_tcp::FlowId;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Lazy-cancellation timer wheel keyed by absolute nanosecond deadlines.
///
/// # Examples
///
/// ```
/// use f4t_core::timers::TimerWheel;
/// use f4t_core::TimeoutKind;
/// use f4t_tcp::FlowId;
///
/// let mut w = TimerWheel::new();
/// w.arm(FlowId(1), TimeoutKind::Rto, 1_000);
/// assert!(w.expired(999).is_empty());
/// assert_eq!(w.expired(1_000), vec![(FlowId(1), TimeoutKind::Rto)]);
/// ```
#[derive(Debug, Default)]
pub struct TimerWheel {
    heap: BinaryHeap<Reverse<(u64, u32, u8)>>,
    /// Latest registered deadline per (flow, kind); older heap entries are
    /// discarded on pop (lazy cancellation).
    armed: HashMap<(u32, u8), u64>,
}

fn kind_code(kind: TimeoutKind) -> u8 {
    match kind {
        TimeoutKind::Rto => 0,
        TimeoutKind::Probe => 1,
    }
}

fn code_kind(code: u8) -> TimeoutKind {
    if code == 0 {
        TimeoutKind::Rto
    } else {
        TimeoutKind::Probe
    }
}

impl TimerWheel {
    /// Creates an empty wheel.
    pub fn new() -> TimerWheel {
        TimerWheel::default()
    }

    /// Registers (or moves) the deadline for `(flow, kind)`. Re-arming
    /// with the same deadline is a no-op, so the engine can call this on
    /// every FPU writeback without flooding the heap.
    pub fn arm(&mut self, flow: FlowId, kind: TimeoutKind, deadline_ns: u64) {
        let key = (flow.0, kind_code(kind));
        if self.armed.get(&key) == Some(&deadline_ns) {
            return;
        }
        self.armed.insert(key, deadline_ns);
        self.heap.push(Reverse((deadline_ns, flow.0, kind_code(kind))));
    }

    /// Cancels the timer for `(flow, kind)` (lazy: heap entries are
    /// discarded when popped).
    pub fn disarm(&mut self, flow: FlowId, kind: TimeoutKind) {
        self.armed.remove(&(flow.0, kind_code(kind)));
    }

    /// Pops every timer whose deadline is at or before `now_ns`.
    pub fn expired(&mut self, now_ns: u64) -> Vec<(FlowId, TimeoutKind)> {
        let mut fired = Vec::new();
        while let Some(&Reverse((deadline, flow, code))) = self.heap.peek() {
            if deadline > now_ns {
                break;
            }
            self.heap.pop();
            // Only the latest registration counts.
            if self.armed.get(&(flow, code)) == Some(&deadline) {
                self.armed.remove(&(flow, code));
                fired.push((FlowId(flow), code_kind(code)));
            }
        }
        fired
    }

    /// Number of live (non-cancelled) timers.
    pub fn live(&self) -> usize {
        self.armed.len()
    }

    /// Activity horizon in nanoseconds: the earliest heap deadline, or
    /// `None` when the heap is empty. Conservative under lazy
    /// cancellation — a cancelled entry still bounds the horizon, because
    /// the tick-by-tick run pops (and discards) it at exactly that
    /// deadline, and fast-forward must land on the same cycle to keep the
    /// heap state identical.
    pub fn next_activity_ns(&self) -> Option<u64> {
        self.heap.peek().map(|&Reverse((deadline, _, _))| deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_in_deadline_order() {
        let mut w = TimerWheel::new();
        w.arm(FlowId(1), TimeoutKind::Rto, 300);
        w.arm(FlowId(2), TimeoutKind::Rto, 100);
        assert_eq!(w.expired(50), vec![]);
        assert_eq!(w.expired(200), vec![(FlowId(2), TimeoutKind::Rto)]);
        assert_eq!(w.expired(400), vec![(FlowId(1), TimeoutKind::Rto)]);
    }

    #[test]
    fn rearm_supersedes_old_deadline() {
        let mut w = TimerWheel::new();
        w.arm(FlowId(1), TimeoutKind::Rto, 100);
        w.arm(FlowId(1), TimeoutKind::Rto, 500); // pushed out
        assert!(w.expired(100).is_empty(), "old registration cancelled");
        assert_eq!(w.expired(500), vec![(FlowId(1), TimeoutKind::Rto)]);
    }

    #[test]
    fn disarm_cancels() {
        let mut w = TimerWheel::new();
        w.arm(FlowId(1), TimeoutKind::Probe, 100);
        w.disarm(FlowId(1), TimeoutKind::Probe);
        assert!(w.expired(1_000).is_empty());
        assert_eq!(w.live(), 0);
    }

    #[test]
    fn duplicate_arm_is_noop() {
        let mut w = TimerWheel::new();
        for _ in 0..1000 {
            w.arm(FlowId(1), TimeoutKind::Rto, 100);
        }
        assert_eq!(w.expired(100).len(), 1, "exactly one firing");
    }

    #[test]
    fn next_activity_tracks_earliest_heap_entry() {
        let mut w = TimerWheel::new();
        assert_eq!(w.next_activity_ns(), None);
        w.arm(FlowId(1), TimeoutKind::Rto, 300);
        w.arm(FlowId(2), TimeoutKind::Rto, 100);
        assert_eq!(w.next_activity_ns(), Some(100));
        w.disarm(FlowId(2), TimeoutKind::Rto);
        // Lazy cancellation: the stale entry still bounds the horizon
        // until popped — the tick-by-tick run pops it at this deadline,
        // so fast-forward must land on the same cycle.
        assert_eq!(w.next_activity_ns(), Some(100));
        assert!(w.expired(100).is_empty());
        assert_eq!(w.next_activity_ns(), Some(300));
    }

    #[test]
    fn kinds_are_independent() {
        let mut w = TimerWheel::new();
        w.arm(FlowId(1), TimeoutKind::Rto, 100);
        w.arm(FlowId(1), TimeoutKind::Probe, 100);
        let fired = w.expired(100);
        assert_eq!(fired.len(), 2);
    }
}
