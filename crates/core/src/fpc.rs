//! The flow processing core (FPC).
//!
//! One FPC (Fig. 4) composes:
//!
//! * the **event handler**, which accumulates incoming events into the
//!   event table by overwriting cumulative pointers and OR-ing occurrence
//!   bits, with duplicate-ACK counting as its only single-cycle RMW
//!   (§4.2.1);
//! * the **dual memory** — a TCB table written by the FPU and an event
//!   table written by the event handler, with per-entry valid bits merged
//!   at dispatch (§4.2.3);
//! * the **TCB manager**, which round-robins over slots, constructs the
//!   merged up-to-date TCB, clears valid bits and issues to the FPU;
//! * the **FPU** pipeline (see [`crate::fpu`]);
//! * the **evict checker**, which diverts processed TCBs whose evict flag
//!   is set toward DRAM without consuming an extra memory port (§4.3.2);
//! * the **CAM** mapping global flow ids to local slots (§4.4.2).
//!
//! The two-cycle port schedule is honoured structurally: event handling
//! and TCB acceptance happen on even cycles, FPU writeback and TCB-manager
//! dispatch on odd cycles — one event and one dispatch per two cycles,
//! i.e. 125 M events/s per FPC at 250 MHz.

use crate::event::{EventKind, FlowEvent, TimeoutKind, TxRequest};
use crate::fpu::{EventView, Fpu, FpuOutcome};
use f4t_mem::Cam;
use f4t_sim::check::{InvariantChecker, PortTracker, ViolationKind};
use f4t_sim::clock::odd_cycles_in;
use f4t_sim::{Fifo, FlightRecorder, FlightStage, FlowSet};
use f4t_tcp::{CongestionControl, FlowId, Tcb, TcpFlags};
use std::sync::Arc;

/// How the TCB manager walks the slot array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanPolicy {
    /// Jump to the next slot with pending work (a hardware priority
    /// encoder); same-flow spacing is still guaranteed by the in-flight
    /// guard. Default.
    #[default]
    SkipIdle,
    /// Visit every slot in fixed order whether or not it has work —
    /// the paper's plainest description, with a hard round period of
    /// `2 × slots` cycles.
    FullIteration,
}

/// FtTurbo struct-of-arrays slot table: the dual memory's TCB half and
/// event half plus the scheduling metadata live in parallel arrays
/// indexed by slot, with the three per-slot flags held as dense bitsets
/// ([`FlowSet`] keyed by slot index). The dispatch scan, the FtVerify
/// audit and the watchdog residency pass touch only the word-packed
/// flags and the one array they need, instead of striding over a
/// ~200-byte AoS `Slot` per probe.
struct SlotTable {
    tcbs: Vec<Tcb>,
    evs: Vec<EventView>,
    occupied: FlowSet,
    in_fpu: FlowSet,
    /// Slots whose event-table entry has at least one valid bit set; its
    /// `len()` is the FtScope valid-bit utilization gauge.
    pending: FlowSet,
    /// Last cycle each slot was installed or dispatched; the FtVerify
    /// audit uses it to bound how long a valid event entry may sit
    /// without being scheduled (valid-bit leak detection).
    last_progress: Vec<u64>,
    /// Cycle each slot's event-table entry last turned valid (pending
    /// false→true); the FtFlight `event_accum` span runs from here to the
    /// FPU issue that consumes the accumulated view.
    pending_since: Vec<u64>,
}

impl SlotTable {
    fn new(slots: usize) -> SlotTable {
        SlotTable {
            tcbs: vec![Tcb::new(FlowId(u32::MAX)); slots],
            evs: vec![EventView::default(); slots],
            occupied: FlowSet::with_capacity(slots),
            in_fpu: FlowSet::with_capacity(slots),
            pending: FlowSet::with_capacity(slots),
            last_progress: vec![0; slots],
            pending_since: vec![0; slots],
        }
    }

    fn len(&self) -> usize {
        self.tcbs.len()
    }

    /// Occupied, has a valid event entry, and its TCB is not in flight.
    #[inline]
    fn dispatchable(&self, idx: usize) -> bool {
        let i = idx as u32;
        self.occupied.contains(i) && self.pending.contains(i) && !self.in_fpu.contains(i)
    }

    /// Sets a slot's valid-entry flag, stamping `pending_since` on the
    /// false→true transition.
    #[inline]
    fn set_pending(&mut self, idx: usize, pending: bool, cycle: u64) {
        if pending {
            if self.pending.insert(idx as u32) {
                self.pending_since[idx] = cycle;
            }
        } else {
            self.pending.remove(idx as u32);
        }
    }
}

/// Everything an FPC produced in one cycle, drained by the engine.
#[derive(Debug, Default)]
pub struct FpcOutput {
    /// Transmit requests for the packet generator.
    pub tx: Vec<TxRequest>,
    /// FPU outcomes (host notifications, timer re-arms) per flow.
    pub outcomes: Vec<(FlowId, FpuOutcome, Tcb)>,
    /// TCBs diverted by the evict checker (destined for DRAM or another
    /// FPC, per the scheduler's migration in progress).
    pub evicted: Vec<Tcb>,
    /// Flows whose swap-in completed this cycle (the engine flips their
    /// location-LUT entry from Moving to this FPC).
    pub installed: Vec<FlowId>,
}

/// A flow processing core.
pub struct Fpc {
    id: u8,
    table: SlotTable,
    cam: Cam,
    fpu: Fpu,
    rr_ptr: usize,
    scan: ScanPolicy,
    /// Events routed here by the scheduler (paper: events of a flow are
    /// only routed while the location LUT says this FPC owns it).
    input_events: Fifo<FlowEvent>,
    /// FtFlight stamp mirror of `input_events`: the engine cycle the
    /// scheduler routed each event here (`None` until
    /// [`enable_flight`](Self::enable_flight)). The wait measures the
    /// SRAM-resident TCB fetch path (`tcb_fetch_sram`).
    ev_stamps: Option<Fifo<u64>>,
    /// Swap-in TCBs with their accumulated event-table half (dedicated
    /// write port: one accept per two cycles).
    input_tcbs: Fifo<(Tcb, EventView)>,
    events_handled: u64,
    dispatches: u64,
    stale_events: u64,
    /// Events accumulated while the slot's TCB was in flight in the FPU —
    /// each one would have stalled a w-RMW design (paper §4.2.1).
    rmw_hazard_events: u64,
    /// Cycles the event handler spent stalled waiting for an in-flight
    /// TCB to return before it could read-modify-write. Structurally zero
    /// in F4T: event accumulation never waits. The counter exists so the
    /// paper's stall-free claim is *checkable*, not assumed.
    rmw_stall_cycles: u64,
    /// Odd (dispatch) cycles with no pending work anywhere.
    stall_fifo_empty: u64,
    /// Odd cycles where pending work existed but every candidate slot was
    /// blocked on its TCB being in flight (TCB-miss wait).
    stall_tcb_wait: u64,
    /// Odd cycles where downstream TX/evict backpressure closed the gate.
    stall_backpressure: u64,
    /// Per-cycle sums for occupancy gauges (divide by `ticks`).
    occupied_sum: u64,
    valid_sum: u64,
    fpu_depth_sum: u64,
    ticks: u64,
    /// FtVerify per-cycle port accounting for the dual memory; only
    /// consulted when an [`InvariantChecker`] is attached to the tick.
    tcb_ports: PortTracker,
    ev_ports: PortTracker,
}

impl std::fmt::Debug for Fpc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fpc")
            .field("id", &self.id)
            .field("flows", &self.cam.len())
            .field("events_handled", &self.events_handled)
            .finish_non_exhaustive()
    }
}

impl Fpc {
    /// Depth of the event input FIFO; when full the scheduler sees
    /// backpressure and triggers load-balancing migration (§4.4.2).
    pub const INPUT_FIFO_DEPTH: usize = 32;

    /// Creates an FPC with `slots` TCB slots running `cc`.
    pub fn new(
        id: u8,
        slots: usize,
        cc: Arc<dyn CongestionControl>,
        fpu_latency_override: Option<u32>,
        mss: u32,
        scan: ScanPolicy,
    ) -> Fpc {
        Fpc {
            id,
            table: SlotTable::new(slots),
            cam: Cam::new(slots),
            fpu: Fpu::new(cc, fpu_latency_override, mss),
            rr_ptr: 0,
            scan,
            input_events: Fifo::new(Self::INPUT_FIFO_DEPTH),
            ev_stamps: None,
            input_tcbs: Fifo::new(4),
            events_handled: 0,
            dispatches: 0,
            stale_events: 0,
            rmw_hazard_events: 0,
            rmw_stall_cycles: 0,
            stall_fifo_empty: 0,
            stall_tcb_wait: 0,
            stall_backpressure: 0,
            occupied_sum: 0,
            valid_sum: 0,
            fpu_depth_sum: 0,
            ticks: 0,
            tcb_ports: PortTracker::new(format!("fpc{id}.tcb_table"), 2),
            ev_ports: PortTracker::new(format!("fpc{id}.event_table"), 2),
        }
    }

    /// This FPC's id.
    pub fn id(&self) -> u8 {
        self.id
    }

    /// Number of resident flows.
    pub fn flow_count(&self) -> usize {
        self.cam.len()
    }

    /// Free TCB slots.
    pub fn free_slots(&self) -> usize {
        self.cam.capacity() - self.cam.len()
    }

    /// Whether the event input FIFO is full (scheduler backpressure).
    pub fn input_full(&self) -> bool {
        self.input_events.is_full()
    }

    /// Current event input backlog.
    pub fn input_backlog(&self) -> usize {
        self.input_events.len()
    }

    /// Instantaneous valid event-table entries (FtPulse occupancy gauge;
    /// the per-cycle average lives in `event_table.valid_entries_avg`).
    pub fn event_table_valid(&self) -> usize {
        self.table.pending.len()
    }

    /// Instantaneous FPU pipeline slots in use (FtPulse occupancy gauge).
    pub fn fpu_depth(&self) -> usize {
        self.fpu.depth_used()
    }

    /// Whether the swap-in port can accept a TCB.
    pub fn can_accept_tcb(&self) -> bool {
        !self.input_tcbs.is_full() && self.free_slots() > self.input_tcbs.len()
    }

    /// Total events handled into the event table.
    pub fn events_handled(&self) -> u64 {
        self.events_handled
    }

    /// Total TCB dispatches to the FPU.
    pub fn dispatches(&self) -> u64 {
        self.dispatches
    }

    /// Events dropped because their flow had already closed (strays).
    pub fn stale_events(&self) -> u64 {
        self.stale_events
    }

    /// Events that would have stalled a w-RMW design (the flow's TCB was
    /// in flight in the FPU when the event was accumulated).
    pub fn rmw_hazard_events(&self) -> u64 {
        self.rmw_hazard_events
    }

    /// Cycles the event handler stalled waiting for an in-flight TCB.
    /// Structurally zero in F4T — exposed so the stall-free claim is
    /// asserted by tests instead of assumed.
    pub fn rmw_stall_cycles(&self) -> u64 {
        self.rmw_stall_cycles
    }

    /// Dispatch-stall cycle counts, in taxonomy order:
    /// `(fifo_empty, tcb_wait, evict_backpressure)`.
    pub fn stall_cycles(&self) -> (u64, u64, u64) {
        (self.stall_fifo_empty, self.stall_tcb_wait, self.stall_backpressure)
    }

    /// Reports this FPC's counters and gauges under `prefix` (e.g.
    /// `engine.fpc0`).
    pub fn collect(&self, prefix: &str, reg: &mut f4t_sim::telemetry::MetricsRegistry) {
        reg.counter(&format!("{prefix}.events_handled"), self.events_handled);
        reg.counter(&format!("{prefix}.dispatches"), self.dispatches);
        reg.counter(&format!("{prefix}.stale_events"), self.stale_events);
        reg.counter(&format!("{prefix}.stall.fifo_empty"), self.stall_fifo_empty);
        reg.counter(&format!("{prefix}.stall.tcb_wait"), self.stall_tcb_wait);
        reg.counter(&format!("{prefix}.stall.evict_backpressure"), self.stall_backpressure);
        reg.counter(&format!("{prefix}.rmw.hazard_events"), self.rmw_hazard_events);
        reg.counter(&format!("{prefix}.rmw.stall_cycles"), self.rmw_stall_cycles);
        let ticks = self.ticks.max(1) as f64;
        reg.gauge(
            &format!("{prefix}.event_table.occupancy_avg"),
            self.occupied_sum as f64 / ticks,
        );
        reg.gauge(
            &format!("{prefix}.event_table.valid_entries_avg"),
            self.valid_sum as f64 / ticks,
        );
        reg.gauge(&format!("{prefix}.fpu.occupancy_avg"), self.fpu_depth_sum as f64 / ticks);
        reg.counter(&format!("{prefix}.fpu.processed"), self.fpu.processed());
        self.input_events.collect(&format!("{prefix}.input_fifo"), reg);
        self.input_tcbs.collect(&format!("{prefix}.swapin_fifo"), reg);
    }

    /// Offers an event; returns `false` under backpressure.
    pub fn push_event(&mut self, ev: FlowEvent) -> bool {
        self.push_event_at(ev, 0)
    }

    /// [`push_event`](Self::push_event) carrying the engine cycle of
    /// routing, recorded as the FtFlight `tcb_fetch_sram` span start.
    pub fn push_event_at(&mut self, ev: FlowEvent, cycle: u64) -> bool {
        let accepted = self.input_events.push(ev).is_ok();
        if accepted {
            if let Some(stamps) = &mut self.ev_stamps {
                let ok = stamps.push(cycle).is_ok();
                debug_assert!(ok, "flight stamp FIFO out of sync with fpc input");
            }
        }
        accepted
    }

    /// Turns on FtFlight span stamping. Call before the first
    /// [`push_event_at`](Self::push_event_at); stamps then mirror the
    /// event input FIFO 1:1.
    pub fn enable_flight(&mut self) {
        debug_assert!(self.input_events.is_empty(), "enable_flight on a non-empty FPC");
        self.ev_stamps = Some(Fifo::new(Self::INPUT_FIFO_DEPTH));
    }

    /// Offers a swap-in TCB with its accumulated event half; returns
    /// `false` when the port is busy. Events accumulated while the flow
    /// lived in DRAM ride along so nothing is lost in migration.
    pub fn push_tcb(&mut self, tcb: Tcb, ev: EventView) -> bool {
        if !self.can_accept_tcb() {
            return false;
        }
        self.input_tcbs.push((tcb, ev)).is_ok()
    }

    /// Marks `flow` for eviction (scheduler step ③ of Fig. 6): sets the
    /// TCB's evict flag; the evict checker diverts it after its next FPU
    /// pass. Returns `false` if the flow is not resident.
    pub fn request_evict(&mut self, flow: FlowId) -> bool {
        let Some(slot_idx) = self.cam.lookup(flow) else { return false };
        self.table.tcbs[slot_idx].evict = true;
        let since = self.table.last_progress[slot_idx];
        self.table.set_pending(slot_idx, true, since); // force a prompt FPU pass
        true
    }

    /// The least-recently-active resident flow not already being evicted
    /// (the "coldest" flow the FPC answers the scheduler with, Fig. 6 ②).
    pub fn coldest_flow(&self) -> Option<FlowId> {
        self.table
            .occupied
            .iter()
            .filter(|&i| !self.table.tcbs[i as usize].evict && !self.table.in_fpu.contains(i))
            .min_by_key(|&i| self.table.tcbs[i as usize].last_active_ns)
            .map(|i| self.table.tcbs[i as usize].flow)
    }

    /// Read-only view of a resident flow's TCB (diagnostics, Fig. 14
    /// congestion-window traces).
    pub fn peek_tcb(&self, flow: FlowId) -> Option<&Tcb> {
        self.table
            .occupied
            .iter()
            .map(|i| &self.table.tcbs[i as usize])
            .find(|t| t.flow == flow)
    }

    /// Event-handler write: accumulate `event` into the event table.
    fn handle_event(
        &mut self,
        event: FlowEvent,
        now_ns: u64,
        cycle: u64,
        chk: Option<&mut InvariantChecker>,
    ) {
        if let Some(chk) = chk {
            // Event accumulation is the even phase of the two-cycle port
            // schedule (§4.2.3); running it on a dispatch cycle would
            // collide with the TCB manager's event-table ports.
            if !cycle.is_multiple_of(2) {
                chk.report(
                    cycle,
                    ViolationKind::ScheduleParity,
                    format!("fpc{}", self.id),
                    "event accumulation on an odd (dispatch) cycle".into(),
                );
            }
            // One event-table write per handled event. The dup-ACK
            // increment is the paper's only single-cycle RMW and lives in
            // a dedicated counter array, not a second BRAM port (§4.2.1).
            self.ev_ports.access(cycle, 1, chk);
        }
        let Some(slot_idx) = self.cam.lookup(event.flow) else {
            // The moving-state protocol prevents migration races, but a
            // connection that just CLOSED frees its slot with events
            // possibly still in our input FIFO (e.g. a retransmitted FIN
            // behind the ACK that completed the close). Real stacks
            // answer such strays with an RST; we drop and count them.
            self.stale_events += 1;
            return;
        };
        if self.table.in_fpu.contains(slot_idx as u32) {
            // A w-RMW design would stall here until the in-flight TCB
            // returned; F4T accumulates into the event table and moves on.
            self.rmw_hazard_events += 1;
        }
        self.table.set_pending(slot_idx, true, cycle);
        self.table.tcbs[slot_idx].last_active_ns = now_ns;
        self.events_handled += 1;
        // SoA split borrow: the event-table row is written against a
        // read-only view of the TCB-table row.
        let tcb = &self.table.tcbs[slot_idx];
        let ev = &mut self.table.evs[slot_idx];
        match event.kind {
            EventKind::Connect => ev.connect = true,
            EventKind::Close => ev.close = true,
            EventKind::SendReq { req } => {
                let merged = ev.req.unwrap_or(tcb.req).max_seq(req);
                ev.req = Some(merged);
            }
            EventKind::RecvConsumed { consumed } => {
                let merged = ev.consumed.unwrap_or(tcb.rcv_consumed).max_seq(consumed);
                ev.consumed = Some(merged);
            }
            EventKind::Timeout { kind } => match kind {
                TimeoutKind::Rto => ev.rto_fired = true,
                TimeoutKind::Probe => ev.probe_fired = true,
            },
            EventKind::RxPacket {
                ack,
                rcv_nxt,
                wnd,
                flags,
                had_payload,
                needs_ack,
                in_order,
                ts_val,
                ts_ecr,
            } => {
                // Merged views (event table if valid, else TCB table).
                let cur_ack = ev.ack.unwrap_or(tcb.snd_una);
                let cur_wnd = ev.wnd.unwrap_or(tcb.snd_wnd);
                let in_flight = tcb.snd_nxt.gt(cur_ack);
                if ack.gt(cur_ack) {
                    ev.ack = Some(ack);
                    ev.dup_acks = Some(0);
                } else if ack == cur_ack && !had_payload && wnd == cur_wnd && in_flight {
                    // The single-cycle RMW: increment the merged count.
                    let cur_dup = ev.dup_acks.unwrap_or(tcb.dup_acks);
                    ev.dup_acks = Some(cur_dup.saturating_add(1));
                }
                if flags.contains(TcpFlags::SYN) {
                    // A SYN (re)anchors the receive sequence space at the
                    // peer's ISN; circular max-merging against the
                    // pre-handshake placeholder would pick the wrong side
                    // when the ISN is more than 2^31 away.
                    ev.rcv_nxt = Some(rcv_nxt);
                } else {
                    let merged_rcv = ev.rcv_nxt.unwrap_or(tcb.rcv_nxt).max_seq(rcv_nxt);
                    ev.rcv_nxt = Some(merged_rcv);
                }
                ev.wnd = Some(wnd);
                ev.flags.insert(flags);
                ev.needs_ack |= needs_ack;
                if needs_ack && !in_order {
                    ev.dup_ack_gen = ev.dup_ack_gen.saturating_add(1);
                }
                if ts_val != 0 {
                    ev.ts_val = ts_val;
                }
                if ts_ecr != 0 {
                    ev.ts_ecr = ts_ecr;
                }
            }
        }
    }

    /// TCB-manager dispatch: pick the next slot per the scan policy,
    /// construct the merged TCB, clear valid bits and issue to the FPU.
    /// `gate_open` is false when the downstream TX path is exerting
    /// backpressure (dispatch throttles rather than stalls mid-pipeline).
    fn dispatch(
        &mut self,
        now_cycle: u64,
        gate_open: bool,
        chk: Option<&mut InvariantChecker>,
        flight: Option<&mut FlightRecorder>,
    ) {
        if !gate_open {
            self.stall_backpressure += 1;
            return;
        }
        let n = self.table.len();
        let issued = match self.scan {
            ScanPolicy::FullIteration => {
                let idx = self.rr_ptr;
                self.rr_ptr = (self.rr_ptr + 1) % n;
                self.try_issue(idx, now_cycle, chk, flight)
            }
            ScanPolicy::SkipIdle => {
                let mut issued = false;
                for off in 0..n {
                    let idx = (self.rr_ptr + off) % n;
                    if self.table.dispatchable(idx) {
                        self.rr_ptr = (idx + 1) % n;
                        issued = self.try_issue(idx, now_cycle, chk, flight);
                        break;
                    }
                }
                issued
            }
        };
        if !issued {
            // Classify the bubble: was there simply nothing to do, or was
            // pending work blocked on a TCB still in the FPU pipeline?
            if self.table.pending.is_empty() && self.input_events.is_empty() {
                self.stall_fifo_empty += 1;
            } else {
                self.stall_tcb_wait += 1;
            }
        }
    }

    fn try_issue(
        &mut self,
        idx: usize,
        now_cycle: u64,
        chk: Option<&mut InvariantChecker>,
        flight: Option<&mut FlightRecorder>,
    ) -> bool {
        if !self.table.dispatchable(idx) {
            return false;
        }
        if let Some(chk) = chk {
            // Dispatch is the odd phase of the two-cycle schedule.
            if now_cycle.is_multiple_of(2) {
                chk.report(
                    now_cycle,
                    ViolationKind::ScheduleParity,
                    format!("fpc{}", self.id),
                    "TCB dispatch on an even (event) cycle".into(),
                );
            }
            // Construct-read on the TCB table; construct-read plus
            // valid-bit clear on the event table.
            self.tcb_ports.access(now_cycle, 1, chk);
            self.ev_ports.access(now_cycle, 2, chk);
            // Structural stall-free check: the in-FPU guard above must
            // agree with the pipeline's actual contents, otherwise a TCB
            // is read-modify-written while an older copy is in flight.
            if self.fpu.in_flight(self.table.tcbs[idx].flow) {
                chk.report(
                    now_cycle,
                    ViolationKind::RmwHazard,
                    format!("fpc{}", self.id),
                    format!(
                        "flow {} dispatched while already in the FPU pipeline",
                        self.table.tcbs[idx].flow
                    ),
                );
            }
        }
        if let Some(f) = flight {
            // The accumulation wait: valid bits first set to the merged
            // view being consumed by this FPU issue.
            f.record(
                FlightStage::EventAccum,
                self.table.tcbs[idx].flow.0,
                now_cycle.saturating_sub(self.table.pending_since[idx]),
            );
        }
        // Construct the merged TCB: event-table values with valid bits set
        // override; dup-ACK count rides in the EventView (its valid bit is
        // NOT cleared at dispatch — see the event handler above).
        let merged_ev = self.table.evs[idx];
        // Clear valid bits (§4.2.3 step ④), except the dup-ACK counter
        // which must keep accumulating against the merged view while the
        // FPU is in flight.
        self.table.evs[idx] = EventView { dup_acks: merged_ev.dup_acks, ..EventView::default() };
        self.table.set_pending(idx, false, now_cycle);
        self.table.in_fpu.insert(idx as u32);
        self.table.last_progress[idx] = now_cycle;
        self.dispatches += 1;
        self.fpu.issue(self.table.tcbs[idx], merged_ev, now_cycle);
        true
    }

    /// Advances one 250 MHz cycle.
    ///
    /// `tx_gate_open` reflects packet-generator FIFO space; when false the
    /// TCB manager pauses dispatch (events keep accumulating — this is the
    /// mechanism behind the paper's observation that link backpressure
    /// grows the effective request size, §5.1).
    pub fn tick(&mut self, cycle: u64, now_ns: u64, tx_gate_open: bool, out: &mut FpcOutput) {
        self.tick_checked(cycle, now_ns, tx_gate_open, out, None, None);
    }

    /// [`Fpc::tick`] with an optional FtVerify checker and FtFlight
    /// recorder attached; the engine routes its checker here when
    /// `EngineConfig::check` is set and its recorder when
    /// `EngineConfig::flight` is. The `None` paths are a single branch per
    /// call site — production runs pay nothing.
    pub fn tick_checked(
        &mut self,
        cycle: u64,
        now_ns: u64,
        tx_gate_open: bool,
        out: &mut FpcOutput,
        mut chk: Option<&mut InvariantChecker>,
        mut flight: Option<&mut FlightRecorder>,
    ) {
        // FtScope occupancy gauges: three u64 adds per cycle.
        self.ticks += 1;
        self.occupied_sum += self.cam.len() as u64;
        self.valid_sum += self.table.pending.len() as u64;
        self.fpu_depth_sum += self.fpu.depth_used() as u64;
        // FPU advances every cycle; completions write back / evict.
        if let Some(result) = self.fpu.tick(cycle, now_ns) {
            let flow = result.tcb.flow;
            if let Some(f) = flight.as_deref_mut() {
                f.record(
                    FlightStage::FpuProcess,
                    flow.0,
                    cycle.saturating_sub(result.issued_cycle),
                );
            }
            if let Some(c) = chk.as_deref_mut() {
                // FPU write-back port on the TCB table.
                self.tcb_ports.access(cycle, 1, c);
            }
            if let Some(idx) = self.cam.lookup(flow) {
                if let Some(c) = chk.as_deref_mut() {
                    if !self.table.in_fpu.contains(idx as u32) {
                        // The pipeline returned a TCB the slot bookkeeping
                        // no longer considers in flight: a stale copy was
                        // processed concurrently with the live slot.
                        c.report(
                            cycle,
                            ViolationKind::RmwHazard,
                            format!("fpc{}", self.id),
                            format!("FPU write-back for flow {flow} whose slot is not in-FPU"),
                        );
                    }
                }
                self.table.in_fpu.remove(idx as u32);
                // The evict flag may have been set on the slot while this
                // TCB was in flight; honour it either way.
                let evict_requested = result.tcb.evict || self.table.tcbs[idx].evict;
                // Evict checker: divert processed TCBs with the flag set,
                // but only once no unprocessed events remain (ensuring
                // "TCBs are always processed before they are evicted").
                if result.outcome.closed {
                    // Connection fully closed: free the slot and CAM
                    // entry; the engine tears down the flow-table and
                    // location-LUT state from the Closed notification.
                    self.table.occupied.remove(idx as u32);
                    self.table.evs[idx] = EventView::default();
                    self.table.tcbs[idx].evict = false;
                    self.table.set_pending(idx, false, cycle);
                    self.cam.remove(flow);
                } else if evict_requested
                    && !self.table.evs[idx].any_except_dup_acks()
                    && !self.table.pending.contains(idx as u32)
                {
                    let mut tcb = result.tcb;
                    tcb.evict = false;
                    self.table.occupied.remove(idx as u32);
                    self.table.evs[idx] = EventView::default();
                    self.cam.remove(flow);
                    out.evicted.push(tcb);
                } else {
                    self.table.tcbs[idx] = result.tcb;
                    self.table.tcbs[idx].evict = evict_requested;
                    if evict_requested || result.outcome.more_work {
                        self.table.set_pending(idx, true, cycle);
                    }
                }
                out.tx.extend_from_slice(&result.outcome.tx);
                out.outcomes.push((flow, result.outcome, result.tcb));
            } else {
                debug_assert!(false, "FPU completed for unknown flow {flow}");
            }
        }

        if cycle.is_multiple_of(2) {
            // Even cycle: event handling + swap-in acceptance.
            if let Some(ev) = self.input_events.pop() {
                let stamp = self.ev_stamps.as_mut().and_then(|s| s.pop());
                if let (Some(f), Some(stamp)) = (flight.as_deref_mut(), stamp) {
                    f.record(FlightStage::TcbFetchSram, ev.flow.0, cycle.saturating_sub(stamp));
                }
                self.handle_event(ev, now_ns, cycle, chk.as_deref_mut());
            }
            if let Some((tcb, ev)) = self.input_tcbs.pop() {
                let flow = tcb.flow;
                if let Some(c) = chk.as_deref_mut() {
                    // Swap-in writes both halves of the dual memory.
                    self.tcb_ports.access(cycle, 1, c);
                    self.ev_ports.access(cycle, 1, c);
                }
                if let Some(slot_idx) = self.cam.insert(flow) {
                    let pending = tcb.can_send() || ev.any();
                    self.table.tcbs[slot_idx] = tcb;
                    self.table.evs[slot_idx] = ev;
                    self.table.set_pending(slot_idx, pending, cycle);
                    self.table.in_fpu.remove(slot_idx as u32);
                    self.table.occupied.insert(slot_idx as u32);
                    self.table.last_progress[slot_idx] = cycle;
                    out.installed.push(flow);
                } else {
                    if let Some(c) = chk.as_deref_mut() {
                        c.report(
                            cycle,
                            ViolationKind::MigrationRace,
                            format!("fpc{}", self.id),
                            format!("swap-in of flow {flow} with no free slot"),
                        );
                    }
                    debug_assert!(false, "swap-in with no free slot at FPC {}", self.id);
                }
            }
        } else {
            // Odd cycle: TCB-manager dispatch (FPU writeback handled above).
            self.dispatch(cycle, tx_gate_open, chk, flight);
        }
    }

    /// Activity horizon: the earliest cycle at which ticking this FPC can
    /// change observable state, beyond the per-cycle accumulators that
    /// [`skip_cycles`](Self::skip_cycles) replays. `Some(cycle)` means
    /// there is work right now (queued input, or a dispatchable slot);
    /// a later cycle means the only scheduled event is the FPU head
    /// completing; `None` means idle until new input arrives.
    pub fn next_activity(&self, cycle: u64) -> Option<u64> {
        if !self.input_events.is_empty() || !self.input_tcbs.is_empty() {
            return Some(cycle);
        }
        // A pending slot whose TCB is not in flight dispatches on the
        // next odd cycle; treat it as immediate work. Scanning the
        // valid-entry bitset alone (instead of every slot) keeps the
        // fast-forward probe O(pending), the common case being empty.
        if self.table.pending.iter().any(|i| self.table.dispatchable(i as usize)) {
            return Some(cycle);
        }
        self.fpu.next_activity().map(|c| c.max(cycle))
    }

    /// Fast-forward catch-up for `n` quiescent cycles starting at
    /// `from_cycle`. The caller guarantees [`next_activity`]
    /// (Self::next_activity) stays past the window, so ticking would only
    /// have accumulated occupancy gauges, burned one dispatch bubble per
    /// odd cycle, and (under FullIteration) walked the scan pointer —
    /// which is exactly what this replays, keeping every counter
    /// bit-identical to the tick-by-tick run.
    pub fn skip_cycles(&mut self, from_cycle: u64, n: u64) {
        debug_assert!(
            self.ev_stamps.as_ref().is_none_or(|s| s.len() == self.input_events.len()),
            "flight stamps out of step with the event input FIFO"
        );
        self.ticks += n;
        self.occupied_sum += self.cam.len() as u64 * n;
        self.valid_sum += self.table.pending.len() as u64 * n;
        self.fpu_depth_sum += self.fpu.depth_used() as u64 * n;
        let odd = odd_cycles_in(from_cycle, n);
        // Same bubble taxonomy as `dispatch`: with no dispatchable slot,
        // pending work (necessarily in flight here) classifies the odd
        // cycles as TCB-wait, otherwise the FIFOs are simply empty.
        if self.table.pending.is_empty() && self.input_events.is_empty() {
            self.stall_fifo_empty += odd;
        } else {
            self.stall_tcb_wait += odd;
        }
        if self.scan == ScanPolicy::FullIteration {
            let slots = self.table.len() as u64;
            self.rr_ptr = ((self.rr_ptr as u64 + odd % slots) % slots) as usize;
        }
    }

    /// FtVerify periodic audit: FIFO conservation, CAM/slot-array
    /// agreement and valid-bit leak detection. Called by the engine every
    /// audit interval while checking is enabled.
    pub fn audit(&self, cycle: u64, chk: &mut InvariantChecker) {
        chk.check_fifo(cycle, &format!("fpc{}.input_fifo", self.id), &self.input_events);
        chk.check_fifo(cycle, &format!("fpc{}.swapin_fifo", self.id), &self.input_tcbs);
        let occupied = self.table.occupied.len();
        if occupied != self.cam.len() {
            chk.report(
                cycle,
                ViolationKind::MigrationRace,
                format!("fpc{}", self.id),
                format!(
                    "CAM holds {} flows but {} slots are occupied",
                    self.cam.len(),
                    occupied
                ),
            );
        }
        // Walk only the valid-entry bitset (ascending slot order, the
        // same order the AoS scan reported in).
        for i in self.table.pending.iter() {
            if self.table.dispatchable(i as usize) {
                let idle = cycle.saturating_sub(self.table.last_progress[i as usize]);
                if idle > chk.leak_bound() {
                    chk.report(
                        cycle,
                        ViolationKind::ValidBitLeak,
                        format!("fpc{}", self.id),
                        format!(
                            "flow {} has a valid event-table entry undispatched for {idle} cycles",
                            self.table.tcbs[i as usize].flow
                        ),
                    );
                }
            }
        }
    }

    /// Flows currently resident in this FPC's TCB table (FtVerify audit
    /// support: residency is cross-checked against the location LUT and
    /// the DRAM store).
    pub fn resident_flows(&self) -> impl Iterator<Item = FlowId> + '_ {
        self.table.occupied.iter().map(|i| self.table.tcbs[i as usize].flow)
    }

    /// TCBs currently resident in this FPC (watchdog progress scan: one
    /// pass over the occupancy bitset instead of a per-flow `peek_tcb`
    /// search).
    pub fn resident_tcbs(&self) -> impl Iterator<Item = &Tcb> {
        self.table.occupied.iter().map(|i| &self.table.tcbs[i as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f4t_tcp::{CcAlgorithm, FourTuple, SeqNum, TcpFlags, MSS};

    fn fpc(slots: usize) -> Fpc {
        Fpc::new(0, slots, Arc::new(f4t_tcp::NewReno), Some(4), MSS, ScanPolicy::SkipIdle)
    }

    fn established_tcb(id: u32) -> Tcb {
        let mut t = Tcb::established(FlowId(id), FourTuple::default(), SeqNum(1000));
        CcAlgorithm::NewReno.instance().init(&mut t);
        t
    }

    fn run_cycles(fpc: &mut Fpc, from: u64, n: u64, out: &mut FpcOutput) {
        for c in from..from + n {
            fpc.tick(c, c * 4, true, out);
        }
    }

    #[test]
    fn swap_in_then_event_then_data_out() {
        let mut f = fpc(8);
        assert!(f.push_tcb(established_tcb(1), EventView::default()));
        let mut out = FpcOutput::default();
        run_cycles(&mut f, 0, 4, &mut out);
        assert_eq!(f.flow_count(), 1);

        // Send request for 500 B.
        let ev = FlowEvent::new(
            FlowId(1),
            EventKind::SendReq { req: SeqNum(1000).add(500) },
            0,
        );
        assert!(f.push_event(ev));
        run_cycles(&mut f, 4, 20, &mut out);
        assert_eq!(out.tx.len(), 1);
        assert_eq!(out.tx[0].len, 500);
        assert_eq!(out.tx[0].seq, SeqNum(1000));
        assert_eq!(f.events_handled(), 1);
        assert!(f.dispatches() >= 1);
    }

    #[test]
    fn events_accumulate_between_dispatches() {
        // Many small send requests arriving while the FPU is busy are
        // absorbed into ONE transmission — the core stall-free claim.
        let mut f = Fpc::new(0, 8, Arc::new(f4t_tcp::NewReno), Some(60), MSS, ScanPolicy::SkipIdle);
        f.push_tcb(established_tcb(1), EventView::default());
        let mut out = FpcOutput::default();
        run_cycles(&mut f, 0, 4, &mut out);
        // Queue 8 requests of 100 B each (pointers 1100, 1200, ... 1800).
        for i in 1..=8u32 {
            let ev = FlowEvent::new(
                FlowId(1),
                EventKind::SendReq { req: SeqNum(1000).add(i * 100) },
                0,
            );
            assert!(f.push_event(ev));
        }
        run_cycles(&mut f, 4, 200, &mut out);
        let total: u32 = out.tx.iter().map(|t| t.len).sum();
        assert_eq!(total, 800, "all accumulated data sent");
        assert!(
            out.tx.len() <= 2,
            "requests accumulated into at most two bursts, got {}",
            out.tx.len()
        );
    }

    #[test]
    fn dispatch_rate_is_one_per_two_cycles() {
        // With every slot occupied and permanently pending, dispatches
        // happen every other cycle: 125 M/s at 250 MHz.
        let mut f = fpc(4);
        for i in 0..4 {
            let mut t = established_tcb(i);
            t.req = t.req.add(100_000_000); // endless data
            t.snd_wnd = u32::MAX / 2;
            t.cwnd = u32::MAX / 2;
            f.push_tcb(t, EventView::default());
        }
        let mut out = FpcOutput::default();
        run_cycles(&mut f, 0, 8, &mut out); // swap-ins complete
        let d0 = f.dispatches();
        run_cycles(&mut f, 8, 200, &mut out);
        let dispatched = f.dispatches() - d0;
        assert!((95..=100).contains(&dispatched), "dispatched {dispatched} in 200 cycles");
    }

    #[test]
    fn same_flow_never_double_issued() {
        let mut f = Fpc::new(0, 4, Arc::new(f4t_tcp::NewReno), Some(50), MSS, ScanPolicy::SkipIdle);
        let mut t = established_tcb(1);
        t.req = t.req.add(1_000_000);
        f.push_tcb(t, EventView::default());
        let mut out = FpcOutput::default();
        // The flow has endless more_work; with a 50-cycle FPU it must not
        // be re-issued while in flight.
        for c in 0..400u64 {
            f.tick(c, c * 4, true, &mut out);
            assert!(f.fpu.depth_used() <= 1, "flow double-issued at cycle {c}");
        }
    }

    #[test]
    fn dup_ack_counter_increments_in_place() {
        let mut f = fpc(4);
        let mut t = established_tcb(1);
        t.snd_nxt = t.snd_una.add(20 * MSS); // data in flight
        t.req = t.snd_nxt;
        f.push_tcb(t, EventView::default());
        let mut out = FpcOutput::default();
        run_cycles(&mut f, 0, 4, &mut out);
        let dup = |n: u64| {
            FlowEvent::new(
                FlowId(1),
                EventKind::RxPacket {
                    ack: SeqNum(1000),
                    rcv_nxt: SeqNum(1000),
                    wnd: f4t_tcp::TCP_BUFFER,
                    flags: TcpFlags::ACK,
                    had_payload: false,
                    needs_ack: false,
                    in_order: true,
                    ts_val: 0,
                    ts_ecr: 0,
                },
                n,
            )
        };
        for i in 0..3 {
            f.push_event(dup(i));
        }
        run_cycles(&mut f, 4, 60, &mut out);
        // Three duplicates triggered fast retransmit.
        assert!(out.tx.iter().any(|t| t.retransmit), "fast retransmit fired");
    }

    #[test]
    fn evict_diverts_after_processing() {
        let mut f = fpc(4);
        f.push_tcb(established_tcb(7), EventView::default());
        let mut out = FpcOutput::default();
        run_cycles(&mut f, 0, 4, &mut out);
        assert!(f.request_evict(FlowId(7)));
        run_cycles(&mut f, 4, 40, &mut out);
        assert_eq!(out.evicted.len(), 1);
        assert_eq!(out.evicted[0].flow, FlowId(7));
        assert!(!out.evicted[0].evict, "flag cleared on the way out");
        assert_eq!(f.flow_count(), 0, "slot and CAM entry freed");
        assert!(f.peek_tcb(FlowId(7)).is_none());
    }

    #[test]
    fn evict_waits_for_unprocessed_events() {
        // An event arriving after the evict request must be processed
        // before the TCB leaves (deadlock-avoidance rule, §4.3.2).
        let mut f = Fpc::new(0, 4, Arc::new(f4t_tcp::NewReno), Some(20), MSS, ScanPolicy::SkipIdle);
        f.push_tcb(established_tcb(7), EventView::default());
        let mut out = FpcOutput::default();
        run_cycles(&mut f, 0, 4, &mut out);
        f.request_evict(FlowId(7));
        // Event lands while the evict-pass is in the FPU pipeline.
        run_cycles(&mut f, 4, 10, &mut out);
        f.push_event(FlowEvent::new(
            FlowId(7),
            EventKind::SendReq { req: SeqNum(1000).add(300) },
            0,
        ));
        run_cycles(&mut f, 14, 120, &mut out);
        assert_eq!(out.evicted.len(), 1, "eventually evicted");
        let sent: u32 = out.tx.iter().map(|t| t.len).sum();
        assert_eq!(sent, 300, "the late event was processed, not lost");
    }

    #[test]
    fn coldest_flow_selection() {
        let mut f = fpc(8);
        for i in 0..3 {
            f.push_tcb(established_tcb(i), EventView::default());
        }
        let mut out = FpcOutput::default();
        run_cycles(&mut f, 0, 10, &mut out);
        // Touch flows 0 and 2 with events; flow 1 stays cold.
        for id in [0u32, 2] {
            f.push_event(FlowEvent::new(
                FlowId(id),
                EventKind::SendReq { req: SeqNum(1000).add(10) },
                0,
            ));
        }
        run_cycles(&mut f, 10, 20, &mut out);
        assert_eq!(f.coldest_flow(), Some(FlowId(1)));
    }

    #[test]
    fn backpressure_gates_dispatch_not_handling() {
        let mut f = fpc(4);
        let t = established_tcb(1);
        f.push_tcb(t, EventView::default());
        let mut out = FpcOutput::default();
        run_cycles(&mut f, 0, 4, &mut out);
        // Gate closed: events are still handled, nothing dispatched.
        f.push_event(FlowEvent::new(
            FlowId(1),
            EventKind::SendReq { req: SeqNum(1000).add(100) },
            0,
        ));
        for c in 4..40u64 {
            f.tick(c, c * 4, false, &mut out);
        }
        assert_eq!(f.events_handled(), 1);
        assert!(out.tx.is_empty(), "no dispatch while gated");
        // Gate opens: the accumulated request goes out.
        run_cycles(&mut f, 40, 40, &mut out);
        assert_eq!(out.tx.iter().map(|t| t.len).sum::<u32>(), 100);
    }

    #[test]
    fn full_iteration_round_period() {
        let slots = 16;
        let mut f =
            Fpc::new(0, slots, Arc::new(f4t_tcp::NewReno), Some(4), MSS, ScanPolicy::FullIteration);
        let mut t = established_tcb(3);
        t.req = t.req.add(100);
        f.push_tcb(t, EventView::default());
        let mut out = FpcOutput::default();
        // With full iteration the single flow is visited once per
        // 2×slots cycles at most.
        run_cycles(&mut f, 0, 2 * slots as u64 + 10, &mut out);
        assert_eq!(out.tx.iter().map(|t| t.len).sum::<u32>(), 100);
    }

    #[test]
    fn two_cycle_schedule_fits_dual_port_budget() {
        // §4.2.3's port schedule, replayed against the BRAM primitive:
        // even cycle — TCB table accepts an input TCB (write) + construct
        // read; event table stores a handled event (write) + construct
        // read. Odd cycle — TCB table takes the FPU write-back + read;
        // event table clears valid bits (write) + read. Each memory does
        // exactly two port-ops per cycle, so the structural schedule the
        // FPC tick implements is realizable in dual-port BRAM.
        use f4t_mem::DualPortRam;
        let mut tcb_table: DualPortRam<u64> = DualPortRam::new(8, 0);
        let mut event_table: DualPortRam<u64> = DualPortRam::new(8, 0);
        for cycle in 0..64u64 {
            tcb_table.begin_cycle();
            event_table.begin_cycle();
            let slot = (cycle % 8) as usize;
            if cycle % 2 == 0 {
                tcb_table.write(slot, cycle); // accept input TCB
                event_table.write(slot, cycle); // store handled event
            } else {
                tcb_table.write(slot, cycle); // FPU write-back
                event_table.write(slot, 0); // clear valid bits
            }
            // Construction read happens every cycle on both memories.
            let _ = *tcb_table.read(slot);
            let _ = *event_table.read(slot);
            assert_eq!(tcb_table.ports_used(), 2);
            assert_eq!(event_table.ports_used(), 2);
        }
        assert!((tcb_table.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn input_fifo_backpressure_reported() {
        let mut f = fpc(4);
        f.push_tcb(established_tcb(1), EventView::default());
        let mut out = FpcOutput::default();
        run_cycles(&mut f, 0, 4, &mut out);
        let ev =
            FlowEvent::new(FlowId(1), EventKind::SendReq { req: SeqNum(1000).add(1) }, 0);
        let mut accepted = 0;
        while f.push_event(ev) {
            accepted += 1;
        }
        assert_eq!(accepted, Fpc::INPUT_FIFO_DEPTH);
        assert!(f.input_full());
    }
}
