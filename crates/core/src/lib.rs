#![warn(missing_docs)]
//! # f4t-core — FtEngine, the F4T hardware TCP accelerator
//!
//! A cycle-level model of the paper's FPGA engine (§4). The engine runs at
//! 250 MHz; one call to [`Engine::tick`] advances one core cycle. The
//! module structure mirrors Figure 3:
//!
//! ```text
//!                 host commands            network segments
//!                      │                        │
//!                      ▼                        ▼
//!   ┌───────────┐   host i/f               RX parser ──── cuckoo flow table,
//!   │  timers   │──────┐ │                     │           logical reassembly
//!   └───────────┘      ▼ ▼                     ▼
//!                 ┌──────────────────────────────────┐
//!                 │    scheduler (location LUT,      │
//!                 │    coalesce FIFOs, pending queue, │
//!                 │    migration control)             │
//!                 └───────┬──────────────────┬───────┘
//!                         ▼                  ▼
//!                  FPC 0..N-1          memory manager ── DRAM/HBM,
//!                  (event handler,     (event handling    TCB cache
//!                   dual memory,        in DRAM, check
//!                   TCB manager, FPU,   logic)
//!                   evict checker, CAM)
//!                         │
//!                         ▼
//!                  packet generator ──► network segments out
//! ```
//!
//! The TCP algorithms the FPU executes are functionally real — genuine New
//! Reno/CUBIC/Vegas over real sequence arithmetic — so the engine can run
//! end-to-end data transfers against a peer engine or the reference
//! simulator, while every performance-relevant structure (two-cycle port
//! schedule, round-robin TCB manager, coalesce FIFOs, 12-cycle migration
//! bound, DRAM bandwidth) is modelled per cycle.

pub mod engine;
pub mod event;
pub mod fpc;
pub mod fpu;
pub mod memory_manager;
pub mod packet_gen;
pub mod parallel;
pub mod resources;
pub mod rx_parser;
pub mod scheduler;
pub mod timers;

pub use engine::{Engine, EngineConfig, EngineStats, HostNotification};
pub use event::{EventKind, FlowEvent, TimeoutKind, TxRequest};
pub use fpc::Fpc;
pub use fpu::Fpu;
pub use memory_manager::MemoryManager;
pub use packet_gen::PacketGenerator;
pub use parallel::{fold_digests, ParallelRunner, RENDEZVOUS_QUANTUM};
pub use resources::{resource_report, ResourceRow};
pub use rx_parser::RxParser;
pub use scheduler::Scheduler;
