//! The FtEngine top level: composition of every module in Fig. 3.
//!
//! One [`Engine::tick`] advances the whole accelerator by one 250 MHz
//! cycle. The engine exposes three boundaries:
//!
//! * **host interface** — [`Engine::push_event`] accepts user-request
//!   events (the decoded 16 B commands of §4.1.1) and
//!   [`Engine::pop_notification`] yields ACKed-data / received-data
//!   pointers and connection notifications going the other way;
//! * **network interface** — [`Engine::push_rx`] and [`Engine::pop_tx`]
//!   move [`Segment`]s; the system layer applies link pacing;
//! * **control** — flow setup ([`Engine::open_established`],
//!   [`Engine::open_active`], [`Engine::listen`]) and diagnostics
//!   ([`Engine::peek_tcb`], [`Engine::stats`]).

use crate::event::{EventKind, FlowEvent, TimeoutKind, TxRequest};
use crate::fpc::{Fpc, FpcOutput, ScanPolicy};
use crate::fpu::FpuOutcome;
use crate::memory_manager::{MemoryManager, MmOutput};
use crate::packet_gen::PacketGenerator;
use crate::rx_parser::{RxOutput, RxParser};
use crate::scheduler::Scheduler;
use crate::timers::TimerWheel;
use f4t_mem::{DramKind, Location};
use f4t_sim::check::{InvariantChecker, Violation, ViolationKind};
use f4t_sim::clock::merge_horizon;
use f4t_sim::telemetry::{MetricsRegistry, TraceKind, TraceRing};
use f4t_sim::flight::{FlightStage, STAGE_COUNT};
use f4t_sim::pulse::{PulseSeries, FLOW_SERIES_COUNT, SERIES_COUNT};
use f4t_sim::{
    FlightRecorder, FlowObservation, FlowSet, FlowSlab, Journal, JournalKind, JournalModule,
    PulseRecorder, QueueObservation, Watchdog, WatchdogConfig,
};
use f4t_tcp::wire::{ArpMessage, IcmpEcho};
use f4t_tcp::{
    CcAlgorithm, CongestionControl, FlowId, FourTuple, MacAddr, Segment, SeqNum, Tcb, TcpState,
    MSS,
};
use std::collections::VecDeque;
use std::sync::Arc;

/// Engine configuration. [`EngineConfig::reference`] is the paper's
/// shipped design point: eight FPCs of 128 flows each, HBM, New Reno,
/// coalescing on.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of parallel FPCs (§4.4.2).
    pub num_fpcs: usize,
    /// TCB slots per FPC.
    pub flows_per_fpc: usize,
    /// Total flows supported (location LUT / flow table size).
    pub max_flows: usize,
    /// On-board memory for overflow TCBs.
    pub dram: DramKind,
    /// Congestion-control algorithm programmed into the FPU.
    pub cc: CcAlgorithm,
    /// Event coalescing in the scheduler (§4.4.1) — the 1FPC-C knob of
    /// Fig. 16b.
    pub coalescing: bool,
    /// Location-LUT partitions (4 routes 4 events/cycle for 8 FPCs).
    pub lut_groups: usize,
    /// Override the FPU pipeline latency (Fig. 15's sweep); `None` uses
    /// the algorithm's natural latency.
    pub fpu_latency_override: Option<u32>,
    /// Packet-generator parallelism (segments per 322 MHz cycle).
    pub tx_parallelism: u32,
    /// RX-parser parallelism (segments per 322 MHz cycle).
    pub rx_parallelism: u32,
    /// Maximum segment size.
    pub mss: u32,
    /// Direct-mapped TCB-cache sets in the memory manager.
    pub tcb_cache_sets: usize,
    /// TCB-manager scan policy.
    pub scan_policy: ScanPolicy,
    /// Fast-forward: when every module reports a quiet horizon,
    /// [`Engine::run`] skips the clock straight to the earliest
    /// `next_activity()` cycle instead of executing idle ticks.
    /// Cycle-exact by construction — skipped windows replay their
    /// accumulator effects in closed form, so traces, telemetry and TCB
    /// state are bit-identical to the tick-by-tick run. On by default;
    /// disable to force tick-by-tick execution (e.g. when bisecting the
    /// equivalence contract itself).
    pub fast_forward: bool,
    /// FtVerify: attach the cycle-level hazard checker (port budgets,
    /// schedule parity, RMW hazards, migration races, valid-bit leaks,
    /// FIFO conservation). Off by default; the disabled path costs one
    /// branch per checkpoint.
    pub check: bool,
    /// FtFlight: attach the per-flow latency-attribution recorder
    /// (DESIGN.md §10). Off by default; the disabled path costs one
    /// branch per stage boundary.
    pub flight: bool,
    /// FtFlight sampling divisor: track flows whose id is
    /// `0 (mod flight_sample)`. 1 tracks every flow; the default 64
    /// keeps overhead within the ≤1.10x budget on 64K-flow workloads.
    pub flight_sample: u32,
    /// FtJournal: attach the bounded causal event journal (DESIGN.md
    /// §11). Off by default; the disabled path costs one branch per
    /// emission site.
    pub journal: bool,
    /// FtJournal sampling divisor: record events for flows whose id is
    /// `0 (mod journal_sample)`. 1 records every flow; the default 64
    /// keeps overhead within the ≤1.10x budget. Flow-less events
    /// (`flow == u32::MAX`, e.g. cuckoo misses) are always recorded.
    pub journal_sample: u32,
    /// FtJournal ring capacity in events; older events are overwritten
    /// but stay folded into the running digest.
    pub journal_cap: usize,
    /// FtJournal/watchdog: attach the online health watchdog (stuck
    /// flows, retransmit storms, queue SLO breaches, starved LUT
    /// entries). Off by default.
    pub watchdog: bool,
    /// Cycles between watchdog sweeps. A sweep walks every resident TCB,
    /// so it runs on a coarse period (default 65 536 cycles ≈ 262 µs).
    pub watchdog_interval: u64,
    /// Watchdog thresholds; see [`WatchdogConfig`].
    pub watchdog_cfg: WatchdogConfig,
    /// FtPulse: attach the windowed time-series recorder (DESIGN.md
    /// §15). Off by default; the disabled path costs one branch per
    /// tick.
    pub pulse: bool,
    /// Cycles between pulse samples. Fast-forward windows are capped at
    /// the next sample boundary, so small intervals trade skip length
    /// for time resolution (default 8 192 cycles ≈ 32.8 µs).
    pub pulse_interval: u64,
    /// FtPulse per-flow sampling divisor: record cwnd/ssthresh/srtt/
    /// flightsize series for flows whose id is `0 (mod
    /// pulse_flow_sample)`, up to the track cap.
    pub pulse_flow_sample: u32,
}

impl EngineConfig {
    /// The paper's reference design (§4.4.2, §4.7).
    pub fn reference() -> EngineConfig {
        EngineConfig {
            num_fpcs: 8,
            flows_per_fpc: 128,
            max_flows: 65_536,
            dram: DramKind::Hbm,
            cc: CcAlgorithm::NewReno,
            coalescing: true,
            lut_groups: 4,
            fpu_latency_override: None,
            tx_parallelism: 4,
            rx_parallelism: 4,
            mss: MSS,
            tcb_cache_sets: 512,
            scan_policy: ScanPolicy::SkipIdle,
            fast_forward: true,
            check: false,
            flight: false,
            flight_sample: 64,
            journal: false,
            journal_sample: 64,
            journal_cap: f4t_sim::journal::JOURNAL_DEFAULT_CAP,
            watchdog: false,
            watchdog_interval: 65_536,
            watchdog_cfg: WatchdogConfig::default(),
            pulse: false,
            pulse_interval: f4t_sim::pulse::PULSE_DEFAULT_INTERVAL,
            pulse_flow_sample: f4t_sim::pulse::PULSE_DEFAULT_FLOW_SAMPLE,
        }
    }

    /// A single-FPC engine (the `1FPC` ablation point of Fig. 16b).
    pub fn single_fpc() -> EngineConfig {
        EngineConfig { num_fpcs: 1, lut_groups: 1, ..EngineConfig::reference() }
    }
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig::reference()
    }
}

/// A hardware-to-software notification (the 16 B completion commands of
/// §4.1.1: "FtEngine sends ACKed data and received data pointers to the
/// software").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostNotification {
    /// The connection is established.
    Connected {
        /// The flow.
        flow: FlowId,
    },
    /// The peer acknowledged our data up to this pointer: the library may
    /// reclaim send-buffer space.
    DataAcked {
        /// The flow.
        flow: FlowId,
        /// Cumulative ACKed pointer.
        upto: SeqNum,
    },
    /// In-order data is available up to this pointer: `recv()` may return
    /// it.
    DataReceived {
        /// The flow.
        flow: FlowId,
        /// Cumulative received pointer.
        upto: SeqNum,
    },
    /// The peer closed its direction (EOF).
    PeerFin {
        /// The flow.
        flow: FlowId,
    },
    /// The connection fully closed.
    Closed {
        /// The flow.
        flow: FlowId,
    },
    /// A new inbound connection arrived on a listening port (`accept()`
    /// can return it once `Connected` follows).
    NewConnection {
        /// Newly allocated flow.
        flow: FlowId,
        /// Our 4-tuple for it.
        tuple: FourTuple,
    },
}

/// Aggregate counters for the harnesses.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Engine cycles elapsed.
    pub cycles: u64,
    /// Events accepted at the host interface.
    pub host_events: u64,
    /// Segments received from the network.
    pub segments_in: u64,
    /// Segments emitted to the network.
    pub segments_out: u64,
    /// Wire bytes emitted (payload + overhead).
    pub bytes_out: u64,
    /// Payload bytes DMAed toward the host.
    pub rx_dma_bytes: u64,
    /// Events merged by the scheduler's coalesce FIFOs.
    pub events_coalesced: u64,
    /// TCB migrations initiated.
    pub migrations: u64,
    /// Retransmitted segments.
    pub retransmissions: u64,
    /// Memory-manager events handled in DRAM.
    pub dram_events: u64,
    /// Events dropped for unallocated flows (teardown races, stale
    /// segments after close).
    pub events_dropped: u64,
    /// TCB-cache hit rate in the memory manager.
    pub tcb_cache_hit_rate: f64,
    /// FPC dispatch cycles idle with no pending work anywhere (summed
    /// over FPCs).
    pub stall_fifo_empty: u64,
    /// FPC dispatch cycles where all pending work was blocked on TCBs in
    /// flight through the FPU.
    pub stall_tcb_wait: u64,
    /// FPC dispatch cycles gated by TX/evict-checker backpressure.
    pub stall_backpressure: u64,
    /// Events accumulated while their TCB was in flight — each would
    /// have stalled a write-side-RMW design (§4.2).
    pub rmw_hazard_events: u64,
    /// Cycles actually spent stalled on an in-flight TCB: structurally
    /// zero in F4T's stall-free event accumulation.
    pub rmw_stall_cycles: u64,
    /// Location-LUT partition-port stalls in the scheduler.
    pub lut_stalls: u64,
}

/// The FtEngine accelerator.
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    cycle: u64,
    fpcs: Vec<Fpc>,
    scheduler: Scheduler,
    mm: MemoryManager,
    pkt_gen: PacketGenerator,
    rx_parser: RxParser,
    timers: TimerWheel,
    /// Skid buffer between FPU output and the packet-generator FIFO; each
    /// request keeps its FPC-exit cycle so FtFlight's `tx_emit` span
    /// charges the skid wait to TX emission.
    // f4tlint: allow(raw_queue): bounded by the dispatch gate (FPCs stop
    // dispatching while it is non-empty), so depth <= one tick's output.
    tx_overflow: VecDeque<(TxRequest, u64)>,
    /// Segments awaiting the link (the MAC-side output buffer).
    // f4tlint: allow(raw_queue): capped at TX_OUT_CAP by the tick loop;
    // models the MAC buffer, not an on-chip FIFO.
    tx_out: VecDeque<Segment>,
    // f4tlint: allow(raw_queue): models the DMA completion ring toward
    // host memory, which the host must drain; not an on-chip queue.
    notifications: VecDeque<HostNotification>,
    /// Open flows, keyed by flow id on a dense FtTurbo slab: O(1)
    /// id-keyed access with deterministic ascending-id iteration for the
    /// audit and watchdog sweeps.
    flows: FlowSlab<FourTuple>,
    /// Reused per-tick scratch buffers (hot path; avoids reallocating).
    fpc_scratch: FpcOutput,
    seg_scratch: Vec<Segment>,
    next_flow: u32,
    /// Flow ids released by closed connections, reused before new ids
    /// are minted. Flow ids are a bounded hardware resource: the
    /// location LUT is indexed by `id % max_flows`, so letting ids grow
    /// without reuse would alias live flows after enough churn.
    free_flow_ids: Vec<u32>,
    host_events: u64,
    /// Cycles elided by fast-forward (the `engine.fastforward.*`
    /// telemetry family; excluded from the equivalence contract since the
    /// tick-by-tick run by definition skips nothing).
    ff_skipped_cycles: u64,
    /// Fast-forward windows taken.
    ff_windows: u64,
    /// FtVerify hazard checker; attached when `EngineConfig::check` is
    /// set. Boxed so the disabled engine stays small.
    check: Option<Box<InvariantChecker>>,
    /// FtFlight latency-attribution recorder; attached when
    /// `EngineConfig::flight` is set. Boxed like the checker.
    flight: Option<Box<FlightRecorder>>,
    /// FtJournal causal event journal; attached when
    /// `EngineConfig::journal` is set. Boxed like the checker.
    journal: Option<Box<Journal>>,
    /// Online health watchdog; attached when `EngineConfig::watchdog` is
    /// set. Boxed like the checker.
    watchdog: Option<Box<Watchdog>>,
    /// FtPulse windowed time-series recorder; attached when
    /// `EngineConfig::pulse` is set. Boxed like the checker.
    pulse: Option<Box<PulseRecorder>>,
    /// Deferred flight-span bias `(window, cycles)`: armed by
    /// `set_flight_bias_after`, applied by `run_pulse` once that many
    /// windows have been recorded (shape-gate self-testing).
    pulse_bias_pending: Option<(u64, u64)>,
    /// Cumulative-counter snapshot at the previous pulse window, used to
    /// turn running totals into per-window rates. Only maintained while
    /// the pulse recorder is attached.
    pulse_prev: PulseCounters,
    /// FtScope pipeline trace (disabled — capacity 0 — by default).
    trace: TraceRing,
    /// Counter snapshots from the previous tick, used to derive per-tick
    /// trace events from modules that only expose running totals. Only
    /// maintained while tracing is enabled.
    trace_prev: TraceCounters,
    /// Our MAC address (for ARP answers).
    pub mac: MacAddr,
}

/// Running-total snapshot for trace derivation (see `Engine::trace_prev`).
#[derive(Debug, Clone, Copy, Default)]
struct TraceCounters {
    coalesced: u64,
    routed: u64,
    dropped: u64,
    migrations: u64,
    retransmissions: u64,
}

/// Running-total snapshot at the previous pulse window (see
/// `Engine::pulse_prev`): FtPulse rate series are deltas of these.
#[derive(Debug, Clone, Copy, Default)]
struct PulseCounters {
    bytes_out: u64,
    segments_out: u64,
    segments_in: u64,
    retransmissions: u64,
    host_events: u64,
    stall_fifo_empty: u64,
    stall_tcb_wait: u64,
    stall_backpressure: u64,
    cache_hits: u64,
    cache_lookups: u64,
}

/// Engine-core period in nanoseconds (250 MHz).
const CYCLE_NS: u64 = 4;
/// MAC output buffer cap; beyond this the packet generator stalls and
/// backpressure propagates to FPC dispatch.
const TX_OUT_CAP: usize = 256;
/// FtVerify structural-audit period. Per-cycle rules (ports, parity, RMW)
/// fire inline; the cross-module residency/LUT/conservation audit walks
/// every table, so it runs every `AUDIT_INTERVAL` cycles instead.
pub(crate) const AUDIT_INTERVAL: u64 = 64;

/// Minimal JSON string escaping for the black-box dump (quotes,
/// backslashes and control characters; everything else passes through).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl Engine {
    /// Builds an engine from `config` with the configured built-in
    /// congestion-control algorithm.
    pub fn new(config: EngineConfig) -> Engine {
        let cc: Arc<dyn CongestionControl> = match config.cc {
            CcAlgorithm::NewReno => Arc::new(f4t_tcp::NewReno),
            CcAlgorithm::Cubic => Arc::new(f4t_tcp::Cubic),
            CcAlgorithm::Vegas => Arc::new(f4t_tcp::Vegas),
        };
        Engine::with_cc(config, cc)
    }

    /// Builds an engine running a custom congestion-control algorithm —
    /// the paper's programmability story (§4.5): "users need to modify
    /// only the FPU to program the TCP stack".
    pub fn with_cc(config: EngineConfig, cc: Arc<dyn CongestionControl>) -> Engine {
        assert!(config.num_fpcs > 0, "need at least one FPC");
        let fpcs = (0..config.num_fpcs)
            .map(|i| {
                Fpc::new(
                    i as u8,
                    config.flows_per_fpc,
                    Arc::clone(&cc),
                    config.fpu_latency_override,
                    config.mss,
                    config.scan_policy,
                )
            })
            .collect();
        let mut engine = Engine {
            scheduler: Scheduler::new(config.max_flows, config.lut_groups, config.coalescing),
            mm: MemoryManager::new(config.dram, config.tcb_cache_sets),
            pkt_gen: PacketGenerator::new(config.mss, config.tx_parallelism),
            rx_parser: RxParser::new(config.max_flows, config.rx_parallelism),
            timers: TimerWheel::new(),
            tx_overflow: VecDeque::new(),
            tx_out: VecDeque::new(),
            notifications: VecDeque::new(),
            flows: FlowSlab::with_capacity(0),
            fpc_scratch: FpcOutput::default(),
            seg_scratch: Vec::new(),
            next_flow: 0,
            free_flow_ids: Vec::new(),
            host_events: 0,
            ff_skipped_cycles: 0,
            ff_windows: 0,
            check: config.check.then(|| Box::new(InvariantChecker::new())),
            flight: None,
            journal: config
                .journal
                .then(|| Box::new(Journal::with_capacity(config.journal_sample, config.journal_cap))),
            watchdog: config.watchdog.then(|| Box::new(Watchdog::new(config.watchdog_cfg))),
            pulse: config
                .pulse
                .then(|| Box::new(PulseRecorder::new(config.pulse_interval, config.pulse_flow_sample))),
            pulse_prev: PulseCounters::default(),
            pulse_bias_pending: None,
            trace: TraceRing::disabled(),
            trace_prev: TraceCounters::default(),
            mac: MacAddr([0x02, 0xf4, 0x70, 0, 0, 1]),
            fpcs,
            cycle: 0,
            config,
        };
        // `is_multiple_of(0)` only holds at cycle 0; treat 0 as "every
        // cycle" so a zeroed config still sweeps.
        if engine.config.watchdog_interval == 0 {
            engine.config.watchdog_interval = 1;
        }
        if engine.config.pulse_interval == 0 {
            engine.config.pulse_interval = 1;
        }
        if engine.config.flight {
            engine.attach_flight();
        }
        engine
    }

    /// Attaches the FtFlight recorder and arms the per-module stamp
    /// mirrors. Must run before any traffic enters (the stamp FIFOs
    /// mirror their data FIFOs 1:1 from empty).
    fn attach_flight(&mut self) {
        self.flight = Some(Box::new(FlightRecorder::new(self.config.flight_sample)));
        self.rx_parser.enable_flight();
        self.scheduler.enable_flight();
        for f in &mut self.fpcs {
            f.enable_flight();
        }
        self.mm.enable_flight();
        self.pkt_gen.enable_flight();
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Current simulation time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.cycle * CYCLE_NS
    }

    /// Elapsed cycles.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    fn alloc_flow(&mut self) -> Option<FlowId> {
        if self.flows.len() >= self.config.max_flows {
            return None;
        }
        if let Some(id) = self.free_flow_ids.pop() {
            return Some(FlowId(id));
        }
        let flow = FlowId(self.next_flow);
        self.next_flow += 1;
        Some(flow)
    }

    /// Opens a flow in the established state (both endpoints must use the
    /// same `isn`; the system layer's `open_pair` helper does). Returns
    /// `None` when the engine is at its flow limit.
    pub fn open_established(&mut self, tuple: FourTuple, isn: SeqNum) -> Option<FlowId> {
        let flow = self.alloc_flow()?;
        let mut tcb = Tcb::established(flow, tuple, isn);
        self.config.cc.instance().init(&mut tcb);
        self.rx_parser.register_flow(tuple, flow, isn).ok()?;
        self.flows.insert(flow.0, tuple);
        self.scheduler.place_new_flow(
            tcb,
            &mut self.fpcs,
            &mut self.mm,
            self.cycle,
            self.check.as_deref_mut(),
        );
        Some(flow)
    }

    /// Opens a flow for an active connect; the host follows with a
    /// [`EventKind::Connect`] event to launch the handshake.
    pub fn open_active(&mut self, tuple: FourTuple) -> Option<FlowId> {
        let flow = self.alloc_flow()?;
        let isn = Self::isn_for(flow);
        let mut tcb = Tcb::new(flow);
        tcb.tuple = tuple;
        tcb.snd_una = isn;
        tcb.snd_nxt = isn;
        tcb.req = isn;
        tcb.recover = isn;
        // Peer ISN unknown: the tracker re-anchors on the SYN|ACK.
        self.rx_parser.register_flow(tuple, flow, SeqNum::ZERO).ok()?;
        self.flows.insert(flow.0, tuple);
        self.scheduler.place_new_flow(
            tcb,
            &mut self.fpcs,
            &mut self.mm,
            self.cycle,
            self.check.as_deref_mut(),
        );
        Some(flow)
    }

    /// Starts listening on a TCP port (passive open / SO_REUSEPORT).
    pub fn listen(&mut self, port: u16) {
        self.rx_parser.listen(port);
    }

    fn isn_for(flow: FlowId) -> SeqNum {
        SeqNum(flow.0.wrapping_mul(2_654_435_761).wrapping_add(0x1000))
    }

    /// Whether the host interface can accept another event this cycle.
    pub fn can_accept_event(&self) -> bool {
        self.scheduler.can_accept()
    }

    /// Offers a host event (decoded command); `false` when the intake is
    /// full — the library retries, which is exactly the doorbell
    /// backpressure a real queue pair exhibits.
    pub fn push_event(&mut self, ev: FlowEvent) -> bool {
        if self.scheduler.push_event_at(ev, self.cycle) {
            self.host_events += 1;
            self.trace.record(self.cycle, TraceKind::HostEnqueue, ev.flow.0, 0);
            if let Some(j) = self.journal.as_deref_mut() {
                j.record(
                    self.cycle,
                    JournalModule::Host,
                    JournalKind::HostEvent,
                    ev.flow.0,
                    Self::event_kind_code(&ev.kind),
                    0,
                );
            }
            true
        } else {
            false
        }
    }

    /// Stable numeric code for a host-event kind, journalled as the
    /// `host_event` `a` payload (timer-driven events never pass through
    /// the doorbell, so `timeout` only appears via internal paths).
    fn event_kind_code(kind: &EventKind) -> u64 {
        match kind {
            EventKind::Connect => 0,
            EventKind::Close => 1,
            EventKind::SendReq { .. } => 2,
            EventKind::RecvConsumed { .. } => 3,
            EventKind::RxPacket { .. } => 4,
            EventKind::Timeout { .. } => 5,
        }
    }

    /// Convenience: build and push a host event stamped with `now`.
    pub fn push_host(&mut self, flow: FlowId, kind: EventKind) -> bool {
        let now = self.now_ns();
        self.push_event(FlowEvent::new(flow, kind, now))
    }

    /// Offers a segment from the network; `false` = NIC buffer overflow
    /// (the segment is lost).
    pub fn push_rx(&mut self, seg: Segment) -> bool {
        self.rx_parser.push_segment_at(seg, self.cycle)
    }

    /// Takes the next outbound segment, if any (the link model drains at
    /// line rate).
    pub fn pop_tx(&mut self) -> Option<Segment> {
        self.tx_out.pop_front()
    }

    /// Peeks the next outbound segment without taking it (the link model
    /// checks its serialization budget against the wire length first).
    pub fn peek_tx(&self) -> Option<&Segment> {
        self.tx_out.front()
    }

    /// Outbound segments waiting for the link.
    pub fn tx_backlog(&self) -> usize {
        self.tx_out.len()
    }

    /// Takes the next host notification, if any. The host side must
    /// drain this every tick (as `f4t-system`'s nodes do): the queue
    /// models the DMA completion ring and is not bounded here.
    pub fn pop_notification(&mut self) -> Option<HostNotification> {
        self.notifications.pop_front()
    }

    /// Copies a flow's TCB wherever it lives (FPC SRAM or DRAM) — the
    /// Fig. 14 congestion-window probe.
    pub fn peek_tcb(&self, flow: FlowId) -> Option<Tcb> {
        for f in &self.fpcs {
            if let Some(t) = f.peek_tcb(flow) {
                return Some(*t);
            }
        }
        self.mm.peek_tcb(flow).copied()
    }

    /// Flows currently allocated (established, handshaking, or still
    /// draining teardown). Zero after every connection fully closes.
    pub fn live_flows(&self) -> usize {
        self.flows.len()
    }

    /// LUT occupancy census across the scheduler's partitions:
    /// `(in_fpc, in_dram, moving)`. `(0, 0, 0)` proves no flow holds a
    /// location entry — the structural leak audit for churn tests.
    pub fn lut_census(&self) -> (usize, usize, usize) {
        self.scheduler.lut_census()
    }

    /// Answers an ARP request addressed to us (hardware ARP, §4.1.2).
    pub fn handle_arp(&self, req: &ArpMessage) -> Option<ArpMessage> {
        req.is_request.then(|| req.reply_from(self.mac))
    }

    /// Answers an ICMP echo request (hardware ping, §4.1.2).
    pub fn handle_ping(&self, req: &IcmpEcho) -> Option<IcmpEcho> {
        req.is_request.then(|| req.reply())
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> EngineStats {
        let s = self.scheduler.stats();
        let mut stalls = (0u64, 0u64, 0u64);
        for f in &self.fpcs {
            let (e, w, b) = f.stall_cycles();
            stalls.0 += e;
            stalls.1 += w;
            stalls.2 += b;
        }
        EngineStats {
            cycles: self.cycle,
            host_events: self.host_events,
            segments_in: self.rx_parser.segments_in(),
            segments_out: self.pkt_gen.segments_out(),
            bytes_out: self.pkt_gen.bytes_out(),
            rx_dma_bytes: self.rx_parser.payload_dma_bytes(),
            events_coalesced: s.coalesced,
            migrations: s.migrations,
            retransmissions: self.pkt_gen.retransmissions(),
            dram_events: self.mm.events_handled(),
            events_dropped: s.dropped,
            tcb_cache_hit_rate: self.mm.cache_hit_rate(),
            stall_fifo_empty: stalls.0,
            stall_tcb_wait: stalls.1,
            stall_backpressure: stalls.2,
            rmw_hazard_events: self.rmw_hazard_events(),
            rmw_stall_cycles: self.rmw_stall_cycles(),
            lut_stalls: self.scheduler.lut_stalls(),
        }
    }

    /// Events accumulated while their TCB was in flight through the FPU,
    /// summed over FPCs — each would stall a write-side-RMW design.
    pub fn rmw_hazard_events(&self) -> u64 {
        self.fpcs.iter().map(Fpc::rmw_hazard_events).sum()
    }

    /// Cycles spent stalled on an in-flight TCB, summed over FPCs.
    /// Structurally zero (§4.2's stall-free event accumulation); tests
    /// assert it rather than assume it.
    pub fn rmw_stall_cycles(&self) -> u64 {
        self.fpcs.iter().map(Fpc::rmw_stall_cycles).sum()
    }

    /// FtScope: materializes the full telemetry registry, walking every
    /// module. Call twice and [`MetricsRegistry::delta`] the snapshots to
    /// window a measurement.
    pub fn telemetry(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        self.collect("engine", &mut reg);
        reg
    }

    /// Reports the whole engine's telemetry into `reg` under `prefix`
    /// (multi-engine systems disambiguate with e.g. `a.engine`).
    pub fn collect(&self, prefix: &str, reg: &mut MetricsRegistry) {
        reg.counter(&format!("{prefix}.cycles"), self.cycle);
        reg.counter(&format!("{prefix}.host_events"), self.host_events);
        reg.gauge(&format!("{prefix}.flows_open"), self.flows.len() as f64);
        reg.gauge(&format!("{prefix}.tx_out.depth"), self.tx_out.len() as f64);
        reg.gauge(&format!("{prefix}.tx_overflow.depth"), self.tx_overflow.len() as f64);
        reg.counter(&format!("{prefix}.rmw.hazard_events"), self.rmw_hazard_events());
        reg.counter(&format!("{prefix}.rmw.stall_cycles"), self.rmw_stall_cycles());
        reg.counter(&format!("{prefix}.fastforward.skipped_cycles"), self.ff_skipped_cycles);
        reg.counter(&format!("{prefix}.fastforward.windows"), self.ff_windows);
        for f in &self.fpcs {
            f.collect(&format!("{prefix}.fpc{}", f.id()), reg);
        }
        self.scheduler.collect(&format!("{prefix}.scheduler"), reg);
        self.mm.collect(&format!("{prefix}.mm"), reg);
        self.rx_parser.collect(&format!("{prefix}.rx"), reg);
        reg.counter(&format!("{prefix}.tx.segments_out"), self.pkt_gen.segments_out());
        reg.counter(&format!("{prefix}.tx.bytes_out"), self.pkt_gen.bytes_out());
        reg.counter(&format!("{prefix}.tx.retransmissions"), self.pkt_gen.retransmissions());
        reg.counter(&format!("{prefix}.trace.recorded"), self.trace.total_recorded());
        if let Some(f) = &self.flight {
            f.collect(&format!("{prefix}.flight"), reg);
        }
        if let Some(j) = &self.journal {
            j.collect(&format!("{prefix}.journal"), reg);
        }
        if let Some(w) = &self.watchdog {
            w.collect(&format!("{prefix}.watchdog"), reg);
        }
        if let Some(p) = &self.pulse {
            p.collect(&format!("{prefix}.pulse"), reg);
        }
    }

    /// The FtFlight recorder, when [`EngineConfig::flight`] is set.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.flight.as_deref()
    }

    /// FtFlight latency-breakdown JSON (per-stage p50/p99/p999 in cycles
    /// and ns plus the capped per-flow table), when the recorder is
    /// attached. Contains no fast-forward-dependent counters: a
    /// fast-forwarded and a tick-by-tick run of the same workload return
    /// byte-identical text (`tests/fastforward_equiv.rs`).
    pub fn flight_json(&self) -> Option<String> {
        self.flight.as_ref().map(|f| f.to_json(CYCLE_NS))
    }

    /// Perf-gate self-test hook: inflates every subsequently recorded
    /// flight span by `cycles` (`f4tperf --inject-slowdown`). No-op when
    /// the recorder is off.
    pub fn set_flight_bias(&mut self, cycles: u64) {
        if let Some(f) = self.flight.as_deref_mut() {
            f.set_bias(cycles);
        }
    }

    /// Shape-gate self-test hook: arms a *deferred* flight-span bias that
    /// `run_pulse` applies once `window` pulse windows have been recorded
    /// (`f4tperf --inject-slowdown-after`). Tied to sample boundaries, so
    /// the injected mid-run ramp is deterministic across execution modes.
    /// No-op when the pulse recorder is off.
    pub fn set_flight_bias_after(&mut self, window: u64, cycles: u64) {
        if self.pulse.is_some() {
            self.pulse_bias_pending = Some((window, cycles));
        }
    }

    /// The FtJournal, when [`EngineConfig::journal`] is set.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_deref()
    }

    /// The journal's running determinism digest (0 when the journal is
    /// off). Covers every recorded event including overwritten ones, so
    /// two runs with equal digests emitted identical event streams.
    pub fn journal_digest(&self) -> u64 {
        self.journal.as_ref().map_or(0, |j| j.digest())
    }

    /// The health watchdog, when [`EngineConfig::watchdog`] is set.
    pub fn watchdog(&self) -> Option<&Watchdog> {
        self.watchdog.as_deref()
    }

    /// Total watchdog alarms raised (0 when the watchdog is off).
    pub fn watchdog_alarm_count(&self) -> u64 {
        self.watchdog.as_ref().map_or(0, |w| w.alarm_count())
    }

    /// The FtPulse recorder, when [`EngineConfig::pulse`] is set.
    pub fn pulse(&self) -> Option<&PulseRecorder> {
        self.pulse.as_deref()
    }

    /// FtPulse time-series JSON (every retained window per series), when
    /// the recorder is attached. Byte-stable and integer-only: a
    /// fast-forwarded, a tick-by-tick, and any worker-pool run of the
    /// same workload return identical text (`tests/fastforward_equiv.rs`,
    /// `tests/determinism.rs`).
    pub fn pulse_json(&self) -> Option<String> {
        self.pulse.as_ref().map(|p| p.to_json(CYCLE_NS))
    }

    /// The pulse recorder's running determinism digest (0 when pulse is
    /// off). Covers every recorded window including ones the bounded
    /// rings have overwritten.
    pub fn pulse_digest(&self) -> u64 {
        self.pulse.as_ref().map_or(0, |p| p.digest())
    }

    /// FtJournal post-mortem black-box dump: a self-contained JSON
    /// document carrying everything needed to explain a failure after the
    /// fact — the journal tail (with its digest), watchdog alarms,
    /// FtVerify violations, the TCBs implicated by alarms, the engine
    /// config and the FtFlight breakdown. `reason` names the trigger
    /// (e.g. `invariant-violation`, `watchdog-alarm`, `gate-failure`);
    /// `extra` is a list of pre-rendered top-level JSON fields
    /// (`(key, rendered-value)`) the caller adds — workload name, RNG
    /// seed — without this layer needing a JSON writer.
    pub fn blackbox_json(&self, reason: &str, extra: &[(&str, String)]) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str(&format!("  \"reason\": {},\n", json_str(reason)));
        s.push_str(&format!("  \"cycle\": {},\n", self.cycle));
        for (k, v) in extra {
            s.push_str(&format!("  {}: {},\n", json_str(k), v));
        }
        s.push_str(&format!(
            "  \"config\": {{\"num_fpcs\": {}, \"flows_per_fpc\": {}, \"max_flows\": {}, \"lut_groups\": {}, \"coalescing\": {}, \"fast_forward\": {}, \"journal_sample\": {}, \"watchdog_interval\": {}}},\n",
            self.config.num_fpcs,
            self.config.flows_per_fpc,
            self.config.max_flows,
            self.config.lut_groups,
            self.config.coalescing,
            self.config.fast_forward,
            self.config.journal_sample,
            self.config.watchdog_interval,
        ));
        // Journal tail: newest-last compact lines plus the running digest.
        s.push_str(&format!("  \"journal_digest\": {},\n", self.journal_digest()));
        s.push_str("  \"journal\": [");
        if let Some(j) = &self.journal {
            let mut first = true;
            for line in j.lines() {
                if !first {
                    s.push_str(", ");
                }
                first = false;
                s.push_str(&json_str(&line));
            }
        }
        s.push_str("],\n");
        // Watchdog alarms, in firing order.
        s.push_str("  \"alarms\": [");
        let mut implicated: Vec<FlowId> = Vec::new();
        if let Some(w) = &self.watchdog {
            for (i, a) in w.alarms().iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&json_str(&a.line()));
                if let Some(f) = a.flow {
                    implicated.push(FlowId(f));
                }
            }
        }
        s.push_str("],\n");
        // FtVerify violations (Display-rendered).
        s.push_str("  \"violations\": [");
        for (i, v) in self.check_violations().iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&json_str(&v.to_string()));
        }
        s.push_str("],\n");
        // TCBs implicated by per-flow alarms (Debug-rendered; capped so a
        // storm cannot balloon the dump).
        implicated.sort();
        implicated.dedup();
        implicated.truncate(16);
        s.push_str("  \"implicated_tcbs\": [");
        let mut first = true;
        for flow in implicated {
            if let Some(tcb) = self.peek_tcb(flow) {
                if !first {
                    s.push_str(", ");
                }
                first = false;
                s.push_str(&json_str(&format!("{tcb:?}")));
            }
        }
        s.push_str("],\n");
        // FtFlight breakdown, when the recorder is attached.
        match self.flight_json() {
            Some(fj) => s.push_str(&format!("  \"flight\": {fj}\n")),
            None => s.push_str("  \"flight\": null\n"),
        }
        s.push('}');
        s
    }

    /// Enables (capacity > 0) or disables (capacity 0) the pipeline
    /// trace ring. The ring keeps the most recent `capacity` events.
    pub fn set_trace_capacity(&mut self, capacity: usize) {
        self.trace = if capacity == 0 { TraceRing::disabled() } else { TraceRing::new(capacity) };
        self.trace_prev = TraceCounters::default();
    }

    /// The pipeline trace ring (read side).
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// Exports the trace ring as Chrome-trace JSON (load in Perfetto or
    /// `chrome://tracing`).
    pub fn export_chrome_trace(&self) -> String {
        let mut out = self.trace.to_chrome_json(CYCLE_NS);
        // Splice FtPulse counter events ("ph": "C") into the event array
        // so the series render as counter tracks alongside the pipeline
        // instants in the same trace viewer.
        if let Some(p) = &self.pulse {
            let counters = p.chrome_counter_events(CYCLE_NS);
            if !counters.is_empty() {
                if let Some(pos) = out.rfind("\n]") {
                    out.insert_str(pos, &format!(",\n{counters}"));
                }
            }
        }
        out
    }

    /// Scheduler queue diagnostics: `(intake backlog, swap-in backlog,
    /// migrations in flight)`.
    pub fn scheduler_backlogs(&self) -> (usize, usize, usize) {
        (
            self.scheduler.backlog(),
            self.scheduler.swap_in_backlog(),
            self.scheduler.migrations_in_flight(),
        )
    }

    /// Total events handled by all FPC event handlers (the Fig. 15/16
    /// event-rate metric).
    pub fn fpc_events_handled(&self) -> u64 {
        self.fpcs.iter().map(Fpc::events_handled).sum()
    }

    fn accept_new_connection(&mut self, syn: Segment) {
        let Some(flow) = self.alloc_flow() else { return };
        let tuple = syn.tuple.reversed();
        let isn = Self::isn_for(flow);
        let mut tcb = Tcb::new(flow);
        tcb.state = TcpState::Listen;
        tcb.tuple = tuple;
        tcb.snd_una = isn;
        tcb.snd_nxt = isn;
        tcb.req = isn;
        tcb.recover = isn;
        if self.rx_parser.register_flow(tuple, flow, SeqNum::ZERO).is_err() {
            return;
        }
        self.flows.insert(flow.0, tuple);
        self.scheduler.place_new_flow(
            tcb,
            &mut self.fpcs,
            &mut self.mm,
            self.cycle,
            self.check.as_deref_mut(),
        );
        self.notifications.push_back(HostNotification::NewConnection { flow, tuple });
        // Re-offer the SYN now that the flow exists.
        self.rx_parser.push_segment_at(syn, self.cycle);
    }

    fn process_outcome(&mut self, flow: FlowId, outcome: &FpuOutcome, tcb: &Tcb) {
        if outcome.connected {
            self.notifications.push_back(HostNotification::Connected { flow });
        }
        if let Some(upto) = outcome.acked_upto {
            self.notifications.push_back(HostNotification::DataAcked { flow, upto });
        }
        if let Some(upto) = outcome.rcvd_upto {
            self.notifications.push_back(HostNotification::DataReceived { flow, upto });
        }
        if outcome.peer_fin {
            self.notifications.push_back(HostNotification::PeerFin { flow });
        }
        if outcome.closed {
            self.notifications.push_back(HostNotification::Closed { flow });
            // Full teardown: release the flow-table entry, reassembly
            // state, routing state and the flow-count slot. (TIME_WAIT is
            // skipped in the prototype model; see DESIGN.md §6.)
            if let Some(tuple) = self.flows.remove(flow.0) {
                self.rx_parser.remove_flow(&tuple, flow);
            }
            self.scheduler.on_flow_closed(flow, self.cycle, self.check.as_deref_mut());
            self.timers.disarm(flow, TimeoutKind::Rto);
            self.timers.disarm(flow, TimeoutKind::Probe);
            self.free_flow_ids.push(flow.0);
            return;
        }
        match tcb.rto_deadline {
            Some(d) => self.timers.arm(flow, TimeoutKind::Rto, d),
            None => self.timers.disarm(flow, TimeoutKind::Rto),
        }
        match tcb.probe_deadline {
            Some(d) => self.timers.arm(flow, TimeoutKind::Probe, d),
            None => self.timers.disarm(flow, TimeoutKind::Probe),
        }
    }

    /// Advances the engine by one 250 MHz cycle.
    pub fn tick(&mut self) {
        let cycle = self.cycle;
        let now = self.now_ns();

        // 0. Drain the TX skid buffer into the packet generator.
        while let Some(&(req, stamp)) = self.tx_overflow.front() {
            if self.pkt_gen.can_accept() {
                self.pkt_gen.push_at(req, stamp);
                self.tx_overflow.pop_front();
            } else {
                break;
            }
        }

        // 1. Timers → timeout events.
        for (flow, kind) in self.timers.expired(now) {
            let ev = FlowEvent::new(flow, EventKind::Timeout { kind }, now);
            let accepted = self.scheduler.push_event_at(ev, cycle);
            if let Some(j) = self.journal.as_deref_mut() {
                let code = match kind {
                    TimeoutKind::Rto => 0,
                    TimeoutKind::Probe => 1,
                };
                j.record(
                    cycle,
                    JournalModule::Timers,
                    JournalKind::TimerFired,
                    flow.0,
                    code,
                    u64::from(accepted),
                );
            }
            if !accepted {
                // Intake full: re-arm slightly later rather than lose it.
                self.timers.arm(flow, kind, now + 2_000);
            }
        }

        // 2. RX parser → events, gated on intake space so bursts back
        //    up into the parser's (bounded) input buffer instead of
        //    losing protocol events; only genuine NIC-buffer overflow
        //    drops packets.
        if self.scheduler.intake_free() >= 8 {
            let mut rx_out = RxOutput::default();
            self.rx_parser.tick_flight(
                now,
                cycle,
                &mut rx_out,
                self.flight.as_deref_mut(),
                self.journal.as_deref_mut(),
            );
            for ev in rx_out.events {
                self.trace.record(cycle, TraceKind::RxEnqueue, ev.flow.0, 0);
                let accepted = self.scheduler.push_event_at(ev, cycle);
                debug_assert!(accepted, "intake_free checked");
            }
            for syn in rx_out.new_connections {
                self.accept_new_connection(syn);
            }
        }

        // 3. Scheduler: coalesce + route + migrations + swap-ins.
        self.scheduler.tick_checked(
            cycle,
            &mut self.fpcs,
            &mut self.mm,
            self.check.as_deref_mut(),
            self.flight.as_deref_mut(),
            self.journal.as_deref_mut(),
        );
        if self.trace.enabled() {
            // Derive per-cycle trace events from the scheduler's running
            // totals (the scheduler itself stays trace-agnostic).
            let s = self.scheduler.stats();
            let routed = s.routed_fpc + s.routed_dram;
            if s.coalesced > self.trace_prev.coalesced {
                self.trace.record(cycle, TraceKind::Coalesce, 0, s.coalesced - self.trace_prev.coalesced);
            }
            if routed > self.trace_prev.routed {
                self.trace.record(cycle, TraceKind::Route, 0, routed - self.trace_prev.routed);
            }
            if s.dropped > self.trace_prev.dropped {
                self.trace.record(cycle, TraceKind::Drop, 0, s.dropped - self.trace_prev.dropped);
            }
            if s.migrations > self.trace_prev.migrations {
                self.trace.record(
                    cycle,
                    TraceKind::MigrateStart,
                    0,
                    s.migrations - self.trace_prev.migrations,
                );
            }
            self.trace_prev.coalesced = s.coalesced;
            self.trace_prev.routed = routed;
            self.trace_prev.dropped = s.dropped;
            self.trace_prev.migrations = s.migrations;
        }

        // 4. FPCs (scratch output buffers are reused across ticks: this
        //    is the simulator's hottest loop).
        let gate = self.tx_overflow.is_empty() && self.pkt_gen.free() >= 16;
        for i in 0..self.fpcs.len() {
            let mut out = std::mem::take(&mut self.fpc_scratch);
            out.tx.clear();
            out.outcomes.clear();
            out.evicted.clear();
            out.installed.clear();
            let fpc_id = self.fpcs[i].id();
            self.fpcs[i].tick_checked(
                cycle,
                now,
                gate,
                &mut out,
                self.check.as_deref_mut(),
                self.flight.as_deref_mut(),
            );
            for req in out.tx.drain(..) {
                if req.retransmit {
                    if let Some(j) = self.journal.as_deref_mut() {
                        j.record(
                            cycle,
                            JournalModule::Fpu,
                            JournalKind::Retransmit,
                            req.flow.0,
                            u64::from(req.seq.0),
                            u64::from(req.len),
                        );
                    }
                }
                if self.pkt_gen.can_accept() {
                    self.pkt_gen.push_at(req, cycle);
                } else {
                    self.tx_overflow.push_back((req, cycle));
                }
            }
            for (flow, outcome, tcb) in &out.outcomes {
                self.trace.record(cycle, TraceKind::Dispatch, flow.0, u64::from(fpc_id));
                if let Some(j) = self.journal.as_deref_mut() {
                    j.record(
                        cycle,
                        JournalModule::Fpu,
                        JournalKind::FpuDecision,
                        flow.0,
                        u64::from(tcb.snd_una.0),
                        u64::from(tcb.snd_nxt.0),
                    );
                }
                self.process_outcome(*flow, outcome, tcb);
            }
            for tcb in out.evicted.drain(..) {
                self.trace.record(cycle, TraceKind::Evict, tcb.flow.0, u64::from(fpc_id));
                if let Some(j) = self.journal.as_deref_mut() {
                    j.record(
                        cycle,
                        JournalModule::Fpc,
                        JournalKind::TcbEvict,
                        tcb.flow.0,
                        u64::from(fpc_id),
                        0,
                    );
                }
                self.scheduler.on_evicted(tcb, &mut self.fpcs, &mut self.mm);
            }
            for flow in out.installed.drain(..) {
                self.trace.record(cycle, TraceKind::SwapIn, flow.0, u64::from(fpc_id));
                if let Some(j) = self.journal.as_deref_mut() {
                    j.record(
                        cycle,
                        JournalModule::Fpc,
                        JournalKind::TcbInstall,
                        flow.0,
                        u64::from(fpc_id),
                        0,
                    );
                    j.record(
                        cycle,
                        JournalModule::Scheduler,
                        JournalKind::TcbMigrateDone,
                        flow.0,
                        1,
                        u64::from(fpc_id),
                    );
                }
                self.scheduler.on_installed(
                    flow,
                    fpc_id,
                    cycle,
                    self.check.as_deref_mut(),
                    self.flight.as_deref_mut(),
                );
            }
            self.fpc_scratch = out;
        }

        // 5. Memory manager.
        let mut mo = MmOutput::default();
        self.mm.tick_flight(&mut mo, cycle, self.flight.as_deref_mut(), self.journal.as_deref_mut());
        for flow in mo.swap_in_requests {
            if let Some(j) = self.journal.as_deref_mut() {
                j.record(
                    cycle,
                    JournalModule::MemoryManager,
                    JournalKind::TcbSwapInReq,
                    flow.0,
                    0,
                    0,
                );
            }
            self.scheduler.request_swap_in_at(flow, cycle);
        }
        for flow in mo.evict_done {
            self.trace.record(cycle, TraceKind::MigrateDone, flow.0, 0);
            if let Some(j) = self.journal.as_deref_mut() {
                j.record(
                    cycle,
                    JournalModule::MemoryManager,
                    JournalKind::TcbMigrateDone,
                    flow.0,
                    0,
                    Journal::DRAM_SLOT,
                );
            }
            self.scheduler.on_evict_done(flow, cycle, self.check.as_deref_mut());
        }
        for ev in mo.bounced {
            if let Some(j) = self.journal.as_deref_mut() {
                j.record(
                    cycle,
                    JournalModule::MemoryManager,
                    JournalKind::EventBounced,
                    ev.flow.0,
                    0,
                    0,
                );
            }
            if !self.scheduler.push_event_at(ev, cycle) {
                // Intake full: treat like a dropped packet; TCP recovers.
                break;
            }
        }

        // 6. Packet generator → MAC buffer (with output backpressure).
        if self.tx_out.len() < TX_OUT_CAP {
            let mut segs = std::mem::take(&mut self.seg_scratch);
            segs.clear();
            self.pkt_gen.tick_flight(
                now,
                cycle,
                &mut segs,
                self.flight.as_deref_mut(),
                self.journal.as_deref_mut(),
            );
            if self.trace.enabled() {
                for seg in &segs {
                    self.trace.record(cycle, TraceKind::TxSegment, 0, u64::from(seg.payload_len));
                }
                let rtx = self.pkt_gen.retransmissions();
                if rtx > self.trace_prev.retransmissions {
                    self.trace.record(
                        cycle,
                        TraceKind::Retransmit,
                        0,
                        rtx - self.trace_prev.retransmissions,
                    );
                    self.trace_prev.retransmissions = rtx;
                }
            }
            self.tx_out.extend(segs.drain(..));
            self.seg_scratch = segs;
        }

        // 7. FtVerify structural audit (residency, LUT consistency, FIFO
        //    conservation, valid-bit leaks) on a coarse period.
        if self.check.is_some() && cycle.is_multiple_of(AUDIT_INTERVAL) {
            self.run_audit(cycle);
        }

        // 8. Online health watchdog, on its own coarse period (same
        //    audit-boundary discipline: fast-forward windows stop at
        //    every sweep cycle, so sweeps observe identical state in
        //    fast-forwarded and tick-by-tick runs).
        if self.watchdog.is_some() && cycle.is_multiple_of(self.config.watchdog_interval) {
            self.run_watchdog(cycle);
        }

        // 9. FtPulse window sample, on its own fixed period (same
        //    boundary discipline as the audit and the watchdog: the
        //    fast-forward path never skips a sample cycle, so the series
        //    are byte-identical across execution modes).
        if self.pulse.is_some() && cycle.is_multiple_of(self.config.pulse_interval) {
            self.run_pulse(cycle);
        }

        self.cycle += 1;
    }

    /// One watchdog sweep: builds flow/queue observations from the live
    /// module state and feeds them to the [`Watchdog`]. Flows whose TCB
    /// is mid-migration (in neither an FPC nor the DRAM store this
    /// instant) are skipped; the `moving` flag covers the LUT side.
    fn run_watchdog(&mut self, cycle: u64) {
        let Some(mut wd) = self.watchdog.take() else { return };
        // Residency map: (snd_una, req) wherever the TCB lives, on a
        // dense slab (no hashing, deterministic iteration).
        let mut residency: FlowSlab<(u64, u64)> = FlowSlab::with_capacity(0);
        for f in &self.fpcs {
            for tcb in f.resident_tcbs() {
                residency.insert(tcb.flow.0, (u64::from(tcb.snd_una.0), u64::from(tcb.req.0)));
            }
        }
        for tcb in self.mm.resident_tcbs() {
            if !residency.contains(tcb.flow.0) {
                residency.insert(tcb.flow.0, (u64::from(tcb.snd_una.0), u64::from(tcb.req.0)));
            }
        }
        // Slab iteration is already ascending by flow id — the order the
        // sweep previously had to sort into.
        let ids: Vec<FlowId> = self.flows.ids().map(FlowId).collect();
        let mut flow_obs: Vec<FlowObservation> = Vec::with_capacity(ids.len());
        for flow in ids {
            let moving = self.scheduler.location(flow) == Location::Moving;
            let Some(&(una, req)) = residency.get(flow.0) else {
                if moving {
                    flow_obs.push(FlowObservation {
                        flow: flow.0,
                        progress: 0,
                        outstanding: false,
                        moving: true,
                    });
                }
                continue;
            };
            flow_obs.push(FlowObservation {
                flow: flow.0,
                progress: una,
                outstanding: una != req,
                moving,
            });
        }
        let queues = [
            QueueObservation {
                name: "scheduler.input_fifo",
                depth: Scheduler::INPUT_FIFO_DEPTH - self.scheduler.intake_free(),
                cap: Scheduler::INPUT_FIFO_DEPTH,
            },
            QueueObservation { name: "engine.tx_out", depth: self.tx_out.len(), cap: TX_OUT_CAP },
        ];
        wd.observe(cycle, &flow_obs, &queues, self.pkt_gen.retransmissions());
        self.watchdog = Some(wd);
    }

    /// One FtPulse window: snapshots the cumulative counters, derives
    /// per-window rates against `pulse_prev`, reads the instantaneous
    /// gauges, and records per-flow congestion state for the sampled
    /// flows. Everything read here is a pure function of engine state at
    /// the sample cycle, so fast-forwarded and tick-by-tick runs (which
    /// both stop at every sample boundary) record identical windows.
    fn run_pulse(&mut self, cycle: u64) {
        let Some(mut p) = self.pulse.take() else { return };
        if let Some((window, bias)) = self.pulse_bias_pending {
            if p.windows_recorded() >= window {
                self.set_flight_bias(bias);
                self.pulse_bias_pending = None;
            }
        }
        let stats = self.stats();
        let cache_hits = self.mm.cache_hits();
        let cache_lookups = cache_hits + self.mm.cache_misses();
        let (lut_fpc, lut_dram, lut_moving) = self.scheduler.lut_census();
        let prev = self.pulse_prev;

        let mut scalars = [0u64; SERIES_COUNT];
        let mut set = |s: PulseSeries, v: u64| scalars[s.index()] = v;
        set(PulseSeries::GoodputBytes, stats.bytes_out.wrapping_sub(prev.bytes_out));
        set(PulseSeries::SegmentsTx, stats.segments_out.wrapping_sub(prev.segments_out));
        set(PulseSeries::SegmentsRx, stats.segments_in.wrapping_sub(prev.segments_in));
        set(
            PulseSeries::Retransmits,
            stats.retransmissions.wrapping_sub(prev.retransmissions),
        );
        set(PulseSeries::HostEvents, stats.host_events.wrapping_sub(prev.host_events));
        set(
            PulseSeries::StallFifoEmpty,
            stats.stall_fifo_empty.wrapping_sub(prev.stall_fifo_empty),
        );
        set(PulseSeries::StallTcbWait, stats.stall_tcb_wait.wrapping_sub(prev.stall_tcb_wait));
        set(
            PulseSeries::StallBackpressure,
            stats.stall_backpressure.wrapping_sub(prev.stall_backpressure),
        );
        set(
            PulseSeries::EventTableValid,
            self.fpcs.iter().map(|f| f.event_table_valid() as u64).sum(),
        );
        set(PulseSeries::FpuOccupancy, self.fpcs.iter().map(|f| f.fpu_depth() as u64).sum());
        set(PulseSeries::LutInFpc, lut_fpc as u64);
        set(PulseSeries::LutInDram, lut_dram as u64);
        set(PulseSeries::LutMoving, lut_moving as u64);
        set(PulseSeries::TcbCacheHits, cache_hits.wrapping_sub(prev.cache_hits));
        set(PulseSeries::TcbCacheLookups, cache_lookups.wrapping_sub(prev.cache_lookups));
        set(PulseSeries::FlowsOpen, self.flows.len() as u64);

        // Per-stage p99-so-far from the flight histograms (zero when the
        // flight recorder is off): the aggregate percentile sampled at
        // each window boundary, which the shape gate replays per window.
        let mut stage_p99 = [0u64; STAGE_COUNT];
        if let Some(f) = &self.flight {
            for stage in FlightStage::ALL {
                stage_p99[stage.index()] = f.stage_histogram(stage).percentile(99.0);
            }
        }

        // Per-flow congestion series: ascending flow-id walk (slab order
        // is deterministic), bounded by the recorder's remaining track
        // budget so a 64K-flow engine never peeks thousands of TCBs.
        let mut budget = p.track_budget();
        let mut flow_samples: Vec<(u32, [u64; FLOW_SERIES_COUNT])> = Vec::new();
        for flow in self.flows.ids() {
            if !p.sampled(flow) {
                continue;
            }
            if !p.tracks(flow) {
                if budget == 0 {
                    continue;
                }
                budget -= 1;
            }
            if let Some(tcb) = self.peek_tcb(FlowId(flow)) {
                flow_samples.push((
                    flow,
                    [
                        u64::from(tcb.cwnd),
                        u64::from(tcb.ssthresh),
                        tcb.rto.srtt_ns(),
                        u64::from(tcb.flight_size()),
                    ],
                ));
            }
        }

        p.record_window(cycle, &scalars, &stage_p99, &flow_samples);
        self.pulse_prev = PulseCounters {
            bytes_out: stats.bytes_out,
            segments_out: stats.segments_out,
            segments_in: stats.segments_in,
            retransmissions: stats.retransmissions,
            host_events: stats.host_events,
            stall_fifo_empty: stats.stall_fifo_empty,
            stall_tcb_wait: stats.stall_tcb_wait,
            stall_backpressure: stats.stall_backpressure,
            cache_hits,
            cache_lookups,
        };
        self.pulse = Some(p);
    }

    /// FtVerify cross-module audit. Per-cycle rules live inline in the
    /// modules; this pass checks the *structural* invariants that need a
    /// global view: a TCB is valid in exactly the place its location-LUT
    /// entry claims (§3.2's race-free migration), never in two memories
    /// at once, and every FIFO's push/pop accounting balances.
    fn run_audit(&mut self, cycle: u64) {
        let Some(mut chk) = self.check.take() else { return };
        for f in &self.fpcs {
            f.audit(cycle, &mut chk);
        }
        self.scheduler.audit(cycle, &mut chk);
        self.mm.audit(cycle, &mut chk);
        self.rx_parser.audit(cycle, &mut chk);

        // Residency map: which memory actually holds each flow right now.
        // Slab/bitset-backed so audit reports come out in deterministic
        // (ascending flow id) order run over run.
        let mut sram: FlowSlab<u8> = FlowSlab::with_capacity(0);
        for f in &self.fpcs {
            for flow in f.resident_flows() {
                if let Some(prev) = sram.insert(flow.0, f.id()) {
                    chk.report(
                        cycle,
                        ViolationKind::MigrationRace,
                        "engine.audit",
                        format!("flow {flow} resident in fpc{prev} and fpc{} at once", f.id()),
                    );
                }
            }
        }
        let mut dram = FlowSet::with_capacity(0);
        for flow in self.mm.resident_flows() {
            dram.insert(flow.0);
        }
        for flow in dram.iter().map(FlowId) {
            if let Some(&fpc) = sram.get(flow.0) {
                chk.report(
                    cycle,
                    ViolationKind::MigrationRace,
                    "engine.audit",
                    format!("flow {flow} resident in fpc{fpc} SRAM and DRAM at once"),
                );
            }
        }
        // Every open flow's LUT entry must match actual residency.
        // `Moving` is the sanctioned transient and is skipped.
        for flow in self.flows.ids().map(FlowId) {
            match self.scheduler.location(flow) {
                Location::Fpc(i) => {
                    if sram.get(flow.0) != Some(&i) {
                        chk.report(
                            cycle,
                            ViolationKind::MigrationRace,
                            "engine.audit",
                            format!("LUT says flow {flow} is in fpc{i} but that FPC does not hold it"),
                        );
                    }
                }
                Location::Dram => {
                    if !dram.contains(flow.0) {
                        chk.report(
                            cycle,
                            ViolationKind::MigrationRace,
                            "engine.audit",
                            format!("LUT says flow {flow} is in DRAM but the store does not hold it"),
                        );
                    }
                }
                Location::Moving => {}
                Location::Unallocated => {
                    chk.report(
                        cycle,
                        ViolationKind::MigrationRace,
                        "engine.audit",
                        format!("open flow {flow} has an unallocated LUT entry"),
                    );
                }
            }
        }
        self.check = Some(chk);
    }

    /// Whether the FtVerify checker is attached.
    pub fn check_enabled(&self) -> bool {
        self.check.is_some()
    }

    /// Total FtVerify violations so far (0 when the checker is off).
    pub fn check_total_violations(&self) -> u64 {
        self.check.as_ref().map_or(0, |c| c.total_violations())
    }

    /// The retained FtVerify violation log (empty when the checker is off).
    pub fn check_violations(&self) -> &[Violation] {
        self.check.as_ref().map_or(&[][..], |c| c.violations())
    }

    /// FtVerify report, when the checker is attached.
    pub fn check_summary(&self) -> Option<String> {
        self.check.as_ref().map(|c| c.summary())
    }

    /// Mutable access to the attached checker (tests tighten the
    /// valid-bit leak bound through this).
    pub fn checker_mut(&mut self) -> Option<&mut InvariantChecker> {
        self.check.as_deref_mut()
    }

    /// FtVerify fault injection: corrupts `flow`'s location-LUT entry
    /// directly, bypassing the Moving protocol. For negative tests that
    /// prove the audit catches stale-LUT migration races.
    pub fn fault_inject_lut(&mut self, flow: FlowId, loc: Location) {
        self.scheduler.fault_set_location(flow, loc);
    }

    /// FtVerify fault injection: plants a copy of an FPC-resident TCB in
    /// the DRAM store, creating the dual-residency race §3.2 rules out by
    /// construction. Returns `false` if the flow is not SRAM-resident.
    pub fn fault_inject_dram_ghost(&mut self, flow: FlowId) -> bool {
        let Some(tcb) = self.fpcs.iter().find_map(|f| f.peek_tcb(flow)).copied() else {
            return false;
        };
        self.mm.fault_inject_store(tcb);
        true
    }

    /// The engine-wide activity horizon: the earliest cycle at which any
    /// module's observable state can change, folded with
    /// [`merge_horizon`] across every `next_activity()` report.
    /// `Some(current cycle)` means there is work right now; `None` means
    /// the engine is fully drained and only external input can wake it.
    ///
    /// The TX skid buffer counts as immediate work (its drain runs every
    /// tick); the MAC output buffer and host-notification queues do not —
    /// they are drained externally and generate no tick activity.
    pub fn next_activity(&self) -> Option<u64> {
        let cycle = self.cycle;
        if !self.tx_overflow.is_empty() {
            return Some(cycle);
        }
        // A deadline at `d` ns fires on the first cycle whose timestamp
        // reaches it: ceil(d / CYCLE_NS).
        let mut h = self.timers.next_activity_ns().map(|d| d.div_ceil(CYCLE_NS).max(cycle));
        h = merge_horizon(h, self.rx_parser.next_activity(cycle));
        h = merge_horizon(h, self.scheduler.next_activity(cycle));
        for f in &self.fpcs {
            h = merge_horizon(h, f.next_activity(cycle));
        }
        h = merge_horizon(h, self.mm.next_activity(cycle));
        h = merge_horizon(h, self.pkt_gen.next_activity(cycle));
        h
    }

    /// Attempts one fast-forward window, skipping the clock from the
    /// current cycle toward `end` (exclusive). Returns `false` when the
    /// horizon says there is work this cycle — the caller ticks normally.
    ///
    /// Every skipped cycle is provably a no-op except for per-cycle
    /// accumulators, which the modules replay in closed form:
    ///
    /// * timers fire only at the (conservative) heap-head horizon;
    /// * the RX parser and packet generator fold their 322/250 credit
    ///   arithmetic modularly (the RX tick's intake gate is open all
    ///   window — quiescence requires an empty scheduler intake — and the
    ///   MAC buffer cannot change mid-window, so the TX gate is constant);
    /// * the scheduler's pending queue sleeps until its head retry and
    ///   `lut.begin_cycle()` resets a budget nothing draws on;
    /// * FPCs accumulate occupancy gauges and dispatch bubbles (the
    ///   dispatch gate is open all window: the skid buffer is empty and
    ///   the request FIFO's 64 free slots exceed the 16-slot threshold);
    /// * the memory manager accrues DRAM pacer credit up to its burst cap.
    ///
    /// With the checker attached the window additionally stops at every
    /// `AUDIT_INTERVAL` boundary so structural audits run at exactly the
    /// cycles the tick-by-tick run audits.
    fn try_fast_forward(&mut self, end: u64) -> bool {
        let cycle = self.cycle;
        let mut target = match self.next_activity() {
            Some(h) if h <= cycle => return false,
            Some(h) => h.min(end),
            None => end,
        };
        if self.check.is_some() {
            let next_audit = if cycle.is_multiple_of(AUDIT_INTERVAL) {
                cycle
            } else {
                (cycle / AUDIT_INTERVAL + 1) * AUDIT_INTERVAL
            };
            target = target.min(next_audit);
        }
        // The watchdog sweeps on its own period; stop every window at the
        // next sweep cycle so fast-forwarded and tick-by-tick runs observe
        // identical state at identical cycles.
        if self.watchdog.is_some() {
            let iv = self.config.watchdog_interval;
            let next_sweep =
                if cycle.is_multiple_of(iv) { cycle } else { (cycle / iv + 1) * iv };
            target = target.min(next_sweep);
        }
        // FtPulse samples at fixed cycle boundaries; stop every window at
        // the next sample cycle so the recorded series are byte-identical
        // across execution modes (DESIGN.md §15).
        if self.pulse.is_some() {
            let iv = self.config.pulse_interval;
            let next_sample =
                if cycle.is_multiple_of(iv) { cycle } else { (cycle / iv + 1) * iv };
            target = target.min(next_sample);
        }
        if target <= cycle {
            return false;
        }
        let n = target - cycle;
        for f in &mut self.fpcs {
            f.skip_cycles(cycle, n);
        }
        self.mm.skip_idle_cycles(n);
        self.rx_parser.skip_idle_cycles(n);
        if self.tx_out.len() < TX_OUT_CAP {
            self.pkt_gen.skip_idle_cycles(n);
        }
        self.cycle = target;
        self.ff_skipped_cycles += n;
        self.ff_windows += 1;
        true
    }

    /// Cycles elided by fast-forward so far.
    pub fn fastforward_skipped_cycles(&self) -> u64 {
        self.ff_skipped_cycles
    }

    /// Fast-forward windows taken so far.
    pub fn fastforward_windows(&self) -> u64 {
        self.ff_windows
    }

    /// Runs `n` cycles. With [`EngineConfig::fast_forward`] set (the
    /// default), quiescent stretches are skipped in one step per the
    /// module horizons; the result is bit-identical to ticking each cycle
    /// (see `tests/fastforward_equiv.rs` for the enforced contract).
    pub fn run(&mut self, n: u64) {
        let end = self.cycle.saturating_add(n);
        if !self.config.fast_forward {
            while self.cycle < end {
                self.tick();
            }
            return;
        }
        while self.cycle < end {
            if !self.try_fast_forward(end) {
                self.tick();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn tuple_ab() -> FourTuple {
        FourTuple::new(Ipv4Addr::new(10, 0, 0, 1), 40_000, Ipv4Addr::new(10, 0, 0, 2), 80)
    }

    /// Two engines wired back-to-back with an ideal (infinite) link.
    fn run_pair(a: &mut Engine, b: &mut Engine, cycles: u64) {
        for _ in 0..cycles {
            a.tick();
            b.tick();
            while let Some(seg) = a.pop_tx() {
                b.push_rx(seg);
            }
            while let Some(seg) = b.pop_tx() {
                a.push_rx(seg);
            }
        }
    }

    #[test]
    fn reference_config_shape() {
        let e = Engine::new(EngineConfig::reference());
        assert_eq!(e.config().num_fpcs, 8);
        assert_eq!(e.config().flows_per_fpc, 128);
        assert_eq!(e.config().max_flows, 65_536);
        assert_eq!(e.now_ns(), 0);
    }

    #[test]
    fn end_to_end_bulk_transfer() {
        let mut a = Engine::new(EngineConfig::single_fpc());
        let mut b = Engine::new(EngineConfig::single_fpc());
        let t = tuple_ab();
        let isn = SeqNum(1000);
        let fa = a.open_established(t, isn).unwrap();
        let fb = b.open_established(t.reversed(), isn).unwrap();
        run_pair(&mut a, &mut b, 50);

        // A sends 10 KB.
        assert!(a.push_host(fa, EventKind::SendReq { req: isn.add(10_000) }));
        run_pair(&mut a, &mut b, 3000);

        // B's host saw the data arrive in order.
        let mut rcvd = SeqNum::ZERO;
        while let Some(n) = b.pop_notification() {
            if let HostNotification::DataReceived { flow, upto } = n {
                assert_eq!(flow, fb);
                rcvd = upto;
            }
        }
        assert_eq!(rcvd, isn.add(10_000), "all 10 KB delivered in order");

        // A's host saw everything ACKed.
        let mut acked = SeqNum::ZERO;
        while let Some(n) = a.pop_notification() {
            if let HostNotification::DataAcked { upto, .. } = n {
                acked = upto;
            }
        }
        assert_eq!(acked, isn.add(10_000), "all data acknowledged");
        assert_eq!(a.stats().retransmissions, 0, "clean link: no retransmits");
    }

    /// Telemetry JSON minus the `fastforward.*` family (the only
    /// counters allowed to differ between execution modes).
    fn telemetry_without_ff(e: &Engine) -> String {
        e.telemetry()
            .to_json()
            .lines()
            .filter(|l| !l.contains("fastforward"))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn fast_forward_matches_tick_by_tick_on_bulk() {
        // The same bulk transfer driven twice — once fast-forwarded, once
        // tick-by-tick — through identical chunked `run` windows, with
        // the checker auditing both paths. Every observable must match.
        let drive = |ff: bool| {
            let cfg = EngineConfig { fast_forward: ff, check: true, ..EngineConfig::single_fpc() };
            let mut a = Engine::new(cfg.clone());
            let mut b = Engine::new(cfg);
            a.set_trace_capacity(4096);
            let t = tuple_ab();
            let isn = SeqNum(1000);
            let fa = a.open_established(t, isn).unwrap();
            b.open_established(t.reversed(), isn).unwrap();
            assert!(a.push_host(fa, EventKind::SendReq { req: isn.add(10_000) }));
            let mut wire = Vec::new();
            for _ in 0..200 {
                a.run(32);
                b.run(32);
                while let Some(seg) = a.pop_tx() {
                    wire.push(format!("{seg:?}"));
                    b.push_rx(seg);
                }
                while let Some(seg) = b.pop_tx() {
                    wire.push(format!("{seg:?}"));
                    a.push_rx(seg);
                }
            }
            // A long drained tail exercises deep multi-window skips.
            a.run(100_000);
            b.run(100_000);
            assert_eq!(a.check_total_violations(), 0, "{:?}", a.check_violations());
            let tcb = a.peek_tcb(fa).unwrap();
            (wire, format!("{tcb:?}"), telemetry_without_ff(&a), a.export_chrome_trace(), a)
        };
        let (wire_ff, tcb_ff, telem_ff, trace_ff, eng_ff) = drive(true);
        let (wire_tk, tcb_tk, telem_tk, trace_tk, eng_tk) = drive(false);
        assert_eq!(wire_ff, wire_tk, "packet traces diverge");
        assert_eq!(tcb_ff, tcb_tk, "final TCB state diverges");
        assert_eq!(telem_ff, telem_tk, "telemetry diverges");
        assert_eq!(trace_ff, trace_tk, "pipeline trace diverges");
        assert!(eng_ff.fastforward_skipped_cycles() > 50_000, "fast-forward barely engaged");
        assert_eq!(eng_tk.fastforward_skipped_cycles(), 0, "tick-by-tick must skip nothing");
    }

    #[test]
    fn fast_forward_skips_to_rto_deadline_exactly() {
        // A lone sender with unacknowledged data is quiescent until its
        // RTO fires; fast-forward must land on the same cycle the
        // tick-by-tick run retransmits.
        let drive = |ff: bool| {
            let cfg = EngineConfig { fast_forward: ff, ..EngineConfig::single_fpc() };
            let mut e = Engine::new(cfg);
            let fa = e.open_established(tuple_ab(), SeqNum(1000)).unwrap();
            e.push_host(fa, EventKind::SendReq { req: SeqNum(1000).add(100) });
            let mut events = Vec::new();
            // 4M cycles = 16 ms: covers the 10 ms initial RTO.
            for _ in 0..40 {
                e.run(100_000);
                while let Some(seg) = e.pop_tx() {
                    events.push((e.cycles(), format!("{seg:?}")));
                }
            }
            (events, e.fastforward_skipped_cycles())
        };
        let (ev_ff, skipped) = drive(true);
        let (ev_tk, _) = drive(false);
        assert_eq!(ev_ff, ev_tk, "retransmission schedule diverges");
        assert!(
            ev_ff.iter().any(|(_, s)| s.contains("is_retransmit: true")),
            "RTO never fired: {ev_ff:?}"
        );
        assert!(skipped > 2_000_000, "idle RTO wait was not skipped (skipped {skipped})");
    }

    #[test]
    fn end_to_end_handshake() {
        let mut client = Engine::new(EngineConfig::single_fpc());
        let mut server = Engine::new(EngineConfig::single_fpc());
        server.listen(80);
        let t = tuple_ab();
        let fc = client.open_active(t).unwrap();
        assert!(client.push_host(fc, EventKind::Connect));
        run_pair(&mut client, &mut server, 2000);

        let mut client_connected = false;
        while let Some(n) = client.pop_notification() {
            if matches!(n, HostNotification::Connected { flow } if flow == fc) {
                client_connected = true;
            }
        }
        assert!(client_connected, "client completed the handshake");

        let mut server_new = None;
        let mut server_connected = false;
        while let Some(n) = server.pop_notification() {
            match n {
                HostNotification::NewConnection { flow, tuple } => {
                    assert_eq!(tuple, t.reversed());
                    server_new = Some(flow);
                }
                HostNotification::Connected { flow } => {
                    assert_eq!(Some(flow), server_new);
                    server_connected = true;
                }
                _ => {}
            }
        }
        assert!(server_connected, "server reached established");

        // Data flows over the handshaken connection.
        let tcb = client.peek_tcb(fc).unwrap();
        client.push_host(fc, EventKind::SendReq { req: tcb.snd_nxt.add(256) });
        run_pair(&mut client, &mut server, 2000);
        let srv_flow = server_new.unwrap();
        let srv_tcb = server.peek_tcb(srv_flow).unwrap();
        assert_eq!(srv_tcb.rcv_nxt.since(srv_tcb.rcv_consumed), 256, "payload arrived");
    }

    #[test]
    fn loss_recovers_via_retransmission() {
        let mut a = Engine::new(EngineConfig::single_fpc());
        let mut b = Engine::new(EngineConfig::single_fpc());
        let t = tuple_ab();
        let isn = SeqNum(0);
        let fa = a.open_established(t, isn).unwrap();
        let _fb = b.open_established(t.reversed(), isn).unwrap();
        run_pair(&mut a, &mut b, 50);
        a.push_host(fa, EventKind::SendReq { req: isn.add(50_000) });

        // Drop the 3rd data segment once.
        let mut dropped = false;
        let mut seen = 0;
        for _ in 0..1_000_000u64 {
            a.tick();
            b.tick();
            while let Some(seg) = a.pop_tx() {
                if seg.has_payload() {
                    seen += 1;
                    if seen == 3 && !dropped {
                        dropped = true;
                        continue; // lost on the wire
                    }
                }
                b.push_rx(seg);
            }
            while let Some(seg) = b.pop_tx() {
                a.push_rx(seg);
            }
            if a.peek_tcb(fa).map(|t| t.snd_una) == Some(isn.add(50_000)) {
                break;
            }
        }
        assert!(dropped);
        let tcb = a.peek_tcb(fa).unwrap();
        assert_eq!(tcb.snd_una, isn.add(50_000), "transfer completed despite loss");
        assert!(a.stats().retransmissions >= 1, "loss repaired by retransmission");
    }

    #[test]
    fn flows_overflow_to_dram() {
        let mut cfg = EngineConfig::single_fpc();
        cfg.flows_per_fpc = 4;
        let mut e = Engine::new(cfg);
        for i in 0..10u32 {
            let t = FourTuple::new(
                Ipv4Addr::new(10, 0, 0, 1),
                10_000 + i as u16,
                Ipv4Addr::new(10, 0, 0, 2),
                80,
            );
            e.open_established(t, SeqNum(0)).unwrap();
            e.run(10);
        }
        e.run(100);
        let in_dram = (0..10).filter(|&i| e.mm.peek_tcb(FlowId(i)).is_some()).count();
        assert_eq!(in_dram, 6, "4 SRAM-resident, 6 in DRAM");
        // peek_tcb finds them regardless of residence.
        for i in 0..10u32 {
            assert!(e.peek_tcb(FlowId(i)).is_some(), "flow {i} visible");
        }
    }

    #[test]
    fn flow_limit_enforced() {
        let mut cfg = EngineConfig::single_fpc();
        cfg.max_flows = 2;
        let mut e = Engine::new(cfg);
        assert!(e.open_established(tuple_ab(), SeqNum(0)).is_some());
        let t2 = FourTuple::new(Ipv4Addr::new(10, 0, 0, 3), 1, Ipv4Addr::new(10, 0, 0, 4), 2);
        assert!(e.open_established(t2, SeqNum(0)).is_some());
        let t3 = FourTuple::new(Ipv4Addr::new(10, 0, 0, 5), 1, Ipv4Addr::new(10, 0, 0, 6), 2);
        assert!(e.open_established(t3, SeqNum(0)).is_none(), "65K-style cap");
    }

    #[test]
    fn zero_window_closes_and_probe_reopens() {
        // Fill the receiver's 512 KB buffer without consuming: the
        // advertised window closes and the sender stalls; once the app
        // consumes, the window-update (or probe) restarts the transfer.
        let mut a = Engine::new(EngineConfig::single_fpc());
        let mut b = Engine::new(EngineConfig::single_fpc());
        let t = tuple_ab();
        let isn = SeqNum(0);
        let fa = a.open_established(t, isn).unwrap();
        let fb = b.open_established(t.reversed(), isn).unwrap();
        run_pair(&mut a, &mut b, 50);
        // Ask for 600 KB — more than the 512 KB receive buffer.
        a.push_host(fa, EventKind::SendReq { req: isn.add(600_000) });
        run_pair(&mut a, &mut b, 60_000);
        let tcb_a = a.peek_tcb(fa).unwrap();
        assert!(
            tcb_a.snd_una.since(isn) < 600_000,
            "sender stalled before finishing: {} B acked",
            tcb_a.snd_una.since(isn)
        );
        assert_eq!(tcb_a.snd_wnd, 0, "peer advertised a closed window");
        assert!(tcb_a.probe_deadline.is_some(), "probe timer armed");
        // The receiving app finally consumes everything buffered.
        let tcb_b = b.peek_tcb(fb).unwrap();
        b.push_host(fb, EventKind::RecvConsumed { consumed: tcb_b.rcv_nxt });
        run_pair(&mut a, &mut b, 40_000);
        // Keep consuming until the stream completes.
        for _ in 0..20 {
            let tcb_b = b.peek_tcb(fb).unwrap();
            b.push_host(fb, EventKind::RecvConsumed { consumed: tcb_b.rcv_nxt });
            run_pair(&mut a, &mut b, 20_000);
            if a.peek_tcb(fa).unwrap().snd_una == isn.add(600_000) {
                break;
            }
        }
        assert_eq!(
            a.peek_tcb(fa).unwrap().snd_una,
            isn.add(600_000),
            "transfer completed after the window reopened"
        );
    }

    #[test]
    fn load_imbalance_triggers_fpc_migration() {
        // Two FPCs; hammer one flow hard enough to backpressure its FPC's
        // input FIFO while coalescing is off: the scheduler must migrate
        // flows toward the idler FPC (§4.4.2).
        let mut cfg = EngineConfig::reference();
        cfg.num_fpcs = 2;
        cfg.lut_groups = 2;
        cfg.flows_per_fpc = 8;
        cfg.coalescing = false;
        let mut e = Engine::new(cfg);
        // Open 8 flows; with least-loaded placement they spread 4/4.
        let mut flows = Vec::new();
        for i in 0..8u16 {
            let t = FourTuple::new(
                Ipv4Addr::new(10, 0, 0, 1),
                30_000 + i,
                Ipv4Addr::new(10, 0, 0, 2),
                80,
            );
            flows.push(e.open_established(t, SeqNum(0)).unwrap());
            e.run(8);
        }
        // Flood dup-ack-style distinct events to all flows faster than
        // one FPC drains (0.5 events/cycle), creating backpressure.
        let mut req = vec![SeqNum(0); flows.len()];
        for c in 0..200_000u64 {
            for (i, &f) in flows.iter().enumerate() {
                req[i] = req[i].add(1);
                e.push_host(f, EventKind::SendReq { req: req[i] });
            }
            e.tick();
            while e.pop_tx().is_some() {}
            let _ = c;
        }
        assert!(
            e.stats().migrations > 0,
            "backpressure triggered load-balance migration"
        );
    }

    #[test]
    fn orderly_close_tears_down_and_tuple_is_reusable() {
        let mut a = Engine::new(EngineConfig::single_fpc());
        let mut b = Engine::new(EngineConfig::single_fpc());
        let t = tuple_ab();
        let isn = SeqNum(0);
        let fa = a.open_established(t, isn).unwrap();
        let fb = b.open_established(t.reversed(), isn).unwrap();
        run_pair(&mut a, &mut b, 50);
        // Transfer then close from both sides.
        a.push_host(fa, EventKind::SendReq { req: isn.add(1_000) });
        run_pair(&mut a, &mut b, 2_000);
        a.push_host(fa, EventKind::Close);
        b.push_host(fb, EventKind::Close);
        let mut a_closed = false;
        let mut b_closed = false;
        // TIME_WAIT holds the active closer for 100 µs (25 k cycles).
        for _ in 0..80 {
            run_pair(&mut a, &mut b, 1_000);
            while let Some(n) = a.pop_notification() {
                a_closed |= matches!(n, HostNotification::Closed { flow } if flow == fa);
            }
            while let Some(n) = b.pop_notification() {
                b_closed |= matches!(n, HostNotification::Closed { flow } if flow == fb);
            }
            if a_closed && b_closed {
                break;
            }
        }
        assert!(a_closed && b_closed, "both directions closed");
        assert!(a.peek_tcb(fa).is_none(), "TCB slot reclaimed");
        // The same 4-tuple opens a NEW connection (no stale flow-table
        // entry in the way), and capacity was released.
        let fa2 = a.open_established(t, SeqNum(50_000)).expect("tuple reusable");
        // Flow ids are a bounded pool and may be recycled after close.
        assert_eq!(fa2, fa, "freed flow id recycled");
        let fb2 = b.open_established(t.reversed(), SeqNum(50_000)).unwrap();
        run_pair(&mut a, &mut b, 50);
        a.push_host(fa2, EventKind::SendReq { req: SeqNum(50_000).add(500) });
        run_pair(&mut a, &mut b, 2_000);
        let tcb = b.peek_tcb(fb2).unwrap();
        assert_eq!(tcb.rcv_nxt, SeqNum(50_500), "new connection moves data");
    }

    #[test]
    fn rst_tears_down_immediately() {
        let mut e = Engine::new(EngineConfig::single_fpc());
        let flow = e.open_established(tuple_ab(), SeqNum(0)).unwrap();
        e.run(50);
        let mut rst = f4t_tcp::Segment::pure_ack(tuple_ab().reversed(), SeqNum(0), SeqNum(0), 0);
        rst.flags = f4t_tcp::TcpFlags::RST | f4t_tcp::TcpFlags::ACK;
        e.push_rx(rst);
        e.run(500);
        let mut closed = false;
        while let Some(n) = e.pop_notification() {
            closed |= matches!(n, HostNotification::Closed { flow: f } if f == flow);
        }
        assert!(closed, "RST closed the connection");
        assert!(e.peek_tcb(flow).is_none(), "state reclaimed");
    }

    #[test]
    fn arp_and_ping_answered_in_hardware() {
        let e = Engine::new(EngineConfig::single_fpc());
        let req = ArpMessage {
            is_request: true,
            sender_mac: MacAddr([1; 6]),
            sender_ip: Ipv4Addr::new(10, 0, 0, 2),
            target_mac: MacAddr::default(),
            target_ip: Ipv4Addr::new(10, 0, 0, 1),
        };
        let reply = e.handle_arp(&req).expect("ARP answered");
        assert_eq!(reply.sender_mac, e.mac);
        assert!(e.handle_arp(&reply).is_none(), "replies are not re-answered");

        let ping = IcmpEcho { is_request: true, ident: 1, seq: 9, payload: vec![0xAA; 16] };
        let pong = e.handle_ping(&ping).expect("ping answered");
        assert!(!pong.is_request);
        assert_eq!(pong.payload, ping.payload);
        assert!(e.handle_ping(&pong).is_none());
    }

    #[test]
    fn steady_state_has_rmw_hazards_but_zero_rmw_stalls() {
        // The paper's §4.2 claim: event accumulation never stalls on a
        // TCB in flight through the FPU. Hammer one flow so events land
        // while its TCB is mid-pipeline (the hazard), then assert the
        // stall counter is structurally zero.
        let mut a = Engine::new(EngineConfig::single_fpc());
        let mut b = Engine::new(EngineConfig::single_fpc());
        let t = tuple_ab();
        let isn = SeqNum(0);
        let fa = a.open_established(t, isn).unwrap();
        let _fb = b.open_established(t.reversed(), isn).unwrap();
        run_pair(&mut a, &mut b, 50);
        let mut req = isn;
        for _ in 0..5_000u64 {
            req = req.add(64);
            a.push_host(fa, EventKind::SendReq { req });
            a.tick();
            b.tick();
            while let Some(seg) = a.pop_tx() {
                b.push_rx(seg);
            }
            while let Some(seg) = b.pop_tx() {
                a.push_rx(seg);
            }
        }
        let stats = a.stats();
        assert!(
            stats.rmw_hazard_events > 0,
            "the workload must actually exercise the in-flight-TCB hazard"
        );
        assert_eq!(stats.rmw_stall_cycles, 0, "F4T accumulation is stall-free");
        // The dispatch-stall taxonomy is being populated too.
        assert!(
            stats.stall_fifo_empty + stats.stall_tcb_wait + stats.stall_backpressure > 0,
            "some dispatch cycles were idle or blocked"
        );
    }

    #[test]
    fn telemetry_registry_covers_every_module() {
        let mut a = Engine::new(EngineConfig::single_fpc());
        let mut b = Engine::new(EngineConfig::single_fpc());
        let t = tuple_ab();
        let isn = SeqNum(0);
        let fa = a.open_established(t, isn).unwrap();
        let _fb = b.open_established(t.reversed(), isn).unwrap();
        let before = a.telemetry();
        a.push_host(fa, EventKind::SendReq { req: isn.add(10_000) });
        run_pair(&mut a, &mut b, 3_000);
        let after = a.telemetry();
        assert!(after.counter_value("engine.cycles") > 0);
        assert!(after.counter_value("engine.fpc0.events_handled") > 0);
        assert!(after.counter_value("engine.scheduler.events_in") > 0);
        assert!(after.counter_value("engine.rx.segments_in") > 0);
        assert!(after.counter_value("engine.tx.segments_out") > 0);
        assert!(after.counter_value("engine.rx.cuckoo.probes") > 0);
        // The windowed view subtracts the earlier snapshot.
        let win = after.delta(&before);
        assert_eq!(win.counter_value("engine.cycles"), after.counter_value("engine.cycles"));
        assert!(win.counter_value("engine.fpc0.input_fifo.pushed") > 0);
        // Registry serializes without panicking and is non-trivial.
        assert!(after.to_json().len() > 200);
    }

    #[test]
    fn trace_ring_captures_pipeline_events() {
        let mut a = Engine::new(EngineConfig::single_fpc());
        let mut b = Engine::new(EngineConfig::single_fpc());
        a.set_trace_capacity(4096);
        let t = tuple_ab();
        let isn = SeqNum(0);
        let fa = a.open_established(t, isn).unwrap();
        let _fb = b.open_established(t.reversed(), isn).unwrap();
        run_pair(&mut a, &mut b, 50);
        a.push_host(fa, EventKind::SendReq { req: isn.add(10_000) });
        run_pair(&mut a, &mut b, 3_000);
        assert!(a.trace().total_recorded() > 0, "pipeline activity traced");
        let json = a.export_chrome_trace();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("host_enqueue"));
        assert!(json.contains("dispatch"));
        assert!(json.contains("tx_segment"));
        // Disabling stops recording.
        let recorded = a.trace().total_recorded();
        a.set_trace_capacity(0);
        run_pair(&mut a, &mut b, 100);
        assert_eq!(a.trace().total_recorded(), 0);
        let _ = recorded;
    }

    #[test]
    fn backpressured_link_grows_packet_size() {
        // §5.1: when the network bottlenecks, events accumulate and the
        // emitted packets become larger.
        let mut cfg = EngineConfig::single_fpc();
        cfg.coalescing = false; // isolate the FPC-accumulation effect
        let mut e = Engine::new(cfg);
        let fa = e.open_established(tuple_ab(), SeqNum(0)).unwrap();
        e.run(50);
        // Feed 128 B requests but drain the link slowly.
        let mut req_ptr = SeqNum(0);
        let mut drained: Vec<Segment> = Vec::new();
        for c in 0..30_000u64 {
            req_ptr = req_ptr.add(128);
            e.push_host(fa, EventKind::SendReq { req: req_ptr });
            e.tick();
            // Slow link: one segment every 100 cycles.
            if c % 100 == 0 {
                if let Some(seg) = e.pop_tx() {
                    drained.push(seg);
                }
            }
        }
        // Early packets left before backlog built; judge the steady
        // state by the second half of the drain.
        let tail = &drained[drained.len() / 2..];
        let avg_payload: f64 =
            tail.iter().map(|s| f64::from(s.payload_len)).sum::<f64>() / tail.len() as f64;
        assert!(
            avg_payload > 512.0,
            "accumulation grew packets well beyond 128 B, got {avg_payload:.0} B"
        );
    }
}
