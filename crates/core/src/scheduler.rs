//! The scheduler: event routing, coalescing and TCB-migration control.
//!
//! The scheduler (Fig. 5) "orchestrates all flows": it tracks every TCB's
//! location in the location LUT, routes events to the owning FPC or to
//! DRAM, parks events whose flow is mid-migration in the pending queue
//! (retrying after 12 cycles — all migrations complete within that bound,
//! §4.3.2), coalesces events of the same flow in four 16-entry FIFOs
//! (§4.4.1), allocates new flows to the least-loaded FPC and migrates
//! flows away from congested FPCs (§4.4.2).

use crate::event::FlowEvent;
use crate::fpc::Fpc;
use crate::fpu::EventView;
use crate::memory_manager::MemoryManager;
use f4t_mem::{Location, LocationLut};
use f4t_sim::check::{InvariantChecker, ViolationKind};
use f4t_sim::{
    Fifo, FlightRecorder, FlightStage, FlowSlab, Journal, JournalKind, JournalModule, SlabQueue,
};
use f4t_tcp::{FlowId, Tcb};

/// Whether a location-LUT state transition is part of the migration
/// protocol (Fig. 6): every move between SRAM and DRAM passes through
/// `Moving`, and any state may release to `Unallocated` on close. A
/// direct `Fpc→Dram`, `Dram→Fpc` or `Fpc(i)→Fpc(j)` edge means the
/// protocol was bypassed — exactly the race class §4.3.2 rules out.
fn lut_transition_legal(from: Location, to: Location) -> bool {
    use Location::*;
    matches!(
        (from, to),
        (Unallocated, Moving)
            | (Moving, Fpc(_))
            | (Moving, Dram)
            | (Fpc(_), Moving)
            | (Dram, Moving)
            | (_, Unallocated)
    )
}

/// Where an in-flight migration is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MigrationDest {
    /// Swap out to DRAM.
    Dram,
    /// Direct FPC-to-FPC move (load balancing).
    Fpc(u8),
}

/// Running totals the harnesses report.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchedulerStats {
    /// Events accepted from the host interface / RX parser / timers.
    pub events_in: u64,
    /// Events merged away in the coalesce FIFOs.
    pub coalesced: u64,
    /// Events routed to FPCs.
    pub routed_fpc: u64,
    /// Events routed to the memory manager.
    pub routed_dram: u64,
    /// Events parked in the pending queue.
    pub parked: u64,
    /// Migrations initiated (either direction).
    pub migrations: u64,
    /// Events dropped for unallocated flows.
    pub dropped: u64,
}

/// The scheduler.
#[derive(Debug)]
pub struct Scheduler {
    input: Fifo<FlowEvent>,
    /// FtFlight stamp mirror of `input`: the engine cycle each event was
    /// offered (`None` until [`enable_flight`](Self::enable_flight)).
    input_stamps: Option<Fifo<u64>>,
    coalesce: Vec<Fifo<FlowEvent>>,
    /// FtFlight stamp mirrors of the coalesce FIFOs. Each entry carries
    /// the event's ORIGINAL intake stamp (transferred from
    /// `input_stamps`), so the `coalesce_fifo` span covers intake plus
    /// coalesce residency. On a merge the incoming event's stamp is
    /// dropped with it — the merged entry keeps the earliest stamp.
    coalesce_stamps: Option<Vec<Fifo<u64>>>,
    coalescing: bool,
    /// Whether FtFlight stamping is on (gates the migration stamp map).
    flight_enabled: bool,
    lut: LocationLut,
    /// Pending retry queue for events whose flow is mid-migration;
    /// bounded by intake backpressure (events only enter via the bounded
    /// input/coalesce FIFOs). Tuple: (event, retry cycle, cycle first
    /// parked — the FtFlight `pending_wait` span start, kept across
    /// re-parks).
    pending: SlabQueue<(FlowEvent, u64, u64)>,
    /// Reused per-tick batch buffer for the pending drain (hot path;
    /// avoids reallocating).
    pending_scratch: Vec<(FlowEvent, u64, u64)>,
    pending_high: usize,
    /// In-flight migrations, keyed by flow id on a dense FtTurbo slab
    /// (no hashing on the routing path; ascending-id iteration).
    migrations: FlowSlab<MigrationDest>,
    /// FtFlight: cycle each in-flight migration / swap-in began, recorded
    /// as `tcb_fetch_dram` when the flow lands in an FPC. Only populated
    /// while flight is enabled; entries leave with `migrations`.
    migration_started: FlowSlab<u64>,
    /// At most one entry per DRAM-resident flow (the memory manager
    /// deduplicates swap-in requests).
    swap_in_queue: SlabQueue<FlowId>,
    stats: SchedulerStats,
}

/// The paper's coalesce-FIFO geometry: four FIFOs of 16 entries.
const COALESCE_FIFOS: usize = 4;
const COALESCE_DEPTH: usize = 16;
/// Pending-queue retry delay: "the scheduler retries the routing after 12
/// cycles, and it always succeeds because all migration completes within
/// 12 cycles" (§4.3.2).
pub const PENDING_RETRY_CYCLES: u64 = 12;
/// Intake bandwidth from the host/RX/timer interfaces, events per cycle.
const INTAKE_PER_CYCLE: usize = 4;

impl Scheduler {
    /// Depth of the intake FIFO shared by host, RX parser and timers.
    pub const INPUT_FIFO_DEPTH: usize = 512;

    /// Swap-in control actions per cycle (the migration machinery runs
    /// well ahead of the 12-cycle per-migration bound).
    pub const SWAP_ACTIONS_PER_CYCLE: usize = 8;

    /// Creates a scheduler for `max_flows` flows routed across
    /// `lut_groups` LUT partitions, with event coalescing on or off.
    pub fn new(max_flows: usize, lut_groups: usize, coalescing: bool) -> Scheduler {
        Scheduler {
            input: Fifo::new(Self::INPUT_FIFO_DEPTH),
            input_stamps: None,
            coalesce: (0..COALESCE_FIFOS).map(|_| Fifo::new(COALESCE_DEPTH)).collect(),
            coalesce_stamps: None,
            coalescing,
            flight_enabled: false,
            lut: LocationLut::new(max_flows, lut_groups),
            pending: SlabQueue::with_capacity(16),
            pending_scratch: Vec::new(),
            pending_high: 0,
            migrations: FlowSlab::with_capacity(0),
            migration_started: FlowSlab::with_capacity(0),
            swap_in_queue: SlabQueue::with_capacity(16),
            stats: SchedulerStats::default(),
        }
    }

    /// Turns on FtFlight span stamping. Call before the first event;
    /// stamps then mirror the intake and coalesce FIFOs 1:1.
    pub fn enable_flight(&mut self) {
        debug_assert!(self.backlog() == 0, "enable_flight on a non-empty scheduler");
        self.input_stamps = Some(Fifo::new(Self::INPUT_FIFO_DEPTH));
        self.coalesce_stamps =
            Some((0..COALESCE_FIFOS).map(|_| Fifo::new(COALESCE_DEPTH)).collect());
        self.flight_enabled = true;
    }

    /// Offers an event at the intake; `false` under backpressure (the
    /// host's doorbell stalls).
    pub fn push_event(&mut self, ev: FlowEvent) -> bool {
        self.push_event_at(ev, 0)
    }

    /// [`push_event`](Self::push_event) carrying the engine cycle of
    /// arrival, recorded as the FtFlight `coalesce_fifo` span start.
    pub fn push_event_at(&mut self, ev: FlowEvent, cycle: u64) -> bool {
        if self.input.push(ev).is_ok() {
            if let Some(stamps) = &mut self.input_stamps {
                let ok = stamps.push(cycle).is_ok();
                debug_assert!(ok, "flight stamp FIFO out of sync with scheduler intake");
            }
            self.stats.events_in += 1;
            true
        } else {
            false
        }
    }

    /// Whether the intake FIFO has room.
    pub fn can_accept(&self) -> bool {
        !self.input.is_full()
    }

    /// Free intake slots this cycle.
    pub fn intake_free(&self) -> usize {
        self.input.free()
    }

    /// Intake backlog (diagnostics).
    pub fn backlog(&self) -> usize {
        self.input.len()
            + self.coalesce.iter().map(Fifo::len).sum::<usize>()
            + self.pending.len()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> SchedulerStats {
        self.stats
    }

    /// LUT-partition stalls (diagnostics).
    pub fn lut_stalls(&self) -> u64 {
        self.lut.stalls()
    }

    /// LUT occupancy census: `(in_fpc, in_dram, moving)` flow counts.
    /// All three are zero exactly when no flow holds a LUT entry — the
    /// structural leak check churn tests assert after full teardown.
    pub fn lut_census(&self) -> (usize, usize, usize) {
        self.lut.census()
    }

    /// Queues a check-logic swap-in request from the memory manager.
    pub fn request_swap_in(&mut self, flow: FlowId) {
        self.request_swap_in_at(flow, 0);
    }

    /// [`request_swap_in`](Self::request_swap_in) carrying the engine
    /// cycle, recorded as the FtFlight `tcb_fetch_dram` span start (the
    /// DRAM→FPC migration wait measured to the swap-in install).
    pub fn request_swap_in_at(&mut self, flow: FlowId, cycle: u64) {
        if self.flight_enabled && !self.migration_started.contains(flow.0) {
            self.migration_started.insert(flow.0, cycle);
        }
        self.swap_in_queue.push_back(flow);
    }

    /// Pending swap-in requests (diagnostics).
    pub fn swap_in_backlog(&self) -> usize {
        self.swap_in_queue.len()
    }

    /// Migrations currently in flight (diagnostics).
    pub fn migrations_in_flight(&self) -> usize {
        self.migrations.len()
    }

    /// Activity horizon: the earliest cycle at which ticking the
    /// scheduler can change observable state. Queued intake, coalesce or
    /// swap-in work is immediate; a non-empty pending queue wakes at the
    /// head's retry cycle (the head is the minimum — parks append
    /// monotonically increasing `cycle + 12` retries and the only
    /// `push_front` re-parks the entry just popped at `cycle + 1`);
    /// `None` means nothing will happen until new input arrives. The
    /// per-cycle `lut.begin_cycle()` port-budget reset is not activity:
    /// with no lookups there is nothing to budget.
    pub fn next_activity(&self, cycle: u64) -> Option<u64> {
        if !self.input.is_empty()
            || self.coalesce.iter().any(|q| !q.is_empty())
            || !self.swap_in_queue.is_empty()
        {
            return Some(cycle);
        }
        self.pending.front().map(|&(_, retry, _)| retry.max(cycle))
    }

    /// Sets `flow`'s LUT entry, validating the migration-protocol edge
    /// when an FtVerify checker is attached. All protocol-path writes go
    /// through here; only the documented fault-injection hook bypasses it.
    fn set_location(
        &mut self,
        flow: FlowId,
        to: Location,
        cycle: u64,
        chk: Option<&mut InvariantChecker>,
    ) {
        if let Some(chk) = chk {
            let from = self.lut.peek(flow);
            if !lut_transition_legal(from, to) {
                chk.report(
                    cycle,
                    ViolationKind::MigrationRace,
                    "scheduler.lut",
                    format!("illegal LUT transition {from:?} → {to:?} for flow {flow}"),
                );
            }
        }
        self.lut.set(flow, to);
    }

    /// FtVerify fault injection: corrupts `flow`'s LUT entry without the
    /// Moving protocol, bypassing transition validation. Exists so the
    /// negative tests can seed a migration race the audit must detect;
    /// never called from the protocol paths.
    pub fn fault_set_location(&mut self, flow: FlowId, loc: Location) {
        self.lut.set(flow, loc);
    }

    /// Places a brand-new flow: least-loaded FPC with room, else DRAM.
    /// Sets the location LUT through the proper Moving transition.
    pub fn place_new_flow(
        &mut self,
        tcb: Tcb,
        fpcs: &mut [Fpc],
        mm: &mut MemoryManager,
        cycle: u64,
        chk: Option<&mut InvariantChecker>,
    ) -> Location {
        let flow = tcb.flow;
        let target = fpcs
            .iter()
            .enumerate()
            .filter(|(_, f)| f.can_accept_tcb())
            .min_by_key(|(_, f)| f.flow_count())
            .map(|(i, _)| i);
        match target {
            Some(i) => {
                let accepted = fpcs[i].push_tcb(tcb, EventView::default());
                debug_assert!(accepted, "can_accept_tcb lied");
                self.set_location(flow, Location::Moving, cycle, chk);
                Location::Fpc(i as u8)
            }
            None => {
                mm.insert_new(tcb);
                self.set_location(flow, Location::Moving, cycle, chk);
                Location::Dram
            }
        }
    }

    /// Location of a flow (diagnostics; control-path read).
    pub fn location(&self, flow: FlowId) -> Location {
        self.lut.peek(flow)
    }

    /// Engine callback: an FPC's swap-in port installed `flow`. With an
    /// FtFlight recorder attached, closes the `tcb_fetch_dram` span opened
    /// when the migration / swap-in began.
    pub fn on_installed(
        &mut self,
        flow: FlowId,
        fpc: u8,
        cycle: u64,
        chk: Option<&mut InvariantChecker>,
        flight: Option<&mut FlightRecorder>,
    ) {
        self.set_location(flow, Location::Fpc(fpc), cycle, chk);
        self.migrations.remove(flow.0);
        if let Some(start) = self.migration_started.remove(flow.0) {
            if let Some(f) = flight {
                f.record(FlightStage::TcbFetchDram, flow.0, cycle.saturating_sub(start));
            }
        }
    }

    /// Engine callback: the memory manager finished writing `flow` to
    /// DRAM (Fig. 6's evict-complete signal).
    pub fn on_evict_done(
        &mut self,
        flow: FlowId,
        cycle: u64,
        chk: Option<&mut InvariantChecker>,
    ) {
        self.set_location(flow, Location::Dram, cycle, chk);
        self.migrations.remove(flow.0);
        self.migration_started.remove(flow.0);
    }

    /// Engine callback: the connection fully closed; release routing
    /// state so the flow id slot can be reused by new connections.
    pub fn on_flow_closed(
        &mut self,
        flow: FlowId,
        cycle: u64,
        chk: Option<&mut InvariantChecker>,
    ) {
        self.set_location(flow, Location::Unallocated, cycle, chk);
        self.migrations.remove(flow.0);
        self.migration_started.remove(flow.0);
    }

    /// Engine callback: an evict checker diverted `tcb` out of an FPC.
    /// Forwards it to its migration destination.
    pub fn on_evicted(&mut self, tcb: Tcb, fpcs: &mut [Fpc], mm: &mut MemoryManager) {
        let flow = tcb.flow;
        match self.migrations.get(flow.0).copied() {
            Some(MigrationDest::Fpc(j)) => {
                if !fpcs[j as usize].push_tcb(tcb, EventView::default()) {
                    // Target filled up meanwhile: fall back to DRAM.
                    self.migrations.insert(flow.0, MigrationDest::Dram);
                    mm.accept_eviction(tcb);
                }
            }
            Some(MigrationDest::Dram) | None => {
                self.migrations.insert(flow.0, MigrationDest::Dram);
                mm.accept_eviction(tcb);
            }
        }
    }

    /// Begins evicting `flow` from `from_fpc` toward `dest`.
    #[allow(clippy::too_many_arguments)]
    fn start_migration(
        &mut self,
        flow: FlowId,
        from_fpc: usize,
        dest: MigrationDest,
        fpcs: &mut [Fpc],
        cycle: u64,
        chk: Option<&mut InvariantChecker>,
        journal: Option<&mut Journal>,
    ) -> bool {
        if self.migrations.contains(flow.0) {
            return false;
        }
        if !fpcs[from_fpc].request_evict(flow) {
            return false;
        }
        self.set_location(flow, Location::Moving, cycle, chk);
        self.migrations.insert(flow.0, dest);
        if self.flight_enabled && !self.migration_started.contains(flow.0) {
            self.migration_started.insert(flow.0, cycle);
        }
        if let Some(j) = journal {
            let to = match dest {
                MigrationDest::Dram => Journal::DRAM_SLOT,
                MigrationDest::Fpc(j) => u64::from(j),
            };
            j.record(
                cycle,
                JournalModule::Scheduler,
                JournalKind::TcbMigrateStart,
                flow.0,
                from_fpc as u64,
                to,
            );
        }
        self.stats.migrations += 1;
        true
    }

    /// Routes one event; returns `true` when consumed (delivered or
    /// parked), `false` to retry next cycle. `parked_at` is the cycle the
    /// event first entered the pending queue (`None` when routing straight
    /// out of a coalesce FIFO); a successful delivery closes that FtFlight
    /// `pending_wait` span.
    // Routing touches every sibling module plus both observability
    // sinks; bundling them into a context struct would only move the
    // argument list one call deeper.
    #[allow(clippy::too_many_arguments)]
    fn route(
        &mut self,
        ev: FlowEvent,
        cycle: u64,
        parked_at: Option<u64>,
        fpcs: &mut [Fpc],
        mm: &mut MemoryManager,
        chk: Option<&mut InvariantChecker>,
        flight: Option<&mut FlightRecorder>,
        mut journal: Option<&mut Journal>,
    ) -> bool {
        let Some(loc) = self.lut.lookup(ev.flow) else {
            return false; // LUT partition budget exhausted this cycle
        };
        match loc {
            Location::Unallocated => {
                self.stats.dropped += 1;
                if let Some(j) = journal {
                    j.record(
                        cycle,
                        JournalModule::Scheduler,
                        JournalKind::EventDropped,
                        ev.flow.0,
                        0,
                        0,
                    );
                }
                true
            }
            Location::Moving => {
                self.pending.push_back((
                    ev,
                    cycle + PENDING_RETRY_CYCLES,
                    parked_at.unwrap_or(cycle),
                ));
                self.stats.parked += 1;
                if let Some(j) = journal {
                    j.record(
                        cycle,
                        JournalModule::Scheduler,
                        JournalKind::EventRouted,
                        ev.flow.0,
                        Journal::ROUTE_PARKED,
                        0,
                    );
                }
                true
            }
            Location::Dram => {
                if mm.push_event_at(ev, cycle) {
                    self.stats.routed_dram += 1;
                    if let (Some(f), Some(parked)) = (flight, parked_at) {
                        f.record(FlightStage::PendingWait, ev.flow.0, cycle - parked);
                    }
                    if let Some(j) = journal {
                        j.record(
                            cycle,
                            JournalModule::Scheduler,
                            JournalKind::EventRouted,
                            ev.flow.0,
                            Journal::ROUTE_DRAM,
                            0,
                        );
                    }
                    true
                } else {
                    // Memory-manager backpressure (DRAM bandwidth): park
                    // the event instead of blocking the coalesce FIFO —
                    // otherwise one slow DRAM flow head-of-line blocks
                    // SRAM-resident flows hashed to the same FIFO.
                    self.pending.push_back((
                        ev,
                        cycle + PENDING_RETRY_CYCLES,
                        parked_at.unwrap_or(cycle),
                    ));
                    self.stats.parked += 1;
                    if let Some(j) = journal {
                        j.record(
                            cycle,
                            JournalModule::Scheduler,
                            JournalKind::EventRouted,
                            ev.flow.0,
                            Journal::ROUTE_PARKED,
                            1,
                        );
                    }
                    true
                }
            }
            Location::Fpc(i) => {
                let i = i as usize;
                if fpcs[i].push_event_at(ev, cycle) {
                    self.stats.routed_fpc += 1;
                    if let (Some(f), Some(parked)) = (flight, parked_at) {
                        f.record(FlightStage::PendingWait, ev.flow.0, cycle - parked);
                    }
                    if let Some(j) = journal {
                        j.record(
                            cycle,
                            JournalModule::Scheduler,
                            JournalKind::EventRouted,
                            ev.flow.0,
                            Journal::ROUTE_FPC,
                            i as u64,
                        );
                    }
                    true
                } else {
                    // Backpressure: migrate the congested flow to the
                    // idlest FPC (§4.4.2), park the event meanwhile.
                    let idlest = fpcs
                        .iter()
                        .enumerate()
                        .filter(|&(j, f)| j != i && f.can_accept_tcb())
                        .min_by_key(|(_, f)| f.input_backlog() * 1024 + f.flow_count())
                        .map(|(j, _)| j);
                    if let Some(j) = idlest {
                        if self.start_migration(
                            ev.flow,
                            i,
                            MigrationDest::Fpc(j as u8),
                            fpcs,
                            cycle,
                            chk,
                            journal.as_deref_mut(),
                        ) {
                            self.pending.push_back((
                                ev,
                                cycle + PENDING_RETRY_CYCLES,
                                parked_at.unwrap_or(cycle),
                            ));
                            self.stats.parked += 1;
                            if let Some(j) = journal {
                                j.record(
                                    cycle,
                                    JournalModule::Scheduler,
                                    JournalKind::EventRouted,
                                    ev.flow.0,
                                    Journal::ROUTE_PARKED,
                                    2,
                                );
                            }
                            return true;
                        }
                    }
                    false
                }
            }
        }
    }

    /// Swap-in progress, up to [`Self::SWAP_ACTIONS_PER_CYCLE`] actions
    /// per cycle: satisfy the head of the swap-in queue, evicting cold
    /// flows when every FPC is full. The hardware completes any migration
    /// within 12 cycles (§4.3.2), so the control machinery must sustain
    /// several concurrent migrations — it is never itself the bottleneck
    /// (DRAM bandwidth is, which is the point of Fig. 13).
    fn progress_swap_in(
        &mut self,
        fpcs: &mut [Fpc],
        mm: &mut MemoryManager,
        cycle: u64,
        mut chk: Option<&mut InvariantChecker>,
        mut journal: Option<&mut Journal>,
    ) {
        for _ in 0..Self::SWAP_ACTIONS_PER_CYCLE {
            let Some(&flow) = self.swap_in_queue.front() else { return };
            if self.migrations.contains(flow.0) {
                // Mid-migration: rotate so one moving flow does not block
                // the queue.
                if let Some(f) = self.swap_in_queue.pop_front() {
                    self.swap_in_queue.push_back(f);
                }
                continue;
            }
            if mm.peek_tcb(flow).is_none() {
                // Flow left DRAM by other means (already swapped in).
                self.swap_in_queue.pop_front();
                continue;
            }
            let target = fpcs
                .iter()
                .enumerate()
                .filter(|(_, f)| f.can_accept_tcb())
                .min_by_key(|(_, f)| f.flow_count())
                .map(|(i, _)| i);
            match target {
                Some(i) => {
                    if let Some((tcb, ev)) = mm.take_for_swap_in(flow) {
                        self.set_location(flow, Location::Moving, cycle, chk.as_deref_mut());
                        let accepted = fpcs[i].push_tcb(tcb, ev);
                        debug_assert!(accepted, "can_accept_tcb lied on swap-in");
                        self.stats.migrations += 1;
                        if let Some(j) = journal.as_deref_mut() {
                            j.record(
                                cycle,
                                JournalModule::Scheduler,
                                JournalKind::TcbMigrateStart,
                                flow.0,
                                Journal::DRAM_SLOT,
                                i as u64,
                            );
                        }
                        self.swap_in_queue.pop_front();
                    } else {
                        // DRAM bandwidth exhausted: retry next cycle.
                        return;
                    }
                }
                None => {
                    // Every FPC is full: evict cold flows to make room
                    // (Fig. 6), concurrency bounded by demand.
                    let dram_bound = self
                        .migrations
                        .iter_dense()
                        .filter(|d| **d == MigrationDest::Dram)
                        .count();
                    if dram_bound >= self.swap_in_queue.len().min(256) {
                        return;
                    }
                    let t = fpcs
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, f)| f.input_backlog())
                        .map(|(i, _)| i)
                        .unwrap_or(0);
                    if let Some(cold) = fpcs[t].coldest_flow() {
                        self.start_migration(
                            cold,
                            t,
                            MigrationDest::Dram,
                            fpcs,
                            cycle,
                            chk.as_deref_mut(),
                            journal.as_deref_mut(),
                        );
                    } else {
                        return;
                    }
                }
            }
        }
    }

    /// Advances one engine cycle.
    pub fn tick(&mut self, cycle: u64, fpcs: &mut [Fpc], mm: &mut MemoryManager) {
        self.tick_checked(cycle, fpcs, mm, None, None, None);
    }

    /// [`Scheduler::tick`] with an optional FtVerify checker validating
    /// every location-LUT transition against the migration protocol, an
    /// optional FtFlight recorder attributing coalesce-FIFO residency and
    /// pending-queue wait per flow, and an optional FtJournal receiving
    /// enqueue / merge / route / migrate events.
    pub fn tick_checked(
        &mut self,
        cycle: u64,
        fpcs: &mut [Fpc],
        mm: &mut MemoryManager,
        mut chk: Option<&mut InvariantChecker>,
        mut flight: Option<&mut FlightRecorder>,
        mut journal: Option<&mut Journal>,
    ) {
        self.lut.begin_cycle();

        // 1. Intake into the coalesce FIFOs.
        for _ in 0..INTAKE_PER_CYCLE {
            let Some(&ev) = self.input.front() else { break };
            let q = ev.flow.0 as usize % self.coalesce.len();
            if self.coalescing {
                let mut merged = false;
                for queued in self.coalesce[q].iter_mut() {
                    if queued.flow == ev.flow && queued.try_merge(&ev) {
                        merged = true;
                        break;
                    }
                }
                if merged {
                    self.input.pop();
                    // The merged event's span folds into the queued event it
                    // coalesced with; its own intake stamp is dropped.
                    if let Some(stamps) = &mut self.input_stamps {
                        stamps.pop();
                    }
                    self.stats.coalesced += 1;
                    if let Some(j) = journal.as_deref_mut() {
                        j.record(
                            cycle,
                            JournalModule::Scheduler,
                            JournalKind::EventMerged,
                            ev.flow.0,
                            q as u64,
                            0,
                        );
                    }
                    continue;
                }
            }
            if self.coalesce[q].is_full() {
                break; // backpressure to the intake
            }
            if let Some(ev) = self.input.pop() {
                let accepted = self.coalesce[q].push(ev).is_ok();
                debug_assert!(accepted, "coalesce FIFO checked not full above");
                if let (Some(stamps), Some(cq)) =
                    (&mut self.input_stamps, self.coalesce_stamps.as_mut())
                {
                    if let Some(stamp) = stamps.pop() {
                        let ok = cq[q].push(stamp).is_ok();
                        debug_assert!(ok, "coalesce stamp FIFO out of sync");
                    }
                }
                if let Some(j) = journal.as_deref_mut() {
                    j.record(
                        cycle,
                        JournalModule::Scheduler,
                        JournalKind::EventEnqueued,
                        ev.flow.0,
                        q as u64,
                        0,
                    );
                }
            }
        }

        // 2. Retry pending events whose timer elapsed (ahead of new
        //    routing so ordering per flow is preserved). The due prefix is
        //    drained from the ring in one batch per tick instead of one
        //    pop per entry; anything routing re-parks (and anything route
        //    itself parks) carries a retry past `cycle`, so the upfront
        //    prefix equals what an incremental pop loop would take.
        let due = self
            .pending
            .iter()
            .take(4)
            .take_while(|&&(_, retry, _)| retry <= cycle)
            .count();
        if due > 0 {
            let mut batch = std::mem::take(&mut self.pending_scratch);
            batch.clear();
            batch.extend(self.pending.drain_front(due));
            let mut failed_at = None;
            for (i, &(ev, _, parked_at)) in batch.iter().enumerate() {
                if !self.route(
                    ev,
                    cycle,
                    Some(parked_at),
                    fpcs,
                    mm,
                    chk.as_deref_mut(),
                    flight.as_deref_mut(),
                    journal.as_deref_mut(),
                ) {
                    failed_at = Some(i);
                    break;
                }
            }
            if let Some(i) = failed_at {
                // Re-park the unrouted tail at the front in order, then
                // the failed entry ahead of it with a next-cycle retry —
                // the exact state the per-entry loop left behind.
                for &entry in batch[i + 1..].iter().rev() {
                    self.pending.push_front(entry);
                }
                let (ev, _, parked_at) = batch[i];
                self.pending.push_front((ev, cycle + 1, parked_at));
            }
            self.pending_scratch = batch;
        }

        // 3. Route one event per coalesce FIFO (up to 4/cycle with 4 LUT
        //    partitions, §4.4.2).
        for q in 0..self.coalesce.len() {
            let Some(&ev) = self.coalesce[q].front() else { continue };
            if self.route(
                ev,
                cycle,
                None,
                fpcs,
                mm,
                chk.as_deref_mut(),
                flight.as_deref_mut(),
                journal.as_deref_mut(),
            ) {
                self.coalesce[q].pop();
                if let Some(cq) = self.coalesce_stamps.as_mut() {
                    if let Some(stamp) = cq[q].pop() {
                        if let Some(f) = flight.as_deref_mut() {
                            f.record(
                                FlightStage::CoalesceFifo,
                                ev.flow.0,
                                cycle.saturating_sub(stamp),
                            );
                        }
                    }
                }
            }
        }

        // 4. Swap-in progress.
        self.progress_swap_in(fpcs, mm, cycle, chk, journal);

        self.pending_high = self.pending_high.max(self.pending.len());
    }

    /// FtVerify periodic audit: conservation on the intake and coalesce
    /// FIFOs. LUT-residency cross-checks live in the engine, which can see
    /// the FPCs and the DRAM store at once.
    pub fn audit(&self, cycle: u64, chk: &mut InvariantChecker) {
        chk.check_fifo(cycle, "scheduler.input_fifo", &self.input);
        for (i, q) in self.coalesce.iter().enumerate() {
            chk.check_fifo(cycle, &format!("scheduler.coalesce_fifo{i}"), q);
        }
    }

    /// Reports scheduler telemetry into `reg` under `prefix`: routing
    /// counters, pending-queue depth/high-watermark, location-LUT stalls
    /// and census, and per-FIFO occupancy.
    pub fn collect(&self, prefix: &str, reg: &mut f4t_sim::telemetry::MetricsRegistry) {
        let s = &self.stats;
        reg.counter(&format!("{prefix}.events_in"), s.events_in);
        reg.counter(&format!("{prefix}.coalesced"), s.coalesced);
        reg.counter(&format!("{prefix}.routed_fpc"), s.routed_fpc);
        reg.counter(&format!("{prefix}.routed_dram"), s.routed_dram);
        reg.counter(&format!("{prefix}.parked"), s.parked);
        reg.counter(&format!("{prefix}.migrations"), s.migrations);
        reg.counter(&format!("{prefix}.dropped"), s.dropped);
        reg.counter(&format!("{prefix}.lut.stalls"), self.lut.stalls());
        let (fpc, dram, moving) = self.lut.census();
        reg.gauge(&format!("{prefix}.lut.flows_fpc"), fpc as f64);
        reg.gauge(&format!("{prefix}.lut.flows_dram"), dram as f64);
        reg.gauge(&format!("{prefix}.lut.flows_moving"), moving as f64);
        reg.gauge(&format!("{prefix}.pending.depth"), self.pending.len() as f64);
        reg.gauge(&format!("{prefix}.pending.high_watermark"), self.pending_high as f64);
        reg.gauge(&format!("{prefix}.swap_in_queue.depth"), self.swap_in_queue.len() as f64);
        reg.gauge(&format!("{prefix}.migrations_in_flight"), self.migrations.len() as f64);
        self.input.collect(&format!("{prefix}.input_fifo"), reg);
        for (i, q) in self.coalesce.iter().enumerate() {
            q.collect(&format!("{prefix}.coalesce_fifo{i}"), reg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::fpc::{FpcOutput, ScanPolicy};
    use f4t_mem::DramKind;
    use f4t_tcp::{CcAlgorithm, FourTuple, NewReno, SeqNum, MSS};
    use std::sync::Arc;

    fn make_fpcs(n: usize, slots: usize) -> Vec<Fpc> {
        (0..n)
            .map(|i| {
                Fpc::new(i as u8, slots, Arc::new(NewReno), Some(4), MSS, ScanPolicy::SkipIdle)
            })
            .collect()
    }

    fn established(id: u32) -> Tcb {
        let mut t = Tcb::established(FlowId(id), FourTuple::default(), SeqNum(1000));
        CcAlgorithm::NewReno.instance().init(&mut t);
        t
    }

    fn send_event(id: u32, upto: u32) -> FlowEvent {
        FlowEvent::new(FlowId(id), EventKind::SendReq { req: SeqNum(1000).add(upto) }, 0)
    }

    /// Drives scheduler + FPCs + MM together like the engine does.
    fn run(
        sched: &mut Scheduler,
        fpcs: &mut [Fpc],
        mm: &mut MemoryManager,
        from: u64,
        cycles: u64,
    ) -> (Vec<crate::event::TxRequest>, u64) {
        let mut tx = Vec::new();
        let mut handled = 0;
        for c in from..from + cycles {
            sched.tick(c, fpcs, mm);
            let mut evicted = Vec::new();
            let mut installed = Vec::new();
            for f in fpcs.iter_mut() {
                let mut out = FpcOutput::default();
                f.tick(c, c * 4, true, &mut out);
                tx.extend(out.tx);
                evicted.extend(out.evicted);
                for flow in out.installed {
                    installed.push((flow, f.id()));
                }
                handled += out.outcomes.len() as u64;
            }
            for t in evicted {
                sched.on_evicted(t, fpcs, mm);
            }
            for (flow, id) in installed {
                sched.on_installed(flow, id, c, None, None);
            }
            let mut mo = crate::memory_manager::MmOutput::default();
            mm.tick(&mut mo);
            for flow in mo.swap_in_requests {
                sched.request_swap_in(flow);
            }
            for flow in mo.evict_done {
                sched.on_evict_done(flow, c, None);
            }
        }
        (tx, handled)
    }

    #[test]
    fn new_flow_placed_in_least_loaded_fpc() {
        let mut sched = Scheduler::new(1024, 4, true);
        let mut fpcs = make_fpcs(2, 8);
        let mut mm = MemoryManager::new(DramKind::Hbm, 16);
        for id in 0..4 {
            sched.place_new_flow(established(id), &mut fpcs, &mut mm, 0, None);
            run(&mut sched, &mut fpcs, &mut mm, id as u64 * 10, 10);
        }
        assert_eq!(fpcs[0].flow_count(), 2);
        assert_eq!(fpcs[1].flow_count(), 2, "round-robins via least-loaded");
        assert_eq!(sched.location(FlowId(0)), Location::Fpc(0));
    }

    #[test]
    fn overflow_flows_placed_in_dram() {
        let mut sched = Scheduler::new(1024, 4, true);
        let mut fpcs = make_fpcs(1, 2);
        let mut mm = MemoryManager::new(DramKind::Hbm, 16);
        for id in 0..5 {
            sched.place_new_flow(established(id), &mut fpcs, &mut mm, 0, None);
            run(&mut sched, &mut fpcs, &mut mm, id as u64 * 10, 10);
        }
        assert_eq!(fpcs[0].flow_count(), 2);
        assert_eq!(mm.flow_count(), 3, "excess flows live in DRAM");
        assert_eq!(sched.location(FlowId(4)), Location::Dram);
    }

    #[test]
    fn events_route_to_owning_fpc_and_produce_tx() {
        let mut sched = Scheduler::new(1024, 4, true);
        let mut fpcs = make_fpcs(2, 8);
        let mut mm = MemoryManager::new(DramKind::Hbm, 16);
        sched.place_new_flow(established(1), &mut fpcs, &mut mm, 0, None);
        run(&mut sched, &mut fpcs, &mut mm, 0, 10);
        assert!(sched.push_event(send_event(1, 700)));
        let (tx, _) = run(&mut sched, &mut fpcs, &mut mm, 10, 60);
        assert_eq!(tx.iter().map(|t| t.len).sum::<u32>(), 700);
        assert_eq!(sched.stats().routed_fpc, 1);
    }

    #[test]
    fn coalescing_merges_same_flow_events() {
        let mut sched = Scheduler::new(1024, 4, true);
        let mut fpcs = make_fpcs(1, 8);
        let mut mm = MemoryManager::new(DramKind::Hbm, 16);
        sched.place_new_flow(established(1), &mut fpcs, &mut mm, 0, None);
        // Fill intake BEFORE ticking so events pile into the FIFO.
        for i in 1..=8u32 {
            assert!(sched.push_event(send_event(1, i * 100)));
        }
        let (tx, _) = run(&mut sched, &mut fpcs, &mut mm, 0, 80);
        assert!(sched.stats().coalesced >= 5, "coalesced {}", sched.stats().coalesced);
        assert_eq!(tx.iter().map(|t| t.len).sum::<u32>(), 800, "no data lost");
    }

    #[test]
    fn coalescing_disabled_routes_each_event() {
        let mut sched = Scheduler::new(1024, 4, false);
        let mut fpcs = make_fpcs(1, 8);
        let mut mm = MemoryManager::new(DramKind::Hbm, 16);
        sched.place_new_flow(established(1), &mut fpcs, &mut mm, 0, None);
        run(&mut sched, &mut fpcs, &mut mm, 0, 10);
        for i in 1..=8u32 {
            sched.push_event(send_event(1, i * 100));
        }
        run(&mut sched, &mut fpcs, &mut mm, 10, 100);
        assert_eq!(sched.stats().coalesced, 0);
        assert_eq!(sched.stats().routed_fpc, 8);
    }

    #[test]
    fn dram_events_reach_memory_manager_and_swap_in() {
        let mut sched = Scheduler::new(1024, 4, true);
        let mut fpcs = make_fpcs(1, 2);
        let mut mm = MemoryManager::new(DramKind::Hbm, 16);
        // Fill the FPC, push one flow to DRAM.
        for id in 0..3 {
            sched.place_new_flow(established(id), &mut fpcs, &mut mm, 0, None);
            run(&mut sched, &mut fpcs, &mut mm, id as u64 * 10, 10);
        }
        assert_eq!(sched.location(FlowId(2)), Location::Dram);
        // An event for the DRAM flow: handled there, check logic fires,
        // scheduler swaps it in (evicting a cold flow), data goes out.
        sched.push_event(send_event(2, 500));
        let (tx, _) = run(&mut sched, &mut fpcs, &mut mm, 100, 400);
        assert!(sched.stats().routed_dram >= 1);
        assert_eq!(tx.iter().map(|t| t.len).sum::<u32>(), 500, "swapped-in flow sent its data");
        assert!(matches!(sched.location(FlowId(2)), Location::Fpc(_)), "now SRAM-resident");
        assert_eq!(mm.flow_count(), 1, "a cold flow was evicted to make room");
    }

    #[test]
    fn moving_flows_park_events_and_never_lose_them() {
        let mut sched = Scheduler::new(1024, 4, true);
        let mut fpcs = make_fpcs(1, 4);
        let mut mm = MemoryManager::new(DramKind::Hbm, 16);
        sched.place_new_flow(established(1), &mut fpcs, &mut mm, 0, None);
        run(&mut sched, &mut fpcs, &mut mm, 0, 10);
        // Force the flow into Moving state via an explicit migration.
        sched.start_migration(FlowId(1), 0, MigrationDest::Dram, &mut fpcs, 10, None, None);
        assert_eq!(sched.location(FlowId(1)), Location::Moving);
        sched.push_event(send_event(1, 300));
        let (tx, _) = run(&mut sched, &mut fpcs, &mut mm, 10, 600);
        assert!(sched.stats().parked >= 1, "event parked during migration");
        assert_eq!(tx.iter().map(|t| t.len).sum::<u32>(), 300, "parked event delivered");
    }

    #[test]
    fn intake_backpressure_reported() {
        let mut sched = Scheduler::new(64, 4, true);
        let mut n = 0;
        while sched.push_event(send_event(n, 1)) {
            n += 1;
        }
        assert_eq!(n as usize, Scheduler::INPUT_FIFO_DEPTH);
        assert!(!sched.can_accept());
        assert!(sched.backlog() >= Scheduler::INPUT_FIFO_DEPTH);
    }
}
