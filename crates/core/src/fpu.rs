//! The flow processing unit (FPU).
//!
//! "FPU is a stateless processing unit that processes all TCP algorithms
//! only when it receives a TCB from the TCB manager. It can be stateless
//! because all necessary information required to process TCP algorithms is
//! in the TCB" (§4.2.2). The FPU is fully pipelined: a new TCB can enter
//! every initiation interval regardless of pipeline depth, which is why
//! F4T's throughput is invariant to algorithm complexity (Fig. 15).
//!
//! [`process`] is the combinational function the paper's users write in
//! HLS C++; [`Fpu`] is the pipeline wrapper that models its latency.

use crate::event::TxRequest;
use f4t_tcp::{CongestionControl, SeqNum, Tcb, TcpFlags, TcpState};
use std::collections::VecDeque;
use std::sync::Arc;

/// The merged event-table view handed to the FPU alongside the TCB-table
/// half (the "valid, up-to-date TCB" of §4.2.3). `None`/`false` fields had
/// no valid bit set.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EventView {
    /// User send-request pointer.
    pub req: Option<SeqNum>,
    /// User receive-consumed pointer.
    pub consumed: Option<SeqNum>,
    /// Latest cumulative ACK from the peer.
    pub ack: Option<SeqNum>,
    /// Latest reassembled in-order pointer from the RX parser.
    pub rcv_nxt: Option<SeqNum>,
    /// Latest peer-advertised window.
    pub wnd: Option<u32>,
    /// Accumulated occurrence flags (SYN/FIN/RST).
    pub flags: TcpFlags,
    /// Merged duplicate-ACK count (absolute, maintained by the event
    /// handler's single-cycle increment).
    pub dup_acks: Option<u16>,
    /// Retransmission timer fired.
    pub rto_fired: bool,
    /// Zero-window probe timer fired.
    pub probe_fired: bool,
    /// An ACK is owed to the peer (payload accepted or unacceptable
    /// segment received).
    pub needs_ack: bool,
    /// Number of ACK-eliciting *out-of-order* packets accumulated. RFC
    /// 5681 demands an immediate duplicate ACK per out-of-order segment;
    /// since accumulation would collapse them into one FPU pass, the
    /// event handler counts them and the FPU replays that many ACKs.
    pub dup_ack_gen: u16,
    /// Active open requested.
    pub connect: bool,
    /// Close requested.
    pub close: bool,
    /// Peer's latest TSval (0 = none).
    pub ts_val: u64,
    /// Peer's latest TSecr — our stamp coming home (0 = none).
    pub ts_ecr: u64,
}

impl EventView {
    /// Whether any valid bit other than the duplicate-ACK counter is set.
    /// The dup-ACK counter's valid bit intentionally survives dispatch
    /// (it must keep accumulating against the merged view), and its value
    /// is mirrored into the TCB on every FPU pass — so it must not block
    /// eviction.
    pub fn any_except_dup_acks(&self) -> bool {
        let mut v = *self;
        v.dup_acks = None;
        v.any()
    }

    /// Whether any valid bit is set (the slot has pending work).
    pub fn any(&self) -> bool {
        self.req.is_some()
            || self.consumed.is_some()
            || self.ack.is_some()
            || self.rcv_nxt.is_some()
            || self.wnd.is_some()
            || !self.flags.is_empty()
            || self.dup_acks.is_some()
            || self.rto_fired
            || self.probe_fired
            || self.needs_ack
            || self.dup_ack_gen > 0
            || self.connect
            || self.close
    }
}

/// What one FPU pass produced besides the updated TCB.
#[derive(Debug, Clone, Default)]
pub struct FpuOutcome {
    /// Segments to hand to the packet generator.
    pub tx: Vec<TxRequest>,
    /// New cumulative ACKed-data pointer to report to the host
    /// ("FtEngine sends ACKed data ... pointers to the software").
    pub acked_upto: Option<SeqNum>,
    /// New received-data pointer to report to the host.
    pub rcvd_upto: Option<SeqNum>,
    /// The connection became established this pass.
    pub connected: bool,
    /// The peer closed its direction (EOF for the application).
    pub peer_fin: bool,
    /// The connection fully closed this pass.
    pub closed: bool,
    /// The flow still has sendable work the pass could not finish
    /// (per-visit burst cap); the TCB manager should revisit soon.
    pub more_work: bool,
}

/// Per-visit cap on new payload bytes committed to the packet generator
/// (a TSO-sized burst). Larger requests stay pending and set
/// [`FpuOutcome::more_work`].
pub const MAX_BURST: u32 = 65_536;

/// TIME_WAIT duration. Real stacks hold 2×MSL (minutes); the simulation
/// scales it to 100 µs — still several RTTs of the direct-attach testbed,
/// which preserves the property it exists for (absorbing a retransmitted
/// final FIN) at simulable timescales.
pub const TIME_WAIT_NS: u64 = 100_000;

/// Processes one merged TCB: the entire TCP algorithm suite — handshake,
/// ACK clocking, congestion/flow control, loss recovery, retransmission,
/// probing, ACK generation — as a pure function of `(tcb, events, now)`.
///
/// This function is deliberately *stateless*: every read and write goes
/// through `tcb`. It is the Rust analogue of the HLS C++ the paper's
/// users drop into the FPU placeholder (§4.5).
pub fn process(
    cc: &dyn CongestionControl,
    tcb: &mut Tcb,
    ev: &EventView,
    now_ns: u64,
    mss: u32,
) -> FpuOutcome {
    let mut out = FpuOutcome::default();
    tcb.last_active_ns = now_ns;

    // --- 0. absorb cumulative pointers from the event view ---
    if let Some(req) = ev.req {
        tcb.req = tcb.req.max_seq(req);
    }
    let prev_advertised = tcb.advertised_window();
    if let Some(c) = ev.consumed {
        tcb.rcv_consumed = tcb.rcv_consumed.max_seq(c);
    }
    if let Some(w) = ev.wnd {
        tcb.snd_wnd = w;
    }
    if ev.ts_val != 0 {
        tcb.ts_recent = ev.ts_val;
    }
    if let Some(d) = ev.dup_acks {
        tcb.dup_acks = d;
    }

    // --- 1. reset ---
    if ev.flags.contains(TcpFlags::RST) {
        tcb.state = TcpState::Closed;
        tcb.rto_deadline = None;
        tcb.probe_deadline = None;
        out.closed = true;
        return out;
    }

    let mut ack_due = ev.needs_ack;
    let mut retransmit_due = false;

    // --- 2. connection management ---
    if ev.connect && tcb.state == TcpState::Closed {
        tcb.state = TcpState::SynSent;
        cc.init(tcb);
        out.tx.push(control_segment(tcb, TcpFlags::SYN, now_ns));
        tcb.snd_nxt = tcb.snd_nxt.add(1); // SYN phantom byte
        tcb.rto_deadline = Some(now_ns + tcb.rto.rto_ns());
    }
    if ev.flags.contains(TcpFlags::SYN) {
        match tcb.state {
            TcpState::Listen | TcpState::Closed => {
                // Passive open. The RX parser initialized reassembly at
                // the peer's ISN+1 and reports it via ev.rcv_nxt.
                if let Some(r) = ev.rcv_nxt {
                    tcb.rcv_nxt = r;
                    tcb.rcv_consumed = r;
                }
                tcb.state = TcpState::SynReceived;
                cc.init(tcb);
                out.tx.push(control_segment(tcb, TcpFlags::SYN | TcpFlags::ACK, now_ns));
                tcb.snd_nxt = tcb.snd_nxt.add(1);
                tcb.rto_deadline = Some(now_ns + tcb.rto.rto_ns());
                ack_due = false;
            }
            TcpState::SynSent => {
                // SYN|ACK: adopt the peer's sequence base; the ACK half is
                // handled below.
                if let Some(r) = ev.rcv_nxt {
                    tcb.rcv_nxt = r;
                    tcb.rcv_consumed = r;
                }
                ack_due = true;
            }
            _ => {} // duplicate SYN in established state: just ACK.
        }
    }

    // --- 3. receive-side pointer ---
    if let Some(r) = ev.rcv_nxt {
        if r.gt(tcb.rcv_nxt) {
            tcb.rcv_nxt = r;
            out.rcvd_upto = Some(r);
        }
    }

    // --- 4. ACK processing ---
    if let Some(ack) = ev.ack {
        // Acceptable up to the highest byte EVER sent: after a go-back-N
        // rewind, in-flight pre-rewind data can still be acknowledged.
        let snd_limit = tcb.snd_max.max_seq(tcb.snd_nxt);
        if ack.gt(tcb.snd_una) && ack.le(snd_limit) {
            let newly = ack.since(tcb.snd_una);
            let rtt = (ev.ts_ecr != 0 && now_ns > ev.ts_ecr).then(|| now_ns - ev.ts_ecr);
            if let Some(r) = rtt {
                tcb.rto.on_rtt_sample(r);
            }
            if tcb.in_recovery {
                if ack.ge(tcb.recover) {
                    tcb.in_recovery = false;
                    tcb.dup_acks = 0;
                    tcb.dup_acks_processed = 0;
                    cc.on_exit_recovery(tcb, now_ns);
                } else {
                    cc.on_partial_ack(tcb, newly);
                    retransmit_due = true;
                }
            } else {
                tcb.dup_acks = 0;
                tcb.dup_acks_processed = 0;
                cc.on_ack(tcb, newly, rtt, now_ns);
            }
            tcb.snd_una = ack;
            if ack.gt(tcb.snd_nxt) {
                // A late ACK overtook the rewound send pointer: that data
                // needs no retransmission.
                tcb.snd_nxt = ack;
            }
            out.acked_upto = Some(ack);

            // Handshake / teardown transitions completed by this ACK.
            match tcb.state {
                TcpState::SynSent => {
                    tcb.state = TcpState::Established;
                    out.connected = true;
                    ack_due = true; // third handshake packet
                }
                TcpState::SynReceived => {
                    tcb.state = TcpState::Established;
                    out.connected = true;
                }
                TcpState::FinWait if tcb.snd_una == tcb.snd_nxt => {
                    // Our FIN is acknowledged. (TIME_WAIT is skipped in the
                    // prototype model; see DESIGN.md §6.)
                }
                TcpState::Closing if tcb.snd_una == tcb.snd_nxt => {
                    tcb.state = TcpState::TimeWait;
                    tcb.rto_deadline = Some(now_ns + TIME_WAIT_NS);
                }
                _ => {}
            }

            // RTO management: restart while data remains in flight.
            if tcb.state == TcpState::TimeWait {
                // The 2MSL timer was just armed; leave it.
            } else if tcb.flight_size() > 0 {
                tcb.rto_deadline = Some(now_ns + tcb.rto.rto_ns());
            } else {
                tcb.rto_deadline = None;
            }
        }
    }

    // --- 5. fast retransmit / recovery ---
    if !tcb.in_recovery && tcb.dup_acks >= 3 && tcb.flight_size() > 0 {
        cc.on_enter_recovery(tcb, now_ns);
        tcb.in_recovery = true;
        tcb.recover = tcb.snd_nxt;
        tcb.dup_acks_processed = tcb.dup_acks;
        retransmit_due = true;
    } else if tcb.in_recovery && tcb.dup_acks > tcb.dup_acks_processed {
        let delta = u32::from(tcb.dup_acks - tcb.dup_acks_processed);
        cc.on_dup_ack_in_recovery(tcb, delta);
        tcb.dup_acks_processed = tcb.dup_acks;
    }

    // --- 6. peer FIN (already sequenced by the RX parser) ---
    if ev.flags.contains(TcpFlags::FIN) {
        match tcb.state {
            TcpState::Established => {
                tcb.state = TcpState::CloseWait;
                out.peer_fin = true;
            }
            TcpState::FinWait => {
                out.peer_fin = true;
                if tcb.snd_una == tcb.snd_nxt {
                    // Our FIN is acknowledged too: quiet period begins.
                    tcb.state = TcpState::TimeWait;
                    tcb.rto_deadline = Some(now_ns + TIME_WAIT_NS);
                } else {
                    // Simultaneous close: wait for our FIN's ACK.
                    tcb.state = TcpState::Closing;
                }
            }
            _ => {}
        }
        ack_due = true;
    }

    // --- 7. local close ---
    if ev.close {
        tcb.close_pending = true;
    }

    // --- 8a. TIME_WAIT: re-ACK stray segments (a retransmitted final
    // FIN), and close when the 2MSL timer expires. The timer rides the
    // RTO slot; nothing is in flight in this state.
    if tcb.state == TcpState::TimeWait {
        if ev.rto_fired && tcb.rto_deadline.is_some_and(|d| now_ns >= d) {
            tcb.state = TcpState::Closed;
            tcb.rto_deadline = None;
            out.closed = true;
        } else if ack_due {
            out.tx.push(TxRequest {
                flow: tcb.flow,
                tuple: tcb.tuple,
                seq: tcb.snd_nxt,
                len: 0,
                ack: tcb.rcv_nxt,
                wnd: tcb.advertised_window(),
                flags: TcpFlags::ACK,
                retransmit: false,
                ts_ecr: tcb.ts_recent,
            });
        }
        return out;
    }

    // --- 8. retransmission timeout ---
    let mut go_back_n = false;
    if ev.rto_fired
        && tcb.rto_deadline.is_some_and(|d| now_ns >= d)
        && tcb.flight_size() > 0
    {
        cc.on_timeout(tcb, now_ns);
        tcb.rto.on_timeout();
        tcb.in_recovery = false;
        tcb.dup_acks = 0;
        tcb.dup_acks_processed = 0;
        retransmit_due = true;
        go_back_n = true; // snd_nxt rewinds after the head retransmission
        tcb.rto_deadline = Some(now_ns + tcb.rto.rto_ns());
    }

    // --- 9. zero-window probe ---
    if tcb.snd_wnd == 0 && tcb.unsent() > 0 && tcb.state.can_send_data() {
        if ev.probe_fired && tcb.probe_deadline.is_some_and(|d| now_ns >= d) {
            // RFC 793 window probe: one byte beyond the closed window.
            // The byte is real stream data and is tracked in sequence
            // space (first probe advances snd_nxt; re-probes resend the
            // same unacknowledged byte from snd_una).
            let fresh = tcb.flight_size() == 0;
            let probe_seq = if fresh { tcb.snd_nxt } else { tcb.snd_una };
            out.tx.push(TxRequest {
                flow: tcb.flow,
                tuple: tcb.tuple,
                seq: probe_seq,
                len: 1,
                ack: tcb.rcv_nxt,
                wnd: tcb.advertised_window(),
                flags: TcpFlags::ACK,
                retransmit: !fresh,
                ts_ecr: tcb.ts_recent,
            });
            if fresh {
                tcb.snd_nxt = tcb.snd_nxt.add(1);
            }
            tcb.probe_deadline = Some(now_ns + tcb.rto.rto_ns());
        } else if tcb.probe_deadline.is_none() {
            tcb.probe_deadline = Some(now_ns + tcb.rto.rto_ns());
        }
    } else {
        tcb.probe_deadline = None;
    }

    // --- 10. retransmit ---
    if retransmit_due && tcb.flight_size() > 0 {
        // `span` is sequence space; when our FIN is in flight its
        // phantom byte sits at `snd_max - 1`. A retransmission whose
        // range reaches it must carry the FIN flag again and shed the
        // phantom from the payload length — otherwise the receiver's
        // reassembler sequences the phantom as silent data, ACKs the
        // whole stream, and the peer never learns the stream ended.
        let span = tcb.flight_size().min(mss);
        let fin = matches!(tcb.state, TcpState::FinWait | TcpState::Closing)
            && tcb.snd_una.add(span) == tcb.snd_max;
        out.tx.push(TxRequest {
            flow: tcb.flow,
            tuple: tcb.tuple,
            seq: tcb.snd_una,
            len: span - u32::from(fin),
            ack: tcb.rcv_nxt,
            wnd: tcb.advertised_window(),
            flags: if fin { TcpFlags::FIN | TcpFlags::ACK } else { TcpFlags::ACK },
            retransmit: true,
            ts_ecr: tcb.ts_recent,
        });
        if go_back_n {
            // Go-back-N: everything beyond the retransmitted head is
            // considered unsent again and flows through the normal send
            // path as the window reopens.
            tcb.snd_nxt = tcb.snd_una.add(span);
        }
        ack_due = false;
    }

    // --- 11. new data (congestion + flow control decide the amount) ---
    let mut sent_data = false;
    if tcb.state.can_send_data() {
        let n = tcb.sendable().min(MAX_BURST);
        if n > 0 {
            out.tx.push(TxRequest {
                flow: tcb.flow,
                tuple: tcb.tuple,
                seq: tcb.snd_nxt,
                len: n,
                ack: tcb.rcv_nxt,
                wnd: tcb.advertised_window(),
                flags: TcpFlags::ACK,
                retransmit: false,
                ts_ecr: tcb.ts_recent,
            });
            tcb.snd_nxt = tcb.snd_nxt.add(n);
            if tcb.rto_deadline.is_none() {
                tcb.rto_deadline = Some(now_ns + tcb.rto.rto_ns());
            }
            sent_data = true;
            ack_due = false; // the data segments piggyback the ACK
        }
    }

    // --- 12. FIN emission once the stream is drained ---
    if tcb.close_pending && tcb.unsent() == 0 && !sent_data {
        match tcb.state {
            TcpState::Established => {
                tcb.state = TcpState::FinWait;
                out.tx.push(control_segment(tcb, TcpFlags::FIN | TcpFlags::ACK, now_ns));
                tcb.snd_nxt = tcb.snd_nxt.add(1);
                tcb.rto_deadline = Some(now_ns + tcb.rto.rto_ns());
                tcb.close_pending = false;
                ack_due = false;
            }
            TcpState::CloseWait => {
                tcb.state = TcpState::Closing;
                out.tx.push(control_segment(tcb, TcpFlags::FIN | TcpFlags::ACK, now_ns));
                tcb.snd_nxt = tcb.snd_nxt.add(1);
                tcb.rto_deadline = Some(now_ns + tcb.rto.rto_ns());
                tcb.close_pending = false;
                ack_due = false;
            }
            _ => tcb.close_pending = false,
        }
    }

    // --- 13. window-update / pure ACK ---
    let window_opened = prev_advertised < tcb.rcv_buf / 4 && tcb.advertised_window() >= tcb.rcv_buf / 2;
    if ack_due || window_opened {
        // Duplicate-ACK generation: if several out-of-order packets
        // accumulated AND the gap is still open (rcv_nxt did not move),
        // the peer is owed one duplicate ACK per packet so its fast
        // retransmit can trigger.
        let repeats = if out.rcvd_upto.is_none() && ev.dup_ack_gen > 1 {
            u32::from((ev.dup_ack_gen - 1).min(7))
        } else {
            0
        };
        for _ in 0..=repeats {
            out.tx.push(TxRequest {
                flow: tcb.flow,
                tuple: tcb.tuple,
                seq: tcb.snd_nxt,
                len: 0,
                ack: tcb.rcv_nxt,
                wnd: tcb.advertised_window(),
                flags: TcpFlags::ACK,
                retransmit: false,
                ts_ecr: tcb.ts_recent,
            });
        }
    }

    tcb.ack_pending = false;
    tcb.snd_max = tcb.snd_max.max_seq(tcb.snd_nxt);
    out.more_work = tcb.state.can_send_data() && tcb.sendable() > 0;
    out
}

fn control_segment(tcb: &Tcb, flags: TcpFlags, _now_ns: u64) -> TxRequest {
    TxRequest {
        flow: tcb.flow,
        tuple: tcb.tuple,
        seq: tcb.snd_nxt,
        len: 0,
        ack: tcb.rcv_nxt,
        wnd: tcb.advertised_window(),
        flags,
        retransmit: false,
        ts_ecr: tcb.ts_recent,
    }
}

/// One in-flight FPU job.
#[derive(Debug, Clone)]
struct FpuJob {
    tcb: Tcb,
    ev: EventView,
    /// Cycle at which the pipeline emits the result.
    ready_cycle: u64,
    /// Cycle at which the job was issued (FtFlight `fpu_process` span).
    issued_cycle: u64,
}

/// A finished FPU job: the updated TCB plus side effects.
#[derive(Debug, Clone)]
pub struct FpuResult {
    /// The written-back TCB.
    pub tcb: Tcb,
    /// Side effects of the pass.
    pub outcome: FpuOutcome,
    /// Cycle the job entered the pipeline (FtFlight `fpu_process` span).
    pub issued_cycle: u64,
}

/// The pipelined FPU. TCBs enter with [`Fpu::issue`]; results emerge
/// `latency` cycles later from [`Fpu::tick`]. The pipeline never stalls —
/// issue capacity is one per cycle regardless of depth, which is the
/// versatility property Fig. 15 measures.
#[derive(Debug)]
pub struct Fpu {
    cc: Arc<dyn CongestionControl>,
    latency: u64,
    mss: u32,
    // f4tlint: allow(raw_queue): fixed-latency pipeline model, bounded by
    // construction (one job enters per dispatch, depth == latency).
    pipeline: VecDeque<FpuJob>,
    processed: u64,
}

impl Fpu {
    /// Creates an FPU running `cc` with the algorithm's natural pipeline
    /// latency, or `latency_override` cycles if given (used by the Fig. 15
    /// versatility sweep).
    pub fn new(cc: Arc<dyn CongestionControl>, latency_override: Option<u32>, mss: u32) -> Fpu {
        let latency = u64::from(latency_override.unwrap_or_else(|| cc.fpu_latency_cycles())).max(1);
        Fpu { cc, latency, mss, pipeline: VecDeque::new(), processed: 0 }
    }

    /// Pipeline depth in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// The congestion-control algorithm in use.
    pub fn cc(&self) -> &dyn CongestionControl {
        self.cc.as_ref()
    }

    /// Issues a merged TCB into the pipeline at cycle `now_cycle`.
    pub fn issue(&mut self, tcb: Tcb, ev: EventView, now_cycle: u64) {
        self.pipeline.push_back(FpuJob {
            tcb,
            ev,
            ready_cycle: now_cycle + self.latency,
            issued_cycle: now_cycle,
        });
    }

    /// Whether a TCB for `flow` is currently in the pipeline (the TCB
    /// manager must not re-issue it — the data-hazard guard).
    pub fn in_flight(&self, flow: f4t_tcp::FlowId) -> bool {
        self.pipeline.iter().any(|j| j.tcb.flow == flow)
    }

    /// Number of jobs in the pipeline.
    pub fn depth_used(&self) -> usize {
        self.pipeline.len()
    }

    /// Activity horizon: the cycle the head job completes, or `None` when
    /// the pipeline is empty. The head is the minimum — jobs enter in
    /// issue order with a fixed latency, so ready cycles are monotone.
    pub fn next_activity(&self) -> Option<u64> {
        self.pipeline.front().map(|j| j.ready_cycle)
    }

    /// Total TCBs processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Advances one cycle; returns the job completing this cycle, if any.
    pub fn tick(&mut self, now_cycle: u64, now_ns: u64) -> Option<FpuResult> {
        if self.pipeline.front().is_none_or(|j| j.ready_cycle > now_cycle) {
            return None;
        }
        let mut job = self.pipeline.pop_front()?;
        let outcome = process(self.cc.as_ref(), &mut job.tcb, &job.ev, now_ns, self.mss);
        self.processed += 1;
        Some(FpuResult { tcb: job.tcb, outcome, issued_cycle: job.issued_cycle })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f4t_tcp::{CcAlgorithm, FlowId, FourTuple, NewReno, MSS};

    fn established() -> Tcb {
        let mut t = Tcb::established(FlowId(1), FourTuple::default(), SeqNum(1000));
        CcAlgorithm::NewReno.instance().init(&mut t);
        t
    }

    fn run(tcb: &mut Tcb, ev: EventView, now: u64) -> FpuOutcome {
        process(&NewReno, tcb, &ev, now, MSS)
    }

    #[test]
    fn send_request_emits_data_within_window() {
        let mut t = established();
        let ev = EventView { req: Some(SeqNum(1000).add(5000)), ..Default::default() };
        let out = run(&mut t, ev, 1000);
        assert_eq!(out.tx.len(), 1);
        let req = out.tx[0];
        assert_eq!(req.seq, SeqNum(1000));
        assert_eq!(req.len, 5000, "5000 B fits in the 10-MSS initial window");
        assert_eq!(t.snd_nxt, SeqNum(6000));
        assert!(t.rto_deadline.is_some(), "RTO armed");
        assert!(!out.more_work);
    }

    #[test]
    fn congestion_window_caps_transmission() {
        let mut t = established();
        t.cwnd = 2 * MSS;
        let ev = EventView { req: Some(SeqNum(1000).add(100_000)), ..Default::default() };
        let out = run(&mut t, ev, 0);
        assert_eq!(out.tx[0].len, 2 * MSS);
        // Window-limited flows do NOT set more_work: the ACK that opens
        // the window arrives as an event and wakes the flow.
        assert!(!out.more_work);
    }

    #[test]
    fn burst_cap_limits_single_visit() {
        let mut t = established();
        t.cwnd = 1 << 20;
        t.snd_wnd = 1 << 20;
        let ev = EventView { req: Some(SeqNum(1000).add(500_000)), ..Default::default() };
        let out = run(&mut t, ev, 0);
        assert_eq!(out.tx[0].len, MAX_BURST);
        assert!(out.more_work);
    }

    #[test]
    fn accumulated_requests_processed_at_once() {
        // The single-flow performance property (§4.2.2): eight 100 B
        // requests accumulate into one 800 B transmission.
        let mut t = established();
        let ev = EventView { req: Some(SeqNum(1000).add(800)), ..Default::default() };
        let out = run(&mut t, ev, 0);
        assert_eq!(out.tx.len(), 1);
        assert_eq!(out.tx[0].len, 800);
    }

    #[test]
    fn ack_advances_and_reports_to_host() {
        let mut t = established();
        t.snd_nxt = SeqNum(1000).add(4000);
        t.req = t.snd_nxt;
        let ev = EventView { ack: Some(SeqNum(1000).add(4000)), ..Default::default() };
        let out = run(&mut t, ev, 0);
        assert_eq!(t.snd_una, SeqNum(5000));
        assert_eq!(out.acked_upto, Some(SeqNum(5000)));
        assert!(t.rto_deadline.is_none(), "no flight left: RTO cancelled");
    }

    #[test]
    fn stale_or_future_ack_ignored() {
        let mut t = established();
        t.snd_una = SeqNum(2000);
        t.snd_nxt = SeqNum(3000);
        let out = run(&mut t, EventView { ack: Some(SeqNum(1500)), ..Default::default() }, 0);
        assert_eq!(t.snd_una, SeqNum(2000));
        assert!(out.acked_upto.is_none());
        // An ACK for data we never sent is also ignored.
        run(&mut t, EventView { ack: Some(SeqNum(9000)), ..Default::default() }, 0);
        assert_eq!(t.snd_una, SeqNum(2000));
    }

    #[test]
    fn rtt_sample_feeds_rto() {
        let mut t = established();
        t.snd_nxt = SeqNum(1000).add(100);
        let ev = EventView {
            ack: Some(SeqNum(1000).add(100)),
            ts_ecr: 1_000_000,
            ..Default::default()
        };
        run(&mut t, ev, 1_100_000); // 100 µs RTT
        assert!(t.rto.has_sample());
        assert_eq!(t.rto.srtt_ns(), 100_000);
    }

    #[test]
    fn three_dup_acks_trigger_fast_retransmit() {
        let mut t = established();
        t.snd_nxt = SeqNum(1000).add(20 * MSS);
        t.req = t.snd_nxt;
        t.cwnd = 20 * MSS;
        let ev = EventView { dup_acks: Some(3), ..Default::default() };
        let out = run(&mut t, ev, 0);
        assert!(t.in_recovery);
        let rtx = out.tx.iter().find(|r| r.retransmit).expect("retransmission emitted");
        assert_eq!(rtx.seq, SeqNum(1000), "retransmits the lost head segment");
        assert_eq!(rtx.len, MSS);
        assert_eq!(t.recover, SeqNum(1000).add(20 * MSS));
        assert_eq!(t.ssthresh, 10 * MSS, "halved flight");
    }

    #[test]
    fn accumulated_dup_acks_inflate_once() {
        let mut t = established();
        t.snd_nxt = SeqNum(1000).add(20 * MSS);
        t.req = t.snd_nxt;
        t.cwnd = 20 * MSS;
        run(&mut t, EventView { dup_acks: Some(3), ..Default::default() }, 0);
        let cwnd_after_entry = t.cwnd;
        // Five more duplicates accumulated before the next visit.
        run(&mut t, EventView { dup_acks: Some(8), ..Default::default() }, 100);
        assert_eq!(t.cwnd, cwnd_after_entry + 5 * MSS, "batched inflation");
    }

    #[test]
    fn full_ack_exits_recovery() {
        let mut t = established();
        t.snd_nxt = SeqNum(1000).add(20 * MSS);
        t.req = t.snd_nxt;
        t.cwnd = 20 * MSS;
        run(&mut t, EventView { dup_acks: Some(3), ..Default::default() }, 0);
        assert!(t.in_recovery);
        let out = run(
            &mut t,
            EventView { ack: Some(SeqNum(1000).add(20 * MSS)), ..Default::default() },
            100,
        );
        assert!(!t.in_recovery);
        assert_eq!(t.cwnd, t.ssthresh, "window deflates to ssthresh");
        assert_eq!(out.acked_upto, Some(SeqNum(1000).add(20 * MSS)));
    }

    #[test]
    fn partial_ack_retransmits_next_hole() {
        let mut t = established();
        t.snd_nxt = SeqNum(1000).add(20 * MSS);
        t.req = t.snd_nxt;
        t.cwnd = 20 * MSS;
        run(&mut t, EventView { dup_acks: Some(3), ..Default::default() }, 0);
        let out = run(
            &mut t,
            EventView { ack: Some(SeqNum(1000).add(5 * MSS)), ..Default::default() },
            100,
        );
        assert!(t.in_recovery, "partial ACK stays in recovery");
        let rtx = out.tx.iter().find(|r| r.retransmit).expect("hole retransmitted");
        assert_eq!(rtx.seq, SeqNum(1000).add(5 * MSS));
    }

    #[test]
    fn rto_collapses_window_and_goes_back_n() {
        let mut t = established();
        t.snd_nxt = SeqNum(1000).add(10 * MSS);
        t.req = t.snd_nxt;
        t.cwnd = 10 * MSS;
        t.rto_deadline = Some(5_000_000);
        let ev = EventView { rto_fired: true, ..Default::default() };
        let out = run(&mut t, ev, 6_000_000);
        assert_eq!(t.cwnd, MSS);
        let rtx = out.tx.iter().find(|r| r.retransmit).expect("head retransmitted");
        assert_eq!(rtx.seq, SeqNum(1000));
        assert_eq!(t.snd_nxt, SeqNum(1000).add(MSS), "go-back-N rewound");
        assert!(t.rto_deadline.unwrap() > 6_000_000, "timer re-armed with backoff");
    }

    #[test]
    fn stale_timeout_event_ignored() {
        let mut t = established();
        t.snd_nxt = SeqNum(1000).add(MSS);
        t.req = t.snd_nxt;
        t.rto_deadline = Some(10_000_000);
        // Timer event arrives early (deadline re-armed since it was set).
        let out = run(&mut t, EventView { rto_fired: true, ..Default::default() }, 1_000);
        assert!(out.tx.iter().all(|r| !r.retransmit), "no spurious retransmission");
        assert_eq!(t.cwnd, 10 * MSS);
    }

    #[test]
    fn received_data_generates_ack() {
        let mut t = established();
        let ev = EventView {
            rcv_nxt: Some(SeqNum(1000).add(2000)),
            needs_ack: true,
            ts_val: 777,
            ..Default::default()
        };
        let out = run(&mut t, ev, 0);
        assert_eq!(out.rcvd_upto, Some(SeqNum(3000)));
        assert_eq!(out.tx.len(), 1);
        let ack = out.tx[0];
        assert_eq!(ack.len, 0);
        assert_eq!(ack.ack, SeqNum(3000));
        assert_eq!(ack.ts_ecr, 777, "peer's stamp echoed for its RTT");
        assert_eq!(ack.wnd, t.rcv_buf - 2000, "window reflects unconsumed data");
    }

    #[test]
    fn data_piggybacks_ack() {
        let mut t = established();
        let ev = EventView {
            req: Some(SeqNum(1000).add(500)),
            rcv_nxt: Some(SeqNum(1000).add(100)),
            needs_ack: true,
            ..Default::default()
        };
        let out = run(&mut t, ev, 0);
        assert_eq!(out.tx.len(), 1, "single segment carries data + ACK");
        assert_eq!(out.tx[0].len, 500);
        assert_eq!(out.tx[0].ack, SeqNum(1100));
    }

    #[test]
    fn zero_window_probe_cycle() {
        let mut t = established();
        t.snd_wnd = 0;
        t.req = SeqNum(1000).add(100);
        // First visit arms the probe timer.
        let out = run(&mut t, EventView::default(), 1000);
        assert!(out.tx.is_empty());
        let deadline = t.probe_deadline.expect("probe armed");
        // Timer fires: a 1-byte probe goes out.
        let ev = EventView { probe_fired: true, ..Default::default() };
        let out = run(&mut t, ev, deadline + 1);
        assert_eq!(out.tx.len(), 1);
        assert_eq!(out.tx[0].len, 1, "RFC 793 one-byte window probe");
        // Window opens: probe timer cancelled, data flows.
        let ev = EventView { wnd: Some(100_000), ..Default::default() };
        let out = run(&mut t, ev, deadline + 1000);
        assert!(t.probe_deadline.is_none());
        assert!(out.tx.iter().any(|r| r.len > 0));
    }

    #[test]
    fn consumed_pointer_reopens_window_with_update() {
        let mut t = established();
        // Buffer nearly full, window nearly closed.
        t.rcv_nxt = SeqNum(1000).add(t.rcv_buf - 100);
        assert!(t.advertised_window() < t.rcv_buf / 4);
        // Application consumes everything.
        let ev = EventView { consumed: Some(t.rcv_nxt), ..Default::default() };
        let out = run(&mut t, ev, 0);
        assert_eq!(t.advertised_window(), t.rcv_buf);
        assert_eq!(out.tx.len(), 1, "window-update ACK sent");
        assert_eq!(out.tx[0].wnd, t.rcv_buf);
    }

    #[test]
    fn three_way_handshake_active_side() {
        let mut flow = Tcb::new(FlowId(7));
        flow.tuple = FourTuple::default();
        // connect(): SYN out.
        let out = run(&mut flow, EventView { connect: true, ..Default::default() }, 0);
        assert_eq!(flow.state, TcpState::SynSent);
        assert!(out.tx[0].flags.contains(TcpFlags::SYN));
        assert_eq!(flow.snd_nxt, SeqNum(1), "SYN consumed a phantom byte");
        // SYN|ACK arrives (peer ISN 5000; parser reports rcv_nxt 5001).
        let ev = EventView {
            flags: TcpFlags::SYN | TcpFlags::ACK,
            ack: Some(SeqNum(1)),
            rcv_nxt: Some(SeqNum(5001)),
            ..Default::default()
        };
        let out = run(&mut flow, ev, 100);
        assert_eq!(flow.state, TcpState::Established);
        assert!(out.connected);
        assert_eq!(flow.rcv_nxt, SeqNum(5001));
        assert_eq!(out.tx.len(), 1, "final handshake ACK");
        assert_eq!(out.tx[0].ack, SeqNum(5001));
    }

    #[test]
    fn three_way_handshake_passive_side() {
        let mut flow = Tcb::new(FlowId(8));
        flow.state = TcpState::Listen;
        let ev = EventView {
            flags: TcpFlags::SYN,
            rcv_nxt: Some(SeqNum(42)),
            ..Default::default()
        };
        let out = run(&mut flow, ev, 0);
        assert_eq!(flow.state, TcpState::SynReceived);
        assert!(out.tx[0].flags.contains(TcpFlags::SYN | TcpFlags::ACK));
        // Handshake ACK arrives.
        let out = run(&mut flow, EventView { ack: Some(SeqNum(1)), ..Default::default() }, 10);
        assert_eq!(flow.state, TcpState::Established);
        assert!(out.connected);
    }

    #[test]
    fn orderly_close_after_drain() {
        let mut t = established();
        t.req = SeqNum(1000).add(100);
        // Close with unsent data: FIN deferred.
        let out = run(&mut t, EventView { close: true, ..Default::default() }, 0);
        assert!(t.close_pending);
        assert_eq!(t.state, TcpState::Established);
        assert!(out.tx.iter().all(|r| !r.flags.contains(TcpFlags::FIN)));
        // Data ACKed: next visit emits FIN.
        let out = run(&mut t, EventView { ack: Some(SeqNum(1100)), ..Default::default() }, 10);
        let fin = out.tx.iter().find(|r| r.flags.contains(TcpFlags::FIN)).expect("FIN sent");
        assert_eq!(fin.len, 0);
        assert_eq!(t.state, TcpState::FinWait);
    }

    #[test]
    fn peer_fin_acked_and_reported() {
        let mut t = established();
        let ev = EventView {
            flags: TcpFlags::FIN,
            rcv_nxt: Some(SeqNum(1001)), // FIN phantom sequenced by parser
            needs_ack: true,
            ..Default::default()
        };
        let out = run(&mut t, ev, 0);
        assert_eq!(t.state, TcpState::CloseWait);
        assert!(out.peer_fin);
        assert_eq!(out.tx.len(), 1, "FIN is ACKed");
    }

    #[test]
    fn active_closer_passes_through_time_wait() {
        let mut t = established();
        // We close first: FIN out.
        run(&mut t, EventView { close: true, ..Default::default() }, 0);
        assert_eq!(t.state, TcpState::FinWait);
        // Peer ACKs our FIN.
        let fin_end = t.snd_nxt;
        run(&mut t, EventView { ack: Some(fin_end), ..Default::default() }, 10);
        assert_eq!(t.state, TcpState::FinWait, "FIN_WAIT_2 equivalent");
        // Peer's FIN arrives: TIME_WAIT with the 2MSL timer armed.
        let out = run(
            &mut t,
            EventView {
                flags: TcpFlags::FIN,
                rcv_nxt: Some(SeqNum(1001)),
                needs_ack: true,
                ..Default::default()
            },
            20,
        );
        assert_eq!(t.state, TcpState::TimeWait);
        assert!(!out.closed, "not closed yet: quiet period");
        assert_eq!(t.rto_deadline, Some(20 + TIME_WAIT_NS));
        assert_eq!(out.tx.len(), 1, "final FIN is ACKed");
        // A retransmitted FIN during TIME_WAIT is re-ACKed, not fatal.
        let out = run(
            &mut t,
            EventView {
                flags: TcpFlags::FIN,
                rcv_nxt: Some(SeqNum(1001)),
                needs_ack: true,
                ..Default::default()
            },
            1_000,
        );
        assert_eq!(t.state, TcpState::TimeWait);
        assert_eq!(out.tx.len(), 1, "duplicate FIN re-ACKed");
        // Timer expiry closes for real.
        let out = run(
            &mut t,
            EventView { rto_fired: true, ..Default::default() },
            20 + TIME_WAIT_NS + 1,
        );
        assert_eq!(t.state, TcpState::Closed);
        assert!(out.closed);
    }

    #[test]
    fn rst_kills_connection() {
        let mut t = established();
        let out = run(&mut t, EventView { flags: TcpFlags::RST, ..Default::default() }, 0);
        assert_eq!(t.state, TcpState::Closed);
        assert!(out.closed);
        assert!(out.tx.is_empty());
    }

    #[test]
    fn pipeline_latency_and_order() {
        let mut fpu = Fpu::new(Arc::new(NewReno), Some(5), MSS);
        let t = established();
        fpu.issue(t, EventView::default(), 10);
        assert!(fpu.in_flight(FlowId(1)));
        for c in 10..15 {
            assert!(fpu.tick(c, 0).is_none(), "not ready at cycle {c}");
        }
        let r = fpu.tick(15, 0).expect("ready after 5 cycles");
        assert_eq!(r.tcb.flow, FlowId(1));
        assert!(!fpu.in_flight(FlowId(1)));
        assert_eq!(fpu.processed(), 1);
    }

    #[test]
    fn pipeline_back_to_back_issue() {
        // Fully pipelined: three TCBs issued on consecutive cycles emerge
        // on consecutive cycles, regardless of a deep pipeline.
        let mut fpu = Fpu::new(Arc::new(NewReno), Some(68), MSS);
        for (i, c) in (100..103).enumerate() {
            let mut t = established();
            t.flow = FlowId(i as u32);
            fpu.issue(t, EventView::default(), c);
        }
        let mut done = Vec::new();
        for c in 100..200 {
            if let Some(r) = fpu.tick(c, 0) {
                done.push((c, r.tcb.flow));
            }
        }
        assert_eq!(done.len(), 3);
        assert_eq!(done[0], (168, FlowId(0)));
        assert_eq!(done[1], (169, FlowId(1)));
        assert_eq!(done[2], (170, FlowId(2)));
    }

    #[test]
    fn uses_algorithm_latency_by_default() {
        let fpu = Fpu::new(Arc::new(f4t_tcp::Vegas), None, MSS);
        assert_eq!(fpu.latency(), 68);
        assert_eq!(fpu.cc().name(), "vegas");
    }

    #[test]
    fn event_view_any() {
        assert!(!EventView::default().any());
        assert!(EventView { connect: true, ..Default::default() }.any());
        assert!(EventView { dup_acks: Some(1), ..Default::default() }.any());
        assert!(EventView { rto_fired: true, ..Default::default() }.any());
    }
}
