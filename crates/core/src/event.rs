//! Events, the engine's unit of work.
//!
//! FtEngine processes three kinds of events — user requests, received
//! packets and timeouts (§4.1.2) — all carried as [`FlowEvent`]s. Events
//! are designed around the cumulative-pointer property: every field of
//! [`EventKind`] is either a cumulative pointer (newer value subsumes
//! older) or an occurrence bit (OR-accumulable), which is what lets the
//! event handler and the scheduler's coalesce FIFOs merge events without
//! information loss (§4.2.1, §4.4.1). The only exception is duplicate-ACK
//! counting, which the event handler performs as a single-cycle increment.

use f4t_tcp::{FlowId, SeqNum, TcpFlags};

/// Which timer fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutKind {
    /// Retransmission timeout.
    Rto,
    /// Zero-window probe timer.
    Probe,
}

/// The payload of a [`FlowEvent`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// Active open requested by the application.
    Connect,
    /// Orderly close requested by the application.
    Close,
    /// User send request: the library sends the new absolute REQ pointer,
    /// not a length (§4.2.1), so accumulation is a plain overwrite.
    SendReq {
        /// New user request pointer (all data before it should be sent).
        req: SeqNum,
    },
    /// User receive: the application consumed data up to this pointer,
    /// opening the advertised window.
    RecvConsumed {
        /// New consumed pointer.
        consumed: SeqNum,
    },
    /// Summary of a received packet, produced by the RX parser after flow
    /// lookup and logical reassembly.
    RxPacket {
        /// Cumulative ACK carried by the packet.
        ack: SeqNum,
        /// The receiver-side in-order pointer *after* reassembly.
        rcv_nxt: SeqNum,
        /// Peer's advertised window.
        wnd: u32,
        /// Control flags seen (SYN/FIN/RST occurrence bits).
        flags: TcpFlags,
        /// Whether the packet carried payload (used by the event handler's
        /// duplicate-ACK detection).
        had_payload: bool,
        /// Whether the packet requires an ACK in response: payload was
        /// accepted, or the segment was unacceptable (duplicate /
        /// out-of-window, including zero-window probes — RFC 793 requires
        /// an ACK for those too).
        needs_ack: bool,
        /// Whether the packet arrived in order with no reassembly gap;
        /// only in-order packets may coalesce (GRO rule, §4.4.1).
        in_order: bool,
        /// Peer's TSval (to echo back); zero if absent.
        ts_val: u64,
        /// Peer's TSecr (our stamp coming home — an RTT sample); zero if
        /// absent.
        ts_ecr: u64,
    },
    /// A timer fired.
    Timeout {
        /// Which timer.
        kind: TimeoutKind,
    },
}

/// An event bound for one flow's TCB.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowEvent {
    /// Destination flow.
    pub flow: FlowId,
    /// What happened.
    pub kind: EventKind,
    /// Simulation time the event was created (latency accounting).
    pub born_ns: u64,
}

impl FlowEvent {
    /// Creates an event.
    pub fn new(flow: FlowId, kind: EventKind, born_ns: u64) -> FlowEvent {
        FlowEvent { flow, kind, born_ns }
    }

    /// Attempts to merge `other` (a newer event of the same flow) into
    /// `self`, returning `true` on success. Implements the scheduler's
    /// lossless coalescing rule (§4.4.1): same-kind events merge by
    /// cumulative overwrite / OR; received packets merge only when both
    /// are in order (no drop or reordering evidence) — a duplicate ACK is
    /// never produced by an in-order data packet, so the GRO rule also
    /// protects the dup-ACK count.
    pub fn try_merge(&mut self, other: &FlowEvent) -> bool {
        debug_assert_eq!(self.flow, other.flow, "merging across flows");
        match (&mut self.kind, &other.kind) {
            (EventKind::SendReq { req }, EventKind::SendReq { req: new }) => {
                *req = req.max_seq(*new);
                true
            }
            (EventKind::RecvConsumed { consumed }, EventKind::RecvConsumed { consumed: new }) => {
                *consumed = consumed.max_seq(*new);
                true
            }
            (
                EventKind::RxPacket {
                    ack,
                    rcv_nxt,
                    wnd,
                    flags,
                    had_payload,
                    needs_ack,
                    in_order,
                    ts_val,
                    ts_ecr,
                },
                EventKind::RxPacket {
                    ack: n_ack,
                    rcv_nxt: n_rcv,
                    wnd: n_wnd,
                    flags: n_flags,
                    had_payload: n_payload,
                    needs_ack: n_needs,
                    in_order: n_in_order,
                    ts_val: n_ts_val,
                    ts_ecr: n_ts_ecr,
                },
            ) => {
                if !*in_order || !*n_in_order {
                    return false;
                }
                *ack = ack.max_seq(*n_ack);
                *rcv_nxt = rcv_nxt.max_seq(*n_rcv);
                *wnd = *n_wnd;
                flags.insert(*n_flags);
                *had_payload |= *n_payload;
                *needs_ack |= *n_needs;
                if *n_ts_val != 0 {
                    *ts_val = *n_ts_val;
                }
                if *n_ts_ecr != 0 {
                    *ts_ecr = *n_ts_ecr;
                }
                true
            }
            (EventKind::Timeout { kind }, EventKind::Timeout { kind: n_kind }) => kind == n_kind,
            _ => false,
        }
    }
}

/// A transmit request from the FPU to the packet generator. The generator
/// splits requests larger than the MSS into multiple segments (§4.1.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TxRequest {
    /// Sending flow.
    pub flow: FlowId,
    /// 4-tuple for header generation.
    pub tuple: f4t_tcp::FourTuple,
    /// First sequence number of the payload range.
    pub seq: SeqNum,
    /// Payload byte count (0 = pure ACK / control segment).
    pub len: u32,
    /// Cumulative ACK to carry.
    pub ack: SeqNum,
    /// Window to advertise.
    pub wnd: u32,
    /// Flags to set (ACK is implied in established states).
    pub flags: TcpFlags,
    /// Marks a retransmission (diagnostics).
    pub retransmit: bool,
    /// TSecr to carry (peer's stamp being echoed).
    pub ts_ecr: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind) -> FlowEvent {
        FlowEvent::new(FlowId(1), kind, 0)
    }

    #[test]
    fn send_reqs_merge_to_max() {
        let mut a = ev(EventKind::SendReq { req: SeqNum(100) });
        let b = ev(EventKind::SendReq { req: SeqNum(300) });
        assert!(a.try_merge(&b));
        assert_eq!(a.kind, EventKind::SendReq { req: SeqNum(300) });
        // Merging an older pointer keeps the newer one.
        let c = ev(EventKind::SendReq { req: SeqNum(200) });
        assert!(a.try_merge(&c));
        assert_eq!(a.kind, EventKind::SendReq { req: SeqNum(300) });
    }

    #[test]
    fn in_order_rx_packets_merge() {
        let mut a = ev(EventKind::RxPacket {
            ack: SeqNum(100),
            rcv_nxt: SeqNum(50),
            wnd: 1000,
            flags: TcpFlags::ACK,
            had_payload: true,
            needs_ack: true,
            in_order: true,
            ts_val: 5,
            ts_ecr: 0,
        });
        let b = ev(EventKind::RxPacket {
            ack: SeqNum(200),
            rcv_nxt: SeqNum(150),
            wnd: 900,
            flags: TcpFlags::ACK | TcpFlags::FIN,
            had_payload: true,
            needs_ack: true,
            in_order: true,
            ts_val: 9,
            ts_ecr: 77,
        });
        assert!(a.try_merge(&b));
        let EventKind::RxPacket { ack, rcv_nxt, wnd, flags, ts_val, ts_ecr, .. } = a.kind else {
            panic!()
        };
        assert_eq!(ack, SeqNum(200));
        assert_eq!(rcv_nxt, SeqNum(150));
        assert_eq!(wnd, 900, "latest window wins");
        assert!(flags.contains(TcpFlags::FIN), "flags OR-accumulate");
        assert_eq!(ts_val, 9);
        assert_eq!(ts_ecr, 77);
    }

    #[test]
    fn out_of_order_rx_packets_refuse_merge() {
        let in_order = EventKind::RxPacket {
            ack: SeqNum(1),
            rcv_nxt: SeqNum(1),
            wnd: 1,
            flags: TcpFlags::ACK,
            had_payload: false,
            needs_ack: false,
            in_order: true,
            ts_val: 0,
            ts_ecr: 0,
        };
        let ooo = EventKind::RxPacket {
            ack: SeqNum(1),
            rcv_nxt: SeqNum(1),
            wnd: 1,
            flags: TcpFlags::ACK,
            had_payload: false,
            needs_ack: false,
            in_order: false,
            ts_val: 0,
            ts_ecr: 0,
        };
        let mut a = ev(in_order);
        assert!(!a.try_merge(&ev(ooo)), "loss/reorder evidence blocks merge");
        let mut a = ev(ooo);
        assert!(!a.try_merge(&ev(in_order)), "existing ooo blocks merge too");
    }

    #[test]
    fn different_kinds_refuse_merge() {
        let mut a = ev(EventKind::SendReq { req: SeqNum(1) });
        assert!(!a.try_merge(&ev(EventKind::Connect)));
        assert!(!a.try_merge(&ev(EventKind::Timeout { kind: TimeoutKind::Rto })));
    }

    #[test]
    fn same_timeout_kind_merges() {
        let mut a = ev(EventKind::Timeout { kind: TimeoutKind::Rto });
        assert!(a.try_merge(&ev(EventKind::Timeout { kind: TimeoutKind::Rto })));
        assert!(!a.try_merge(&ev(EventKind::Timeout { kind: TimeoutKind::Probe })));
    }
}
