//! FtTurbo parallel execution: independent engine shards on worker
//! threads with a deterministic rendezvous barrier.
//!
//! The model is strict fork-join over a **fixed** shard set. A workload
//! is split into N independent shards (each owning its own [`Engine`],
//! or any other `Send` state); every rendezvous round applies the same
//! step function to every shard, and a [`std::sync::Barrier`] holds all
//! workers at the round boundary until the slowest shard arrives. The
//! worker-pool size changes *wall-clock only*:
//!
//! * shards never share mutable state — each is stepped by exactly one
//!   worker, and the contiguous-chunk assignment is a pure function of
//!   `(shard_count, pool_size)`;
//! * the only cross-shard communication is the round-continuation vote,
//!   a boolean OR, which is order-insensitive;
//! * merged artifacts (telemetry, journals, digests) are folded in
//!   fixed shard order *after* the run, never concurrently.
//!
//! So a pool of 1 and a pool of N execute the identical per-shard
//! instruction stream and produce byte-identical output — the property
//! `tests/determinism.rs` pins.
//!
//! Rounds are sized in [`RENDEZVOUS_QUANTUM`] cycles so that FtVerify
//! structural audits (every `AUDIT_INTERVAL` cycles) and watchdog
//! sweeps land exactly on rendezvous boundaries: each shard observes
//! its own quiescent state at the same cycle numbers whether the run is
//! tick-by-tick, fast-forwarded or parallel.

use crate::engine::AUDIT_INTERVAL;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Barrier;

/// Cycles per rendezvous round. Equal to the FtVerify audit interval and
/// a divisor of every supported watchdog interval, so audit and sweep
/// cycles always coincide with a barrier.
pub const RENDEZVOUS_QUANTUM: u64 = AUDIT_INTERVAL;

/// Deterministic fork-join runner over a fixed set of independent
/// shards.
///
/// # Examples
///
/// ```
/// use f4t_core::parallel::ParallelRunner;
///
/// // Four shards, each accumulating its own series; pool size must not
/// // change the result.
/// let mk = || ParallelRunner::new(vec![0u64; 4]);
/// let run = |threads: usize| {
///     let mut r = mk();
///     r.run_rounds(threads, |acc, round| {
///         *acc = acc.wrapping_mul(31).wrapping_add(round);
///         round < 9
///     });
///     r.into_shards()
/// };
/// assert_eq!(run(1), run(4));
/// ```
pub struct ParallelRunner<S> {
    shards: Vec<S>,
}

impl<S: Send> ParallelRunner<S> {
    /// Wraps a fixed shard set. The shard count is part of the
    /// workload's identity; only the worker-pool size passed to
    /// [`run_rounds`](Self::run_rounds) may vary between runs.
    pub fn new(shards: Vec<S>) -> ParallelRunner<S> {
        ParallelRunner { shards }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the runner holds no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Read access to the shards, in fixed order (use this for merging
    /// artifacts after a run).
    pub fn shards(&self) -> &[S] {
        &self.shards
    }

    /// Mutable access to the shards (setup between runs).
    pub fn shards_mut(&mut self) -> &mut [S] {
        &mut self.shards
    }

    /// Unwraps the shards, in fixed order.
    pub fn into_shards(self) -> Vec<S> {
        self.shards
    }

    /// Runs rendezvous rounds until every shard votes to stop.
    ///
    /// Each round calls `step(shard, round)` once per shard; the round
    /// counter is global and identical across shards. The run continues
    /// while *any* shard returns `true` — finished shards keep being
    /// stepped (their step should be a cheap no-op) so every shard
    /// executes the same number of rounds regardless of completion
    /// order. Returns the number of rounds executed.
    ///
    /// `threads` is clamped to `[1, shard_count]`. A pool of 1 runs the
    /// shards inline on the caller's thread with no synchronization at
    /// all — the reference sequence the threaded path must reproduce.
    pub fn run_rounds<F>(&mut self, threads: usize, step: F) -> u64
    where
        F: Fn(&mut S, u64) -> bool + Sync,
    {
        if self.shards.is_empty() {
            return 0;
        }
        let threads = threads.max(1).min(self.shards.len());
        if threads == 1 {
            let mut round = 0u64;
            loop {
                let mut again = false;
                for s in &mut self.shards {
                    again |= step(s, round);
                }
                round += 1;
                if !again {
                    return round;
                }
            }
        }
        // Contiguous chunks, one worker each: shard i is stepped only by
        // worker i / chunk, so no shard is ever touched by two threads.
        let chunk = self.shards.len().div_ceil(threads);
        let workers = self.shards.len().div_ceil(chunk);
        let barrier = Barrier::new(workers);
        let votes = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let rounds = AtomicU64::new(0);
        std::thread::scope(|scope| {
            for shards in self.shards.chunks_mut(chunk) {
                let (barrier, votes, stop, rounds, step) =
                    (&barrier, &votes, &stop, &rounds, &step);
                scope.spawn(move || {
                    let mut round = 0u64;
                    loop {
                        let mut again = false;
                        for s in shards.iter_mut() {
                            again |= step(s, round);
                        }
                        if again {
                            votes.fetch_add(1, Ordering::Relaxed);
                        }
                        // Rendezvous: every shard has reached the round
                        // boundary. The leader tallies the continuation
                        // vote; a second wait publishes it before anyone
                        // can start (or skip) the next round.
                        if barrier.wait().is_leader() {
                            stop.store(votes.load(Ordering::Relaxed) == 0, Ordering::Relaxed);
                            votes.store(0, Ordering::Relaxed);
                            rounds.store(round + 1, Ordering::Relaxed);
                        }
                        barrier.wait();
                        round += 1;
                        if stop.load(Ordering::Relaxed) {
                            return;
                        }
                    }
                });
            }
        });
        rounds.load(Ordering::Relaxed)
    }
}

/// Folds per-shard digests into one merged digest in fixed shard order
/// (FNV-1a over the little-endian digest bytes). Used so "one digest for
/// the whole run" is well-defined and thread-count independent.
pub fn fold_digests(parts: impl IntoIterator<Item = u64>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for part in parts {
        for b in part.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use f4t_sim::SimRng;

    /// A shard doing data-dependent pseudo-random work with a
    /// shard-specific completion round — exercises uneven finish order.
    struct Work {
        rng: SimRng,
        acc: u64,
        rounds_left: u64,
    }

    fn shards() -> Vec<Work> {
        (0..7u64)
            .map(|i| Work {
                rng: SimRng::new(0x7EAD_0000 + i),
                acc: 0,
                rounds_left: 3 + (i * 5) % 11,
            })
            .collect()
    }

    fn run(threads: usize) -> (Vec<u64>, u64) {
        let mut r = ParallelRunner::new(shards());
        let rounds = r.run_rounds(threads, |w, round| {
            if w.rounds_left == 0 {
                return false; // finished shards keep voting to stop
            }
            w.rounds_left -= 1;
            w.acc = w.acc.wrapping_add(w.rng.next_u64() ^ round);
            w.rounds_left > 0
        });
        (r.into_shards().into_iter().map(|w| w.acc).collect(), rounds)
    }

    #[test]
    fn pool_size_does_not_change_results_or_round_count() {
        let reference = run(1);
        for threads in [2, 3, 7, 16] {
            assert_eq!(run(threads), reference, "pool of {threads} diverged");
        }
    }

    #[test]
    fn empty_and_single_shard_runs() {
        let mut empty: ParallelRunner<u64> = ParallelRunner::new(Vec::new());
        assert_eq!(empty.run_rounds(4, |_, _| true), 0);
        assert!(empty.is_empty());

        let mut one = ParallelRunner::new(vec![0u64]);
        let rounds = one.run_rounds(8, |v, round| {
            *v += round;
            round < 4
        });
        assert_eq!(rounds, 5);
        assert_eq!(one.shards()[0], (0..=4u64).sum());
    }

    #[test]
    fn fold_digests_is_order_sensitive_and_stable() {
        let a = fold_digests([1, 2, 3]);
        assert_eq!(a, fold_digests([1, 2, 3]), "stable");
        assert_ne!(a, fold_digests([3, 2, 1]), "fixed shard order matters");
        assert_ne!(fold_digests([]), fold_digests([0]), "empty differs from zero");
    }

    #[test]
    fn quantum_is_audit_aligned() {
        assert_eq!(RENDEZVOUS_QUANTUM, crate::engine::AUDIT_INTERVAL);
        assert!(RENDEZVOUS_QUANTUM.is_multiple_of(2), "even/odd FPC phases stay aligned");
    }
}
