#![warn(missing_docs)]
//! # f4t-host — the F4T software stack and host models
//!
//! The paper's host side (§4.1.1, §4.6) consists of the **F4T library**
//! (a POSIX-socket shim preloaded into the application, turning socket
//! calls into plain function calls that write 16 B commands) and the
//! **F4T runtime** (a userspace driver that maps the PCIe BAR, registers
//! hugepages and owns the per-thread command queues). This crate models
//! all of it, plus the host CPU and the Linux kernel TCP stack the paper
//! compares against:
//!
//! * [`command`] — the 16 B (and §6's 8 B) command wire format.
//! * [`queues`] — per-thread command queues of depth 1024 and the
//!   hardware/software doorbells.
//! * [`runtime`] — the userspace driver: BAR mapping, IOMMU hugepage
//!   registration, queue-pair layout.
//! * [`pcie`] — a PCIe Gen3 ×16 byte-budget model (the Fig. 9 / Fig. 16a
//!   bottleneck).
//! * [`cpu`] — host-core cycle budgets at 2.3 GHz and the CPU-utilization
//!   accounting behind Fig. 1 and Fig. 11.
//! * [`lib_api`] — the F4T library: per-flow socket state, send-buffer
//!   management, completion processing.
//! * [`linux_model`] — the calibrated Linux kernel TCP stack cost model
//!   (see DESIGN.md §5 for every anchor point).

pub mod command;
pub mod cpu;
pub mod lib_api;
pub mod linux_model;
pub mod pcie;
pub mod queues;
pub mod runtime;

pub use command::{Command, Completion};
pub use cpu::{CoreBudget, CpuAccounting, CpuCategory};
pub use lib_api::{F4tLib, SendError, SocketState};
pub use linux_model::LinuxModel;
pub use pcie::{PcieDir, PcieModel};
pub use queues::{CommandQueue, Doorbell};
pub use runtime::{QueuePair, Runtime};

/// Host CPU cycles the F4T library spends to issue one command (function
/// call + queue write + amortized MMIO doorbell with batching, §4.6).
/// Calibrated so one 2.3 GHz core issues ~44 M requests/s including its
/// completion-processing share (Fig. 8a's single-core 45 Gbps at 128 B).
pub const LIB_CMD_CYCLES: u64 = 46;

/// Host CPU cycles to process one hardware completion (poll + pointer
/// update in the library's socket state).
pub const LIB_COMPLETION_CYCLES: u64 = 12;

/// Host CPU cycles for one epoll-style readiness scan over the
/// completion queue when it turns out empty.
pub const LIB_POLL_CYCLES: u64 = 8;
