//! The software↔hardware command wire format.
//!
//! "Command queues of depth 1024, each entry holding a 16 B command, are
//! allocated per thread for the F4T library and FtEngine to send commands
//! to each other. Requests such as connect(), send(), and recv() are sent
//! to FtEngine with 16 B commands, and FtEngine sends ACKed data and
//! received data pointers to the software with 16 B commands" (§4.1.1).
//! §6 additionally evaluates a compacted **8 B** command that relieves
//! the PCIe bottleneck at extreme request rates.

use f4t_tcp::{FlowId, SeqNum};

/// A software→hardware command (a decoded queue entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// `connect()`: start the active-open handshake.
    Connect {
        /// Target flow.
        flow: FlowId,
    },
    /// `close()`: orderly shutdown.
    Close {
        /// Target flow.
        flow: FlowId,
    },
    /// `send()`: the library sends the new absolute REQ pointer, not a
    /// length (§4.2.1).
    Send {
        /// Target flow.
        flow: FlowId,
        /// New user-request pointer.
        req: SeqNum,
    },
    /// `recv()` consumed data up to this pointer (opens the window).
    RecvConsumed {
        /// Target flow.
        flow: FlowId,
        /// New consumed pointer.
        consumed: SeqNum,
    },
}

/// A hardware→software completion (the other direction of §4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completion {
    /// Connection established.
    Connected {
        /// The flow.
        flow: FlowId,
    },
    /// Peer ACKed our data up to the pointer.
    Acked {
        /// The flow.
        flow: FlowId,
        /// ACKed pointer.
        upto: SeqNum,
    },
    /// In-order data available up to the pointer.
    Received {
        /// The flow.
        flow: FlowId,
        /// Received pointer.
        upto: SeqNum,
    },
    /// Peer sent FIN (EOF).
    Eof {
        /// The flow.
        flow: FlowId,
    },
    /// Connection closed.
    Closed {
        /// The flow.
        flow: FlowId,
    },
    /// A new inbound connection for `accept()`.
    Accepted {
        /// The new flow.
        flow: FlowId,
    },
}

/// Error decoding a command buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError(pub &'static str);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid command encoding: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

const OP_CONNECT: u8 = 1;
const OP_CLOSE: u8 = 2;
const OP_SEND: u8 = 3;
const OP_RECV: u8 = 4;

impl Command {
    /// Full-size command entry (the paper's default).
    pub const WIRE_16: usize = 16;
    /// Compacted entry from §6's scaling experiment.
    pub const WIRE_8: usize = 8;

    fn op(self) -> u8 {
        match self {
            Command::Connect { .. } => OP_CONNECT,
            Command::Close { .. } => OP_CLOSE,
            Command::Send { .. } => OP_SEND,
            Command::RecvConsumed { .. } => OP_RECV,
        }
    }

    /// The flow a command addresses.
    pub fn flow(self) -> FlowId {
        match self {
            Command::Connect { flow }
            | Command::Close { flow }
            | Command::Send { flow, .. }
            | Command::RecvConsumed { flow, .. } => flow,
        }
    }

    fn arg(self) -> u32 {
        match self {
            Command::Send { req, .. } => req.0,
            Command::RecvConsumed { consumed, .. } => consumed.0,
            _ => 0,
        }
    }

    /// Encodes as a 16 B queue entry.
    pub fn encode16(self) -> [u8; 16] {
        let mut b = [0u8; 16];
        b[0] = self.op();
        b[4..8].copy_from_slice(&self.flow().0.to_le_bytes());
        b[8..12].copy_from_slice(&self.arg().to_le_bytes());
        b
    }

    /// Decodes a 16 B entry.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on an unknown opcode.
    pub fn decode16(b: &[u8; 16]) -> Result<Command, DecodeError> {
        let flow = FlowId(u32::from_le_bytes([b[4], b[5], b[6], b[7]]));
        let arg = u32::from_le_bytes([b[8], b[9], b[10], b[11]]);
        Self::from_parts(b[0], flow, arg)
    }

    /// Encodes as the compact 8 B entry: 1 B opcode, 3 B flow id, 4 B
    /// argument. Flow ids must fit 24 bits (16 M flows ≫ the 64 K the
    /// engine supports).
    ///
    /// # Panics
    ///
    /// Panics if the flow id exceeds 24 bits.
    pub fn encode8(self) -> [u8; 8] {
        let flow = self.flow().0;
        assert!(flow < (1 << 24), "8 B commands carry 24-bit flow ids");
        let mut b = [0u8; 8];
        b[0] = self.op();
        b[1..4].copy_from_slice(&flow.to_le_bytes()[..3]);
        b[4..8].copy_from_slice(&self.arg().to_le_bytes());
        b
    }

    /// Decodes an 8 B entry.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on an unknown opcode.
    pub fn decode8(b: &[u8; 8]) -> Result<Command, DecodeError> {
        let flow = FlowId(u32::from_le_bytes([b[1], b[2], b[3], 0]));
        let arg = u32::from_le_bytes([b[4], b[5], b[6], b[7]]);
        Self::from_parts(b[0], flow, arg)
    }

    fn from_parts(op: u8, flow: FlowId, arg: u32) -> Result<Command, DecodeError> {
        match op {
            OP_CONNECT => Ok(Command::Connect { flow }),
            OP_CLOSE => Ok(Command::Close { flow }),
            OP_SEND => Ok(Command::Send { flow, req: SeqNum(arg) }),
            OP_RECV => Ok(Command::RecvConsumed { flow, consumed: SeqNum(arg) }),
            _ => Err(DecodeError("unknown opcode")),
        }
    }
}

impl Completion {
    /// The flow a completion refers to.
    pub fn flow(self) -> FlowId {
        match self {
            Completion::Connected { flow }
            | Completion::Acked { flow, .. }
            | Completion::Received { flow, .. }
            | Completion::Eof { flow }
            | Completion::Closed { flow }
            | Completion::Accepted { flow } => flow,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f4t_sim::SimRng;

    fn all_commands(flow: u32, arg: u32) -> [Command; 4] {
        [
            Command::Connect { flow: FlowId(flow) },
            Command::Close { flow: FlowId(flow) },
            Command::Send { flow: FlowId(flow), req: SeqNum(arg) },
            Command::RecvConsumed { flow: FlowId(flow), consumed: SeqNum(arg) },
        ]
    }

    #[test]
    fn sixteen_byte_round_trip() {
        for c in all_commands(65_535, 0xDEADBEEF) {
            let enc = c.encode16();
            assert_eq!(Command::decode16(&enc), Ok(c));
        }
    }

    #[test]
    fn eight_byte_round_trip() {
        for c in all_commands(65_535, 0xDEADBEEF) {
            let enc = c.encode8();
            assert_eq!(Command::decode8(&enc), Ok(c));
        }
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut b = [0u8; 16];
        b[0] = 99;
        assert!(Command::decode16(&b).is_err());
        let b8 = [99u8, 0, 0, 0, 0, 0, 0, 0];
        assert!(Command::decode8(&b8).is_err());
        assert!(DecodeError("x").to_string().contains("invalid"));
    }

    #[test]
    #[should_panic(expected = "24-bit")]
    fn eight_byte_flow_overflow_panics() {
        Command::Connect { flow: FlowId(1 << 24) }.encode8();
    }

    #[test]
    fn completion_flow_access() {
        assert_eq!(Completion::Eof { flow: FlowId(9) }.flow(), FlowId(9));
        assert_eq!(Completion::Acked { flow: FlowId(3), upto: SeqNum(1) }.flow(), FlowId(3));
    }

    // Randomized round trips, driven by the deterministic in-tree PRNG
    // (the build environment has no registry access for proptest).

    #[test]
    fn round_trip_16() {
        let mut rng = SimRng::new(0xC16);
        for _ in 0..4096 {
            let flow = rng.next_u64() as u32;
            let arg = rng.next_u64() as u32;
            let op = rng.next_below(4) as usize;
            let c = all_commands(flow, arg)[op];
            assert_eq!(Command::decode16(&c.encode16()), Ok(c));
        }
    }

    #[test]
    fn round_trip_8() {
        let mut rng = SimRng::new(0xC8);
        for _ in 0..4096 {
            let flow = rng.next_below(1 << 24) as u32;
            let arg = rng.next_u64() as u32;
            let op = rng.next_below(4) as usize;
            let c = all_commands(flow, arg)[op];
            assert_eq!(Command::decode8(&c.encode8()), Ok(c));
        }
    }
}
