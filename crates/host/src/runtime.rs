//! The F4T runtime: the userspace device driver.
//!
//! "F4T runtime functions as a userspace device driver, enabling direct
//! communication between F4T library and FtEngine. Specifically, F4T
//! runtime mmaps the FtEngine's PCIe BAR region into userspace for F4T
//! library to signal the hardware via memory-mapped I/O. The runtime also
//! registers hugepages into the IOMMU for DMA. On the hugepages, command
//! queues of depth 1024 ... are allocated per thread" (§4.1.1).
//!
//! This module models that setup path: a BAR window of doorbell
//! registers, hugepage-backed DMA regions registered with a simulated
//! IOMMU, and per-thread queue pairs carved out of those regions. The
//! simulator does not move real bytes through them — the `Node` layer
//! does that — but the bookkeeping (region accounting, queue-pair
//! addressing, doorbell offsets) is real and tested, and `Node`-level
//! setup mirrors what a real init path would perform.

use std::collections::HashMap;
use std::fmt;

/// Size of one hugepage (2 MiB, the x86 default the paper uses).
pub const HUGEPAGE_BYTES: u64 = 2 * 1024 * 1024;

/// Bytes a queue pair occupies in hugepage memory: two rings of 1024 ×
/// 16 B entries plus a cacheline-aligned software doorbell.
pub const QUEUE_PAIR_BYTES: u64 = 2 * 1024 * 16 + 64;

/// An I/O virtual address handed out by the simulated IOMMU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Iova(pub u64);

impl fmt::Display for Iova {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "iova:{:#x}", self.0)
    }
}

/// Errors from runtime setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeError {
    /// All doorbell slots in the BAR window are taken.
    BarExhausted,
    /// The registered hugepage pool cannot fit another allocation.
    DmaMemoryExhausted,
    /// The queue pair id is unknown.
    UnknownQueuePair,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::BarExhausted => write!(f, "no free doorbell in the BAR window"),
            RuntimeError::DmaMemoryExhausted => write!(f, "hugepage DMA pool exhausted"),
            RuntimeError::UnknownQueuePair => write!(f, "unknown queue pair"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// A per-thread queue pair: where in DMA memory its rings live and which
/// BAR offset its hardware doorbell occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueuePair {
    /// Queue pair id (== thread id in the paper's 1:1 setup).
    pub id: u32,
    /// IOVA of the software→hardware command ring.
    pub sq_iova: Iova,
    /// IOVA of the hardware→software completion ring.
    pub cq_iova: Iova,
    /// IOVA of the software doorbell the hardware writes (§4.1.1: "the
    /// software later polls the software doorbell in memory").
    pub sw_db_iova: Iova,
    /// Byte offset of the hardware doorbell inside the BAR window.
    pub hw_db_offset: u64,
}

/// The runtime: BAR mapping + IOMMU registrations + queue-pair layout.
#[derive(Debug)]
pub struct Runtime {
    bar_bytes: u64,
    db_stride: u64,
    next_db: u64,
    /// Registered hugepages: base IOVA → bytes used.
    pages: Vec<(Iova, u64)>,
    next_iova: u64,
    qps: HashMap<u32, QueuePair>,
    next_qp: u32,
}

impl Runtime {
    /// Doorbell stride: one 4 KiB page per queue so threads never share a
    /// write-combining mapping.
    pub const DB_STRIDE: u64 = 4096;

    /// Opens the device: maps a BAR window of `bar_bytes`.
    pub fn open(bar_bytes: u64) -> Runtime {
        Runtime {
            bar_bytes,
            db_stride: Self::DB_STRIDE,
            next_db: 0,
            pages: Vec::new(),
            next_iova: 0x1_0000_0000, // a recognizable IOVA base
            qps: HashMap::new(),
            next_qp: 0,
        }
    }

    /// The default FtEngine BAR (16 MiB: 4096 doorbell pages).
    pub fn open_default() -> Runtime {
        Runtime::open(16 * 1024 * 1024)
    }

    /// Registers one hugepage with the IOMMU, returning its IOVA.
    pub fn register_hugepage(&mut self) -> Iova {
        let iova = Iova(self.next_iova);
        self.next_iova += HUGEPAGE_BYTES;
        self.pages.push((iova, 0));
        iova
    }

    /// Carves a DMA allocation of `bytes` out of the registered pool,
    /// registering further hugepages on demand up to `max_pages`.
    fn dma_alloc(&mut self, bytes: u64, max_pages: usize) -> Result<Iova, RuntimeError> {
        for (base, used) in &mut self.pages {
            if *used + bytes <= HUGEPAGE_BYTES {
                let iova = Iova(base.0 + *used);
                *used += bytes;
                return Ok(iova);
            }
        }
        if self.pages.len() >= max_pages {
            return Err(RuntimeError::DmaMemoryExhausted);
        }
        let base = self.register_hugepage();
        let (_, used) = self.pages.last_mut().expect("just pushed");
        *used += bytes;
        Ok(base)
    }

    /// Creates a queue pair for one application thread: rings + software
    /// doorbell in hugepage DMA memory, hardware doorbell in the BAR.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::BarExhausted`] when the BAR window has no doorbell
    /// slots left; [`RuntimeError::DmaMemoryExhausted`] when more than
    /// `max_pages` hugepages would be needed.
    pub fn create_queue_pair(&mut self, max_pages: usize) -> Result<QueuePair, RuntimeError> {
        if self.next_db + self.db_stride > self.bar_bytes {
            return Err(RuntimeError::BarExhausted);
        }
        let sq = self.dma_alloc(1024 * 16, max_pages)?;
        let cq = self.dma_alloc(1024 * 16, max_pages)?;
        let sw_db = self.dma_alloc(64, max_pages)?;
        let qp = QueuePair {
            id: self.next_qp,
            sq_iova: sq,
            cq_iova: cq,
            sw_db_iova: sw_db,
            hw_db_offset: self.next_db,
        };
        self.next_db += self.db_stride;
        self.next_qp += 1;
        self.qps.insert(qp.id, qp);
        Ok(qp)
    }

    /// Looks up a queue pair.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownQueuePair`].
    pub fn queue_pair(&self, id: u32) -> Result<QueuePair, RuntimeError> {
        self.qps.get(&id).copied().ok_or(RuntimeError::UnknownQueuePair)
    }

    /// Destroys a queue pair, freeing its BAR doorbell for reuse by a
    /// future thread. (DMA memory is pooled and not compacted, as with
    /// real hugepage allocators.)
    pub fn destroy_queue_pair(&mut self, id: u32) -> Result<(), RuntimeError> {
        self.qps.remove(&id).map(|_| ()).ok_or(RuntimeError::UnknownQueuePair)
    }

    /// Number of live queue pairs.
    pub fn queue_pairs(&self) -> usize {
        self.qps.len()
    }

    /// Registered hugepages.
    pub fn hugepages(&self) -> usize {
        self.pages.len()
    }

    /// Total DMA bytes in use.
    pub fn dma_bytes_used(&self) -> u64 {
        self.pages.iter().map(|(_, used)| used).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_pairs_get_distinct_resources() {
        let mut rt = Runtime::open_default();
        let a = rt.create_queue_pair(8).unwrap();
        let b = rt.create_queue_pair(8).unwrap();
        assert_ne!(a.id, b.id);
        assert_ne!(a.sq_iova, b.sq_iova);
        assert_ne!(a.cq_iova, b.cq_iova);
        assert_ne!(a.hw_db_offset, b.hw_db_offset);
        assert_eq!(b.hw_db_offset - a.hw_db_offset, Runtime::DB_STRIDE);
        assert_eq!(rt.queue_pairs(), 2);
    }

    #[test]
    fn many_threads_fit_one_hugepage() {
        // 2 MiB / ~32.8 KB per pair ≈ 63 pairs per hugepage.
        let mut rt = Runtime::open_default();
        for _ in 0..63 {
            rt.create_queue_pair(1).unwrap();
        }
        assert_eq!(rt.hugepages(), 1);
        assert!(rt.dma_bytes_used() <= HUGEPAGE_BYTES);
        // The 64th pair needs another page, which we capped out.
        assert_eq!(rt.create_queue_pair(1), Err(RuntimeError::DmaMemoryExhausted));
        // Allowing growth succeeds.
        rt.create_queue_pair(2).unwrap();
        assert_eq!(rt.hugepages(), 2);
    }

    #[test]
    fn bar_window_bounds_thread_count() {
        // A tiny 2-page BAR supports exactly two doorbells.
        let mut rt = Runtime::open(2 * Runtime::DB_STRIDE);
        rt.create_queue_pair(8).unwrap();
        rt.create_queue_pair(8).unwrap();
        assert_eq!(rt.create_queue_pair(8), Err(RuntimeError::BarExhausted));
    }

    #[test]
    fn lookup_and_destroy() {
        let mut rt = Runtime::open_default();
        let qp = rt.create_queue_pair(8).unwrap();
        assert_eq!(rt.queue_pair(qp.id).unwrap(), qp);
        rt.destroy_queue_pair(qp.id).unwrap();
        assert_eq!(rt.queue_pair(qp.id), Err(RuntimeError::UnknownQueuePair));
        assert_eq!(rt.destroy_queue_pair(qp.id), Err(RuntimeError::UnknownQueuePair));
    }

    #[test]
    fn error_display() {
        assert!(RuntimeError::BarExhausted.to_string().contains("BAR"));
        assert!(RuntimeError::DmaMemoryExhausted.to_string().contains("hugepage"));
        assert_eq!(Iova(0x10).to_string(), "iova:0x10");
    }
}
