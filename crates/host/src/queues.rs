//! Per-thread command queues and doorbells.
//!
//! "Command queues of depth 1024 ... are allocated per thread" (§4.1.1).
//! The library signals the hardware by "ringing the hardware doorbell via
//! MMIO", batched to reduce PCIe transactions (§4.6); the hardware writes
//! the software doorbell in the DMA buffer, which the library polls.

use crate::command::Command;
use f4t_sim::Fifo;

/// A depth-1024 command queue (one direction of one thread's pair).
#[derive(Debug)]
pub struct CommandQueue {
    ring: Fifo<Command>,
    entry_bytes: usize,
}

impl CommandQueue {
    /// The paper's queue depth.
    pub const DEPTH: usize = 1024;

    /// Creates a queue with 16 B entries (the default format).
    pub fn new16() -> CommandQueue {
        CommandQueue { ring: Fifo::new(Self::DEPTH), entry_bytes: Command::WIRE_16 }
    }

    /// Creates a queue with the compact 8 B entries (§6).
    pub fn new8() -> CommandQueue {
        CommandQueue { ring: Fifo::new(Self::DEPTH), entry_bytes: Command::WIRE_8 }
    }

    /// Bytes each entry occupies on PCIe.
    pub fn entry_bytes(&self) -> usize {
        self.entry_bytes
    }

    /// Enqueues a command; `false` when the ring is full (the caller must
    /// back off, as the real library does).
    pub fn push(&mut self, cmd: Command) -> bool {
        self.ring.push(cmd).is_ok()
    }

    /// Dequeues the oldest command (the hardware's DMA fetch).
    pub fn pop(&mut self) -> Option<Command> {
        self.ring.pop()
    }

    /// Peeks the oldest command without removing it.
    pub fn front(&self) -> Option<&Command> {
        self.ring.front()
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Whether the ring is full.
    pub fn is_full(&self) -> bool {
        self.ring.is_full()
    }

    /// Total commands ever enqueued.
    pub fn total(&self) -> u64 {
        self.ring.total_pushed()
    }
}

/// A doorbell register: the producer advances a sequence number; the
/// consumer observes how far it may read. MMIO batching amortizes the
/// ring cost over many commands.
#[derive(Debug, Clone, Copy, Default)]
pub struct Doorbell {
    rung: u64,
    seen: u64,
    rings: u64,
}

impl Doorbell {
    /// Creates a quiet doorbell.
    pub fn new() -> Doorbell {
        Doorbell::default()
    }

    /// Producer: publish `count` new entries with one ring (the batch).
    pub fn ring(&mut self, count: u64) {
        self.rung += count;
        self.rings += 1;
    }

    /// Consumer: how many entries are newly visible; marks them seen.
    pub fn take_pending(&mut self) -> u64 {
        let n = self.rung - self.seen;
        self.seen = self.rung;
        n
    }

    /// Number of distinct MMIO rings (each one is a PCIe transaction).
    pub fn rings(&self) -> u64 {
        self.rings
    }

    /// Total entries ever published.
    pub fn published(&self) -> u64 {
        self.rung
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f4t_tcp::{FlowId, SeqNum};

    #[test]
    fn queue_depth_is_1024() {
        let mut q = CommandQueue::new16();
        let cmd = Command::Connect { flow: FlowId(1) };
        let mut n = 0;
        while q.push(cmd) {
            n += 1;
        }
        assert_eq!(n, 1024);
        assert!(q.is_full());
        assert_eq!(q.entry_bytes(), 16);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = CommandQueue::new8();
        assert_eq!(q.entry_bytes(), 8);
        for i in 0..10 {
            q.push(Command::Send { flow: FlowId(i), req: SeqNum(i * 100) });
        }
        for i in 0..10 {
            let Some(Command::Send { flow, req }) = q.pop() else { panic!() };
            assert_eq!(flow, FlowId(i));
            assert_eq!(req, SeqNum(i * 100));
        }
        assert!(q.is_empty());
        assert_eq!(q.total(), 10);
    }

    #[test]
    fn doorbell_batching() {
        let mut db = Doorbell::new();
        db.ring(32); // one MMIO for 32 commands
        db.ring(16);
        assert_eq!(db.rings(), 2);
        assert_eq!(db.take_pending(), 48);
        assert_eq!(db.take_pending(), 0, "nothing new");
        db.ring(1);
        assert_eq!(db.take_pending(), 1);
        assert_eq!(db.published(), 49);
    }
}
