//! Host CPU cycle budgets and utilization accounting.
//!
//! The evaluation host is a 2.3 GHz Xeon Gold 5118 (§5). The system
//! simulator advances in 250 MHz engine cycles, so each engine tick gives
//! every host core 9.2 CPU cycles of budget; [`CoreBudget`] accrues the
//! fraction exactly. [`CpuAccounting`] attributes spent cycles to the
//! categories of Fig. 1 / Fig. 11 (application, TCP stack, other kernel,
//! F4T library, idle).

use f4t_sim::ClockDomain;

/// Where a core's cycles went (the Fig. 11 breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuCategory {
    /// Application work (Nginx request handling, iperf bookkeeping).
    App,
    /// Kernel TCP/IP stack (Linux only; zero under F4T by construction).
    Tcp,
    /// Other kernel work (syscall entry, VFS reads, scheduling).
    Kernel,
    /// The F4T library + runtime (command/completion processing).
    F4tLib,
    /// Idle / waiting.
    Idle,
}

/// Per-core cycle accounting.
#[derive(Debug, Clone, Copy, Default)]
pub struct CpuAccounting {
    /// Application cycles.
    pub app: u64,
    /// Kernel TCP cycles.
    pub tcp: u64,
    /// Other kernel cycles.
    pub kernel: u64,
    /// F4T library cycles.
    pub lib: u64,
    /// Idle cycles.
    pub idle: u64,
}

impl CpuAccounting {
    /// Records `cycles` against `cat`.
    pub fn charge(&mut self, cat: CpuCategory, cycles: u64) {
        match cat {
            CpuCategory::App => self.app += cycles,
            CpuCategory::Tcp => self.tcp += cycles,
            CpuCategory::Kernel => self.kernel += cycles,
            CpuCategory::F4tLib => self.lib += cycles,
            CpuCategory::Idle => self.idle += cycles,
        }
    }

    /// Total cycles recorded.
    pub fn total(&self) -> u64 {
        self.app + self.tcp + self.kernel + self.lib + self.idle
    }

    /// Fraction spent in `cat` (0–1; zero when nothing recorded).
    pub fn fraction(&self, cat: CpuCategory) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let v = match cat {
            CpuCategory::App => self.app,
            CpuCategory::Tcp => self.tcp,
            CpuCategory::Kernel => self.kernel,
            CpuCategory::F4tLib => self.lib,
            CpuCategory::Idle => self.idle,
        };
        v as f64 / total as f64
    }

    /// Merges another accounting record (summing per category).
    pub fn merge(&mut self, other: &CpuAccounting) {
        self.app += other.app;
        self.tcp += other.tcp;
        self.kernel += other.kernel;
        self.lib += other.lib;
        self.idle += other.idle;
    }
}

/// A host core's cycle budget, accrued per engine tick.
///
/// # Examples
///
/// ```
/// use f4t_host::CoreBudget;
/// let mut core = CoreBudget::xeon_5118();
/// core.tick(); // one 250 MHz engine cycle = 9.2 CPU cycles
/// assert!(core.try_spend(9));
/// assert!(!core.try_spend(1));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct CoreBudget {
    /// Credit in milli-cycles to keep the 9.2 fraction exact.
    credit_milli: u64,
    rate_milli: u64,
    cap_milli: u64,
    spent: u64,
}

impl CoreBudget {
    /// A 2.3 GHz core observed from the 250 MHz engine domain.
    pub fn xeon_5118() -> CoreBudget {
        CoreBudget::new(ClockDomain::HOST_CPU, ClockDomain::ENGINE_CORE)
    }

    /// A core of `cpu` clock observed from `tick_domain`.
    pub fn new(cpu: ClockDomain, tick_domain: ClockDomain) -> CoreBudget {
        let rate_milli = cpu.freq_hz() * 1000 / tick_domain.freq_hz();
        CoreBudget {
            credit_milli: 0,
            rate_milli,
            // Cap accumulated credit at ~10 µs of work: enough to afford
            // the most expensive single application step (an Nginx
            // request is ~7 kcycles) while keeping banked idle time
            // bounded.
            cap_milli: rate_milli * 2_500,
            spent: 0,
        }
    }

    /// Accrues one engine tick of budget.
    #[inline]
    pub fn tick(&mut self) {
        self.credit_milli = (self.credit_milli + self.rate_milli).min(self.cap_milli);
    }

    /// Attempts to spend `cycles`; `false` when this tick's budget is
    /// exhausted (the work waits for the next tick).
    #[inline]
    pub fn try_spend(&mut self, cycles: u64) -> bool {
        let milli = cycles * 1000;
        if self.credit_milli >= milli {
            self.credit_milli -= milli;
            self.spent += cycles;
            true
        } else {
            false
        }
    }

    /// Whole cycles currently available.
    pub fn available(&self) -> u64 {
        self.credit_milli / 1000
    }

    /// Total cycles ever spent.
    pub fn spent(&self) -> u64 {
        self.spent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_9_2_cycles_per_tick() {
        let mut c = CoreBudget::xeon_5118();
        for _ in 0..10 {
            c.tick();
        }
        assert_eq!(c.available(), 92);
    }

    #[test]
    fn spend_and_refuse() {
        let mut c = CoreBudget::xeon_5118();
        c.tick();
        assert!(c.try_spend(9));
        assert!(!c.try_spend(1), "only 0.2 cycles left");
        c.tick();
        assert!(c.try_spend(1), "fraction carried over");
        assert_eq!(c.spent(), 10);
    }

    #[test]
    fn credit_is_capped() {
        let mut c = CoreBudget::xeon_5118();
        for _ in 0..1_000_000 {
            c.tick();
        }
        assert!(c.available() <= 9_200 * 2_500 / 1000 + 10);
        // The cap must cover the most expensive application step.
        assert!(c.available() >= 8_000);
    }

    #[test]
    fn accounting_fractions() {
        let mut a = CpuAccounting::default();
        a.charge(CpuCategory::App, 25);
        a.charge(CpuCategory::Tcp, 37);
        a.charge(CpuCategory::Kernel, 30);
        a.charge(CpuCategory::Idle, 8);
        assert_eq!(a.total(), 100);
        assert!((a.fraction(CpuCategory::Tcp) - 0.37).abs() < 1e-12);
        assert_eq!(a.fraction(CpuCategory::F4tLib), 0.0);

        let mut b = CpuAccounting::default();
        b.charge(CpuCategory::App, 25);
        a.merge(&b);
        assert_eq!(a.app, 50);
    }

    #[test]
    fn empty_accounting_is_zero() {
        let a = CpuAccounting::default();
        assert_eq!(a.fraction(CpuCategory::App), 0.0);
        assert_eq!(a.total(), 0);
    }
}
