//! The PCIe interconnect model.
//!
//! The paper's host link is PCIe Gen3 ×16. Two results hinge on it:
//! Fig. 9's 396 Mrps ceiling at 16 B requests ("bounded by the PCIe
//! bandwidth, where each 16 B request requires a 16 B command and 16 B
//! payload DMA" — 396 M × 32 B ≈ 12.7 GB/s) and Fig. 16a's observation
//! that 16 B commands alone saturate PCIe at extreme rates while 8 B
//! commands scale to ~900 Mrps.
//!
//! The model is a per-direction byte budget at the effective (post
//! protocol overhead, with batched TLPs) rate of 12.8 GB/s, accrued per
//! 250 MHz engine cycle. An optional per-transfer overhead models
//! unbatched TLP headers.

use f4t_sim::clock::BytePacer;
use f4t_sim::ClockDomain;

/// Transfer direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcieDir {
    /// Host memory → device (command fetch, TX payload DMA reads).
    HostToDevice,
    /// Device → host memory (completions, RX payload DMA writes).
    DeviceToHost,
}

/// The PCIe link.
#[derive(Debug, Clone)]
pub struct PcieModel {
    h2d: BytePacer,
    d2h: BytePacer,
    per_transfer_overhead: u64,
    h2d_bytes: u64,
    d2h_bytes: u64,
    refusals: u64,
}

/// Effective per-direction bandwidth (bytes/s): Gen3 ×16 ≈ 15.75 GB/s raw,
/// ~12.8 GB/s after TLP/DLLP framing with batched descriptors. This is
/// the calibration anchor for Fig. 9's 396 Mrps (DESIGN.md §5).
pub const PCIE_EFFECTIVE_BPS: u64 = 12_900_000_000;

impl PcieModel {
    /// Creates the default Gen3 ×16 model clocked at 250 MHz with fully
    /// batched transfers (no per-transfer overhead).
    pub fn gen3x16() -> PcieModel {
        PcieModel::new(PCIE_EFFECTIVE_BPS, 0)
    }

    /// Creates a model with explicit effective bandwidth and a fixed
    /// per-transfer overhead in bytes (unbatched TLP headers).
    pub fn new(bytes_per_sec: u64, per_transfer_overhead: u64) -> PcieModel {
        let freq = ClockDomain::ENGINE_CORE.freq_hz();
        PcieModel {
            h2d: BytePacer::new(bytes_per_sec, freq, 8192),
            d2h: BytePacer::new(bytes_per_sec, freq, 8192),
            per_transfer_overhead,
            h2d_bytes: 0,
            d2h_bytes: 0,
            refusals: 0,
        }
    }

    /// Accrues one engine cycle of budget in both directions.
    pub fn tick(&mut self) {
        self.h2d.tick();
        self.d2h.tick();
    }

    /// Attempts a transfer of `bytes`; `false` when the direction's
    /// budget is exhausted this cycle (the DMA engine retries).
    pub fn try_transfer(&mut self, dir: PcieDir, bytes: u64) -> bool {
        let total = bytes + self.per_transfer_overhead;
        let (pacer, counter) = match dir {
            PcieDir::HostToDevice => (&mut self.h2d, &mut self.h2d_bytes),
            PcieDir::DeviceToHost => (&mut self.d2h, &mut self.d2h_bytes),
        };
        if pacer.try_consume(total) {
            *counter += total;
            true
        } else {
            self.refusals += 1;
            false
        }
    }

    /// Bytes moved host→device.
    pub fn h2d_bytes(&self) -> u64 {
        self.h2d_bytes
    }

    /// Bytes moved device→host.
    pub fn d2h_bytes(&self) -> u64 {
        self.d2h_bytes
    }

    /// Budget-limited refusals (indicates the PCIe ceiling was hit).
    pub fn refusals(&self) -> u64 {
        self.refusals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_51_bytes_per_cycle() {
        let mut p = PcieModel::gen3x16();
        p.tick();
        // 12.9 GB/s / 250 MHz = 51.6 B/cycle.
        assert!(p.try_transfer(PcieDir::HostToDevice, 51));
        assert!(!p.try_transfer(PcieDir::HostToDevice, 51));
    }

    #[test]
    fn directions_are_independent() {
        let mut p = PcieModel::gen3x16();
        p.tick();
        assert!(p.try_transfer(PcieDir::HostToDevice, 51));
        assert!(p.try_transfer(PcieDir::DeviceToHost, 51), "other direction untouched");
        assert_eq!(p.h2d_bytes(), 51);
        assert_eq!(p.d2h_bytes(), 51);
    }

    #[test]
    fn sixteen_byte_requests_cap_near_400mrps() {
        // Fig. 9's ceiling: command (16 B) + payload (16 B) per request,
        // host→device. Count how many fit in 1 ms of budget.
        let mut p = PcieModel::gen3x16();
        let mut served = 0u64;
        for _ in 0..250_000 {
            p.tick();
            while p.try_transfer(PcieDir::HostToDevice, 32) {
                served += 1;
            }
        }
        let mrps = served as f64 / 1e3; // per ms -> Mrps
        assert!((390.0..410.0).contains(&mrps), "got {mrps:.0} Mrps");
    }

    #[test]
    fn per_transfer_overhead_charged() {
        let mut p = PcieModel::new(12_800_000_000, 24);
        p.tick();
        assert!(p.try_transfer(PcieDir::HostToDevice, 27)); // 27+24=51
        assert!(!p.try_transfer(PcieDir::HostToDevice, 0));
        assert!(p.refusals() > 0);
    }
}
