//! The F4T library: the POSIX-socket shim.
//!
//! "F4T library allows applications to utilize F4T without any
//! modifications by providing the same functionality as POSIX socket
//! API... socket API calls are linked to the F4T library [and run] as the
//! same thread as the application thread, changing the socket API from
//! system calls to function calls. Only a handful amount of metadata,
//! such as TCP window pointers, are stored and managed in the software"
//! (§4.1.1).
//!
//! [`F4tLib`] is that metadata plus the command queue: `send()` checks
//! send-buffer space against the ACKed pointer and enqueues a 16 B
//! command carrying the new REQ pointer; completions flow back as pointer
//! updates. Blocking/non-blocking semantics fall out naturally: when the
//! buffer is full the call returns [`SendError::BufferFull`] and the
//! caller retries (or sleeps, §4.6).

use crate::command::{Command, Completion};
use crate::queues::{CommandQueue, Doorbell};
use f4t_tcp::{FlowId, SeqNum, TCP_BUFFER};
use std::collections::HashMap;

/// Why a `send()` could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The 512 KB send buffer is full (unACKed data): blocking sockets
    /// wait, non-blocking return EAGAIN (§4.1.1).
    BufferFull,
    /// The command queue is full (doorbell backpressure).
    QueueFull,
    /// The connection is not established.
    NotConnected,
    /// Unknown flow (no such socket).
    UnknownFlow,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::BufferFull => write!(f, "send buffer full (EAGAIN)"),
            SendError::QueueFull => write!(f, "command queue full"),
            SendError::NotConnected => write!(f, "socket not connected"),
            SendError::UnknownFlow => write!(f, "no such socket"),
        }
    }
}

impl std::error::Error for SendError {}

/// Per-socket metadata the library keeps in software.
#[derive(Debug, Clone, Copy)]
pub struct SocketState {
    /// Peer-ACKed pointer: send-buffer space frees up to here.
    pub acked: SeqNum,
    /// User request pointer (data the app asked to send).
    pub req: SeqNum,
    /// In-order received pointer (data available to `recv()`).
    pub received: SeqNum,
    /// Consumed pointer (data the app has read).
    pub consumed: SeqNum,
    /// Established?
    pub connected: bool,
    /// Peer sent FIN.
    pub eof: bool,
    /// Fully closed.
    pub closed: bool,
}

impl SocketState {
    fn new(isn: SeqNum, connected: bool) -> SocketState {
        SocketState {
            acked: isn,
            req: isn,
            received: isn,
            consumed: isn,
            connected,
            eof: false,
            closed: false,
        }
    }

    /// Unread bytes available to `recv()`.
    pub fn readable(&self) -> u32 {
        self.received.since(self.consumed)
    }

    /// Free send-buffer space.
    pub fn send_space(&self) -> u32 {
        TCP_BUFFER.saturating_sub(self.req.since(self.acked))
    }
}

/// One application thread's view of the F4T library.
#[derive(Debug)]
pub struct F4tLib {
    sockets: HashMap<FlowId, SocketState>,
    /// Software→hardware command ring.
    pub commands: CommandQueue,
    /// The MMIO doorbell (batched).
    pub doorbell: Doorbell,
    sends: u64,
    completions: u64,
    eagain: u64,
}

impl F4tLib {
    /// Creates a library instance with 16 B commands.
    pub fn new() -> F4tLib {
        F4tLib::with_queue(CommandQueue::new16())
    }

    /// Creates a library instance with the compact 8 B commands (§6).
    pub fn new_compact() -> F4tLib {
        F4tLib::with_queue(CommandQueue::new8())
    }

    fn with_queue(commands: CommandQueue) -> F4tLib {
        F4tLib {
            sockets: HashMap::new(),
            commands,
            doorbell: Doorbell::new(),
            sends: 0,
            completions: 0,
            eagain: 0,
        }
    }

    /// Switches this library instance to the compact 8 B command format
    /// (§6's scaling experiment). Must be called while the command ring
    /// is empty.
    ///
    /// # Panics
    ///
    /// Panics if commands are queued.
    pub fn switch_to_compact(&mut self) {
        assert!(self.commands.is_empty(), "drain the command ring first");
        self.commands = CommandQueue::new8();
    }

    /// Registers a socket (post-`socket()`/`accept()`); `connected` is
    /// true when the handshake is already complete (pre-established test
    /// flows).
    pub fn register(&mut self, flow: FlowId, isn: SeqNum, connected: bool) {
        self.sockets.insert(flow, SocketState::new(isn, connected));
    }

    /// The socket state, if any.
    pub fn socket(&self, flow: FlowId) -> Option<&SocketState> {
        self.sockets.get(&flow)
    }

    /// `connect()`: enqueue the handshake command.
    ///
    /// # Errors
    ///
    /// [`SendError::UnknownFlow`] or [`SendError::QueueFull`].
    pub fn connect(&mut self, flow: FlowId) -> Result<(), SendError> {
        if !self.sockets.contains_key(&flow) {
            return Err(SendError::UnknownFlow);
        }
        if !self.commands.push(Command::Connect { flow }) {
            return Err(SendError::QueueFull);
        }
        self.doorbell.ring(1);
        Ok(())
    }

    /// `close()`: enqueue the teardown command.
    ///
    /// # Errors
    ///
    /// [`SendError::UnknownFlow`] or [`SendError::QueueFull`].
    pub fn close(&mut self, flow: FlowId) -> Result<(), SendError> {
        if !self.sockets.contains_key(&flow) {
            return Err(SendError::UnknownFlow);
        }
        if !self.commands.push(Command::Close { flow }) {
            return Err(SendError::QueueFull);
        }
        self.doorbell.ring(1);
        Ok(())
    }

    /// `send(len)`: advance the REQ pointer by `len` bytes and enqueue
    /// the command carrying the absolute pointer (§4.2.1).
    ///
    /// # Errors
    ///
    /// Any [`SendError`]; on error no state changes.
    pub fn send(&mut self, flow: FlowId, len: u32) -> Result<SeqNum, SendError> {
        let sock = self.sockets.get_mut(&flow).ok_or(SendError::UnknownFlow)?;
        if !sock.connected || sock.closed {
            return Err(SendError::NotConnected);
        }
        if sock.send_space() < len {
            self.eagain += 1;
            return Err(SendError::BufferFull);
        }
        let new_req = sock.req.add(len);
        if !self.commands.push(Command::Send { flow, req: new_req }) {
            self.eagain += 1;
            return Err(SendError::QueueFull);
        }
        sock.req = new_req;
        self.sends += 1;
        self.doorbell.ring(1);
        Ok(new_req)
    }

    /// `recv(len)`: consume up to `len` readable bytes, returning the
    /// number consumed; enqueues the window-opening pointer update when
    /// data was taken.
    pub fn recv(&mut self, flow: FlowId, len: u32) -> u32 {
        let Some(sock) = self.sockets.get_mut(&flow) else { return 0 };
        let take = sock.readable().min(len);
        if take == 0 {
            return 0;
        }
        let new_consumed = sock.consumed.add(take);
        if !self.commands.push(Command::RecvConsumed { flow, consumed: new_consumed }) {
            return 0; // queue full: the app retries the recv()
        }
        sock.consumed = new_consumed;
        self.doorbell.ring(1);
        take
    }

    /// Processes one hardware completion (a 16 B command the runtime
    /// polled from the DMA buffer).
    pub fn on_completion(&mut self, c: Completion) {
        self.completions += 1;
        match c {
            Completion::Connected { flow } => {
                if let Some(s) = self.sockets.get_mut(&flow) {
                    s.connected = true;
                }
            }
            Completion::Acked { flow, upto } => {
                if let Some(s) = self.sockets.get_mut(&flow) {
                    s.acked = s.acked.max_seq(upto);
                }
            }
            Completion::Received { flow, upto } => {
                if let Some(s) = self.sockets.get_mut(&flow) {
                    s.received = s.received.max_seq(upto);
                }
            }
            Completion::Eof { flow } => {
                if let Some(s) = self.sockets.get_mut(&flow) {
                    s.eof = true;
                }
            }
            Completion::Closed { flow } => {
                if let Some(s) = self.sockets.get_mut(&flow) {
                    s.closed = true;
                    s.connected = false;
                }
            }
            Completion::Accepted { flow } => {
                // A new server-side socket: ISN pointers arrive with the
                // first Received/Acked completions; register lazily.
                self.sockets.entry(flow).or_insert_with(|| SocketState::new(SeqNum::ZERO, false));
            }
        }
    }

    /// Seeds the server-side socket pointers once the engine reports the
    /// connection's sequence base (used by `accept()` paths in the system
    /// layer).
    pub fn seed_pointers(&mut self, flow: FlowId, isn: SeqNum) {
        if let Some(s) = self.sockets.get_mut(&flow) {
            *s = SocketState { connected: s.connected, ..SocketState::new(isn, s.connected) };
        }
    }

    /// Registers an accepted server-side socket with asymmetric sequence
    /// bases: our transmit direction starts at `snd_isn`, the peer's at
    /// `rcv_isn` (the directions pick independent ISNs, so a single-ISN
    /// [`Self::register`] cannot represent an accepted flow).
    pub fn register_accepted(&mut self, flow: FlowId, snd_isn: SeqNum, rcv_isn: SeqNum) {
        self.sockets.insert(
            flow,
            SocketState {
                acked: snd_isn,
                req: snd_isn,
                received: rcv_isn,
                consumed: rcv_isn,
                connected: true,
                eof: false,
                closed: false,
            },
        );
    }

    /// Forgets a socket entirely (post-close reclamation, so flow-id
    /// reuse under churn cannot alias stale pointers).
    pub fn deregister(&mut self, flow: FlowId) {
        self.sockets.remove(&flow);
    }

    /// Re-seeds both directions once the engine reports the handshake
    /// complete: `snd` is our first data byte, `rcv` the peer's (the
    /// SYN and SYN|ACK each consume one sequence number, so bases
    /// registered before Established are provisional). A direction
    /// with in-flight progress is left alone — re-basing would orphan
    /// the outstanding transfer.
    pub fn seed_handshake(&mut self, flow: FlowId, snd: SeqNum, rcv: SeqNum) {
        if let Some(s) = self.sockets.get_mut(&flow) {
            if s.req == s.acked {
                s.req = snd;
                s.acked = snd;
            }
            if s.received == s.consumed {
                s.received = rcv;
                s.consumed = rcv;
            }
        }
    }

    /// Peeks the oldest outgoing command (the runtime's DMA view).
    pub fn commands_front(&self) -> Option<&Command> {
        self.commands.front()
    }

    /// Pops the oldest outgoing command (DMA fetch complete).
    pub fn commands_pop(&mut self) -> Option<Command> {
        self.commands.pop()
    }

    /// Bytes one command entry occupies on PCIe (16 or 8).
    pub fn entry_bytes(&self) -> usize {
        self.commands.entry_bytes()
    }

    /// `send()` calls completed.
    pub fn sends(&self) -> u64 {
        self.sends
    }

    /// Completions processed.
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// EAGAIN-style rejections (buffer or queue full).
    pub fn eagain(&self) -> u64 {
        self.eagain
    }
}

impl Default for F4tLib {
    fn default() -> F4tLib {
        F4tLib::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_with_flow() -> (F4tLib, FlowId) {
        let mut lib = F4tLib::new();
        let flow = FlowId(1);
        lib.register(flow, SeqNum(1000), true);
        (lib, flow)
    }

    #[test]
    fn send_advances_pointer_and_enqueues() {
        let (mut lib, flow) = lib_with_flow();
        let req = lib.send(flow, 300).unwrap();
        assert_eq!(req, SeqNum(1300));
        let Some(Command::Send { req, .. }) = lib.commands.pop() else { panic!() };
        assert_eq!(req, SeqNum(1300), "absolute pointer, not a length");
        assert_eq!(lib.sends(), 1);
        assert_eq!(lib.doorbell.published(), 1);
    }

    #[test]
    fn buffer_full_returns_eagain_until_acked() {
        let (mut lib, flow) = lib_with_flow();
        // Fill the 512 KB buffer.
        for _ in 0..8 {
            lib.send(flow, TCP_BUFFER / 8).unwrap();
        }
        assert_eq!(lib.send(flow, 1), Err(SendError::BufferFull));
        assert_eq!(lib.eagain(), 1);
        // The peer ACKs half: space frees.
        lib.on_completion(Completion::Acked { flow, upto: SeqNum(1000).add(TCP_BUFFER / 2) });
        assert!(lib.send(flow, TCP_BUFFER / 4).is_ok());
    }

    #[test]
    fn recv_consumes_and_opens_window() {
        let (mut lib, flow) = lib_with_flow();
        assert_eq!(lib.recv(flow, 100), 0, "nothing received yet");
        lib.on_completion(Completion::Received { flow, upto: SeqNum(1000).add(500) });
        assert_eq!(lib.socket(flow).unwrap().readable(), 500);
        assert_eq!(lib.recv(flow, 300), 300);
        assert_eq!(lib.socket(flow).unwrap().readable(), 200);
        // Drain the Send-free queue: first command should be the pointer
        // update.
        let Some(Command::RecvConsumed { consumed, .. }) = lib.commands.pop() else { panic!() };
        assert_eq!(consumed, SeqNum(1300));
    }

    #[test]
    fn recv_caps_at_available() {
        let (mut lib, flow) = lib_with_flow();
        lib.on_completion(Completion::Received { flow, upto: SeqNum(1000).add(50) });
        assert_eq!(lib.recv(flow, 1000), 50);
    }

    #[test]
    fn not_connected_rejected() {
        let mut lib = F4tLib::new();
        lib.register(FlowId(2), SeqNum(0), false);
        assert_eq!(lib.send(FlowId(2), 10), Err(SendError::NotConnected));
        assert_eq!(lib.send(FlowId(3), 10), Err(SendError::UnknownFlow));
        lib.on_completion(Completion::Connected { flow: FlowId(2) });
        assert!(lib.send(FlowId(2), 10).is_ok());
    }

    #[test]
    fn close_and_eof_lifecycle() {
        let (mut lib, flow) = lib_with_flow();
        lib.on_completion(Completion::Eof { flow });
        assert!(lib.socket(flow).unwrap().eof);
        lib.close(flow).unwrap();
        lib.on_completion(Completion::Closed { flow });
        assert!(lib.socket(flow).unwrap().closed);
        assert_eq!(lib.send(flow, 1), Err(SendError::NotConnected));
    }

    #[test]
    fn stale_completions_do_not_regress_pointers() {
        let (mut lib, flow) = lib_with_flow();
        lib.on_completion(Completion::Received { flow, upto: SeqNum(1500) });
        lib.on_completion(Completion::Received { flow, upto: SeqNum(1200) });
        assert_eq!(lib.socket(flow).unwrap().received, SeqNum(1500));
        lib.on_completion(Completion::Acked { flow, upto: SeqNum(1100) });
        lib.on_completion(Completion::Acked { flow, upto: SeqNum(1050) });
        assert_eq!(lib.socket(flow).unwrap().acked, SeqNum(1100));
    }

    #[test]
    fn accepted_registration_uses_asymmetric_bases() {
        let mut lib = F4tLib::new();
        let flow = FlowId(7);
        lib.register_accepted(flow, SeqNum(5000), SeqNum(9000));
        let s = *lib.socket(flow).unwrap();
        assert!(s.connected);
        assert_eq!(s.req, SeqNum(5000));
        assert_eq!(s.consumed, SeqNum(9000));
        lib.on_completion(Completion::Received { flow, upto: SeqNum(9100) });
        assert_eq!(lib.socket(flow).unwrap().readable(), 100);
        assert!(lib.send(flow, 64).is_ok(), "send side uses its own base");
        lib.deregister(flow);
        assert!(lib.socket(flow).is_none());
        assert_eq!(lib.send(flow, 1), Err(SendError::UnknownFlow));
    }

    #[test]
    fn error_display() {
        assert!(SendError::BufferFull.to_string().contains("EAGAIN"));
        assert!(SendError::UnknownFlow.to_string().contains("socket"));
    }
}
