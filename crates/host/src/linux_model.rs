//! The calibrated Linux kernel TCP-stack cost model.
//!
//! Every Linux-vs-F4T figure in the paper compares CPU-cycle budgets. We
//! have no kernel to run, so Linux is a cost model whose constants are
//! anchored at the paper's *own measured points* (see the substitution
//! table in DESIGN.md):
//!
//! * bulk 128 B send over one flow per core, TSO+checksum offload:
//!   8 cores reach 8.3 Gbps (Fig. 8a) ⇒ ≈2270 cycles/request;
//! * round-robin over 16 flows/core (no cross-call batching, cold
//!   per-flow state): 1 core 0.126 Gbps, 8 cores 0.833 Gbps (Fig. 8b)
//!   ⇒ ≈19–23 kcycles/request with a contention term;
//! * Nginx with 256 B responses: 37 % of cycles in TCP (Fig. 1),
//!   F4T removes them entirely and yields 2.8× application cycles
//!   (Fig. 11) ⇒ a 20 kcycle/request budget split 25 % app / 37 % TCP /
//!   28 % other kernel / 10 % softirq-idle overhead.

use crate::cpu::CpuAccounting;
use f4t_tcp::WIRE_OVERHEAD;

/// Host CPU frequency (Xeon Gold 5118).
pub const CPU_HZ: u64 = 2_300_000_000;

/// The Linux stack model. Stateless: all methods are derived from the
/// calibrated constants, so harnesses can query arbitrary design points.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinuxModel;

/// Nginx per-request cycle budget on Linux, by category.
#[derive(Debug, Clone, Copy)]
pub struct NginxCosts {
    /// Application (request parse + response build).
    pub app: u64,
    /// VFS / filesystem read of the HTML payload.
    pub vfs: u64,
    /// Kernel TCP/IP stack.
    pub tcp: u64,
    /// Other kernel (syscall entry/exit, epoll, scheduling).
    pub kernel_other: u64,
}

impl NginxCosts {
    /// The calibrated Linux budget (sums to 20 kcycles ⇒ 115 krps/core).
    pub fn linux() -> NginxCosts {
        NginxCosts { app: 5_000, vfs: 2_000, tcp: 7_400, kernel_other: 5_600 }
    }

    /// Total cycles per request.
    pub fn total(&self) -> u64 {
        self.app + self.vfs + self.tcp + self.kernel_other
    }
}

impl LinuxModel {
    /// Cycles one `send()` of `bytes` costs in the bulk single-flow
    /// pattern (TSO batches packets; cost is syscall + copy dominated).
    /// Anchor: 128 B ⇒ ~2266 cycles.
    pub fn bulk_cycles_per_request(bytes: u32) -> u64 {
        2_100 + (u64::from(bytes) * 13) / 10
    }

    /// Cycles per request in the round-robin pattern: every call touches
    /// a different flow, defeating batching and thrashing per-flow state;
    /// lock/cache contention grows mildly with core count.
    /// Anchors: 1 core ⇒ ~18.7 k, 8 cores ⇒ ~23 k.
    pub fn round_robin_cycles_per_request(bytes: u32, cores: u32) -> u64 {
        let base = 18_200 + (u64::from(bytes) * 4);
        base + u64::from(cores.saturating_sub(1)) * 660
    }

    /// Achievable request rate (requests/second) given a per-request
    /// cycle cost and core count — CPU-bound side only.
    pub fn rps(cycles_per_request: u64, cores: u32) -> f64 {
        (CPU_HZ as f64 * f64::from(cores)) / cycles_per_request as f64
    }

    /// Goodput ceiling of a 100 Gbps link for `bytes`-sized application
    /// payloads carried one-per-packet (the paper's §5.1 arithmetic).
    pub fn link_goodput_cap_gbps(bytes: u32) -> f64 {
        100.0 * f64::from(bytes) / f64::from(bytes + WIRE_OVERHEAD)
    }

    /// Bulk-transfer goodput in Gbps for Linux: CPU-bound rps × request
    /// size, capped by the link (TSO ⇒ MSS-sized packets on the wire, so
    /// the cap uses MSS framing).
    pub fn bulk_goodput_gbps(bytes: u32, cores: u32) -> f64 {
        let rps = Self::rps(Self::bulk_cycles_per_request(bytes), cores);
        let gbps = rps * f64::from(bytes) * 8.0 / 1e9;
        let cap = Self::link_goodput_cap_gbps(f4t_tcp::MSS);
        gbps.min(cap)
    }

    /// Round-robin goodput in Gbps (small packets on the wire: per-packet
    /// framing cap applies at the request size).
    pub fn round_robin_goodput_gbps(bytes: u32, cores: u32) -> f64 {
        let rps = Self::rps(Self::round_robin_cycles_per_request(bytes, cores), cores);
        let gbps = rps * f64::from(bytes) * 8.0 / 1e9;
        gbps.min(Self::link_goodput_cap_gbps(bytes))
    }

    /// Nginx requests/second on Linux for a core count (CPU-bound).
    pub fn nginx_rps(cores: u32) -> f64 {
        Self::rps(NginxCosts::linux().total(), cores)
    }

    /// Echo (128 B ping-pong) cycles per request on Linux: like round
    /// robin but with a receive path too (recv + epoll wake + send).
    pub fn echo_cycles_per_request(cores: u32) -> u64 {
        Self::round_robin_cycles_per_request(128, cores) + 6_000
    }

    /// Builds the Fig. 1 / Fig. 11 Linux CPU-utilization breakdown for a
    /// fully loaded Nginx core.
    pub fn nginx_breakdown() -> CpuAccounting {
        let c = NginxCosts::linux();
        let mut acc = CpuAccounting::default();
        acc.app += c.app;
        acc.tcp += c.tcp;
        acc.kernel += c.vfs + c.kernel_other;
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_anchor_8_cores_8_3_gbps() {
        // The Fig. 8a anchor: 8 cores, 128 B requests, ~8.3 Gbps.
        let gbps = LinuxModel::bulk_goodput_gbps(128, 8);
        assert!((7.9..8.7).contains(&gbps), "got {gbps:.2} Gbps");
    }

    #[test]
    fn bulk_64b_roughly_half() {
        let g128 = LinuxModel::bulk_goodput_gbps(128, 8);
        let g64 = LinuxModel::bulk_goodput_gbps(64, 8);
        assert!(g64 < g128 && g64 > g128 * 0.4);
    }

    #[test]
    fn round_robin_anchors() {
        // Fig. 8b: 1 core ≈ 0.126 Gbps, 8 cores ≈ 0.833 Gbps at 128 B.
        let g1 = LinuxModel::round_robin_goodput_gbps(128, 1);
        let g8 = LinuxModel::round_robin_goodput_gbps(128, 8);
        assert!((0.11..0.14).contains(&g1), "1 core: {g1:.3}");
        assert!((0.75..0.92).contains(&g8), "8 cores: {g8:.3}");
    }

    #[test]
    fn nginx_tcp_share_is_37_percent() {
        // The Fig. 1 headline.
        let acc = LinuxModel::nginx_breakdown();
        let tcp = acc.fraction(crate::cpu::CpuCategory::Tcp);
        assert!((tcp - 0.37).abs() < 0.01, "TCP share {tcp:.2}");
        let app = acc.fraction(crate::cpu::CpuCategory::App);
        assert!((app - 0.25).abs() < 0.01, "app share {app:.2}");
    }

    #[test]
    fn f4t_nginx_speedup_is_2_8x() {
        // Removing TCP and replacing syscalls with the library budget
        // reproduces Fig. 10/11's 2.8×.
        let linux = NginxCosts::linux().total();
        let c = NginxCosts::linux();
        // F4T: app + vfs stay; TCP gone; syscalls → ~2 commands + ~3
        // completions of library work.
        let f4t = c.app
            + c.vfs
            + 2 * crate::LIB_CMD_CYCLES
            + 3 * crate::LIB_COMPLETION_CYCLES;
        let speedup = linux as f64 / f4t as f64;
        assert!((2.6..3.0).contains(&speedup), "speedup {speedup:.2}");
    }

    #[test]
    fn link_cap_arithmetic_matches_paper() {
        // §5.1: "with 128 B packets, the goodput is 100 × 128 ÷ (128+78)
        // = 62.1 Gbps".
        let cap = LinuxModel::link_goodput_cap_gbps(128);
        assert!((cap - 62.1).abs() < 0.1, "got {cap:.1}");
    }

    #[test]
    fn rps_scales_linearly_with_cores() {
        let r1 = LinuxModel::nginx_rps(1);
        let r4 = LinuxModel::nginx_rps(4);
        assert!((r4 / r1 - 4.0).abs() < 1e-9);
        assert!((100_000.0..130_000.0).contains(&r1), "1-core nginx {r1:.0} rps");
    }

    #[test]
    fn echo_costs_exceed_round_robin() {
        assert!(
            LinuxModel::echo_cycles_per_request(8)
                > LinuxModel::round_robin_cycles_per_request(128, 8)
        );
    }
}
