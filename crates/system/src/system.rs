//! The two-node F4T testbed.

use crate::link::{DuplexLink, A_TO_B, B_TO_A};
use crate::metrics::Metrics;
use crate::node::{Driver, Node};
use f4t_core::EngineConfig;
use f4t_host::CpuAccounting;
use f4t_sim::{Histogram, MetricsRegistry};
use f4t_tcp::pcap::PcapWriter;
use f4t_tcp::{FlowId, FourTuple, SeqNum};
use f4t_netsim::Impairments;
use f4t_workloads::{
    BulkReceiver, BulkSender, ChurnClient, ChurnServer, EchoClient, EchoServer, HttpClient,
    HttpServer, IncastSender, RoundRobinSender, SinkServer, SlowlorisClient, CHURN_REQUEST_BYTES,
};
use std::net::Ipv4Addr;

/// Engine-core period in nanoseconds.
pub(crate) const CYCLE_NS: u64 = 4;

/// Packet-capture cap: recording stops after this many packets so bulk
/// runs cannot balloon the in-memory capture (tcpdump `-c` style).
const PCAP_MAX_PACKETS: u64 = 10_000;

/// Sustains a target population of short-lived connections: every tick
/// it tops the client node back up to `target_live` in-flight lifecycles
/// (bounded opens per tick so connection setup stays paced rather than
/// bursting the command rings).
#[derive(Debug)]
struct ChurnManager {
    target_live: usize,
    max_opens_per_tick: usize,
    /// Monotone tuple index: every connection gets a fresh 4-tuple so a
    /// closing flow's tuple is never reused while it drains.
    next_tuple: u32,
    core_rr: usize,
    cores: usize,
}

impl ChurnManager {
    fn step(&mut self, a: &mut Node) {
        let live = a.churn_live();
        let mut opens = 0;
        while live + opens < self.target_live && opens < self.max_opens_per_tick {
            let core = self.core_rr % self.cores;
            if a.open_active_flow(tuple(self.next_tuple), core).is_none() {
                break; // flow table or command ring full: retry next tick
            }
            self.next_tuple = self.next_tuple.wrapping_add(1);
            self.core_rr += 1;
            opens += 1;
        }
    }
}

/// Two nodes connected by a 100 Gbps link, running a workload.
#[derive(Debug)]
pub struct F4tSystem {
    /// The client/sender node.
    pub a: Node,
    /// The server/receiver node.
    pub b: Node,
    link: DuplexLink,
    cycle: u64,
    /// Connection churn generator (churnstorm workload only).
    churn: Option<ChurnManager>,
    /// Optional packet capture of link traffic (both directions, capped
    /// at [`PCAP_MAX_PACKETS`]); see [`F4tSystem::enable_pcap`].
    pcap: Option<PcapWriter<Vec<u8>>>,
}

fn tuple(i: u32) -> FourTuple {
    // Unique 4-tuples: vary source port and, beyond 60k flows, source IP.
    FourTuple::new(
        Ipv4Addr::from(0x0a00_0001 + (i / 60_000) * 256),
        (i % 60_000 + 1_024) as u16,
        Ipv4Addr::new(10, 1, 0, 2),
        80,
    )
}

impl F4tSystem {
    /// Wires two freshly configured nodes together.
    pub fn new(a: Node, b: Node) -> F4tSystem {
        F4tSystem { a, b, link: DuplexLink::hundred_gig(), cycle: 0, churn: None, pcap: None }
    }

    /// Attaches a hostile-network impairment profile to the link (both
    /// directions, independent decision streams). Call after
    /// [`F4tSystem::set_link`] if both are used.
    pub fn set_impairments(&mut self, imp: Impairments) {
        self.link.set_impairments(imp);
    }

    /// Total link impairment events (loss + duplication + reordering)
    /// across both directions — non-zero proves a profile engaged.
    pub fn impairment_events(&self) -> u64 {
        self.link.impairment_events()
    }

    /// Starts capturing link traffic (both directions) as a libpcap
    /// stream in memory, truncating payloads at `payload_cap` bytes
    /// (snaplen). Recording stops after [`PCAP_MAX_PACKETS`] packets.
    pub fn enable_pcap(&mut self, payload_cap: u32) {
        // Writing into a Vec cannot fail.
        self.pcap = PcapWriter::new(Vec::new(), payload_cap).ok();
    }

    /// Packets captured so far (0 when capture is off).
    pub fn pcap_packets(&self) -> u64 {
        self.pcap.as_ref().map_or(0, PcapWriter::packets)
    }

    /// Finishes the capture and returns the pcap bytes, ready to write
    /// to disk and open in Wireshark. `None` when capture was never
    /// enabled.
    pub fn take_pcap(&mut self) -> Option<Vec<u8>> {
        self.pcap.take().and_then(|w| w.finish().ok())
    }

    /// Current simulation time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.cycle * CYCLE_NS
    }

    /// Replaces the link (e.g. an effectively infinite one for the §6
    /// header-processing experiment, which removes the link bottleneck).
    pub fn set_link(&mut self, link: DuplexLink) {
        self.link = link;
    }

    /// Opens an established flow pair on both nodes; `a_core`/`b_core`
    /// own it on each side. Returns the (a, b) flow ids.
    pub fn open_pair(&mut self, i: u32, a_core: usize, b_core: usize) -> (FlowId, FlowId) {
        let t = tuple(i);
        let isn = SeqNum(1_000);
        let fa = self.a.add_established_flow(t, isn, a_core).expect("flow capacity");
        let fb = self.b.add_established_flow(t.reversed(), isn, b_core).expect("flow capacity");
        (fa, fb)
    }

    /// Advances one engine cycle across both nodes and the link.
    pub fn tick(&mut self) {
        let now = self.now_ns();
        self.link.tick();
        self.a.tick(now);
        self.b.tick(now);
        // Churn opens happen after the node ticks: any flow ids the
        // engine freed this tick were already fully forgotten by the
        // node's teardown interception, so reissued ids start clean.
        if let Some(m) = &mut self.churn {
            m.step(&mut self.a);
        }
        // Drain TX at line rate (MAC backpressure otherwise).
        while let Some(seg) = self.a.engine.peek_tx() {
            if self.link.can_send(A_TO_B, seg.wire_len()) {
                let Some(seg) = self.a.engine.pop_tx() else { break };
                if let Some(w) = &mut self.pcap {
                    if w.packets() < PCAP_MAX_PACKETS {
                        let _ = w.record(now, &seg, self.a.engine.mac, self.b.engine.mac);
                    }
                }
                self.link.send(A_TO_B, seg, now);
            } else {
                break;
            }
        }
        while let Some(seg) = self.b.engine.peek_tx() {
            if self.link.can_send(B_TO_A, seg.wire_len()) {
                let Some(seg) = self.b.engine.pop_tx() else { break };
                if let Some(w) = &mut self.pcap {
                    if w.packets() < PCAP_MAX_PACKETS {
                        let _ = w.record(now, &seg, self.b.engine.mac, self.a.engine.mac);
                    }
                }
                self.link.send(B_TO_A, seg, now);
            } else {
                break;
            }
        }
        // Deliver due segments.
        while let Some(seg) = self.link.deliver(A_TO_B, now) {
            self.b.engine.push_rx(seg);
        }
        while let Some(seg) = self.link.deliver(B_TO_A, now) {
            self.a.engine.push_rx(seg);
        }
        self.cycle += 1;
    }

    /// Runs `n` cycles.
    pub fn run_cycles(&mut self, n: u64) {
        for _ in 0..n {
            self.tick();
        }
    }

    /// Runs for `ns` nanoseconds of simulated time.
    pub fn run_ns(&mut self, ns: u64) {
        self.run_cycles(ns / CYCLE_NS);
    }

    fn client_latency(&self) -> Histogram {
        let mut h = Histogram::new();
        for core in 0..self.a.core_count() {
            match self.a.driver(core) {
                Driver::EchoClient { client, .. } => h.merge(&client.latency),
                Driver::HttpClient { client, .. } => h.merge(&client.latency),
                _ => {}
            }
        }
        h
    }

    /// FtScope snapshot over both engines: client-side metrics under
    /// `a.engine.*`, server-side under `b.engine.*`.
    pub fn telemetry(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        self.a.engine.collect("a.engine", &mut reg);
        self.b.engine.collect("b.engine", &mut reg);
        reg
    }

    /// Warm up for `warmup_ns`, then measure for `window_ns` and return
    /// the window's metrics. Request counts and goodput are window
    /// deltas; latency percentiles cover the whole run (cumulative
    /// histograms), which is conservative for the tail.
    pub fn measure(&mut self, warmup_ns: u64, window_ns: u64) -> Metrics {
        self.run_ns(warmup_ns);
        let telem0 = self.telemetry();
        let req0 = self.a.requests();
        let bytes0 = self.b.consumed_bytes() + self.a.consumed_bytes();
        let mig0 = self.a.engine.stats().migrations + self.b.engine.stats().migrations;
        let rtx0 = self.a.engine.stats().retransmissions + self.b.engine.stats().retransmissions;
        let mut cpu0 = CpuAccounting::default();
        cpu0.merge(&self.a.total_accounting());

        self.run_ns(window_ns);

        let cpu1 = self.a.total_accounting();
        let cpu = CpuAccounting {
            app: cpu1.app - cpu0.app,
            tcp: cpu1.tcp - cpu0.tcp,
            kernel: cpu1.kernel - cpu0.kernel,
            lib: cpu1.lib - cpu0.lib,
            idle: cpu1.idle - cpu0.idle,
        };
        Metrics {
            duration_ns: window_ns,
            requests: self.a.requests() - req0,
            goodput_bytes: self.b.consumed_bytes() + self.a.consumed_bytes() - bytes0,
            latency: self.client_latency(),
            cpu,
            migrations: self.a.engine.stats().migrations + self.b.engine.stats().migrations
                - mig0,
            retransmissions: self.a.engine.stats().retransmissions
                + self.b.engine.stats().retransmissions
                - rtx0,
            telemetry: self.telemetry().delta(&telem0),
        }
    }

    // --- workload constructors (the paper's four setups) ---

    /// §5.1 bulk data transfer: `cores` sender cores, one flow each,
    /// `request_bytes` per send; the peer runs one receiver core per
    /// sender core.
    pub fn bulk(cores: usize, request_bytes: u32, engine: EngineConfig) -> F4tSystem {
        let a = Node::new(cores, engine.clone());
        let b = Node::new(cores, engine);
        let mut sys = F4tSystem::new(a, b);
        for core in 0..cores {
            let (fa, fb) = sys.open_pair(core as u32, core, core);
            sys.a.set_driver(core, Driver::BulkSender(BulkSender::new(fa, request_bytes)));
            sys.b.set_driver(core, Driver::BulkReceiver(BulkReceiver::new(vec![fb])));
        }
        sys
    }

    /// §5.1 round-robin: `cores` sender cores × `flows_per_core` flows
    /// (the paper uses 16), rotating `request_bytes` sends.
    pub fn round_robin(
        cores: usize,
        flows_per_core: usize,
        request_bytes: u32,
        engine: EngineConfig,
    ) -> F4tSystem {
        let a = Node::new(cores, engine.clone());
        let b = Node::new(cores, engine);
        let mut sys = F4tSystem::new(a, b);
        let mut idx = 0u32;
        for core in 0..cores {
            let mut a_flows = Vec::new();
            let mut b_flows = Vec::new();
            for _ in 0..flows_per_core {
                let (fa, fb) = sys.open_pair(idx, core, core);
                idx += 1;
                a_flows.push(fa);
                b_flows.push(fb);
            }
            sys.a.set_driver(
                core,
                Driver::RoundRobin(RoundRobinSender::new(a_flows, request_bytes)),
            );
            sys.b.set_driver(core, Driver::BulkReceiver(BulkReceiver::new(b_flows)));
        }
        sys
    }

    /// §5.3 echo (ping-pong) over `total_flows` connections spread across
    /// `cores` cores on each side.
    pub fn echo(cores: usize, total_flows: usize, msg_bytes: u32, engine: EngineConfig) -> F4tSystem {
        F4tSystem::echo_paced(cores, total_flows, msg_bytes, 0, engine)
    }

    /// Echo with per-flow pacing: each flow pings at most once per
    /// `pace_ns` (an open-loop offered load used by the sleep-after-poll
    /// extension experiment; 0 = the paper's closed loop).
    pub fn echo_paced(
        cores: usize,
        total_flows: usize,
        msg_bytes: u32,
        pace_ns: u64,
        engine: EngineConfig,
    ) -> F4tSystem {
        let a = Node::new(cores, engine.clone());
        let b = Node::new(cores, engine);
        let mut sys = F4tSystem::new(a, b);
        let mut per_core_a: Vec<Vec<FlowId>> = vec![Vec::new(); cores];
        let mut per_core_b: Vec<Vec<FlowId>> = vec![Vec::new(); cores];
        for i in 0..total_flows {
            let core = i % cores;
            let (fa, fb) = sys.open_pair(i as u32, core, core);
            per_core_a[core].push(fa);
            per_core_b[core].push(fb);
        }
        for core in 0..cores {
            let client =
                EchoClient::with_pace(&per_core_a[core], msg_bytes, sys.a.lib(core), pace_ns);
            sys.a.set_driver(
                core,
                Driver::EchoClient { client, flows: per_core_a[core].clone(), next: 0 },
            );
            sys.b.set_driver(
                core,
                Driver::EchoServer {
                    server: EchoServer::new(msg_bytes),
                    flows: per_core_b[core].clone(),
                    next: 0,
                },
            );
        }
        sys
    }

    /// §5.2 Nginx + wrk: `server_cores` Nginx cores serving `connections`
    /// keep-alive connections driven by `client_cores` wrk cores.
    pub fn http(
        client_cores: usize,
        server_cores: usize,
        connections: usize,
        engine: EngineConfig,
    ) -> F4tSystem {
        let a = Node::new(client_cores, engine.clone());
        let b = Node::new(server_cores, engine);
        let mut sys = F4tSystem::new(a, b);
        let mut per_core_a: Vec<Vec<FlowId>> = vec![Vec::new(); client_cores];
        let mut per_core_b: Vec<Vec<FlowId>> = vec![Vec::new(); server_cores];
        for i in 0..connections {
            let ca = i % client_cores;
            let cb = i % server_cores;
            let (fa, fb) = sys.open_pair(i as u32, ca, cb);
            per_core_a[ca].push(fa);
            per_core_b[cb].push(fb);
        }
        for (core, flows) in per_core_a.iter().enumerate() {
            let client = HttpClient::new(flows, sys.a.lib(core));
            sys.a.set_driver(
                core,
                Driver::HttpClient { client, flows: flows.clone(), next: 0 },
            );
        }
        for (core, flows) in per_core_b.iter().enumerate() {
            sys.b.set_driver(
                core,
                Driver::HttpServer {
                    server: HttpServer::new(),
                    flows: flows.clone(),
                    next: 0,
                },
            );
        }
        sys
    }

    // --- FtStorm hostile-scenario constructors (DESIGN.md §14) ---

    /// N-to-1 incast: `senders` flows spread over `cores` client cores,
    /// all releasing a `burst_bytes` burst at every `epoch_ns` boundary,
    /// converging on a single receiver core.
    pub fn incast(
        senders: usize,
        cores: usize,
        burst_bytes: u32,
        epoch_ns: u64,
        engine: EngineConfig,
    ) -> F4tSystem {
        let a = Node::new(cores, engine.clone());
        let b = Node::new(1, engine);
        let mut sys = F4tSystem::new(a, b);
        let mut per_core_a: Vec<Vec<FlowId>> = vec![Vec::new(); cores];
        let mut b_flows = Vec::new();
        for i in 0..senders {
            let core = i % cores;
            let (fa, fb) = sys.open_pair(i as u32, core, 0);
            per_core_a[core].push(fa);
            b_flows.push(fb);
        }
        for (core, flows) in per_core_a.iter().enumerate() {
            sys.a.set_driver(
                core,
                Driver::Incast(IncastSender::new(flows.clone(), burst_bytes, epoch_ns)),
            );
        }
        sys.b.set_driver(0, Driver::Sink { server: SinkServer::new(), flows: b_flows, next: 0 });
        sys
    }

    /// Sustained connect/close cycling: the churn manager keeps
    /// `target_live` connection lifecycles in flight across `cores`
    /// client cores; each connection sends one request and actively
    /// closes, the server drains and passively closes on FIN.
    pub fn churnstorm(cores: usize, target_live: usize, engine: EngineConfig) -> F4tSystem {
        let a = Node::new(cores, engine.clone());
        let b = Node::new(cores, engine);
        let mut sys = F4tSystem::new(a, b);
        sys.b.engine.listen(80);
        for core in 0..cores {
            sys.a.set_driver(
                core,
                Driver::ChurnClient {
                    client: ChurnClient::new(CHURN_REQUEST_BYTES),
                    flows: Vec::new(),
                    next: 0,
                },
            );
            sys.b.set_driver(
                core,
                Driver::ChurnServer { server: ChurnServer::new(), flows: Vec::new(), next: 0 },
            );
        }
        sys.churn = Some(ChurnManager {
            target_live,
            max_opens_per_tick: 4,
            next_tuple: 0,
            core_rr: 0,
            cores,
        });
        sys
    }

    /// Slowloris-style residency stress: `total_flows` established
    /// connections spread across `cores` cores, each client core
    /// dripping `drip_bytes` from one of its flows every `interval_ns`.
    /// The flows stay pinned in TCBs and LUTs while the data path idles.
    pub fn slowloris(
        cores: usize,
        total_flows: usize,
        drip_bytes: u32,
        interval_ns: u64,
        engine: EngineConfig,
    ) -> F4tSystem {
        let a = Node::new(cores, engine.clone());
        let b = Node::new(cores, engine);
        let mut sys = F4tSystem::new(a, b);
        let mut per_core_a: Vec<Vec<FlowId>> = vec![Vec::new(); cores];
        let mut per_core_b: Vec<Vec<FlowId>> = vec![Vec::new(); cores];
        for i in 0..total_flows {
            let core = i % cores;
            let (fa, fb) = sys.open_pair(i as u32, core, core);
            per_core_a[core].push(fa);
            per_core_b[core].push(fb);
        }
        for core in 0..cores {
            sys.a.set_driver(
                core,
                Driver::Slowloris(SlowlorisClient::new(
                    per_core_a[core].clone(),
                    drip_bytes,
                    interval_ns,
                )),
            );
            sys.b.set_driver(
                core,
                Driver::Sink {
                    server: SinkServer::new(),
                    flows: per_core_b[core].clone(),
                    next: 0,
                },
            );
        }
        sys
    }

    /// Server-side requests served (HTTP) — the Fig. 10 metric.
    pub fn server_requests(&self) -> u64 {
        self.b.requests()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f4t_core::EngineConfig;

    fn small_engine() -> EngineConfig {
        EngineConfig { num_fpcs: 2, flows_per_fpc: 32, lut_groups: 2, ..EngineConfig::reference() }
    }

    #[test]
    fn bulk_moves_data_end_to_end() {
        let mut sys = F4tSystem::bulk(1, 1460, small_engine());
        let m = sys.measure(40_000, 200_000);
        assert!(m.goodput_gbps() > 10.0, "got {:.1} Gbps", m.goodput_gbps());
        assert!(m.requests > 0);
        assert_eq!(m.retransmissions, 0, "clean direct-attach link");
    }

    #[test]
    fn bulk_small_requests_single_core_hits_tens_of_gbps() {
        // The Fig. 8a shape: one core, 128 B requests, ~45 Gbps.
        let mut sys = F4tSystem::bulk(1, 128, small_engine());
        let m = sys.measure(40_000, 400_000);
        assert!(
            (25.0..70.0).contains(&m.goodput_gbps()),
            "got {:.1} Gbps ({:.1} Mrps)",
            m.goodput_gbps(),
            m.mrps()
        );
    }

    #[test]
    fn round_robin_progresses_all_flows() {
        let mut sys = F4tSystem::round_robin(1, 4, 128, small_engine());
        let m = sys.measure(40_000, 200_000);
        assert!(m.requests > 100, "got {} requests", m.requests);
        assert!(m.goodput_gbps() > 1.0);
    }

    #[test]
    fn echo_round_trips_and_records_latency() {
        let mut sys = F4tSystem::echo(1, 8, 128, small_engine());
        sys.run_ns(400_000);
        let m = sys.measure(0, 200_000);
        assert!(m.requests > 10, "completed {} round trips", m.requests);
        assert!(m.latency.count() > 0);
        // RTT floor: 2x 1 µs link + engine/PCIe; must be >2 µs and sane.
        assert!(m.median_latency_us() > 2.0);
        assert!(m.median_latency_us() < 100.0, "got {} µs", m.median_latency_us());
    }

    #[test]
    fn incast_fans_in_synchronized_bursts() {
        let mut sys = F4tSystem::incast(8, 2, 1_024, 50_000, small_engine());
        sys.run_ns(400_000);
        assert!(sys.a.requests() >= 8 * 4, "bursts released: {}", sys.a.requests());
        assert!(sys.b.consumed_bytes() > 8 * 1_024, "fan-in drained");
    }

    #[test]
    fn churnstorm_cycles_connections_through_reuse() {
        let mut sys = F4tSystem::churnstorm(2, 8, small_engine());
        sys.run_ns(2_000_000);
        let completed = sys.a.requests();
        assert!(completed > 16, "full lifecycles completed: {completed}");
        assert!(sys.b.requests() > 16, "server served: {}", sys.b.requests());
        assert!(
            sys.b.consumed_bytes() >= completed * u64::from(CHURN_REQUEST_BYTES) / 2,
            "requests drained"
        );
        // With 8 in-flight lifecycles and dozens completed, flow ids
        // were necessarily recycled many times.
        assert!(sys.a.churn_live() <= 8 + 4);
    }

    #[test]
    fn slowloris_holds_flows_with_trickle_traffic() {
        let mut sys = F4tSystem::slowloris(1, 32, 8, 2_000, small_engine());
        sys.run_ns(600_000);
        let drips = sys.a.requests();
        assert!(drips > 50, "dripping: {drips}");
        assert!(sys.b.consumed_bytes() > 0);
        // Residency: all 32 flows still established on both engines.
        assert_eq!(sys.a.engine.live_flows(), 32);
        assert_eq!(sys.b.engine.live_flows(), 32);
    }

    #[test]
    fn impaired_link_still_converges() {
        let mut sys = F4tSystem::bulk(1, 1460, small_engine());
        sys.set_impairments(Impairments::profile("reorder").expect("profile"));
        let m = sys.measure(40_000, 400_000);
        assert!(m.goodput_gbps() > 1.0, "got {:.2} Gbps", m.goodput_gbps());
        assert!(sys.impairment_events() > 0, "profile engaged");
    }

    #[test]
    fn http_serves_requests() {
        let mut sys = F4tSystem::http(1, 1, 16, small_engine());
        sys.run_ns(400_000);
        let served0 = sys.server_requests();
        sys.run_ns(400_000);
        let served = sys.server_requests() - served0;
        assert!(served > 20, "served {served}");
        // Server CPU is dominated by application, not lib (Fig. 11 shape).
        let acct = sys.b.total_accounting();
        assert!(acct.app > acct.lib, "app {} vs lib {}", acct.app, acct.lib);
        assert_eq!(acct.tcp, 0, "F4T leaves zero TCP cycles on the host");
    }
}
