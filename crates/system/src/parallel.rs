//! FtTurbo at testbed level: a fleet of **independent** [`F4tSystem`]
//! instances on worker threads.
//!
//! One `F4tSystem` couples its two nodes through the link every cycle,
//! so it can never be threaded internally; what does parallelize is a
//! *fleet* of closed systems (parameter sweeps, per-tenant testbeds,
//! sharded scale runs). This module reuses the engine-level
//! [`ParallelRunner`]: every rendezvous round advances each system by
//! [`RENDEZVOUS_QUANTUM`] cycles, and merged artifacts are folded in
//! fixed system order after the run — so results are a pure function of
//! the fleet, never of the worker-pool size.

use crate::F4tSystem;
use f4t_core::{fold_digests, ParallelRunner, RENDEZVOUS_QUANTUM};
use crate::system::CYCLE_NS;

/// A fixed-order fleet of independent systems with deterministic
/// parallel execution.
///
/// # Examples
///
/// ```
/// use f4t_core::EngineConfig;
/// use f4t_system::{F4tSystem, SystemFleet};
///
/// let mk = || {
///     let fleet = (0..2)
///         .map(|i| F4tSystem::bulk(1, 64 + i * 64, EngineConfig::reference()))
///         .collect();
///     SystemFleet::new(fleet)
/// };
/// let run = |threads| {
///     let mut f = mk();
///     f.run_ns(threads, 200_000);
///     f.merged_telemetry_json()
/// };
/// assert_eq!(run(1), run(2), "pool size must not change merged output");
/// ```
pub struct SystemFleet {
    runner: ParallelRunner<F4tSystem>,
}

impl SystemFleet {
    /// Wraps a fixed, ordered fleet. The fleet's order and contents are
    /// part of the workload's identity; only the worker-pool size passed
    /// to [`run_ns`](Self::run_ns) may vary between runs.
    pub fn new(systems: Vec<F4tSystem>) -> SystemFleet {
        SystemFleet { runner: ParallelRunner::new(systems) }
    }

    /// Number of systems in the fleet.
    pub fn len(&self) -> usize {
        self.runner.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.runner.is_empty()
    }

    /// The systems, in fixed fleet order.
    pub fn systems(&self) -> &[F4tSystem] {
        self.runner.shards()
    }

    /// Mutable access (setup between runs).
    pub fn systems_mut(&mut self) -> &mut [F4tSystem] {
        self.runner.shards_mut()
    }

    /// Unwraps the fleet, in fixed order.
    pub fn into_systems(self) -> Vec<F4tSystem> {
        self.runner.into_shards()
    }

    /// Advances every system by (at least) `ns` of simulated time on a
    /// pool of `threads` workers, in rendezvous rounds of
    /// [`RENDEZVOUS_QUANTUM`] cycles. Returns the rounds executed.
    /// Every system runs the same whole number of quanta, so per-system
    /// state after the call is independent of the pool size.
    pub fn run_ns(&mut self, threads: usize, ns: u64) -> u64 {
        let cycles = ns.div_ceil(CYCLE_NS);
        let quanta = cycles.div_ceil(RENDEZVOUS_QUANTUM);
        self.runner.run_rounds(threads, move |sys, round| {
            sys.run_cycles(RENDEZVOUS_QUANTUM);
            round + 1 < quanta
        })
    }

    /// Merged FtScope snapshot, one JSON object per system in fixed
    /// fleet order: `{"systems": [...]}`.
    pub fn merged_telemetry_json(&self) -> String {
        let parts: Vec<String> =
            self.systems().iter().map(|s| s.telemetry().to_json()).collect();
        format!("{{\"systems\": [{}]}}", parts.join(", "))
    }

    /// Merged FtJournal digest over both engines of every system, folded
    /// in fixed fleet order (0 for engines without a journal).
    pub fn merged_journal_digest(&self) -> u64 {
        fold_digests(self.systems().iter().flat_map(|s| {
            [
                s.a.engine.journal().map_or(0, |j| j.digest()),
                s.b.engine.journal().map_or(0, |j| j.digest()),
            ]
        }))
    }

    /// Merged FtPulse digest over both engines of every system, folded in
    /// fixed fleet order (0 for engines without a pulse recorder) —
    /// thread-count independent like the journal digest.
    pub fn merged_pulse_digest(&self) -> u64 {
        fold_digests(
            self.systems()
                .iter()
                .flat_map(|s| [s.a.engine.pulse_digest(), s.b.engine.pulse_digest()]),
        )
    }

    /// Merged FtPulse view in fixed fleet order: per-shard series for the
    /// a-side engine of every system plus the integer-only fleet
    /// aggregate ([`f4t_sim::PulseRecorder::aggregate_json`]). Empty
    /// `shards` array when no engine has a recorder attached.
    pub fn merged_pulse_json(&self) -> String {
        let recorders: Vec<&f4t_sim::PulseRecorder> =
            self.systems().iter().filter_map(|s| s.a.engine.pulse()).collect();
        let shards: Vec<String> =
            recorders.iter().map(|p| p.to_json(CYCLE_NS)).collect();
        format!(
            "{{\"merged_digest\": {},\n\"aggregate\": {},\n\"shards\": [{}]}}\n",
            self.merged_pulse_digest(),
            f4t_sim::PulseRecorder::aggregate_json(&recorders),
            shards.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f4t_core::EngineConfig;

    fn fleet() -> SystemFleet {
        let cfg = EngineConfig {
            journal: true,
            journal_sample: 1,
            pulse: true,
            pulse_interval: 1_024,
            pulse_flow_sample: 1,
            ..EngineConfig::reference()
        };
        SystemFleet::new(
            (0..3u32)
                .map(|i| F4tSystem::bulk(1, 64 + i * 96, cfg.clone()))
                .collect(),
        )
    }

    #[test]
    fn pool_size_does_not_change_fleet_artifacts() {
        let run = |threads: usize| {
            let mut f = fleet();
            let rounds = f.run_ns(threads, 300_000);
            (
                rounds,
                f.merged_telemetry_json(),
                f.merged_journal_digest(),
                f.merged_pulse_json(),
            )
        };
        let reference = run(1);
        assert!(reference.0 > 0, "fleet must actually run");
        assert!(
            reference.3.contains("\"goodput_bytes\""),
            "fleet pulse view must carry series: {}",
            reference.3
        );
        for threads in [2, 3, 8] {
            assert_eq!(run(threads), reference, "pool of {threads} diverged");
        }
    }

    #[test]
    fn every_system_advances_the_same_quanta() {
        let mut f = fleet();
        let rounds = f.run_ns(2, 100_000);
        let ns: Vec<u64> = f.systems().iter().map(|s| s.now_ns()).collect();
        assert!(ns.iter().all(|&n| n == ns[0]), "uneven advance: {ns:?}");
        assert!(ns[0] >= 100_000, "short advance: {ns:?}");
        assert_eq!(rounds, 100_000u64.div_ceil(CYCLE_NS).div_ceil(RENDEZVOUS_QUANTUM));
    }
}
