#![warn(missing_docs)]
//! # f4t-system — end-to-end system composition
//!
//! Wires the full F4T stack together the way the paper's testbed does
//! (§5, "evaluation setup"): application workloads running on host cores
//! (2.3 GHz, cycle-budgeted), the F4T library and per-thread command
//! queues, a PCIe Gen3 ×16 model, FtEngine, and a 100 Gbps direct-attach
//! link to a peer node running the same stack.
//!
//! ```text
//!  +----------------- Node A ------------------+   100 Gbps   +-- Node B --+
//!  | cores = F4tLib = cmd queues = PCIe = Engine|--------------| (mirrored) |
//!  +--------------------------------------------+   direct    +------------+
//! ```
//!
//! [`F4tSystem`] advances everything in 250 MHz engine cycles (host cores
//! accrue 9.2 CPU cycles per tick). The pre-built constructors
//! ([`F4tSystem::bulk`], [`F4tSystem::round_robin`], [`F4tSystem::echo`],
//! [`F4tSystem::http`]) reproduce the paper's four workload setups.
//! [`linux_system`] provides the calibrated Linux-vs-Linux comparison
//! numbers for the same workloads.

pub mod link;
pub mod linux_system;
pub mod metrics;
pub mod node;
pub mod parallel;
pub mod system;

pub use link::DuplexLink;
pub use linux_system::LinuxSystem;
pub use metrics::Metrics;
pub use node::{Driver, Node};
pub use parallel::SystemFleet;
pub use system::F4tSystem;
