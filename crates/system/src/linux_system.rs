//! The Linux-vs-Linux comparison system.
//!
//! Wraps `f4t_host::LinuxModel`'s calibrated cost constants into the same
//! [`Metrics`]-shaped results the F4T system produces, so the figure
//! harnesses print both sides uniformly. Throughput numbers are analytic
//! (CPU-budget arithmetic, exactly how the model was calibrated); latency
//! distributions are synthesized from a closed-loop queueing model with a
//! heavy Linux tail (softirq/scheduling jitter) — see DESIGN.md §5 for
//! the calibration and the caveat that latency reproduces *ratios*.

use crate::metrics::Metrics;
use f4t_host::{CpuAccounting, LinuxModel};
use f4t_sim::{Histogram, SimRng};

/// The Linux baseline "system".
#[derive(Debug, Clone, Copy)]
pub struct LinuxSystem;

/// Linux's 99th-percentile tail multiplier over the median under load
/// (softirq storms, scheduler interference). Calibrated so that with
/// F4T's measured ~1.5× tail the paper's 3.7× median / 26× p99 gaps hold
/// (26 / 3.7 × 1.5 ≈ 10.5).
const LINUX_TAIL_P99_MULT: f64 = 10.5;

impl LinuxSystem {
    /// Bulk transfer metrics for `cores` cores of `request_bytes` sends
    /// over `window_ns`.
    pub fn bulk(cores: u32, request_bytes: u32, window_ns: u64) -> Metrics {
        let gbps = LinuxModel::bulk_goodput_gbps(request_bytes, cores);
        let bytes = (gbps * window_ns as f64 / 8.0) as u64;
        Metrics {
            duration_ns: window_ns,
            requests: bytes / u64::from(request_bytes),
            goodput_bytes: bytes,
            latency: Histogram::new(),
            cpu: Self::busy_cpu(cores, window_ns),
            migrations: 0,
            retransmissions: 0,
            telemetry: f4t_sim::MetricsRegistry::new(),
        }
    }

    /// Round-robin metrics.
    pub fn round_robin(cores: u32, request_bytes: u32, window_ns: u64) -> Metrics {
        let gbps = LinuxModel::round_robin_goodput_gbps(request_bytes, cores);
        let bytes = (gbps * window_ns as f64 / 8.0) as u64;
        Metrics {
            duration_ns: window_ns,
            requests: bytes / u64::from(request_bytes),
            goodput_bytes: bytes,
            latency: Histogram::new(),
            cpu: Self::busy_cpu(cores, window_ns),
            migrations: 0,
            retransmissions: 0,
            telemetry: f4t_sim::MetricsRegistry::new(),
        }
    }

    /// Nginx requests/second for `cores`, saturated by `flows`
    /// connections (Fig. 10's x-axis: rps saturates once enough flows
    /// keep every core busy).
    pub fn nginx_rps(cores: u32, flows: u32) -> f64 {
        let peak = LinuxModel::nginx_rps(cores);
        // Closed loop: each connection has one request outstanding; until
        // the flow count covers the bandwidth-delay of the service
        // pipeline (~32 in-service+queued per core), throughput ramps.
        let ramp = f64::from(flows) / (f64::from(cores) * 32.0);
        peak * ramp.min(1.0)
    }

    /// Echo requests/second for `cores` and `flows` (Fig. 13's Linux
    /// curve: roughly flat in flow count, CPU-bound, with a mild
    /// degradation beyond 10 K flows from epoll/cache pressure).
    pub fn echo_rps(cores: u32, flows: u32) -> f64 {
        let base = LinuxModel::rps(LinuxModel::echo_cycles_per_request(cores), cores);
        let degradation = 1.0 + (f64::from(flows) / 16_384.0).min(2.0) * 0.25;
        let peak = base / degradation;
        // Ramp: tiny flow counts cannot cover the RTT (~30 µs under
        // Linux), so throughput is flows/RTT-bound first.
        let rtt_bound = f64::from(flows) / 30e-6;
        peak.min(rtt_bound)
    }

    /// Synthesized Nginx latency distribution at `flows` connections on
    /// `cores` cores (Fig. 12): closed-loop queueing (Little's law at
    /// saturation) with a lognormal-ish Linux tail.
    pub fn nginx_latency(cores: u32, flows: u32, seed: u64) -> Histogram {
        let mut h = Histogram::new();
        let mut rng = SimRng::new(seed);
        let rps = Self::nginx_rps(cores, flows).max(1.0);
        // Base: service + kernel wakeup (~30 µs); queueing: Little's law.
        let base_ns = 30_000.0;
        let queueing_ns = f64::from(flows) / rps * 1e9;
        let median = base_ns + queueing_ns;
        for _ in 0..10_000 {
            // Body: ±30 % uniform; 1.2 % of requests hit the long tail.
            let u = rng.next_f64();
            let sample = if u < 0.988 {
                median * (0.7 + 0.6 * rng.next_f64())
            } else {
                median * LINUX_TAIL_P99_MULT * (0.8 + 1.2 * rng.next_f64())
            };
            h.record(sample as u64);
        }
        h
    }

    fn busy_cpu(cores: u32, window_ns: u64) -> CpuAccounting {
        // Scale the calibrated per-request breakdown to the window: all
        // cores fully busy, Fig. 1 proportions.
        let total_cycles = u64::from(cores) * window_ns * 23 / 10;
        let b = LinuxModel::nginx_breakdown();
        let sum = b.total();
        CpuAccounting {
            app: total_cycles * b.app / sum,
            tcp: total_cycles * b.tcp / sum,
            kernel: total_cycles * b.kernel / sum,
            lib: 0,
            idle: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bulk_matches_model_anchor() {
        let m = LinuxSystem::bulk(8, 128, 1_000_000_000);
        assert!((7.9..8.7).contains(&m.goodput_gbps()), "got {:.2}", m.goodput_gbps());
    }

    #[test]
    fn nginx_rps_saturates_with_flows() {
        let low = LinuxSystem::nginx_rps(1, 8);
        let sat = LinuxSystem::nginx_rps(1, 256);
        let more = LinuxSystem::nginx_rps(1, 1024);
        assert!(low < sat);
        assert!((sat - more).abs() < 1e-9, "flat after saturation");
        assert!((100_000.0..130_000.0).contains(&sat));
    }

    #[test]
    fn echo_rps_flat_but_degrading() {
        let at_1k = LinuxSystem::echo_rps(8, 1024);
        let at_64k = LinuxSystem::echo_rps(8, 65_536);
        assert!(at_64k < at_1k);
        assert!(at_64k > at_1k / 2.0, "mild degradation only");
    }

    #[test]
    fn latency_tail_is_heavy() {
        let h = LinuxSystem::nginx_latency(1, 64, 7);
        let med = h.percentile(50.0) as f64;
        let p99 = h.percentile(99.0) as f64;
        assert!(p99 / med > 5.0, "tail ratio {:.1}", p99 / med);
        assert!(p99 / med < 20.0);
    }

    #[test]
    fn cpu_breakdown_has_37_percent_tcp() {
        let m = LinuxSystem::bulk(1, 128, 1_000_000);
        let tcp_frac = m.cpu.fraction(f4t_host::CpuCategory::Tcp);
        assert!((tcp_frac - 0.37).abs() < 0.01);
    }
}
