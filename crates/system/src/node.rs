//! One host node: cores + F4T library + command queues + PCIe + engine.

use f4t_core::{Engine, EngineConfig, EventKind, FlowEvent, HostNotification};
use f4t_host::{
    Command, Completion, CoreBudget, CpuAccounting, CpuCategory, F4tLib, PcieDir, PcieModel,
    Runtime, LIB_CMD_CYCLES, LIB_COMPLETION_CYCLES, LIB_POLL_CYCLES,
};
use f4t_tcp::{FlowId, FourTuple, SeqNum};
use f4t_workloads::http::{NGINX_APP_CYCLES, NGINX_VFS_CYCLES};
use f4t_workloads::{
    BulkReceiver, BulkSender, ChurnClient, ChurnServer, EchoClient, EchoServer, HttpClient,
    HttpServer, IncastSender, RoundRobinSender, SinkServer, SlowlorisClient,
};
use std::collections::{HashMap, VecDeque};

/// The application driver running on one core.
#[derive(Debug)]
pub enum Driver {
    /// No application (core services completions only).
    Idle,
    /// iperf-style bulk sender.
    BulkSender(BulkSender),
    /// Bulk receiving side (drains data, opens the window).
    BulkReceiver(BulkReceiver),
    /// Round-robin multi-flow sender.
    RoundRobin(RoundRobinSender),
    /// Echo client over a flow set.
    EchoClient {
        /// The driver.
        client: EchoClient,
        /// Flow rotation.
        flows: Vec<FlowId>,
        /// Next flow index.
        next: usize,
    },
    /// Echo server over a flow set.
    EchoServer {
        /// The driver.
        server: EchoServer,
        /// Flow rotation.
        flows: Vec<FlowId>,
        /// Next flow index.
        next: usize,
    },
    /// wrk-style HTTP client.
    HttpClient {
        /// The driver.
        client: HttpClient,
        /// Flow rotation.
        flows: Vec<FlowId>,
        /// Next flow index.
        next: usize,
    },
    /// Nginx-style HTTP server.
    HttpServer {
        /// The driver.
        server: HttpServer,
        /// Flow rotation.
        flows: Vec<FlowId>,
        /// Next flow index.
        next: usize,
    },
    /// Synchronized N-to-1 incast sender (FtStorm).
    Incast(IncastSender),
    /// Fan-in receiver draining whatever is readable (FtStorm).
    Sink {
        /// The driver.
        server: SinkServer,
        /// Flow rotation.
        flows: Vec<FlowId>,
        /// Next flow index.
        next: usize,
    },
    /// Connect/close cycling client; flow membership is dynamic
    /// (FtStorm churnstorm).
    ChurnClient {
        /// The driver.
        client: ChurnClient,
        /// Live flow rotation (node-maintained).
        flows: Vec<FlowId>,
        /// Next flow index.
        next: usize,
    },
    /// Accept/drain/passive-close server for churning peers.
    ChurnServer {
        /// The driver.
        server: ChurnServer,
        /// Live flow rotation (node-maintained).
        flows: Vec<FlowId>,
        /// Next flow index.
        next: usize,
    },
    /// Near-idle residency stressor dripping bytes at a long interval.
    Slowloris(SlowlorisClient),
}

/// One application thread's core.
#[derive(Debug)]
struct Core {
    budget: CoreBudget,
    lib: F4tLib,
    acct: CpuAccounting,
    driver: Driver,
    completions: VecDeque<Completion>,
    /// Flows made readable by recent completions (epoll-style readiness,
    /// so closed-loop drivers with thousands of flows step the right
    /// one instead of scanning).
    ready: VecDeque<FlowId>,
    /// Consecutive empty poll ticks (drives sleep-after-poll, §4.6).
    empty_polls: u32,
    /// Whether the thread has gone to sleep awaiting a runtime signal.
    sleeping: bool,
    /// Timer armed before sleeping (paced senders wake themselves).
    wake_at_ns: Option<u64>,
}

/// A host node (server machine) in the testbed.
#[derive(Debug)]
pub struct Node {
    /// The FtEngine on this node's smartNIC slot.
    pub engine: Engine,
    pcie: PcieModel,
    cores: Vec<Core>,
    /// Receive-side scaling: completions of a flow go to one core (§4.6).
    rss: HashMap<FlowId, usize>,
    /// Last REQ pointer per flow, to charge TX payload DMA.
    last_req: HashMap<FlowId, SeqNum>,
    /// RX payload DMA bytes already charged.
    rx_dma_charged: u64,
    /// Completions waiting for PCIe d2h budget, with their destination
    /// core captured at enqueue time (so churn teardown cannot re-route
    /// an in-flight completion when a flow id is recycled).
    completion_backlog: VecDeque<(usize, Completion)>,
    /// Round-robin core assignment for engine-accepted connections.
    accept_rr: usize,
    /// Round-robin start for command DMA, so one busy core cannot
    /// monopolize the PCIe budget.
    dma_rr: usize,
    /// Sleep-after-poll (§4.6): when enabled, an application thread that
    /// polls emptily for ~10 µs goes to sleep and is woken by the runtime
    /// when a completion arrives — "F4T software does not consume CPU
    /// cycles when there are no requests".
    sleep_after_poll: bool,
    /// The userspace driver: BAR + hugepage + queue-pair bookkeeping
    /// (§4.1.1). One queue pair per core, created at node setup.
    runtime: Runtime,
}

impl Node {
    /// Creates a node with `cores` application threads, each with its own
    /// queue pair registered through the runtime.
    pub fn new(cores: usize, engine: EngineConfig) -> Node {
        let mut runtime = Runtime::open_default();
        for _ in 0..cores {
            runtime
                .create_queue_pair(64)
                .expect("BAR/hugepage capacity for all application threads");
        }
        Node {
            engine: Engine::new(engine),
            pcie: PcieModel::gen3x16(),
            cores: (0..cores)
                .map(|_| Core {
                    budget: CoreBudget::xeon_5118(),
                    lib: F4tLib::new(),
                    acct: CpuAccounting::default(),
                    driver: Driver::Idle,
                    completions: VecDeque::new(),
                    ready: VecDeque::new(),
                    empty_polls: 0,
                    sleeping: false,
                    wake_at_ns: None,
                })
                .collect(),
            rss: HashMap::new(),
            last_req: HashMap::new(),
            rx_dma_charged: 0,
            completion_backlog: VecDeque::new(),
            accept_rr: 0,
            dma_rr: 0,
            sleep_after_poll: false,
            runtime,
        }
    }

    /// The runtime's view of this node's queue pairs (diagnostics).
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Enables/disables the §4.6 sleep-after-poll policy on all cores.
    pub fn set_sleep_after_poll(&mut self, enabled: bool) {
        self.sleep_after_poll = enabled;
    }

    /// Switches every core's library to the compact 8 B commands (§6).
    /// Safe to call after flows are registered (socket state is kept).
    pub fn use_compact_commands(&mut self) {
        for c in &mut self.cores {
            c.lib.switch_to_compact();
        }
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Opens a pre-established flow owned by `core`.
    pub fn add_established_flow(
        &mut self,
        tuple: FourTuple,
        isn: SeqNum,
        core: usize,
    ) -> Option<FlowId> {
        let flow = self.engine.open_established(tuple, isn)?;
        self.cores[core].lib.register(flow, isn, true);
        self.rss.insert(flow, core);
        self.last_req.insert(flow, isn);
        Some(flow)
    }

    /// Actively opens a connection owned by `core`: allocates the engine
    /// flow, registers the socket, and enqueues the Connect command that
    /// launches the handshake. Returns `None` when the engine is at its
    /// flow limit or the core's command ring is full (the churn manager
    /// retries next tick).
    pub fn open_active_flow(&mut self, tuple: FourTuple, core: usize) -> Option<FlowId> {
        if self.cores[core].lib.commands.is_full() {
            return None;
        }
        let flow = self.engine.open_active(tuple)?;
        let isn = self.engine.peek_tcb(flow).map(|t| t.snd_una).unwrap_or(SeqNum::ZERO);
        let c = &mut self.cores[core];
        c.lib.register(flow, isn, false);
        let connected = c.lib.connect(flow);
        debug_assert!(connected.is_ok(), "ring fullness checked above");
        self.rss.insert(flow, core);
        self.last_req.insert(flow, isn);
        if let Driver::ChurnClient { client, flows, .. } = &mut c.driver {
            client.on_open(flow);
            flows.push(flow);
        }
        Some(flow)
    }

    /// Installs a driver on a core.
    pub fn set_driver(&mut self, core: usize, driver: Driver) {
        self.cores[core].driver = driver;
    }

    /// Per-core utilization accounting.
    pub fn accounting(&self, core: usize) -> &CpuAccounting {
        &self.cores[core].acct
    }

    /// Merged utilization across cores.
    pub fn total_accounting(&self) -> CpuAccounting {
        let mut total = CpuAccounting::default();
        for c in &self.cores {
            total.merge(&c.acct);
        }
        total
    }

    /// Immutable access to a core's library (stats).
    pub fn lib(&self, core: usize) -> &F4tLib {
        &self.cores[core].lib
    }

    /// Immutable access to a core's driver (stats).
    pub fn driver(&self, core: usize) -> &Driver {
        &self.cores[core].driver
    }

    /// Total requests issued by all drivers.
    pub fn requests(&self) -> u64 {
        self.cores
            .iter()
            .map(|c| match &c.driver {
                Driver::BulkSender(s) => s.requests(),
                Driver::RoundRobin(s) => s.requests(),
                Driver::EchoClient { client, .. } => client.completed(),
                Driver::HttpClient { client, .. } => client.completed(),
                Driver::HttpServer { server, .. } => server.served(),
                Driver::EchoServer { server, .. } => server.replies(),
                Driver::Incast(s) => s.requests(),
                Driver::Slowloris(s) => s.requests(),
                Driver::ChurnClient { client, .. } => client.completed(),
                Driver::ChurnServer { server, .. } => server.served(),
                _ => 0,
            })
            .sum()
    }

    /// Connections currently somewhere in their lifecycle across all
    /// churn drivers (0 when every opened flow has fully closed).
    pub fn churn_live(&self) -> usize {
        self.cores
            .iter()
            .map(|c| match &c.driver {
                Driver::ChurnClient { client, .. } => client.live(),
                Driver::ChurnServer { server, .. } => server.live(),
                _ => 0,
            })
            .sum()
    }

    /// Bytes consumed by receiving drivers (goodput measurement point).
    pub fn consumed_bytes(&self) -> u64 {
        self.cores
            .iter()
            .map(|c| match &c.driver {
                Driver::BulkReceiver(r) => r.consumed(),
                Driver::Sink { server, .. } => server.consumed(),
                Driver::ChurnServer { server, .. } => server.consumed(),
                _ => 0,
            })
            .sum()
    }

    /// PCIe diagnostics.
    pub fn pcie(&self) -> &PcieModel {
        &self.pcie
    }

    fn command_to_event(cmd: Command, now_ns: u64) -> FlowEvent {
        let kind = match cmd {
            Command::Connect { .. } => EventKind::Connect,
            Command::Close { .. } => EventKind::Close,
            Command::Send { req, .. } => EventKind::SendReq { req },
            Command::RecvConsumed { consumed, .. } => EventKind::RecvConsumed { consumed },
        };
        FlowEvent::new(cmd.flow(), kind, now_ns)
    }

    fn notification_to_completion(n: HostNotification) -> Completion {
        match n {
            HostNotification::Connected { flow } => Completion::Connected { flow },
            HostNotification::DataAcked { flow, upto } => Completion::Acked { flow, upto },
            HostNotification::DataReceived { flow, upto } => Completion::Received { flow, upto },
            HostNotification::PeerFin { flow } => Completion::Eof { flow },
            HostNotification::Closed { flow } => Completion::Closed { flow },
            HostNotification::NewConnection { flow, .. } => Completion::Accepted { flow },
        }
    }

    /// Advances the node one engine cycle.
    pub fn tick(&mut self, now_ns: u64) {
        self.pcie.tick();

        // 1. DMA commands from core queues into the engine (h2d), paying
        //    for the command entry and, for sends, the payload bytes.
        //    Queues are served round-robin starting at a rotating index.
        let n_cores = self.cores.len();
        self.dma_rr = (self.dma_rr + 1) % n_cores.max(1);
        'dma: for off in 0..n_cores {
            let i = (self.dma_rr + off) % n_cores;
            while let Some(&cmd) = self.cores[i].lib.commands_front() {
                let entry = self.cores[i].lib.entry_bytes() as u64;
                let payload = match cmd {
                    Command::Send { flow, req } => {
                        let prev = self.last_req.get(&flow).copied().unwrap_or(req);
                        u64::from(req.since(prev))
                    }
                    _ => 0,
                };
                if !self.engine.can_accept_event() {
                    break 'dma;
                }
                if !self.pcie.try_transfer(PcieDir::HostToDevice, entry + payload) {
                    break 'dma;
                }
                self.cores[i].lib.commands_pop();
                if let Command::Send { flow, req } = cmd {
                    self.last_req.insert(flow, req);
                }
                let accepted = self.engine.push_event(Self::command_to_event(cmd, now_ns));
                debug_assert!(accepted, "checked can_accept_event");
            }
        }

        // 2. Engine cycle.
        self.engine.tick();

        // 3. RX payload DMA (d2h): charge what the parser accepted.
        let rx_total = self.engine.stats().rx_dma_bytes;
        if rx_total > self.rx_dma_charged {
            let delta = rx_total - self.rx_dma_charged;
            // Borrow against future budget: the DMA engine streams.
            let chunk = delta.min(4096);
            if self.pcie.try_transfer(PcieDir::DeviceToHost, chunk) {
                self.rx_dma_charged += chunk;
            }
        }

        // 4. Completions to cores (d2h, 16 B each). Engine-side connection
        //    lifecycle (accept / teardown) is intercepted here, in the same
        //    tick the engine acts, because flow ids are recycled
        //    immediately: by the time a PCIe-delayed completion reaches a
        //    core, its flow id may already name a different connection.
        while let Some(n) = self.engine.pop_notification() {
            match n {
                HostNotification::NewConnection { flow, .. } => {
                    let core = self.accept_rr % n_cores.max(1);
                    self.accept_rr += 1;
                    self.rss.insert(flow, core);
                    // Server-side sockets have asymmetric sequence bases:
                    // each direction picked its own ISN in the handshake.
                    if let Some(t) = self.engine.peek_tcb(flow) {
                        self.cores[core].lib.register_accepted(flow, t.snd_nxt, t.rcv_nxt);
                        self.last_req.insert(flow, t.snd_nxt);
                    }
                    if let Driver::ChurnServer { server, flows, .. } = &mut self.cores[core].driver
                    {
                        server.on_accept(flow);
                        flows.push(flow);
                    }
                    self.completion_backlog.push_back((core, Completion::Accepted { flow }));
                }
                HostNotification::Closed { flow } => {
                    let core = self.rss.get(&flow).copied().unwrap_or(0);
                    let churned = match &mut self.cores[core].driver {
                        Driver::ChurnClient { client, flows, .. } => {
                            client.on_closed(flow);
                            if let Some(p) = flows.iter().position(|&f| f == flow) {
                                flows.swap_remove(p);
                            }
                            true
                        }
                        Driver::ChurnServer { server, flows, .. } => {
                            server.on_closed(flow);
                            if let Some(p) = flows.iter().position(|&f| f == flow) {
                                flows.swap_remove(p);
                            }
                            true
                        }
                        _ => false,
                    };
                    if churned {
                        // Eager teardown: forget the flow everywhere and
                        // drop its still-undelivered completions, so the
                        // id can be reissued without aliasing state.
                        self.rss.remove(&flow);
                        self.last_req.remove(&flow);
                        self.cores[core].lib.deregister(flow);
                        self.completion_backlog.retain(|&(_, c)| c.flow() != flow);
                        // Completions already DMA'd to a core but not yet
                        // consumed (budget starvation) alias the reissued
                        // id too — their `upto` pointers are in the dead
                        // incarnation's sequence space.
                        for c in &mut self.cores {
                            c.completions.retain(|q| q.flow() != flow);
                        }
                    } else {
                        self.completion_backlog.push_back((core, Completion::Closed { flow }));
                    }
                }
                HostNotification::Connected { flow } => {
                    // Handshake complete: only now are both directions'
                    // sequence bases known (each side picked its own ISN
                    // and the SYN/SYN|ACK each consume one sequence
                    // number). Re-seed before any data completion can
                    // apply a pointer from the provisional space.
                    let core = self.rss.get(&flow).copied().unwrap_or(0);
                    if let Some(t) = self.engine.peek_tcb(flow) {
                        self.cores[core].lib.seed_handshake(flow, t.snd_una, t.rcv_nxt);
                        self.last_req.insert(flow, t.snd_una);
                    }
                    self.completion_backlog.push_back((core, Completion::Connected { flow }));
                }
                other => {
                    let c = Self::notification_to_completion(other);
                    let core = self.rss.get(&c.flow()).copied().unwrap_or(0);
                    self.completion_backlog.push_back((core, c));
                }
            }
        }
        while let Some(&(core, c)) = self.completion_backlog.front() {
            if !self.pcie.try_transfer(PcieDir::DeviceToHost, 16) {
                break;
            }
            self.completion_backlog.pop_front();
            self.cores[core].completions.push_back(c);
        }

        // 5. Core work.
        const SLEEP_AFTER_EMPTY_TICKS: u32 = 2_500; // ≈10 µs of polling
        for core in &mut self.cores {
            core.budget.tick();
            // Sleep-after-poll: a sleeping thread costs nothing; it wakes
            // on the runtime's signal (a completion arriving) or on its
            // own timer (a paced sender's next deadline).
            if core.sleeping {
                let timer_due = core.wake_at_ns.is_some_and(|t| now_ns >= t);
                if core.completions.is_empty() && !timer_due {
                    core.acct.charge(CpuCategory::Idle, 9);
                    continue;
                }
                core.sleeping = false;
                core.wake_at_ns = None;
                core.empty_polls = 0;
            }
            // Completions first (the poll loop of §4.6).
            while let Some(&c) = core.completions.front() {
                if !core.budget.try_spend(LIB_COMPLETION_CYCLES) {
                    break;
                }
                core.acct.charge(CpuCategory::F4tLib, LIB_COMPLETION_CYCLES);
                core.lib.on_completion(c);
                match c {
                    // Readability, connection establishment and FIN all
                    // make a flow actionable for closed-loop drivers.
                    Completion::Received { flow, .. }
                    | Completion::Accepted { flow }
                    | Completion::Connected { flow }
                    | Completion::Eof { flow } => core.ready.push_back(flow),
                    _ => {}
                }
                core.completions.pop_front();
            }
            // Application steps until the budget runs dry or the driver
            // has nothing to do.
            let mut did_anything = false;
            loop {
                let (cost_app, cost_lib) = match &core.driver {
                    Driver::Idle => break,
                    Driver::BulkSender(_) | Driver::RoundRobin(_) => (0, LIB_CMD_CYCLES),
                    Driver::BulkReceiver(_) => (0, LIB_CMD_CYCLES),
                    Driver::EchoClient { .. } => (100, 2 * LIB_CMD_CYCLES),
                    Driver::EchoServer { .. } => (100, 2 * LIB_CMD_CYCLES),
                    Driver::HttpClient { .. } => (300, 2 * LIB_CMD_CYCLES),
                    Driver::HttpServer { .. } => {
                        (NGINX_APP_CYCLES + NGINX_VFS_CYCLES, 2 * LIB_CMD_CYCLES)
                    }
                    Driver::Incast(_) | Driver::Sink { .. } | Driver::Slowloris(_) => {
                        (0, LIB_CMD_CYCLES)
                    }
                    Driver::ChurnClient { .. } | Driver::ChurnServer { .. } => {
                        (100, 2 * LIB_CMD_CYCLES)
                    }
                };
                if core.budget.available() < cost_app + cost_lib {
                    break;
                }
                // Readiness-driven flow choice for closed-loop drivers:
                // prefer a flow whose completion just arrived; fall back
                // to rotation (initial kick / spurious wakeups).
                let ready_flow = match &core.driver {
                    Driver::EchoClient { .. }
                    | Driver::EchoServer { .. }
                    | Driver::HttpClient { .. }
                    | Driver::HttpServer { .. }
                    | Driver::Sink { .. }
                    | Driver::ChurnClient { .. }
                    | Driver::ChurnServer { .. } => core.ready.pop_front(),
                    _ => None,
                };
                let from_ready = ready_flow.is_some();
                let pick = |flows: &[FlowId], next: &mut usize| -> FlowId {
                    if let Some(f) = ready_flow {
                        f
                    } else {
                        let f = flows[*next % flows.len()];
                        *next += 1;
                        f
                    }
                };
                let did_work = match &mut core.driver {
                    Driver::Idle => false,
                    Driver::BulkSender(s) => s.step(&mut core.lib),
                    Driver::BulkReceiver(r) => r.step(&mut core.lib) > 0,
                    Driver::RoundRobin(s) => s.step(&mut core.lib),
                    Driver::EchoClient { client, flows, next } => {
                        let f = pick(flows, next);
                        client.step_flow(f, &mut core.lib, now_ns)
                    }
                    Driver::EchoServer { server, flows, next } => {
                        let f = pick(flows, next);
                        server.step_flow(f, &mut core.lib)
                    }
                    Driver::HttpClient { client, flows, next } => {
                        let f = pick(flows, next);
                        client.step_flow(f, &mut core.lib, now_ns)
                    }
                    Driver::HttpServer { server, flows, next } => {
                        let f = pick(flows, next);
                        server.step_flow(f, &mut core.lib)
                    }
                    Driver::Incast(s) => s.step(&mut core.lib, now_ns),
                    Driver::Slowloris(s) => s.step(&mut core.lib, now_ns),
                    // Dynamic-membership drivers can have an empty
                    // rotation (all flows torn down); pick would panic.
                    Driver::Sink { server, flows, next } => {
                        if ready_flow.is_none() && flows.is_empty() {
                            false
                        } else {
                            let f = pick(flows, next);
                            server.step_flow(f, &mut core.lib)
                        }
                    }
                    Driver::ChurnClient { client, flows, next } => {
                        if ready_flow.is_none() && flows.is_empty() {
                            false
                        } else {
                            let f = pick(flows, next);
                            client.step_flow(f, &mut core.lib)
                        }
                    }
                    Driver::ChurnServer { server, flows, next } => {
                        if ready_flow.is_none() && flows.is_empty() {
                            false
                        } else {
                            let f = pick(flows, next);
                            server.step_flow(f, &mut core.lib)
                        }
                    }
                };
                if !did_work && from_ready {
                    // A spurious wakeup (e.g. a partial message): pay a
                    // poll and keep draining the ready queue.
                    if core.budget.try_spend(LIB_POLL_CYCLES) {
                        core.acct.charge(CpuCategory::F4tLib, LIB_POLL_CYCLES);
                        continue;
                    }
                    break;
                }
                if did_work {
                    did_anything = true;
                    let spent = core.budget.try_spend(cost_app + cost_lib);
                    debug_assert!(spent, "checked available");
                    if cost_app > 0 {
                        core.acct.charge(CpuCategory::App, cost_app);
                        // The VFS share of the HTTP server is kernel time.
                        if matches!(core.driver, Driver::HttpServer { .. }) {
                            core.acct.charge(CpuCategory::Kernel, NGINX_VFS_CYCLES);
                            // Re-attribute: app charge included vfs above.
                            core.acct.app -= NGINX_VFS_CYCLES;
                        }
                    }
                    core.acct.charge(CpuCategory::F4tLib, cost_lib);
                } else {
                    // Nothing actionable: pay one poll and yield.
                    if core.budget.try_spend(LIB_POLL_CYCLES) {
                        core.acct.charge(CpuCategory::F4tLib, LIB_POLL_CYCLES);
                    }
                    break;
                }
            }
            if did_anything || !core.completions.is_empty() {
                core.empty_polls = 0;
            } else {
                core.empty_polls += 1;
                if self.sleep_after_poll && core.empty_polls >= SLEEP_AFTER_EMPTY_TICKS {
                    core.sleeping = true;
                    // Arm the wake timer for drivers with future work.
                    core.wake_at_ns = match &core.driver {
                        Driver::EchoClient { client, .. } => client.earliest_deadline(),
                        _ => None,
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn tuple(i: u16) -> FourTuple {
        FourTuple::new(Ipv4Addr::new(10, 0, 0, 1), 10_000 + i, Ipv4Addr::new(10, 0, 0, 2), 80)
    }

    #[test]
    fn command_dma_reaches_engine() {
        let mut node = Node::new(1, EngineConfig::single_fpc());
        let flow = node.add_established_flow(tuple(0), SeqNum(0), 0).unwrap();
        node.set_driver(0, Driver::BulkSender(BulkSender::new(flow, 128)));
        for c in 0..2_000u64 {
            node.tick(c * 4);
        }
        assert!(node.engine.stats().host_events > 0, "commands crossed PCIe");
        // The engine produced data segments.
        assert!(node.engine.pop_tx().is_some());
    }

    #[test]
    fn send_rate_matches_library_cost_model() {
        // One core at 2.3 GHz with 40-cycle sends + ~12-cycle completions
        // should issue tens of requests per microsecond (≈44 Mrps).
        let mut node = Node::new(1, EngineConfig::reference());
        let flow = node.add_established_flow(tuple(0), SeqNum(0), 0).unwrap();
        node.set_driver(0, Driver::BulkSender(BulkSender::new(flow, 128)));
        // Drain TX so buffer never fills (ideal peer ACK immediately).
        let mut issued_at_10us = 0;
        for c in 0..25_000u64 {
            node.tick(c * 4);
            while node.engine.pop_tx().is_some() {}
            // Ideal peer ACKs at a realistic cadence (every ~16 cycles,
            // i.e. one cumulative ACK per couple of MTUs of data).
            if c % 16 == 0 {
                if let Some(t) = node.engine.peek_tcb(flow) {
                    if t.snd_nxt.since(t.snd_una) > 0 {
                        node.engine.push_rx(f4t_tcp::Segment::pure_ack(
                            tuple(0).reversed(),
                            t.rcv_nxt,
                            t.snd_nxt,
                            f4t_tcp::TCP_BUFFER,
                        ));
                    }
                }
            }
            if c == 2_499 {
                let Driver::BulkSender(s) = node.driver(0) else { panic!() };
                issued_at_10us = s.requests();
            }
        }
        let Driver::BulkSender(s) = node.driver(0) else { panic!() };
        let issued_last_90us = s.requests() - issued_at_10us;
        // 90 µs at ~44 Mrps ≈ 3960; allow wide tolerance for completion
        // processing share.
        assert!(
            (2_000..5_000).contains(&issued_last_90us),
            "issued {issued_last_90us} in 90 us"
        );
    }

    #[test]
    fn rss_routes_completions_to_owning_core() {
        let mut node = Node::new(2, EngineConfig::single_fpc());
        let f0 = node.add_established_flow(tuple(0), SeqNum(0), 0).unwrap();
        let f1 = node.add_established_flow(tuple(1), SeqNum(0), 1).unwrap();
        node.set_driver(0, Driver::BulkSender(BulkSender::new(f0, 1000)));
        node.set_driver(1, Driver::BulkSender(BulkSender::new(f1, 1000)));
        for c in 0..4_000u64 {
            node.tick(c * 4);
            while let Some(seg) = node.engine.pop_tx() {
                // Ideal peer: ack everything instantly.
                node.engine.push_rx(f4t_tcp::Segment::pure_ack(
                    seg.tuple.reversed(),
                    seg.ack,
                    seg.seq_end(),
                    f4t_tcp::TCP_BUFFER,
                ));
            }
        }
        // Both cores saw their own flow's pointers advance.
        assert!(node.lib(0).socket(f0).unwrap().acked.since(SeqNum(0)) > 0);
        assert!(node.lib(1).socket(f1).unwrap().acked.since(SeqNum(0)) > 0);
    }
}
