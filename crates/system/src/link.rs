//! The 100 Gbps direct-attach link between two engines.
//!
//! The evaluation connects nodes back-to-back (§5: "we set up the network
//! by directly connecting ... two FtEngines"). Each direction serializes
//! segments at line rate (observed from the 250 MHz engine domain) and
//! delivers them after a fixed propagation + MAC/PHY delay. The link does
//! not drop: loss experiments inject drops explicitly at the system layer.

use f4t_sim::clock::BytePacer;
use f4t_sim::ClockDomain;
use f4t_tcp::Segment;
use std::collections::VecDeque;

/// One direction of the link.
#[derive(Debug)]
struct LinkDir {
    pacer: BytePacer,
    in_flight: VecDeque<(u64, Segment)>,
    bytes: u64,
    segments: u64,
}

/// A full-duplex fixed-latency link.
#[derive(Debug)]
pub struct DuplexLink {
    dirs: [LinkDir; 2],
    delay_ns: u64,
}

/// Direction index: node A → node B.
pub const A_TO_B: usize = 0;
/// Direction index: node B → node A.
pub const B_TO_A: usize = 1;

impl DuplexLink {
    /// Creates a link of `gbps` with one-way latency `delay_ns`
    /// (direct-attach 100G ≈ 1 µs including MAC/PHY and cabling).
    pub fn new(gbps: u64, delay_ns: u64) -> DuplexLink {
        let mk = || LinkDir {
            pacer: BytePacer::for_link(gbps, ClockDomain::ENGINE_CORE, 2 * 1538),
            in_flight: VecDeque::new(),
            bytes: 0,
            segments: 0,
        };
        DuplexLink { dirs: [mk(), mk()], delay_ns }
    }

    /// The paper's testbed link.
    pub fn hundred_gig() -> DuplexLink {
        DuplexLink::new(100, 1_000)
    }

    /// Accrues one engine cycle of serialization budget.
    pub fn tick(&mut self) {
        for d in &mut self.dirs {
            d.pacer.tick();
        }
    }

    /// Whether direction `dir` can serialize a segment of `wire_len`
    /// right now (the MAC-side drain gate: the engine's TX buffer keeps
    /// backpressure when this is false).
    pub fn can_send(&self, dir: usize, wire_len: u32) -> bool {
        self.dirs[dir].pacer.available() >= u64::from(wire_len)
    }

    /// Sends a segment (caller must have checked [`Self::can_send`]).
    pub fn send(&mut self, dir: usize, seg: Segment, now_ns: u64) {
        let d = &mut self.dirs[dir];
        let consumed = d.pacer.try_consume(u64::from(seg.wire_len()));
        debug_assert!(consumed, "send without can_send");
        d.bytes += u64::from(seg.wire_len());
        d.segments += 1;
        d.in_flight.push_back((now_ns + self.delay_ns, seg));
    }

    /// Pops the next segment due for delivery in `dir` at `now_ns`.
    pub fn deliver(&mut self, dir: usize, now_ns: u64) -> Option<Segment> {
        let d = &mut self.dirs[dir];
        if d.in_flight.front().is_some_and(|&(at, _)| at <= now_ns) {
            d.in_flight.pop_front().map(|(_, s)| s)
        } else {
            None
        }
    }

    /// Wire bytes carried in `dir`.
    pub fn bytes(&self, dir: usize) -> u64 {
        self.dirs[dir].bytes
    }

    /// Segments carried in `dir`.
    pub fn segments(&self, dir: usize) -> u64 {
        self.dirs[dir].segments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f4t_tcp::{FourTuple, SeqNum};

    fn seg(len: u32) -> Segment {
        Segment::data(FourTuple::default(), SeqNum(0), SeqNum(0), len)
    }

    #[test]
    fn serialization_budget_paces() {
        let mut l = DuplexLink::hundred_gig();
        // Two MTU burst allowance; a third back-to-back MTU must wait.
        l.tick();
        for _ in 0..61 {
            l.tick(); // ~3100 B of credit total
        }
        assert!(l.can_send(A_TO_B, 1538));
        l.send(A_TO_B, seg(1460), 0);
        assert!(l.can_send(A_TO_B, 1538));
        l.send(A_TO_B, seg(1460), 0);
        assert!(!l.can_send(A_TO_B, 1538), "line rate enforced");
    }

    #[test]
    fn delivery_after_delay() {
        let mut l = DuplexLink::new(100, 500);
        for _ in 0..10 {
            l.tick();
        }
        l.send(A_TO_B, seg(100), 1_000);
        assert!(l.deliver(A_TO_B, 1_400).is_none(), "still propagating");
        assert!(l.deliver(A_TO_B, 1_500).is_some());
        assert!(l.deliver(A_TO_B, 1_500).is_none());
    }

    #[test]
    fn directions_independent() {
        let mut l = DuplexLink::hundred_gig();
        for _ in 0..10 {
            l.tick();
        }
        l.send(A_TO_B, seg(64), 0);
        l.send(B_TO_A, seg(64), 0);
        assert_eq!(l.segments(A_TO_B), 1);
        assert_eq!(l.segments(B_TO_A), 1);
        assert_eq!(l.bytes(A_TO_B), 64 + 78);
        assert!(l.deliver(B_TO_A, 10_000).is_some());
        assert!(l.deliver(A_TO_B, 10_000).is_some());
    }

    #[test]
    fn hundred_gig_sustains_line_rate() {
        // 50 B/cycle: 1538 B frames every ~31 cycles = 100 Gbps.
        let mut l = DuplexLink::hundred_gig();
        let mut sent = 0u64;
        for c in 0..250_000u64 {
            l.tick();
            if l.can_send(A_TO_B, 1538) {
                l.send(A_TO_B, seg(1460), c * 4);
                sent += 1;
            }
        }
        let gbps = f4t_sim::gbps(sent * 1538, 1_000_000);
        assert!((98.0..=100.5).contains(&gbps), "got {gbps:.1}");
    }
}
