//! The 100 Gbps direct-attach link between two engines.
//!
//! The evaluation connects nodes back-to-back (§5: "we set up the network
//! by directly connecting ... two FtEngines"). Each direction serializes
//! segments at line rate (observed from the 250 MHz engine domain) and
//! delivers them after a fixed propagation + MAC/PHY delay. The pristine
//! link does not drop; hostile-network scenarios attach an
//! [`Impairments`] profile (FtStorm, DESIGN.md §14) that can lose,
//! duplicate, reorder and jitter **data** segments — ACKs are never
//! impaired, and decisions are drawn from per-direction deterministic
//! streams so every run replays bit-identically from its seed.

use f4t_netsim::{ImpairState, Impairments};
use f4t_sim::clock::BytePacer;
use f4t_sim::ClockDomain;
use f4t_tcp::Segment;
use std::collections::VecDeque;

/// A reordered segment held aside: it re-enters the delivery queue after
/// `countdown` further data segments pass it, or at `deadline_ns` if the
/// direction goes quiet first (so a held tail segment cannot dangle).
#[derive(Debug)]
struct HeldSegment {
    countdown: u64,
    deadline_ns: u64,
    arrival_ns: u64,
    seg: Segment,
}

/// One direction of the link.
#[derive(Debug)]
struct LinkDir {
    pacer: BytePacer,
    in_flight: VecDeque<(u64, Segment)>,
    held: Vec<HeldSegment>,
    bytes: u64,
    segments: u64,
    impair: Option<ImpairState>,
    dropped_loss: u64,
    duplicated: u64,
    reordered: u64,
}

impl LinkDir {
    /// Enqueues a delivery, clamping the arrival so the queue stays
    /// non-decreasing (delivery only ever inspects the front).
    fn enqueue(&mut self, arrival_ns: u64, seg: Segment) {
        let at = match self.in_flight.back() {
            Some(&(back, _)) => back.max(arrival_ns),
            None => arrival_ns,
        };
        self.in_flight.push_back((at, seg));
    }

    /// One data segment passed the held buffer: countdowns tick, and any
    /// segment whose displacement is spent re-enters behind the queue.
    fn pass_held(&mut self) {
        let mut i = 0;
        while i < self.held.len() {
            self.held[i].countdown = self.held[i].countdown.saturating_sub(1);
            if self.held[i].countdown == 0 {
                let h = self.held.remove(i);
                self.enqueue(h.arrival_ns, h.seg);
            } else {
                i += 1;
            }
        }
    }

    /// Releases held segments whose flush deadline passed (the liveness
    /// bound for a held tail segment on a quiet direction).
    fn flush_held(&mut self, now_ns: u64) {
        let mut i = 0;
        while i < self.held.len() {
            if self.held[i].deadline_ns <= now_ns {
                let h = self.held.remove(i);
                self.enqueue(h.arrival_ns, h.seg);
            } else {
                i += 1;
            }
        }
    }
}

/// A full-duplex fixed-latency link.
#[derive(Debug)]
pub struct DuplexLink {
    dirs: [LinkDir; 2],
    delay_ns: u64,
}

/// Direction index: node A → node B.
pub const A_TO_B: usize = 0;
/// Direction index: node B → node A.
pub const B_TO_A: usize = 1;

impl DuplexLink {
    /// Creates a link of `gbps` with one-way latency `delay_ns`
    /// (direct-attach 100G ≈ 1 µs including MAC/PHY and cabling).
    pub fn new(gbps: u64, delay_ns: u64) -> DuplexLink {
        let mk = || LinkDir {
            pacer: BytePacer::for_link(gbps, ClockDomain::ENGINE_CORE, 2 * 1538),
            in_flight: VecDeque::new(),
            held: Vec::new(),
            bytes: 0,
            segments: 0,
            impair: None,
            dropped_loss: 0,
            duplicated: 0,
            reordered: 0,
        };
        DuplexLink { dirs: [mk(), mk()], delay_ns }
    }

    /// The paper's testbed link.
    pub fn hundred_gig() -> DuplexLink {
        DuplexLink::new(100, 1_000)
    }

    /// Attaches an impairment profile to both directions. Each direction
    /// draws from its own reseeded decision stream; `clean` (inactive)
    /// profiles detach impairment entirely.
    pub fn set_impairments(&mut self, imp: Impairments) {
        for (i, d) in self.dirs.iter_mut().enumerate() {
            d.impair = imp.is_active().then(|| ImpairState::new(imp.reseeded(i as u64)));
        }
    }

    /// How long a reordered segment may be held before the flush
    /// deadline forces delivery (keeps quiet directions live while
    /// staying far below the 5 ms RTO floor).
    fn hold_flush_ns(&self) -> u64 {
        8 * self.delay_ns.max(1_000)
    }

    /// Accrues one engine cycle of serialization budget.
    pub fn tick(&mut self) {
        for d in &mut self.dirs {
            d.pacer.tick();
        }
    }

    /// Whether direction `dir` can serialize a segment of `wire_len`
    /// right now (the MAC-side drain gate: the engine's TX buffer keeps
    /// backpressure when this is false).
    pub fn can_send(&self, dir: usize, wire_len: u32) -> bool {
        self.dirs[dir].pacer.available() >= u64::from(wire_len)
    }

    /// Sends a segment (caller must have checked [`Self::can_send`]).
    pub fn send(&mut self, dir: usize, seg: Segment, now_ns: u64) {
        let flush_ns = self.hold_flush_ns();
        let d = &mut self.dirs[dir];
        let consumed = d.pacer.try_consume(u64::from(seg.wire_len()));
        debug_assert!(consumed, "send without can_send");
        d.bytes += u64::from(seg.wire_len());
        d.segments += 1;
        let arrival = now_ns + self.delay_ns;
        // Impairments judge data segments only; ACKs pass clean and do
        // not count toward reorder displacement.
        if !seg.has_payload() {
            d.enqueue(arrival, seg);
            return;
        }
        let decision = match d.impair.as_mut() {
            Some(st) => st.decide(),
            None => f4t_netsim::ImpairDecision::default(),
        };
        if decision.drop {
            // The wire time was spent; the segment dies on the link.
            d.dropped_loss += 1;
            d.pass_held();
            return;
        }
        let arrival = arrival + decision.jitter_ns;
        if decision.reorder > 0 {
            d.reordered += 1;
            d.held.push(HeldSegment {
                countdown: decision.reorder,
                deadline_ns: arrival + flush_ns,
                arrival_ns: arrival,
                seg,
            });
            return;
        }
        d.enqueue(arrival, seg);
        if decision.duplicate {
            d.duplicated += 1;
            d.enqueue(arrival, seg);
        }
        d.pass_held();
    }

    /// Pops the next segment due for delivery in `dir` at `now_ns`.
    pub fn deliver(&mut self, dir: usize, now_ns: u64) -> Option<Segment> {
        let d = &mut self.dirs[dir];
        if !d.held.is_empty() {
            d.flush_held(now_ns);
        }
        if d.in_flight.front().is_some_and(|&(at, _)| at <= now_ns) {
            d.in_flight.pop_front().map(|(_, s)| s)
        } else {
            None
        }
    }

    /// Wire bytes carried in `dir`.
    pub fn bytes(&self, dir: usize) -> u64 {
        self.dirs[dir].bytes
    }

    /// Segments carried in `dir`.
    pub fn segments(&self, dir: usize) -> u64 {
        self.dirs[dir].segments
    }

    /// Data segments lost to the impairment model in `dir`.
    pub fn dropped_loss(&self, dir: usize) -> u64 {
        self.dirs[dir].dropped_loss
    }

    /// Duplicate deliveries injected in `dir`.
    pub fn duplicated(&self, dir: usize) -> u64 {
        self.dirs[dir].duplicated
    }

    /// Data segments held back (reordered) in `dir`.
    pub fn reordered(&self, dir: usize) -> u64 {
        self.dirs[dir].reordered
    }

    /// Total impairment events (loss + duplication + reordering) across
    /// both directions — the scenario matrix asserts this is non-zero
    /// under every non-clean profile.
    pub fn impairment_events(&self) -> u64 {
        self.dirs
            .iter()
            .map(|d| d.dropped_loss + d.duplicated + d.reordered)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use f4t_tcp::{FourTuple, SeqNum};

    fn seg(len: u32) -> Segment {
        Segment::data(FourTuple::default(), SeqNum(0), SeqNum(0), len)
    }

    fn data_at(seq: u32, len: u32) -> Segment {
        Segment::data(FourTuple::default(), SeqNum(seq), SeqNum(0), len)
    }

    fn ack() -> Segment {
        Segment::pure_ack(FourTuple::default(), SeqNum(0), SeqNum(0), 65_535)
    }

    fn ticked(mut l: DuplexLink, n: u64) -> DuplexLink {
        for _ in 0..n {
            l.tick();
        }
        l
    }

    #[test]
    fn serialization_budget_paces() {
        let mut l = DuplexLink::hundred_gig();
        // Two MTU burst allowance; a third back-to-back MTU must wait.
        l.tick();
        for _ in 0..61 {
            l.tick(); // ~3100 B of credit total
        }
        assert!(l.can_send(A_TO_B, 1538));
        l.send(A_TO_B, seg(1460), 0);
        assert!(l.can_send(A_TO_B, 1538));
        l.send(A_TO_B, seg(1460), 0);
        assert!(!l.can_send(A_TO_B, 1538), "line rate enforced");
    }

    #[test]
    fn delivery_after_delay() {
        let mut l = ticked(DuplexLink::new(100, 500), 10);
        l.send(A_TO_B, seg(100), 1_000);
        assert!(l.deliver(A_TO_B, 1_400).is_none(), "still propagating");
        assert!(l.deliver(A_TO_B, 1_500).is_some());
        assert!(l.deliver(A_TO_B, 1_500).is_none());
    }

    #[test]
    fn directions_independent() {
        let mut l = ticked(DuplexLink::hundred_gig(), 10);
        l.send(A_TO_B, seg(64), 0);
        l.send(B_TO_A, seg(64), 0);
        assert_eq!(l.segments(A_TO_B), 1);
        assert_eq!(l.segments(B_TO_A), 1);
        assert_eq!(l.bytes(A_TO_B), 64 + 78);
        assert!(l.deliver(B_TO_A, 10_000).is_some());
        assert!(l.deliver(A_TO_B, 10_000).is_some());
    }

    #[test]
    fn hundred_gig_sustains_line_rate() {
        // 50 B/cycle: 1538 B frames every ~31 cycles = 100 Gbps.
        let mut l = DuplexLink::hundred_gig();
        let mut sent = 0u64;
        for c in 0..250_000u64 {
            l.tick();
            if l.can_send(A_TO_B, 1538) {
                l.send(A_TO_B, seg(1460), c * 4);
                sent += 1;
            }
        }
        let gbps = f4t_sim::gbps(sent * 1538, 1_000_000);
        assert!((98.0..=100.5).contains(&gbps), "got {gbps:.1}");
    }

    #[test]
    fn impaired_loss_spares_acks() {
        let mut l = ticked(DuplexLink::hundred_gig(), 200);
        l.set_impairments(Impairments { loss_p: 1.0, seed: 9, ..Impairments::none() });
        l.send(A_TO_B, seg(100), 0);
        l.send(A_TO_B, ack(), 0);
        assert_eq!(l.dropped_loss(A_TO_B), 1, "data lost");
        let delivered = l.deliver(A_TO_B, 10_000).expect("ACK passes clean");
        assert!(!delivered.has_payload());
        assert!(l.deliver(A_TO_B, 10_000).is_none());
    }

    #[test]
    fn duplication_delivers_twice() {
        let mut l = ticked(DuplexLink::hundred_gig(), 200);
        l.set_impairments(Impairments { dup_p: 1.0, seed: 9, ..Impairments::none() });
        l.send(A_TO_B, seg(100), 0);
        assert!(l.deliver(A_TO_B, 10_000).is_some());
        assert!(l.deliver(A_TO_B, 10_000).is_some(), "duplicate copy");
        assert!(l.deliver(A_TO_B, 10_000).is_none());
        assert_eq!(l.duplicated(A_TO_B), 1);
    }

    #[test]
    fn reordering_displaces_behind_later_sends() {
        let mut l = ticked(DuplexLink::hundred_gig(), 500);
        l.set_impairments(Impairments {
            reorder_p: 1.0,
            reorder_depth: 1,
            seed: 9,
            ..Impairments::none()
        });
        // The first segment is judged "hold for 1 data pass"; detach
        // impairment so the second passes clean and releases it.
        l.send(A_TO_B, data_at(0, 100), 0);
        assert_eq!(l.reordered(A_TO_B), 1);
        assert!(l.deliver(A_TO_B, 5_000).is_none(), "held, not delivered");
        l.set_impairments(Impairments::none());
        l.send(A_TO_B, data_at(100, 100), 100);
        let first = l.deliver(A_TO_B, 5_000).expect("passing segment delivers");
        assert_eq!(first.seq, SeqNum(100), "later send overtakes the held one");
        let second = l.deliver(A_TO_B, 5_000).expect("held segment re-enters behind it");
        assert_eq!(second.seq, SeqNum(0));
    }

    #[test]
    fn held_tail_segment_flushes_on_quiet_direction() {
        let mut l = ticked(DuplexLink::hundred_gig(), 500);
        l.set_impairments(Impairments {
            reorder_p: 1.0,
            reorder_depth: 3,
            seed: 9,
            ..Impairments::none()
        });
        l.send(A_TO_B, data_at(0, 100), 0);
        assert_eq!(l.reordered(A_TO_B), 1);
        // Nothing else is ever sent: the flush deadline (8x delay) must
        // release the segment rather than wedging the flow.
        assert!(l.deliver(A_TO_B, 8_000).is_none());
        let s = l.deliver(A_TO_B, 20_000).expect("deadline flush releases the tail");
        assert_eq!(s.seq, SeqNum(0));
    }

    #[test]
    fn reorder_swaps_wire_order() {
        let mut l = ticked(DuplexLink::hundred_gig(), 500);
        // Seeded so only some segments are held: verify at least one
        // delivery happens out of send order.
        l.set_impairments(Impairments {
            reorder_p: 0.5,
            reorder_depth: 2,
            seed: 1,
            ..Impairments::none()
        });
        let mut order = Vec::new();
        for i in 0..20u32 {
            for _ in 0..100 {
                l.tick();
            }
            l.send(A_TO_B, data_at(i * 100, 100), u64::from(i) * 2_000);
            while let Some(s) = l.deliver(A_TO_B, u64::from(i) * 2_000 + 1_500) {
                order.push(s.seq.0);
            }
        }
        while let Some(s) = l.deliver(A_TO_B, u64::MAX) {
            order.push(s.seq.0);
        }
        assert_eq!(order.len(), 20, "nothing lost");
        assert!(order.windows(2).any(|w| w[1] < w[0]), "no reordering in {order:?}");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).map(|i| i * 100).collect::<Vec<_>>());
    }

    #[test]
    fn impaired_runs_replay_deterministically() {
        let imp = Impairments::profile("burst-loss").unwrap();
        let run = || {
            let mut l = ticked(DuplexLink::hundred_gig(), 4_000);
            l.set_impairments(imp);
            let mut delivered = Vec::new();
            for i in 0..2_000u32 {
                for _ in 0..100 {
                    l.tick();
                }
                let now = u64::from(i) * 1_000;
                l.send(A_TO_B, data_at(i * 100, 100), now);
                while let Some(s) = l.deliver(A_TO_B, now) {
                    delivered.push(s.seq.0);
                }
            }
            (delivered, l.dropped_loss(A_TO_B))
        };
        let (a, la) = run();
        let (b, lb) = run();
        assert_eq!(a, b);
        assert_eq!(la, lb);
        assert!(la > 0, "burst loss engaged");
    }

    #[test]
    fn delivery_times_stay_monotonic_under_impairments() {
        let mut l = ticked(DuplexLink::hundred_gig(), 4_000);
        l.set_impairments(Impairments {
            reorder_p: 0.3,
            reorder_depth: 3,
            dup_p: 0.2,
            jitter_ns: 1_500,
            seed: 77,
            ..Impairments::none()
        });
        let mut count = 0;
        for i in 0..500u32 {
            for _ in 0..100 {
                l.tick();
            }
            let now = u64::from(i) * 500;
            l.send(A_TO_B, data_at(i, 100), now);
            // Any due segment must actually pop (front-only delivery
            // would wedge if arrivals regressed).
            while l.deliver(A_TO_B, now).is_some() {
                count += 1;
            }
        }
        while l.deliver(A_TO_B, u64::MAX).is_some() {
            count += 1;
        }
        assert!(count > 400, "delivered {count}");
    }
}
