//! Measurement results for the figure harnesses.

use f4t_host::CpuAccounting;
use f4t_sim::{Histogram, MetricsRegistry};

/// What a measurement window produced.
#[derive(Debug, Clone)]
pub struct Metrics {
    /// Window length in nanoseconds.
    pub duration_ns: u64,
    /// Application requests completed in the window (sender-side for
    /// open-loop workloads, client-side round trips for closed-loop).
    pub requests: u64,
    /// Application payload bytes delivered end to end in the window.
    pub goodput_bytes: u64,
    /// Request latency samples collected in the window (closed-loop
    /// workloads only; empty otherwise).
    pub latency: Histogram,
    /// Client/sender-node CPU accounting over the window.
    pub cpu: CpuAccounting,
    /// TCB migrations during the window (Fig. 13 diagnostics).
    pub migrations: u64,
    /// Retransmissions during the window (health check).
    pub retransmissions: u64,
    /// FtScope window delta over both engines (`a.engine.*` client side,
    /// `b.engine.*` server side): counters are window deltas, gauges and
    /// histograms are end-of-window values.
    pub telemetry: MetricsRegistry,
}

impl Metrics {
    /// Goodput in Gbps.
    pub fn goodput_gbps(&self) -> f64 {
        f4t_sim::gbps(self.goodput_bytes, self.duration_ns)
    }

    /// Request rate in millions of requests per second.
    pub fn mrps(&self) -> f64 {
        f4t_sim::mops(self.requests, self.duration_ns)
    }

    /// Median latency in microseconds (zero when no samples).
    pub fn median_latency_us(&self) -> f64 {
        self.latency.percentile(50.0) as f64 / 1_000.0
    }

    /// 99th-percentile latency in microseconds.
    pub fn p99_latency_us(&self) -> f64 {
        self.latency.percentile(99.0) as f64 / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let mut latency = Histogram::new();
        latency.record(10_000);
        latency.record(20_000);
        let m = Metrics {
            duration_ns: 1_000_000, // 1 ms
            requests: 44_000,
            goodput_bytes: 5_632_000, // 44k × 128 B
            latency,
            cpu: CpuAccounting::default(),
            migrations: 0,
            retransmissions: 0,
            telemetry: MetricsRegistry::new(),
        };
        assert!((m.mrps() - 44.0).abs() < 1e-9);
        assert!((m.goodput_gbps() - 45.056).abs() < 1e-3);
        assert!(m.median_latency_us() >= 9.0);
        assert!(m.p99_latency_us() >= m.median_latency_us());
    }
}
