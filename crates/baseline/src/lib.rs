#![warn(missing_docs)]
//! # f4t-baseline — the comparison designs
//!
//! Two prior FPGA TCP accelerator architectures the paper measures F4T
//! against:
//!
//! * [`StallingEngine`] — the "w-RMW" / `Baseline` design (§3.1, Fig. 2,
//!   Fig. 15, Fig. 16b): an engine that performs each stateful TCP
//!   operation as an atomic read-modify-write and therefore **stalls**
//!   between events. The paper derives it from Limago, which "operates at
//!   322 MHz and uses 17 cycles to process an event"; the Fig. 16b
//!   ablation runs the same design at F4T's 250 MHz.
//! * [`TonicModel`] — the "w/o-RMW" design (Fig. 2): TONIC's approach of
//!   forcing all RMW work into a single cycle at 100 MHz, transferring
//!   one fixed 128 B segment per cycle, with ~1 K flows of SRAM-only
//!   state. Fig. 2 additionally grants it arbitrary-length requests, as
//!   the paper does.
//!
//! Both are small cycle models exposing the same event-rate metric the
//! F4T engine reports, so the harnesses can sweep them side by side.

use f4t_sim::ClockDomain;
use std::collections::VecDeque;

/// The stalling w-RMW engine.
///
/// Events are admitted into a queue; processing an event occupies the
/// (single, non-pipelined) RMW unit for `stall_cycles`. This is the
/// architecture whose throughput collapses as TCP-algorithm latency grows
/// (Fig. 15) — exactly the failure mode F4T's accumulation removes.
///
/// # Examples
///
/// ```
/// use f4t_baseline::StallingEngine;
/// let mut e = StallingEngine::limago();
/// assert_eq!(e.events_per_second(), 322_000_000 / 17);
/// for _ in 0..100 {
///     e.offer_event();
///     e.tick();
/// }
/// assert!(e.processed() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct StallingEngine {
    clock: ClockDomain,
    stall_cycles: u64,
    busy_until: u64,
    cycle: u64,
    queue: VecDeque<()>,
    queue_cap: usize,
    processed: u64,
    offered: u64,
    rejected: u64,
}

impl StallingEngine {
    /// The Limago-derived design of §3.1: 322 MHz, 17 cycles per event.
    pub fn limago() -> StallingEngine {
        StallingEngine::new(ClockDomain::ENGINE_NET, 17)
    }

    /// The Fig. 16b `Baseline`: the same 17-cycle stall on F4T's 250 MHz
    /// platform.
    pub fn baseline_250mhz() -> StallingEngine {
        StallingEngine::new(ClockDomain::ENGINE_CORE, 17)
    }

    /// A stalling engine with an arbitrary per-event latency (the Fig. 15
    /// sweep).
    pub fn new(clock: ClockDomain, stall_cycles: u64) -> StallingEngine {
        assert!(stall_cycles > 0, "stall must be non-zero");
        StallingEngine {
            clock,
            stall_cycles,
            busy_until: 0,
            cycle: 0,
            queue: VecDeque::new(),
            queue_cap: 64,
            processed: 0,
            offered: 0,
            rejected: 0,
        }
    }

    /// The engine's clock domain.
    pub fn clock(&self) -> ClockDomain {
        self.clock
    }

    /// Configured per-event occupancy in cycles.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Peak sustainable event rate: `frequency / stall` — the analytic
    /// ceiling the cycle model converges to.
    pub fn events_per_second(&self) -> u64 {
        self.clock.freq_hz() / self.stall_cycles
    }

    /// Offers one event; returns `false` if the input queue is full (the
    /// backpressure that, at system level, stalls the whole RX pipeline).
    pub fn offer_event(&mut self) -> bool {
        self.offered += 1;
        if self.queue.len() >= self.queue_cap {
            self.rejected += 1;
            return false;
        }
        self.queue.push_back(());
        true
    }

    /// Advances one cycle of this engine's clock.
    pub fn tick(&mut self) {
        if self.cycle >= self.busy_until
            && self.queue.pop_front().is_some() {
                self.processed += 1;
                self.busy_until = self.cycle + self.stall_cycles;
            }
        self.cycle += 1;
    }

    /// Events fully processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Events offered (accepted + rejected).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Events rejected by backpressure.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Elapsed cycles.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Measured event rate so far, events/second.
    pub fn measured_rate(&self) -> f64 {
        if self.cycle == 0 {
            return 0.0;
        }
        self.processed as f64 * self.clock.freq_hz() as f64 / self.cycle as f64
    }
}

/// The TONIC-like single-cycle design (§2.5).
///
/// Processes one event per 100 MHz cycle with **no** stalls — achieved by
/// obligating all RMW work to finish in 10 ns — but fixed to 128 B
/// segment-granularity transfers and ~1 K SRAM-resident flows. The Fig. 2
/// `w/o-RMW` curve additionally assumes arbitrary-length requests
/// (`segment_locked = false`).
#[derive(Debug, Clone)]
pub struct TonicModel {
    clock: ClockDomain,
    /// When true, every transfer is rounded up to whole 128 B segments
    /// and capped at one segment per event (TONIC's real constraint).
    segment_locked: bool,
    max_flows: u32,
    processed: u64,
    payload_bytes: u64,
    cycle: u64,
}

/// TONIC's fixed segment size.
pub const TONIC_SEGMENT: u32 = 128;

impl TonicModel {
    /// TONIC as published: 100 MHz, 128 B segments, 1 K flows.
    pub fn tonic() -> TonicModel {
        TonicModel {
            clock: ClockDomain::TONIC,
            segment_locked: true,
            max_flows: 1024,
            processed: 0,
            payload_bytes: 0,
            cycle: 0,
        }
    }

    /// The paper's hypothetical `w/o-RMW` design: same single-cycle
    /// processing, arbitrary request lengths.
    pub fn without_rmw() -> TonicModel {
        TonicModel { segment_locked: false, ..TonicModel::tonic() }
    }

    /// Peak event rate (one per cycle).
    pub fn events_per_second(&self) -> u64 {
        self.clock.freq_hz()
    }

    /// Maximum concurrent flows (SRAM-only TCB storage).
    pub fn max_flows(&self) -> u32 {
        self.max_flows
    }

    /// Processes one request of `len` bytes this cycle; returns the bytes
    /// actually transferred (capped at one 128 B segment when
    /// segment-locked).
    pub fn tick_with_request(&mut self, len: u32) -> u32 {
        self.cycle += 1;
        self.processed += 1;
        let sent = if self.segment_locked { len.min(TONIC_SEGMENT) } else { len };
        self.payload_bytes += u64::from(sent);
        sent
    }

    /// An idle cycle.
    pub fn tick_idle(&mut self) {
        self.cycle += 1;
    }

    /// Total payload bytes transferred.
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes
    }

    /// Events processed.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Achieved goodput in Gbps over the elapsed cycles.
    pub fn goodput_gbps(&self) -> f64 {
        if self.cycle == 0 {
            return 0.0;
        }
        let ns = self.clock.cycles_to_ns(self.cycle);
        f4t_sim::gbps(self.payload_bytes, ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limago_rate_matches_paper() {
        // 322 MHz / 17 cycles ≈ 18.9 M events/s.
        let e = StallingEngine::limago();
        assert_eq!(e.events_per_second(), 18_941_176);
    }

    #[test]
    fn baseline_250_rate() {
        // 250 MHz / 17 ≈ 14.7 M events/s — the Fig. 16b Baseline, which
        // makes 1FPC's 125 M/s an 8.5× gain, matching the paper's 8.6×.
        let e = StallingEngine::baseline_250mhz();
        assert_eq!(e.events_per_second(), 14_705_882);
        let gain = 125_000_000.0 / e.events_per_second() as f64;
        assert!((8.0..9.0).contains(&gain));
    }

    #[test]
    fn cycle_model_converges_to_analytic_rate() {
        let mut e = StallingEngine::new(ClockDomain::ENGINE_CORE, 17);
        for _ in 0..170_000 {
            e.offer_event();
            e.tick();
        }
        let measured = e.measured_rate();
        let analytic = e.events_per_second() as f64;
        assert!((measured - analytic).abs() / analytic < 0.01, "measured {measured}");
        assert!(e.rejected() > 0, "saturated input exerts backpressure");
    }

    #[test]
    fn stall_sweep_is_inverse_linear() {
        // Fig. 15's baseline curve shape: doubling the latency halves the
        // rate.
        let r1 = StallingEngine::new(ClockDomain::ENGINE_CORE, 10).events_per_second();
        let r2 = StallingEngine::new(ClockDomain::ENGINE_CORE, 20).events_per_second();
        assert_eq!(r1, 2 * r2);
    }

    #[test]
    fn idle_engine_processes_lazily() {
        let mut e = StallingEngine::new(ClockDomain::ENGINE_CORE, 5);
        for _ in 0..10 {
            e.tick();
        }
        assert_eq!(e.processed(), 0);
        e.offer_event();
        e.tick();
        assert_eq!(e.processed(), 1);
    }

    #[test]
    fn tonic_segment_lock_caps_transfers() {
        let mut t = TonicModel::tonic();
        assert_eq!(t.tick_with_request(1000), 128, "capped at one segment");
        assert_eq!(t.tick_with_request(64), 64, "small requests pass through");
        assert_eq!(t.max_flows(), 1024);
        assert_eq!(t.events_per_second(), 100_000_000);
    }

    #[test]
    fn without_rmw_sends_arbitrary_lengths() {
        let mut t = TonicModel::without_rmw();
        assert_eq!(t.tick_with_request(1000), 1000);
    }

    #[test]
    fn tonic_peak_goodput_at_128b() {
        // 128 B per 10 ns cycle = 102.4 Gbps of payload: TONIC's design
        // point for saturating 100G with 128 B requests.
        let mut t = TonicModel::tonic();
        for _ in 0..100_000 {
            t.tick_with_request(128);
        }
        assert!((t.goodput_gbps() - 102.4).abs() < 0.5, "got {}", t.goodput_gbps());
    }

    #[test]
    fn fig2_gap_shape() {
        // Fig. 2: w-RMW throughput = 18.9M * size; w/o-RMW = 100M * size.
        // The gap is a constant ~5.3x independent of request size.
        for size in [16u64, 128, 512, 4096] {
            let w_rmw = StallingEngine::limago().events_per_second() * size;
            let wo_rmw = TonicModel::without_rmw().events_per_second() * size;
            let ratio = wo_rmw as f64 / w_rmw as f64;
            assert!((5.2..5.4).contains(&ratio));
        }
    }
}
