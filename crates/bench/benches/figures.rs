//! Criterion wrappers over the figure pipelines, so `cargo bench`
//! exercises every evaluation path end to end (short windows; the real
//! numbers come from the `figNN` binaries and are recorded in
//! EXPERIMENTS.md).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use f4t_baseline::StallingEngine;
use f4t_core::EngineConfig;
use f4t_netsim::{DropPolicy, LinkConfig, RefAlgo, Simulation, SimulationConfig};
use f4t_system::F4tSystem;

fn small_engine() -> EngineConfig {
    EngineConfig { num_fpcs: 2, flows_per_fpc: 64, lut_groups: 2, ..EngineConfig::reference() }
}

fn bench_fig8_bulk(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig08/bulk_128B");
    group.sample_size(10);
    for cores in [1usize, 2] {
        group.bench_with_input(BenchmarkId::new("cores", cores), &cores, |b, &cores| {
            b.iter(|| {
                let mut sys = F4tSystem::bulk(cores, 128, small_engine());
                sys.run_ns(100_000);
                black_box(sys.b.consumed_bytes())
            })
        });
    }
    group.finish();
}

fn bench_fig13_echo(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13/echo_128B");
    group.sample_size(10);
    for flows in [16usize, 256] {
        group.bench_with_input(BenchmarkId::new("flows", flows), &flows, |b, &flows| {
            b.iter(|| {
                let mut sys = F4tSystem::echo(2, flows, 128, small_engine());
                sys.run_ns(150_000);
                black_box(sys.a.requests())
            })
        });
    }
    group.finish();
}

fn bench_fig14_netsim(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14/ns3_reference");
    group.sample_size(10);
    for algo in [RefAlgo::NewReno, RefAlgo::Cubic] {
        group.bench_with_input(BenchmarkId::new("algo", algo), &algo, |b, &algo| {
            b.iter(|| {
                let sim = Simulation::new(SimulationConfig {
                    algo,
                    link: LinkConfig {
                        drops: DropPolicy::EveryNth { n: 1_000, start: 500 },
                        ..LinkConfig::default()
                    },
                    duration_ns: 50_000_000,
                    sample_ns: 1_000_000,
                    ..SimulationConfig::default()
                });
                black_box(sim.run().delivered)
            })
        });
    }
    group.finish();
}

fn bench_fig15_baseline(c: &mut Criterion) {
    c.bench_function("fig15/stalling_baseline_1ms", |b| {
        b.iter(|| {
            let mut e = StallingEngine::baseline_250mhz();
            for _ in 0..250_000 {
                e.offer_event();
                e.tick();
            }
            black_box(e.processed())
        })
    });
}

criterion_group!(benches, bench_fig8_bulk, bench_fig13_echo, bench_fig14_netsim, bench_fig15_baseline);
criterion_main!(benches);
