//! Micro-bench wrappers over the figure pipelines, so `cargo bench`
//! exercises every evaluation path end to end (short windows; the real
//! numbers come from the `figNN` binaries and are recorded in
//! EXPERIMENTS.md). Uses the in-tree [`f4t_bench::micro`] harness.

use f4t_baseline::StallingEngine;
use f4t_bench::micro::bench;
use f4t_core::EngineConfig;
use f4t_netsim::{DropPolicy, LinkConfig, RefAlgo, Simulation, SimulationConfig};
use f4t_system::F4tSystem;
use std::hint::black_box;

fn small_engine() -> EngineConfig {
    EngineConfig { num_fpcs: 2, flows_per_fpc: 64, lut_groups: 2, ..EngineConfig::reference() }
}

fn bench_fig8_bulk() {
    for cores in [1usize, 2] {
        bench(&format!("fig08/bulk_128B/cores/{cores}"), || {
            let mut sys = F4tSystem::bulk(cores, 128, small_engine());
            sys.run_ns(100_000);
            black_box(sys.b.consumed_bytes())
        });
    }
}

fn bench_fig13_echo() {
    for flows in [16usize, 256] {
        bench(&format!("fig13/echo_128B/flows/{flows}"), || {
            let mut sys = F4tSystem::echo(2, flows, 128, small_engine());
            sys.run_ns(150_000);
            black_box(sys.a.requests())
        });
    }
}

fn bench_fig14_netsim() {
    for algo in [RefAlgo::NewReno, RefAlgo::Cubic] {
        bench(&format!("fig14/ns3_reference/algo/{algo}"), || {
            let sim = Simulation::new(SimulationConfig {
                algo,
                link: LinkConfig {
                    drops: DropPolicy::EveryNth { n: 1_000, start: 500 },
                    ..LinkConfig::default()
                },
                duration_ns: 50_000_000,
                sample_ns: 1_000_000,
                ..SimulationConfig::default()
            });
            black_box(sim.run().delivered)
        });
    }
}

fn bench_fig15_baseline() {
    bench("fig15/stalling_baseline_1ms", || {
        let mut e = StallingEngine::baseline_250mhz();
        for _ in 0..250_000 {
            e.offer_event();
            e.tick();
        }
        black_box(e.processed())
    });
}

fn main() {
    bench_fig8_bulk();
    bench_fig13_echo();
    bench_fig14_netsim();
    bench_fig15_baseline();
}
