//! Micro-benchmarks for FtEngine components: FPU processing, FPC event
//! handling, whole-engine ticks, the ablation knobs the design document
//! calls out (coalescing on/off, FPC count, scan policy, TCB-cache
//! size), and the FtScope telemetry overhead check. Uses the in-tree
//! [`f4t_bench::micro`] harness.

use f4t_bench::micro::bench;
use f4t_core::fpc::{Fpc, FpcOutput, ScanPolicy};
use f4t_core::fpu::{process, EventView};
use f4t_core::memory_manager::{MemoryManager, MmOutput};
use f4t_core::{Engine, EngineConfig, EventKind, FlowEvent};
use f4t_mem::DramKind;
use f4t_tcp::{CcAlgorithm, FlowId, FourTuple, NewReno, SeqNum, Tcb, MSS};
use std::hint::black_box;
use std::sync::Arc;

fn bench_fpu_process() {
    for algo in [CcAlgorithm::NewReno, CcAlgorithm::Cubic, CcAlgorithm::Vegas] {
        let cc = algo.instance();
        let mut tcb = Tcb::established(FlowId(1), FourTuple::default(), SeqNum(0));
        cc.init(&mut tcb);
        let mut now = 0u64;
        bench(&format!("fpu/process/{algo}"), move || {
            now += 100;
            let ev = EventView {
                req: Some(tcb.snd_nxt.add(512)),
                ack: Some(tcb.snd_una.add(tcb.flight_size().min(MSS))),
                ..Default::default()
            };
            black_box(process(cc, &mut tcb, &ev, now, MSS))
        });
    }
}

fn bench_fpc_saturated() {
    for policy in [ScanPolicy::SkipIdle, ScanPolicy::FullIteration] {
        let slots = 32;
        let mut fpc = Fpc::new(0, slots, Arc::new(NewReno), None, MSS, policy);
        for i in 0..slots as u32 {
            let mut t = Tcb::established(FlowId(i), FourTuple::default(), SeqNum(0));
            t.snd_wnd = u32::MAX / 2;
            t.cwnd = u32::MAX / 2;
            t.req = t.req.add(1 << 30);
            fpc.push_tcb(t, EventView::default());
        }
        let mut out = FpcOutput::default();
        let mut cycle = 0u64;
        bench(&format!("fpc/saturated_tick/{policy:?}"), move || {
            out.tx.clear();
            out.outcomes.clear();
            out.evicted.clear();
            out.installed.clear();
            fpc.tick(cycle, cycle * 4, true, &mut out);
            cycle += 1;
            black_box(out.tx.len())
        });
    }
}

fn bench_engine_tick() {
    for fpcs in [1usize, 8] {
        let cfg = EngineConfig {
            num_fpcs: fpcs,
            lut_groups: (fpcs / 2).max(1),
            ..EngineConfig::reference()
        };
        let mut e = Engine::new(cfg);
        bench(&format!("engine/tick/idle_fpcs/{fpcs}"), move || {
            e.tick();
            black_box(e.cycles())
        });
    }
    let mut e = Engine::new(EngineConfig::reference());
    let flow = e.open_established(FourTuple::default(), SeqNum(0)).unwrap();
    let mut req = SeqNum(0);
    bench("engine/tick/busy_bulk_8fpc", move || {
        req = req.add(128);
        e.push_host(flow, EventKind::SendReq { req });
        e.tick();
        while e.pop_tx().is_some() {}
        black_box(e.cycles())
    });
}

fn bench_coalescing_ablation() {
    // Ablation: event intake cost with and without coalescing under a
    // same-flow burst (the §4.4.1 design choice).
    for coalescing in [true, false] {
        let cfg = EngineConfig {
            num_fpcs: 1,
            lut_groups: 1,
            coalescing,
            ..EngineConfig::reference()
        };
        let mut e = Engine::new(cfg);
        let flow = e.open_established(FourTuple::default(), SeqNum(0)).unwrap();
        let mut req = SeqNum(0);
        bench(&format!("engine/coalescing_ablation/same_flow_burst/{coalescing}"), move || {
            for _ in 0..4 {
                req = req.add(64);
                e.push_event(FlowEvent::new(flow, EventKind::SendReq { req }, e.now_ns()));
            }
            e.tick();
            while e.pop_tx().is_some() {}
            black_box(e.stats().events_coalesced)
        });
    }
}

fn bench_memory_manager() {
    for (kind, sets) in [(DramKind::Ddr4, 64usize), (DramKind::Hbm, 64), (DramKind::Ddr4, 4096)] {
        let mut mm = MemoryManager::new(kind, sets);
        for i in 0..1024u32 {
            mm.accept_eviction(Tcb::established(FlowId(i), FourTuple::default(), SeqNum(0)));
        }
        let mut out = MmOutput::default();
        for _ in 0..4096 {
            mm.tick(&mut out);
        }
        let mut i = 0u32;
        let mut ptr = 0u32;
        bench(&format!("memory_manager/event_handling/{kind}/sets/{sets}"), move || {
            i = (i + 1) % 1024;
            ptr += 16;
            if mm.can_accept_event() {
                mm.push_event(FlowEvent::new(FlowId(i), EventKind::SendReq { req: SeqNum(ptr) }, 0));
            }
            out.swap_in_requests.clear();
            out.evict_done.clear();
            mm.tick(&mut out);
            black_box(mm.events_handled())
        });
    }
}

/// FtScope acceptance check: a busy engine cycle with tracing enabled
/// must stay within ~10 % of the same cycle with telemetry idle. The
/// module counters themselves are always on (plain u64 adds); the only
/// conditional cost is the trace ring, so this compares trace-off vs a
/// 64 Ki-event ring under bulk traffic and prints the ratio.
fn bench_telemetry_overhead() {
    let mut results = [0.0f64; 2];
    for (slot, trace_depth) in [(0usize, 0usize), (1, 65_536)] {
        let mut e = Engine::new(EngineConfig::reference());
        e.set_trace_capacity(trace_depth);
        let flow = e.open_established(FourTuple::default(), SeqNum(0)).unwrap();
        let mut req = SeqNum(0);
        let label = if trace_depth == 0 { "off" } else { "trace_64k" };
        results[slot] = bench(&format!("engine/telemetry_overhead/{label}"), move || {
            req = req.add(128);
            e.push_host(flow, EventKind::SendReq { req });
            e.tick();
            while e.pop_tx().is_some() {}
            black_box(e.cycles())
        });
    }
    println!(
        "engine/telemetry_overhead: ratio {:.3}x (trace on vs off)",
        results[1] / results[0]
    );
}

fn main() {
    bench_fpu_process();
    bench_fpc_saturated();
    bench_engine_tick();
    bench_coalescing_ablation();
    bench_memory_manager();
    bench_telemetry_overhead();
}
