//! Criterion micro-benchmarks for FtEngine components: FPU processing,
//! FPC event handling, whole-engine ticks, and the ablation knobs the
//! design document calls out (coalescing on/off, FPC count, scan policy,
//! TCB-cache size).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use f4t_core::fpc::{Fpc, FpcOutput, ScanPolicy};
use f4t_core::fpu::{process, EventView};
use f4t_core::{Engine, EngineConfig, EventKind, FlowEvent};
use f4t_mem::DramKind;
use f4t_tcp::{CcAlgorithm, FlowId, FourTuple, NewReno, SeqNum, Tcb, MSS};
use std::sync::Arc;

fn bench_fpu_process(c: &mut Criterion) {
    for algo in [CcAlgorithm::NewReno, CcAlgorithm::Cubic, CcAlgorithm::Vegas] {
        c.bench_function(&format!("fpu/process/{algo}"), |b| {
            let cc = algo.instance();
            let mut tcb = Tcb::established(FlowId(1), FourTuple::default(), SeqNum(0));
            cc.init(&mut tcb);
            let mut now = 0u64;
            b.iter(|| {
                now += 100;
                let ev = EventView {
                    req: Some(tcb.snd_nxt.add(512)),
                    ack: Some(tcb.snd_una.add(tcb.flight_size().min(MSS))),
                    ..Default::default()
                };
                black_box(process(cc, &mut tcb, &ev, now, MSS))
            })
        });
    }
}

fn bench_fpc_saturated(c: &mut Criterion) {
    for policy in [ScanPolicy::SkipIdle, ScanPolicy::FullIteration] {
        c.bench_function(&format!("fpc/saturated_tick/{policy:?}"), |b| {
            let slots = 32;
            let mut fpc = Fpc::new(0, slots, Arc::new(NewReno), None, MSS, policy);
            for i in 0..slots as u32 {
                let mut t = Tcb::established(FlowId(i), FourTuple::default(), SeqNum(0));
                t.snd_wnd = u32::MAX / 2;
                t.cwnd = u32::MAX / 2;
                t.req = t.req.add(1 << 30);
                fpc.push_tcb(t, EventView::default());
            }
            let mut out = FpcOutput::default();
            let mut cycle = 0u64;
            b.iter(|| {
                out.tx.clear();
                out.outcomes.clear();
                out.evicted.clear();
                out.installed.clear();
                fpc.tick(cycle, cycle * 4, true, &mut out);
                cycle += 1;
                black_box(out.tx.len())
            })
        });
    }
}

fn bench_engine_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/tick");
    for fpcs in [1usize, 8] {
        group.bench_with_input(BenchmarkId::new("idle_fpcs", fpcs), &fpcs, |b, &fpcs| {
            let cfg = EngineConfig {
                num_fpcs: fpcs,
                lut_groups: (fpcs / 2).max(1),
                ..EngineConfig::reference()
            };
            let mut e = Engine::new(cfg);
            b.iter(|| {
                e.tick();
                black_box(e.cycles())
            });
        });
    }
    group.bench_function("busy_bulk_8fpc", |b| {
        let mut e = Engine::new(EngineConfig::reference());
        let tuple = FourTuple::default();
        let flow = e.open_established(tuple, SeqNum(0)).unwrap();
        let mut req = SeqNum(0);
        b.iter(|| {
            req = req.add(128);
            e.push_host(flow, EventKind::SendReq { req });
            e.tick();
            while e.pop_tx().is_some() {}
            black_box(e.cycles())
        });
    });
    group.finish();
}

fn bench_coalescing_ablation(c: &mut Criterion) {
    // Ablation: event intake cost with and without coalescing under a
    // same-flow burst (the §4.4.1 design choice).
    let mut group = c.benchmark_group("engine/coalescing_ablation");
    for coalescing in [true, false] {
        group.bench_with_input(
            BenchmarkId::new("same_flow_burst", coalescing),
            &coalescing,
            |b, &coalescing| {
                let cfg = EngineConfig {
                    num_fpcs: 1,
                    lut_groups: 1,
                    coalescing,
                    ..EngineConfig::reference()
                };
                let mut e = Engine::new(cfg);
                let flow = e.open_established(FourTuple::default(), SeqNum(0)).unwrap();
                let mut req = SeqNum(0);
                b.iter(|| {
                    for _ in 0..4 {
                        req = req.add(64);
                        e.push_event(FlowEvent::new(
                            flow,
                            EventKind::SendReq { req },
                            e.now_ns(),
                        ));
                    }
                    e.tick();
                    while e.pop_tx().is_some() {}
                    black_box(e.stats().events_coalesced)
                });
            },
        );
    }
    group.finish();
}

fn bench_memory_manager(c: &mut Criterion) {
    use f4t_core::memory_manager::{MemoryManager, MmOutput};
    let mut group = c.benchmark_group("memory_manager/event_handling");
    for (kind, sets) in [(DramKind::Ddr4, 64usize), (DramKind::Hbm, 64), (DramKind::Ddr4, 4096)] {
        group.bench_with_input(
            BenchmarkId::new(format!("{kind}"), sets),
            &(kind, sets),
            |b, &(kind, sets)| {
                let mut mm = MemoryManager::new(kind, sets);
                for i in 0..1024u32 {
                    mm.accept_eviction(Tcb::established(
                        FlowId(i),
                        FourTuple::default(),
                        SeqNum(0),
                    ));
                }
                let mut out = MmOutput::default();
                for _ in 0..4096 {
                    mm.tick(&mut out);
                }
                let mut i = 0u32;
                let mut ptr = 0u32;
                b.iter(|| {
                    i = (i + 1) % 1024;
                    ptr += 16;
                    if mm.can_accept_event() {
                        mm.push_event(FlowEvent::new(
                            FlowId(i),
                            EventKind::SendReq { req: SeqNum(ptr) },
                            0,
                        ));
                    }
                    out.swap_in_requests.clear();
                    out.evict_done.clear();
                    mm.tick(&mut out);
                    black_box(mm.events_handled())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fpu_process,
    bench_fpc_saturated,
    bench_engine_tick,
    bench_coalescing_ablation,
    bench_memory_manager
);
criterion_main!(benches);
