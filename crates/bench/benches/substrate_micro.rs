//! Micro-benchmarks for the protocol substrate: the hot
//! per-packet/per-event primitives (sequence arithmetic, cuckoo lookup,
//! reassembly, checksum, congestion control). Uses the in-tree
//! [`f4t_bench::micro`] harness (no criterion — offline build).

use f4t_bench::micro::bench;
use f4t_tcp::{
    wire, CcAlgorithm, FlowId, FlowTable, FourTuple, ReassemblyTracker, SeqNum, Tcb, MSS,
};
use std::hint::black_box;
use std::net::Ipv4Addr;

fn bench_seq() {
    let start = SeqNum(u32::MAX - 1000);
    bench("seq/window_check", || {
        let mut hits = 0u32;
        for i in 0..64u32 {
            if black_box(start.add(i * 37)).in_window(start, 2048) {
                hits += 1;
            }
        }
        hits
    });
}

fn bench_cuckoo() {
    let mut table = FlowTable::with_capacity(65_536);
    let tuples: Vec<FourTuple> = (0..65_536u32)
        .map(|i| {
            FourTuple::new(
                Ipv4Addr::from(0x0a00_0000 | (i & 0xffff)),
                (i % 60_000 + 1_024) as u16,
                Ipv4Addr::new(10, 1, 0, 1),
                80,
            )
        })
        .collect();
    for (i, t) in tuples.iter().enumerate() {
        table.insert(*t, FlowId(i as u32)).unwrap();
    }
    let mut i = 0usize;
    bench("cuckoo/lookup_64k", || {
        i = (i + 997) % tuples.len();
        black_box(table.lookup(&tuples[i]))
    });
}

fn bench_reassembly() {
    bench("reassembly/in_order_mss", || {
        let mut r = ReassemblyTracker::new(SeqNum(0), 1 << 20);
        for i in 0..64u32 {
            r.on_segment(SeqNum(i * MSS), MSS);
        }
        r.rcv_nxt()
    });
    bench("reassembly/every_other_ooo", || {
        let mut r = ReassemblyTracker::new(SeqNum(0), 1 << 20);
        for i in 0..32u32 {
            r.on_segment(SeqNum((2 * i + 1) * MSS), MSS);
            r.on_segment(SeqNum(2 * i * MSS), MSS);
        }
        r.rcv_nxt()
    });
}

fn bench_checksum() {
    let data = vec![0xA5u8; 1460];
    bench("wire/internet_checksum_1460B", || wire::internet_checksum(black_box(&data), 0));
}

fn bench_cc() {
    for algo in [CcAlgorithm::NewReno, CcAlgorithm::Cubic, CcAlgorithm::Vegas] {
        let cc = algo.instance();
        let mut tcb = Tcb::established(FlowId(1), FourTuple::default(), SeqNum(0));
        cc.init(&mut tcb);
        tcb.ssthresh = 2 * MSS; // exercise congestion avoidance
        let mut now = 0u64;
        bench(&format!("cc/{algo}/on_ack"), || {
            now += 2_000;
            tcb.snd_una = tcb.snd_una.add(MSS);
            tcb.snd_nxt = tcb.snd_una.add(MSS);
            cc.on_ack(&mut tcb, MSS, Some(100_000), now);
            black_box(tcb.cwnd)
        });
    }
}

fn main() {
    bench_seq();
    bench_cuckoo();
    bench_reassembly();
    bench_checksum();
    bench_cc();
}
